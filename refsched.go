// Package refsched is a full-system simulation library reproducing
// "Hardware-Software Co-design to Mitigate DRAM Refresh Overheads: A
// Case for Refresh-Aware Process Scheduling" (Kotra et al., ASPLOS
// 2017).
//
// It models out-of-order cores with private two-level caches, a DDR3/
// DDR4 memory system with FR-FCFS controllers and pluggable refresh
// policies (all-bank, LPDDR3 per-bank, DDR4 FGR 1x/2x/4x, Adaptive
// Refresh, out-of-order per-bank, and the paper's sequential per-bank
// schedule), and a simulated OS with a bank-aware buddy allocator and a
// CFS scheduler implementing refresh-aware pick_next_task.
//
// Quick start:
//
//	cfg := refsched.CoDesign(refsched.DefaultConfig(refsched.Density32Gb, 64))
//	sys, err := refsched.NewSystem(cfg, refsched.Table2()[0])
//	if err != nil { ... }
//	rep, err := sys.RunWindows(2, 2)
//	fmt.Println(rep)
//
// The second argument to DefaultConfig is the time-scale factor: 1
// reproduces the paper's wall-clock constants (64 ms retention windows —
// slow); 32–128 keeps the refresh duty cycle and the quantum/slot
// alignment exact while shrinking runs to laptop scale.
package refsched

import (
	"io"

	"refsched/internal/approx"
	"refsched/internal/config"
	"refsched/internal/core"
	"refsched/internal/metrics"
	"refsched/internal/sim"
	"refsched/internal/timeline"
	"refsched/internal/trace"
	"refsched/internal/workload"
)

// Config is the full simulated machine description (Table 1 of the
// paper plus policy selections).
type Config = config.System

// Density is a DRAM device density.
type Density = config.Density

// RefreshPolicy selects the hardware refresh scheduling scheme.
type RefreshPolicy = config.RefreshPolicy

// AllocPolicy selects the OS page-allocation policy.
type AllocPolicy = config.AllocPolicy

// SchedPolicy selects the OS task scheduler.
type SchedPolicy = config.SchedPolicy

// Device densities evaluated in the paper.
const (
	Density8Gb  = config.Density8Gb
	Density16Gb = config.Density16Gb
	Density24Gb = config.Density24Gb
	Density32Gb = config.Density32Gb
)

// Refresh policies.
const (
	RefreshNone       = config.RefreshNone
	RefreshAllBank    = config.RefreshAllBank
	RefreshPerBankRR  = config.RefreshPerBankRR
	RefreshPerBankSeq = config.RefreshPerBankSeq
	RefreshOOOPerBank = config.RefreshOOOPerBank
	RefreshFGR2x      = config.RefreshFGR2x
	RefreshFGR4x      = config.RefreshFGR4x
	RefreshAdaptive   = config.RefreshAdaptive
	RefreshElastic    = config.RefreshElastic
	RefreshPausing    = config.RefreshPausing
	RefreshRAIDR      = config.RefreshRAIDR
	RefreshPerBankSA  = config.RefreshPerBankSA
)

// Allocation policies.
const (
	AllocBuddy         = config.AllocBuddy
	AllocSoftPartition = config.AllocSoftPartition
	AllocHardPartition = config.AllocHardPartition
)

// Scheduling policies.
const (
	SchedRR  = config.SchedRR
	SchedCFS = config.SchedCFS
)

// Mix is a multi-programmed workload.
type Mix = workload.Mix

// MixEntry is one benchmark repeated within a mix.
type MixEntry = workload.MixEntry

// Benchmark is one synthetic application model.
type Benchmark = workload.Benchmark

// Report summarizes a measured run.
type Report = core.Report

// TaskReport summarizes one task within a run.
type TaskReport = core.TaskReport

// MetricsSnapshot is a point-in-time reading of every registered
// counter, gauge, and histogram in a system, keyed by hierarchical name
// (e.g. "mc[0].bank[3].refresh_busy_cycles"). It JSON-round-trips and
// supports Diff for interval measurement.
type MetricsSnapshot = metrics.Snapshot

// Options tunes system construction.
type Options = core.Options

// DefaultConfig returns the paper's Table 1 machine at the given
// density and time scale, with the baseline policy bundle (all-bank
// refresh, bank-oblivious buddy allocation, round-robin scheduling).
func DefaultConfig(d Density, scale uint64) Config {
	return config.Default(d, scale)
}

// HighTemp adapts a config for >85°C operation: 32 ms retention window
// and 2 ms time slice.
func HighTemp(cfg Config) Config { return config.HighTemp(cfg) }

// CoDesign enables the paper's full co-design on cfg: the sequential
// per-bank refresh schedule in hardware, soft-partitioned allocation,
// and refresh-aware CFS scheduling in the OS.
func CoDesign(cfg Config) Config {
	cfg.Refresh.Policy = config.RefreshPerBankSeq
	cfg.OS.Alloc = config.AllocSoftPartition
	cfg.OS.Scheduler = config.SchedCFS
	cfg.OS.RefreshAware = true
	return cfg
}

// WithRefresh returns cfg with the given hardware refresh policy and
// baseline (refresh-oblivious) OS policies.
func WithRefresh(cfg Config, p config.RefreshPolicy) Config {
	cfg.Refresh.Policy = p
	return cfg
}

// Table2 returns the paper's ten workload mixes.
func Table2() []Mix { return workload.Table2() }

// GetBenchmark looks up a modeled benchmark by name (e.g. "mcf").
func GetBenchmark(name string) (Benchmark, error) { return workload.Get(name) }

// Benchmarks lists all modeled benchmark names.
func Benchmarks() []string { return workload.Names() }

// Access is one memory reference in a task's stream.
type Access = workload.Access

// Generator produces an endless (compute-instructions, access) stream;
// implement it to model custom applications.
type Generator = workload.Generator

// RegisterBenchmark adds a user-defined benchmark model so it can be
// referenced from mixes by name.
func RegisterBenchmark(b Benchmark) error { return workload.Register(b) }

// Rand is the deterministic random stream handed to benchmark
// generator constructors.
type Rand = sim.Rand

// TraceRecord is one captured memory request.
type TraceRecord = trace.Record

// TraceRecorder streams captured requests to a writer.
type TraceRecorder = trace.Recorder

// ReadTrace loads a recorded request stream.
func ReadTrace(r io.Reader) ([]TraceRecord, error) { return trace.ReadAll(r) }

// ReplayGenerator turns a recorded request stream into a workload
// generator (register it with RegisterBenchmark to use it in a Mix).
func ReplayGenerator(recs []TraceRecord) Generator { return trace.NewGen(recs) }

// TimelineRecorder accumulates Perfetto-loadable span/instant events
// (Chrome trace-event JSON). See System.AttachTimeline.
type TimelineRecorder = timeline.Recorder

// TimelineEvent is one event read back from a serialised timeline.
type TimelineEvent = timeline.DecodedEvent

// ReadTimeline parses and validates a Chrome trace-event JSON
// timeline as written by a TimelineRecorder.
func ReadTimeline(r io.Reader) ([]TimelineEvent, error) { return timeline.Decode(r) }

// SystemState is the complete serializable state of a running System at
// a checkpoint boundary: machine identity (config, mix, footprint
// scale), the run's interval parameters, and every layer's mutable
// state down to pending engine events and random streams. A system
// restored from it (RestoreSystem) and resumed produces byte-identical
// output to the uninterrupted original run.
type SystemState = core.SystemState

// CheckpointFn receives each periodic snapshot during a checkpointed
// run. Returning an error aborts the run with that error.
type CheckpointFn = core.CheckpointFn

// CorruptSnapshotError reports a snapshot file that failed structural
// validation: bad magic, truncated body, checksum mismatch, or
// undecodable contents.
type CorruptSnapshotError = core.CorruptSnapshotError

// SnapshotVersionError reports a snapshot written by a different
// simulator revision — intact, but not resumable by this binary.
type SnapshotVersionError = core.SnapshotVersionError

// SnapshotVersion is the current snapshot format version.
const SnapshotVersion = core.SnapshotVersion

// WriteSnapshot writes st to path atomically (tmp + fsync + rename): a
// crash mid-write leaves the previous snapshot or none, never a torn
// file.
func WriteSnapshot(path string, st *SystemState) error {
	return core.WriteSnapshotFile(path, st)
}

// ReadSnapshot reads a snapshot written by WriteSnapshot, refusing
// damaged or version-skewed files with a typed error
// (CorruptSnapshotError / SnapshotVersionError).
func ReadSnapshot(path string) (*SystemState, error) {
	return core.ReadSnapshotFile(path)
}

// RestoreSystem rebuilds a system from a checkpoint. The machine is
// reconstructed from the snapshot's own config and mix; opt may supply
// a cancellation context (its FootprintScale and Seed are overridden by
// the snapshot's, and ChannelParallel is rejected). Resume the result
// to continue the interrupted run.
func RestoreSystem(st *SystemState, opt Options) (*System, error) {
	inner, err := core.Restore(st, opt)
	if err != nil {
		return nil, err
	}
	return &System{inner: inner}, nil
}

// System is one wired simulated machine executing a workload mix.
type System struct {
	inner *core.System
}

// NewSystem builds a system for cfg running mix.
func NewSystem(cfg Config, mix Mix) (*System, error) {
	return NewSystemWithOptions(cfg, mix, Options{})
}

// NewSystemWithOptions builds a system with construction options
// (footprint scaling, seed override).
func NewSystemWithOptions(cfg Config, mix Mix, opt Options) (*System, error) {
	inner, err := core.Build(cfg, mix, opt)
	if err != nil {
		return nil, err
	}
	return &System{inner: inner}, nil
}

// Window returns the scaled retention window (tREFW) in CPU cycles —
// the natural unit for run durations.
func (s *System) Window() uint64 { return s.inner.Window() }

// AttachTrace records every demand memory request of the run to w.
// Call before Run and Flush the recorder afterwards.
func (s *System) AttachTrace(w io.Writer) (*TraceRecorder, error) {
	return s.inner.AttachTrace(w)
}

// AttachTimeline records a Perfetto-loadable timeline of the run —
// per-bank refresh slots, refresh-stalled reads, per-core task quanta,
// and scheduler skip decisions — flushed to w as Chrome trace-event
// JSON. Call before Run and Flush the recorder afterwards.
func (s *System) AttachTimeline(w io.Writer) (*TimelineRecorder, error) {
	return s.inner.AttachTimeline(w)
}

// Run executes warmup cycles unmeasured, then measure cycles measured,
// and returns the report. A System can run once.
func (s *System) Run(warmup, measure uint64) (*Report, error) {
	return s.inner.Run(warmup, measure)
}

// RunWindows is Run with durations in retention windows.
func (s *System) RunWindows(warmupWindows, measureWindows int) (*Report, error) {
	return s.inner.RunWindows(warmupWindows, measureWindows)
}

// RunCheckpointed is Run with periodic checkpoints: every `every`
// cycles of simulated time the machine is flattened into a SystemState
// and handed to fn (persist it with WriteSnapshot). Checkpoint
// boundaries split the engine's run into legs, which does not perturb
// execution — the report is byte-identical to an uncheckpointed run.
// Checkpointing is incompatible with an attached trace or timeline and
// with parallel execution.
func (s *System) RunCheckpointed(warmup, measure, every uint64, fn CheckpointFn) (*Report, error) {
	return s.inner.RunCheckpointed(warmup, measure, every, fn)
}

// RunWindowsCheckpointed is RunCheckpointed with durations in retention
// windows.
func (s *System) RunWindowsCheckpointed(warmupWindows, measureWindows int, every uint64, fn CheckpointFn) (*Report, error) {
	w := s.inner.Window()
	return s.inner.RunCheckpointed(uint64(warmupWindows)*w, uint64(measureWindows)*w, every, fn)
}

// Resume continues a system built by RestoreSystem to the end of its
// original run, optionally emitting further checkpoints (every/fn as in
// RunCheckpointed; pass 0, nil for none). The returned report is
// byte-identical to the one the uninterrupted original run would have
// produced.
func (s *System) Resume(every uint64, fn CheckpointFn) (*Report, error) {
	return s.inner.Resume(every, fn)
}

// MetricsSnapshot reads every registered metric in the system,
// cumulative since construction. Report is a projection of the diff of
// two such snapshots; this exposes the full underlying hierarchy
// (per-bank, per-controller, per-task) for custom analysis.
func (s *System) MetricsSnapshot() MetricsSnapshot { return s.inner.MetricsSnapshot() }

// PredictApprox answers a run from the analytical fast-path model
// instead of the event-driven engine: microseconds per call, no System
// construction. Coverage is the calibrated policy bundles (none,
// allbank, perbank, and the co-design) over Table 2 mixes at both
// retention temperatures; other policies or custom mixes return an
// error. Predictions reproduce the exact engine at the model's
// calibration anchor densities and carry a validated error bound at
// interpolated ones — see internal/approx for the model and bounds.
// Reports have Events == 0, marking them as analytical.
func PredictApprox(cfg Config, mix Mix) (*Report, error) {
	return approx.Predict(cfg, mix)
}
