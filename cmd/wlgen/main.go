// Command wlgen inspects the synthetic workload models: it lists the
// modeled benchmarks, and for a selected benchmark streams accesses
// through a standalone cache hierarchy to report its intrinsic MPKI,
// reuse profile, and footprint coverage — useful when calibrating new
// benchmark models.
//
// Exit codes follow the usual CLI convention: 0 on success, 2 on usage
// errors (bad flag values, an unknown benchmark name), 1 on runtime
// failures.
package main

import (
	"flag"
	"fmt"
	"os"

	"refsched/internal/buildinfo"
	"refsched/internal/cache"
	"refsched/internal/config"
	"refsched/internal/sim"
	"refsched/internal/workload"
)

func main() {
	var (
		version = flag.Bool("version", false, "print version and exit")
		bench   = flag.String("bench", "", "benchmark to profile (empty = list all)")
		n       = flag.Uint64("n", 5_000_000, "instructions to simulate")
		fp      = flag.Float64("footprint-scale", 0.05, "footprint multiplier for the dry run")
		sample  = flag.Int("sample", 0, "print the first N stream segments")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get())
		return
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "wlgen: unexpected arguments %v (benchmarks are selected with -bench)\n", flag.Args())
		os.Exit(2)
	}
	if *n == 0 || *fp <= 0 || *sample < 0 {
		fmt.Fprintln(os.Stderr, "wlgen: -n must be > 0, -footprint-scale > 0, -sample >= 0")
		os.Exit(2)
	}

	if *bench == "" {
		fmt.Println("modeled benchmarks:")
		for _, name := range workload.Names() {
			b, _ := workload.Get(name)
			fmt.Printf("  %-10s class=%s footprint=%dMB\n", b.Name, b.Class, b.Footprint/(1<<20))
		}
		fmt.Println("\nTable 2 mixes:")
		for _, m := range workload.Table2() {
			fmt.Printf("  %-6s (%s): %v\n", m.Name, m.Classes, m.Entries)
		}
		return
	}

	b, err := workload.Get(*bench)
	if err != nil {
		// Usage error, not a runtime failure: the name is wrong.
		fmt.Fprintf(os.Stderr, "wlgen: %v\nwlgen: run without -bench to list the modeled benchmarks\n", err)
		os.Exit(2)
	}
	cfg := config.Default(config.Density32Gb, 64)
	hier, err := cache.NewHierarchy(cfg.L1, cfg.L2)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wlgen: %v\n", err)
		os.Exit(1)
	}
	footprint := uint64(float64(b.Footprint) * *fp)
	gen := b.New(sim.NewRand(1), footprint)

	var instrs, accesses, writes, deps uint64
	touched := map[uint64]bool{}
	for instrs < *n {
		in, acc := gen.Next()
		if *sample > 0 {
			fmt.Printf("  +%d instrs  %#x write=%v dep=%v\n", in, acc.VAddr, acc.Write, acc.Dependent)
			*sample--
		}
		instrs += in
		accesses++
		if acc.Write {
			writes++
		}
		if acc.Dependent {
			deps++
		}
		touched[acc.VAddr>>12] = true
		hier.Access(acc.VAddr, acc.Write)
	}

	l1 := hier.L1.Stats
	l2 := hier.L2.Stats
	fmt.Printf("%s: class=%s footprint=%dMB (scaled %dMB)\n", b.Name, b.Class, b.Footprint/(1<<20), footprint/(1<<20))
	fmt.Printf("  instructions   %d\n", instrs)
	fmt.Printf("  accesses       %d (%.1f per kilo-instr)\n", accesses, float64(accesses)/float64(instrs)*1000)
	fmt.Printf("  writes         %.1f%%   dependent %.1f%%\n", f(writes, accesses)*100, f(deps, accesses)*100)
	fmt.Printf("  L1 miss rate   %.2f%%\n", l1.MissRate()*100)
	fmt.Printf("  L2 miss rate   %.2f%% (of L2 accesses)\n", l2.MissRate()*100)
	fmt.Printf("  MPKI (LLC)     %.2f\n", float64(l2.Misses)/float64(instrs)*1000)
	fmt.Printf("  pages touched  %d (%.1fMB)\n", len(touched), float64(len(touched))*4096/(1<<20))
	fmt.Printf("  writebacks     %d\n", l2.Writebacks)
}

func f(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
