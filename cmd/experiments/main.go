// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [flags] [fig3 fig4 fig5 fig10 fig12 fig13 fig14 fig15 table1 table2 | all]
//
// With no arguments it runs everything at the default fidelity
// (scale 64, full footprints, all ten mixes). -quick switches to a fast
// preset for smoke runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"refsched/internal/harness"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "fast preset: larger time scale, fewer mixes, scaled footprints")
		scale   = flag.Uint64("scale", 0, "override time-scale factor (0 = preset)")
		mixes   = flag.String("mixes", "", "comma-separated mix subset, e.g. WL-1,WL-6 (empty = preset)")
		seed    = flag.Uint64("seed", 1, "random seed")
		windows = flag.Int("windows", 0, "override measurement windows (0 = preset)")
		verbose = flag.Bool("v", false, "print each run as it completes")
	)
	flag.Parse()

	p := harness.DefaultParams()
	if *quick {
		p = harness.QuickParams()
	}
	if *scale != 0 {
		p.Scale = *scale
	}
	if *mixes != "" {
		p.Mixes = strings.Split(*mixes, ",")
	}
	if *windows != 0 {
		p.MeasureWindows = *windows
	}
	p.Seed = *seed
	p.Verbose = *verbose

	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}

	start := time.Now()
	for _, t := range targets {
		if err := runTarget(t, p); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("total: %s\n", time.Since(start).Round(time.Second))
}

func runTarget(target string, p harness.Params) error {
	emit := func(rs ...*harness.Result) {
		for _, r := range rs {
			fmt.Println(r)
		}
	}
	switch target {
	case "all":
		rs, err := harness.All(p)
		emit(rs...)
		return err
	case "table1":
		emit(harness.Table1(p))
	case "table2":
		emit(harness.Table2Result())
	case "fig3":
		r, err := harness.Fig3(p)
		if err != nil {
			return err
		}
		emit(r)
	case "fig4":
		r, err := harness.Fig4(p)
		if err != nil {
			return err
		}
		emit(r)
	case "fig5":
		r, err := harness.Fig5(p)
		if err != nil {
			return err
		}
		emit(r)
	case "fig10", "fig11":
		r10, r11, err := harness.Fig10(p, false)
		if err != nil {
			return err
		}
		emit(r10, r11)
	case "fig12":
		r, err := harness.Fig12(p)
		if err != nil {
			return err
		}
		emit(r)
	case "fig13":
		r13, r13lat, err := harness.Fig10(p, true)
		if err != nil {
			return err
		}
		emit(r13, r13lat)
	case "fig14":
		r, err := harness.Fig14(p)
		if err != nil {
			return err
		}
		emit(r)
	case "fig15":
		r, err := harness.Fig15(p)
		if err != nil {
			return err
		}
		emit(r)
	case "ext1", "extensions":
		r, err := harness.Extensions(p)
		if err != nil {
			return err
		}
		emit(r)
	default:
		return fmt.Errorf("unknown target %q", target)
	}
	return nil
}
