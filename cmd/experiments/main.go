// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [flags] [fig3 fig4 fig5 fig10 fig12 fig13 fig14 fig15 table1 table2 | all]
//
// With no arguments it runs everything at the default fidelity
// (scale 64, full footprints, all ten mixes). -quick switches to a fast
// preset for smoke runs. -j bounds the worker pool that runs a sweep's
// independent simulation cells; results are identical at any -j, only
// wall-clock time changes. -bench-json additionally records per-figure
// wall-clock and event-engine microbenchmark numbers to a JSON file so
// performance can be tracked across revisions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"refsched/internal/harness"
	"refsched/internal/runner"
	"refsched/internal/sim"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "fast preset: larger time scale, fewer mixes, scaled footprints")
		scale     = flag.Uint64("scale", 0, "override time-scale factor (0 = preset)")
		mixes     = flag.String("mixes", "", "comma-separated mix subset, e.g. WL-1,WL-6 (empty = preset)")
		seed      = flag.Uint64("seed", 1, "random seed")
		windows   = flag.Int("windows", 0, "override measurement windows (0 = preset)")
		verbose   = flag.Bool("v", false, "print each run as it completes")
		jobs      = flag.Int("j", 0, "parallel simulation cells (0 = all CPUs; results identical at any -j)")
		benchJSON = flag.String("bench-json", "", "write per-figure wall-clock + engine microbench JSON to this file")
	)
	flag.Parse()

	p := harness.DefaultParams()
	if *quick {
		p = harness.QuickParams()
	}
	if *scale != 0 {
		p.Scale = *scale
	}
	if *mixes != "" {
		p.Mixes = strings.Split(*mixes, ",")
	}
	if *windows != 0 {
		p.MeasureWindows = *windows
	}
	p.Seed = *seed
	p.Verbose = *verbose
	p.Parallelism = *jobs

	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}

	bench := newBenchRecorder(*benchJSON, p)
	start := time.Now()
	for _, t := range targets {
		t0 := time.Now()
		if err := runTarget(t, p); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		bench.record(t, time.Since(t0))
	}
	fmt.Printf("total: %s\n", time.Since(start).Round(time.Second))
	if err := bench.write(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func runTarget(target string, p harness.Params) error {
	emit := func(rs ...*harness.Result) {
		for _, r := range rs {
			fmt.Println(r)
		}
	}
	switch target {
	case "all":
		rs, err := harness.All(p)
		emit(rs...)
		return err
	case "table1":
		emit(harness.Table1(p))
	case "table2":
		emit(harness.Table2Result())
	case "fig3":
		r, err := harness.Fig3(p)
		if err != nil {
			return err
		}
		emit(r)
	case "fig4":
		r, err := harness.Fig4(p)
		if err != nil {
			return err
		}
		emit(r)
	case "fig5":
		r, err := harness.Fig5(p)
		if err != nil {
			return err
		}
		emit(r)
	case "fig10", "fig11":
		r10, r11, err := harness.Fig10(p, false)
		if err != nil {
			return err
		}
		emit(r10, r11)
	case "fig12":
		r, err := harness.Fig12(p)
		if err != nil {
			return err
		}
		emit(r)
	case "fig13":
		r13, r13lat, err := harness.Fig10(p, true)
		if err != nil {
			return err
		}
		emit(r13, r13lat)
	case "fig14":
		r, err := harness.Fig14(p)
		if err != nil {
			return err
		}
		emit(r)
	case "fig15":
		r, err := harness.Fig15(p)
		if err != nil {
			return err
		}
		emit(r)
	case "ext1", "extensions":
		r, err := harness.Extensions(p)
		if err != nil {
			return err
		}
		emit(r)
	default:
		return fmt.Errorf("unknown target %q", target)
	}
	return nil
}

// benchRecorder accumulates the -bench-json perf baseline: wall-clock
// per figure target plus event-engine microbenchmark numbers, so future
// revisions have a trajectory to compare against.
type benchRecorder struct {
	path    string
	entries []benchEntry
	params  harness.Params
}

type benchEntry struct {
	Target string  `json:"target"`
	WallMS float64 `json:"wall_ms"`
}

type benchFile struct {
	Parallelism int          `json:"parallelism"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Scale       uint64       `json:"scale"`
	Engine      engineBench  `json:"engine"`
	Targets     []benchEntry `json:"targets"`
}

type engineBench struct {
	AllocsPerEvent float64 `json:"allocs_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
}

func newBenchRecorder(path string, p harness.Params) *benchRecorder {
	return &benchRecorder{path: path, params: p}
}

func (b *benchRecorder) record(target string, d time.Duration) {
	if b.path == "" {
		return
	}
	b.entries = append(b.entries, benchEntry{Target: target, WallMS: float64(d.Microseconds()) / 1000})
}

func (b *benchRecorder) write() error {
	if b.path == "" {
		return nil
	}
	out := benchFile{
		Parallelism: runner.Parallelism(b.params.Parallelism),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Scale:       b.params.Scale,
		Targets:     b.entries,
	}
	out.Engine = measureEngine()
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(b.path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", b.path)
	return nil
}

// measureEngine hand-rolls the BenchmarkEngineScheduleStep measurement
// (allocations and throughput of the event-heap hot path) without the
// testing package, so the CLI can embed it in the baseline file.
func measureEngine() engineBench {
	const warm, n = 128, 2_000_000
	e := sim.NewEngine()
	e.Reserve(warm * 2)
	fn := func() {}
	for i := 0; i < warm; i++ {
		e.Schedule(sim.Time(i%31)+1, fn)
	}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	for i := 0; i < n; i++ {
		e.Schedule(sim.Time(i%31)+1, fn)
		e.Step()
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	return engineBench{
		AllocsPerEvent: float64(m1.Mallocs-m0.Mallocs) / float64(n),
		EventsPerSec:   float64(n) / wall.Seconds(),
	}
}
