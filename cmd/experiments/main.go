// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [flags] [fig3 fig4 fig5 fig10 fig12 fig13 fig14 fig15 table1 table2 | all]
//
// With no arguments it runs everything at the default fidelity
// (scale 64, full footprints, all ten mixes). -quick switches to a fast
// preset for smoke runs. -mode=approx answers sweep cells from the
// analytical model instead of the event-driven engine — a whole figure
// sweep in milliseconds, at the model's documented error bound. It is
// meant for the fig3/fig10/fig11/fig13 grids: cells using uncalibrated
// bundles (FGR, adaptive, OOO) or fig15's scenario mixes quarantine
// with a clear error, fig4's custom bank-mask cells always run exact,
// and energy/OS-counter breakdowns (fig5, tables) are zero in
// analytical reports. -j bounds the worker pool that runs a sweep's
// independent simulation cells; results are identical at any -j, only
// wall-clock time changes. -bench-json additionally records per-figure
// wall-clock and event-engine microbenchmark numbers to a JSON file so
// performance can be tracked across revisions.
//
// Failure semantics are those of a real job scheduler. A failing or
// panicking cell is quarantined into the figure's failure-summary table
// and the rest of the sweep completes (the process then exits 3);
// -failfast restores abort-on-first-error. With -journal DIR every
// completed cell is persisted atomically as it finishes, and -resume
// skips cells already on record — after a crash or Ctrl-C, rerunning
// with -resume finishes the remainder and renders output byte-identical
// to an uninterrupted run. SIGINT cancels gracefully: in-flight cells
// finish and are journaled, the rest are skipped. The -chaos-* flags
// deterministically inject faults for failure drills.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"refsched/internal/buildinfo"
	"refsched/internal/chaos"
	"refsched/internal/harness"
	"refsched/internal/runner"
	"refsched/internal/sim"
)

func main() {
	var (
		version   = flag.Bool("version", false, "print version and exit")
		quick     = flag.Bool("quick", false, "fast preset: larger time scale, fewer mixes, scaled footprints")
		mode      = flag.String("mode", "exact", "simulation tier for sweep cells: exact (event-driven) or approx (analytical model)")
		scale     = flag.Uint64("scale", 0, "override time-scale factor (0 = preset)")
		mixes     = flag.String("mixes", "", "comma-separated mix subset, e.g. WL-1,WL-6 (empty = preset)")
		seed      = flag.Uint64("seed", 1, "random seed")
		windows   = flag.Int("windows", 0, "override measurement windows (0 = preset)")
		verbose   = flag.Bool("v", false, "print each run as it completes")
		jobs      = flag.Int("j", 0, "parallel simulation cells (0 = all CPUs; results identical at any -j)")
		benchJSON = flag.String("bench-json", "", "write per-figure wall-clock + engine microbench JSON to this file")

		failfast   = flag.Bool("failfast", false, "abort a sweep on its first failed cell instead of quarantining it")
		retries    = flag.Int("retries", 0, "max identical-seed retries for transient cell errors (0 = default, <0 = off)")
		journalDir = flag.String("journal", "", "directory for per-figure completed-cell journals (empty = no journaling)")
		resume     = flag.Bool("resume", false, "skip cells already recorded in the journal (requires -journal)")

		chaosFrac = flag.Float64("chaos-frac", 0, "inject faults into this fraction of cells (failure drills)")
		chaosSeed = flag.Uint64("chaos-seed", 1, "seed for deterministic fault placement")
		chaosMode = flag.String("chaos-mode", "transient", "fault shape: transient|error|panic|stall|mixed")

		cpuprofile = flag.String("cpuprofile", "", "write a runtime/pprof CPU profile of the run to FILE")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	p := harness.DefaultParams()
	if *quick {
		p = harness.QuickParams()
	}
	if *scale != 0 {
		p.Scale = *scale
	}
	if *mixes != "" {
		p.Mixes = strings.Split(*mixes, ",")
	}
	if *windows != 0 {
		p.MeasureWindows = *windows
	}
	p.Seed = *seed
	p.Mode = *mode
	p.Verbose = *verbose
	p.Parallelism = *jobs
	p.FailFast = *failfast
	p.Retries = *retries
	p.JournalDir = *journalDir
	p.Resume = *resume
	if *resume && *journalDir == "" {
		fmt.Fprintln(os.Stderr, "experiments: -resume requires -journal DIR")
		os.Exit(2)
	}
	if *journalDir != "" {
		if err := os.MkdirAll(*journalDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	if *chaosFrac > 0 {
		mode, err := chaos.ParseMode(*chaosMode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
		p.Chaos = chaos.New(chaos.Config{Seed: *chaosSeed, Frac: *chaosFrac, Mode: mode})
	}

	// The profile must be stopped (flushed) on every exit path, and
	// os.Exit skips deferred calls, so the stop hook is invoked
	// explicitly before each exit below.
	stopProfile := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}

	// SIGINT cancels gracefully: in-flight cells finish (and are
	// journaled); a second SIGINT kills the process the hard way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	p.Ctx = ctx

	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}

	bench := newBenchRecorder(*benchJSON, p)
	start := time.Now()
	quarantined := 0
	for _, t := range targets {
		t0 := time.Now()
		n, err := runTarget(t, p)
		quarantined += n
		if err != nil {
			stopProfile()
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "experiments: interrupted: %v\n", err)
				if *journalDir != "" {
					fmt.Fprintf(os.Stderr, "experiments: completed cells are journaled in %s; rerun with -resume to finish\n", *journalDir)
				}
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		bench.record(t, time.Since(t0))
	}
	stopProfile()
	fmt.Printf("total: %s\n", time.Since(start).Round(time.Second))
	if err := bench.write(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	if quarantined > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d cell(s) quarantined; see the failure-summary tables above\n", quarantined)
		os.Exit(3)
	}
}

// runTarget runs one CLI target through harness.RunFigure — the same
// dispatch point the serving daemon uses, which is what keeps a served
// figure byte-identical to this CLI's output — and returns how many of
// its sweep cells were quarantined. Partial results (e.g. an "all" run
// interrupted midway) are still printed before the error is returned.
func runTarget(target string, p harness.Params) (int, error) {
	rs, err := harness.RunFigure(target, p)
	quarantined := 0
	for _, r := range rs {
		quarantined += len(r.Failed)
		fmt.Println(r)
	}
	return quarantined, err
}

// benchRecorder accumulates the -bench-json perf baseline: wall-clock
// per figure target plus event-engine microbenchmark numbers, so future
// revisions have a trajectory to compare against.
type benchRecorder struct {
	path    string
	entries []benchEntry
	params  harness.Params
}

type benchEntry struct {
	Target string  `json:"target"`
	WallMS float64 `json:"wall_ms"`
}

type benchFile struct {
	Parallelism int          `json:"parallelism"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Scale       uint64       `json:"scale"`
	Engine      engineBench  `json:"engine"`
	Targets     []benchEntry `json:"targets"`
}

type engineBench struct {
	AllocsPerEvent float64 `json:"allocs_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
	// RefOpsPerSec is a fixed pure-integer reference loop measured
	// interleaved with the engine passes. Its speed depends only on the
	// machine (and its current clock), never on this repo's code, so
	// benchdiff compares EventsPerSec/RefOpsPerSec ratios — frequency
	// scaling and host drift between two recordings cancel out.
	RefOpsPerSec float64 `json:"ref_ops_per_sec"`
}

func newBenchRecorder(path string, p harness.Params) *benchRecorder {
	return &benchRecorder{path: path, params: p}
}

func (b *benchRecorder) record(target string, d time.Duration) {
	if b.path == "" {
		return
	}
	b.entries = append(b.entries, benchEntry{Target: target, WallMS: float64(d.Microseconds()) / 1000})
}

func (b *benchRecorder) write() error {
	if b.path == "" {
		return nil
	}
	out := benchFile{
		Parallelism: runner.Parallelism(b.params.Parallelism),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Scale:       b.params.Scale,
		Targets:     b.entries,
	}
	out.Engine = measureEngine()
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(b.path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", b.path)
	return nil
}

// measureEngine hand-rolls the BenchmarkEngineScheduleStep measurement
// (allocations and throughput of the event-heap hot path) without the
// testing package, so the CLI can embed it in the baseline file.
//
// Two defenses against a noisy host, because this number gates merges:
// each quantity is the best of several passes (interference only ever
// slows a loop down, so max-of-N estimates the machine's true rate),
// and a code-independent reference loop is measured interleaved with
// the engine passes so both see the same clock-frequency environment —
// benchdiff compares the engine/reference ratio, in which host drift
// between recordings cancels.
func measureEngine() engineBench {
	const warm, n, passes = 128, 2_000_000, 5
	e := sim.NewEngine()
	e.Reserve(warm * 2)
	fn := func() {}
	for i := 0; i < warm; i++ {
		e.Schedule(sim.Time(i%31)+1, fn)
	}
	var best engineBench
	for p := 0; p < passes; p++ {
		if ref := measureRef(); ref > best.RefOpsPerSec {
			best.RefOpsPerSec = ref
		}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		for i := 0; i < n; i++ {
			e.Schedule(sim.Time(i%31)+1, fn)
			e.Step()
		}
		wall := time.Since(t0)
		runtime.ReadMemStats(&m1)
		if evPerSec := float64(n) / wall.Seconds(); evPerSec > best.EventsPerSec {
			best.EventsPerSec = evPerSec
			best.AllocsPerEvent = float64(m1.Mallocs-m0.Mallocs) / float64(n)
		}
	}
	return best
}

// refSink keeps the reference loop's result observable so the compiler
// cannot delete the loop.
var refSink uint64

// measureRef times a fixed xorshift loop: pure integer work, no memory
// traffic, identical in every revision of this repo. It is the
// denominator that makes engine throughput comparable across
// recordings taken at different host clock speeds.
func measureRef() float64 {
	const n = 20_000_000
	x := uint64(0x9e3779b97f4a7c15)
	t0 := time.Now()
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	wall := time.Since(t0)
	refSink = x
	return float64(n) / wall.Seconds()
}
