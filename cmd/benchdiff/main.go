// Command benchdiff compares two perf-baseline files written by
// `experiments -bench-json` and exits non-zero when the candidate
// regresses past the thresholds. It is the enforcement half of the
// repo's perf trajectory: BENCH_baseline.json records where the event
// engine is, benchdiff refuses to let a change silently give it back.
//
// Usage:
//
//	benchdiff [flags] BASELINE.json CANDIDATE.json
//
// Checks, in order of trust:
//
//   - engine events/sec: the hot-path microbenchmark. A drop of more
//     than -events-threshold (default 10%) fails. This is the primary
//     gate. When both files carry ref_ops_per_sec (the code-independent
//     calibration loop `experiments -bench-json` measures alongside the
//     engine), the comparison is on the engine/reference ratio, so
//     host clock-speed drift between the two recordings cancels out;
//     otherwise it falls back to raw events/sec.
//   - engine allocs/event: any growth beyond rounding fails. The hot
//     path is allocation-free and must stay that way.
//   - per-target wall-clock: matched by target name, with the looser
//     -wall-threshold (default 35%) because end-to-end wall time
//     absorbs scheduler and machine noise the microbenchmark does not.
//     -wall-threshold 0 disables the wall-clock check entirely.
//
// Both files must come from the same machine to mean anything; the
// comparison is a ratio, not an absolute standard. CI benches the base
// and head revisions back-to-back on one runner for exactly this
// reason (see .github/workflows/ci.yml), and `make bench-compare` does
// the local equivalent against the committed baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// benchFile mirrors the JSON written by cmd/experiments -bench-json.
// Unknown fields are ignored so the two commands can evolve a field
// apart without breaking old baselines.
type benchFile struct {
	Parallelism int    `json:"parallelism"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Scale       uint64 `json:"scale"`
	Engine      struct {
		AllocsPerEvent float64 `json:"allocs_per_event"`
		EventsPerSec   float64 `json:"events_per_sec"`
		RefOpsPerSec   float64 `json:"ref_ops_per_sec"`
	} `json:"engine"`
	Targets []struct {
		Target string  `json:"target"`
		WallMS float64 `json:"wall_ms"`
	} `json:"targets"`
}

func main() {
	var (
		eventsThreshold = flag.Float64("events-threshold", 0.10, "fail when engine events/sec drops by more than this fraction")
		wallThreshold   = flag.Float64("wall-threshold", 0.35, "fail when a target's wall-clock grows by more than this fraction (0 = skip wall-clock checks)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchdiff [flags] BASELINE.json CANDIDATE.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	base, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cand, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	// The numbers are only comparable on matched settings; a mismatch is
	// a usage error, not a regression.
	if base.Scale != cand.Scale || base.Parallelism != cand.Parallelism {
		fatal(fmt.Errorf("baselines are not comparable: baseline scale=%d parallelism=%d, candidate scale=%d parallelism=%d",
			base.Scale, base.Parallelism, cand.Scale, cand.Parallelism))
	}
	if base.GOMAXPROCS != cand.GOMAXPROCS {
		fmt.Printf("note: GOMAXPROCS differs (baseline %d, candidate %d); wall-clock comparison is suspect\n",
			base.GOMAXPROCS, cand.GOMAXPROCS)
	}

	failed := 0

	// Engine throughput: the gate that matters. Normalize by the
	// reference loop when both recordings have one — the ratio is
	// invariant to host clock-speed drift between the recordings.
	bEv, cEv := base.Engine.EventsPerSec, cand.Engine.EventsPerSec
	unit := "events/sec"
	if base.Engine.RefOpsPerSec > 0 && cand.Engine.RefOpsPerSec > 0 {
		bEv /= base.Engine.RefOpsPerSec
		cEv /= cand.Engine.RefOpsPerSec
		unit = "events/refop (normalized)"
	}
	verdict := pass
	if bEv > 0 && cEv < bEv*(1-*eventsThreshold) {
		verdict = fail
		failed++
	}
	fmt.Printf("engine %-25s %10.4g -> %10.4g  (%+6.1f%%, threshold -%.0f%%)  %s\n",
		unit, bEv, cEv, delta(bEv, cEv), *eventsThreshold*100, verdict)
	if unit != "events/sec" {
		fmt.Printf("       raw events/sec         %10.4g -> %10.4g  (%+6.1f%%, informational)\n",
			base.Engine.EventsPerSec, cand.Engine.EventsPerSec, delta(base.Engine.EventsPerSec, cand.Engine.EventsPerSec))
	}

	// Allocations: zero is the contract; allow only float rounding.
	bAl, cAl := base.Engine.AllocsPerEvent, cand.Engine.AllocsPerEvent
	verdict = pass
	if cAl > bAl+0.01 {
		verdict = fail
		failed++
	}
	fmt.Printf("engine allocs/event %14.3f -> %14.3f  (must not grow)                %s\n", bAl, cAl, verdict)

	// Wall-clock per target, matched by name. Targets present on only
	// one side are reported but never fail the diff — figure sets drift
	// across revisions and that is not a perf regression.
	baseWall := map[string]float64{}
	for _, t := range base.Targets {
		baseWall[t.Target] = t.WallMS
	}
	for _, t := range cand.Targets {
		bMS, ok := baseWall[t.Target]
		if !ok {
			fmt.Printf("target %-12s  (new, no baseline)          %10.0f ms\n", t.Target, t.WallMS)
			continue
		}
		delete(baseWall, t.Target)
		verdict = pass
		if *wallThreshold > 0 && bMS > 0 && t.WallMS > bMS*(1+*wallThreshold) {
			verdict = fail
			failed++
		}
		fmt.Printf("target %-12s %11.0f ms -> %11.0f ms  (%+6.1f%%, threshold +%.0f%%)  %s\n",
			t.Target, bMS, t.WallMS, delta(bMS, t.WallMS), *wallThreshold*100, verdict)
	}
	for name := range baseWall {
		fmt.Printf("target %-12s  (dropped from candidate)\n", name)
	}

	if failed > 0 {
		fmt.Printf("benchdiff: %d regression(s) past threshold\n", failed)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions past threshold")
}

const (
	pass = "ok"
	fail = "REGRESSION"
)

func delta(base, cand float64) float64 {
	if base == 0 {
		return 0
	}
	return (cand - base) / base * 100
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Engine.EventsPerSec == 0 && len(f.Targets) == 0 {
		return nil, fmt.Errorf("%s: no benchmark data (wrong file?)", path)
	}
	return &f, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(1)
}
