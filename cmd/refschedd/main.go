// Command refschedd serves the paper's experiments as a long-running
// daemon: simulation-as-a-service over HTTP/JSON on top of the same
// harness the batch CLIs use, with a bounded prioritized job queue,
// single-flight dedup of identical in-flight requests, and a sharded
// byte-budget LRU result cache keyed by the parameter fingerprint.
//
// API:
//
//	POST /v1/jobs                 enqueue a figure or single-cell job
//	GET  /v1/jobs/{id}            job status (progress, typed failures)
//	GET  /v1/jobs/{id}/events     NDJSON progress stream (replay + live)
//	GET  /v1/jobs/{id}/timeline   the job's wall-clock trace (queue wait,
//	                              gate admissions, per-cell simulation
//	                              spans) as Perfetto-loadable Chrome
//	                              trace-event JSON
//	GET  /v1/figures/{name}       synchronous cached-or-computed figure;
//	                              the body is byte-identical to what
//	                              cmd/experiments prints for that target
//	GET  /healthz                 liveness + build version
//	GET  /statsz                  queue depth, cache hit ratio, per-figure
//	                              latency quantiles
//
// Admission control returns 429 + Retry-After once the queue is full.
// SIGINT/SIGTERM drain gracefully: in-flight jobs get -drain to finish,
// then the result cache is persisted to -journal (if set) so the next
// start serves previously computed figures instantly.
//
// Logging is structured (log/slog) on stderr — one request-ID-tagged
// access-log line per HTTP request — as text by default or JSON with
// -log-format json. -pprof additionally mounts net/http/pprof under
// /debug/pprof/ for live profiling.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"refsched/internal/buildinfo"
	"refsched/internal/harness"
	"refsched/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8372", "listen address (port 0 = ephemeral; see -port-file)")
		portFile = flag.String("port-file", "", "write the bound port number to this file once listening")
		version  = flag.Bool("version", false, "print version and exit")

		quick   = flag.Bool("quick", false, "fast preset: larger time scale, fewer mixes, scaled footprints")
		scale   = flag.Uint64("scale", 0, "override time-scale factor (0 = preset)")
		mixes   = flag.String("mixes", "", "comma-separated mix subset, e.g. WL-1,WL-6 (empty = preset)")
		windows = flag.Int("windows", 0, "override measurement windows (0 = preset)")
		fpScale = flag.Float64("footprint-scale", 0, "override footprint multiplier (0 = preset)")
		seed    = flag.Uint64("seed", 1, "random seed")
		verbose = flag.Bool("v", false, "log each simulation cell as it completes")

		jobs       = flag.Int("j", 0, "global budget of concurrently simulating cells (0 = all CPUs, <0 = unbounded)")
		workers    = flag.Int("workers", 0, "jobs executing concurrently (0 = default 2)")
		queueDepth = flag.Int("queue-depth", 0, "queued-job bound before 429 (0 = default 64)")
		cacheMB    = flag.Int64("cache-mb", 0, "result cache budget in MiB (0 = default 64)")
		shards     = flag.Int("cache-shards", 0, "result cache shard count (0 = default 8)")
		journal    = flag.String("journal", "", "persist the result cache here on shutdown and warm from it on start")
		drain      = flag.Duration("drain", 0, "how long shutdown waits for in-flight jobs (0 = default 30s)")

		logFormat = flag.String("log-format", "text", "structured log encoding on stderr: text|json")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "refschedd: -log-format must be text or json, got %q\n", *logFormat)
		os.Exit(2)
	}
	log := slog.New(handler)

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "refschedd: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	p := harness.DefaultParams()
	if *quick {
		p = harness.QuickParams()
	}
	if *scale != 0 {
		p.Scale = *scale
	}
	if *mixes != "" {
		p.Mixes = strings.Split(*mixes, ",")
	}
	if *windows != 0 {
		p.MeasureWindows = *windows
	}
	if *fpScale != 0 {
		p.FootprintScale = *fpScale
	}
	p.Seed = *seed
	p.Verbose = *verbose

	svc, err := service.New(service.Config{
		Params:       p,
		QueueDepth:   *queueDepth,
		Workers:      *workers,
		CellSlots:    *jobs,
		CacheBytes:   *cacheMB << 20,
		CacheShards:  *shards,
		JournalPath:  *journal,
		DrainTimeout: *drain,
		Logger:       log,
	})
	if err != nil {
		log.Error("startup failed", "error", err)
		os.Exit(1)
	}

	// The profiling endpoints mount on an outer mux so the service
	// handler (and its access log) stays unaware of them; without
	// -pprof the paths simply 404.
	var root http.Handler = svc
	if *pprofOn {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", svc)
		root = mux
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "error", err)
		os.Exit(1)
	}
	if *portFile != "" {
		port := ln.Addr().(*net.TCPAddr).Port
		if err := os.WriteFile(*portFile, []byte(strconv.Itoa(port)+"\n"), 0o644); err != nil {
			log.Error("writing port file failed", "path", *portFile, "error", err)
			os.Exit(1)
		}
	}
	log.Info("listening", "addr", ln.Addr().String(),
		"version", buildinfo.Get().String(), "pprof", *pprofOn)

	httpSrv := &http.Server{Handler: root}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		log.Error("serve failed", "error", err)
		os.Exit(1)
	}
	stop()

	// Drain: finish in-flight jobs (bounded by -drain), persist the
	// cache, then let in-flight HTTP responses flush.
	log.Info("draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), svcDrainBudget(*drain))
	defer cancel()
	if err := svc.Shutdown(shutCtx); err != nil {
		log.Error("drain failed", "error", err)
		httpSrv.Shutdown(shutCtx)
		os.Exit(1)
	}
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Error("http shutdown failed", "error", err)
		os.Exit(1)
	}
	log.Info("drained cleanly")
}

// svcDrainBudget gives the whole shutdown sequence a hard ceiling a
// little past the service drain deadline, so a wedged job cannot hang
// the process forever.
func svcDrainBudget(drain time.Duration) time.Duration {
	if drain <= 0 {
		drain = 30 * time.Second
	}
	return drain + 15*time.Second
}
