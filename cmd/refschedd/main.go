// Command refschedd serves the paper's experiments as a long-running
// daemon: simulation-as-a-service over HTTP/JSON on top of the same
// harness the batch CLIs use, with a bounded prioritized job queue,
// single-flight dedup of identical in-flight requests, and a sharded
// byte-budget LRU result cache keyed by the parameter fingerprint.
//
// API:
//
//	POST /v1/jobs                 enqueue a figure or single-cell job
//	GET  /v1/jobs/{id}            job status (progress, typed failures)
//	GET  /v1/jobs/{id}/events     NDJSON progress stream (replay + live)
//	GET  /v1/figures/{name}       synchronous cached-or-computed figure;
//	                              the body is byte-identical to what
//	                              cmd/experiments prints for that target
//	GET  /healthz                 liveness + build version
//	GET  /statsz                  queue depth, cache hit ratio, per-figure
//	                              latency quantiles
//
// Admission control returns 429 + Retry-After once the queue is full.
// SIGINT/SIGTERM drain gracefully: in-flight jobs get -drain to finish,
// then the result cache is persisted to -journal (if set) so the next
// start serves previously computed figures instantly.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"refsched/internal/buildinfo"
	"refsched/internal/harness"
	"refsched/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8372", "listen address (port 0 = ephemeral; see -port-file)")
		portFile = flag.String("port-file", "", "write the bound port number to this file once listening")
		version  = flag.Bool("version", false, "print version and exit")

		quick   = flag.Bool("quick", false, "fast preset: larger time scale, fewer mixes, scaled footprints")
		scale   = flag.Uint64("scale", 0, "override time-scale factor (0 = preset)")
		mixes   = flag.String("mixes", "", "comma-separated mix subset, e.g. WL-1,WL-6 (empty = preset)")
		windows = flag.Int("windows", 0, "override measurement windows (0 = preset)")
		fpScale = flag.Float64("footprint-scale", 0, "override footprint multiplier (0 = preset)")
		seed    = flag.Uint64("seed", 1, "random seed")
		verbose = flag.Bool("v", false, "log each simulation cell as it completes")

		jobs       = flag.Int("j", 0, "global budget of concurrently simulating cells (0 = all CPUs, <0 = unbounded)")
		workers    = flag.Int("workers", 0, "jobs executing concurrently (0 = default 2)")
		queueDepth = flag.Int("queue-depth", 0, "queued-job bound before 429 (0 = default 64)")
		cacheMB    = flag.Int64("cache-mb", 0, "result cache budget in MiB (0 = default 64)")
		shards     = flag.Int("cache-shards", 0, "result cache shard count (0 = default 8)")
		journal    = flag.String("journal", "", "persist the result cache here on shutdown and warm from it on start")
		drain      = flag.Duration("drain", 0, "how long shutdown waits for in-flight jobs (0 = default 30s)")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get())
		return
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "refschedd: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	p := harness.DefaultParams()
	if *quick {
		p = harness.QuickParams()
	}
	if *scale != 0 {
		p.Scale = *scale
	}
	if *mixes != "" {
		p.Mixes = strings.Split(*mixes, ",")
	}
	if *windows != 0 {
		p.MeasureWindows = *windows
	}
	if *fpScale != 0 {
		p.FootprintScale = *fpScale
	}
	p.Seed = *seed
	p.Verbose = *verbose

	svc, err := service.New(service.Config{
		Params:       p,
		QueueDepth:   *queueDepth,
		Workers:      *workers,
		CellSlots:    *jobs,
		CacheBytes:   *cacheMB << 20,
		CacheShards:  *shards,
		JournalPath:  *journal,
		DrainTimeout: *drain,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "refschedd: %v\n", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "refschedd: %v\n", err)
		os.Exit(1)
	}
	if *portFile != "" {
		port := ln.Addr().(*net.TCPAddr).Port
		if err := os.WriteFile(*portFile, []byte(strconv.Itoa(port)+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "refschedd: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "refschedd: %s listening on %s\n", buildinfo.Get(), ln.Addr())

	httpSrv := &http.Server{Handler: svc}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "refschedd: %v\n", err)
		os.Exit(1)
	}
	stop()

	// Drain: finish in-flight jobs (bounded by -drain), persist the
	// cache, then let in-flight HTTP responses flush.
	fmt.Fprintln(os.Stderr, "refschedd: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), svcDrainBudget(*drain))
	defer cancel()
	if err := svc.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "refschedd: drain: %v\n", err)
		httpSrv.Shutdown(shutCtx)
		os.Exit(1)
	}
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "refschedd: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "refschedd: drained cleanly")
}

// svcDrainBudget gives the whole shutdown sequence a hard ceiling a
// little past the service drain deadline, so a wedged job cannot hang
// the process forever.
func svcDrainBudget(drain time.Duration) time.Duration {
	if drain <= 0 {
		drain = 30 * time.Second
	}
	return drain + 15*time.Second
}
