// Command refschedd serves the paper's experiments as a long-running
// daemon: simulation-as-a-service over HTTP/JSON on top of the same
// harness the batch CLIs use, with a bounded prioritized job queue,
// single-flight dedup of identical in-flight requests, and a sharded
// byte-budget LRU result cache keyed by the parameter fingerprint.
//
// API:
//
//	POST /v1/jobs                 enqueue a figure or single-cell job
//	GET  /v1/jobs/{id}            job status (progress, typed failures)
//	GET  /v1/jobs/{id}/events     NDJSON progress stream (replay + live)
//	GET  /v1/jobs/{id}/timeline   the job's wall-clock trace (queue wait,
//	                              gate admissions, per-cell simulation
//	                              spans) as Perfetto-loadable Chrome
//	                              trace-event JSON
//	GET  /v1/figures/{name}       synchronous cached-or-computed figure;
//	                              the body is byte-identical to what
//	                              cmd/experiments prints for that target
//	GET  /healthz                 liveness + build version (+ node id when
//	                              clustered)
//	GET  /statsz                  queue depth, cache hit ratio, per-figure
//	                              latency quantiles (+ cluster block when
//	                              clustered)
//
// With -peers/-node-id, N daemons form a cluster (DESIGN.md §11):
// requests forward one hop to their key's consistent-hash owner, local
// cache misses consult the owner's cache before simulating, and sweep
// cells fan out to peers with spare -fanout slots — all of it absent
// (and the daemon byte-identical to a standalone build) without -peers.
// Clustered daemons additionally serve the cluster-internal endpoints
// POST /v1/cells, GET /v1/cache/{key}, and GET /v1/cluster/timeline.
//
// Admission control returns 429 + Retry-After once the queue is full,
// when a tenant (X-Tenant header) exceeds its -tenant-rate bucket or
// -tenant-max-in-flight cap, or when brownout sheds low-priority exact
// work under queue pressure; each rejection carries a structured body
// naming the tenant, the reason, and a retry estimate. While browned
// out, default-fidelity figure GETs are served from the analytical
// approx tier (marked "X-Fidelity: approx" + "Degraded: true"). A
// watchdog kills jobs whose engine stops making progress, jobs accept
// a deadline_ms budget, and -job-wal makes acknowledged jobs crash
// durable: a SIGKILLed daemon replays them on restart under their
// original ids.
//
// SIGINT/SIGTERM drain gracefully: in-flight jobs get -drain to finish,
// then the result cache is persisted to -journal (if set) so the next
// start serves previously computed figures instantly.
//
// Logging is structured (log/slog) on stderr — one request-ID-tagged
// access-log line per HTTP request — as text by default or JSON with
// -log-format json. -pprof additionally mounts net/http/pprof under
// /debug/pprof/ for live profiling.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"refsched/internal/buildinfo"
	"refsched/internal/chaos"
	"refsched/internal/cluster"
	"refsched/internal/harness"
	"refsched/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8372", "listen address (port 0 = ephemeral; see -port-file)")
		portFile = flag.String("port-file", "", "write the bound port number to this file once listening")
		version  = flag.Bool("version", false, "print version and exit")

		quick   = flag.Bool("quick", false, "fast preset: larger time scale, fewer mixes, scaled footprints")
		scale   = flag.Uint64("scale", 0, "override time-scale factor (0 = preset)")
		mixes   = flag.String("mixes", "", "comma-separated mix subset, e.g. WL-1,WL-6 (empty = preset)")
		windows = flag.Int("windows", 0, "override measurement windows (0 = preset)")
		fpScale = flag.Float64("footprint-scale", 0, "override footprint multiplier (0 = preset)")
		seed    = flag.Uint64("seed", 1, "random seed")
		verbose = flag.Bool("v", false, "log each simulation cell as it completes")

		jobs       = flag.Int("j", 0, "global budget of concurrently simulating cells (0 = all CPUs, <0 = unbounded)")
		workers    = flag.Int("workers", 0, "jobs executing concurrently (0 = default 2)")
		queueDepth = flag.Int("queue-depth", 0, "queued-job bound before 429 (0 = default 64)")
		cacheMB    = flag.Int64("cache-mb", 0, "result cache budget in MiB (0 = default 64)")
		shards     = flag.Int("cache-shards", 0, "result cache shard count (0 = default 8)")
		journal    = flag.String("journal", "", "persist the result cache here on shutdown and warm from it on start")
		jobWAL     = flag.String("job-wal", "", "acknowledged-job write-ahead log; accepted jobs survive a crash and replay on restart")
		drain      = flag.Duration("drain", 0, "how long shutdown waits for in-flight jobs (0 = default 30s)")

		tenantRate     = flag.Float64("tenant-rate", 0, "per-tenant sustained admission rate in req/s (0 = unlimited)")
		tenantBurst    = flag.Int("tenant-burst", 0, "per-tenant token-bucket burst (0 = max(1, ceil(rate)))")
		tenantInFlight = flag.Int("tenant-max-in-flight", 0, "per-tenant queued+running job cap (0 = unlimited)")

		brownoutHigh  = flag.Float64("brownout-high", 0, "queue fraction that engages brownout (0 = default 0.75)")
		brownoutLow   = flag.Float64("brownout-low", 0, "queue fraction that disengages brownout (0 = default 0.25)")
		brownoutHold  = flag.Duration("brownout-hold", 0, "minimum time brownout stays engaged (0 = default 1s)")
		brownoutShed  = flag.Int("brownout-shed-below", 0, "while engaged, shed fresh exact jobs below this priority")
		noBrownout    = flag.Bool("no-brownout", false, "disable brownout graceful degradation")
		watchdogEvery = flag.Duration("watchdog-interval", 0, "stalled-job scan interval (0 = default 1s)")
		watchdogStall = flag.Duration("watchdog-stall", 0, "kill a running job after this long without engine progress (0 = default 30s)")
		noWatchdog    = flag.Bool("no-watchdog", false, "disable the stalled-job watchdog")

		chaosFrac  = flag.Float64("chaos-frac", 0, "fraction of simulation cells to fault-inject, in [0,1] (0 = off)")
		chaosMode  = flag.String("chaos-mode", "transient", "injected fault shape: transient|error|panic|stall|mixed")
		chaosSeed  = flag.Uint64("chaos-seed", 1, "fault placement seed")
		chaosStall = flag.Duration("chaos-stall", 0, "stall-mode sleep per faulted cell (0 = default 10ms)")

		peers  = flag.String("peers", "", "cluster membership as id=host:port,... including this node (empty = single-node)")
		nodeID = flag.String("node-id", "", "this node's id within -peers (required with -peers)")
		fanout = flag.Int("fanout", 2, "per-peer cap on concurrently dispatched remote sweep cells (0 = no fan-out)")

		logFormat = flag.String("log-format", "text", "structured log encoding on stderr: text|json")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "refschedd: -log-format must be text or json, got %q\n", *logFormat)
		os.Exit(2)
	}
	log := slog.New(handler)

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "refschedd: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	p := harness.DefaultParams()
	if *quick {
		p = harness.QuickParams()
	}
	if *scale != 0 {
		p.Scale = *scale
	}
	if *mixes != "" {
		p.Mixes = strings.Split(*mixes, ",")
	}
	if *windows != 0 {
		p.MeasureWindows = *windows
	}
	if *fpScale != 0 {
		p.FootprintScale = *fpScale
	}
	p.Seed = *seed
	p.Verbose = *verbose

	if *chaosFrac > 0 {
		mode, err := chaos.ParseMode(*chaosMode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "refschedd: %v\n", err)
			os.Exit(2)
		}
		p.Chaos = chaos.New(chaos.Config{
			Seed:  *chaosSeed,
			Frac:  *chaosFrac,
			Mode:  mode,
			Stall: *chaosStall,
		})
	}

	var clu *cluster.Cluster
	if *peers != "" {
		members, err := cluster.ParsePeers(*peers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "refschedd: %v\n", err)
			os.Exit(2)
		}
		clu, err = cluster.New(cluster.Config{
			NodeID:        *nodeID,
			Peers:         members,
			FanoutPerPeer: *fanout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "refschedd: %v\n", err)
			os.Exit(2)
		}
	} else if *nodeID != "" {
		fmt.Fprintln(os.Stderr, "refschedd: -node-id requires -peers")
		os.Exit(2)
	}

	svc, err := service.New(service.Config{
		Params:       p,
		QueueDepth:   *queueDepth,
		Workers:      *workers,
		CellSlots:    *jobs,
		CacheBytes:   *cacheMB << 20,
		CacheShards:  *shards,
		JournalPath:  *journal,
		WALPath:      *jobWAL,
		DrainTimeout: *drain,
		Logger:       log,
		Cluster:      clu,
		Tenant: service.TenantConfig{
			Rate:        *tenantRate,
			Burst:       *tenantBurst,
			MaxInFlight: *tenantInFlight,
		},
		Brownout: service.BrownoutConfig{
			HighFrac:          *brownoutHigh,
			LowFrac:           *brownoutLow,
			MinHold:           *brownoutHold,
			ShedBelowPriority: *brownoutShed,
			Disabled:          *noBrownout,
		},
		Watchdog: service.WatchdogConfig{
			Interval: *watchdogEvery,
			Stall:    *watchdogStall,
			Disabled: *noWatchdog,
		},
	})
	if err != nil {
		log.Error("startup failed", "error", err)
		os.Exit(1)
	}

	// The profiling endpoints mount on an outer mux so the service
	// handler (and its access log) stays unaware of them; without
	// -pprof the paths simply 404.
	var root http.Handler = svc
	if *pprofOn {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", svc)
		root = mux
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "error", err)
		os.Exit(1)
	}
	if *portFile != "" {
		port := ln.Addr().(*net.TCPAddr).Port
		if err := os.WriteFile(*portFile, []byte(strconv.Itoa(port)+"\n"), 0o644); err != nil {
			log.Error("writing port file failed", "path", *portFile, "error", err)
			os.Exit(1)
		}
	}
	if clu != nil {
		log.Info("clustered", "node", *nodeID, "peers", len(clu.Members())-1, "fanout", *fanout)
	}
	log.Info("listening", "addr", ln.Addr().String(),
		"version", buildinfo.Get().String(), "pprof", *pprofOn)

	httpSrv := &http.Server{Handler: root}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		log.Error("serve failed", "error", err)
		os.Exit(1)
	}
	stop()

	// Drain: finish in-flight jobs (bounded by -drain), persist the
	// cache, then let in-flight HTTP responses flush.
	log.Info("draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), svcDrainBudget(*drain))
	defer cancel()
	if err := svc.Shutdown(shutCtx); err != nil {
		log.Error("drain failed", "error", err)
		httpSrv.Shutdown(shutCtx)
		os.Exit(1)
	}
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Error("http shutdown failed", "error", err)
		os.Exit(1)
	}
	log.Info("drained cleanly")
}

// svcDrainBudget gives the whole shutdown sequence a hard ceiling a
// little past the service drain deadline, so a wedged job cannot hang
// the process forever.
func svcDrainBudget(drain time.Duration) time.Duration {
	if drain <= 0 {
		drain = 30 * time.Second
	}
	return drain + 15*time.Second
}
