package main

import (
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonSmoke is the end-to-end drill `make ci` runs: build the
// real binary, bring it up on an ephemeral port, round-trip a figure
// through the cache, and check SIGTERM drains to a clean exit 0.
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "refschedd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	portFile := filepath.Join(dir, "port")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-port-file", portFile,
		"-quick", "-journal", filepath.Join(dir, "cache.json"))
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	defer cmd.Process.Kill()

	base := waitReady(t, portFile, exited)

	// Figure round-trip: miss computes, hit serves the same bytes.
	body1 := getFigure(t, base, "miss")
	body2 := getFigure(t, base, "hit")
	if body1 != body2 {
		t.Fatal("cache hit served different bytes than the miss")
	}
	if !strings.Contains(body1, "table1") {
		t.Fatalf("unexpected figure body:\n%s", body1)
	}

	// SIGTERM drains to exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

// waitReady polls the port file and /healthz until the daemon answers.
func waitReady(t *testing.T, portFile string, exited <-chan error) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		select {
		case err := <-exited:
			t.Fatalf("daemon exited before becoming ready: %v", err)
		default:
		}
		if raw, err := os.ReadFile(portFile); err == nil {
			base := "http://127.0.0.1:" + strings.TrimSpace(string(raw))
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				ok := resp.StatusCode == http.StatusOK
				resp.Body.Close()
				if ok {
					return base
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never became healthy")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func getFigure(t *testing.T, base, wantCache string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/figures/table1")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("figure status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != wantCache {
		t.Fatalf("X-Cache = %q, want %q", got, wantCache)
	}
	return string(body)
}

// TestPprofSmoke: with -pprof the daemon answers /debug/pprof/; without
// the flag those paths 404 (the endpoints are strictly opt-in), and in
// both cases the service API keeps working underneath the outer mux.
func TestPprofSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "refschedd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	for _, tc := range []struct {
		name   string
		pprof  bool
		status int
	}{
		{"enabled", true, http.StatusOK},
		{"disabled", false, http.StatusNotFound},
	} {
		t.Run(tc.name, func(t *testing.T) {
			portFile := filepath.Join(dir, "port-"+tc.name)
			args := []string{"-addr", "127.0.0.1:0", "-port-file", portFile, "-quick"}
			if tc.pprof {
				args = append(args, "-pprof")
			}
			cmd := exec.Command(bin, args...)
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			exited := make(chan error, 1)
			go func() { exited <- cmd.Wait() }()
			defer func() {
				cmd.Process.Signal(syscall.SIGTERM)
				select {
				case <-exited:
				case <-time.After(30 * time.Second):
					cmd.Process.Kill()
				}
			}()

			base := waitReady(t, portFile, exited)
			resp, err := http.Get(base + "/debug/pprof/goroutine?debug=1")
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("/debug/pprof/goroutine status = %d, want %d\n%s",
					resp.StatusCode, tc.status, body)
			}
			if tc.pprof && !strings.Contains(string(body), "goroutine") {
				t.Fatalf("pprof body does not look like a goroutine profile:\n%s", body)
			}
		})
	}
}

// TestLogFormatFlag: an invalid -log-format is a usage error (exit 2).
func TestLogFormatFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the go tool")
	}
	cmd := exec.Command("go", "run", ".", "-log-format", "yaml")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() == 0 {
		t.Fatalf("invalid -log-format: err=%v out=%s", err, out)
	}
	if !strings.Contains(string(out), "-log-format") {
		t.Fatalf("error output does not mention the flag:\n%s", out)
	}
}

// TestVersionFlag: -version prints the build stamp and exits 0.
func TestVersionFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the go tool")
	}
	out, err := exec.Command("go", "run", ".", "-version").Output()
	if err != nil {
		t.Fatalf("-version: %v", err)
	}
	if !strings.Contains(string(out), "refsched") {
		t.Fatalf("-version output = %q", out)
	}
}
