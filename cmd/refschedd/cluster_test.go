package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildDaemon compiles the real binary into dir.
func buildDaemon(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "refschedd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// reservePorts picks n free localhost ports by binding and releasing
// them; the daemons re-bind moments later. The -peers spec needs every
// address before any node starts, so ephemeral :0 ports can't be used.
func reservePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	lns := make([]net.Listener, n)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		ports[i] = ln.Addr().(*net.TCPAddr).Port
	}
	for _, ln := range lns {
		ln.Close()
	}
	return ports
}

// clusterNode is one running daemon process.
type clusterNode struct {
	id     string
	base   string
	cmd    *exec.Cmd
	exited chan error
}

// startNode launches one daemon and waits for /healthz.
func startNode(t *testing.T, bin, id, addr string, extra ...string) *clusterNode {
	t.Helper()
	args := append([]string{"-addr", addr, "-quick", "-mixes", "WL-6"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	n := &clusterNode{id: id, base: "http://" + addr, cmd: cmd, exited: make(chan error, 1)}
	go func() { n.exited <- cmd.Wait() }()
	t.Cleanup(func() {
		cmd.Process.Kill()
		select {
		case <-n.exited:
		case <-time.After(10 * time.Second):
		}
	})

	deadline := time.Now().Add(30 * time.Second)
	for {
		select {
		case err := <-n.exited:
			t.Fatalf("node %s exited before becoming ready: %v", id, err)
		default:
		}
		resp, err := http.Get(n.base + "/healthz")
		if err == nil {
			ok := resp.StatusCode == http.StatusOK
			resp.Body.Close()
			if ok {
				return n
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %s never became healthy", id)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// getPath GETs base+path with optional headers and returns the response
// plus body.
func getPath(t *testing.T, base, path string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	client := &http.Client{Timeout: 5 * time.Minute}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// clusterBlock is the /statsz cluster slice these drills assert on.
type clusterBlock struct {
	NodeID          string `json:"node_id"`
	RemoteCacheHits uint64 `json:"remote_cache_hits"`
	CacheServed     uint64 `json:"cache_lookups_served"`
	CellsDispatched uint64 `json:"fanout_cells_dispatched"`
	CellsReclaimed  uint64 `json:"fanout_cells_reclaimed"`
	CellsExecuted   uint64 `json:"remote_cells_executed"`
}

func statszCluster(t *testing.T, base string) clusterBlock {
	t.Helper()
	resp, body := getPath(t, base, "/statsz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statsz: %d", resp.StatusCode)
	}
	var st struct {
		Cluster *clusterBlock `json:"cluster"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster == nil {
		t.Fatalf("no cluster block in statsz of %s", base)
	}
	return *st.Cluster
}

// TestClusterSmoke brings up a real 3-node cluster and drills the two
// cross-node data paths end to end: a figure computed on its owner is
// served as a cache hit through another node's cross-shard fallback, and
// placement agreement means every entry node names the same owner.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon binary")
	}
	dir := t.TempDir()
	bin := buildDaemon(t, dir)
	ports := reservePorts(t, 3)
	ids := []string{"a", "b", "c"}
	var specs []string
	for i, id := range ids {
		specs = append(specs, fmt.Sprintf("%s=127.0.0.1:%d", id, ports[i]))
	}
	peers := strings.Join(specs, ",")

	nodes := map[string]*clusterNode{}
	for i, id := range ids {
		nodes[id] = startNode(t, bin, id, fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-peers", peers, "-node-id", id, "-fanout", "0")
	}

	// Clustered /healthz names its node.
	resp, body := getPath(t, nodes["a"].base, "/healthz", nil)
	var health struct {
		NodeID string `json:"node_id"`
	}
	if err := json.Unmarshal(body, &health); err != nil || health.NodeID != "a" {
		t.Fatalf("healthz does not name the node (err=%v): %s", err, body)
	}

	// Compute table1 through normal routing; the response names the
	// owner that computed and cached it.
	resp, ref := getPath(t, nodes["a"].base, "/v1/figures/table1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("figure GET: %d: %s", resp.StatusCode, ref)
	}
	owner := resp.Header.Get("X-Refsched-Node")
	if nodes[owner] == nil {
		t.Fatalf("X-Refsched-Node = %q, not a member", owner)
	}

	// Every entry node routes to the same owner and serves its cache.
	for _, id := range ids {
		resp, got := getPath(t, nodes[id].base, "/v1/figures/table1", nil)
		if n := resp.Header.Get("X-Refsched-Node"); n != owner {
			t.Fatalf("entry %s routed to %s, want %s", id, n, owner)
		}
		if resp.Header.Get("X-Cache") != "hit" {
			t.Fatalf("entry %s repeat GET X-Cache = %q", id, resp.Header.Get("X-Cache"))
		}
		if string(got) != string(ref) {
			t.Fatalf("entry %s served different bytes", id)
		}
	}

	// Cross-shard fallback: a non-owner forced to handle the figure
	// locally (forwarded marker, one hop max) asks the owner's cache
	// instead of simulating.
	other := ids[0]
	if other == owner {
		other = ids[1]
	}
	resp, got := getPath(t, nodes[other].base, "/v1/figures/table1",
		map[string]string{"X-Refsched-Forwarded": "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("marked GET: %d: %s", resp.StatusCode, got)
	}
	if n := resp.Header.Get("X-Refsched-Node"); n != other {
		t.Fatalf("marked request escaped %s to %s", other, n)
	}
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("cross-shard fallback X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	}
	if string(got) != string(ref) {
		t.Fatal("cross-shard bytes differ from the owner's render")
	}
	if st := statszCluster(t, nodes[other].base); st.RemoteCacheHits == 0 {
		t.Fatalf("node %s reports no remote cache hits: %+v", other, st)
	}
	if st := statszCluster(t, nodes[owner].base); st.CacheServed == 0 {
		t.Fatalf("owner %s served no cache lookups: %+v", owner, st)
	}

	// All three drain cleanly.
	for _, n := range nodes {
		if err := n.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
	}
	for id, n := range nodes {
		select {
		case err := <-n.exited:
			if err != nil {
				t.Fatalf("node %s exited non-zero after SIGTERM: %v", id, err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("node %s did not exit after SIGTERM", id)
		}
	}
}

// TestClusterKillNodeByteIdentical is the degraded-mode acceptance
// drill: a fanned-out fig10 sweep, with one peer SIGKILLed mid-sweep,
// must render byte-identical to a single-node daemon's output.
func TestClusterKillNodeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon binary")
	}
	dir := t.TempDir()
	bin := buildDaemon(t, dir)

	// Single-node reference render with identical parameters.
	refPorts := reservePorts(t, 1)
	ref := startNode(t, bin, "ref", fmt.Sprintf("127.0.0.1:%d", refPorts[0]))
	resp, want := getPath(t, ref.base, "/v1/figures/fig10", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference render: %d: %s", resp.StatusCode, want)
	}
	if resp.Header.Get("X-Refsched-Node") != "" {
		t.Fatal("single-node daemon names a cluster node")
	}
	ref.cmd.Process.Signal(syscall.SIGTERM)

	ports := reservePorts(t, 3)
	ids := []string{"a", "b", "c"}
	var specs []string
	for i, id := range ids {
		specs = append(specs, fmt.Sprintf("%s=127.0.0.1:%d", id, ports[i]))
	}
	peers := strings.Join(specs, ",")
	nodes := map[string]*clusterNode{}
	for i, id := range ids {
		nodes[id] = startNode(t, bin, id, fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-peers", peers, "-node-id", id, "-fanout", "2")
	}

	// The approx tier answers instantly, names fig10's owner, and kicks
	// the exact sweep off on it in the background — which immediately
	// starts fanning cells out to both peers.
	resp, body := getPath(t, nodes["a"].base, "/v1/figures/fig10?fidelity=approx", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("approx GET: %d: %s", resp.StatusCode, body)
	}
	owner := resp.Header.Get("X-Refsched-Node")
	if nodes[owner] == nil {
		t.Fatalf("X-Refsched-Node = %q, not a member", owner)
	}

	// SIGKILL a peer of the owner while the sweep runs: its in-flight
	// cells must be reclaimed and re-run locally or on the survivor.
	victim := ids[0]
	if victim == owner {
		victim = ids[1]
	}
	time.Sleep(200 * time.Millisecond)
	if err := nodes[victim].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}

	// The exact render — joined to the in-flight sweep by single-flight
	// dedup — must equal the single-node reference byte for byte.
	resp, got := getPath(t, nodes[owner].base, "/v1/figures/fig10", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact GET: %d: %s", resp.StatusCode, got)
	}
	if string(got) != string(want) {
		t.Fatalf("degraded fanned-out render differs from single-node output:\n--- cluster\n%s\n--- single\n%s", got, want)
	}

	st := statszCluster(t, nodes[owner].base)
	if st.CellsDispatched == 0 {
		t.Fatalf("owner %s dispatched no fan-out cells: %+v", owner, st)
	}
}
