package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSoak is the overload/chaos drill behind `make soak` (and its CI
// variant `make soak-short`). It builds the real refschedd and refload
// binaries and proves the daemon's resilience contract end to end:
//
//  1. refload drives thousands of mixed requests (cell POSTs across
//     tenants, exact and approx figure GETs, stats scrapes) against a
//     deliberately undersized queue with stall chaos slowing cells, so
//     brownout engages for real.
//  2. The daemon is SIGKILLed with acknowledged jobs still queued.
//     The job WAL on disk must contain a durable accept record for
//     every id any client was ever 202-acked — the acknowledgement
//     barrier — and the accepts without done records are the crash's
//     surviving obligations.
//  3. A warm restart on the same WAL replays every obligation to a
//     terminal state under its original id: zero acknowledged-job
//     loss. The restarted daemon recomputes a reference figure
//     byte-identical to the pre-kill answer, drains cleanly, and
//     leaves an empty ledger.
//  4. A separate daemon wedged by 100% stall chaos proves the
//     watchdog kills non-progressing jobs within its bound.
//
// Gated by REFSCHED_SOAK=short|full: "short" (~1k requests) is the
// scheduled-CI variant, "full" (>=5k) the release drill.
func TestSoak(t *testing.T) {
	mode := os.Getenv("REFSCHED_SOAK")
	switch mode {
	case "short", "full":
	case "":
		t.Skip("set REFSCHED_SOAK=short or full to run the soak drill")
	default:
		t.Fatalf("REFSCHED_SOAK=%q, want short or full", mode)
	}
	requests, conc := "1000", "24"
	if mode == "full" {
		requests, conc = "5000", "32"
	}

	dir := t.TempDir()
	refschedd := filepath.Join(dir, "refschedd")
	refload := filepath.Join(dir, "refload")
	for bin, pkg := range map[string]string{refschedd: ".", refload: "../refload"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	walPath := filepath.Join(dir, "jobs.wal")
	journal := filepath.Join(dir, "cache.json")
	daemonArgs := []string{
		"-addr", "127.0.0.1:0",
		"-quick", "-scale", "4096", "-footprint-scale", "0.01",
		"-mixes", "WL-6", "-windows", "1",
		"-workers", "2", "-queue-depth", "32",
		"-job-wal", walPath, "-journal", journal,
		// Stall chaos slows ~a third of cells without failing any, so
		// the queue actually backs up and brownout engages under load.
		"-chaos-frac", "0.35", "-chaos-mode", "stall", "-chaos-stall", "75ms",
	}

	// Phase 1: daemon A takes the load.
	portA := filepath.Join(dir, "port-a")
	a := exec.Command(refschedd, append(daemonArgs, "-port-file", portA)...)
	a.Stderr = io.Discard
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	aExited := make(chan error, 1)
	go func() { aExited <- a.Wait() }()
	defer a.Process.Kill()
	baseA := waitReady(t, portA, aExited)

	// Reference answer before any load, pinned to exact fidelity so a
	// brownout downgrade can never change the comparison.
	reference := getExactFigure(t, baseA, "fig10")

	ackedPath := filepath.Join(dir, "acked")
	outPath := filepath.Join(dir, "refload.json")
	load := exec.Command(refload,
		"-addr", strings.TrimPrefix(baseA, "http://"),
		"-n", requests, "-c", conc, "-tenants", "4",
		"-cell-frac", "0.6", "-approx-frac", "0.5",
		"-seeds", "48", "-mixes", "WL-6",
		"-acked-file", ackedPath, "-out", outPath)
	load.Stderr = os.Stderr
	if out, err := load.Output(); err != nil {
		t.Fatalf("refload: %v\n%s", err, out)
	}
	acked := readLines(t, ackedPath)
	if len(acked) == 0 {
		t.Fatal("refload acknowledged no jobs; the drill exercised nothing")
	}
	t.Logf("refload acked %d fresh jobs; summary at %s", len(acked), outPath)

	// Brownout must have genuinely engaged under the load.
	st := getStats(t, baseA)
	if st.Resilience.BrownoutEngagements < 1 {
		t.Fatalf("brownout never engaged during load: %+v", st.Resilience)
	}

	// A few last acknowledged jobs with unique seeds, then SIGKILL with
	// them (and whatever backlog remains) still pending.
	extras := postExtraJobs(t, baseA, 6)
	acked = append(acked, extras...)
	if err := a.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-aExited

	// The acknowledgement barrier: every 202-acked id has a durable
	// accept record in the WAL the kill left behind.
	accepts, dones := parseWALHistory(t, walPath)
	for _, id := range acked {
		if !accepts[id] {
			t.Fatalf("acked job %s has no durable accept record: acknowledged-job loss", id)
		}
	}
	var pending []string
	for id := range accepts {
		if !dones[id] {
			pending = append(pending, id)
		}
	}
	if len(pending) == 0 {
		t.Fatal("no pending obligations at kill time; the crash window was empty")
	}
	t.Logf("WAL: %d accepts, %d pending at kill", len(accepts), len(pending))

	// Phase 2: daemon B warm-restarts on the same WAL and journal.
	portB := filepath.Join(dir, "port-b")
	b := exec.Command(refschedd, append(daemonArgs, "-port-file", portB)...)
	b.Stderr = io.Discard
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	bExited := make(chan error, 1)
	go func() { bExited <- b.Wait() }()
	defer b.Process.Kill()
	baseB := waitReady(t, portB, bExited)

	// Zero acknowledged-job loss: every pending obligation is known to
	// the restarted daemon under its original id and reaches a terminal
	// state.
	for _, id := range pending {
		waitTerminal(t, baseB, id)
	}

	// The restarted daemon answers the reference figure byte-identically.
	if got := getExactFigure(t, baseB, "fig10"); !bytes.Equal(got, reference) {
		t.Fatalf("fig10 after warm restart differs from pre-kill reference:\n--- before\n%s\n--- after\n%s", reference, got)
	}

	// Graceful drain leaves an empty ledger.
	if err := b.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-bExited:
		if err != nil {
			t.Fatalf("daemon B exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("daemon B did not drain after SIGTERM")
	}
	accepts, dones = parseWALHistory(t, walPath)
	for id := range accepts {
		if !dones[id] {
			t.Fatalf("job %s still pending in the ledger after a clean drain", id)
		}
	}

	// Phase 3: the watchdog drill. 100% stall chaos wedges every cell
	// for far longer than the stall bound; the watchdog must kill the
	// job, not wait the stall out.
	portW := filepath.Join(dir, "port-w")
	w := exec.Command(refschedd,
		"-addr", "127.0.0.1:0", "-port-file", portW,
		"-quick", "-scale", "4096", "-footprint-scale", "0.01",
		"-mixes", "WL-6", "-windows", "1", "-workers", "1",
		"-chaos-frac", "1", "-chaos-mode", "stall", "-chaos-stall", "120s",
		"-watchdog-interval", "100ms", "-watchdog-stall", "2s")
	w.Stderr = io.Discard
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	wExited := make(chan error, 1)
	go func() { wExited <- w.Wait() }()
	defer w.Process.Kill()
	baseW := waitReady(t, portW, wExited)

	id := postCellJob(t, baseW, 1)
	t0 := time.Now()
	status := waitTerminal(t, baseW, id)
	if status.State != "failed" || !strings.Contains(status.Error, "watchdog") {
		t.Fatalf("wedged job ended %q (%s), want a watchdog kill", status.State, status.Error)
	}
	if elapsed := time.Since(t0); elapsed > 30*time.Second {
		t.Fatalf("watchdog took %s to kill a job stalled past a 2s bound", elapsed)
	}
	if st := getStats(t, baseW); st.Resilience.WatchdogKills < 1 {
		t.Fatalf("watchdog_kills = %d after a kill", st.Resilience.WatchdogKills)
	}
	if err := w.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-wExited:
		if err != nil {
			t.Fatalf("watchdog daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("watchdog daemon did not drain after SIGTERM")
	}
}

// soakStats is the /statsz slice the drill asserts on.
type soakStats struct {
	Resilience struct {
		BrownoutEngagements uint64 `json:"brownout_engagements"`
		WatchdogKills       uint64 `json:"watchdog_kills"`
	} `json:"resilience"`
}

func getStats(t *testing.T, base string) soakStats {
	t.Helper()
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st soakStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getExactFigure(t *testing.T, base, name string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/figures/" + name + "?fidelity=exact")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("figure %s status %d: %s", name, resp.StatusCode, body)
	}
	return body
}

// postCellJob enqueues one fresh single-cell job and returns its id,
// retrying 429s while the queue drains leftover load.
func postCellJob(t *testing.T, base string, seed uint64) string {
	t.Helper()
	body := fmt.Sprintf(`{"cell":{"mix":"WL-6","density":"8Gb","bundle":"allbank"},"params":{"seed":%d}}`, seed)
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			ID string `json:"id"`
		}
		decodeErr := json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if time.Now().After(deadline) {
				t.Fatalf("queue never freed a slot for seed %d", seed)
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if decodeErr != nil {
			t.Fatal(decodeErr)
		}
		if resp.StatusCode != http.StatusAccepted || out.ID == "" {
			t.Fatalf("cell POST status %d id %q", resp.StatusCode, out.ID)
		}
		return out.ID
	}
}

// postExtraJobs acknowledges n fresh jobs (unique seeds far outside
// refload's range) so the imminent SIGKILL certainly strands pending,
// acknowledged work.
func postExtraJobs(t *testing.T, base string, n int) []string {
	t.Helper()
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, postCellJob(t, base, uint64(9001+i)))
	}
	return ids
}

type jobStatus struct {
	State string `json:"state"`
	Error string `json:"error"`
}

// waitTerminal polls a job until it reaches any terminal state. A 404
// for an acknowledged id is the one unforgivable answer: it means the
// daemon lost acknowledged work.
func waitTerminal(t *testing.T, base, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			t.Fatalf("acknowledged job %s unknown after restart: acknowledged-job loss", id)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job %s status %d: %s", id, resp.StatusCode, body)
		}
		var st jobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "done", "failed", "quarantined", "expired":
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, st.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func readLines(t *testing.T, path string) []string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if l := strings.TrimSpace(sc.Text()); l != "" {
			lines = append(lines, l)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// parseWALHistory reads the raw ledger — every accept and done id since
// the last compaction — tolerating a torn final line.
func parseWALHistory(t *testing.T, path string) (accepts, dones map[string]bool) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	accepts, dones = map[string]bool{}, map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var rec struct {
			Op string `json:"op"`
			ID string `json:"id"`
		}
		if json.Unmarshal(sc.Bytes(), &rec) != nil {
			continue // torn tail from the kill
		}
		switch rec.Op {
		case "accept":
			accepts[rec.ID] = true
		case "done":
			dones[rec.ID] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return accepts, dones
}
