// Command refsim runs a single simulation: one workload mix, one
// density, one policy bundle, and prints the full report.
//
// Examples:
//
//	refsim -mix WL-6 -density 32 -policy allbank
//	refsim -mix WL-6 -density 32 -codesign -v
//	refsim -bench mcf,mcf,povray,povray -policy perbank -temp 95
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"refsched"
)

func main() {
	var (
		mixName  = flag.String("mix", "WL-1", "Table 2 mix name")
		benchCSV = flag.String("bench", "", "explicit benchmark list (overrides -mix), e.g. mcf,mcf,povray")
		density  = flag.Int("density", 32, "DRAM density in Gb (8/16/24/32)")
		policy   = flag.String("policy", "allbank", "refresh policy: none|allbank|perbank|perbankseq|oooperbank|fgr2x|fgr4x|adaptive")
		codesign = flag.Bool("codesign", false, "enable the full co-design (overrides -policy)")
		hot      = flag.Bool("hot", false, ">85C operation: 32ms retention, 2ms timeslice")
		scale    = flag.Uint64("scale", 64, "time-scale factor (1 = paper wall clock)")
		warmup   = flag.Int("warmup", 1, "warmup retention windows")
		measure  = flag.Int("measure", 2, "measured retention windows")
		fpScale  = flag.Float64("footprint-scale", 1.0, "footprint multiplier")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	mix, err := resolveMix(*mixName, *benchCSV)
	if err != nil {
		fatal(err)
	}

	cfg := refsched.DefaultConfig(refsched.Density(*density), *scale)
	if *hot {
		cfg = refsched.HighTemp(cfg)
	}
	if *codesign {
		cfg = refsched.CoDesign(cfg)
	} else {
		cfg = refsched.WithRefresh(cfg, refsched.RefreshPolicy(*policy))
	}
	cfg.Seed = *seed

	sys, err := refsched.NewSystemWithOptions(cfg, mix, refsched.Options{FootprintScale: *fpScale})
	if err != nil {
		fatal(err)
	}
	rep, err := sys.RunWindows(*warmup, *measure)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep)
	fmt.Printf("reads=%d writes=%d refreshCmds=%d refreshStalledReads=%d (%.2f%%)\n",
		rep.Reads, rep.Writes, rep.RefreshCommands, rep.RefreshStalledReads, rep.RefreshStalledFrac*100)
	fmt.Printf("sched: picks=%d eligible=%d fallback=%d bestEffort=%d skipped=%d\n",
		rep.SchedStats.Picks, rep.SchedStats.EligiblePicks, rep.SchedStats.FallbackPicks,
		rep.SchedStats.BestEffortPicks, rep.SchedStats.SkippedCandidates)
	fmt.Printf("alloc: cacheHits=%d buddyHits=%d stashed=%d fallbacks=%d\n",
		rep.AllocStats.CacheHits, rep.AllocStats.BuddyHits, rep.AllocStats.Stashed, rep.AllocStats.Fallbacks)
}

func resolveMix(name, benchCSV string) (refsched.Mix, error) {
	if benchCSV != "" {
		mix := refsched.Mix{Name: "custom"}
		for _, b := range strings.Split(benchCSV, ",") {
			b = strings.TrimSpace(b)
			if _, err := refsched.GetBenchmark(b); err != nil {
				return mix, err
			}
			mix.Entries = append(mix.Entries, refsched.MixEntry{Bench: b, Count: 1})
		}
		return mix, nil
	}
	for _, m := range refsched.Table2() {
		if m.Name == name {
			return m, nil
		}
	}
	return refsched.Mix{}, fmt.Errorf("unknown mix %q (want WL-1..WL-10)", name)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "refsim: %v\n", err)
	os.Exit(1)
}
