// Command refsim runs single simulations: one or more workload mixes at
// one density and policy bundle, printing the full report for each.
// With several mixes (comma-separated) the runs execute in parallel
// across -j workers; each run is deterministically seeded, so reports
// are printed in mix order and identical at any -j.
//
// Examples:
//
//	refsim -mix WL-6 -density 32 -policy allbank
//	refsim -mix WL-6 -density 32 -codesign -v
//	refsim -mix WL-1,WL-5,WL-6 -codesign -j 4
//	refsim -bench mcf,mcf,povray,povray -policy perbank -temp 95
//	refsim -mix WL-6 -density 24 -policy perbank -mode=approx
//
// A failing run is quarantined (reported, the other mixes still
// complete, exit 3) unless -failfast is given. -metrics FILE writes the
// full cumulative metrics hierarchy (per-bank, per-controller, per-task
// counters) of every completed run as JSON keyed "slot|mix". -journal FILE persists
// each completed run atomically; -resume skips runs already on record,
// so an interrupted multi-mix invocation can be finished later with
// identical output. SIGINT cancels gracefully: in-flight runs finish
// and are journaled.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"refsched"
	"refsched/internal/buildinfo"
	"refsched/internal/journal"
	"refsched/internal/runner"
)

func main() {
	var (
		version  = flag.Bool("version", false, "print version and exit")
		mixNames = flag.String("mix", "WL-1", "Table 2 mix name, or a comma-separated list to run several")
		benchCSV = flag.String("bench", "", "explicit benchmark list (overrides -mix), e.g. mcf,mcf,povray")
		density  = flag.Int("density", 32, "DRAM density in Gb (8/16/24/32)")
		policy   = flag.String("policy", "allbank", "refresh policy: none|allbank|perbank|perbankseq|oooperbank|fgr2x|fgr4x|adaptive")
		codesign = flag.Bool("codesign", false, "enable the full co-design (overrides -policy)")
		hot      = flag.Bool("hot", false, ">85C operation: 32ms retention, 2ms timeslice")
		scale    = flag.Uint64("scale", 64, "time-scale factor (1 = paper wall clock)")
		warmup   = flag.Int("warmup", 1, "warmup retention windows")
		measure  = flag.Int("measure", 2, "measured retention windows")
		fpScale  = flag.Float64("footprint-scale", 1.0, "footprint multiplier")
		seed     = flag.Uint64("seed", 1, "random seed")
		mode     = flag.String("mode", "exact", "simulation tier: exact (event-driven engine) or approx (analytical model: instant, calibrated bundles and Table 2 mixes only)")
		jobs     = flag.Int("j", 0, "parallel runs when several mixes are given (0 = all CPUs)")

		failfast    = flag.Bool("failfast", false, "abort on the first failed run instead of quarantining it")
		retries     = flag.Int("retries", 2, "max identical-seed retries for transient errors (<0 = off)")
		journalPath = flag.String("journal", "", "journal file for completed runs (empty = no journaling)")
		resume      = flag.Bool("resume", false, "skip runs already recorded in the journal (requires -journal)")
		metricsPath = flag.String("metrics", "", "write a JSON metrics snapshot per run to FILE (full per-bank/per-task hierarchy)")
		tlPath      = flag.String("timeline", "", "write a Perfetto-loadable timeline (Chrome trace-event JSON) per run to FILE; with several mixes each run writes FILE.<slot> (journal-resumed runs have no live system and write none)")
		ckptPath    = flag.String("checkpoint", "", "write a resumable snapshot of the running simulation to FILE at every checkpoint boundary (atomic replace; removed on clean completion); with several mixes each run writes FILE.<slot>; resume a survivor with -restore")
		ckptEvery   = flag.Uint64("checkpoint-every", 0, "checkpoint-boundary cadence in simulated cycles for -checkpoint/-restore (0 = four timeslices)")
		restorePath = flag.String("restore", "", "resume one interrupted run from the snapshot at FILE (written by -checkpoint) and print its report; the snapshot carries the machine config and mix, so the usual run flags are ignored")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	if *resume && *journalPath == "" {
		fatal(errors.New("-resume requires -journal FILE"))
	}
	switch *mode {
	case "exact":
	case "approx":
		// The analytical model has no live system to observe.
		if *metricsPath != "" || *tlPath != "" {
			fatal(errors.New("-mode=approx has no event loop: -metrics and -timeline require -mode=exact"))
		}
		if *ckptPath != "" {
			fatal(errors.New("-mode=approx has no event loop: -checkpoint requires -mode=exact"))
		}
	default:
		fatal(fmt.Errorf("unknown -mode %q (want exact or approx)", *mode))
	}
	if *ckptPath != "" && *tlPath != "" {
		fatal(errors.New("-checkpoint is incompatible with -timeline (an observed run cannot snapshot)"))
	}

	if *restorePath != "" {
		if err := restoreRun(*restorePath, *ckptPath, *ckptEvery); err != nil {
			fatal(err)
		}
		return
	}

	mixes, err := resolveMixes(*mixNames, *benchCSV)
	if err != nil {
		fatal(err)
	}

	cfg := refsched.DefaultConfig(refsched.Density(*density), *scale)
	if *hot {
		cfg = refsched.HighTemp(cfg)
	}
	if *codesign {
		cfg = refsched.CoDesign(cfg)
	} else {
		cfg = refsched.WithRefresh(cfg, refsched.RefreshPolicy(*policy))
	}
	cfg.Seed = *seed

	// The journal fingerprint covers every flag that changes a report, so
	// a stale journal from a different configuration is never resumed.
	var jnl *journal.Journal
	if *journalPath != "" {
		// v4: the mode knob landed; approx and exact runs must never
		// satisfy each other's -resume.
		fp := fmt.Sprintf("v4 mode=%s density=%d policy=%s codesign=%t hot=%t scale=%d warm=%d meas=%d fp=%g seed=%d bench=%q",
			*mode, *density, *policy, *codesign, *hot, *scale, *warmup, *measure, *fpScale, *seed, *benchCSV)
		jnl, err = journal.Open(*journalPath, fp)
		if err != nil {
			fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Each mix is an independent, deterministically-seeded simulation;
	// fan out and print reports in mix order. Runs may repeat a mix, so
	// journal keys carry the slot index.
	key := func(i int) string { return fmt.Sprintf("%d|%s", i, mixes[i].Name) }
	// Per-run cumulative metrics snapshots for -metrics; each slot is
	// written only by its own run goroutine. Journal-resumed runs have no
	// live system, so their slot stays nil and is omitted from the dump.
	snaps := make([]*refsched.MetricsSnapshot, len(mixes))
	runJobs := make([]runner.Job[*refsched.Report], len(mixes))
	for i := range mixes {
		i := i
		runJobs[i] = runner.Job[*refsched.Report]{
			Cell: runner.Cell{Mix: mixes[i].Name, Density: fmt.Sprintf("%dGb", *density), Bundle: *policy, Seed: *seed},
			Run: func() (*refsched.Report, error) {
				if *resume && jnl != nil {
					var rep refsched.Report
					if jnl.Lookup(key(i), &rep) {
						return &rep, nil
					}
				}
				if *mode == "approx" {
					return refsched.PredictApprox(cfg, mixes[i])
				}
				sys, err := refsched.NewSystemWithOptions(cfg, mixes[i], refsched.Options{FootprintScale: *fpScale})
				if err != nil {
					return nil, err
				}
				var tl *refsched.TimelineRecorder
				var tlFile *os.File
				if *tlPath != "" {
					path := *tlPath
					if len(mixes) > 1 {
						path = fmt.Sprintf("%s.%d", path, i)
					}
					tlFile, err = os.Create(path)
					if err != nil {
						return nil, err
					}
					defer tlFile.Close()
					if tl, err = sys.AttachTimeline(tlFile); err != nil {
						return nil, err
					}
				}
				var rep *refsched.Report
				if *ckptPath != "" {
					// Periodic crash-durable snapshot; a run that
					// completes consumes its own snapshot so a later
					// -restore never resumes finished work.
					snapPath := *ckptPath
					if len(mixes) > 1 {
						snapPath = fmt.Sprintf("%s.%d", snapPath, i)
					}
					rep, err = sys.RunWindowsCheckpointed(*warmup, *measure, checkpointCadence(*ckptEvery, cfg),
						func(st *refsched.SystemState) error { return refsched.WriteSnapshot(snapPath, st) })
					if err == nil {
						if rmErr := os.Remove(snapPath); rmErr != nil && !errors.Is(rmErr, os.ErrNotExist) {
							return nil, rmErr
						}
					}
				} else {
					rep, err = sys.RunWindows(*warmup, *measure)
				}
				if err == nil && tl != nil {
					if err := tl.Flush(); err != nil {
						return nil, fmt.Errorf("timeline: %w", err)
					}
					if err := tlFile.Close(); err != nil {
						return nil, fmt.Errorf("timeline: %w", err)
					}
				}
				if err == nil && *metricsPath != "" {
					snap := sys.MetricsSnapshot()
					snaps[i] = &snap
				}
				return rep, err
			},
		}
	}
	opts := runner.Options[*refsched.Report]{
		Parallelism: *jobs,
		FailFast:    *failfast,
		Retries:     *retries,
	}
	if jnl != nil {
		opts.OnDone = func(i int, _ runner.Cell, rep *refsched.Report) {
			if err := jnl.Record(key(i), rep); err != nil {
				fmt.Fprintf(os.Stderr, "refsim: journal: %v\n", err)
			}
		}
	}
	batch, err := runner.RunBatch(ctx, runJobs, opts)
	if err != nil {
		if errors.Is(err, context.Canceled) && jnl != nil {
			fmt.Fprintf(os.Stderr, "refsim: interrupted; completed runs are journaled in %s — rerun with -resume to finish\n", *journalPath)
			os.Exit(130)
		}
		fatal(err)
	}
	for i, rep := range batch.Results {
		if batch.OK[i] {
			printReport(rep)
		}
	}
	if *metricsPath != "" {
		if err := writeMetrics(*metricsPath, mixes, snaps); err != nil {
			fatal(err)
		}
	}
	if len(batch.Failed) > 0 {
		for _, ce := range batch.Failed {
			fmt.Fprintf(os.Stderr, "refsim: quarantined: %v\n", ce)
		}
		os.Exit(3)
	}
}

// checkpointCadence resolves -checkpoint-every: the flag when set, else
// four timeslices of the run's config.
func checkpointCadence(every uint64, cfg refsched.Config) uint64 {
	if every > 0 {
		return every
	}
	return 4 * cfg.Timeslice()
}

// restoreRun resumes one interrupted run from a -checkpoint snapshot:
// the snapshot carries the full machine (config, mix, footprint scale,
// pending events), so the restored run needs no other flags and its
// printed report is byte-identical to the uninterrupted run's. With
// -checkpoint also given, the resumed run keeps snapshotting (a restore
// can itself be interrupted and restored again). Success consumes the
// snapshot file.
func restoreRun(path, ckptPath string, every uint64) error {
	st, err := refsched.ReadSnapshot(path)
	if err != nil {
		return err
	}
	sys, err := refsched.RestoreSystem(st, refsched.Options{})
	if err != nil {
		return err
	}
	var rep *refsched.Report
	if ckptPath != "" {
		rep, err = sys.Resume(checkpointCadence(every, st.Cfg),
			func(st *refsched.SystemState) error { return refsched.WriteSnapshot(ckptPath, st) })
	} else {
		rep, err = sys.Resume(0, nil)
	}
	if err != nil {
		return err
	}
	printReport(rep)
	for _, p := range []string{path, ckptPath} {
		if p == "" {
			continue
		}
		if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	return nil
}

// writeMetrics dumps each completed run's cumulative snapshot as a JSON
// object keyed "slot|mix" (matching the journal key scheme, since runs
// may repeat a mix).
func writeMetrics(path string, mixes []refsched.Mix, snaps []*refsched.MetricsSnapshot) error {
	out := make(map[string]*refsched.MetricsSnapshot)
	for i, s := range snaps {
		if s != nil {
			out[fmt.Sprintf("%d|%s", i, mixes[i].Name)] = s
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func printReport(rep *refsched.Report) {
	fmt.Print(rep)
	fmt.Printf("reads=%d writes=%d refreshCmds=%d refreshStalledReads=%d (%.2f%%)\n",
		rep.Reads, rep.Writes, rep.RefreshCommands, rep.RefreshStalledReads, rep.RefreshStalledFrac*100)
	fmt.Printf("sched: picks=%d eligible=%d fallback=%d bestEffort=%d skipped=%d\n",
		rep.SchedStats.Picks, rep.SchedStats.EligiblePicks, rep.SchedStats.FallbackPicks,
		rep.SchedStats.BestEffortPicks, rep.SchedStats.SkippedCandidates)
	fmt.Printf("alloc: cacheHits=%d buddyHits=%d stashed=%d fallbacks=%d\n",
		rep.AllocStats.CacheHits, rep.AllocStats.BuddyHits, rep.AllocStats.Stashed, rep.AllocStats.Fallbacks)
}

// resolveMixes parses -mix (possibly a comma-separated list) or -bench.
func resolveMixes(names, benchCSV string) ([]refsched.Mix, error) {
	if benchCSV != "" {
		mix := refsched.Mix{Name: "custom"}
		for _, b := range strings.Split(benchCSV, ",") {
			b = strings.TrimSpace(b)
			if _, err := refsched.GetBenchmark(b); err != nil {
				return nil, err
			}
			mix.Entries = append(mix.Entries, refsched.MixEntry{Bench: b, Count: 1})
		}
		return []refsched.Mix{mix}, nil
	}
	var out []refsched.Mix
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, m := range refsched.Table2() {
			if m.Name == name {
				out = append(out, m)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown mix %q (want WL-1..WL-10)", name)
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "refsim: %v\n", err)
	os.Exit(1)
}
