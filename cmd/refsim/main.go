// Command refsim runs single simulations: one or more workload mixes at
// one density and policy bundle, printing the full report for each.
// With several mixes (comma-separated) the runs execute in parallel
// across -j workers; each run is deterministically seeded, so reports
// are printed in mix order and identical at any -j.
//
// Examples:
//
//	refsim -mix WL-6 -density 32 -policy allbank
//	refsim -mix WL-6 -density 32 -codesign -v
//	refsim -mix WL-1,WL-5,WL-6 -codesign -j 4
//	refsim -bench mcf,mcf,povray,povray -policy perbank -temp 95
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"refsched"
	"refsched/internal/runner"
)

func main() {
	var (
		mixNames = flag.String("mix", "WL-1", "Table 2 mix name, or a comma-separated list to run several")
		benchCSV = flag.String("bench", "", "explicit benchmark list (overrides -mix), e.g. mcf,mcf,povray")
		density  = flag.Int("density", 32, "DRAM density in Gb (8/16/24/32)")
		policy   = flag.String("policy", "allbank", "refresh policy: none|allbank|perbank|perbankseq|oooperbank|fgr2x|fgr4x|adaptive")
		codesign = flag.Bool("codesign", false, "enable the full co-design (overrides -policy)")
		hot      = flag.Bool("hot", false, ">85C operation: 32ms retention, 2ms timeslice")
		scale    = flag.Uint64("scale", 64, "time-scale factor (1 = paper wall clock)")
		warmup   = flag.Int("warmup", 1, "warmup retention windows")
		measure  = flag.Int("measure", 2, "measured retention windows")
		fpScale  = flag.Float64("footprint-scale", 1.0, "footprint multiplier")
		seed     = flag.Uint64("seed", 1, "random seed")
		jobs     = flag.Int("j", 0, "parallel runs when several mixes are given (0 = all CPUs)")
	)
	flag.Parse()

	mixes, err := resolveMixes(*mixNames, *benchCSV)
	if err != nil {
		fatal(err)
	}

	cfg := refsched.DefaultConfig(refsched.Density(*density), *scale)
	if *hot {
		cfg = refsched.HighTemp(cfg)
	}
	if *codesign {
		cfg = refsched.CoDesign(cfg)
	} else {
		cfg = refsched.WithRefresh(cfg, refsched.RefreshPolicy(*policy))
	}
	cfg.Seed = *seed

	// Each mix is an independent, deterministically-seeded simulation;
	// fan out and print reports in mix order.
	reps, err := runner.Map(*jobs, len(mixes), func(i int) (*refsched.Report, error) {
		sys, err := refsched.NewSystemWithOptions(cfg, mixes[i], refsched.Options{FootprintScale: *fpScale})
		if err != nil {
			return nil, err
		}
		return sys.RunWindows(*warmup, *measure)
	})
	if err != nil {
		fatal(err)
	}
	for _, rep := range reps {
		printReport(rep)
	}
}

func printReport(rep *refsched.Report) {
	fmt.Print(rep)
	fmt.Printf("reads=%d writes=%d refreshCmds=%d refreshStalledReads=%d (%.2f%%)\n",
		rep.Reads, rep.Writes, rep.RefreshCommands, rep.RefreshStalledReads, rep.RefreshStalledFrac*100)
	fmt.Printf("sched: picks=%d eligible=%d fallback=%d bestEffort=%d skipped=%d\n",
		rep.SchedStats.Picks, rep.SchedStats.EligiblePicks, rep.SchedStats.FallbackPicks,
		rep.SchedStats.BestEffortPicks, rep.SchedStats.SkippedCandidates)
	fmt.Printf("alloc: cacheHits=%d buddyHits=%d stashed=%d fallbacks=%d\n",
		rep.AllocStats.CacheHits, rep.AllocStats.BuddyHits, rep.AllocStats.Stashed, rep.AllocStats.Fallbacks)
}

// resolveMixes parses -mix (possibly a comma-separated list) or -bench.
func resolveMixes(names, benchCSV string) ([]refsched.Mix, error) {
	if benchCSV != "" {
		mix := refsched.Mix{Name: "custom"}
		for _, b := range strings.Split(benchCSV, ",") {
			b = strings.TrimSpace(b)
			if _, err := refsched.GetBenchmark(b); err != nil {
				return nil, err
			}
			mix.Entries = append(mix.Entries, refsched.MixEntry{Bench: b, Count: 1})
		}
		return []refsched.Mix{mix}, nil
	}
	var out []refsched.Mix
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, m := range refsched.Table2() {
			if m.Name == name {
				out = append(out, m)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown mix %q (want WL-1..WL-10)", name)
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "refsim: %v\n", err)
	os.Exit(1)
}
