package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"refsched/internal/metrics"
)

// TestMetricsDump builds the real binary, runs a tiny simulation with
// -metrics, and checks the dump round-trips as a metrics snapshot
// carrying the full per-layer hierarchy.
func TestMetricsDump(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the refsim binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "refsim")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	dump := filepath.Join(dir, "metrics.json")
	cmd := exec.Command(bin,
		"-mix", "WL-6", "-density", "8", "-policy", "allbank",
		"-scale", "4096", "-warmup", "1", "-measure", "1",
		"-footprint-scale", "0.01", "-metrics", dump)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("refsim: %v\n%s", err, out)
	}

	raw, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	var dumped map[string]metrics.Snapshot
	if err := json.Unmarshal(raw, &dumped); err != nil {
		t.Fatalf("metrics dump is not a snapshot map: %v", err)
	}
	snap, ok := dumped["0|WL-6"]
	if !ok {
		t.Fatalf("dump missing run key 0|WL-6; has %d entries", len(dumped))
	}

	// The cumulative hierarchy must be populated end to end: engine,
	// controller, bank, task, and OS layers.
	for _, name := range []string{
		"engine.events",
		"mc[0].reads",
		"mc[0].refresh.decisions",
		"mc[0].bank[0].refresh_busy_cycles",
		"task[0].instructions",
		"sched.picks",
		"kernel.quanta",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("snapshot missing counter %q", name)
		}
	}
	if snap.Counter("engine.events") == 0 || snap.Counter("task[0].instructions") == 0 {
		t.Error("cumulative counters are zero after a run")
	}

	// Round trip: marshaling the decoded snapshot reproduces the same
	// structure (stable JSON).
	again, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back metrics.Snapshot
	if err := json.Unmarshal(again, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("engine.events") != snap.Counter("engine.events") ||
		len(back.Counters) != len(snap.Counters) {
		t.Fatal("snapshot does not round-trip")
	}
}
