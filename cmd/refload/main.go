// Command refload is the load generator behind `make soak`: it drives a
// running refschedd with thousands of concurrent mixed requests —
// single-cell job POSTs (optionally deadlined), exact and approx figure
// GETs, and periodic /statsz scrapes — from many tenants at once, and
// reports client-side latency percentiles per request kind plus a final
// daemon stats snapshot as one JSON summary.
//
// It is built to stay up while the daemon does not: transport errors
// (connection refused mid-restart, reset mid-kill) are counted and
// retried with backoff rather than aborting the run, which is what lets
// the soak drill SIGKILL refschedd mid-sweep and keep measuring through
// the warm restart.
//
// With -acked-file every job id the daemon acknowledged (202) is
// appended to a file, one per line; the soak harness cross-checks that
// set against the daemon's job WAL to prove the acknowledgement barrier:
// every acked id must appear as a durable accept record, and every
// accept without a done record must be replayed to a terminal state
// after restart.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"refsched/internal/harness"
	"refsched/internal/stats"
)

// kinds of request the generator issues; each gets its own histogram.
const (
	kindEnqueue = "enqueue"
	kindFigure  = "figure"
	kindApprox  = "figure_approx"
	kindScrape  = "statsz"
)

// latency histograms: 100 µs buckets up to 60 s, overflow above.
const (
	latWidthUS = 100
	latBuckets = 600_000
)

// kindStats aggregates one request kind's outcomes.
type kindStats struct {
	lat       *stats.Histogram
	ok        uint64
	rejected  uint64 // 429: admission, rate, brownout, queue full
	failed    uint64 // other >= 400
	transport uint64 // connection-level errors (daemon down/restarting)
}

// collector is the shared, locked result sink for all workers.
type collector struct {
	mu    sync.Mutex
	kinds map[string]*kindStats
	// per-target aggregates (all kinds folded together), populated only
	// when -targets spreads load across multiple endpoints.
	targets map[string]*kindStats
	acked   []string
	// rejections by structured reason ("rate", "brownout", ...).
	reasons map[string]uint64
}

func newCollector(trackTargets bool) *collector {
	c := &collector{kinds: map[string]*kindStats{}, reasons: map[string]uint64{}}
	if trackTargets {
		c.targets = map[string]*kindStats{}
	}
	return c
}

func statsIn(m map[string]*kindStats, name string) *kindStats {
	k, ok := m[name]
	if !ok {
		k = &kindStats{lat: stats.NewHistogram(latWidthUS, latBuckets)}
		m[name] = k
	}
	return k
}

func (k *kindStats) observe(d time.Duration, status int, transportErr bool) {
	switch {
	case transportErr:
		k.transport++
	case status == http.StatusTooManyRequests:
		k.rejected++
	case status >= http.StatusBadRequest:
		k.failed++
	default:
		k.ok++
		k.lat.Add(uint64(d.Microseconds()))
	}
}

func (c *collector) observe(name, target string, d time.Duration, status int, transportErr bool, reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	statsIn(c.kinds, name).observe(d, status, transportErr)
	if c.targets != nil {
		statsIn(c.targets, target).observe(d, status, transportErr)
	}
	if !transportErr && status == http.StatusTooManyRequests && reason != "" {
		c.reasons[reason]++
	}
}

func (c *collector) ack(id string) {
	c.mu.Lock()
	c.acked = append(c.acked, id)
	c.mu.Unlock()
}

// KindSummary is one request kind's reported slice of the summary.
type KindSummary struct {
	OK        uint64  `json:"ok"`
	Rejected  uint64  `json:"rejected"`
	Failed    uint64  `json:"failed"`
	Transport uint64  `json:"transport_errors"`
	P50MS     float64 `json:"p50_ms"`
	P99MS     float64 `json:"p99_ms"`
	P999MS    float64 `json:"p999_ms"`
	MaxMS     float64 `json:"max_ms"`
}

// Summary is refload's JSON report.
type Summary struct {
	DurationS float64                `json:"duration_s"`
	Requests  uint64                 `json:"requests"`
	Acked     int                    `json:"acked_jobs"`
	Kinds     map[string]KindSummary `json:"kinds"`
	// Targets breaks latency down per endpoint; present only when
	// -targets round-robins across a cluster.
	Targets     map[string]KindSummary `json:"targets,omitempty"`
	Rejections  map[string]uint64      `json:"rejections_by_reason"`
	DaemonStats json.RawMessage        `json:"daemon_stats,omitempty"`
}

func summarizeKinds(m map[string]*kindStats, requests *uint64) map[string]KindSummary {
	ms := func(us uint64) float64 { return float64(us) / 1000 }
	out := make(map[string]KindSummary, len(m))
	for name, k := range m {
		if requests != nil {
			*requests += k.ok + k.rejected + k.failed + k.transport
		}
		out[name] = KindSummary{
			OK: k.ok, Rejected: k.rejected, Failed: k.failed, Transport: k.transport,
			P50MS:  ms(k.lat.Percentile(50)),
			P99MS:  ms(k.lat.Percentile(99)),
			P999MS: ms(k.lat.Percentile(99.9)),
			MaxMS:  ms(k.lat.Max()),
		}
	}
	return out
}

func (c *collector) summarize(elapsed time.Duration, daemonStats []byte) Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Summary{
		DurationS:  elapsed.Seconds(),
		Acked:      len(c.acked),
		Rejections: c.reasons,
	}
	s.Kinds = summarizeKinds(c.kinds, &s.Requests)
	if c.targets != nil {
		s.Targets = summarizeKinds(c.targets, nil)
	}
	if len(daemonStats) > 0 {
		s.DaemonStats = json.RawMessage(daemonStats)
	}
	return s
}

// genConfig shapes the synthetic request mix.
type genConfig struct {
	base       string
	tenants    int
	cellFrac   float64
	approxFrac float64
	deadlineMS int64
	seeds      uint64 // distinct cell seeds, cycled per request
	mixes      []string
	figures    []string
}

// opFor deterministically picks the i-th request a worker issues:
// method, path, body (nil for GETs), and kind label.
func opFor(cfg genConfig, rng *rand.Rand) (method, path string, body []byte, kind string) {
	if rng.Float64() < cfg.cellFrac {
		densities := []string{"8Gb", "16Gb", "24Gb", "32Gb"}
		bundles := []string{"allbank", "perbank", "codesign", "fgr2x", "adaptive"}
		seed := rng.Uint64()%cfg.seeds + 1
		req := map[string]any{
			"cell": map[string]any{
				"mix":     cfg.mixes[rng.Intn(len(cfg.mixes))],
				"density": densities[rng.Intn(len(densities))],
				"bundle":  bundles[rng.Intn(len(bundles))],
			},
			"params": map[string]any{"seed": seed},
		}
		if cfg.deadlineMS > 0 {
			req["deadline_ms"] = cfg.deadlineMS
		}
		raw, _ := json.Marshal(req)
		return http.MethodPost, "/v1/jobs", raw, kindEnqueue
	}
	fig := cfg.figures[rng.Intn(len(cfg.figures))]
	if rng.Float64() < cfg.approxFrac {
		return http.MethodGet, "/v1/figures/" + fig + "?fidelity=approx", nil, kindApprox
	}
	return http.MethodGet, "/v1/figures/" + fig, nil, kindFigure
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8372", "refschedd address (host:port)")
		targetsFlg = flag.String("targets", "", "comma-separated refschedd endpoints to round-robin across (overrides -addr; adds per-target latency to the summary)")
		n          = flag.Int("n", 5000, "total requests to issue (0 = run for -duration)")
		duration   = flag.Duration("duration", 0, "stop after this long (0 = run until -n)")
		conc       = flag.Int("c", 32, "concurrent workers")
		tenants    = flag.Int("tenants", 4, "distinct X-Tenant identities to spread load across")
		cellFrac   = flag.Float64("cell-frac", 0.6, "fraction of requests that POST single-cell jobs")
		approxFrac = flag.Float64("approx-frac", 0.5, "fraction of figure GETs that ask for fidelity=approx")
		deadlineMS = flag.Int64("deadline-ms", 0, "attach this deadline_ms to every job POST (0 = none)")
		seeds      = flag.Uint64("seeds", 64, "distinct cell seeds to cycle through (cache/dedup pressure knob)")
		mixes      = flag.String("mixes", "WL-6", "comma-separated mixes for cell POSTs (match the daemon's -mixes)")
		figures    = flag.String("figures", "", "comma-separated figure targets for GETs (empty = all)")
		seed       = flag.Int64("seed", 1, "workload-shape seed")
		statsEvery = flag.Int("stats-every", 200, "issue a /statsz scrape every this many requests per worker")
		ackedFile  = flag.String("acked-file", "", "append every acknowledged job id here, one per line")
		out        = flag.String("out", "", "write the JSON summary here as well as stdout")
		timeout    = flag.Duration("timeout", 120*time.Second, "per-request HTTP timeout")
	)
	flag.Parse()
	if *n <= 0 && *duration <= 0 {
		fmt.Fprintln(os.Stderr, "refload: need -n or -duration")
		os.Exit(2)
	}

	bases := []string{"http://" + *addr}
	if *targetsFlg != "" {
		bases = bases[:0]
		for _, t := range strings.Split(*targetsFlg, ",") {
			if t = strings.TrimSpace(t); t != "" {
				bases = append(bases, "http://"+t)
			}
		}
		if len(bases) == 0 {
			fmt.Fprintln(os.Stderr, "refload: -targets names no endpoints")
			os.Exit(2)
		}
	}

	cfg := genConfig{
		base:       bases[0],
		tenants:    *tenants,
		cellFrac:   *cellFrac,
		approxFrac: *approxFrac,
		deadlineMS: *deadlineMS,
		seeds:      max(*seeds, 1),
		mixes:      strings.Split(*mixes, ","),
		figures:    harness.FigureNames(),
	}
	if *figures != "" {
		cfg.figures = strings.Split(*figures, ",")
	}

	col := newCollector(*targetsFlg != "")
	client := &http.Client{Timeout: *timeout}
	var (
		issued sync.Mutex
		count  int
	)
	take := func() (int, bool) {
		issued.Lock()
		defer issued.Unlock()
		if *n > 0 && count >= *n {
			return 0, false
		}
		count++
		return count, true
	}

	start := time.Now()
	stop := time.Time{}
	if *duration > 0 {
		stop = start.Add(*duration)
	}

	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			tenant := fmt.Sprintf("load-%d", w%cfg.tenants)
			for i := 0; ; i++ {
				if !stop.IsZero() && time.Now().After(stop) {
					return
				}
				if _, ok := take(); !ok {
					return
				}
				method, path, body, kind := opFor(cfg, rng)
				if *statsEvery > 0 && i%*statsEvery == *statsEvery-1 {
					method, path, body, kind = http.MethodGet, "/statsz", nil, kindScrape
				}
				// Round-robin across targets, offset per worker so the
				// first requests don't all land on the same node.
				base := bases[(w+i)%len(bases)]
				runOne(client, col, base, tenant, method, path, body, kind)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if *ackedFile != "" {
		col.mu.Lock()
		lines := strings.Join(col.acked, "\n")
		col.mu.Unlock()
		if lines != "" {
			lines += "\n"
		}
		if err := os.WriteFile(*ackedFile, []byte(lines), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "refload: writing %s: %v\n", *ackedFile, err)
			os.Exit(1)
		}
	}

	// One last daemon snapshot for the summary; tolerate a daemon that
	// is already gone.
	var daemonStats []byte
	if resp, err := client.Get(cfg.base + "/statsz"); err == nil {
		if resp.StatusCode == http.StatusOK {
			daemonStats, _ = io.ReadAll(resp.Body)
		}
		resp.Body.Close()
	}

	sum := col.summarize(elapsed, daemonStats)
	raw, _ := json.MarshalIndent(sum, "", " ")
	fmt.Println(string(raw))
	if *out != "" {
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "refload: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
}

// runOne issues a single request and feeds the collector. Transport
// errors are expected during the soak drill's kill window; they are
// counted, backed off briefly, and never fatal.
func runOne(client *http.Client, col *collector, base, tenant, method, path string, body []byte, kind string) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		col.observe(kind, base, 0, 0, true, "")
		return
	}
	req.Header.Set("X-Tenant", tenant)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		col.observe(kind, base, 0, 0, true, "")
		time.Sleep(200 * time.Millisecond)
		return
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	elapsed := time.Since(t0)

	reason := ""
	if resp.StatusCode == http.StatusTooManyRequests {
		var rej struct {
			Reason string `json:"reason"`
		}
		json.Unmarshal(payload, &rej)
		reason = rej.Reason
	}
	col.observe(kind, base, elapsed, resp.StatusCode, false, reason)

	// 202 means a fresh job was queued — with -job-wal, its accept
	// record is durable before this response exists. 200 (dedup or
	// cache hit) costs no queue slot and writes no ledger record, so it
	// is deliberately not counted as an acknowledged accept.
	if kind == kindEnqueue && resp.StatusCode == http.StatusAccepted {
		var ack struct {
			ID string `json:"id"`
		}
		if json.Unmarshal(payload, &ack) == nil && ack.ID != "" {
			col.ack(ack.ID)
		}
	}
}
