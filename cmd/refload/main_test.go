package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestOpForMixAndDeterminism: the generated mix respects the
// configured fractions, every POST body is valid JSON carrying the
// deadline, and the same seed reproduces the same request stream.
func TestOpForMixAndDeterminism(t *testing.T) {
	cfg := genConfig{
		cellFrac:   0.6,
		approxFrac: 0.5,
		deadlineMS: 250,
		seeds:      8,
		mixes:      []string{"WL-6"},
		figures:    []string{"fig10", "table1"},
	}
	counts := map[string]int{}
	rng := rand.New(rand.NewSource(42))
	const total = 2000
	for i := 0; i < total; i++ {
		method, path, body, kind := opFor(cfg, rng)
		counts[kind]++
		switch kind {
		case kindEnqueue:
			if method != http.MethodPost || path != "/v1/jobs" {
				t.Fatalf("enqueue op = %s %s", method, path)
			}
			var req struct {
				Cell struct {
					Mix, Density, Bundle string
				} `json:"cell"`
				Params     map[string]any `json:"params"`
				DeadlineMS int64          `json:"deadline_ms"`
			}
			if err := json.Unmarshal(body, &req); err != nil {
				t.Fatalf("POST body not JSON: %v", err)
			}
			if req.Cell.Mix != "WL-6" || req.Cell.Density == "" || req.Cell.Bundle == "" {
				t.Fatalf("bad cell %+v", req.Cell)
			}
			if req.DeadlineMS != 250 {
				t.Fatalf("deadline_ms = %d, want 250", req.DeadlineMS)
			}
			if seed := req.Params["seed"].(float64); seed < 1 || seed > 8 {
				t.Fatalf("seed %v outside [1,8]", seed)
			}
		case kindFigure, kindApprox:
			if method != http.MethodGet || !strings.HasPrefix(path, "/v1/figures/") {
				t.Fatalf("figure op = %s %s", method, path)
			}
			if (kind == kindApprox) != strings.Contains(path, "fidelity=approx") {
				t.Fatalf("kind %s does not match path %s", kind, path)
			}
		default:
			t.Fatalf("unexpected kind %s", kind)
		}
	}
	if frac := float64(counts[kindEnqueue]) / total; frac < 0.55 || frac > 0.65 {
		t.Fatalf("enqueue fraction = %.3f, want ~0.6", frac)
	}
	if counts[kindApprox] == 0 || counts[kindFigure] == 0 {
		t.Fatal("figure mix never produced one of exact/approx")
	}

	// Same seed, same stream.
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		m1, p1, b1, k1 := opFor(cfg, a)
		m2, p2, b2, k2 := opFor(cfg, b)
		if m1 != m2 || p1 != p2 || k1 != k2 || string(b1) != string(b2) {
			t.Fatalf("op %d diverged for identical seeds", i)
		}
	}
}

// TestCollectorSummary: outcomes are classified per kind, rejection
// reasons are tallied, and percentiles come out of the histogram in
// milliseconds.
func TestCollectorSummary(t *testing.T) {
	col := newCollector(false)
	for i := 0; i < 100; i++ {
		col.observe(kindEnqueue, "http://a", 10*time.Millisecond, http.StatusAccepted, false, "")
	}
	col.observe(kindEnqueue, "http://a", time.Second, http.StatusTooManyRequests, false, "brownout")
	col.observe(kindEnqueue, "http://a", time.Second, http.StatusTooManyRequests, false, "rate")
	col.observe(kindEnqueue, "http://a", time.Second, http.StatusInternalServerError, false, "")
	col.observe(kindFigure, "http://a", 0, 0, true, "")
	col.ack("job-000001")
	col.ack("job-000002")

	sum := col.summarize(2*time.Second, []byte(`{"x":1}`))
	if sum.Requests != 104 {
		t.Fatalf("requests = %d, want 104", sum.Requests)
	}
	if sum.Acked != 2 {
		t.Fatalf("acked = %d, want 2", sum.Acked)
	}
	enq := sum.Kinds[kindEnqueue]
	if enq.OK != 100 || enq.Rejected != 2 || enq.Failed != 1 {
		t.Fatalf("enqueue summary = %+v", enq)
	}
	// 10 ms observations land in the 10.0–10.1 ms bucket.
	if enq.P50MS < 9 || enq.P50MS > 11 {
		t.Fatalf("p50 = %.2f ms, want ~10", enq.P50MS)
	}
	if sum.Rejections["brownout"] != 1 || sum.Rejections["rate"] != 1 {
		t.Fatalf("rejections = %v", sum.Rejections)
	}
	if sum.Kinds[kindFigure].Transport != 1 {
		t.Fatalf("figure transport errors = %d, want 1", sum.Kinds[kindFigure].Transport)
	}
	if string(sum.DaemonStats) != `{"x":1}` {
		t.Fatalf("daemon stats = %s", sum.DaemonStats)
	}
	if sum.Targets != nil {
		t.Fatalf("single-target run grew a targets block: %v", sum.Targets)
	}
}

// TestCollectorPerTarget: with -targets, outcomes additionally aggregate
// per endpoint (all kinds folded together) without changing the global
// request count.
func TestCollectorPerTarget(t *testing.T) {
	col := newCollector(true)
	for i := 0; i < 10; i++ {
		col.observe(kindFigure, "http://a", 5*time.Millisecond, http.StatusOK, false, "")
	}
	for i := 0; i < 4; i++ {
		col.observe(kindEnqueue, "http://b", 20*time.Millisecond, http.StatusAccepted, false, "")
	}
	col.observe(kindFigure, "http://b", 0, 0, true, "")

	sum := col.summarize(time.Second, nil)
	if sum.Requests != 15 {
		t.Fatalf("requests = %d, want 15", sum.Requests)
	}
	a, b := sum.Targets["http://a"], sum.Targets["http://b"]
	if a.OK != 10 || b.OK != 4 || b.Transport != 1 {
		t.Fatalf("per-target summaries: a=%+v b=%+v", a, b)
	}
	if a.P50MS < 4 || a.P50MS > 6 {
		t.Fatalf("target a p50 = %.2f ms, want ~5", a.P50MS)
	}
	if b.P50MS < 19 || b.P50MS > 21 {
		t.Fatalf("target b p50 = %.2f ms, want ~20", b.P50MS)
	}
}
