// Benchmarks regenerating the paper's tables and figures (one bench per
// experiment, reporting the headline metric via b.ReportMetric), plus
// microbenchmarks for the core substrates.
//
// The figure benches run a reduced-fidelity sweep per iteration, so run
// them with -benchtime=1x for a single regeneration:
//
//	go test -bench 'BenchmarkFig' -benchtime=1x
//
// Full-fidelity numbers come from cmd/experiments (see EXPERIMENTS.md).
package refsched_test

import (
	"runtime"
	"testing"
	"time"

	"refsched"
	"refsched/internal/cache"
	"refsched/internal/config"
	"refsched/internal/core"
	"refsched/internal/harness"
	"refsched/internal/kernel/buddy"
	"refsched/internal/rbtree"
	"refsched/internal/sim"
	"refsched/internal/timeline"
	"refsched/internal/workload"
)

// benchParams is the reduced-fidelity preset for figure benches.
func benchParams() harness.Params {
	return harness.Params{
		Scale:          512,
		FootprintScale: 0.02,
		WarmupWindows:  1,
		MeasureWindows: 1,
		Mixes:          []string{"WL-6"},
		Seed:           1,
	}
}

// BenchmarkTable1Config regenerates Table 1 (configuration rendering —
// trivially fast; exists so every table has a bench target).
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if harness.Table1(benchParams()) == nil {
			b.Fatal("no table")
		}
	}
}

// BenchmarkTable2Workloads regenerates Table 2.
func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if harness.Table2Result() == nil {
			b.Fatal("no table")
		}
	}
}

// BenchmarkFig3RefreshDegradation regenerates Figure 3 and reports the
// 32 Gb / 64 ms all-bank degradation.
func BenchmarkFig3RefreshDegradation(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig3(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4BankConfinement regenerates Figure 4.
func BenchmarkFig4BankConfinement(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig4(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5CapacityFit regenerates Figure 5 (allocator capacity
// study over the SPEC footprint table).
func BenchmarkFig5CapacityFit(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig5(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10CoDesignIPC regenerates Figures 10+11 and reports the
// co-design IPC gain over all-bank at 32 Gb as a custom metric.
func BenchmarkFig10CoDesignIPC(b *testing.B) {
	p := benchParams()
	var gain float64
	for i := 0; i < b.N; i++ {
		mix := workload.Table2()[5] // WL-6
		ab := mustRun(b, p, config.RefreshAllBank, false, mix)
		cd := mustRun(b, p, config.RefreshPerBankSeq, true, mix)
		gain = cd.HarmonicIPC/ab.HarmonicIPC - 1
	}
	b.ReportMetric(gain*100, "gain%")
}

// BenchmarkFig11MemLatency reports the co-design's average memory
// latency in memory cycles (the Figure 11 metric).
func BenchmarkFig11MemLatency(b *testing.B) {
	p := benchParams()
	var lat float64
	for i := 0; i < b.N; i++ {
		cd := mustRun(b, p, config.RefreshPerBankSeq, true, workload.Table2()[5])
		lat = cd.AvgMemLatencyMemCycles
	}
	b.ReportMetric(lat, "memcycles")
}

// BenchmarkFig12FGRModes regenerates Figure 12.
func BenchmarkFig12FGRModes(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig12(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13LowRetention regenerates Figure 13 (32 ms retention).
func BenchmarkFig13LowRetention(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, _, err := harness.Fig10(p, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14PriorWork regenerates Figure 14 (OOO per-bank, AR).
func BenchmarkFig14PriorWork(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig14(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15Sensitivity regenerates Figure 15 (cores x
// consolidation x DIMM sweep).
func BenchmarkFig15Sensitivity(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig15(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExt1Extensions regenerates the beyond-paper extension
// comparison (Elastic, Pausing, RAIDR, subarray-level refresh).
func BenchmarkExt1Extensions(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Extensions(p); err != nil {
			b.Fatal(err)
		}
	}
}

func mustRun(b *testing.B, p harness.Params, pol config.RefreshPolicy, codesign bool, mix workload.Mix) *core.Report {
	b.Helper()
	cfg := config.Default(config.Density32Gb, p.Scale)
	cfg.Refresh.Policy = pol
	if codesign {
		cfg.OS.Alloc = config.AllocSoftPartition
		cfg.OS.Scheduler = config.SchedCFS
		cfg.OS.RefreshAware = true
	}
	sys, err := core.Build(cfg, mix, core.Options{FootprintScale: p.FootprintScale})
	if err != nil {
		b.Fatal(err)
	}
	rep, err := sys.RunWindows(p.WarmupWindows, p.MeasureWindows)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// --- design-choice ablations ---

// ablationRun runs WL-6 at 32 Gb with a config mutation and returns
// harmonic IPC.
func ablationRun(b *testing.B, mutate func(*config.System)) float64 {
	b.Helper()
	p := benchParams()
	cfg := config.Default(config.Density32Gb, p.Scale)
	cfg.Refresh.Policy = config.RefreshPerBankSeq
	cfg.OS.Alloc = config.AllocSoftPartition
	cfg.OS.Scheduler = config.SchedCFS
	cfg.OS.RefreshAware = true
	mutate(&cfg)
	sys, err := core.Build(cfg, workload.Table2()[5], core.Options{FootprintScale: p.FootprintScale})
	if err != nil {
		b.Fatal(err)
	}
	rep, err := sys.RunWindows(p.WarmupWindows, p.MeasureWindows)
	if err != nil {
		b.Fatal(err)
	}
	return rep.HarmonicIPC
}

// BenchmarkAblationRowPolicy compares open- vs closed-page row policy
// under the co-design (Table 1 chooses open-row).
func BenchmarkAblationRowPolicy(b *testing.B) {
	var open, closed float64
	for i := 0; i < b.N; i++ {
		open = ablationRun(b, func(*config.System) {})
		closed = ablationRun(b, func(c *config.System) { c.Mem.ClosedPage = true })
	}
	b.ReportMetric(open/closed, "open/closed")
}

// BenchmarkAblationFRFCFS compares FR-FCFS against strict FCFS
// transaction scheduling (Table 1 chooses FR-FCFS).
func BenchmarkAblationFRFCFS(b *testing.B) {
	var frfcfs, fcfs float64
	for i := 0; i < b.N; i++ {
		frfcfs = ablationRun(b, func(*config.System) {})
		fcfs = ablationRun(b, func(c *config.System) { c.Mem.FCFS = true })
	}
	b.ReportMetric(frfcfs/fcfs, "frfcfs/fcfs")
}

// BenchmarkAblationSoftVsHard compares the paper's soft partitioning
// against hard (exclusive-bank) partitioning under the co-design.
func BenchmarkAblationSoftVsHard(b *testing.B) {
	var soft, hard float64
	for i := 0; i < b.N; i++ {
		soft = ablationRun(b, func(*config.System) {})
		hard = ablationRun(b, func(c *config.System) { c.OS.Alloc = config.AllocHardPartition })
	}
	b.ReportMetric(soft/hard, "soft/hard")
}

// BenchmarkAblationEta compares the η fairness threshold: η=1 disables
// refresh awareness entirely (Section 5.4), so the default η should win.
func BenchmarkAblationEta(b *testing.B) {
	var etaDefault, etaOne float64
	for i := 0; i < b.N; i++ {
		etaDefault = ablationRun(b, func(*config.System) {})
		etaOne = ablationRun(b, func(c *config.System) { c.OS.EtaThresh = 1 })
	}
	b.ReportMetric(etaDefault/etaOne, "eta4/eta1")
}

// BenchmarkAblationBanksPerTask sweeps the 6-banks-per-task sweet spot
// against 4 (the paper's footnote 11).
func BenchmarkAblationBanksPerTask(b *testing.B) {
	var six, four float64
	for i := 0; i < b.N; i++ {
		six = ablationRun(b, func(*config.System) {})
		four = ablationRun(b, func(c *config.System) { c.OS.BanksPerTask = 4 })
	}
	b.ReportMetric(six/four, "6banks/4banks")
}

// BenchmarkFig10Parallel measures the parallel sweep runner: one
// serial (-j 1) and one all-CPUs Figure 10 regeneration per iteration,
// reporting the wall-clock speedup. Results are identical at any -j
// (see TestFig10ParallelDeterminism); only wall-clock changes, so the
// speedup approaches min(NumCPU, cells) on unloaded multi-core hosts
// and 1.0 on a single-core host.
func BenchmarkFig10Parallel(b *testing.B) {
	p := benchParams()
	p.Mixes = []string{"WL-1", "WL-5", "WL-6", "WL-8"} // enough cells to fan out
	var speedup float64
	for i := 0; i < b.N; i++ {
		p.Parallelism = 1
		t0 := time.Now()
		if _, _, err := harness.Fig10(p, false); err != nil {
			b.Fatal(err)
		}
		serial := time.Since(t0)
		p.Parallelism = runtime.NumCPU()
		t0 = time.Now()
		if _, _, err := harness.Fig10(p, false); err != nil {
			b.Fatal(err)
		}
		parallel := time.Since(t0)
		speedup = serial.Seconds() / parallel.Seconds()
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(float64(runtime.NumCPU()), "cpus")
}

// --- substrate microbenchmarks ---

// BenchmarkEngineScheduleStep measures the event-engine hot path: one
// heap-path schedule plus one step per iteration against a warm
// 128-event population. The hand-rolled monomorphic heap must stay at
// 0 allocs/op (container/heap's interface{} boxing paid ≥1 per event).
func BenchmarkEngineScheduleStep(b *testing.B) {
	e := sim.NewEngine()
	e.Reserve(256)
	fn := func() {}
	for i := 0; i < 128; i++ {
		e.Schedule(sim.Time(i%31)+1, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(sim.Time(i%31)+1, fn)
		e.Step()
	}
}

// BenchmarkEngineTimelineDisabled pins the cost of the tracing seam
// when tracing is off: the hot path guards every emission behind a nil
// check on the recorder, so a disabled timeline must add zero
// allocations to the engine loop (the acceptance contract for keeping
// timeline hooks compiled into the simulator unconditionally).
func BenchmarkEngineTimelineDisabled(b *testing.B) {
	e := sim.NewEngine()
	e.Reserve(256)
	var tl *timeline.Recorder // disabled: exactly how mc/kernel hold it
	fn := func() {
		if tl != nil {
			tl.Span(timeline.PidCPU, 0, "tick", 0, 1)
		}
	}
	for i := 0; i < 128; i++ {
		e.Schedule(sim.Time(i%31)+1, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(sim.Time(i%31)+1, fn)
		e.Step()
	}
}

// BenchmarkEngineSameCycleFIFO measures the Schedule(0, fn) fast path:
// same-cycle events bypass the heap entirely.
func BenchmarkEngineSameCycleFIFO(b *testing.B) {
	e := sim.NewEngine()
	e.Reserve(16)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(0, fn)
		e.Step()
	}
}

// BenchmarkEngineEventThroughput measures raw event-heap throughput.
func BenchmarkEngineEventThroughput(b *testing.B) {
	e := sim.NewEngine()
	n := 0
	var pump func()
	pump = func() {
		n++
		if n < b.N {
			e.Schedule(1, pump)
		}
	}
	e.Schedule(1, pump)
	b.ResetTimer()
	e.Run()
}

// BenchmarkCacheAccess measures hierarchy probe throughput on a hot set.
func BenchmarkCacheAccess(b *testing.B) {
	cfg := config.Default(config.Density32Gb, 64)
	h, err := cache.NewHierarchy(cfg.L1, cfg.L2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i%512)*64, i%7 == 0)
	}
}

// BenchmarkBuddyAllocFree measures allocator page churn.
func BenchmarkBuddyAllocFree(b *testing.B) {
	a, err := buddy.New(1 << 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, ok := a.AllocPage()
		if !ok {
			b.Fatal("exhausted")
		}
		a.FreePage(p)
	}
}

// BenchmarkRBTreeInsertDelete measures scheduler-tree churn.
func BenchmarkRBTreeInsertDelete(b *testing.B) {
	tr := rbtree.New(func(x, y int) bool { return x < y })
	r := sim.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := tr.Insert(r.Intn(1 << 20))
		tr.Delete(n)
	}
}

// BenchmarkFullSystemCyclesPerSecond measures end-to-end simulation
// speed: simulated CPU cycles per wall-second on the co-design config.
func BenchmarkFullSystemCyclesPerSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := refsched.CoDesign(refsched.DefaultConfig(refsched.Density32Gb, 512))
		sys, err := refsched.NewSystemWithOptions(cfg, refsched.Table2()[5],
			refsched.Options{FootprintScale: 0.02})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.RunWindows(0, 1); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(sys.Window()), "simcycles/op")
	}
}
