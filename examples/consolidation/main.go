// Consolidation: the paper's motivating scenario — a virtualized host
// packing more and more tasks per core — swept across consolidation
// ratios and operating temperatures. The example shows how refresh
// overhead grows with consolidation and temperature, and how much of it
// the co-design recovers.
package main

import (
	"fmt"
	"log"

	"refsched"
)

func main() {
	base := refsched.Mix{
		Name: "consolidated",
		Entries: []refsched.MixEntry{
			{Bench: "mcf", Count: 1},
			{Bench: "stream", Count: 1},
			{Bench: "GemsFDTD", Count: 1},
			{Bench: "h264ref", Count: 1},
		},
	}

	fmt.Println("scenario             tREFW  baseline-hIPC  codesign-hIPC  gain")
	fmt.Println("-------------------  -----  -------------  -------------  -----")
	for _, ratio := range []int{2, 4} {
		for _, hot := range []bool{false, true} {
			mix := tile(base, 2*ratio)
			cfg := refsched.DefaultConfig(refsched.Density32Gb, 64)
			if hot {
				cfg = refsched.HighTemp(cfg)
			}
			// At 1:2 consolidation only 4 tasks exist, so each may only
			// span 4 banks per rank (see the paper's Section 6.6).
			if ratio == 2 {
				cfg.OS.BanksPerTask = 4
			}

			baseRep := run(cfg, mix)
			cdRep := run(refsched.CoDesign(cfg), mix)

			temp := "64ms"
			if hot {
				temp = "32ms"
			}
			fmt.Printf("2 cores, 1:%d (%2d t)  %s  %13.4f  %13.4f  %+.1f%%\n",
				ratio, 2*ratio, temp, baseRep.HarmonicIPC, cdRep.HarmonicIPC,
				(cdRep.HarmonicIPC/baseRep.HarmonicIPC-1)*100)
		}
	}
}

// tile repeats the base mix entries until n tasks are reached.
func tile(base refsched.Mix, n int) refsched.Mix {
	out := refsched.Mix{Name: fmt.Sprintf("%s-%d", base.Name, n)}
	var flat []string
	for _, e := range base.Entries {
		for i := 0; i < e.Count; i++ {
			flat = append(flat, e.Bench)
		}
	}
	counts := map[string]int{}
	var order []string
	for i := 0; i < n; i++ {
		b := flat[i%len(flat)]
		if counts[b] == 0 {
			order = append(order, b)
		}
		counts[b]++
	}
	for _, b := range order {
		out.Entries = append(out.Entries, refsched.MixEntry{Bench: b, Count: counts[b]})
	}
	return out
}

func run(cfg refsched.Config, mix refsched.Mix) *refsched.Report {
	sys, err := refsched.NewSystem(cfg, mix)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.RunWindows(1, 2)
	if err != nil {
		log.Fatal(err)
	}
	return rep
}
