// Policies: a survey of every refresh policy in the library on one
// memory-intensive workload — the refresh-free ideal, rank-level
// all-bank refresh, DDR4 fine-granularity modes, Adaptive Refresh,
// LPDDR3 per-bank refresh, out-of-order per-bank refresh, and the
// paper's co-design — showing where each lands between the baseline and
// the ideal, plus the internal evidence (stalled reads, eligible picks)
// for why.
package main

import (
	"fmt"
	"log"

	"refsched"
)

func main() {
	mix := refsched.Mix{
		Name:    "WL-8",
		Classes: "H+L",
		Entries: []refsched.MixEntry{
			{Bench: "bwaves", Count: 4},
			{Bench: "h264ref", Count: 4},
		},
	}

	type entry struct {
		label    string
		policy   refsched.RefreshPolicy
		codesign bool
	}
	entries := []entry{
		{"ideal (no refresh)", refsched.RefreshNone, false},
		{"all-bank (DDR 1x)", refsched.RefreshAllBank, false},
		{"DDR4 FGR 2x", refsched.RefreshFGR2x, false},
		{"DDR4 FGR 4x", refsched.RefreshFGR4x, false},
		{"Adaptive Refresh", refsched.RefreshAdaptive, false},
		{"Elastic Refresh", refsched.RefreshElastic, false},
		{"Refresh Pausing", refsched.RefreshPausing, false},
		{"RAIDR (profiled)", refsched.RefreshRAIDR, false},
		{"per-bank round-robin", refsched.RefreshPerBankRR, false},
		{"OOO per-bank", refsched.RefreshOOOPerBank, false},
		{"per-bank subarray", refsched.RefreshPerBankSA, false},
		{"co-design", refsched.RefreshPerBankSeq, true},
	}

	var baseIPC float64
	fmt.Println("policy                 hIPC     vs-allbank  mem-lat  stalled-by-refresh")
	fmt.Println("---------------------  -------  ----------  -------  ------------------")
	for _, e := range entries {
		cfg := refsched.DefaultConfig(refsched.Density32Gb, 64)
		if e.codesign {
			cfg = refsched.CoDesign(cfg)
		} else {
			cfg = refsched.WithRefresh(cfg, e.policy)
		}
		if e.policy == refsched.RefreshPerBankSA {
			cfg.Mem.SubarraysPerBank = 8
		}
		sys, err := refsched.NewSystem(cfg, mix)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.RunWindows(1, 2)
		if err != nil {
			log.Fatal(err)
		}
		if e.policy == refsched.RefreshAllBank {
			baseIPC = rep.HarmonicIPC
		}
		vs := "-"
		if baseIPC > 0 && e.policy != refsched.RefreshAllBank {
			vs = fmt.Sprintf("%+.1f%%", (rep.HarmonicIPC/baseIPC-1)*100)
		}
		fmt.Printf("%-21s  %.4f  %10s  %7.0f  %17.2f%%\n",
			e.label, rep.HarmonicIPC, vs, rep.AvgMemLatency, rep.RefreshStalledFrac*100)
	}
}
