// Quickstart: build the paper's dual-core machine twice — once with the
// all-bank refresh baseline, once with the full hardware-software
// co-design — run the same mixed workload on both, and compare.
package main

import (
	"fmt"
	"log"

	"refsched"
)

func main() {
	// WL-6 from the paper: four copies of mcf (high memory intensity)
	// plus four of povray (compute bound), consolidated 4-to-a-core.
	mix := refsched.Mix{
		Name:    "WL-6",
		Classes: "H+L",
		Entries: []refsched.MixEntry{
			{Bench: "mcf", Count: 4},
			{Bench: "povray", Count: 4},
		},
	}

	// 32 Gb devices are where refresh hurts most. Scale 64 divides the
	// millisecond-scale constants (64 ms retention window, 4 ms OS
	// quantum) so the run finishes in seconds while preserving the
	// refresh duty cycle and the quantum/slot alignment exactly.
	baselineCfg := refsched.DefaultConfig(refsched.Density32Gb, 64)
	codesignCfg := refsched.CoDesign(baselineCfg)

	baseline := run(baselineCfg, mix)
	codesign := run(codesignCfg, mix)

	fmt.Println("== baseline: all-bank refresh, buddy allocator, round-robin ==")
	fmt.Print(baseline)
	fmt.Println("== co-design: sequential per-bank refresh + soft partitioning + refresh-aware CFS ==")
	fmt.Print(codesign)

	gain := codesign.HarmonicIPC/baseline.HarmonicIPC - 1
	fmt.Printf("\nco-design IPC improvement: %+.1f%%\n", gain*100)
	fmt.Printf("reads stalled by refresh:  baseline %.2f%%  ->  co-design %.2f%%\n",
		baseline.RefreshStalledFrac*100, codesign.RefreshStalledFrac*100)
}

func run(cfg refsched.Config, mix refsched.Mix) *refsched.Report {
	sys, err := refsched.NewSystem(cfg, mix)
	if err != nil {
		log.Fatal(err)
	}
	// One retention window of warmup, two measured.
	rep, err := sys.RunWindows(1, 2)
	if err != nil {
		log.Fatal(err)
	}
	return rep
}
