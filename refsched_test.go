package refsched_test

import (
	"testing"

	"refsched"
)

func TestPublicAPISmoke(t *testing.T) {
	mix := refsched.Mix{
		Name: "api-smoke",
		Entries: []refsched.MixEntry{
			{Bench: "mcf", Count: 2},
			{Bench: "povray", Count: 2},
		},
	}
	cfg := refsched.DefaultConfig(refsched.Density16Gb, 2048)
	sys, err := refsched.NewSystemWithOptions(cfg, mix, refsched.Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunWindows(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HarmonicIPC <= 0 {
		t.Fatal("no progress through public API")
	}
	if len(rep.Tasks) != 4 {
		t.Fatalf("tasks = %d", len(rep.Tasks))
	}
}

func TestCoDesignHelper(t *testing.T) {
	cfg := refsched.CoDesign(refsched.DefaultConfig(refsched.Density32Gb, 64))
	if cfg.Refresh.Policy != refsched.RefreshPerBankSeq {
		t.Fatal("CoDesign did not select the sequential per-bank schedule")
	}
	if cfg.OS.Alloc != refsched.AllocSoftPartition || !cfg.OS.RefreshAware {
		t.Fatal("CoDesign did not enable the OS side")
	}
	if cfg.OS.Scheduler != refsched.SchedCFS {
		t.Fatal("CoDesign did not select CFS")
	}
}

func TestHighTempHelper(t *testing.T) {
	cfg := refsched.HighTemp(refsched.DefaultConfig(refsched.Density32Gb, 64))
	if cfg.Refresh.TREFWms != 32 {
		t.Fatal("HighTemp did not halve retention")
	}
}

func TestTable2Exposed(t *testing.T) {
	mixes := refsched.Table2()
	if len(mixes) != 10 {
		t.Fatalf("Table2 has %d mixes", len(mixes))
	}
}

func TestBenchmarkLookup(t *testing.T) {
	b, err := refsched.GetBenchmark("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "mcf" || b.Footprint == 0 {
		t.Fatalf("benchmark = %+v", b)
	}
	if _, err := refsched.GetBenchmark("unknown"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if len(refsched.Benchmarks()) < 7 {
		t.Fatal("too few modeled benchmarks")
	}
}

func TestWindowExposed(t *testing.T) {
	cfg := refsched.DefaultConfig(refsched.Density32Gb, 64)
	sys, err := refsched.NewSystem(cfg, refsched.Table2()[1])
	if err != nil {
		t.Fatal(err)
	}
	// 64 ms / 64 at 3.2 GHz.
	if sys.Window() != 3200000 {
		t.Fatalf("Window = %d", sys.Window())
	}
}

func TestWithRefreshHelper(t *testing.T) {
	cfg := refsched.WithRefresh(refsched.DefaultConfig(refsched.Density32Gb, 64), refsched.RefreshOOOPerBank)
	if cfg.Refresh.Policy != refsched.RefreshOOOPerBank {
		t.Fatal("WithRefresh did not apply")
	}
}
