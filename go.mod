module refsched

go 1.22
