package refsched_test

import (
	"bytes"
	"testing"

	"refsched"
)

// TestTraceCaptureAndReplay exercises the full trace loop through the
// public API: run a workload with a recorder attached, read the trace
// back, register it as a replay benchmark, and run the replay.
func TestTraceCaptureAndReplay(t *testing.T) {
	mix := refsched.Mix{Name: "cap", Entries: []refsched.MixEntry{{Bench: "stream", Count: 2}}}
	cfg := refsched.DefaultConfig(refsched.Density16Gb, 2048)
	sys, err := refsched.NewSystemWithOptions(cfg, mix, refsched.Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := sys.AttachTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunWindows(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if rec.Count() == 0 {
		t.Fatal("no requests captured")
	}

	recs, err := refsched.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(recs)) != rec.Count() {
		t.Fatalf("read %d of %d records", len(recs), rec.Count())
	}
	// Cycles are nondecreasing per channel (single channel here).
	for i := 1; i < len(recs); i++ {
		if recs[i].Cycle < recs[i-1].Cycle {
			t.Fatalf("trace out of order at %d", i)
		}
	}

	// Replay through a registered benchmark.
	err = refsched.RegisterBenchmark(refsched.Benchmark{
		Name:      "captured-stream",
		Class:     "M",
		Footprint: 1 << 24,
		New: func(_ *refsched.Rand, _ uint64) refsched.Generator {
			return refsched.ReplayGenerator(recs)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	replayMix := refsched.Mix{Name: "replay", Entries: []refsched.MixEntry{{Bench: "captured-stream", Count: 1}}}
	sys2, err := refsched.NewSystemWithOptions(refsched.DefaultConfig(refsched.Density16Gb, 2048), replayMix,
		refsched.Options{FootprintScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys2.RunWindows(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reads == 0 {
		t.Fatal("replay produced no memory traffic")
	}
}

func TestRegisterBenchmarkValidation(t *testing.T) {
	if err := refsched.RegisterBenchmark(refsched.Benchmark{}); err == nil {
		t.Fatal("empty benchmark accepted")
	}
	if err := refsched.RegisterBenchmark(refsched.Benchmark{
		Name: "mcf",
		New:  func(*refsched.Rand, uint64) refsched.Generator { return nil },
	}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}
