# Development targets. The simulation itself needs only the Go toolchain.

GO ?= go

.PHONY: build test short race bench bench-baseline ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

# The parallel experiment runner fans simulation cells out across
# goroutines; run the full suite under the race detector after touching
# the runner, the harness drivers, or anything they share.
race:
	$(GO) test -race -timeout 60m ./...

# The merge gate: build, vet, the short test suite, then the race
# detector over the concurrency-bearing packages (the worker pool, the
# fault injector, the journal, and the event engine — which also guards
# the hot path's 0 allocs/op via TestEngineScheduleIsAllocationFree).
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -short ./...
	$(GO) test -race -timeout 10m ./internal/runner/ ./internal/chaos/ ./internal/journal/ ./internal/sim/

# One regeneration per figure benchmark plus the substrate
# microbenchmarks (allocs/op for the event-engine hot path).
bench:
	$(GO) test -bench . -benchtime=1x -run '^$$'

# Record the perf baseline consumed by future revisions: per-figure
# wall-clock and event-engine microbench numbers at the quick preset.
bench-baseline:
	$(GO) run ./cmd/experiments -quick -bench-json BENCH_baseline.json all
