# Development targets. The simulation itself needs only the Go toolchain.

GO ?= go

# Pinned staticcheck, fetched through the module proxy on demand. Kept
# out of go.mod so the simulator itself stays dependency-free.
STATICCHECK = $(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1.1

.PHONY: build test short race bench bench-baseline bench-compare serve ci staticcheck regen-output timeline-demo soak soak-short cluster-smoke cluster-demo checkpoint-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

# The parallel experiment runner fans simulation cells out across
# goroutines; run the full suite under the race detector after touching
# the runner, the harness drivers, or anything they share.
race:
	$(GO) test -race -timeout 60m ./...

# Run the simulation-as-a-service daemon on the default port with a
# persistent result cache (warm restarts). See README "Serving mode".
serve:
	$(GO) run ./cmd/refschedd -journal refschedd.cache.json

# Lint with the pinned staticcheck. Fetching it needs the module
# proxy, so offline environments skip with a warning instead of
# failing the gate; CI always has network and runs it for real.
staticcheck:
	@if $(STATICCHECK) -version >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "staticcheck unavailable (offline?); skipping"; \
	fi

# The merge gate: build, vet, staticcheck, the short test suite, then
# the race detector over the concurrency-bearing packages (the worker
# pool, the fault injector, the journal, the event engine — which also
# guards the hot path's 0 allocs/op via
# TestEngineScheduleIsAllocationFree — and the serving daemon) plus the
# channel-parallel determinism gate in internal/core, and finally the
# daemon smoke drill: the real binary on an ephemeral port, /healthz, a
# figure round-trip through the cache, and a SIGTERM drain to exit 0.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(MAKE) staticcheck
	$(GO) test -short ./...
	$(GO) test -race -timeout 10m ./internal/runner/ ./internal/chaos/ ./internal/journal/ ./internal/sim/ ./internal/service/ ./internal/timeline/ ./internal/cluster/ ./cmd/refload/
	$(GO) test -race -timeout 10m -run 'TestChannelParallel' ./internal/core/
	$(GO) test -count=1 -run 'TestDaemonSmoke' ./cmd/refschedd/

# The overload/chaos drill (see EXPERIMENTS.md "Soak drill"): refload
# drives thousands of mixed multi-tenant requests at a small-queue
# daemon under stall chaos until brownout engages, the daemon is
# SIGKILLed with acknowledged jobs pending, and a warm restart on the
# same job WAL must replay every one of them to a terminal state (zero
# acknowledged-job loss) and answer the reference figure byte-for-byte
# identically; a final phase proves the stalled-job watchdog kills
# wedged jobs within its bound. soak-short is the ~1k-request variant
# scheduled CI runs.
soak:
	REFSCHED_SOAK=full $(GO) test -count=1 -timeout 20m -v -run 'TestSoak' ./cmd/refschedd/

soak-short:
	REFSCHED_SOAK=short $(GO) test -count=1 -timeout 10m -run 'TestSoak' ./cmd/refschedd/

# The multi-node drills (see EXPERIMENTS.md "Cluster walkthrough"): a
# real 3-node cluster over localhost — consistent-hash routing, the
# cross-shard cache fallback served as a hit through a non-owner, clean
# SIGTERM drains — plus the degraded-mode acceptance: a fanned-out fig10
# sweep with one peer SIGKILLed mid-sweep must render byte-identical to
# a single-node daemon.
cluster-smoke:
	$(GO) test -count=1 -timeout 15m -run 'TestClusterSmoke|TestClusterKillNodeByteIdentical' ./cmd/refschedd/

# Run a local 3-node cluster to poke at by hand: three daemons on fixed
# ports sharing one -peers list, with cell fan-out enabled. Ctrl-C stops
# all three. Try:
#   curl -i localhost:8371/v1/figures/fig10   # note X-Refsched-Node
#   curl -s localhost:8372/statsz | grep -A4 '"cluster"'
cluster-demo:
	@trap 'kill 0' INT TERM; \
	PEERS=a=127.0.0.1:8371,b=127.0.0.1:8372,c=127.0.0.1:8373; \
	$(GO) build -o /tmp/refschedd-demo ./cmd/refschedd; \
	/tmp/refschedd-demo -addr 127.0.0.1:8371 -quick -peers $$PEERS -node-id a -fanout 2 & \
	/tmp/refschedd-demo -addr 127.0.0.1:8372 -quick -peers $$PEERS -node-id b -fanout 2 & \
	/tmp/refschedd-demo -addr 127.0.0.1:8373 -quick -peers $$PEERS -node-id c -fanout 2 & \
	wait

# The checkpoint/restore drill (see EXPERIMENTS.md "Checkpoint/
# restore" and DESIGN.md §12): run a reference simulation, run the
# identical simulation again with -checkpoint and SIGKILL it as soon as
# the first snapshot lands, then -restore the survivor and require the
# resumed report byte-identical to the uninterrupted one. The race-list
# packages in `ci` already cover the preempt-and-resume paths; this
# target proves the on-disk snapshot survives a hard kill.
checkpoint-smoke:
	@set -e; \
	dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	$(GO) build -o $$dir/refsim ./cmd/refsim; \
	run="$$dir/refsim -mix WL-1 -density 8 -policy perbank -scale 512 -footprint-scale 0.02 -warmup 0 -measure 2"; \
	$$run > $$dir/ref.json; \
	$$run -checkpoint $$dir/c.snap -checkpoint-every 50000 > /dev/null 2>&1 & pid=$$!; \
	i=0; while [ ! -s $$dir/c.snap ] && [ $$i -lt 600 ]; do sleep 0.05; i=$$((i+1)); done; \
	kill -9 $$pid 2>/dev/null || { echo "checkpoint-smoke: run finished before SIGKILL landed (no snapshot left to restore)" >&2; exit 1; }; \
	wait $$pid 2>/dev/null || true; \
	[ -s $$dir/c.snap ] || { echo "checkpoint-smoke: no snapshot was written" >&2; exit 1; }; \
	$$dir/refsim -restore $$dir/c.snap > $$dir/resumed.json; \
	cmp $$dir/ref.json $$dir/resumed.json; \
	echo "checkpoint-smoke: SIGKILL mid-run + restore is byte-identical"

# Write the pair of Perfetto timelines EXPERIMENTS.md walks through:
# the same mix under rotating per-bank refresh (baseline) and under the
# full co-design's sequential schedule. Load either file at
# https://ui.perfetto.dev to compare the DRAM refresh tracks against
# the per-core quantum tracks.
timeline-demo:
	$(GO) run ./cmd/refsim -mix WL-6 -density 32 -policy perbank \
		-scale 512 -footprint-scale 0.05 -warmup 0 -measure 1 \
		-timeline timeline_perbank.json
	$(GO) run ./cmd/refsim -mix WL-6 -density 32 -codesign \
		-scale 512 -footprint-scale 0.05 -warmup 0 -measure 1 \
		-timeline timeline_codesign.json
	@echo "wrote timeline_perbank.json and timeline_codesign.json — open in https://ui.perfetto.dev"

# One regeneration per figure benchmark plus the substrate
# microbenchmarks (allocs/op for the event-engine hot path).
bench:
	$(GO) test -bench . -benchtime=1x -run '^$$'

# Record the perf baseline consumed by future revisions: per-figure
# wall-clock and event-engine microbench numbers at the quick preset.
# BENCH_baseline.json is committed; refresh it (on the same idle machine
# it was recorded on) whenever a deliberate perf change lands, and cite
# the before/after in the commit message.
bench-baseline:
	$(GO) run ./cmd/experiments -quick -bench-json BENCH_baseline.json all

# The perf gate: rerun the baseline workload into a scratch file and
# diff it against the committed baseline. Exits non-zero when engine
# events/sec drops >10%, allocs/event grows, or a figure's wall-clock
# grows >35% (the looser bound absorbs machine noise). Only meaningful
# on the machine the baseline was recorded on; CI instead benches base
# and head back-to-back on one runner.
bench-compare:
	$(GO) run ./cmd/experiments -quick -bench-json BENCH_candidate.json all
	$(GO) run ./cmd/benchdiff BENCH_baseline.json BENCH_candidate.json

# Regenerate the raw experiment output EXPERIMENTS.md cites (the quick
# preset's full grid, then the per-mix figures over all ten mixes).
# The artifact is regenerable and therefore gitignored, not committed.
regen-output:
	$(GO) run ./cmd/experiments -quick all > experiments_output.txt
	$(GO) run ./cmd/experiments -quick \
		-mixes WL-1,WL-2,WL-3,WL-4,WL-5,WL-6,WL-7,WL-8,WL-9,WL-10 \
		fig10 fig12 fig13 fig14 >> experiments_output.txt
