package service

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
)

// errQueueFull is admission control's signal; the HTTP layer turns it
// into 429 + Retry-After so callers back off instead of piling work
// onto a queue that is already beyond its depth limit.
var errQueueFull = errors.New("service: job queue full")

// errDraining rejects new work once shutdown has begun.
var errDraining = errors.New("service: draining, not accepting jobs")

// jobQueue is the daemon's bounded priority queue: higher Priority
// pops first, FIFO within a priority. Push never blocks — beyond depth
// it fails with errQueueFull. Pop blocks until work or close.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	depth  int
	seq    uint64
	items  jobHeap
	closed bool
}

func newJobQueue(depth int) *jobQueue {
	q := &jobQueue{depth: depth}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *jobQueue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errDraining
	}
	if q.items.Len() >= q.depth {
		return fmt.Errorf("%w (depth %d)", errQueueFull, q.depth)
	}
	j.seq = q.seq
	q.seq++
	heap.Push(&q.items, j)
	q.cond.Signal()
	return nil
}

// forcePush enqueues j even beyond the depth bound, for jobs that were
// already admitted under the bound once: WAL recovery (dropping them on
// restart would turn a crash into acknowledged-job loss) and preempted
// jobs returning to the queue (shedding them would turn a preemption
// into a rejection the client was never warned about). The fresh seq
// keeps FIFO-within-priority honest: a requeued job waits behind
// same-priority work that arrived while it ran.
func (q *jobQueue) forcePush(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errDraining
	}
	j.seq = q.seq
	q.seq++
	heap.Push(&q.items, j)
	q.cond.Signal()
	return nil
}

// pop blocks for the next job; ok is false when the queue is closed
// and fully drained.
func (q *jobQueue) pop() (j *job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.items.Len() == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.items.Len() == 0 {
		return nil, false
	}
	return heap.Pop(&q.items).(*job), true
}

func (q *jobQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.items.Len()
}

// close stops admission; queued jobs still drain through pop.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
