package service

import (
	"encoding/json"
	"sync"
)

// eventHub fans one job's progress events out to any number of NDJSON
// stream subscribers. Events are retained for the job's lifetime so a
// subscriber that connects mid-run (or after completion) replays the
// full history before streaming live — every client sees the same
// complete event sequence regardless of when it attached.
type eventHub struct {
	mu      sync.Mutex
	history [][]byte
	subs    map[chan []byte]struct{}
	closed  bool
}

// subscriberBuffer bounds a slow subscriber; a full buffer drops the
// event for that subscriber rather than stalling the job.
const subscriberBuffer = 256

func newEventHub() *eventHub {
	return &eventHub{subs: map[chan []byte]struct{}{}}
}

// publish records v (JSON-encoded, one line) and delivers it to live
// subscribers.
func (h *eventHub) publish(v any) {
	line, err := json.Marshal(v)
	if err != nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.history = append(h.history, line)
	for ch := range h.subs {
		select {
		case ch <- line:
		default:
		}
	}
}

// subscribe returns the history so far plus a channel of subsequent
// events; the channel is closed when the job finishes. cancel detaches
// early (idempotent, safe after close).
func (h *eventHub) subscribe() (replay [][]byte, events <-chan []byte, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	replay = append([][]byte(nil), h.history...)
	ch := make(chan []byte, subscriberBuffer)
	if h.closed {
		close(ch)
		return replay, ch, func() {}
	}
	h.subs[ch] = struct{}{}
	return replay, ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
		}
	}
}

// close ends the stream for all subscribers; further publishes are
// dropped.
func (h *eventHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		close(ch)
		delete(h.subs, ch)
	}
}
