package service

import (
	"encoding/json"
	"sync"
	"sync/atomic"
)

// eventHub fans one job's progress events out to any number of NDJSON
// stream subscribers. Recent events are retained so a subscriber that
// connects mid-run (or after completion) replays history before
// streaming live; both the retained history and each subscriber's
// in-flight buffer are bounded, so neither a long sweep nor a stalled
// client can grow daemon memory without limit. Where the bounds bite,
// the stream says so in-band: a trimmed replay starts with a
// {"event":"truncated"} line and a slow subscriber that missed events
// gets a {"event":"dropped"} line before its next delivery, so
// consumers can tell a gap from a complete sequence.
type eventHub struct {
	mu      sync.Mutex
	history [][]byte
	trimmed uint64 // history lines discarded to honour historyLimit
	subs    map[chan []byte]*subscriber
	closed  bool

	// drops, when non-nil, is the daemon-wide slow-subscriber drop
	// counter (a metrics registry target) shared by every job's hub.
	drops *atomic.Uint64
}

type subscriber struct {
	dropped uint64 // events lost to a full buffer since the last marker
}

// subscriberBuffer bounds a slow subscriber; a full buffer drops the
// event for that subscriber (noted in-band) rather than stalling the
// job or buffering without bound.
const subscriberBuffer = 256

// historyLimit bounds how many event lines a job retains for replay.
// A figure sweep emits two lines per cell plus a handful of state
// transitions, so real jobs fit comfortably; a pathological one is
// truncated oldest-first with an in-band marker.
const historyLimit = 1024

func newEventHub() *eventHub {
	return &eventHub{subs: map[chan []byte]*subscriber{}}
}

// marker builds the in-band control lines ({"event":"truncated"|"dropped"}).
func marker(event string, key string, n uint64) []byte {
	line, _ := json.Marshal(map[string]any{"event": event, key: n})
	return line
}

// publish records v (JSON-encoded, one line) and delivers it to live
// subscribers. A subscriber whose buffer is full loses the line (and
// later learns how many it lost); the publisher never blocks.
func (h *eventHub) publish(v any) {
	line, err := json.Marshal(v)
	if err != nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.history = append(h.history, line)
	if len(h.history) > historyLimit {
		over := len(h.history) - historyLimit
		h.history = append(h.history[:0:0], h.history[over:]...)
		h.trimmed += uint64(over)
	}
	for ch, sub := range h.subs {
		if sub.dropped > 0 {
			// Tell the consumer about the gap before resuming the
			// stream; if even the marker cannot be delivered the gap
			// just grows.
			select {
			case ch <- marker("dropped", "n", sub.dropped):
				sub.dropped = 0
			default:
			}
		}
		select {
		case ch <- line:
		default:
			sub.dropped++
			if h.drops != nil {
				h.drops.Add(1)
			}
		}
	}
}

// subscribe returns the retained history plus a channel of subsequent
// events; the channel is closed when the job finishes. cancel detaches
// early and releases the subscriber's resources (idempotent, safe
// after close). A replay that lost lines to the history bound starts
// with a truncation marker.
func (h *eventHub) subscribe() (replay [][]byte, events <-chan []byte, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.trimmed > 0 {
		replay = append(replay, marker("truncated", "dropped", h.trimmed))
	}
	replay = append(replay, h.history...)
	ch := make(chan []byte, subscriberBuffer)
	if h.closed {
		close(ch)
		return replay, ch, func() {}
	}
	h.subs[ch] = &subscriber{}
	return replay, ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
		}
	}
}

// subscribers reports how many live subscribers are attached — the
// resource-release observable disconnect tests assert on.
func (h *eventHub) subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// close ends the stream for all subscribers; further publishes are
// dropped.
func (h *eventHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		close(ch)
		delete(h.subs, ch)
	}
}
