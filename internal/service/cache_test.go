package service

import (
	"fmt"
	"testing"
)

// TestCacheLRUEvictsOldestFirst fills a single-shard cache past its
// byte budget and checks that the oldest (least recently used)
// fingerprints fall out first while the newest stay resident.
func TestCacheLRUEvictsOldestFirst(t *testing.T) {
	// Each entry: 4-byte key + 96-byte body = 100 bytes; budget holds 5.
	c := NewCache(500, 1)
	body := make([]byte, 96)
	for i := 0; i < 8; i++ {
		c.Put(fmt.Sprintf("k%03d", i), body)
	}
	st := c.Stats()
	if st.Entries != 5 || st.Evictions != 3 {
		t.Fatalf("entries=%d evictions=%d, want 5 and 3", st.Entries, st.Evictions)
	}
	if st.Bytes > st.Budget {
		t.Fatalf("bytes=%d over budget=%d", st.Bytes, st.Budget)
	}
	for i := 0; i < 3; i++ {
		if c.Contains(fmt.Sprintf("k%03d", i)) {
			t.Errorf("oldest key k%03d should have been evicted", i)
		}
	}
	for i := 3; i < 8; i++ {
		if !c.Contains(fmt.Sprintf("k%03d", i)) {
			t.Errorf("recent key k%03d missing", i)
		}
	}
}

// TestCacheGetPromotes: touching an old entry saves it from the next
// eviction.
func TestCacheGetPromotes(t *testing.T) {
	c := NewCache(300, 1) // holds 3 x (4+96)-byte entries
	body := make([]byte, 96)
	c.Put("k000", body)
	c.Put("k001", body)
	c.Put("k002", body)
	if _, ok := c.Get("k000"); !ok {
		t.Fatal("k000 should be resident")
	}
	c.Put("k003", body) // evicts k001, the now-least-recent
	if !c.Contains("k000") || c.Contains("k001") {
		t.Fatal("Get should have promoted k000 over k001")
	}
}

func TestCacheHitRatio(t *testing.T) {
	c := NewCache(1<<20, 4)
	c.Put("a", []byte("body"))
	c.Get("a")
	c.Get("a")
	c.Get("missing")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", st.Hits, st.Misses)
	}
	if got, want := st.HitRatio, 2.0/3.0; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("hit ratio = %v, want %v", got, want)
	}
}

// TestCacheRejectsOversizedBody: a value bigger than a shard's whole
// budget is not cached (and does not wipe the shard to make room).
func TestCacheRejectsOversizedBody(t *testing.T) {
	c := NewCache(100, 1)
	c.Put("small", make([]byte, 10))
	c.Put("huge", make([]byte, 1000))
	if c.Contains("huge") {
		t.Fatal("oversized body should not be cached")
	}
	if !c.Contains("small") {
		t.Fatal("existing entries must survive an oversized Put")
	}
}

// TestCacheUpdateAdjustsBytes: replacing a body re-accounts its size.
func TestCacheUpdateAdjustsBytes(t *testing.T) {
	c := NewCache(1<<20, 1)
	c.Put("k", make([]byte, 100))
	c.Put("k", make([]byte, 10))
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != int64(len("k")+10) {
		t.Fatalf("entries=%d bytes=%d after shrink", st.Entries, st.Bytes)
	}
}

// TestCacheShardedBudget: with many shards the total stays bounded by
// the overall budget no matter how many entries are inserted.
func TestCacheShardedBudget(t *testing.T) {
	c := NewCache(4096, 8)
	for i := 0; i < 500; i++ {
		c.Put(fmt.Sprintf("key-%d", i), make([]byte, 64))
	}
	st := c.Stats()
	if st.Bytes > 4096 {
		t.Fatalf("cache holds %d bytes, budget 4096", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions after overfilling")
	}
	snap := c.Snapshot()
	if len(snap) != st.Entries {
		t.Fatalf("snapshot has %d entries, stats say %d", len(snap), st.Entries)
	}
}
