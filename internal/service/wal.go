package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// The job WAL is the acknowledged-work ledger: an append-only NDJSON
// file recording every job the daemon accepted onto its queue and every
// job that reached a terminal state. The accept record is fsynced
// before the HTTP layer acknowledges the job (202), so a SIGKILL at any
// instant leaves every acknowledged-but-unfinished job on durable
// record; a restarted daemon replays those records back onto its queue
// with their original ids, tenants, priorities, and absolute deadlines,
// which is what makes the soak drill's "zero acknowledged-job loss"
// assertion hold.
//
// Done records are appended without fsync: losing one to a crash only
// means the job is re-run once on restart (its result lands in the same
// cache entry), never that an acknowledgement is broken. Replay
// tolerates a torn tail — a partial final line from a mid-write kill is
// dropped, not treated as corruption — and the file is compacted to the
// still-pending set on every open and close, so it stays proportional
// to in-flight work, not daemon lifetime.

// walRecord is one WAL line.
type walRecord struct {
	Op         string     `json:"op"` // "accept" | "done"
	ID         string     `json:"id"`
	Tenant     string     `json:"tenant,omitempty"`
	Req        *Request   `json:"req,omitempty"`
	DeadlineAt *time.Time `json:"deadline_at,omitempty"`
}

// jobWAL is the open ledger. Appends serialize under mu.
type jobWAL struct {
	mu   sync.Mutex
	path string
	f    *os.File

	accepts atomic.Uint64
	dones   atomic.Uint64
	ioErrs  atomic.Uint64
	// recovered/torn describe what open found: pending accepts replayed
	// and invalid (torn or foreign) lines dropped.
	recovered uint64
	torn      uint64
}

// openWAL loads the ledger at path, compacts it to the pending set, and
// returns the still-pending accepts for replay.
func openWAL(path string) (*jobWAL, []walRecord, error) {
	pending, torn, err := parseWALFile(path)
	if err != nil {
		return nil, nil, err
	}
	if err := compactWAL(path, pending); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: job wal: %w", err)
	}
	w := &jobWAL{path: path, f: f, recovered: uint64(len(pending)), torn: uint64(torn)}
	return w, pending, nil
}

// parseWALFile reads the ledger and reduces it to the accepts without a
// matching done, in acceptance order. Lines that do not parse are
// dropped and counted: the expected case is a single torn final line
// from a kill mid-append, and dropping an accept line that never became
// durable is correct — its request was never acknowledged.
func parseWALFile(path string) (pending []walRecord, torn int, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("service: job wal: %w", err)
	}
	defer f.Close()

	var accepts []walRecord
	done := map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec walRecord
		if json.Unmarshal(line, &rec) != nil {
			torn++
			continue
		}
		switch rec.Op {
		case "accept":
			if rec.ID != "" && rec.Req != nil {
				accepts = append(accepts, rec)
			} else {
				torn++
			}
		case "done":
			done[rec.ID] = true
		default:
			torn++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("service: job wal: reading %s: %w", path, err)
	}
	for _, rec := range accepts {
		if !done[rec.ID] {
			pending = append(pending, rec)
		}
	}
	return pending, torn, nil
}

// compactWAL atomically rewrites the ledger to just the pending accepts
// (tmp + fsync + rename + parent-dir fsync, like internal/journal).
func compactWAL(path string, pending []walRecord) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("service: job wal: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	for _, rec := range pending {
		line, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("service: job wal: %w", err)
		}
		if _, err := tmp.Write(append(line, '\n')); err != nil {
			tmp.Close()
			return fmt.Errorf("service: job wal: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("service: job wal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("service: job wal: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("service: job wal: %w", err)
	}
	return walSyncDir(dir)
}

// walSyncDir fsyncs the ledger's directory so the compaction rename
// survives a crash; filesystems that cannot fsync directories degrade
// to the rename-only guarantee.
func walSyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("service: job wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("service: job wal: syncing %s: %w", dir, err)
	}
	return nil
}

// appendAccept makes a job acceptance durable. It must return before
// the job is acknowledged to the client.
func (w *jobWAL) appendAccept(rec walRecord) error {
	rec.Op = "accept"
	if err := w.append(rec, true); err != nil {
		w.ioErrs.Add(1)
		return err
	}
	w.accepts.Add(1)
	return nil
}

// appendDone records a terminal state. Unsynced by design: see the
// package comment at the top of this file.
func (w *jobWAL) appendDone(id string) error {
	if err := w.append(walRecord{Op: "done", ID: id}, false); err != nil {
		w.ioErrs.Add(1)
		return err
	}
	w.dones.Add(1)
	return nil
}

func (w *jobWAL) append(rec walRecord, sync bool) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: job wal: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("service: job wal: closed")
	}
	if _, err := w.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("service: job wal: %w", err)
	}
	if sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("service: job wal: %w", err)
		}
	}
	return nil
}

// close compacts the ledger to whatever is still pending (empty after a
// clean drain) and closes it.
func (w *jobWAL) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("service: job wal: %w", err)
	}
	w.f = nil
	pending, _, err := parseWALFile(w.path)
	if err != nil {
		return err
	}
	return compactWAL(w.path, pending)
}
