package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"refsched/internal/cluster"
	"refsched/internal/core"
	"refsched/internal/harness"
	"refsched/internal/runner"
	"refsched/internal/timeline"
)

// Cluster-internal HTTP headers.
const (
	// forwardedHeader marks a request that already crossed one
	// node-to-node hop; its value is the forwarding node's id. A marked
	// request is always handled locally — one hop maximum, no loops.
	forwardedHeader = "X-Refsched-Forwarded"
	// nodeHeader names the node that produced a response. Forwarded
	// responses carry the executing node's value (header copy overwrites
	// the entry node's), so clients and tests can see placement.
	nodeHeader = "X-Refsched-Node"
	// fwdReqHeader carries the entry node's request id across the hop,
	// joining the two access logs and timelines.
	fwdReqHeader = "X-Refsched-Req"
)

// tlPidRemote is the job-timeline process grouping remote-cell spans:
// one thread per fan-out lane (peer × slot), each span tagged with the
// peer node id. See the service track constants in job.go.
const tlPidRemote = 3

// remoteCacheTimeout bounds the single cross-shard cache GET a miss
// performs before simulating. Generous relative to a cache read,
// tiny relative to any simulation.
const remoteCacheTimeout = 5 * time.Second

// maxRouteBody bounds how much of a POST /v1/jobs body the router reads
// to compute the placement key (the enqueue handler has the same
// practical bound: requests are small JSON).
const maxRouteBody = 1 << 20

// newClusterTimeline builds the node-level recorder behind
// GET /v1/cluster/timeline: forward spans and received remote-cell
// spans, timestamped in wall microseconds since daemon start.
func newClusterTimeline(nodeID string) *timeline.Recorder {
	rec := timeline.NewRecorder(nil, 4096)
	rec.SetProcessName(tlPidService, "refschedd "+nodeID)
	rec.SetThreadName(tlPidService, tlTidRequests, "forwards")
	rec.SetThreadName(tlPidService, tlTidJob, "remote cells in")
	return rec
}

// clusterSinceUS is the cluster-timeline clock.
func (s *Server) clusterSinceUS(t time.Time) uint64 {
	if d := t.Sub(s.start); d > 0 {
		return uint64(d.Microseconds())
	}
	return 0
}

// routeCluster is the routing middleware: called by ServeHTTP before
// mux dispatch when clustering is enabled, it decides whether this
// request belongs to another node and, if so, forwards it there. It
// reports whether it fully handled (wrote) the response.
//
// Placement is by consistent hash of the same request key the cache and
// single-flight index use, so identical requests from any entry node
// concentrate on one owner — that is what makes the cluster-wide cache
// and dedup effective. Figure GETs route by the figure's base-parameter
// key regardless of fidelity or query knobs, so the approx and exact
// tiers of one figure land on the same node. A request bearing the
// forwarded marker is never routed again (one hop max), and when every
// preferred remote node is down the request is simply handled locally —
// degraded placement, never refusal.
func (s *Server) routeCluster(w http.ResponseWriter, r *http.Request, ri reqInfo) bool {
	if from := r.Header.Get(forwardedHeader); from != "" {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" ||
			r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/figures/") {
			s.cluster.JobsReceived.Add(1)
		}
		return false
	}
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
		body, err := io.ReadAll(io.LimitReader(r.Body, maxRouteBody))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "reading request body: " + err.Error()})
			return true
		}
		// The local handler (routed-to or fallen-back-to) re-reads the
		// body from this replacement.
		r.Body = io.NopCloser(bytes.NewReader(body))
		key, ok := s.jobPlacementKey(body)
		if !ok {
			return false // malformed body: let the handler produce its 400
		}
		m, self := s.cluster.RouteOwner(key)
		if self {
			return false
		}
		return s.forward(w, r, ri, m, body)
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/figures/"):
		name := canonicalFigure(strings.TrimPrefix(r.URL.Path, "/v1/figures/"))
		if !validFigure(name) {
			return false
		}
		m, self := s.cluster.RouteOwner(requestKey(name, nil, s.cfg.Params))
		if self {
			return false
		}
		return s.forward(w, r, ri, m, nil)
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/jobs/"):
		// A job created by a forwarded POST lives on the owner; proxy
		// status, events, and timeline reads to it. Locally known ids
		// (including WAL-recovered and dedup-aliased ones) stay local.
		id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
		id, _, _ = strings.Cut(id, "/")
		if s.getJob(id) != nil {
			return false
		}
		peerID, ok := s.remoteJobOwner(id)
		if !ok || !s.cluster.Alive(peerID) {
			return false
		}
		for _, m := range s.cluster.Members() {
			if m.ID == peerID {
				return s.forward(w, r, ri, m, nil)
			}
		}
		return false
	}
	return false
}

// jobPlacementKey computes the request key a POST /v1/jobs body will
// resolve to, mirroring enqueue's canonicalization. ok is false when
// the body does not decode (the handler will reject it anyway).
func (s *Server) jobPlacementKey(body []byte) (string, bool) {
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		return "", false
	}
	if (req.Figure == "") == (req.Cell == nil) {
		return "", false
	}
	figure := "cell"
	if req.Cell == nil {
		figure = canonicalFigure(req.Figure)
	}
	return requestKey(figure, req.Cell, req.Params.apply(s.cfg.Params)), true
}

// forward proxies r to m and copies the response back verbatim —
// status, headers, and body, streamed with per-chunk flushes so NDJSON
// event streams pass through live. Verbatim matters beyond streaming:
// a structured 429 from the owner (tenant, reason, retry_after_s,
// Retry-After) must reach the client exactly as written, not re-wrapped
// into an anonymous proxy error. A transport failure before the
// upstream response arrives falls back to local handling (return
// false) and counts against the peer's health.
func (s *Server) forward(w http.ResponseWriter, r *http.Request, ri reqInfo, m cluster.Member, body []byte) bool {
	t0 := time.Now()
	var reqBody io.Reader
	if body != nil {
		reqBody = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(r.Context(), r.Method,
		"http://"+m.Addr+r.URL.RequestURI(), reqBody)
	if err != nil {
		return false
	}
	out.Header = r.Header.Clone()
	out.Header.Set(forwardedHeader, s.cluster.Self().ID)
	out.Header.Set(fwdReqHeader, ri.id)

	resp, err := s.cluster.Client().Do(out)
	if err != nil {
		s.cluster.ObservePeer(m.ID, false)
		s.cluster.ForwardFallbacks.Add(1)
		s.log.Warn("forward failed, handling locally",
			"request_id", ri.id, "peer", m.ID, "err", err.Error())
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		return false
	}
	defer resp.Body.Close()
	s.cluster.ObservePeer(m.ID, true)
	s.cluster.MarkForwarded(m.ID)

	hdr := w.Header()
	for k, vs := range resp.Header {
		hdr[k] = vs
	}
	w.WriteHeader(resp.StatusCode)

	// POST /v1/jobs responses carry the created job's id; remember which
	// node owns it so later GETs for the id proxy to the right place.
	if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" && resp.StatusCode < 300 {
		ack, err := io.ReadAll(io.LimitReader(resp.Body, maxRouteBody))
		if err == nil {
			var created struct {
				ID string `json:"id"`
			}
			if json.Unmarshal(ack, &created) == nil && created.ID != "" {
				s.rememberRemoteJob(created.ID, m.ID)
			}
			w.Write(ack)
		}
	} else {
		flusher, _ := w.(http.Flusher)
		buf := make([]byte, 32<<10)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					break
				}
				if flusher != nil {
					flusher.Flush()
				}
			}
			if rerr != nil {
				break
			}
		}
	}

	ts := s.clusterSinceUS(t0)
	s.clusterTL.Emit(timeline.Event{Ph: timeline.PhaseSpan,
		Ts: ts, Dur: s.clusterSinceUS(time.Now()) - ts,
		Pid: tlPidService, Tid: tlTidRequests,
		Name: "forward " + r.Method + " " + r.URL.Path,
		Arg1Name: "status", Arg1: int64(resp.StatusCode),
		StrName: "peer", Str: m.ID})
	return true
}

// rememberRemoteJob records that job id was created on peer, with the
// same retention bound as locally finished jobs.
func (s *Server) rememberRemoteJob(id, peer string) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	if _, known := s.remoteJobs[id]; !known {
		s.remoteJobOrder = append(s.remoteJobOrder, id)
		for len(s.remoteJobOrder) > finishedRetain {
			delete(s.remoteJobs, s.remoteJobOrder[0])
			s.remoteJobOrder = s.remoteJobOrder[1:]
		}
	}
	s.remoteJobs[id] = peer
}

// remoteJobOwner looks up which peer created job id via this node.
func (s *Server) remoteJobOwner(id string) (string, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	peer, ok := s.remoteJobs[id]
	return peer, ok
}

// remoteCacheLookup is the cross-shard fallback a local cache miss
// performs before simulating: one GET to the first alive node in the
// key's ownership order (excluding this one — which covers both a
// non-owner handling degraded traffic and a freshly restarted owner
// whose successor held the fort). Never a broadcast. It returns the
// cached body and the answering peer on a hit.
func (s *Server) remoteCacheLookup(key string) (body []byte, peer string, ok bool) {
	m, ok := s.cluster.FallbackOwner(key)
	if !ok {
		return nil, "", false
	}
	ctx, cancel := context.WithTimeout(s.runCtx, remoteCacheTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+m.Addr+"/v1/cache/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, "", false
	}
	resp, err := s.cluster.Client().Do(req)
	if err != nil {
		s.cluster.ObservePeer(m.ID, false)
		s.cluster.RemoteCacheMisses.Add(1)
		return nil, "", false
	}
	defer resp.Body.Close()
	s.cluster.ObservePeer(m.ID, true)
	if resp.StatusCode != http.StatusOK {
		s.cluster.RemoteCacheMisses.Add(1)
		return nil, "", false
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, s.cfg.CacheBytes))
	if err != nil || len(b) == 0 {
		s.cluster.RemoteCacheMisses.Add(1)
		return nil, "", false
	}
	s.cluster.RemoteCacheHits.Add(1)
	return b, m.ID, true
}

// handleCacheGet is GET /v1/cache/{key} (cluster-internal): the raw
// cached body for one request key, or 404. This is the single-probe
// target of a peer's cross-shard fallback.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	// Contains-first mirrors execute's re-check so probes for keys this
	// node never computed do not distort the local miss counter.
	if s.cache.Contains(key) {
		if body, ok := s.cache.Get(key); ok {
			s.cluster.CacheServed.Add(1)
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write(body)
			return
		}
	}
	writeJSON(w, http.StatusNotFound, map[string]string{"error": "not cached"})
}

// handleCellExec is POST /v1/cells (cluster-internal): execute one
// remotable sweep cell on behalf of a coordinating peer and return the
// core.Report as JSON. The cell runs through the standard fault
// boundary (harness.RunCell) under this node's priority gate at the
// coordinating job's priority, so remote cells compete fairly with
// local jobs for simulation slots. A failure answers 500 and the
// coordinator re-runs the cell locally — the error detail here is for
// logs; the authoritative typed error comes from the local re-run.
func (s *Server) handleCellExec(w http.ResponseWriter, r *http.Request) {
	var cr cluster.CellRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxRouteBody))
	if err := dec.Decode(&cr); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad cell request: " + err.Error()})
		return
	}
	if err := validateCell(&CellSpec{Mix: cr.Mix, Density: cr.Density, Bundle: cr.Bundle, Hot: cr.Hot}); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	switch cr.Mode {
	case "", harness.ModeExact, harness.ModeApprox:
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("unknown mode %q", cr.Mode)})
		return
	}
	t0 := time.Now()
	p := cr.Params()
	// The request context is both cancellation tiers: if the
	// coordinator gives up (or reclaims the cell after a timeout), the
	// engine aborts at its next checkpoint instead of simulating for a
	// client that stopped listening.
	p.Ctx = r.Context()
	p.HardCtx = r.Context()
	p.CellRunner = s.remoteCellRunner(cr.Priority)
	// Exact cells run under the checkpoint driver so a node that starts
	// draining mid-cell yields at its next boundary and ships the
	// partial progress back (see the snapshot response below) instead
	// of discarding it.
	var store *cellStore
	if cr.Mode != harness.ModeApprox {
		store = newCellStore(nil)
		p.Snapshots = store
		p.CheckpointEvery = s.cfg.CheckpointEvery
		p.Preempt = func() error {
			if s.draining.Load() || r.Context().Err() != nil {
				return errPreempted
			}
			return nil
		}
	}

	rep, err := harness.RunCell(p, cr.Mix, cr.Density, cr.Bundle, cr.Hot)

	ts := s.clusterSinceUS(t0)
	name := fmt.Sprintf("remote-cell %s/%s/%s", cr.Mix, cr.Density, cr.Bundle)
	ev := timeline.Event{Ph: timeline.PhaseSpan,
		Ts: ts, Dur: s.clusterSinceUS(time.Now()) - ts,
		Pid: tlPidService, Tid: tlTidJob, Name: name,
		Arg1Name: "priority", Arg1: int64(cr.Priority),
		StrName: "peer", Str: cr.Origin}
	if err != nil {
		ev.Arg2Name, ev.Arg2 = "failed", 1
	}
	s.clusterTL.Emit(ev)

	if err != nil {
		s.log.Warn("remote cell failed",
			"cell", fmt.Sprintf("%s/%s/%s", cr.Mix, cr.Density, cr.Bundle),
			"origin", cr.Origin, "err", err.Error())
		// A failure that left a checkpoint behind (this node draining,
		// or any abort past a boundary snapshot) ships the partial
		// progress to the coordinator, which resumes the cell locally
		// instead of recomputing it. An encode failure mid-body is
		// unrecoverable over HTTP; the coordinator's decode rejects the
		// torn snapshot (CRC) and falls back to the full re-run.
		if store != nil {
			if st := store.takeAny(); st != nil {
				w.Header().Set(cluster.CellSnapshotHeader, "1")
				w.Header().Set("Content-Type", "application/octet-stream")
				w.WriteHeader(http.StatusServiceUnavailable)
				if werr := core.EncodeSnapshot(w, st); werr != nil {
					s.log.Warn("shipping cell snapshot failed",
						"origin", cr.Origin, "err", werr.Error())
				}
				return
			}
		}
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	s.cluster.CellsExecuted.Add(1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rep)
}

// remoteCellRunner is the CellRunner for cells executed on behalf of a
// peer: simulation counting plus the local priority gate at the
// coordinating job's priority — remote cells wait their turn exactly
// like local ones.
func (s *Server) remoteCellRunner(priority int) harness.CellRunner {
	return func(ctx context.Context, _ string, rjobs []runner.Job[*core.Report], opts runner.Options[*core.Report]) (*runner.Batch[*core.Report], error) {
		s.simulations.Add(1)
		if s.gate != nil {
			opts.Gate = func(ctx context.Context) (func(), error) {
				return s.gate.acquire(ctx, priority)
			}
		}
		return runner.RunBatch(ctx, rjobs, opts)
	}
}

// remoteCellObserver puts each remote-cell dispatch on the job's
// timeline: a span per dispatch on the fan-out lane's track, tagged
// with the peer node id (reclaimed dispatches are marked so a degraded
// sweep is visible at a glance).
func (s *Server) remoteCellObserver(j *job) cluster.CellObserver {
	return func(ev cluster.CellEvent) {
		ts := j.tsUS(ev.Start)
		e := timeline.Event{Ph: timeline.PhaseSpan,
			Ts: ts, Dur: j.tsUS(ev.End) - ts,
			Pid: tlPidRemote, Tid: int32(ev.Lane),
			Name:    "remote " + ev.Cell.String(),
			StrName: "peer", Str: ev.Peer}
		if !ev.OK {
			e.Arg1Name, e.Arg1 = "reclaimed", 1
		}
		j.tl.Emit(e)
	}
}

// handleClusterTimeline is GET /v1/cluster/timeline: the node-level
// trace of forwards and received remote cells, as Chrome trace-event
// JSON.
func (s *Server) handleClusterTimeline(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.clusterTL.WriteTo(w)
}

// registerClusterMetrics adds the cluster block to the daemon's
// registry (and therefore /metricsz): aggregate forwarding, cache
// fallback, and fan-out counters, plus a per-peer liveness gauge.
func (s *Server) registerClusterMetrics() {
	c := s.cluster
	cl := s.reg.Root().Sub("cluster")
	cl.CounterFunc("jobs_forwarded", c.JobsForwarded.Load)
	cl.CounterFunc("jobs_received", c.JobsReceived.Load)
	cl.CounterFunc("forward_fallbacks", c.ForwardFallbacks.Load)
	cl.CounterFunc("remote_cache_hits", c.RemoteCacheHits.Load)
	cl.CounterFunc("remote_cache_misses", c.RemoteCacheMisses.Load)
	cl.CounterFunc("cache_lookups_served", c.CacheServed.Load)
	cl.CounterFunc("fanout_cells_dispatched", c.CellsDispatched.Load)
	cl.CounterFunc("fanout_cells_reclaimed", c.CellsReclaimed.Load)
	cl.CounterFunc("fanout_cells_resumed", c.CellsResumed.Load)
	cl.CounterFunc("remote_cells_executed", c.CellsExecuted.Load)
	for _, m := range c.Members() {
		if m.ID == c.Self().ID {
			continue
		}
		id := m.ID
		cl.Subf("peer[%s]", id).GaugeFunc("up", func() float64 {
			if c.Alive(id) {
				return 1
			}
			return 0
		})
	}
}
