package service

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestPanicRecoveryMiddleware: a panicking handler must not take the
// daemon down — the request gets a 500 carrying its request id, the
// panic is counted, and the server keeps serving.
func TestPanicRecoveryMiddleware(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.mux.HandleFunc("GET /v1/test-panic", func(_ http.ResponseWriter, _ *http.Request) {
		panic("injected handler panic")
	})
	s.mux.HandleFunc("GET /v1/test-panic-late", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("partial"))
		panic("injected handler panic after write")
	})

	resp, body := get(t, ts, "/v1/test-panic")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body %s", resp.StatusCode, body)
	}
	var out struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("non-JSON 500 body %q: %v", body, err)
	}
	if out.Error != "internal server error" || out.RequestID == "" {
		t.Fatalf("500 body = %+v, want generic error plus a request id", out)
	}
	if got := s.panics.Load(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}

	// A panic after the handler already wrote cannot be turned into a
	// clean 500; it must still be contained and counted.
	if resp, _ := get(t, ts, "/v1/test-panic-late"); resp.StatusCode != http.StatusOK {
		t.Fatalf("late-panic status = %d, want the already-written 200", resp.StatusCode)
	}
	if got := s.panics.Load(); got != 2 {
		t.Fatalf("panics counter = %d, want 2", got)
	}

	// The daemon survived both.
	if resp, _ := get(t, ts, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panics = %d, want 200", resp.StatusCode)
	}
	resp, body = get(t, ts, "/statsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statsz = %d", resp.StatusCode)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Resilience.HTTPPanics != 2 {
		t.Fatalf("statsz http_panics = %d, want 2", st.Resilience.HTTPPanics)
	}
}
