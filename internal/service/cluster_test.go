package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"refsched/internal/cluster"
	"refsched/internal/core"
	"refsched/internal/harness"
)

// swapHandler lets the httptest listeners exist (so peer addresses are
// known) before the services that answer on them are constructed.
type swapHandler struct{ h atomic.Pointer[http.Handler] }

func (sh *swapHandler) swap(h http.Handler) { sh.h.Store(&h) }

func (sh *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := sh.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
}

// clusterNodes is an in-process cluster: n refschedd services wired to
// each other over real listeners.
type clusterNodes struct {
	ids   []string
	svcs  map[string]*Server
	urls  map[string]string
	swaps map[string]*swapHandler
}

func newClusterNodes(t *testing.T, n, fanout int, mod func(id string, cfg *Config)) *clusterNodes {
	t.Helper()
	cn := &clusterNodes{svcs: map[string]*Server{}, urls: map[string]string{}, swaps: map[string]*swapHandler{}}
	members := make([]cluster.Member, n)
	tss := make([]*httptest.Server, n)
	for i := range members {
		id := fmt.Sprintf("n%d", i)
		sh := &swapHandler{}
		ts := httptest.NewServer(sh)
		tss[i] = ts
		members[i] = cluster.Member{ID: id, Addr: strings.TrimPrefix(ts.URL, "http://")}
		cn.ids = append(cn.ids, id)
		cn.urls[id] = ts.URL
		cn.swaps[id] = sh
	}
	for i, m := range members {
		clu, err := cluster.New(cluster.Config{
			NodeID:        m.ID,
			Peers:         members,
			FanoutPerPeer: fanout,
			ProbeInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Params: tinyParams(), DrainTimeout: 30 * time.Second, Cluster: clu}
		if mod != nil {
			mod(m.ID, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cn.swaps[m.ID].swap(s)
		cn.svcs[m.ID] = s
		_ = i
	}
	t.Cleanup(func() {
		for _, ts := range tss {
			ts.Close()
		}
		for _, s := range cn.svcs {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			s.Shutdown(ctx)
			cancel()
		}
	})
	return cn
}

func (cn *clusterNodes) get(t *testing.T, id, path string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, cn.urls[id]+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	return resp, body.Bytes()
}

func (cn *clusterNodes) clusterStats(t *testing.T, id string) cluster.Stats {
	t.Helper()
	st := cn.svcs[id].StatsSnapshot()
	if st.Cluster == nil {
		t.Fatalf("node %s has no cluster stats block", id)
	}
	return *st.Cluster
}

// TestSingleNodeByteIdentical: without a Cluster config nothing changes —
// no cluster statsz block, no node header, no internal endpoints.
func TestSingleNodeByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, nil)

	resp, body := get(t, ts, "/statsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statsz: %d", resp.StatusCode)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["cluster"]; ok {
		t.Fatal("single-node /statsz grew a cluster block")
	}
	if resp.Header.Get("X-Refsched-Node") != "" {
		t.Fatal("single-node response names a cluster node")
	}

	resp, body = get(t, ts, "/healthz")
	if bytes.Contains(body, []byte("node_id")) {
		t.Fatalf("single-node /healthz carries node_id: %s", body)
	}
	_ = resp

	if resp, _ := http.Post(ts.URL+"/v1/cells", "application/json", strings.NewReader("{}")); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /v1/cells on single node = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/cache/somekey"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/cache on single node = %d, want 404", resp.StatusCode)
	}
}

// TestClusterFigureRouting: a figure GET routes to its consistent-hash
// owner from any entry node, the owner's id is visible in the response,
// and a repeat through a different entry node is a cache hit — the
// cluster concentrates one figure's cache on one node.
func TestClusterFigureRouting(t *testing.T) {
	want := expectedFig10(t)
	cn := newClusterNodes(t, 3, 0, nil)

	entry := cn.ids[0]
	resp, body := cn.get(t, entry, "/v1/figures/fig10", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("figure GET: %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("routed figure body differs from the serial reference render")
	}
	owner := resp.Header.Get("X-Refsched-Node")
	if owner == "" {
		t.Fatal("response does not name its node")
	}
	if resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first render X-Cache = %q", resp.Header.Get("X-Cache"))
	}

	// Every entry node agrees on the owner and gets the cached bytes.
	for _, id := range cn.ids {
		resp, body := cn.get(t, id, "/v1/figures/fig10", nil)
		if got := resp.Header.Get("X-Refsched-Node"); got != owner {
			t.Fatalf("entry %s routed fig10 to %s, first went to %s", id, got, owner)
		}
		if resp.Header.Get("X-Cache") != "hit" {
			t.Fatalf("entry %s repeat GET X-Cache = %q", id, resp.Header.Get("X-Cache"))
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("entry %s served different bytes", id)
		}
	}

	if entry != owner {
		if fw := cn.clusterStats(t, entry).JobsForwarded; fw == 0 {
			t.Fatal("entry node forwarded nothing")
		}
	}
	if rcv := cn.clusterStats(t, owner).JobsReceived; rcv == 0 {
		t.Fatal("owner received no forwarded requests")
	}
}

// TestClusterForwardedRejectionVerbatim: a structured 429 produced by
// the owner passes back through the entry node exactly — tenant, reason,
// retry estimate, and Retry-After header — not re-wrapped as a generic
// proxy error.
func TestClusterForwardedRejectionVerbatim(t *testing.T) {
	cn := newClusterNodes(t, 2, 0, func(id string, cfg *Config) {
		cfg.Tenant = TenantConfig{Rate: 0.0001, Burst: 1}
	})

	// Find a cell job owned by n1 so a POST to n0 crosses the hop.
	entry, remote := cn.svcs["n0"], ""
	var body []byte
	for seed := uint64(1); seed <= 200 && remote == ""; seed++ {
		raw, _ := json.Marshal(map[string]any{
			"cell":   map[string]any{"mix": "WL-6", "density": "8Gb", "bundle": "allbank"},
			"params": map[string]any{"seed": seed},
		})
		key, ok := entry.jobPlacementKey(raw)
		if !ok {
			t.Fatal("placement key did not compute")
		}
		if entry.cluster.Owner(key) == "n1" {
			remote, body = "n1", raw
		}
	}
	if remote == "" {
		t.Fatal("no n1-owned cell in 200 seeds")
	}

	post := func(tenant string) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, cn.urls["n0"]+"/v1/jobs", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	first := post("t-429")
	defer first.Body.Close()
	if first.StatusCode != http.StatusAccepted && first.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d", first.StatusCode)
	}
	if first.Header.Get("X-Refsched-Node") != "n1" {
		t.Fatalf("first POST handled by %q, want n1", first.Header.Get("X-Refsched-Node"))
	}

	// Token bucket exhausted (burst 1, refill ~never): the owner rejects.
	second := post("t-429")
	defer second.Body.Close()
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second POST: %d, want 429", second.StatusCode)
	}
	if second.Header.Get("X-Refsched-Node") != "n1" {
		t.Fatalf("429 produced by %q, want n1", second.Header.Get("X-Refsched-Node"))
	}
	if second.Header.Get("Retry-After") == "" {
		t.Fatal("forwarded 429 lost its Retry-After header")
	}
	var rej struct {
		Tenant     string  `json:"tenant"`
		Reason     string  `json:"reason"`
		RetryAfter float64 `json:"retry_after_s"`
	}
	if err := json.NewDecoder(second.Body).Decode(&rej); err != nil {
		t.Fatalf("forwarded 429 body not structured: %v", err)
	}
	if rej.Tenant != "t-429" || rej.Reason == "" || rej.RetryAfter <= 0 {
		t.Fatalf("forwarded 429 body re-wrapped or lossy: %+v", rej)
	}
}

// TestClusterJobProxyAndEvents: a job created through a forwarding entry
// node stays addressable there — status and the NDJSON event stream
// proxy to the owning node.
func TestClusterJobProxyAndEvents(t *testing.T) {
	cn := newClusterNodes(t, 2, 0, nil)

	entry := cn.svcs["n0"]
	var body []byte
	found := false
	for seed := uint64(1); seed <= 200 && !found; seed++ {
		raw, _ := json.Marshal(map[string]any{
			"cell":   map[string]any{"mix": "WL-6", "density": "8Gb", "bundle": "perbank"},
			"params": map[string]any{"seed": seed},
		})
		key, _ := entry.jobPlacementKey(raw)
		if entry.cluster.Owner(key) == "n1" {
			body, found = raw, true
		}
	}
	if !found {
		t.Fatal("no n1-owned cell in 200 seeds")
	}

	resp, err := http.Post(cn.urls["n0"]+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ack struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&ack)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || ack.ID == "" {
		t.Fatalf("POST: %d id=%q", resp.StatusCode, ack.ID)
	}

	// The id is unknown locally on n0; status reads must proxy to n1.
	if entry.getJob(ack.ID) != nil {
		t.Fatal("forwarded job unexpectedly exists on the entry node")
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, b := cn.get(t, "n0", "/v1/jobs/"+ack.ID, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("proxied status: %d: %s", resp.StatusCode, b)
		}
		if resp.Header.Get("X-Refsched-Node") != "n1" {
			t.Fatalf("status served by %q, want n1", resp.Header.Get("X-Refsched-Node"))
		}
		var st JobStatus
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == JobDone {
			break
		}
		if st.State == JobFailed || time.Now().After(deadline) {
			t.Fatalf("job state %s: %s", st.State, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The event stream proxies too: replay of a finished job ends with a
	// terminal state line.
	resp, b := cn.get(t, "n0", "/v1/jobs/"+ack.ID+"/events", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied events: %d", resp.StatusCode)
	}
	lines := bytes.Split(bytes.TrimSpace(b), []byte("\n"))
	if len(lines) == 0 {
		t.Fatal("empty event stream")
	}
	sawDone := false
	for _, ln := range lines {
		var ev map[string]any
		if err := json.Unmarshal(ln, &ev); err != nil {
			t.Fatalf("event line not JSON: %q", ln)
		}
		if ev["state"] == string(JobDone) {
			sawDone = true
		}
	}
	if !sawDone {
		t.Fatalf("proxied stream never reported done: %s", b)
	}
}

// TestClusterRemoteCacheFallback: a node that must handle a figure it
// does not own (forwarded marker set, as after a degraded hop) asks the
// owner's cache before simulating, and serves the owner's bytes as a
// cache hit.
func TestClusterRemoteCacheFallback(t *testing.T) {
	want := expectedFig10(t)
	cn := newClusterNodes(t, 2, 0, nil)

	// Warm the owner through normal routing.
	resp, _ := cn.get(t, "n0", "/v1/figures/fig10", nil)
	owner := resp.Header.Get("X-Refsched-Node")
	other := "n0"
	if owner == "n0" {
		other = "n1"
	}

	// Force the non-owner to handle it locally: a marked request is never
	// re-routed (one hop max).
	resp, body := cn.get(t, other, "/v1/figures/fig10", map[string]string{"X-Refsched-Forwarded": "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("marked GET: %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Refsched-Node"); got != other {
		t.Fatalf("marked request escaped to %q, want local %q", got, other)
	}
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("cross-shard fallback X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body, want) {
		t.Fatal("cross-shard body differs from the reference render")
	}

	if hits := cn.clusterStats(t, other).RemoteCacheHits; hits != 1 {
		t.Fatalf("remote_cache_hits = %d, want 1", hits)
	}
	if served := cn.clusterStats(t, owner).CacheServed; served != 1 {
		t.Fatalf("owner cache_lookups_served = %d, want 1", served)
	}
	// The simulation never ran the second time around.
	if sims := cn.svcs[other].StatsSnapshot().Simulations; sims != 0 {
		t.Fatalf("non-owner simulated %d times despite the fallback", sims)
	}
}

// TestClusterFanoutByteIdentical: a sweep executed with cell fan-out
// returns exactly the single-node bytes, with cells demonstrably
// executed on the peer.
func TestClusterFanoutByteIdentical(t *testing.T) {
	want := expectedFig10(t)
	cn := newClusterNodes(t, 2, 2, nil)

	// Marked request: n0 must run the sweep itself, fanning cells to n1.
	resp, body := cn.get(t, "n0", "/v1/figures/fig10", map[string]string{"X-Refsched-Forwarded": "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fanned GET: %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("fanned-out figure differs from the serial reference render")
	}

	st0 := cn.clusterStats(t, "n0")
	if st0.CellsDispatched == 0 {
		t.Fatal("no cells were dispatched to the peer")
	}
	if st0.CellsDispatched > st0.CellsReclaimed {
		// At least one dispatch actually succeeded remotely.
		if exec := cn.clusterStats(t, "n1").CellsExecuted; exec == 0 {
			t.Fatal("peer executed no cells despite successful dispatches")
		}
	}
}

// TestClusterFanoutPeerDownByteIdentical: when the peer answers but
// refuses (and is then marked down), every dispatched cell is reclaimed
// locally and the sweep still renders byte-identically.
func TestClusterFanoutPeerDownByteIdentical(t *testing.T) {
	want := expectedFig10(t)
	cn := newClusterNodes(t, 2, 2, nil)

	// Break n1: everything (cells, probes) now answers 503.
	cn.swaps["n1"].swap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))

	resp, body := cn.get(t, "n0", "/v1/figures/fig10", map[string]string{"X-Refsched-Forwarded": "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded GET: %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("degraded sweep differs from the serial reference render")
	}

	st0 := cn.clusterStats(t, "n0")
	if st0.CellsDispatched != st0.CellsReclaimed {
		t.Fatalf("dispatched %d != reclaimed %d with a dead peer",
			st0.CellsDispatched, st0.CellsReclaimed)
	}
}

// TestClusterFanoutSnapshotResume: a peer that cannot finish a
// dispatched cell but checkpointed it ships the snapshot back, and the
// coordinator resumes the cell from mid-run instead of recomputing —
// with the figure still byte-identical to the serial reference. The
// peer is simulated by an interceptor that runs each cell to its
// second checkpoint boundary (exactly the drain path's behaviour, made
// deterministic) and answers 503 + snapshot.
func TestClusterFanoutSnapshotResume(t *testing.T) {
	want := expectedFig10(t)
	cn := newClusterNodes(t, 2, 2, nil)

	s1 := cn.svcs["n1"]
	cn.swaps["n1"].swap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !(r.Method == http.MethodPost && r.URL.Path == "/v1/cells") {
			s1.ServeHTTP(w, r) // probes etc: the node looks healthy
			return
		}
		var cr cluster.CellRequest
		if err := json.NewDecoder(r.Body).Decode(&cr); err != nil {
			t.Error(err)
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		p := cr.Params()
		store := newCellStore(nil)
		p.Snapshots = store
		boundaries := 0
		p.Preempt = func() error {
			if boundaries++; boundaries >= 2 {
				return errPreempted
			}
			return nil
		}
		if _, err := harness.RunCell(p, cr.Mix, cr.Density, cr.Bundle, cr.Hot); err == nil {
			t.Error("interceptor cell ran to completion instead of preempting")
		}
		st := store.takeAny()
		if st == nil {
			t.Error("preempted cell left no snapshot")
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Header().Set(cluster.CellSnapshotHeader, "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		if err := core.EncodeSnapshot(w, st); err != nil {
			t.Error(err)
		}
	}))

	resp, body := cn.get(t, "n0", "/v1/figures/fig10", map[string]string{"X-Refsched-Forwarded": "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resumed GET: %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("figure with snapshot-resumed cells differs from the serial reference render")
	}

	st0 := cn.clusterStats(t, "n0")
	if st0.CellsDispatched == 0 {
		t.Fatal("no cells were dispatched to the peer")
	}
	if st0.CellsResumed != st0.CellsDispatched {
		t.Fatalf("dispatched %d cells but resumed %d — some recomputed from scratch",
			st0.CellsDispatched, st0.CellsResumed)
	}
}
