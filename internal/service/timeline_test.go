package service

import (
	"net/http"
	"strings"
	"testing"

	"refsched/internal/timeline"
)

// TestJobTimelineEndpoint runs a small cell job and checks the
// downloadable timeline: valid Chrome trace-event JSON, per-track
// monotone, with the queue-wait span, the request span, per-cell
// simulation spans, and every span correlated to the creating
// request's ID.
func TestJobTimelineEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)

	resp, out := postJob(t, ts, Request{
		Cell: &CellSpec{Mix: "WL-6", Density: "32Gb", Bundle: "codesign"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("enqueue status = %d (%v)", resp.StatusCode, out)
	}
	id := out["id"].(string)
	waitJobState(t, ts, id, JobDone)

	tresp, tbody := get(t, ts, "/v1/jobs/"+id+"/timeline")
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("timeline status = %d: %s", tresp.StatusCode, tbody)
	}
	if ct := tresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("timeline content-type = %q", ct)
	}
	events, err := timeline.Decode(strings.NewReader(string(tbody)))
	if err != nil {
		t.Fatalf("timeline does not decode: %v", err)
	}
	if err := timeline.CheckMonotone(events); err != nil {
		t.Fatal(err)
	}

	var queued, request, run, cells, admitted int
	reqIDs := map[string]bool{}
	for _, e := range events {
		if rid, ok := e.Args["req"].(string); ok {
			reqIDs[rid] = true
		}
		switch {
		case e.Name == "queued":
			queued++
		case e.Ph == "X" && strings.HasPrefix(e.Name, "POST /v1/jobs"):
			request++
		case e.Ph == "X" && strings.HasPrefix(e.Name, "run "):
			run++
		case e.Ph == "X" && e.Pid == tlPidCells:
			cells++
		case e.Name == "admitted":
			admitted++
		}
	}
	if queued != 1 {
		t.Errorf("queued spans = %d, want 1", queued)
	}
	if request != 1 {
		t.Errorf("request spans = %d, want 1", request)
	}
	if run != 1 {
		t.Errorf("run spans = %d, want 1", run)
	}
	if cells != 1 {
		t.Errorf("cell spans = %d, want 1", cells)
	}
	if admitted != 1 {
		t.Errorf("gate-admission instants = %d, want 1", admitted)
	}
	// Every tagged event must carry the same (single) request ID, and
	// it must look like the middleware's req-NNNNNN scheme.
	if len(reqIDs) != 1 {
		t.Fatalf("request IDs on timeline = %v, want exactly one", reqIDs)
	}
	for rid := range reqIDs {
		if !strings.HasPrefix(rid, "req-") {
			t.Fatalf("request ID %q does not match req-*", rid)
		}
	}

	// Unknown job → 404.
	r404, _ := get(t, ts, "/v1/jobs/job-999999/timeline")
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job timeline status = %d", r404.StatusCode)
	}
}

// TestJobTimelineCacheHit: a repeat of an already-cached cell records a
// cache-hit instant instead of simulation spans.
func TestJobTimelineCacheHit(t *testing.T) {
	_, ts := newTestServer(t, nil)

	cell := &CellSpec{Mix: "WL-6", Density: "16Gb", Bundle: "allbank"}
	_, out := postJob(t, ts, Request{Cell: cell})
	waitJobState(t, ts, out["id"].(string), JobDone)

	_, out2 := postJob(t, ts, Request{Cell: cell})
	id2 := out2["id"].(string)
	waitJobState(t, ts, id2, JobDone)

	_, tbody := get(t, ts, "/v1/jobs/"+id2+"/timeline")
	events, err := timeline.Decode(strings.NewReader(string(tbody)))
	if err != nil {
		t.Fatal(err)
	}
	var hits, cells int
	for _, e := range events {
		if e.Name == "cache-hit" {
			hits++
		}
		if e.Ph == "X" && e.Pid == tlPidCells {
			cells++
		}
	}
	if hits == 0 {
		t.Error("no cache-hit instant on repeat job's timeline")
	}
	if cells != 0 {
		t.Errorf("cache-hit job ran %d cells", cells)
	}
}
