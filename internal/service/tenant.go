package service

import (
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// tenantHeader names the request header that identifies a tenant;
// requests without it share the "default" tenant.
const tenantHeader = "X-Tenant"

// tenantOf extracts the requester's tenant identity.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get(tenantHeader); t != "" {
		return t
	}
	return "default"
}

// TenantConfig sizes per-tenant admission. The zero value disables
// both limits, so single-user deployments behave exactly as before the
// knobs existed.
type TenantConfig struct {
	// Rate is each tenant's sustained admission rate in requests per
	// second (token-bucket refill). <= 0 disables rate limiting.
	Rate float64
	// Burst is the token bucket's capacity — how far above Rate a
	// tenant may briefly spike. Defaults to max(1, ceil(Rate)) when
	// rate limiting is enabled.
	Burst int
	// MaxInFlight caps how many of a tenant's jobs may be queued or
	// running at once. <= 0 disables the cap.
	MaxInFlight int
}

func (c TenantConfig) withDefaults() TenantConfig {
	if c.Rate > 0 && c.Burst <= 0 {
		c.Burst = int(math.Ceil(c.Rate))
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	return c
}

// admissionError is a structured admission rejection: which tenant hit
// which limit, and when retrying might succeed. The HTTP layer renders
// it as a 429 with a machine-readable body.
type admissionError struct {
	tenant     string
	reason     string // "rate" | "in_flight" | "brownout" | "queue_full"
	retryAfter int    // seconds; 0 means no estimate
}

func (e *admissionError) Error() string {
	return fmt.Sprintf("service: tenant %q rejected: %s limit", e.tenant, e.reason)
}

// tenantState is one tenant's live admission state.
type tenantState struct {
	tokens   float64 // current token-bucket fill
	last     time.Time
	inFlight int // queued + running jobs held by this tenant
}

// tenantAdmission is the per-tenant token-bucket + in-flight admission
// layer. It sits in front of the global queue-depth bound: a request
// must clear its tenant's rate bucket (per request) and in-flight cap
// (per fresh job) before it may contend for queue space, so one noisy
// tenant saturates its own budget instead of the daemon.
type tenantAdmission struct {
	cfg TenantConfig
	now func() time.Time // injectable clock for deterministic tests

	mu      sync.Mutex
	tenants map[string]*tenantState

	shedRate     atomic.Uint64
	shedInFlight atomic.Uint64
}

func newTenantAdmission(cfg TenantConfig) *tenantAdmission {
	return &tenantAdmission{
		cfg:     cfg.withDefaults(),
		now:     time.Now,
		tenants: map[string]*tenantState{},
	}
}

// state returns tenant's bucket, creating a full one on first sight.
func (a *tenantAdmission) state(tenant string) *tenantState {
	st, ok := a.tenants[tenant]
	if !ok {
		st = &tenantState{tokens: float64(a.cfg.Burst), last: a.now()}
		a.tenants[tenant] = st
	}
	return st
}

// admitRate charges one token from tenant's bucket, refilling first at
// cfg.Rate tokens/sec (capped at Burst). It is called once per
// enqueue-ing HTTP request, before any cache or dedup shortcut — rate
// limiting bounds request pressure, not just simulation work.
func (a *tenantAdmission) admitRate(tenant string) error {
	if a.cfg.Rate <= 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.state(tenant)
	now := a.now()
	st.tokens = math.Min(float64(a.cfg.Burst), st.tokens+now.Sub(st.last).Seconds()*a.cfg.Rate)
	st.last = now
	if st.tokens < 1 {
		a.shedRate.Add(1)
		return &admissionError{
			tenant:     tenant,
			reason:     "rate",
			retryAfter: int(math.Ceil((1 - st.tokens) / a.cfg.Rate)),
		}
	}
	st.tokens--
	return nil
}

// admitInFlight claims one slot of tenant's in-flight budget; the slot
// is owned by the fresh job being created and returned via release
// when it finishes.
func (a *tenantAdmission) admitInFlight(tenant string) error {
	if a.cfg.MaxInFlight <= 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.state(tenant)
	if st.inFlight >= a.cfg.MaxInFlight {
		a.shedInFlight.Add(1)
		return &admissionError{tenant: tenant, reason: "in_flight", retryAfter: 1}
	}
	st.inFlight++
	return nil
}

// hold claims an in-flight slot unconditionally — WAL recovery uses it
// for jobs that were already admitted by the previous process.
func (a *tenantAdmission) hold(tenant string) {
	a.mu.Lock()
	a.state(tenant).inFlight++
	a.mu.Unlock()
}

// release returns a previously claimed in-flight slot.
func (a *tenantAdmission) release(tenant string) {
	a.mu.Lock()
	if st, ok := a.tenants[tenant]; ok && st.inFlight > 0 {
		st.inFlight--
	}
	a.mu.Unlock()
}

// count reports how many distinct tenants have been seen.
func (a *tenantAdmission) count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.tenants)
}
