package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestFigureFidelityApprox exercises the two-tier first-response path:
// the approx answer arrives immediately with its fidelity declared, the
// exact sweep runs behind it, and a later default request serves the
// exact result from cache.
func TestFigureFidelityApprox(t *testing.T) {
	_, ts := newTestServer(t, nil)

	resp, body := get(t, ts, "/v1/figures/fig10?fidelity=approx")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Fidelity"); got != "approx" {
		t.Fatalf("X-Fidelity = %q, want approx", got)
	}
	if !strings.Contains(string(body), "fig10") {
		t.Fatalf("approx body does not render fig10:\n%s", body)
	}
	exactID := resp.Header.Get("X-Refsched-Exact-Job")
	if exactID == "" {
		t.Fatal("no background exact job was enqueued")
	}

	// The background exact job completes and warms the cache for the
	// default (exact) path.
	deadline := time.Now().Add(30 * time.Second)
	for {
		jr, jbody := get(t, ts, "/v1/jobs/"+exactID)
		if jr.StatusCode != http.StatusOK {
			t.Fatalf("job status %d: %s", jr.StatusCode, jbody)
		}
		var st struct {
			State JobState `json:"state"`
		}
		if err := json.Unmarshal(jbody, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == JobDone {
			break
		}
		if st.State == JobFailed || st.State == JobQuarantined {
			t.Fatalf("background exact job ended %s", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("background exact job still %s", st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	resp, body = get(t, ts, "/v1/figures/fig10")
	if got := resp.Header.Get("X-Fidelity"); got != "exact" {
		t.Fatalf("X-Fidelity = %q, want exact", got)
	}
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("X-Cache = %q, want hit (background job should have warmed the cache)", got)
	}
	if want := expectedFig10(t); string(body) != string(want) {
		t.Fatalf("exact-after-approx body diverged from reference:\n got: %s\nwant: %s", body, want)
	}
}

// TestFigureFidelityApproxCachedSeparately pins that the two tiers
// never share a cache entry: back-to-back approx requests hit the
// approx cache, not the exact one.
func TestFigureFidelityApproxCachedSeparately(t *testing.T) {
	_, ts := newTestServer(t, nil)
	_, first := get(t, ts, "/v1/figures/fig10?fidelity=approx")
	resp, second := get(t, ts, "/v1/figures/fig10?fidelity=approx")
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second approx request X-Cache = %q, want hit", got)
	}
	if string(first) != string(second) {
		t.Fatal("approx responses are not stable")
	}
}

func TestFigureFidelityBadValue(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, _ := get(t, ts, "/v1/figures/fig10?fidelity=fast")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestJobModeOverrideValidated: a bad mode in POST /v1/jobs params is a
// client error, not a failed job.
func TestJobModeOverrideValidated(t *testing.T) {
	_, ts := newTestServer(t, nil)
	mode := "aprox"
	resp, _ := postJob(t, ts, Request{Figure: "fig10", Params: &ParamOverrides{Mode: &mode}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestJobThroughputSample unit-tests the per-running-job engine
// throughput arithmetic without racing a live sweep.
func TestJobThroughputSample(t *testing.T) {
	j := &job{id: "job-000001", figure: "fig10"}
	if _, ok := j.throughput(); ok {
		t.Fatal("queued job reported throughput")
	}
	j.state = JobRunning
	j.started = time.Now().Add(-2 * time.Second)
	j.cellsDone, j.cellsTotal = 3, 9
	j.engineEvents.Add(10_000_000)
	sample, ok := j.throughput()
	if !ok {
		t.Fatal("running job reported no throughput")
	}
	if sample.Events != 10_000_000 || sample.CellsDone != 3 || sample.CellsTotal != 9 {
		t.Fatalf("sample = %+v", sample)
	}
	// ~5M events/sec after 2s; allow generous slack for test scheduling.
	if sample.EventsPerSec < 1_000_000 || sample.EventsPerSec > 6_000_000 {
		t.Fatalf("events/sec = %v, want ~5M", sample.EventsPerSec)
	}
}

// TestThroughputGaugeExposed: after serving a figure, both /metricsz
// (per-figure gauge family) and /statsz (running_jobs sample list)
// carry the engine-throughput instrumentation; with the daemon idle the
// gauge reads 0 and the sample list is empty.
func TestThroughputGaugeExposed(t *testing.T) {
	s, ts := newTestServer(t, nil)
	if resp, _ := get(t, ts, "/v1/figures/fig10"); resp.StatusCode != http.StatusOK {
		t.Fatalf("figure status %d", resp.StatusCode)
	}
	_, body := get(t, ts, "/metricsz")
	want := fmt.Sprintf(`refschedd_figure_engine_events_per_sec{figure=%q} 0`, "fig10")
	if !strings.Contains(string(body), want) {
		t.Fatalf("/metricsz missing idle throughput gauge %q:\n%s", want, body)
	}
	if st := s.StatsSnapshot(); len(st.RunningJobs) != 0 {
		t.Fatalf("idle daemon reports running jobs: %+v", st.RunningJobs)
	}
}
