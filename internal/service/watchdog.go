package service

import (
	"fmt"
	"time"
)

// WatchdogConfig tunes the stalled-job watchdog. The zero value selects
// the documented defaults; set Disabled to opt out.
type WatchdogConfig struct {
	// Interval is how often running jobs are scanned (default 1s). It
	// is also the resilience loop's tick, which drives brownout
	// recovery when no enqueues arrive.
	Interval time.Duration
	// Stall is how long a running job's progress signature (its
	// engine-throughput gauge: events executed by completed cells) may
	// stay frozen before the job is killed and its in-flight cells
	// quarantined (default 30s). It must comfortably exceed the
	// longest healthy cell at the daemon's parameter scale, since the
	// gauge only advances on cell completion.
	Stall time.Duration
	// Disabled turns the watchdog off (the resilience loop still runs
	// for brownout recovery).
	Disabled bool
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Stall <= 0 {
		c.Stall = 30 * time.Second
	}
	return c
}

// watchdogObservation is one running job's last-seen progress.
type watchdogObservation struct {
	sig  uint64
	seen time.Time
}

// resilienceLoop is the daemon's single background control goroutine:
// each tick it re-evaluates brownout against the live queue depth (so
// the mode disengages even when the overload ends and no requests
// arrive to trigger an enqueue-time evaluation) and scans running jobs
// for stalled progress. It exits when loopStop closes.
func (s *Server) resilienceLoop() {
	defer close(s.loopDone)
	t := time.NewTicker(s.cfg.Watchdog.Interval)
	defer t.Stop()
	seen := map[*job]watchdogObservation{}
	for {
		select {
		case <-s.loopStop:
			return
		case now := <-t.C:
			s.brown.evaluate(s.queue.len(), s.cfg.QueueDepth)
			if !s.cfg.Watchdog.Disabled {
				s.watchdogScan(seen, now)
			}
		}
	}
}

// watchdogScan compares each running job's progress signature against
// its last observation and kills any job that has gone the stall bound
// without advancing. seen persists between scans and is pruned of jobs
// that stopped running.
func (s *Server) watchdogScan(seen map[*job]watchdogObservation, now time.Time) {
	s.watchdogScans.Add(1)

	s.jobsMu.Lock()
	running := make([]*job, 0, len(s.active))
	for _, j := range s.active {
		running = append(running, j)
	}
	s.jobsMu.Unlock()

	live := map[*job]bool{}
	for _, j := range running {
		sig, ok := j.progress()
		if !ok {
			continue // queued or already terminal
		}
		live[j] = true
		obs, known := seen[j]
		if !known || obs.sig != sig {
			seen[j] = watchdogObservation{sig: sig, seen: now}
			continue
		}
		if stalled := now.Sub(obs.seen); stalled >= s.cfg.Watchdog.Stall {
			err := fmt.Errorf("service: watchdog killed job %s: no engine progress for %s (stall bound %s)",
				j.id, stalled.Round(time.Millisecond), s.cfg.Watchdog.Stall)
			if j.kill(err) {
				s.watchdogKills.Add(1)
				j.tl.Instant(tlPidService, tlTidJob, "watchdog-kill", j.sinceUS())
				s.log.Error("watchdog kill", "job", j.id, "figure", j.figure,
					"stalled", stalled.Round(time.Millisecond).String())
			}
			delete(seen, j)
		}
	}
	for j := range seen {
		if !live[j] {
			delete(seen, j)
		}
	}
}
