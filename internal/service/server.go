// Package service is the serving layer over the simulation pipeline:
// a long-running daemon (cmd/refschedd) that answers the same
// parameterized, cacheable computations the batch CLIs produce — whole
// figure sweeps and single simulation cells — in milliseconds when the
// result has been computed before and through a bounded, prioritized
// job queue when it hasn't.
//
// The serving path composes the primitives the pipeline already has:
// figure drivers run through harness.RunFigure with an injected
// CellRunner, so every sweep passes the same fault boundary
// (quarantine, retry, typed *runner.CellError) as the CLI and is
// additionally subject to the daemon's global cell gate
// (highest-priority job first) and per-cell progress streaming.
// Rendered results land in a sharded byte-budget LRU cache keyed by
// the harness parameter fingerprint; identical in-flight requests
// coalesce onto one job (single-flight), so N concurrent requests for
// an uncached figure cost exactly one simulation. Admission control
// caps queue depth (HTTP 429 + Retry-After), and graceful shutdown
// drains in-flight jobs under a deadline, then persists the cache
// through internal/journal so a restarted daemon starts warm.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"refsched/internal/buildinfo"
	"refsched/internal/cluster"
	"refsched/internal/core"
	"refsched/internal/harness"
	"refsched/internal/journal"
	"refsched/internal/metrics"
	"refsched/internal/runner"
	"refsched/internal/stats"
	"refsched/internal/timeline"
	"refsched/internal/workload"
)

// cacheJournalFingerprint binds the persisted cache snapshot format.
// Request keys embed their own parameter fingerprints, so this only
// versions the snapshot encoding itself.
const cacheJournalFingerprint = "refschedd-cache-v1"

// finishedRetain bounds how many finished jobs stay addressable via
// GET /v1/jobs/{id}; beyond it the oldest are forgotten (their results
// live on in the cache).
const finishedRetain = 4096

// Config sizes the daemon. Zero values select the documented defaults.
type Config struct {
	// Params is the base simulation parameter set; requests may
	// override the result-affecting knobs per call.
	Params harness.Params
	// QueueDepth bounds queued (not yet running) jobs; admission
	// beyond it fails with 429 (default 64).
	QueueDepth int
	// Workers is how many jobs execute concurrently (default 2).
	Workers int
	// CellSlots is the global budget of concurrently simulating cells
	// shared by all running jobs, admitted highest-priority-first
	// (default GOMAXPROCS via runner.Parallelism; <0 disables the
	// gate).
	CellSlots int
	// CacheBytes / CacheShards size the result cache (defaults 64 MiB,
	// 8 shards).
	CacheBytes  int64
	CacheShards int
	// JournalPath, when non-empty, is where shutdown persists the
	// result cache and startup warms it from.
	JournalPath string
	// WALPath, when non-empty, enables the job WAL: every accepted job
	// is fsynced to this ledger before it is acknowledged, and a
	// restarted daemon replays unfinished entries back onto its queue —
	// the zero-acknowledged-job-loss guarantee the soak drill asserts.
	WALPath string
	// Tenant is the per-tenant admission policy (zero value: no
	// per-tenant limits).
	Tenant TenantConfig
	// Brownout tunes graceful degradation under queue pressure.
	Brownout BrownoutConfig
	// Watchdog tunes the stalled-job watchdog and the resilience
	// loop's tick.
	Watchdog WatchdogConfig
	// CheckpointEvery is the engine-cycle cadence of checkpoint
	// boundaries inside exact-mode cells (default: four timeslices; see
	// harness.Params.CheckpointEvery). Boundaries are where a
	// preemption request lands: a higher-priority arrival with no free
	// worker displaces the lowest-priority running exact job at its
	// next boundary, snapshotting every in-flight cell so the requeued
	// job resumes mid-cell instead of recomputing.
	CheckpointEvery uint64
	// DrainTimeout bounds how long Shutdown waits for in-flight jobs
	// before cancelling them gracefully (default 30s).
	DrainTimeout time.Duration
	// Logger receives the structured access log (one request-ID-tagged
	// line per HTTP request) and job lifecycle events. Nil discards.
	Logger *slog.Logger
	// Cluster, when non-nil, makes this daemon one node of a statically
	// configured cluster: requests route to their ring owner, cache
	// misses fall back across shards, and sweeps fan their cells out to
	// peers (see internal/cluster). Nil — the default — keeps
	// single-node behavior byte-identical: no extra endpoints, headers,
	// metrics, or stats fields.
	Cluster *cluster.Cluster
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.CellSlots == 0 {
		c.CellSlots = runner.Parallelism(0)
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 8
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	c.Tenant = c.Tenant.withDefaults()
	c.Brownout = c.Brownout.withDefaults()
	c.Watchdog = c.Watchdog.withDefaults()
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Server is the daemon: an http.Handler plus the queue, workers,
// cache, and single-flight index behind it.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	queue   *jobQueue
	cache   *Cache
	gate    *priorityGate
	tenants *tenantAdmission
	brown   *brownout
	wal     *jobWAL // nil unless Config.WALPath is set
	start   time.Time

	// loopStop/loopDone bracket the resilience loop goroutine
	// (watchdog scans + brownout recovery ticks).
	loopStop chan struct{}
	loopDone chan struct{}
	stopOnce sync.Once

	// runCtx cancels in-flight sweeps (graceful: in-flight cells
	// finish) when the drain deadline expires.
	runCtx    context.Context
	cancelRun context.CancelFunc
	wg        sync.WaitGroup
	draining  atomic.Bool

	jobsMu   sync.Mutex
	jobs     map[string]*job
	active   map[string]*job // requestKey -> queued/running job (single-flight)
	finished []string        // finished job ids, oldest first (retention ring)
	jobSeq   atomic.Uint64

	log    *slog.Logger
	reqSeq atomic.Uint64 // access-log request ids

	// cluster is the node's membership/ring/fan-out state (nil when
	// clustering is off; every use is nil-safe). clusterTL records
	// node-level forward and received-cell spans; remoteJobs maps job
	// ids created via forwarded POSTs to their owning peer (guarded by
	// jobsMu, bounded like the finished ring).
	cluster        *cluster.Cluster
	clusterTL      *timeline.Recorder
	remoteJobs     map[string]string
	remoteJobOrder []string

	// Counters behind /statsz and /metricsz. The atomics are the write
	// targets; reg reads them (plus the queue, cache, and per-figure
	// state) at snapshot time, so both endpoints are projections of one
	// registry snapshot.
	enqueued, dedupHits, cacheHits atomic.Uint64
	completed, failed, quarantined atomic.Uint64
	expired                        atomic.Uint64 // jobs shed or cancelled by deadline
	panics                         atomic.Uint64 // HTTP handler panics recovered
	watchdogKills, watchdogScans   atomic.Uint64
	preemptions                    atomic.Uint64 // running jobs displaced by priority
	preemptResumes                 atomic.Uint64 // cells resumed from a preemption snapshot
	shedBrownout                   atomic.Uint64 // jobs rejected while browned out
	eventDrops                     atomic.Uint64 // slow-subscriber event drops
	simulations                    atomic.Uint64 // runner.RunBatch executions
	running                        atomic.Int64
	reg                            *metrics.Registry
	figMu                          sync.Mutex
	figs                           map[string]*figureMetrics
}

// figureMetrics is one served figure's accumulated observability state:
// job latency plus the simulator-side counters of every cell computed
// for it (cache hits add nothing — they run no simulation). lat is
// guarded by Server.figMu; the counters are atomics because cells
// complete concurrently across workers.
type figureMetrics struct {
	lat *stats.Histogram
	// skips aggregates every computed cell's per-pick scheduler skip
	// histogram (core.Report.SchedSkips); guarded by Server.figMu,
	// like lat.
	skips               *stats.Histogram
	cells               atomic.Uint64
	simEvents           atomic.Uint64
	reads, writes       atomic.Uint64
	refreshCommands     atomic.Uint64
	refreshStalledReads atomic.Uint64
}

// New builds a Server, warms its cache from the journal (if
// configured), and starts its workers.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		queue:    newJobQueue(cfg.QueueDepth),
		cache:    NewCache(cfg.CacheBytes, cfg.CacheShards),
		gate:     newPriorityGate(cfg.CellSlots),
		tenants:  newTenantAdmission(cfg.Tenant),
		brown:    newBrownout(cfg.Brownout),
		start:    time.Now(),
		loopStop: make(chan struct{}),
		loopDone: make(chan struct{}),
		jobs:     map[string]*job{},
		active:   map[string]*job{},
		reg:      metrics.NewRegistry(),
		figs:     map[string]*figureMetrics{},
		log:      cfg.Logger,
		cluster:  cfg.Cluster,
	}
	s.runCtx, s.cancelRun = context.WithCancel(context.Background())
	if s.cluster.Enabled() {
		s.remoteJobs = map[string]string{}
		s.clusterTL = newClusterTimeline(s.cluster.Self().ID)
	}

	// The WAL opens before metrics registration (its counters are
	// registered) and before workers start (replayed jobs must hit the
	// queue with their original relative order intact).
	var pending []walRecord
	if cfg.WALPath != "" {
		wal, p, err := openWAL(cfg.WALPath)
		if err != nil {
			return nil, err
		}
		s.wal, pending = wal, p
	}
	s.registerMetrics()

	if cfg.JournalPath != "" {
		if err := s.warmCache(); err != nil {
			return nil, err
		}
	}
	s.replayWAL(pending)

	s.mux.HandleFunc("POST /v1/jobs", s.handleEnqueue)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/timeline", s.handleJobTimeline)
	s.mux.HandleFunc("GET /v1/figures/{name}", s.handleFigure)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	if s.cluster.Enabled() {
		// Cluster-internal endpoints exist only on cluster nodes; a
		// single-node daemon's surface is unchanged.
		s.mux.HandleFunc("POST /v1/cells", s.handleCellExec)
		s.mux.HandleFunc("GET /v1/cache/{key...}", s.handleCacheGet)
		s.mux.HandleFunc("GET /v1/cluster/timeline", s.handleClusterTimeline)
		s.cluster.Start()
	}

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	go s.resilienceLoop()
	return s, nil
}

// replayWAL re-admits the previous process's acknowledged-but-
// unfinished jobs under their original ids. A pending record whose key
// is already active coalesces (its id is aliased to the surviving job
// and retired from the ledger); one whose result is meanwhile cached
// completes instantly. Replay bypasses admission limits — these jobs
// were admitted once already, and shedding them here would be exactly
// the acknowledged-job loss the WAL exists to prevent.
func (s *Server) replayWAL(pending []walRecord) {
	maxSeq := uint64(0)
	for _, rec := range pending {
		var n uint64
		if _, err := fmt.Sscanf(rec.ID, "job-%d", &n); err == nil && n > maxSeq {
			maxSeq = n
		}
	}
	// New ids must not collide with recovered ones.
	if maxSeq > s.jobSeq.Load() {
		s.jobSeq.Store(maxSeq)
	}
	for _, rec := range pending {
		adm := admitContext{tenant: rec.Tenant, recoveredID: rec.ID}
		if rec.DeadlineAt != nil {
			adm.deadline = *rec.DeadlineAt
		}
		if _, _, err := s.enqueue(*rec.Req, "wal-replay", adm); err != nil {
			// Only a request the current build no longer understands can
			// fail here; surfacing it as a lost job would be wrong, so
			// log it and retire the record.
			s.log.Error("wal replay rejected", "job", rec.ID, "err", err.Error())
			s.wal.appendDone(rec.ID)
		}
	}
}

// reqInfo identifies one HTTP request for the access log and for
// timeline correlation; handlers read it from the request context.
type reqInfo struct {
	id    string
	start time.Time
}

type reqInfoKey struct{}

func requestInfo(ctx context.Context) reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(reqInfo)
	return ri
}

// statusWriter captures the response status for the access log while
// passing streaming flushes through (the NDJSON events endpoint).
// wrote tracks whether anything reached the wire, which is what decides
// whether a recovered panic can still be turned into a clean 500.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
	}
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer's
// deadline controls through this wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// ServeHTTP tags every request with an id, dispatches it, and writes
// one structured access-log line: method, path, status, duration, and
// cache disposition (for endpoints that set X-Cache).
//
// It is also the daemon's panic boundary: a panicking handler is
// recovered into a 500 carrying the request id (when nothing has been
// written yet), counted on http.panics, and logged with its stack —
// one bad request must not take down a daemon holding a warm cache and
// a queue of other tenants' work.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ri := reqInfo{id: fmt.Sprintf("req-%06d", s.reqSeq.Add(1)), start: time.Now()}
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			s.log.Error("handler panic",
				"request_id", ri.id, "method", r.Method, "path", r.URL.Path,
				"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
			if !sw.wrote {
				writeJSON(sw, http.StatusInternalServerError,
					map[string]string{"error": "internal server error", "request_id": ri.id})
			}
		}
		// Logged from the deferred path so panicking requests still get
		// their access-log line.
		attrs := []any{
			"request_id", ri.id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration_ms", float64(time.Since(ri.start).Microseconds()) / 1000,
		}
		if cache := sw.Header().Get("X-Cache"); cache != "" {
			attrs = append(attrs, "cache", cache)
		}
		s.log.Info("request", attrs...)
	}()
	r = r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, ri))
	if s.cluster.Enabled() {
		// Every response names its node; a forwarded response's header
		// copy overwrites this with the executing node's id, so the
		// value always names who actually handled the request.
		sw.Header().Set(nodeHeader, s.cluster.Self().ID)
		if s.routeCluster(sw, r, ri) {
			return
		}
	}
	s.mux.ServeHTTP(sw, r)
}

// registerMetrics binds the daemon's observability state onto its
// registry: queue shape, job outcome counters, cache behaviour, and
// uptime. Per-figure metrics register lazily in figMetrics the first
// time a figure executes.
func (s *Server) registerMetrics() {
	root := s.reg.Root()

	q := root.Sub("queue")
	q.GaugeFunc("depth", func() float64 { return float64(s.queue.len()) })
	q.GaugeFunc("capacity", func() float64 { return float64(s.cfg.QueueDepth) })
	q.GaugeFunc("running", func() float64 { return float64(s.running.Load()) })
	q.GaugeFunc("workers", func() float64 { return float64(s.cfg.Workers) })
	q.GaugeFunc("cell_slots", func() float64 { return float64(s.cfg.CellSlots) })

	j := root.Sub("jobs")
	j.CounterFunc("enqueued", s.enqueued.Load)
	j.CounterFunc("deduped", s.dedupHits.Load)
	j.CounterFunc("cache_hits", s.cacheHits.Load)
	j.CounterFunc("completed", s.completed.Load)
	j.CounterFunc("failed", s.failed.Load)
	j.CounterFunc("quarantined", s.quarantined.Load)
	j.CounterFunc("expired", s.expired.Load)

	root.CounterFunc("simulations", s.simulations.Load)

	adm := root.Sub("admission")
	adm.CounterFunc("shed_rate", s.tenants.shedRate.Load)
	adm.CounterFunc("shed_in_flight", s.tenants.shedInFlight.Load)
	adm.CounterFunc("shed_brownout", s.shedBrownout.Load)
	adm.GaugeFunc("tenants", func() float64 { return float64(s.tenants.count()) })

	b := root.Sub("brownout")
	b.GaugeFunc("engaged", func() float64 {
		if s.brown.isEngaged() {
			return 1
		}
		return 0
	})
	b.CounterFunc("engagements", s.brown.engagements.Load)
	b.CounterFunc("degraded", s.brown.degraded.Load)
	b.CounterFunc("shed", s.brown.shed.Load)

	wd := root.Sub("watchdog")
	wd.CounterFunc("kills", s.watchdogKills.Load)
	wd.CounterFunc("scans", s.watchdogScans.Load)

	pr := root.Sub("preempt")
	pr.CounterFunc("preemptions", s.preemptions.Load)
	pr.CounterFunc("resumes", s.preemptResumes.Load)

	root.Sub("http").CounterFunc("panics", s.panics.Load)
	root.Sub("events").CounterFunc("dropped", s.eventDrops.Load)

	if s.wal != nil {
		w := root.Sub("wal")
		w.CounterFunc("accepts", s.wal.accepts.Load)
		w.CounterFunc("dones", s.wal.dones.Load)
		w.CounterFunc("errors", s.wal.ioErrs.Load)
		w.CounterFunc("recovered", func() uint64 { return s.wal.recovered })
		w.CounterFunc("torn_lines", func() uint64 { return s.wal.torn })
	}

	c := root.Sub("cache")
	c.CounterFunc("hits", func() uint64 { return s.cache.Stats().Hits })
	c.CounterFunc("misses", func() uint64 { return s.cache.Stats().Misses })
	c.CounterFunc("evictions", func() uint64 { return s.cache.Stats().Evictions })
	c.GaugeFunc("entries", func() float64 { return float64(s.cache.Stats().Entries) })
	c.GaugeFunc("bytes", func() float64 { return float64(s.cache.Stats().Bytes) })
	c.GaugeFunc("budget_bytes", func() float64 { return float64(s.cache.Stats().Budget) })
	c.GaugeFunc("hit_ratio", func() float64 { return s.cache.Stats().HitRatio })

	root.GaugeFunc("uptime_seconds", func() float64 { return time.Since(s.start).Seconds() })

	if s.cluster.Enabled() {
		s.registerClusterMetrics()
	}
}

// figMetrics returns figure's metrics bundle, creating and registering
// it on first use. Creation happens under figMu; registration happens
// after releasing it, because Snapshot reads the latency histogram
// under registry.mu then figMu, and registering under figMu would take
// those locks in the opposite order. Only the inserting goroutine
// registers, so the duplicate-name panic cannot fire.
func (s *Server) figMetrics(figure string) *figureMetrics {
	s.figMu.Lock()
	fm, ok := s.figs[figure]
	if ok {
		s.figMu.Unlock()
		return fm
	}
	fm = &figureMetrics{
		lat:   stats.NewHistogram(1, 8192),
		skips: stats.NewHistogram(1, 16),
	}
	s.figs[figure] = fm
	s.figMu.Unlock()

	scope := s.reg.Root().Subf("figure[%s]", figure)
	scope.HistogramFunc("job_latency_ms", func() stats.HistogramView {
		s.figMu.Lock()
		defer s.figMu.Unlock()
		return fm.lat.View()
	})
	scope.HistogramFunc("sched_skips_per_pick", func() stats.HistogramView {
		s.figMu.Lock()
		defer s.figMu.Unlock()
		return fm.skips.View()
	})
	scope.CounterFunc("cells", fm.cells.Load)
	scope.CounterFunc("sim_events", fm.simEvents.Load)
	// Live engine throughput: events/sec summed over this figure's
	// currently running jobs (0 when none are running). The per-job
	// breakdown is in /statsz's running_jobs.
	scope.GaugeFunc("engine_events_per_sec", func() float64 {
		var eps float64
		for _, t := range s.runningThroughput() {
			if t.Figure == figure {
				eps += t.EventsPerSec
			}
		}
		return eps
	})
	scope.CounterFunc("reads", fm.reads.Load)
	scope.CounterFunc("writes", fm.writes.Load)
	scope.CounterFunc("refresh_commands", fm.refreshCommands.Load)
	scope.CounterFunc("refresh_stalled_reads", fm.refreshStalledReads.Load)
	return fm
}

// warmCache loads the previous run's persisted results.
func (s *Server) warmCache() error {
	jnl, err := journal.Open(s.cfg.JournalPath, cacheJournalFingerprint)
	if err != nil {
		return fmt.Errorf("service: warming cache: %w", err)
	}
	jnl.Each(func(key string, raw json.RawMessage) {
		var body string
		if json.Unmarshal(raw, &body) == nil && body != "" {
			s.cache.Put(key, []byte(body))
		}
	})
	return nil
}

// persistCache rewrites the journal as an exact snapshot of the live
// cache (stale keys from earlier runs are dropped with the old file).
func (s *Server) persistCache() error {
	snap := s.cache.Snapshot()
	if err := os.Remove(s.cfg.JournalPath); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("service: persisting cache: %w", err)
	}
	if len(snap) == 0 {
		return nil
	}
	jnl, err := journal.Open(s.cfg.JournalPath, cacheJournalFingerprint)
	if err != nil {
		return fmt.Errorf("service: persisting cache: %w", err)
	}
	batch := make(map[string]any, len(snap))
	for k, body := range snap {
		batch[k] = string(body)
	}
	if err := jnl.RecordBatch(batch); err != nil {
		return fmt.Errorf("service: persisting cache: %w", err)
	}
	return nil
}

// Shutdown drains the daemon: admission closes immediately, queued and
// running jobs get until the drain deadline (or ctx) to finish, then
// in-flight sweeps are cancelled gracefully (in-flight cells complete,
// the rest are skipped). Finally the result cache is persisted to the
// journal. It returns nil when everything drained and persisted.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.stopOnce.Do(func() { close(s.loopStop) })
	// Stop probing peers first: this node is leaving, its view of the
	// cluster no longer matters, and /healthz now answering 503 is what
	// tells the peers the same about it.
	s.cluster.Stop()
	s.queue.close()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	timer := time.NewTimer(s.cfg.DrainTimeout)
	defer timer.Stop()
	select {
	case <-done:
	case <-ctx.Done():
		s.cancelRun()
		<-done
	case <-timer.C:
		s.cancelRun()
		<-done
	}
	s.cancelRun()
	<-s.loopDone

	var errs []error
	if s.wal != nil {
		if err := s.wal.close(); err != nil {
			errs = append(errs, err)
		}
	}
	if s.cfg.JournalPath != "" {
		if err := s.persistCache(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// worker executes jobs until the queue closes and drains.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.execute(j)
	}
}

// cellRunner is the harness hook that ties a figure sweep to this
// daemon: it counts executions, publishes per-cell progress through
// the job's event hub (reusing the runner's OnDone collector), and
// routes every cell through the global priority gate.
func (s *Server) cellRunner(j *job) harness.CellRunner {
	return func(ctx context.Context, figID string, rjobs []runner.Job[*core.Report], opts runner.Options[*core.Report]) (*runner.Batch[*core.Report], error) {
		s.simulations.Add(1)
		j.setCells(len(rjobs))
		fm := s.figMetrics(j.figure)
		orig := opts.OnDone
		opts.OnDone = func(i int, c runner.Cell, rep *core.Report) {
			if orig != nil {
				orig(i, c, rep)
			}
			if rep != nil {
				fm.cells.Add(1)
				fm.simEvents.Add(rep.Events)
				j.engineEvents.Add(rep.Events)
				fm.reads.Add(rep.Reads)
				fm.writes.Add(rep.Writes)
				fm.refreshCommands.Add(rep.RefreshCommands)
				fm.refreshStalledReads.Add(rep.RefreshStalledReads)
				s.figMu.Lock()
				fm.skips.Merge(rep.SchedSkips.View())
				s.figMu.Unlock()
			}
			j.cellDone(c)
		}
		// Each cell runs on an exclusive timeline lane for its whole
		// execution, so lane timestamps are monotone by construction;
		// the span carries the creating request's id for correlation
		// with the HTTP request span.
		for i := range rjobs {
			cell := rjobs[i].Cell
			run := rjobs[i].Run
			rjobs[i].Run = func() (*core.Report, error) {
				lane := j.acquireLane()
				t0 := j.sinceUS()
				rep, err := run()
				j.tl.Emit(timeline.Event{Ph: timeline.PhaseSpan,
					Ts: t0, Dur: j.sinceUS() - t0,
					Pid: tlPidCells, Tid: lane, Name: cell.String(),
					Arg1Name: "seed", Arg1: int64(cell.Seed),
					StrName: "req", Str: j.reqID})
				j.releaseLane(lane)
				return rep, err
			}
		}
		if s.gate != nil {
			priority := j.priority
			opts.Gate = func(ctx context.Context) (func(), error) {
				t0 := j.sinceUS()
				release, err := s.gate.acquire(ctx, priority)
				if err == nil {
					j.tl.Emit(timeline.Event{Ph: timeline.PhaseInstant,
						Ts: j.sinceUS(), Pid: tlPidService, Tid: tlTidGate,
						Name: "admitted", Arg1Name: "wait_us", Arg1: int64(j.sinceUS() - t0)})
				}
				return release, err
			}
		}
		if s.cluster.FanoutEnabled() {
			// Remotable cells fan out to peers with spare capacity;
			// everything else (and every failed dispatch) runs locally
			// under the gate installed above. Results merge at their
			// submission index, so the rendered figure is byte-identical
			// to a single-node run.
			j.tl.SetProcessName(tlPidRemote, "remote cells")
			return s.cluster.RunCells(ctx, figID, j.params, j.reqID, j.priority,
				rjobs, opts, s.remoteCellObserver(j))
		}
		return runner.RunBatch(ctx, rjobs, opts)
	}
}

// execute runs one job to a terminal state.
func (s *Server) execute(j *job) {
	s.running.Add(1)
	defer s.running.Add(-1)

	// A job whose deadline lapsed while it sat queued is shed before it
	// burns a worker: the typed expiry is its terminal answer.
	if j.pastDeadline() {
		s.expired.Add(1)
		j.tl.Instant(tlPidService, tlTidJob, "deadline-expired", j.sinceUS())
		s.finishJob(j, JobExpired, nil, nil,
			fmt.Errorf("service: deadline expired after %s in queue: %w",
				time.Since(j.created).Round(time.Millisecond), context.DeadlineExceeded), false)
		return
	}
	j.setRunning()
	t0 := time.Now()

	// A completed identical job may have filled the cache while this
	// one sat queued. (Contains first so the common just-enqueued miss
	// does not double-count in the cache stats.)
	if s.cache.Contains(j.key) {
		if body, ok := s.cache.Get(j.key); ok {
			s.cacheHits.Add(1)
			s.completed.Add(1)
			j.tl.Instant(tlPidService, tlTidJob, "cache-hit", j.sinceUS())
			s.finishJob(j, JobDone, body, nil, nil, true)
			s.observeLatency(j.figure, time.Since(t0))
			return
		}
	}
	// Cross-shard fallback: before paying for a simulation, ask the
	// key's ring owner (one GET, never a broadcast) whether a peer
	// already computed this result — and keep a local copy so the next
	// miss here is a plain hit.
	if s.cluster.Enabled() {
		if body, peer, ok := s.remoteCacheLookup(j.key); ok {
			s.cache.Put(j.key, body)
			s.completed.Add(1)
			j.tl.Emit(timeline.Event{Ph: timeline.PhaseInstant,
				Ts: j.sinceUS(), Pid: tlPidService, Tid: tlTidJob,
				Name: "remote-cache-hit", StrName: "peer", Str: peer})
			s.finishJob(j, JobDone, body, nil, nil, true)
			s.observeLatency(j.figure, time.Since(t0))
			return
		}
	}
	runStart := j.sinceUS()

	// Per-job cancellation: the soft context (a child of the daemon's
	// drain context) lets in-flight cells finish; the hard context
	// aborts them at the next engine checkpoint and interrupts chaos
	// stalls. The job's deadline bounds both; the watchdog fires both
	// through j.kill.
	var softCtx, hardCtx context.Context
	var softCancel, hardCancel context.CancelFunc
	if j.deadline.IsZero() {
		softCtx, softCancel = context.WithCancel(s.runCtx)
		hardCtx, hardCancel = context.WithCancel(context.Background())
	} else {
		softCtx, softCancel = context.WithDeadline(s.runCtx, j.deadline)
		hardCtx, hardCancel = context.WithDeadline(context.Background(), j.deadline)
	}
	gen := j.arm(softCancel, hardCancel)
	defer func() {
		j.disarm(gen)
		softCancel()
		hardCancel()
	}()

	p := j.params
	p.Ctx = softCtx
	p.HardCtx = hardCtx
	p.CellRunner = s.cellRunner(j)
	if j.snaps != nil {
		// Exact-mode jobs run under the checkpoint driver: the store
		// keeps mid-cell snapshots and finished-cell reports across
		// preemptions, and the boundary poll is where a preemption
		// request takes effect. The leg structure is invisible — a
		// checkpointed cell's report is byte-identical to a plain run's.
		p.Snapshots = j.snaps
		p.CheckpointEvery = s.cfg.CheckpointEvery
		p.Preempt = func() error {
			j.boundaries.Add(1)
			if j.preemptRequested() {
				return errPreempted
			}
			return nil
		}
	}

	var body []byte
	var failures []*runner.CellError
	var err error
	if j.req.Cell != nil {
		c := j.req.Cell
		var rep *core.Report
		rep, err = harness.RunCell(p, c.Mix, c.Density, c.Bundle, c.Hot)
		if err == nil {
			var raw []byte
			raw, err = json.MarshalIndent(rep, "", " ")
			body = append(raw, '\n')
		}
		var ce *runner.CellError
		if errors.As(err, &ce) {
			failures = append(failures, ce)
			err = nil
		}
	} else {
		var rs []*harness.Result
		rs, err = harness.RunFigure(j.figure, p)
		if err == nil {
			for _, r := range rs {
				failures = append(failures, r.Failed...)
			}
			body = renderResults(rs)
		}
	}

	j.tl.Emit(timeline.Event{Ph: timeline.PhaseSpan,
		Ts: runStart, Dur: j.sinceUS() - runStart,
		Pid: tlPidService, Tid: tlTidJob, Name: "run " + j.figure,
		Arg1Name: "quarantined", Arg1: int64(len(failures)),
		StrName: "req", Str: j.reqID})
	switch {
	case j.killed() != nil:
		// The watchdog's verdict wins the classification: whatever error
		// the cancellation produced downstream, the story is the kill.
		s.failed.Add(1)
		s.finishJob(j, JobFailed, nil, failures, j.killed(), false)
	case (err != nil || len(failures) > 0) && j.preemptRequested() && !j.pastDeadline():
		// A preemption request landed and the run unwound (cells abort
		// with errPreempted at their next boundary; the soft cancel skips
		// the rest). The job is not finished — its snapshots are in the
		// store, so it goes back on the queue and resumes from them. If
		// the run beat the request to completion (err and failures both
		// clean), the preemption was a no-op and the later cases classify
		// the finished result as usual.
		s.preemptions.Add(1)
		j.tl.Instant(tlPidService, tlTidJob, "preempted", j.sinceUS())
		s.requeuePreempted(j)
		s.log.Info("job preempted",
			"job", j.id, "figure", j.figure,
			"duration_ms", float64(time.Since(t0).Microseconds())/1000)
		return
	case (err != nil || len(failures) > 0) && j.pastDeadline():
		// The deadline elapsed mid-run and the cancellation unwound the
		// sweep — either as a batch-level error or as per-cell failures
		// (a single-cell job surfaces its interrupted cell that way);
		// classify as expired, not failed.
		s.expired.Add(1)
		j.tl.Instant(tlPidService, tlTidJob, "deadline-expired", j.sinceUS())
		if err == nil {
			err = context.DeadlineExceeded
		}
		s.finishJob(j, JobExpired, nil, failures,
			fmt.Errorf("service: deadline expired mid-run: %w", err), false)
	case err != nil:
		s.failed.Add(1)
		s.finishJob(j, JobFailed, nil, nil, err, false)
	case len(failures) > 0:
		// Partial results are served but never cached: the failed
		// cells should be re-attempted by the next request.
		s.quarantined.Add(1)
		s.finishJob(j, JobQuarantined, body, failures, nil, false)
	default:
		s.cache.Put(j.key, body)
		s.completed.Add(1)
		s.finishJob(j, JobDone, body, nil, nil, false)
	}
	s.observeLatency(j.figure, time.Since(t0))
	st := j.snapshot()
	s.log.Info("job finished",
		"job", j.id, "figure", j.figure, "state", st.State,
		"cells", st.CellsDone, "duration_ms", float64(time.Since(t0).Microseconds())/1000)
}

// requeuePreempted returns a displaced job to the queue. The job stays
// in the active map (coalescing requests keep landing on it, its id
// keeps answering status polls) and keeps its tenant hold and WAL
// record — it was admitted once and is still in flight, just not on a
// worker. Cell progress resets because the next run re-enumerates the
// sweep; completed cells answer instantly from the store's reports and
// the mid-cell snapshots resume the interrupted ones. Only a queue
// that closed for draining can refuse, turning the preemption into a
// terminal failure.
func (s *Server) requeuePreempted(j *job) {
	j.mu.Lock()
	j.preempt = false
	j.state = JobPreempted
	j.started = time.Time{}
	j.cellsDone, j.cellsTotal = 0, 0
	j.mu.Unlock()
	j.hub.publish(map[string]any{"event": "state", "job": j.id, "state": JobPreempted})
	if err := s.queue.forcePush(j); err != nil {
		s.failed.Add(1)
		s.finishJob(j, JobFailed, nil, nil,
			fmt.Errorf("service: preempted job could not requeue: %w", err), false)
	}
}

// finishJob moves j to a terminal state, clears its single-flight
// registration (enforcing the finished-job retention bound), returns
// its tenant's in-flight slot, and retires its WAL record.
func (s *Server) finishJob(j *job, state JobState, body []byte, failures []*runner.CellError, err error, cacheHit bool) {
	s.jobsMu.Lock()
	if s.active[j.key] == j {
		delete(s.active, j.key)
	}
	s.finished = append(s.finished, j.id)
	for len(s.finished) > finishedRetain {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.jobsMu.Unlock()
	j.finish(state, body, failures, err, cacheHit)
	s.releaseTenantHold(j)
	j.mu.Lock()
	walAccepted := j.walAccepted
	j.mu.Unlock()
	if walAccepted && s.wal != nil {
		s.wal.appendDone(j.id)
	}
}

// observeLatency records one job execution in the figure's histogram
// (1 ms buckets up to 8192 ms, overflow beyond).
func (s *Server) observeLatency(figure string, d time.Duration) {
	fm := s.figMetrics(figure)
	s.figMu.Lock()
	defer s.figMu.Unlock()
	fm.lat.Add(uint64(d.Milliseconds()))
}

// renderResults renders figure results exactly as cmd/experiments
// prints them (fmt.Println per result), which is what makes a served
// figure byte-identical to the batch CLI's output.
func renderResults(rs []*harness.Result) []byte {
	var b bytes.Buffer
	for _, r := range rs {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// canonicalFigure normalizes the CLI target aliases so every alias of
// one computation shares a cache entry.
func canonicalFigure(name string) string {
	switch name {
	case "fig11":
		return "fig10"
	case "extensions":
		return "ext1"
	}
	return name
}

// validFigure reports whether name is a servable target (aliases
// included).
func validFigure(name string) bool {
	name = canonicalFigure(name)
	if name == "all" {
		return true
	}
	for _, n := range harness.FigureNames() {
		if n == name {
			return true
		}
	}
	return false
}

// validateCell front-loads the addressing errors RunCell would hit at
// execution time, so bad requests get a 400 instead of a failed job.
func validateCell(c *CellSpec) error {
	if c.Mix == "" || c.Density == "" || c.Bundle == "" {
		return errors.New("cell needs mix, density, and bundle")
	}
	found := false
	for _, m := range workload.Table2() {
		if m.Name == c.Mix {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown mix %q (want WL-1..WL-10)", c.Mix)
	}
	if _, err := harness.ParseDensity(c.Density); err != nil {
		return err
	}
	for _, b := range harness.BundleNames() {
		if b == c.Bundle {
			return nil
		}
	}
	return fmt.Errorf("unknown bundle %q (want one of %v)", c.Bundle, harness.BundleNames())
}

// admitContext carries enqueue's admission inputs: who is asking
// (tenant), any absolute deadline already computed, and — for WAL
// replay only — the original job id to preserve (which also bypasses
// admission limits and queue depth; see replayWAL).
type admitContext struct {
	tenant      string
	deadline    time.Time
	recoveredID string
}

// enqueue resolves a request to a job: a coalesced in-flight job
// (single-flight), an instantly-done job on cache hit, or a freshly
// queued one. deduped reports coalescing. rid is the id of the HTTP
// request asking, recorded on a fresh job for timeline correlation.
func (s *Server) enqueue(req Request, rid string, adm admitContext) (j *job, deduped bool, err error) {
	recovered := adm.recoveredID != ""
	if s.draining.Load() && !recovered {
		return nil, false, errDraining
	}
	if (req.Figure == "") == (req.Cell == nil) {
		return nil, false, errors.New("request needs exactly one of figure or cell")
	}
	if req.DeadlineMS < 0 {
		return nil, false, errors.New("deadline_ms must be positive")
	}
	figure := "cell"
	if req.Cell != nil {
		if err := validateCell(req.Cell); err != nil {
			return nil, false, err
		}
	} else {
		if !validFigure(req.Figure) {
			return nil, false, fmt.Errorf("unknown figure %q (want one of %v or all)", req.Figure, harness.FigureNames())
		}
		figure = canonicalFigure(req.Figure)
	}
	params := req.Params.apply(s.cfg.Params)
	switch params.Mode {
	case "", harness.ModeExact, harness.ModeApprox:
	default:
		return nil, false, fmt.Errorf("unknown mode %q (want %q or %q)",
			params.Mode, harness.ModeExact, harness.ModeApprox)
	}
	key := requestKey(figure, req.Cell, params)

	// Every enqueue feeds the brownout controller, so the mode engages
	// the moment pressure crosses the threshold, not a tick later.
	s.brown.evaluate(s.queue.len(), s.cfg.QueueDepth)

	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	if existing := s.active[key]; existing != nil {
		existing.addDeduped()
		s.dedupHits.Add(1)
		if recovered {
			// The replayed job's twin is already in flight; alias the
			// recovered id to it and retire the ledger record.
			s.jobs[adm.recoveredID] = existing
			s.wal.appendDone(adm.recoveredID)
		}
		return existing, true, nil
	}

	deadline := adm.deadline
	if deadline.IsZero() && req.DeadlineMS > 0 {
		deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	id := adm.recoveredID
	if id == "" {
		id = fmt.Sprintf("job-%06d", s.jobSeq.Add(1))
	}
	j = &job{
		id:       id,
		key:      key,
		figure:   figure,
		req:      req,
		params:   params,
		priority: req.Priority,
		created:  time.Now(),
		tenant:   adm.tenant,
		deadline: deadline,
		hub:      newEventHub(),
		done:     make(chan struct{}),
		state:    JobQueued,
		tl:       newJobTimeline(id),
		reqID:    rid,
	}
	j.hub.drops = &s.eventDrops
	if params.Mode != harness.ModeApprox {
		// Exact jobs carry a snapshot store for their whole life, so a
		// job preempted more than once still resumes from its furthest
		// checkpoint. Approx jobs have no event loop to snapshot.
		j.snaps = newCellStore(&s.preemptResumes)
	}
	s.enqueued.Add(1)

	// Already computed: answer without a queue trip. No WAL record is
	// needed — the result is handed back synchronously in the same
	// exchange that acknowledges the job.
	if body, ok := s.cache.Get(key); ok {
		s.cacheHits.Add(1)
		j.tl.Instant(tlPidService, tlTidJob, "cache-hit", j.sinceUS())
		s.jobs[j.id] = j
		s.finished = append(s.finished, j.id)
		for len(s.finished) > finishedRetain {
			delete(s.jobs, s.finished[0])
			s.finished = s.finished[1:]
		}
		j.finish(JobDone, body, nil, nil, true)
		s.completed.Add(1)
		if recovered {
			s.wal.appendDone(j.id)
		}
		return j, false, nil
	}

	// Fresh simulation work from here on: brownout shedding and the
	// per-tenant in-flight budget apply (coalescing and cache hits
	// above cost nothing and always pass). Replay bypasses both.
	// walAccepted is set before the push makes j visible to workers, so
	// a fast finish cannot race past the done-record bookkeeping.
	j.walAccepted = s.wal != nil
	if !recovered {
		if s.brown.shouldShed(req.Priority, params.Mode == harness.ModeApprox) {
			s.brown.shed.Add(1)
			s.shedBrownout.Add(1)
			return nil, false, &admissionError{
				tenant: adm.tenant, reason: "brownout", retryAfter: s.retryAfterSeconds(),
			}
		}
		if err := s.tenants.admitInFlight(adm.tenant); err != nil {
			return nil, false, err
		}
		j.tenantHeld = true
		// Acknowledgement barrier: the accept record is fsynced before
		// this job's id escapes to the client (enqueue returns only
		// after appendAccept). A WAL write failure degrades durability,
		// not service — it is logged and counted (wal.errors), and the
		// job still runs.
		if s.wal != nil {
			rec := walRecord{ID: j.id, Tenant: j.tenant, Req: &j.req}
			if !deadline.IsZero() {
				rec.DeadlineAt = &deadline
			}
			if err := s.wal.appendAccept(rec); err != nil {
				s.log.Error("wal append failed", "job", j.id, "err", err.Error())
			}
		}
		if err := s.queue.push(j); err != nil {
			s.releaseTenantHold(j)
			if s.wal != nil {
				// Never acknowledged (the caller gets the push error), so
				// retire the accept record rather than replaying a ghost.
				s.wal.appendDone(j.id)
			}
			return nil, false, err
		}
		s.maybePreempt(j)
	} else {
		s.tenants.hold(adm.tenant)
		j.tenantHeld = true
		if err := s.queue.forcePush(j); err != nil {
			s.releaseTenantHold(j)
			return nil, false, err
		}
	}

	j.tl.Instant(tlPidService, tlTidJob, "cache-miss", j.sinceUS())
	s.jobs[j.id] = j
	s.active[key] = j
	j.hub.publish(map[string]any{"event": "state", "job": j.id, "state": JobQueued})
	return j, false, nil
}

// maybePreempt runs under jobsMu after a fresh job joins the queue:
// when every worker is busy and some running exact job is strictly
// lower-priority than the arrival, the lowest-priority such job is
// asked to yield at its next checkpoint boundary. Only the request is
// posted here — the displaced job snapshots, unwinds, and requeues on
// its own worker (see execute's preempted case), and the freed worker
// then pops the highest-priority job, which is the arrival.
func (s *Server) maybePreempt(incoming *job) {
	if s.running.Load() < int64(s.cfg.Workers) {
		return
	}
	var victim *job
	for _, j := range s.active {
		if j == incoming || j.snaps == nil || j.priority >= incoming.priority {
			continue
		}
		j.mu.Lock()
		eligible := j.state == JobRunning && j.killErr == nil && !j.preempt
		j.mu.Unlock()
		if !eligible {
			continue
		}
		if victim == nil || j.priority < victim.priority {
			victim = j
		}
	}
	if victim != nil && victim.requestPreempt() {
		s.log.Info("preempting job",
			"job", victim.id, "priority", victim.priority,
			"for", incoming.id, "incoming_priority", incoming.priority)
	}
}

// releaseTenantHold returns j's in-flight slot to its tenant, exactly
// once no matter how many paths observe the job finishing.
func (s *Server) releaseTenantHold(j *job) {
	j.mu.Lock()
	held := j.tenantHeld
	j.tenantHeld = false
	tenant := j.tenant
	j.mu.Unlock()
	if held {
		s.tenants.release(tenant)
	}
}

func (s *Server) getJob(id string) *job {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	return s.jobs[id]
}

// runningThroughput samples the engine throughput of every currently
// running job, ordered by job id. It backs the per-figure
// engine_events_per_sec gauge and /statsz's running_jobs list.
func (s *Server) runningThroughput() []JobThroughput {
	s.jobsMu.Lock()
	js := make([]*job, 0, len(s.active))
	for _, j := range s.active {
		js = append(js, j)
	}
	s.jobsMu.Unlock()
	var out []JobThroughput
	for _, j := range js {
		if t, ok := j.throughput(); ok {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// retryAfterSeconds estimates when queue space should free up: the
// queue's current backlog paced by the recent mean job latency across
// workers, clamped to [1s, 600s].
func (s *Server) retryAfterSeconds() int {
	meanMS := 1000.0
	s.figMu.Lock()
	var n uint64
	var sum float64
	for _, fm := range s.figs {
		n += fm.lat.Count()
		sum += fm.lat.Mean() * float64(fm.lat.Count())
	}
	s.figMu.Unlock()
	if n > 0 {
		meanMS = sum / float64(n)
	}
	secs := int(meanMS/1000*float64(s.queue.len())/float64(s.cfg.Workers)) + 1
	if secs < 1 {
		secs = 1
	}
	if secs > 600 {
		secs = 600
	}
	return secs
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

// writeEnqueueError maps an admission or validation failure onto the
// wire. Every rejection that a client should retry carries a
// structured body — which tenant hit which limit, and when to come
// back — so load generators and SDKs can distinguish "queue is full"
// from "you personally are over budget" from "the daemon is browned
// out" without parsing prose.
func (s *Server) writeEnqueueError(w http.ResponseWriter, err error, tenant string) {
	var ae *admissionError
	switch {
	case errors.As(err, &ae):
		retry := ae.retryAfter
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":         err.Error(),
			"tenant":        ae.tenant,
			"reason":        ae.reason,
			"retry_after_s": retry,
		})
	case errors.Is(err, errQueueFull):
		retry := s.retryAfterSeconds()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":         err.Error(),
			"tenant":        tenant,
			"reason":        "queue_full",
			"retry_after_s": retry,
		})
	case errors.Is(err, errDraining):
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	}
}

// handleEnqueue is POST /v1/jobs.
func (s *Server) handleEnqueue(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	if err := s.tenants.admitRate(tenant); err != nil {
		s.writeEnqueueError(w, err, tenant)
		return
	}
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	ri := requestInfo(r.Context())
	j, deduped, err := s.enqueue(req, ri.id, admitContext{tenant: tenant})
	if err != nil {
		s.writeEnqueueError(w, err, tenant)
		return
	}
	recordRequestSpan(j, ri, "POST /v1/jobs", deduped)
	st := j.snapshot()
	status := http.StatusAccepted
	if deduped || st.State == JobDone {
		status = http.StatusOK
	}
	writeJSON(w, status, map[string]any{"id": j.id, "state": st.State, "deduped": deduped})
}

// recordRequestSpan puts one HTTP request onto a job's request track:
// a span from the request's start (clamped to the job's creation for
// the creating request) to now, carrying the request id. Coalesced
// requests are tagged so dedup fan-in is visible.
func recordRequestSpan(j *job, ri reqInfo, name string, deduped bool) {
	ts := j.tsUS(ri.start)
	e := timeline.Event{Ph: timeline.PhaseSpan,
		Ts: ts, Dur: j.sinceUS() - ts,
		Pid: tlPidService, Tid: tlTidRequests, Name: name,
		StrName: "req", Str: ri.id}
	if deduped {
		e.Arg1Name, e.Arg1 = "deduped", 1
	}
	j.tl.Emit(e)
}

// handleJobTimeline is GET /v1/jobs/{id}/timeline: the job's
// wall-clock trace as Chrome trace-event JSON, loadable in Perfetto.
// Available while the job runs (a consistent snapshot) and after it
// finishes.
func (s *Server) handleJobTimeline(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	j.tl.WriteTo(w)
}

// handleJobStatus is GET /v1/jobs/{id}.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// eventWriteTimeout bounds each NDJSON write to a streaming
// subscriber: a client that accepts the connection but stops reading
// gets its stream torn down once the socket buffer fills, instead of
// parking a handler goroutine (and its subscription) forever.
const eventWriteTimeout = 15 * time.Second

// handleJobEvents is GET /v1/jobs/{id}/events: NDJSON progress,
// replaying history then streaming live until the job finishes. Slow
// and gone consumers both release their resources: each write carries
// a deadline (see eventWriteTimeout), a disconnect cancels the
// request context, and either way the deferred cancel detaches the
// hub subscription.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	// Writers that cannot set deadlines (test recorders) just skip the
	// slow-consumer bound; the disconnect path still applies.
	defer rc.SetWriteDeadline(time.Time{})
	writeLine := func(line []byte) bool {
		rc.SetWriteDeadline(time.Now().Add(eventWriteTimeout))
		if _, err := w.Write(line); err != nil {
			return false
		}
		_, err := w.Write([]byte("\n"))
		return err == nil
	}

	replay, events, cancel := j.hub.subscribe()
	defer cancel()
	for _, line := range replay {
		if !writeLine(line) {
			return
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
	for {
		select {
		case line, ok := <-events:
			if !ok {
				return
			}
			if !writeLine(line) {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleFigure is GET /v1/figures/{name}: the synchronous
// cached-or-computed path. The response body is byte-identical to what
// cmd/experiments prints for the same target and parameters.
//
// ?fidelity=approx switches to the two-tier first-response mode: the
// figure is answered from the analytical model (milliseconds, served
// with "X-Fidelity: approx"), and the exact sweep is enqueued in the
// background at batch priority so a later exact request — or a poll of
// the job id returned in X-Refsched-Exact-Job — finds it computed and
// cached. The default (and ?fidelity=exact) serves the exact result
// with "X-Fidelity: exact".
//
// While the daemon is browned out, a request that did not pin a
// fidelity is automatically downgraded to the approx tier and answered
// in milliseconds, marked "X-Fidelity: approx" plus "Degraded: true";
// no background exact sweep is enqueued (that would feed the very
// queue pressure brownout is shedding). An explicit ?fidelity=exact is
// always honored.
//
// ?timeout_ms bounds the synchronous wait: past it the request gets a
// 504 carrying the job id, while the job itself keeps running and
// warming the cache for a later poll.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	tenant := tenantOf(r)
	if err := s.tenants.admitRate(tenant); err != nil {
		s.writeEnqueueError(w, err, tenant)
		return
	}
	priority := 10 // interactive requests outrank default batch jobs
	if pstr := r.URL.Query().Get("priority"); pstr != "" {
		p, err := strconv.Atoi(pstr)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad priority"})
			return
		}
		priority = p
	}
	var timeout <-chan time.Time
	if tstr := r.URL.Query().Get("timeout_ms"); tstr != "" {
		ms, err := strconv.Atoi(tstr)
		if err != nil || ms <= 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad timeout_ms"})
			return
		}
		t := time.NewTimer(time.Duration(ms) * time.Millisecond)
		defer t.Stop()
		timeout = t.C
	}
	fidelity := r.URL.Query().Get("fidelity")
	degraded := false
	switch fidelity {
	case "":
		fidelity = harness.ModeExact
		if s.brown.isEngaged() {
			// Graceful degradation: answer from the analytical tier
			// instead of joining an already-deep queue. Every figure
			// target is approx-servable (see TestApproxCoversAllFigures).
			fidelity = harness.ModeApprox
			degraded = true
			s.brown.degraded.Add(1)
		}
	case harness.ModeExact:
	case harness.ModeApprox:
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad fidelity (want exact or approx)"})
		return
	}
	ri := requestInfo(r.Context())
	req := Request{Figure: name, Priority: priority}
	if fidelity == harness.ModeApprox {
		mode := harness.ModeApprox
		req.Params = &ParamOverrides{Mode: &mode}
		// Kick the exact sweep off behind the fast answer — unless this
		// response is already a brownout downgrade, in which case
		// enqueueing exact work would feed the overload being shed.
		// Enqueue failures (queue full, draining) only cost the
		// warm-up: the approx response below still succeeds.
		if !degraded {
			if ej, _, err := s.enqueue(Request{Figure: name}, ri.id, admitContext{tenant: tenant}); err == nil {
				w.Header().Set("X-Refsched-Exact-Job", ej.id)
			}
		}
	}
	j, deduped, err := s.enqueue(req, ri.id, admitContext{tenant: tenant})
	if err != nil {
		s.writeEnqueueError(w, err, tenant)
		return
	}
	if degraded {
		j.tl.Instant(tlPidService, tlTidJob, "brownout-degraded", j.sinceUS())
	}
	select {
	case <-j.done:
	case <-timeout:
		// The wait bound fired first; the job still completes and warms
		// the cache, and the client can poll it by id.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{
			"error": "figure not ready within timeout_ms", "job": j.id})
		return
	case <-r.Context().Done():
		// Client gave up; the job still completes and warms the cache.
		return
	}
	// Emitted after the wait, so the request span brackets the whole
	// synchronous compute-or-cached exchange.
	recordRequestSpan(j, ri, "GET /v1/figures/"+name, deduped)
	state, body, jerr := j.result()
	st := j.snapshot()
	if degraded {
		w.Header().Set("Degraded", "true")
	}
	switch state {
	case JobDone:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Fidelity", fidelity)
		if st.CacheHit {
			w.Header().Set("X-Cache", "hit")
		} else {
			w.Header().Set("X-Cache", "miss")
		}
		w.Write(body)
	case JobQuarantined:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Fidelity", fidelity)
		w.Header().Set("X-Refsched-Quarantined", strconv.Itoa(len(st.Quarantined)))
		w.Write(body)
	case JobExpired:
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": jerr.Error(), "job": j.id})
	default:
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": jerr.Error()})
	}
}

// Health is the /healthz payload.
type Health struct {
	Status  string         `json:"status"`
	Version buildinfo.Info `json:"version"`
	UptimeS float64        `json:"uptime_s"`
	Queued  int            `json:"queued"`
	Running int64          `json:"running"`
	// NodeID names this cluster node; absent on single-node daemons.
	NodeID string `json:"node_id,omitempty"`
}

func (s *Server) health() Health {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	h := Health{
		Status:  status,
		Version: buildinfo.Get(),
		UptimeS: time.Since(s.start).Seconds(),
		Queued:  s.queue.len(),
		Running: s.running.Load(),
	}
	if s.cluster.Enabled() {
		h.NodeID = s.cluster.Self().ID
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	code := http.StatusOK
	if h.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// LatencyStats summarizes one figure's job latencies for /statsz.
type LatencyStats struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  uint64  `json:"p50_ms"`
	P90MS  uint64  `json:"p90_ms"`
	P99MS  uint64  `json:"p99_ms"`
	MaxMS  uint64  `json:"max_ms"`
}

// Stats is the /statsz payload.
type Stats struct {
	UptimeS float64 `json:"uptime_s"`
	Queue   struct {
		Depth     int   `json:"depth"`
		Capacity  int   `json:"capacity"`
		Running   int64 `json:"running"`
		Workers   int   `json:"workers"`
		CellSlots int   `json:"cell_slots"`
	} `json:"queue"`
	Jobs struct {
		Enqueued    uint64 `json:"enqueued"`
		Deduped     uint64 `json:"deduped"`
		CacheHits   uint64 `json:"cache_hits"`
		Completed   uint64 `json:"completed"`
		Failed      uint64 `json:"failed"`
		Quarantined uint64 `json:"quarantined"`
		Expired     uint64 `json:"expired"`
	} `json:"jobs"`
	// Resilience is the overload-control surface: admission sheds,
	// brownout state, watchdog activity, and recovered panics.
	Resilience struct {
		ShedRate            uint64 `json:"shed_rate"`
		ShedInFlight        uint64 `json:"shed_in_flight"`
		ShedBrownout        uint64 `json:"shed_brownout"`
		Tenants             int    `json:"tenants"`
		BrownoutEngaged     bool   `json:"brownout_engaged"`
		BrownoutEngagements uint64 `json:"brownout_engagements"`
		BrownoutDegraded    uint64 `json:"brownout_degraded"`
		WatchdogKills       uint64 `json:"watchdog_kills"`
		Preemptions         uint64 `json:"preemptions"`
		PreemptResumes      uint64 `json:"preempt_resumes"`
		HTTPPanics          uint64 `json:"http_panics"`
		EventsDropped       uint64 `json:"events_dropped"`
	} `json:"resilience"`
	Simulations uint64                  `json:"simulations"`
	Cache       CacheStats              `json:"cache"`
	Figures     map[string]LatencyStats `json:"figures"`
	// Cluster is the node's membership/forwarding/fan-out block; nil
	// (omitted) on single-node daemons, keeping their /statsz payload
	// byte-identical.
	Cluster *cluster.Stats `json:"cluster,omitempty"`
	// RunningJobs samples each mid-run job's engine throughput at
	// snapshot time (events executed by completed cells over wall time);
	// empty when the daemon is idle.
	RunningJobs []JobThroughput `json:"running_jobs,omitempty"`
}

// MetricsSnapshot reads the daemon's full registry — the same data
// /metricsz exposes, in structured form.
func (s *Server) MetricsSnapshot() metrics.Snapshot { return s.reg.Snapshot() }

// StatsSnapshot collects the live serving metrics (also used directly
// by tests, bypassing HTTP). It is a projection of one registry
// snapshot — the /statsz and /metricsz payloads are two renderings of
// the same read — plus the ephemeral per-running-job throughput
// samples, which have no cumulative registry representation.
func (s *Server) StatsSnapshot() Stats {
	st := projectStats(s.reg.Snapshot())
	st.RunningJobs = s.runningThroughput()
	if s.cluster.Enabled() {
		cs := s.cluster.Snapshot()
		st.Cluster = &cs
	}
	return st
}

// projectStats shapes a registry snapshot into the /statsz payload.
func projectStats(snap metrics.Snapshot) Stats {
	var st Stats
	st.UptimeS = snap.Gauge("uptime_seconds")
	st.Queue.Depth = int(snap.Gauge("queue.depth"))
	st.Queue.Capacity = int(snap.Gauge("queue.capacity"))
	st.Queue.Running = int64(snap.Gauge("queue.running"))
	st.Queue.Workers = int(snap.Gauge("queue.workers"))
	st.Queue.CellSlots = int(snap.Gauge("queue.cell_slots"))
	st.Jobs.Enqueued = snap.Counter("jobs.enqueued")
	st.Jobs.Deduped = snap.Counter("jobs.deduped")
	st.Jobs.CacheHits = snap.Counter("jobs.cache_hits")
	st.Jobs.Completed = snap.Counter("jobs.completed")
	st.Jobs.Failed = snap.Counter("jobs.failed")
	st.Jobs.Quarantined = snap.Counter("jobs.quarantined")
	st.Jobs.Expired = snap.Counter("jobs.expired")
	st.Resilience.ShedRate = snap.Counter("admission.shed_rate")
	st.Resilience.ShedInFlight = snap.Counter("admission.shed_in_flight")
	st.Resilience.ShedBrownout = snap.Counter("admission.shed_brownout")
	st.Resilience.Tenants = int(snap.Gauge("admission.tenants"))
	st.Resilience.BrownoutEngaged = snap.Gauge("brownout.engaged") > 0
	st.Resilience.BrownoutEngagements = snap.Counter("brownout.engagements")
	st.Resilience.BrownoutDegraded = snap.Counter("brownout.degraded")
	st.Resilience.WatchdogKills = snap.Counter("watchdog.kills")
	st.Resilience.Preemptions = snap.Counter("preempt.preemptions")
	st.Resilience.PreemptResumes = snap.Counter("preempt.resumes")
	st.Resilience.HTTPPanics = snap.Counter("http.panics")
	st.Resilience.EventsDropped = snap.Counter("events.dropped")
	st.Simulations = snap.Counter("simulations")
	st.Cache = CacheStats{
		Hits:      snap.Counter("cache.hits"),
		Misses:    snap.Counter("cache.misses"),
		Evictions: snap.Counter("cache.evictions"),
		Entries:   int(snap.Gauge("cache.entries")),
		Bytes:     int64(snap.Gauge("cache.bytes")),
		Budget:    int64(snap.Gauge("cache.budget_bytes")),
		HitRatio:  snap.Gauge("cache.hit_ratio"),
	}
	st.Figures = map[string]LatencyStats{}
	for name, h := range snap.Histograms {
		fig, ok := figureOfLatency(name)
		if !ok {
			continue
		}
		st.Figures[fig] = LatencyStats{
			Count:  h.Count,
			MeanMS: h.Mean(),
			P50MS:  h.Percentile(50),
			P90MS:  h.Percentile(90),
			P99MS:  h.Percentile(99),
			MaxMS:  h.Max,
		}
	}
	return st
}

// figureOfLatency extracts the figure name from a
// "figure[<name>].job_latency_ms" metric name.
func figureOfLatency(name string) (string, bool) {
	const pre, suf = "figure[", "].job_latency_ms"
	if strings.HasPrefix(name, pre) && strings.HasSuffix(name, suf) && len(name) > len(pre)+len(suf) {
		return name[len(pre) : len(name)-len(suf)], true
	}
	return "", false
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// handleMetricsz is GET /metricsz: the registry in Prometheus text
// exposition format, for scraping. Counter families carry a refschedd_
// namespace; indexed scopes (per-figure state) become labels, e.g.
// refschedd_figure_sim_events{figure="fig10"}.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.WritePrometheus(w, s.reg.Snapshot(), "refschedd")
}
