// Package service is the serving layer over the simulation pipeline:
// a long-running daemon (cmd/refschedd) that answers the same
// parameterized, cacheable computations the batch CLIs produce — whole
// figure sweeps and single simulation cells — in milliseconds when the
// result has been computed before and through a bounded, prioritized
// job queue when it hasn't.
//
// The serving path composes the primitives the pipeline already has:
// figure drivers run through harness.RunFigure with an injected
// CellRunner, so every sweep passes the same fault boundary
// (quarantine, retry, typed *runner.CellError) as the CLI and is
// additionally subject to the daemon's global cell gate
// (highest-priority job first) and per-cell progress streaming.
// Rendered results land in a sharded byte-budget LRU cache keyed by
// the harness parameter fingerprint; identical in-flight requests
// coalesce onto one job (single-flight), so N concurrent requests for
// an uncached figure cost exactly one simulation. Admission control
// caps queue depth (HTTP 429 + Retry-After), and graceful shutdown
// drains in-flight jobs under a deadline, then persists the cache
// through internal/journal so a restarted daemon starts warm.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"refsched/internal/buildinfo"
	"refsched/internal/core"
	"refsched/internal/harness"
	"refsched/internal/journal"
	"refsched/internal/metrics"
	"refsched/internal/runner"
	"refsched/internal/stats"
	"refsched/internal/timeline"
	"refsched/internal/workload"
)

// cacheJournalFingerprint binds the persisted cache snapshot format.
// Request keys embed their own parameter fingerprints, so this only
// versions the snapshot encoding itself.
const cacheJournalFingerprint = "refschedd-cache-v1"

// finishedRetain bounds how many finished jobs stay addressable via
// GET /v1/jobs/{id}; beyond it the oldest are forgotten (their results
// live on in the cache).
const finishedRetain = 4096

// Config sizes the daemon. Zero values select the documented defaults.
type Config struct {
	// Params is the base simulation parameter set; requests may
	// override the result-affecting knobs per call.
	Params harness.Params
	// QueueDepth bounds queued (not yet running) jobs; admission
	// beyond it fails with 429 (default 64).
	QueueDepth int
	// Workers is how many jobs execute concurrently (default 2).
	Workers int
	// CellSlots is the global budget of concurrently simulating cells
	// shared by all running jobs, admitted highest-priority-first
	// (default GOMAXPROCS via runner.Parallelism; <0 disables the
	// gate).
	CellSlots int
	// CacheBytes / CacheShards size the result cache (defaults 64 MiB,
	// 8 shards).
	CacheBytes  int64
	CacheShards int
	// JournalPath, when non-empty, is where shutdown persists the
	// result cache and startup warms it from.
	JournalPath string
	// DrainTimeout bounds how long Shutdown waits for in-flight jobs
	// before cancelling them gracefully (default 30s).
	DrainTimeout time.Duration
	// Logger receives the structured access log (one request-ID-tagged
	// line per HTTP request) and job lifecycle events. Nil discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.CellSlots == 0 {
		c.CellSlots = runner.Parallelism(0)
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 8
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Server is the daemon: an http.Handler plus the queue, workers,
// cache, and single-flight index behind it.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	queue *jobQueue
	cache *Cache
	gate  *priorityGate
	start time.Time

	// runCtx cancels in-flight sweeps (graceful: in-flight cells
	// finish) when the drain deadline expires.
	runCtx    context.Context
	cancelRun context.CancelFunc
	wg        sync.WaitGroup
	draining  atomic.Bool

	jobsMu   sync.Mutex
	jobs     map[string]*job
	active   map[string]*job // requestKey -> queued/running job (single-flight)
	finished []string        // finished job ids, oldest first (retention ring)
	jobSeq   atomic.Uint64

	log    *slog.Logger
	reqSeq atomic.Uint64 // access-log request ids

	// Counters behind /statsz and /metricsz. The atomics are the write
	// targets; reg reads them (plus the queue, cache, and per-figure
	// state) at snapshot time, so both endpoints are projections of one
	// registry snapshot.
	enqueued, dedupHits, cacheHits atomic.Uint64
	completed, failed, quarantined atomic.Uint64
	simulations                    atomic.Uint64 // runner.RunBatch executions
	running                        atomic.Int64
	reg                            *metrics.Registry
	figMu                          sync.Mutex
	figs                           map[string]*figureMetrics
}

// figureMetrics is one served figure's accumulated observability state:
// job latency plus the simulator-side counters of every cell computed
// for it (cache hits add nothing — they run no simulation). lat is
// guarded by Server.figMu; the counters are atomics because cells
// complete concurrently across workers.
type figureMetrics struct {
	lat *stats.Histogram
	// skips aggregates every computed cell's per-pick scheduler skip
	// histogram (core.Report.SchedSkips); guarded by Server.figMu,
	// like lat.
	skips               *stats.Histogram
	cells               atomic.Uint64
	simEvents           atomic.Uint64
	reads, writes       atomic.Uint64
	refreshCommands     atomic.Uint64
	refreshStalledReads atomic.Uint64
}

// New builds a Server, warms its cache from the journal (if
// configured), and starts its workers.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		queue:  newJobQueue(cfg.QueueDepth),
		cache:  NewCache(cfg.CacheBytes, cfg.CacheShards),
		gate:   newPriorityGate(cfg.CellSlots),
		start:  time.Now(),
		jobs:   map[string]*job{},
		active: map[string]*job{},
		reg:    metrics.NewRegistry(),
		figs:   map[string]*figureMetrics{},
		log:    cfg.Logger,
	}
	s.runCtx, s.cancelRun = context.WithCancel(context.Background())
	s.registerMetrics()

	if cfg.JournalPath != "" {
		if err := s.warmCache(); err != nil {
			return nil, err
		}
	}

	s.mux.HandleFunc("POST /v1/jobs", s.handleEnqueue)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/timeline", s.handleJobTimeline)
	s.mux.HandleFunc("GET /v1/figures/{name}", s.handleFigure)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// reqInfo identifies one HTTP request for the access log and for
// timeline correlation; handlers read it from the request context.
type reqInfo struct {
	id    string
	start time.Time
}

type reqInfoKey struct{}

func requestInfo(ctx context.Context) reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(reqInfo)
	return ri
}

// statusWriter captures the response status for the access log while
// passing streaming flushes through (the NDJSON events endpoint).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ServeHTTP tags every request with an id, dispatches it, and writes
// one structured access-log line: method, path, status, duration, and
// cache disposition (for endpoints that set X-Cache).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ri := reqInfo{id: fmt.Sprintf("req-%06d", s.reqSeq.Add(1)), start: time.Now()}
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, ri)))
	attrs := []any{
		"request_id", ri.id,
		"method", r.Method,
		"path", r.URL.Path,
		"status", sw.status,
		"duration_ms", float64(time.Since(ri.start).Microseconds()) / 1000,
	}
	if cache := sw.Header().Get("X-Cache"); cache != "" {
		attrs = append(attrs, "cache", cache)
	}
	s.log.Info("request", attrs...)
}

// registerMetrics binds the daemon's observability state onto its
// registry: queue shape, job outcome counters, cache behaviour, and
// uptime. Per-figure metrics register lazily in figMetrics the first
// time a figure executes.
func (s *Server) registerMetrics() {
	root := s.reg.Root()

	q := root.Sub("queue")
	q.GaugeFunc("depth", func() float64 { return float64(s.queue.len()) })
	q.GaugeFunc("capacity", func() float64 { return float64(s.cfg.QueueDepth) })
	q.GaugeFunc("running", func() float64 { return float64(s.running.Load()) })
	q.GaugeFunc("workers", func() float64 { return float64(s.cfg.Workers) })
	q.GaugeFunc("cell_slots", func() float64 { return float64(s.cfg.CellSlots) })

	j := root.Sub("jobs")
	j.CounterFunc("enqueued", s.enqueued.Load)
	j.CounterFunc("deduped", s.dedupHits.Load)
	j.CounterFunc("cache_hits", s.cacheHits.Load)
	j.CounterFunc("completed", s.completed.Load)
	j.CounterFunc("failed", s.failed.Load)
	j.CounterFunc("quarantined", s.quarantined.Load)

	root.CounterFunc("simulations", s.simulations.Load)

	c := root.Sub("cache")
	c.CounterFunc("hits", func() uint64 { return s.cache.Stats().Hits })
	c.CounterFunc("misses", func() uint64 { return s.cache.Stats().Misses })
	c.CounterFunc("evictions", func() uint64 { return s.cache.Stats().Evictions })
	c.GaugeFunc("entries", func() float64 { return float64(s.cache.Stats().Entries) })
	c.GaugeFunc("bytes", func() float64 { return float64(s.cache.Stats().Bytes) })
	c.GaugeFunc("budget_bytes", func() float64 { return float64(s.cache.Stats().Budget) })
	c.GaugeFunc("hit_ratio", func() float64 { return s.cache.Stats().HitRatio })

	root.GaugeFunc("uptime_seconds", func() float64 { return time.Since(s.start).Seconds() })
}

// figMetrics returns figure's metrics bundle, creating and registering
// it on first use. Creation happens under figMu; registration happens
// after releasing it, because Snapshot reads the latency histogram
// under registry.mu then figMu, and registering under figMu would take
// those locks in the opposite order. Only the inserting goroutine
// registers, so the duplicate-name panic cannot fire.
func (s *Server) figMetrics(figure string) *figureMetrics {
	s.figMu.Lock()
	fm, ok := s.figs[figure]
	if ok {
		s.figMu.Unlock()
		return fm
	}
	fm = &figureMetrics{
		lat:   stats.NewHistogram(1, 8192),
		skips: stats.NewHistogram(1, 16),
	}
	s.figs[figure] = fm
	s.figMu.Unlock()

	scope := s.reg.Root().Subf("figure[%s]", figure)
	scope.HistogramFunc("job_latency_ms", func() stats.HistogramView {
		s.figMu.Lock()
		defer s.figMu.Unlock()
		return fm.lat.View()
	})
	scope.HistogramFunc("sched_skips_per_pick", func() stats.HistogramView {
		s.figMu.Lock()
		defer s.figMu.Unlock()
		return fm.skips.View()
	})
	scope.CounterFunc("cells", fm.cells.Load)
	scope.CounterFunc("sim_events", fm.simEvents.Load)
	// Live engine throughput: events/sec summed over this figure's
	// currently running jobs (0 when none are running). The per-job
	// breakdown is in /statsz's running_jobs.
	scope.GaugeFunc("engine_events_per_sec", func() float64 {
		var eps float64
		for _, t := range s.runningThroughput() {
			if t.Figure == figure {
				eps += t.EventsPerSec
			}
		}
		return eps
	})
	scope.CounterFunc("reads", fm.reads.Load)
	scope.CounterFunc("writes", fm.writes.Load)
	scope.CounterFunc("refresh_commands", fm.refreshCommands.Load)
	scope.CounterFunc("refresh_stalled_reads", fm.refreshStalledReads.Load)
	return fm
}

// warmCache loads the previous run's persisted results.
func (s *Server) warmCache() error {
	jnl, err := journal.Open(s.cfg.JournalPath, cacheJournalFingerprint)
	if err != nil {
		return fmt.Errorf("service: warming cache: %w", err)
	}
	jnl.Each(func(key string, raw json.RawMessage) {
		var body string
		if json.Unmarshal(raw, &body) == nil && body != "" {
			s.cache.Put(key, []byte(body))
		}
	})
	return nil
}

// persistCache rewrites the journal as an exact snapshot of the live
// cache (stale keys from earlier runs are dropped with the old file).
func (s *Server) persistCache() error {
	snap := s.cache.Snapshot()
	if err := os.Remove(s.cfg.JournalPath); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("service: persisting cache: %w", err)
	}
	if len(snap) == 0 {
		return nil
	}
	jnl, err := journal.Open(s.cfg.JournalPath, cacheJournalFingerprint)
	if err != nil {
		return fmt.Errorf("service: persisting cache: %w", err)
	}
	batch := make(map[string]any, len(snap))
	for k, body := range snap {
		batch[k] = string(body)
	}
	if err := jnl.RecordBatch(batch); err != nil {
		return fmt.Errorf("service: persisting cache: %w", err)
	}
	return nil
}

// Shutdown drains the daemon: admission closes immediately, queued and
// running jobs get until the drain deadline (or ctx) to finish, then
// in-flight sweeps are cancelled gracefully (in-flight cells complete,
// the rest are skipped). Finally the result cache is persisted to the
// journal. It returns nil when everything drained and persisted.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.close()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	timer := time.NewTimer(s.cfg.DrainTimeout)
	defer timer.Stop()
	select {
	case <-done:
	case <-ctx.Done():
		s.cancelRun()
		<-done
	case <-timer.C:
		s.cancelRun()
		<-done
	}
	s.cancelRun()

	if s.cfg.JournalPath != "" {
		return s.persistCache()
	}
	return nil
}

// worker executes jobs until the queue closes and drains.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.execute(j)
	}
}

// cellRunner is the harness hook that ties a figure sweep to this
// daemon: it counts executions, publishes per-cell progress through
// the job's event hub (reusing the runner's OnDone collector), and
// routes every cell through the global priority gate.
func (s *Server) cellRunner(j *job) harness.CellRunner {
	return func(ctx context.Context, _ string, rjobs []runner.Job[*core.Report], opts runner.Options[*core.Report]) (*runner.Batch[*core.Report], error) {
		s.simulations.Add(1)
		j.setCells(len(rjobs))
		fm := s.figMetrics(j.figure)
		orig := opts.OnDone
		opts.OnDone = func(i int, c runner.Cell, rep *core.Report) {
			if orig != nil {
				orig(i, c, rep)
			}
			if rep != nil {
				fm.cells.Add(1)
				fm.simEvents.Add(rep.Events)
				j.engineEvents.Add(rep.Events)
				fm.reads.Add(rep.Reads)
				fm.writes.Add(rep.Writes)
				fm.refreshCommands.Add(rep.RefreshCommands)
				fm.refreshStalledReads.Add(rep.RefreshStalledReads)
				s.figMu.Lock()
				fm.skips.Merge(rep.SchedSkips.View())
				s.figMu.Unlock()
			}
			j.cellDone(c)
		}
		// Each cell runs on an exclusive timeline lane for its whole
		// execution, so lane timestamps are monotone by construction;
		// the span carries the creating request's id for correlation
		// with the HTTP request span.
		for i := range rjobs {
			cell := rjobs[i].Cell
			run := rjobs[i].Run
			rjobs[i].Run = func() (*core.Report, error) {
				lane := j.acquireLane()
				t0 := j.sinceUS()
				rep, err := run()
				j.tl.Emit(timeline.Event{Ph: timeline.PhaseSpan,
					Ts: t0, Dur: j.sinceUS() - t0,
					Pid: tlPidCells, Tid: lane, Name: cell.String(),
					Arg1Name: "seed", Arg1: int64(cell.Seed),
					StrName: "req", Str: j.reqID})
				j.releaseLane(lane)
				return rep, err
			}
		}
		if s.gate != nil {
			priority := j.priority
			opts.Gate = func(ctx context.Context) (func(), error) {
				t0 := j.sinceUS()
				release, err := s.gate.acquire(ctx, priority)
				if err == nil {
					j.tl.Emit(timeline.Event{Ph: timeline.PhaseInstant,
						Ts: j.sinceUS(), Pid: tlPidService, Tid: tlTidGate,
						Name: "admitted", Arg1Name: "wait_us", Arg1: int64(j.sinceUS() - t0)})
				}
				return release, err
			}
		}
		return runner.RunBatch(ctx, rjobs, opts)
	}
}

// execute runs one job to a terminal state.
func (s *Server) execute(j *job) {
	s.running.Add(1)
	defer s.running.Add(-1)
	j.setRunning()
	t0 := time.Now()

	// A completed identical job may have filled the cache while this
	// one sat queued. (Contains first so the common just-enqueued miss
	// does not double-count in the cache stats.)
	if s.cache.Contains(j.key) {
		if body, ok := s.cache.Get(j.key); ok {
			s.cacheHits.Add(1)
			s.completed.Add(1)
			j.tl.Instant(tlPidService, tlTidJob, "cache-hit", j.sinceUS())
			s.finishJob(j, JobDone, body, nil, nil, true)
			s.observeLatency(j.figure, time.Since(t0))
			return
		}
	}
	runStart := j.sinceUS()

	p := j.params
	p.Ctx = s.runCtx
	p.CellRunner = s.cellRunner(j)

	var body []byte
	var failures []*runner.CellError
	var err error
	if j.req.Cell != nil {
		c := j.req.Cell
		var rep *core.Report
		rep, err = harness.RunCell(p, c.Mix, c.Density, c.Bundle, c.Hot)
		if err == nil {
			var raw []byte
			raw, err = json.MarshalIndent(rep, "", " ")
			body = append(raw, '\n')
		}
		var ce *runner.CellError
		if errors.As(err, &ce) {
			failures = append(failures, ce)
			err = nil
		}
	} else {
		var rs []*harness.Result
		rs, err = harness.RunFigure(j.figure, p)
		if err == nil {
			for _, r := range rs {
				failures = append(failures, r.Failed...)
			}
			body = renderResults(rs)
		}
	}

	j.tl.Emit(timeline.Event{Ph: timeline.PhaseSpan,
		Ts: runStart, Dur: j.sinceUS() - runStart,
		Pid: tlPidService, Tid: tlTidJob, Name: "run " + j.figure,
		Arg1Name: "quarantined", Arg1: int64(len(failures)),
		StrName: "req", Str: j.reqID})
	switch {
	case err != nil:
		s.failed.Add(1)
		s.finishJob(j, JobFailed, nil, nil, err, false)
	case len(failures) > 0:
		// Partial results are served but never cached: the failed
		// cells should be re-attempted by the next request.
		s.quarantined.Add(1)
		s.finishJob(j, JobQuarantined, body, failures, nil, false)
	default:
		s.cache.Put(j.key, body)
		s.completed.Add(1)
		s.finishJob(j, JobDone, body, nil, nil, false)
	}
	s.observeLatency(j.figure, time.Since(t0))
	st := j.snapshot()
	s.log.Info("job finished",
		"job", j.id, "figure", j.figure, "state", st.State,
		"cells", st.CellsDone, "duration_ms", float64(time.Since(t0).Microseconds())/1000)
}

// finishJob moves j to a terminal state and clears its single-flight
// registration, enforcing the finished-job retention bound.
func (s *Server) finishJob(j *job, state JobState, body []byte, failures []*runner.CellError, err error, cacheHit bool) {
	s.jobsMu.Lock()
	if s.active[j.key] == j {
		delete(s.active, j.key)
	}
	s.finished = append(s.finished, j.id)
	for len(s.finished) > finishedRetain {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.jobsMu.Unlock()
	j.finish(state, body, failures, err, cacheHit)
}

// observeLatency records one job execution in the figure's histogram
// (1 ms buckets up to 8192 ms, overflow beyond).
func (s *Server) observeLatency(figure string, d time.Duration) {
	fm := s.figMetrics(figure)
	s.figMu.Lock()
	defer s.figMu.Unlock()
	fm.lat.Add(uint64(d.Milliseconds()))
}

// renderResults renders figure results exactly as cmd/experiments
// prints them (fmt.Println per result), which is what makes a served
// figure byte-identical to the batch CLI's output.
func renderResults(rs []*harness.Result) []byte {
	var b bytes.Buffer
	for _, r := range rs {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// canonicalFigure normalizes the CLI target aliases so every alias of
// one computation shares a cache entry.
func canonicalFigure(name string) string {
	switch name {
	case "fig11":
		return "fig10"
	case "extensions":
		return "ext1"
	}
	return name
}

// validFigure reports whether name is a servable target (aliases
// included).
func validFigure(name string) bool {
	name = canonicalFigure(name)
	if name == "all" {
		return true
	}
	for _, n := range harness.FigureNames() {
		if n == name {
			return true
		}
	}
	return false
}

// validateCell front-loads the addressing errors RunCell would hit at
// execution time, so bad requests get a 400 instead of a failed job.
func validateCell(c *CellSpec) error {
	if c.Mix == "" || c.Density == "" || c.Bundle == "" {
		return errors.New("cell needs mix, density, and bundle")
	}
	found := false
	for _, m := range workload.Table2() {
		if m.Name == c.Mix {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown mix %q (want WL-1..WL-10)", c.Mix)
	}
	if _, err := harness.ParseDensity(c.Density); err != nil {
		return err
	}
	for _, b := range harness.BundleNames() {
		if b == c.Bundle {
			return nil
		}
	}
	return fmt.Errorf("unknown bundle %q (want one of %v)", c.Bundle, harness.BundleNames())
}

// enqueue resolves a request to a job: a coalesced in-flight job
// (single-flight), an instantly-done job on cache hit, or a freshly
// queued one. deduped reports coalescing. rid is the id of the HTTP
// request asking, recorded on a fresh job for timeline correlation.
func (s *Server) enqueue(req Request, rid string) (j *job, deduped bool, err error) {
	if s.draining.Load() {
		return nil, false, errDraining
	}
	if (req.Figure == "") == (req.Cell == nil) {
		return nil, false, errors.New("request needs exactly one of figure or cell")
	}
	figure := "cell"
	if req.Cell != nil {
		if err := validateCell(req.Cell); err != nil {
			return nil, false, err
		}
	} else {
		if !validFigure(req.Figure) {
			return nil, false, fmt.Errorf("unknown figure %q (want one of %v or all)", req.Figure, harness.FigureNames())
		}
		figure = canonicalFigure(req.Figure)
	}
	params := req.Params.apply(s.cfg.Params)
	switch params.Mode {
	case "", harness.ModeExact, harness.ModeApprox:
	default:
		return nil, false, fmt.Errorf("unknown mode %q (want %q or %q)",
			params.Mode, harness.ModeExact, harness.ModeApprox)
	}
	key := requestKey(figure, req.Cell, params)

	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	if existing := s.active[key]; existing != nil {
		existing.addDeduped()
		s.dedupHits.Add(1)
		return existing, true, nil
	}

	id := fmt.Sprintf("job-%06d", s.jobSeq.Add(1))
	j = &job{
		id:       id,
		key:      key,
		figure:   figure,
		req:      req,
		params:   params,
		priority: req.Priority,
		created:  time.Now(),
		hub:      newEventHub(),
		done:     make(chan struct{}),
		state:    JobQueued,
		tl:       newJobTimeline(id),
		reqID:    rid,
	}
	s.enqueued.Add(1)

	// Already computed: answer without a queue trip.
	if body, ok := s.cache.Get(key); ok {
		s.cacheHits.Add(1)
		j.tl.Instant(tlPidService, tlTidJob, "cache-hit", j.sinceUS())
		s.jobs[j.id] = j
		s.finished = append(s.finished, j.id)
		for len(s.finished) > finishedRetain {
			delete(s.jobs, s.finished[0])
			s.finished = s.finished[1:]
		}
		j.finish(JobDone, body, nil, nil, true)
		s.completed.Add(1)
		return j, false, nil
	}

	if err := s.queue.push(j); err != nil {
		return nil, false, err
	}
	j.tl.Instant(tlPidService, tlTidJob, "cache-miss", j.sinceUS())
	s.jobs[j.id] = j
	s.active[key] = j
	j.hub.publish(map[string]any{"event": "state", "job": j.id, "state": JobQueued})
	return j, false, nil
}

func (s *Server) getJob(id string) *job {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	return s.jobs[id]
}

// runningThroughput samples the engine throughput of every currently
// running job, ordered by job id. It backs the per-figure
// engine_events_per_sec gauge and /statsz's running_jobs list.
func (s *Server) runningThroughput() []JobThroughput {
	s.jobsMu.Lock()
	js := make([]*job, 0, len(s.active))
	for _, j := range s.active {
		js = append(js, j)
	}
	s.jobsMu.Unlock()
	var out []JobThroughput
	for _, j := range js {
		if t, ok := j.throughput(); ok {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// retryAfterSeconds estimates when queue space should free up: the
// queue's current backlog paced by the recent mean job latency across
// workers, clamped to [1s, 600s].
func (s *Server) retryAfterSeconds() int {
	meanMS := 1000.0
	s.figMu.Lock()
	var n uint64
	var sum float64
	for _, fm := range s.figs {
		n += fm.lat.Count()
		sum += fm.lat.Mean() * float64(fm.lat.Count())
	}
	s.figMu.Unlock()
	if n > 0 {
		meanMS = sum / float64(n)
	}
	secs := int(meanMS/1000*float64(s.queue.len())/float64(s.cfg.Workers)) + 1
	if secs < 1 {
		secs = 1
	}
	if secs > 600 {
		secs = 600
	}
	return secs
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

func (s *Server) writeEnqueueError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
	case errors.Is(err, errDraining):
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	}
}

// handleEnqueue is POST /v1/jobs.
func (s *Server) handleEnqueue(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	ri := requestInfo(r.Context())
	j, deduped, err := s.enqueue(req, ri.id)
	if err != nil {
		s.writeEnqueueError(w, err)
		return
	}
	recordRequestSpan(j, ri, "POST /v1/jobs", deduped)
	st := j.snapshot()
	status := http.StatusAccepted
	if deduped || st.State == JobDone {
		status = http.StatusOK
	}
	writeJSON(w, status, map[string]any{"id": j.id, "state": st.State, "deduped": deduped})
}

// recordRequestSpan puts one HTTP request onto a job's request track:
// a span from the request's start (clamped to the job's creation for
// the creating request) to now, carrying the request id. Coalesced
// requests are tagged so dedup fan-in is visible.
func recordRequestSpan(j *job, ri reqInfo, name string, deduped bool) {
	ts := j.tsUS(ri.start)
	e := timeline.Event{Ph: timeline.PhaseSpan,
		Ts: ts, Dur: j.sinceUS() - ts,
		Pid: tlPidService, Tid: tlTidRequests, Name: name,
		StrName: "req", Str: ri.id}
	if deduped {
		e.Arg1Name, e.Arg1 = "deduped", 1
	}
	j.tl.Emit(e)
}

// handleJobTimeline is GET /v1/jobs/{id}/timeline: the job's
// wall-clock trace as Chrome trace-event JSON, loadable in Perfetto.
// Available while the job runs (a consistent snapshot) and after it
// finishes.
func (s *Server) handleJobTimeline(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	j.tl.WriteTo(w)
}

// handleJobStatus is GET /v1/jobs/{id}.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleJobEvents is GET /v1/jobs/{id}/events: NDJSON progress,
// replaying history then streaming live until the job finishes.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.getJob(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	replay, events, cancel := j.hub.subscribe()
	defer cancel()
	for _, line := range replay {
		w.Write(line)
		w.Write([]byte("\n"))
	}
	if flusher != nil {
		flusher.Flush()
	}
	for {
		select {
		case line, ok := <-events:
			if !ok {
				return
			}
			w.Write(line)
			w.Write([]byte("\n"))
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleFigure is GET /v1/figures/{name}: the synchronous
// cached-or-computed path. The response body is byte-identical to what
// cmd/experiments prints for the same target and parameters.
//
// ?fidelity=approx switches to the two-tier first-response mode: the
// figure is answered from the analytical model (milliseconds, served
// with "X-Fidelity: approx"), and the exact sweep is enqueued in the
// background at batch priority so a later exact request — or a poll of
// the job id returned in X-Refsched-Exact-Job — finds it computed and
// cached. The default (and ?fidelity=exact) serves the exact result
// with "X-Fidelity: exact".
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	priority := 10 // interactive requests outrank default batch jobs
	if pstr := r.URL.Query().Get("priority"); pstr != "" {
		p, err := strconv.Atoi(pstr)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad priority"})
			return
		}
		priority = p
	}
	fidelity := r.URL.Query().Get("fidelity")
	switch fidelity {
	case "", harness.ModeExact:
		fidelity = harness.ModeExact
	case harness.ModeApprox:
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad fidelity (want exact or approx)"})
		return
	}
	ri := requestInfo(r.Context())
	req := Request{Figure: name, Priority: priority}
	if fidelity == harness.ModeApprox {
		mode := harness.ModeApprox
		req.Params = &ParamOverrides{Mode: &mode}
		// Kick the exact sweep off behind the fast answer. Enqueue
		// failures (queue full, draining) only cost the warm-up: the
		// approx response below still succeeds.
		if ej, _, err := s.enqueue(Request{Figure: name}, ri.id); err == nil {
			w.Header().Set("X-Refsched-Exact-Job", ej.id)
		}
	}
	j, deduped, err := s.enqueue(req, ri.id)
	if err != nil {
		s.writeEnqueueError(w, err)
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// Client gave up; the job still completes and warms the cache.
		return
	}
	// Emitted after the wait, so the request span brackets the whole
	// synchronous compute-or-cached exchange.
	recordRequestSpan(j, ri, "GET /v1/figures/"+name, deduped)
	state, body, jerr := j.result()
	st := j.snapshot()
	switch state {
	case JobDone:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Fidelity", fidelity)
		if st.CacheHit {
			w.Header().Set("X-Cache", "hit")
		} else {
			w.Header().Set("X-Cache", "miss")
		}
		w.Write(body)
	case JobQuarantined:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Fidelity", fidelity)
		w.Header().Set("X-Refsched-Quarantined", strconv.Itoa(len(st.Quarantined)))
		w.Write(body)
	default:
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": jerr.Error()})
	}
}

// Health is the /healthz payload.
type Health struct {
	Status  string         `json:"status"`
	Version buildinfo.Info `json:"version"`
	UptimeS float64        `json:"uptime_s"`
	Queued  int            `json:"queued"`
	Running int64          `json:"running"`
}

func (s *Server) health() Health {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	return Health{
		Status:  status,
		Version: buildinfo.Get(),
		UptimeS: time.Since(s.start).Seconds(),
		Queued:  s.queue.len(),
		Running: s.running.Load(),
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	code := http.StatusOK
	if h.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// LatencyStats summarizes one figure's job latencies for /statsz.
type LatencyStats struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  uint64  `json:"p50_ms"`
	P90MS  uint64  `json:"p90_ms"`
	P99MS  uint64  `json:"p99_ms"`
	MaxMS  uint64  `json:"max_ms"`
}

// Stats is the /statsz payload.
type Stats struct {
	UptimeS float64 `json:"uptime_s"`
	Queue   struct {
		Depth     int   `json:"depth"`
		Capacity  int   `json:"capacity"`
		Running   int64 `json:"running"`
		Workers   int   `json:"workers"`
		CellSlots int   `json:"cell_slots"`
	} `json:"queue"`
	Jobs struct {
		Enqueued    uint64 `json:"enqueued"`
		Deduped     uint64 `json:"deduped"`
		CacheHits   uint64 `json:"cache_hits"`
		Completed   uint64 `json:"completed"`
		Failed      uint64 `json:"failed"`
		Quarantined uint64 `json:"quarantined"`
	} `json:"jobs"`
	Simulations uint64                  `json:"simulations"`
	Cache       CacheStats              `json:"cache"`
	Figures     map[string]LatencyStats `json:"figures"`
	// RunningJobs samples each mid-run job's engine throughput at
	// snapshot time (events executed by completed cells over wall time);
	// empty when the daemon is idle.
	RunningJobs []JobThroughput `json:"running_jobs,omitempty"`
}

// MetricsSnapshot reads the daemon's full registry — the same data
// /metricsz exposes, in structured form.
func (s *Server) MetricsSnapshot() metrics.Snapshot { return s.reg.Snapshot() }

// StatsSnapshot collects the live serving metrics (also used directly
// by tests, bypassing HTTP). It is a projection of one registry
// snapshot — the /statsz and /metricsz payloads are two renderings of
// the same read — plus the ephemeral per-running-job throughput
// samples, which have no cumulative registry representation.
func (s *Server) StatsSnapshot() Stats {
	st := projectStats(s.reg.Snapshot())
	st.RunningJobs = s.runningThroughput()
	return st
}

// projectStats shapes a registry snapshot into the /statsz payload.
func projectStats(snap metrics.Snapshot) Stats {
	var st Stats
	st.UptimeS = snap.Gauge("uptime_seconds")
	st.Queue.Depth = int(snap.Gauge("queue.depth"))
	st.Queue.Capacity = int(snap.Gauge("queue.capacity"))
	st.Queue.Running = int64(snap.Gauge("queue.running"))
	st.Queue.Workers = int(snap.Gauge("queue.workers"))
	st.Queue.CellSlots = int(snap.Gauge("queue.cell_slots"))
	st.Jobs.Enqueued = snap.Counter("jobs.enqueued")
	st.Jobs.Deduped = snap.Counter("jobs.deduped")
	st.Jobs.CacheHits = snap.Counter("jobs.cache_hits")
	st.Jobs.Completed = snap.Counter("jobs.completed")
	st.Jobs.Failed = snap.Counter("jobs.failed")
	st.Jobs.Quarantined = snap.Counter("jobs.quarantined")
	st.Simulations = snap.Counter("simulations")
	st.Cache = CacheStats{
		Hits:      snap.Counter("cache.hits"),
		Misses:    snap.Counter("cache.misses"),
		Evictions: snap.Counter("cache.evictions"),
		Entries:   int(snap.Gauge("cache.entries")),
		Bytes:     int64(snap.Gauge("cache.bytes")),
		Budget:    int64(snap.Gauge("cache.budget_bytes")),
		HitRatio:  snap.Gauge("cache.hit_ratio"),
	}
	st.Figures = map[string]LatencyStats{}
	for name, h := range snap.Histograms {
		fig, ok := figureOfLatency(name)
		if !ok {
			continue
		}
		st.Figures[fig] = LatencyStats{
			Count:  h.Count,
			MeanMS: h.Mean(),
			P50MS:  h.Percentile(50),
			P90MS:  h.Percentile(90),
			P99MS:  h.Percentile(99),
			MaxMS:  h.Max,
		}
	}
	return st
}

// figureOfLatency extracts the figure name from a
// "figure[<name>].job_latency_ms" metric name.
func figureOfLatency(name string) (string, bool) {
	const pre, suf = "figure[", "].job_latency_ms"
	if strings.HasPrefix(name, pre) && strings.HasSuffix(name, suf) && len(name) > len(pre)+len(suf) {
		return name[len(pre) : len(name)-len(suf)], true
	}
	return "", false
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// handleMetricsz is GET /metricsz: the registry in Prometheus text
// exposition format, for scraping. Counter families carry a refschedd_
// namespace; indexed scopes (per-figure state) become labels, e.g.
// refschedd_figure_sim_events{figure="fig10"}.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.WritePrometheus(w, s.reg.Snapshot(), "refschedd")
}
