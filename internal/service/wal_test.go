package service

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestJobWALRecovery is the crash-consistency contract end to end: a
// ledger holding acknowledged-but-unfinished accepts (plus a torn tail
// from a mid-write kill) is replayed on startup under the original job
// ids, those jobs run to completion, fresh ids continue past the
// recovered sequence, and a clean shutdown compacts the ledger to
// empty.
func TestJobWALRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")

	// A previous daemon's ledger: two acknowledged jobs, no done
	// records (it was killed before finishing them)...
	w, pending, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh ledger pending = %d", len(pending))
	}
	req7, req8 := cellReq(7), cellReq(8)
	if err := w.appendAccept(walRecord{ID: "job-000007", Tenant: "t9", Req: &req7}); err != nil {
		t.Fatal(err)
	}
	if err := w.appendAccept(walRecord{ID: "job-000008", Req: &req8}); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	// ...plus a torn final line from the kill itself.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"accept","id":"job-9`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The restarted daemon replays both accepts and drops the torn line.
	s, ts := newTestServer(t, func(c *Config) {
		c.WALPath = path
		c.Workers = 2
	})
	if s.wal.recovered != 2 || s.wal.torn != 1 {
		t.Fatalf("recovered/torn = %d/%d, want 2/1", s.wal.recovered, s.wal.torn)
	}
	st7 := waitJobState(t, ts, "job-000007", JobDone)
	if st7.Tenant != "t9" {
		t.Fatalf("recovered job tenant = %q, want t9", st7.Tenant)
	}
	waitJobState(t, ts, "job-000008", JobDone)

	// Fresh ids continue past the recovered sequence instead of
	// colliding with it.
	resp, out := postJob(t, ts, cellReq(9))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fresh post status = %d", resp.StatusCode)
	}
	if id := out["id"].(string); id != "job-000009" {
		t.Fatalf("fresh job id = %q, want job-000009", id)
	}
	waitJobState(t, ts, "job-000009", JobDone)

	// A clean drain leaves nothing pending in the compacted ledger.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	pending, torn, err := parseWALFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 || torn != 0 {
		t.Fatalf("after clean shutdown pending/torn = %d/%d, want 0/0", len(pending), torn)
	}
}
