package service

import (
	"container/heap"
	"context"
	"sync"
	"sync/atomic"
)

// priorityGate is the global simulation-cell budget shared by every
// job the daemon runs concurrently. Each job's sweep acquires one slot
// per cell through runner.Options.Gate; when all slots are busy,
// waiters are admitted highest-priority-first (FIFO within a
// priority), so a high-priority job enqueued behind a bulk sweep
// starts stealing slots as soon as individual cells finish rather than
// waiting for the whole sweep.
type priorityGate struct {
	mu      sync.Mutex
	free    int
	seq     uint64
	waiters gateHeap
}

type gateWaiter struct {
	priority int
	seq      uint64
	ready    chan struct{}
	// claimed flips exactly once: either release hands this waiter the
	// slot, or the waiter abandons (ctx ended). The loser of the race
	// must give the slot back.
	claimed atomic.Bool
	index   int
}

func newPriorityGate(slots int) *priorityGate {
	if slots <= 0 {
		return nil
	}
	return &priorityGate{free: slots}
}

// acquire blocks until a slot is free (or ctx ends) and returns its
// release function.
func (g *priorityGate) acquire(ctx context.Context, priority int) (func(), error) {
	g.mu.Lock()
	if g.free > 0 {
		g.free--
		g.mu.Unlock()
		return g.release, nil
	}
	w := &gateWaiter{priority: priority, seq: g.seq, ready: make(chan struct{})}
	g.seq++
	heap.Push(&g.waiters, w)
	g.mu.Unlock()

	select {
	case <-w.ready:
		return g.release, nil
	case <-ctx.Done():
		if !w.claimed.CompareAndSwap(false, true) {
			// release already handed us the slot; pass it on.
			g.release()
		}
		return nil, ctx.Err()
	}
}

// release returns a slot, handing it to the best live waiter if any.
func (g *priorityGate) release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.waiters.Len() > 0 {
		w := heap.Pop(&g.waiters).(*gateWaiter)
		if w.claimed.CompareAndSwap(false, true) {
			close(w.ready)
			return
		}
		// Abandoned waiter (ctx ended); try the next one.
	}
	g.free++
}

// gateHeap orders waiters by priority (higher first), then FIFO.
type gateHeap []*gateWaiter

func (h gateHeap) Len() int { return len(h) }
func (h gateHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h gateHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *gateHeap) Push(x any) {
	w := x.(*gateWaiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *gateHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}
