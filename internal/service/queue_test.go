package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func testJob(id string, priority int) *job {
	return &job{id: id, priority: priority, hub: newEventHub(), done: make(chan struct{})}
}

// TestQueuePriorityOrder: higher priority pops first, FIFO within a
// priority level.
func TestQueuePriorityOrder(t *testing.T) {
	q := newJobQueue(10)
	for _, j := range []*job{
		testJob("low-1", 0), testJob("high-1", 5), testJob("low-2", 0), testJob("high-2", 5),
	} {
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for i := 0; i < 4; i++ {
		j, ok := q.pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		got = append(got, j.id)
	}
	want := []string{"high-1", "high-2", "low-1", "low-2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}

// TestQueueAdmissionControl: pushes beyond depth fail with
// errQueueFull; pops reopen admission.
func TestQueueAdmissionControl(t *testing.T) {
	q := newJobQueue(2)
	if err := q.push(testJob("a", 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(testJob("b", 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(testJob("c", 0)); !errors.Is(err, errQueueFull) {
		t.Fatalf("third push = %v, want errQueueFull", err)
	}
	q.pop()
	if err := q.push(testJob("c", 0)); err != nil {
		t.Fatalf("push after pop = %v", err)
	}
}

// TestQueueCloseDrains: close stops admission immediately but queued
// jobs still drain; pop reports exhaustion only after the backlog.
func TestQueueCloseDrains(t *testing.T) {
	q := newJobQueue(4)
	q.push(testJob("a", 0))
	q.push(testJob("b", 1))
	q.close()
	if err := q.push(testJob("c", 0)); !errors.Is(err, errDraining) {
		t.Fatalf("push after close = %v, want errDraining", err)
	}
	if j, ok := q.pop(); !ok || j.id != "b" {
		t.Fatalf("first drained job = %v, %v", j, ok)
	}
	if j, ok := q.pop(); !ok || j.id != "a" {
		t.Fatalf("second drained job = %v, %v", j, ok)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop after drain should report closed")
	}
}

// TestQueuePopBlocksUntilPush: pop waits for work.
func TestQueuePopBlocksUntilPush(t *testing.T) {
	q := newJobQueue(1)
	got := make(chan string, 1)
	go func() {
		j, ok := q.pop()
		if ok {
			got <- j.id
		}
	}()
	time.Sleep(10 * time.Millisecond)
	q.push(testJob("late", 0))
	select {
	case id := <-got:
		if id != "late" {
			t.Fatalf("popped %q", id)
		}
	case <-time.After(time.Second):
		t.Fatal("pop never woke up")
	}
}

// TestPriorityGateAdmitsHighestFirst: with one slot held and two
// waiters queued, releasing admits the higher-priority waiter.
func TestPriorityGateAdmitsHighestFirst(t *testing.T) {
	g := newPriorityGate(1)
	release, err := g.acquire(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}

	order := make(chan int, 2)
	var wg sync.WaitGroup
	start := func(priority int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := g.acquire(context.Background(), priority)
			if err != nil {
				t.Error(err)
				return
			}
			order <- priority
			r()
		}()
	}
	start(1)
	waitForWaiters(t, g, 1)
	start(7)
	waitForWaiters(t, g, 2)

	release()
	wg.Wait()
	if first, second := <-order, <-order; first != 7 || second != 1 {
		t.Fatalf("admission order = %d,%d, want 7,1", first, second)
	}
}

// TestPriorityGateAbandonedWaiter: a waiter whose ctx ends must not
// strand the slot it was about to receive.
func TestPriorityGateAbandonedWaiter(t *testing.T) {
	g := newPriorityGate(1)
	release, err := g.acquire(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := g.acquire(ctx, 5)
		errCh <- err
	}()
	waitForWaiters(t, g, 1)
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned acquire = %v", err)
	}
	release()
	// The slot must be recoverable by a fresh waiter.
	done := make(chan struct{})
	go func() {
		r, err := g.acquire(context.Background(), 0)
		if err == nil {
			r()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("slot stranded by abandoned waiter")
	}
}

func waitForWaiters(t *testing.T, g *priorityGate, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		g.mu.Lock()
		w := g.waiters.Len()
		g.mu.Unlock()
		if w >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d waiters", n)
		}
		time.Sleep(time.Millisecond)
	}
}
