package service

import (
	"sync"
	"sync/atomic"
	"time"
)

// BrownoutConfig tunes graceful degradation under queue pressure. The
// zero value selects the documented defaults; set Disabled to opt out.
type BrownoutConfig struct {
	// HighFrac engages brownout when queued jobs reach this fraction of
	// QueueDepth (default 0.75); LowFrac disengages once depth falls
	// back to this fraction (default 0.25). The gap is the hysteresis
	// band that keeps the mode from flapping at the threshold.
	HighFrac float64
	LowFrac  float64
	// MinHold is the minimum time brownout stays engaged once entered
	// (default 1s), the other half of the anti-flap guarantee.
	MinHold time.Duration
	// ShedBelowPriority: while engaged, fresh exact jobs with priority
	// strictly below this are rejected (429, reason "brownout") instead
	// of queued (default 0 — negative-priority batch work sheds,
	// default and interactive work does not).
	ShedBelowPriority int
	// Disabled turns the controller off entirely.
	Disabled bool
}

func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.HighFrac <= 0 {
		c.HighFrac = 0.75
	}
	if c.LowFrac <= 0 {
		c.LowFrac = 0.25
	}
	if c.LowFrac > c.HighFrac {
		c.LowFrac = c.HighFrac
	}
	if c.MinHold <= 0 {
		c.MinHold = time.Second
	}
	return c
}

// brownout is the hysteresis controller behind graceful degradation.
// While engaged, default-fidelity figure GETs are answered from the
// analytical approx tier (marked as degraded) and low-priority exact
// work is shed, trading fidelity for bounded latency instead of letting
// the queue grow until admission fails for everyone.
//
// State transitions happen in evaluate, which is called on every
// enqueue and from the resilience loop's periodic tick (so the mode
// also recovers when the overload ends and no further requests arrive
// to trigger a re-evaluation).
type brownout struct {
	cfg BrownoutConfig
	now func() time.Time // injectable clock for deterministic tests

	mu      sync.Mutex
	engaged bool
	since   time.Time

	engagements atomic.Uint64 // times the mode engaged
	degraded    atomic.Uint64 // figure GETs downgraded to approx
	shed        atomic.Uint64 // low-priority exact jobs rejected
}

func newBrownout(cfg BrownoutConfig) *brownout {
	return &brownout{cfg: cfg.withDefaults(), now: time.Now}
}

// evaluate feeds the controller the current queue shape and returns
// whether brownout is (now) engaged.
func (b *brownout) evaluate(depth, capacity int) bool {
	if b.cfg.Disabled || capacity <= 0 {
		return false
	}
	frac := float64(depth) / float64(capacity)
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case !b.engaged && frac >= b.cfg.HighFrac:
		b.engaged = true
		b.since = b.now()
		b.engagements.Add(1)
	case b.engaged && frac <= b.cfg.LowFrac && b.now().Sub(b.since) >= b.cfg.MinHold:
		b.engaged = false
	}
	return b.engaged
}

// isEngaged reads the current mode without re-evaluating it.
func (b *brownout) isEngaged() bool {
	if b.cfg.Disabled {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.engaged
}

// shouldShed reports whether a fresh exact job at priority should be
// rejected under the current mode. Approx jobs always pass — they are
// the degraded mode's own currency and cost milliseconds, not cells.
func (b *brownout) shouldShed(priority int, approxMode bool) bool {
	if approxMode || !b.isEngaged() {
		return false
	}
	return priority < b.cfg.ShedBelowPriority
}
