package service

import (
	"encoding/json"
	"testing"
	"time"

	"refsched/internal/harness"
)

// TestPreemptAndResume is the preemption drill: with one worker busy on
// a low-priority exact cell, a high-priority arrival displaces it at a
// checkpoint boundary; the displaced job requeues with its mid-cell
// snapshot, runs again after the arrival, resumes from the snapshot
// (not from scratch), and its final result is byte-identical to an
// uninterrupted run.
func TestPreemptAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a multi-second victim cell twice (reference + preempted)")
	}
	s, ts := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Watchdog = WatchdogConfig{Disabled: true}
	})

	// The victim runs at a lower time scale than the test preset so it
	// lasts seconds, leaving a wide window for the preemption to land at
	// one of its checkpoint boundaries.
	victimScale := uint64(256)

	// The reference: the victim cell run uninterrupted, rendered the way
	// execute renders single-cell bodies.
	ref := tinyParams()
	ref.Scale = victimScale
	ref.Parallelism = 1
	rep, err := harness.RunCell(ref, "WL-6", "8Gb", "allbank", false)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	expected := append(raw, '\n')

	_, out := postJob(t, ts, Request{
		Cell:   &CellSpec{Mix: "WL-6", Density: "8Gb", Bundle: "allbank"},
		Params: &ParamOverrides{Scale: &victimScale},
	})
	victimID := out["id"].(string)
	victim := s.getJob(victimID)
	if victim == nil {
		t.Fatal("victim job not found")
	}
	if victim.snaps == nil {
		t.Fatal("exact job has no snapshot store")
	}

	// Wait until the victim is mid-cell — running and past at least one
	// checkpoint boundary — so the preemption lands where a snapshot can
	// be taken.
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, running := victim.progress()
		if running && victim.boundaries.Load() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never observed mid-cell (state %s, %d boundaries)",
				victim.snapshot().State, victim.boundaries.Load())
		}
		time.Sleep(time.Millisecond)
	}

	_, out = postJob(t, ts, Request{
		Cell:     &CellSpec{Mix: "WL-6", Density: "32Gb", Bundle: "codesign"},
		Priority: 10,
	})
	urgentID := out["id"].(string)

	// The urgent job finishes first (the preempted one waits behind it),
	// then the victim resumes and completes.
	waitJobState(t, ts, urgentID, JobDone)
	st := waitJobState(t, ts, victimID, JobDone)

	if st.Preemptions < 1 {
		t.Fatalf("victim reports %d preemptions, want >= 1", st.Preemptions)
	}
	state, body, jerr := victim.result()
	if state != JobDone || jerr != nil {
		t.Fatalf("victim finished %s (%v)", state, jerr)
	}
	if string(body) != string(expected) {
		t.Fatalf("resumed result differs from uninterrupted run:\n got %d bytes\nwant %d bytes", len(body), len(expected))
	}

	stats := s.StatsSnapshot()
	if stats.Resilience.Preemptions < 1 {
		t.Fatalf("stats report %d preemptions, want >= 1", stats.Resilience.Preemptions)
	}
	if stats.Resilience.PreemptResumes < 1 {
		t.Fatalf("stats report %d preempt resumes, want >= 1 (the victim recomputed instead of resuming)", stats.Resilience.PreemptResumes)
	}
}
