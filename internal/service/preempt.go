package service

import (
	"errors"
	"sync"
	"sync/atomic"

	"refsched/internal/core"
)

// errPreempted is the sentinel a preempted run aborts with. The
// harness's boundary callback returns it after the cell's snapshot is
// safely in the job's store; execute classifies it into JobPreempted
// and requeues the job instead of failing it.
var errPreempted = errors.New("service: job preempted at checkpoint boundary")

// cellStore is the daemon's harness.SnapshotStore: one per job,
// holding mid-cell snapshots and finished-cell reports across
// preemptions. Worker goroutines of one sweep access it concurrently
// (Parallelism > 1), so everything is mutex-guarded.
//
// LoadSnapshot has take semantics — the entry is removed as it is
// handed out. core.Restore overlays layer state by reference in
// places, so a snapshot that has been resumed once is live simulation
// state and must never restore a second time. If the resumed run is
// preempted again, its boundary callback saves a fresh, further-along
// snapshot.
type cellStore struct {
	mu      sync.Mutex
	snaps   map[string]*core.SystemState
	reports map[string]*core.Report
	// resumes is the server's preempt.resumes counter: bumped each time
	// a snapshot is handed back out — a cell that continued from its
	// checkpoint instead of recomputing. Nil-safe for tests.
	resumes *atomic.Uint64
}

func newCellStore(resumes *atomic.Uint64) *cellStore {
	return &cellStore{
		snaps:   make(map[string]*core.SystemState),
		reports: make(map[string]*core.Report),
		resumes: resumes,
	}
}

func (c *cellStore) LoadSnapshot(key string) *core.SystemState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.snaps[key]
	if !ok {
		return nil
	}
	delete(c.snaps, key)
	if c.resumes != nil {
		c.resumes.Add(1)
	}
	return st
}

func (c *cellStore) SaveSnapshot(key string, st *core.SystemState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snaps[key] = st
}

func (c *cellStore) DropSnapshot(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.snaps, key)
}

// takeAny removes and returns one stored snapshot, whichever it is —
// the remote-cell executor's store holds at most one cell, and the
// shipping path does not know the harness's key. Nil when empty.
func (c *cellStore) takeAny() *core.SystemState {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, st := range c.snaps {
		delete(c.snaps, key)
		return st
	}
	return nil
}

func (c *cellStore) LoadReport(key string) *core.Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reports[key]
}

func (c *cellStore) SaveReport(key string, rep *core.Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reports[key] = rep
}
