package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"refsched/internal/chaos"
)

// TestEventHubHistoryBound: the replay buffer is bounded; a subscriber
// connecting after the bound was crossed sees an explicit truncation
// marker, not a silently incomplete history.
func TestEventHubHistoryBound(t *testing.T) {
	h := newEventHub()
	const over = 50
	for i := 0; i < historyLimit+over; i++ {
		h.publish(map[string]any{"event": "cell", "n": i})
	}
	replay, _, cancel := h.subscribe()
	defer cancel()
	if len(replay) != historyLimit+1 {
		t.Fatalf("replay length = %d, want %d history + 1 marker", len(replay), historyLimit)
	}
	var marker struct {
		Event   string `json:"event"`
		Dropped uint64 `json:"dropped"`
	}
	if err := json.Unmarshal(replay[0], &marker); err != nil {
		t.Fatal(err)
	}
	if marker.Event != "truncated" || marker.Dropped != over {
		t.Fatalf("first replay line = %s, want truncated marker with dropped=%d", replay[0], over)
	}
	// The retained lines are the newest ones.
	var last struct {
		N int `json:"n"`
	}
	if err := json.Unmarshal(replay[len(replay)-1], &last); err != nil {
		t.Fatal(err)
	}
	if last.N != historyLimit+over-1 {
		t.Fatalf("last retained event n = %d, want %d", last.N, historyLimit+over-1)
	}
}

// TestEventHubSlowSubscriberDropsWithMarker: a subscriber whose buffer
// fills loses events (counted on the shared drop counter) and learns
// the gap size in-band before the stream resumes.
func TestEventHubSlowSubscriberDropsWithMarker(t *testing.T) {
	h := newEventHub()
	var drops atomic.Uint64
	h.drops = &drops

	_, events, cancel := h.subscribe()
	defer cancel()

	const over = 5
	for i := 0; i < subscriberBuffer+over; i++ {
		h.publish(map[string]any{"event": "cell", "n": i})
	}
	if got := drops.Load(); got != over {
		t.Fatalf("drop counter = %d, want %d", got, over)
	}
	// Make room, then publish once more: the gap marker must precede
	// the new line.
	<-events
	<-events
	h.publish(map[string]any{"event": "cell", "n": subscriberBuffer + over})

	var seen []string
	for i := 0; i < subscriberBuffer; i++ { // drain the rest of the buffer
		seen = append(seen, string(<-events))
	}
	wantMarker := fmt.Sprintf(`{"event":"dropped","n":%d}`, over)
	found := false
	for i, line := range seen {
		if line == wantMarker {
			found = true
			if i+1 >= len(seen) {
				t.Fatal("dropped marker not followed by the resumed event")
			}
		}
	}
	if !found {
		t.Fatalf("no %s marker in stream after drops", wantMarker)
	}
}

// TestEventHubCancelReleasesSubscriber: cancel detaches exactly one
// subscription (idempotently) and close detaches the rest.
func TestEventHubCancelReleasesSubscriber(t *testing.T) {
	h := newEventHub()
	_, ch1, cancel1 := h.subscribe()
	_, _, cancel2 := h.subscribe()
	if got := h.subscribers(); got != 2 {
		t.Fatalf("subscribers = %d, want 2", got)
	}
	cancel1()
	cancel1() // idempotent
	if got := h.subscribers(); got != 1 {
		t.Fatalf("after cancel, subscribers = %d, want 1", got)
	}
	if _, ok := <-ch1; ok {
		t.Fatal("cancelled subscriber's channel should be closed")
	}
	h.close()
	if got := h.subscribers(); got != 0 {
		t.Fatalf("after close, subscribers = %d, want 0", got)
	}
	cancel2() // safe after close

	// Subscribing after close yields history and a closed channel.
	_, ch3, cancel3 := h.subscribe()
	if _, ok := <-ch3; ok {
		t.Fatal("post-close subscription channel should be closed")
	}
	cancel3()
}

// TestEventsClientDisconnectReleasesSubscriber: an NDJSON streaming
// client that goes away mid-job must release its hub subscription —
// the stalling-reader resource-leak case. The job is pinned mid-run
// with a deterministic chaos stall so the stream is live when the
// client vanishes.
func TestEventsClientDisconnectReleasesSubscriber(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Params.Chaos = chaos.New(chaos.Config{Seed: 1, Frac: 1, Mode: chaos.ModeStall, Stall: 1500 * time.Millisecond})
	})

	_, out := postJob(t, ts, Request{Cell: &CellSpec{Mix: "WL-6", Density: "8Gb", Bundle: "allbank"}})
	id, _ := out["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", out)
	}
	j := s.getJob(id)
	if j == nil {
		t.Fatal("job not addressable")
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d", resp.StatusCode)
	}
	// Prove the stream is attached and live, then vanish.
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	if got := j.hub.subscribers(); got != 1 {
		t.Fatalf("subscribers while attached = %d, want 1", got)
	}
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for j.hub.subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription not released after client disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitJobState(t, ts, id, JobDone)
}
