package service

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"refsched/internal/harness"
	"refsched/internal/runner"
	"refsched/internal/timeline"
)

// Service-timeline track numbering (wall-clock traces; disjoint from
// the simulator convention in internal/timeline). One process groups
// the HTTP/job bookkeeping tracks, another the simulation cell lanes.
const (
	tlPidService  = 1
	tlTidRequests = 0 // HTTP request spans, correlated by request id
	tlTidJob      = 1 // queued/run spans, cache and dedup instants
	tlTidGate     = 2 // cell-gate admission instants
	tlPidCells    = 2 // one thread per concurrent cell lane
)

// newJobTimeline builds a job's always-on recorder. Timestamps are
// wall-clock microseconds since the job was created. The ring is
// deliberately small (events beyond it drop oldest-first): a job's
// event count is a handful of request/job spans plus two per simulated
// cell, and up to finishedRetain finished jobs stay resident.
func newJobTimeline(id string) *timeline.Recorder {
	rec := timeline.NewRecorder(nil, 1024)
	rec.SetProcessName(tlPidService, "refschedd")
	rec.SetThreadName(tlPidService, tlTidRequests, "requests")
	rec.SetThreadName(tlPidService, tlTidJob, "job "+id)
	rec.SetThreadName(tlPidService, tlTidGate, "cell gate")
	rec.SetProcessName(tlPidCells, "simulation cells")
	return rec
}

// Request is the body of POST /v1/jobs: exactly one of Figure (a CLI
// target such as "fig10") or Cell (one fully addressed simulation
// cell), plus an optional priority and parameter overrides applied on
// top of the daemon's base parameters.
type Request struct {
	Figure   string          `json:"figure,omitempty"`
	Cell     *CellSpec       `json:"cell,omitempty"`
	Priority int             `json:"priority,omitempty"`
	Params   *ParamOverrides `json:"params,omitempty"`
	// DeadlineMS bounds the job's total lifetime — queue wait plus
	// execution — in milliseconds from admission. A job whose deadline
	// passes while queued is shed without burning a worker; one whose
	// deadline passes mid-run is hard-cancelled at the next engine
	// checkpoint. Either way it lands in JobExpired. Zero means no
	// deadline. The deadline is not part of the cache key, and a
	// request coalesced onto an in-flight job keeps that job's
	// deadline, not its own.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// CellSpec addresses one simulation cell the way the figures name
// them: Table 2 mix, device density, policy bundle, and retention
// temperature regime.
type CellSpec struct {
	Mix     string `json:"mix"`
	Density string `json:"density"`
	Bundle  string `json:"bundle"`
	Hot     bool   `json:"hot,omitempty"`
}

// ParamOverrides selectively overrides the daemon's base simulation
// parameters for one request. Every field here changes the simulated
// result (or which cells a figure sweeps), so all of them feed the
// cache key.
type ParamOverrides struct {
	Scale          *uint64  `json:"scale,omitempty"`
	FootprintScale *float64 `json:"footprint_scale,omitempty"`
	WarmupWindows  *int     `json:"warmup_windows,omitempty"`
	MeasureWindows *int     `json:"measure_windows,omitempty"`
	Seed           *uint64  `json:"seed,omitempty"`
	Mixes          []string `json:"mixes,omitempty"`
	SweepMixes     []string `json:"sweep_mixes,omitempty"`
	// Mode selects the simulation tier ("exact" or "approx"; see
	// harness.Params.Mode). Approx results are cached under their own
	// fingerprint, never satisfying an exact request.
	Mode *string `json:"mode,omitempty"`
}

// apply overlays o on base. The daemon-side knobs (parallelism,
// journaling, chaos, verbosity) are deliberately not overridable.
func (o *ParamOverrides) apply(base harness.Params) harness.Params {
	if o == nil {
		return base
	}
	if o.Scale != nil {
		base.Scale = *o.Scale
	}
	if o.FootprintScale != nil {
		base.FootprintScale = *o.FootprintScale
	}
	if o.WarmupWindows != nil {
		base.WarmupWindows = *o.WarmupWindows
	}
	if o.MeasureWindows != nil {
		base.MeasureWindows = *o.MeasureWindows
	}
	if o.Seed != nil {
		base.Seed = *o.Seed
	}
	if o.Mixes != nil {
		base.Mixes = o.Mixes
	}
	if o.SweepMixes != nil {
		base.SweepMixes = o.SweepMixes
	}
	if o.Mode != nil {
		base.Mode = *o.Mode
	}
	return base
}

// requestKey is the cache/dedup fingerprint of a request: the harness
// parameter fingerprint (every knob that changes a cell's simulated
// result) extended with what the request addresses — which figure and
// which mix selection (they change which cells a figure renders), or
// which single cell.
func requestKey(figure string, cell *CellSpec, p harness.Params) string {
	if cell != nil {
		return fmt.Sprintf("cell|%s|%s|%s|hot=%t|%s",
			cell.Mix, cell.Density, cell.Bundle, cell.Hot, p.Fingerprint())
	}
	return fmt.Sprintf("fig|%s|mixes=%s|sweep=%s|%s",
		figure, strings.Join(p.Mixes, ","), strings.Join(p.SweepMixes, ","), p.Fingerprint())
}

// JobState is the lifecycle of a job as GET /v1/jobs/{id} reports it.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	// JobDone: the result is available (and, for clean runs, cached).
	JobDone JobState = "done"
	// JobQuarantined: the sweep completed but some cells failed; the
	// rendered result includes the failure-summary table and the typed
	// per-cell detail is in the status payload.
	JobQuarantined JobState = "quarantined"
	// JobFailed: the job produced no result (bad request resolved at
	// run time, cancellation, a watchdog kill, or a fail-fast/
	// sweep-level error).
	JobFailed JobState = "failed"
	// JobExpired: the request's deadline elapsed before the job could
	// produce a result — either while it sat queued (shed without
	// running) or mid-execution (hard-cancelled at an engine
	// checkpoint). Expired is a terminal answer, not a loss: the job
	// stays addressable and reports why it produced nothing.
	JobExpired JobState = "expired"
	// JobPreempted: a higher-priority arrival displaced this running
	// job at a checkpoint boundary. Not terminal — the job is back on
	// the queue with its mid-cell snapshots held, and its next run
	// resumes from them instead of recomputing.
	JobPreempted JobState = "preempted"
)

// CellFailure is the wire form of a quarantined cell's typed error
// detail.
type CellFailure struct {
	Cell     string `json:"cell"`
	Seed     uint64 `json:"seed"`
	Attempts int    `json:"attempts"`
	Kind     string `json:"kind"` // "error" or "panic"
	Detail   string `json:"detail"`
}

func cellFailure(ce *runner.CellError) CellFailure {
	f := CellFailure{
		Cell:     ce.Cell.String(),
		Seed:     ce.Cell.Seed,
		Attempts: ce.Attempts,
		Kind:     "error",
	}
	if ce.Panicked() {
		f.Kind = "panic"
		f.Detail = fmt.Sprint(ce.PanicValue)
	} else if ce.Err != nil {
		f.Detail = ce.Err.Error()
	}
	return f
}

// JobStatus is the GET /v1/jobs/{id} payload.
type JobStatus struct {
	ID          string        `json:"id"`
	State       JobState      `json:"state"`
	Figure      string        `json:"figure,omitempty"`
	Cell        *CellSpec     `json:"cell,omitempty"`
	Priority    int           `json:"priority"`
	Tenant      string        `json:"tenant,omitempty"`
	DeadlineAt  *time.Time    `json:"deadline_at,omitempty"`
	CreatedAt   time.Time     `json:"created_at"`
	StartedAt   *time.Time    `json:"started_at,omitempty"`
	FinishedAt  *time.Time    `json:"finished_at,omitempty"`
	CacheHit    bool          `json:"cache_hit,omitempty"`
	Deduped     int           `json:"deduped,omitempty"`
	CellsDone   int           `json:"cells_done"`
	CellsTotal  int           `json:"cells_total"`
	Preemptions int           `json:"preemptions,omitempty"`
	ResultBytes int           `json:"result_bytes,omitempty"`
	Error       string        `json:"error,omitempty"`
	Quarantined []CellFailure `json:"quarantined,omitempty"`
}

// job is one unit of work on the daemon's queue. Identical concurrent
// requests (same requestKey) coalesce onto one job — the single-flight
// guarantee — so a job may be answering many waiters.
type job struct {
	id       string
	key      string
	figure   string // canonical figure name, or "cell"
	req      Request
	params   harness.Params
	priority int
	seq      uint64 // queue tiebreak: FIFO within a priority
	created  time.Time
	tenant   string
	// deadline is the absolute admission deadline (zero: none). It is
	// fixed at enqueue (or preserved across a WAL-replayed restart), so
	// a recovered job keeps the wall-clock promise made to its client.
	deadline time.Time

	hub  *eventHub
	done chan struct{} // closed exactly once, when the job finishes

	// tl is the job's wall-clock timeline (GET /v1/jobs/{id}/timeline):
	// request spans, queue/run spans, gate admissions, and per-cell
	// simulation spans, correlated by request id. reqID is the id of
	// the HTTP request that created the job.
	tl    *timeline.Recorder
	reqID string

	// engineEvents accumulates the discrete events executed by the
	// job's completed cells (core.Report.Events), the numerator of the
	// per-running-job engine-throughput gauge. Approx-mode cells
	// contribute zero — the analytical model runs no events.
	engineEvents atomic.Uint64

	// boundaries counts checkpoint boundaries crossed by the job's
	// cells (each one a point where a preemption request can land).
	// Exposed so tests and the watchdog can see a job is preemptible.
	boundaries atomic.Uint64

	// snaps holds the job's mid-cell snapshots and finished-cell
	// reports across preemptions. Allocated once at job creation and
	// kept through requeues, so a job preempted twice still resumes
	// from its furthest checkpoint. Nil for approx-mode jobs.
	snaps *cellStore

	mu         sync.Mutex
	state      JobState
	started    time.Time
	finished   time.Time
	// softCancel/hardCancel abort the in-flight run (armed by execute
	// for the duration of the run). Soft lets in-flight cells finish;
	// hard aborts them at the next engine checkpoint and interrupts
	// injected chaos stalls. killErr records why the watchdog (or any
	// future killer) fired; it wins the post-run state classification.
	softCancel func()
	hardCancel func()
	armGen     uint64
	killErr    error
	// preempt is the pending preemption request: set by requestPreempt,
	// observed by the run's boundary callback, cleared when the job is
	// requeued. preemptions counts how many times the job was displaced.
	preempt     bool
	preemptions int
	// tenantHeld marks that this job owns one slot of its tenant's
	// in-flight budget, released exactly once when the job finishes.
	tenantHeld bool
	// walAccepted marks that this job has a durable accept record in
	// the job WAL, so finishing must append the matching done record.
	walAccepted bool
	err         error
	failures   []*runner.CellError
	body       []byte
	cacheHit   bool
	deduped    int
	cellsDone  int
	cellsTotal int
	// lanes allocates cell-span tracks: a cell holds one lane for its
	// whole run, so per-lane timestamps are naturally monotone.
	lanes []bool
}

// sinceUS is the job-timeline clock: wall microseconds since creation.
func (j *job) sinceUS() uint64 {
	if d := time.Since(j.created); d > 0 {
		return uint64(d.Microseconds())
	}
	return 0
}

// tsUS converts an absolute time to the job-timeline clock, clamping
// times before creation (the creating HTTP request starts first) to 0.
func (j *job) tsUS(t time.Time) uint64 {
	if d := t.Sub(j.created); d > 0 {
		return uint64(d.Microseconds())
	}
	return 0
}

// acquireLane claims the lowest free cell lane, naming it on first use.
func (j *job) acquireLane() int32 {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, used := range j.lanes {
		if !used {
			j.lanes[i] = true
			return int32(i)
		}
	}
	j.lanes = append(j.lanes, true)
	lane := int32(len(j.lanes) - 1)
	j.tl.SetThreadName(tlPidCells, lane, fmt.Sprintf("lane%d", lane))
	return lane
}

func (j *job) releaseLane(lane int32) {
	j.mu.Lock()
	j.lanes[lane] = false
	j.mu.Unlock()
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()
	// The queue-wait span covers creation to start of execution.
	j.tl.Emit(timeline.Event{Ph: timeline.PhaseSpan, Ts: 0, Dur: j.sinceUS(),
		Pid: tlPidService, Tid: tlTidJob, Name: "queued",
		StrName: "req", Str: j.reqID})
	j.hub.publish(map[string]any{"event": "state", "job": j.id, "state": JobRunning})
}

// setCells is called by the injected cell runner once the sweep's grid
// is enumerated.
func (j *job) setCells(total int) {
	j.mu.Lock()
	j.cellsTotal += total
	j.mu.Unlock()
}

// throughput reports the job's engine event throughput while it runs:
// events executed by completed cells over wall time since execution
// started. ok is false unless the job is mid-run.
func (j *job) throughput() (t JobThroughput, ok bool) {
	j.mu.Lock()
	state, started := j.state, j.started
	done, total := j.cellsDone, j.cellsTotal
	j.mu.Unlock()
	if state != JobRunning || started.IsZero() {
		return JobThroughput{}, false
	}
	secs := time.Since(started).Seconds()
	if secs <= 0 {
		return JobThroughput{}, false
	}
	ev := j.engineEvents.Load()
	return JobThroughput{
		ID: j.id, Figure: j.figure,
		Events: ev, EventsPerSec: float64(ev) / secs,
		CellsDone: done, CellsTotal: total,
	}, true
}

// JobThroughput is one running job's engine-throughput sample, exposed
// per job in /statsz and aggregated per figure in /metricsz.
type JobThroughput struct {
	ID           string  `json:"id"`
	Figure       string  `json:"figure"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	CellsDone    int     `json:"cells_done"`
	CellsTotal   int     `json:"cells_total"`
}

// cellDone publishes one cell completion (called from the runner's
// single collector goroutine).
func (j *job) cellDone(c runner.Cell) {
	j.mu.Lock()
	j.cellsDone++
	done, total := j.cellsDone, j.cellsTotal
	j.mu.Unlock()
	j.hub.publish(map[string]any{
		"event": "cell", "job": j.id, "cell": c.String(), "done": done, "total": total,
	})
}

// arm installs the run's cancellation hooks and returns a generation
// token; disarm removes them when the run returns (so a late watchdog
// scan cannot cancel a context that has already been recycled). The
// token makes disarm a no-op when a newer run has re-armed meanwhile —
// a preempted job is back on the queue before its old run finishes
// unwinding, and the unwinding run must not strip the hooks the next
// one installed.
func (j *job) arm(soft, hard func()) uint64 {
	j.mu.Lock()
	j.armGen++
	gen := j.armGen
	j.softCancel, j.hardCancel = soft, hard
	j.mu.Unlock()
	return gen
}

func (j *job) disarm(gen uint64) {
	j.mu.Lock()
	if j.armGen == gen {
		j.softCancel, j.hardCancel = nil, nil
	}
	j.mu.Unlock()
}

// kill aborts a running job: it records why and fires both cancellation
// paths (hard first, so stalled cells abort instead of finishing
// gracefully). It reports whether this call was the one that killed the
// job — false if it was not running or already being killed.
func (j *job) kill(err error) bool {
	j.mu.Lock()
	if j.state != JobRunning || j.killErr != nil {
		j.mu.Unlock()
		return false
	}
	j.killErr = err
	soft, hard := j.softCancel, j.hardCancel
	j.mu.Unlock()
	if hard != nil {
		hard()
	}
	if soft != nil {
		soft()
	}
	return true
}

// requestPreempt asks a running job to yield at its next checkpoint
// boundary. It fires only the soft cancel: in-flight cells reach their
// next boundary, snapshot into the job's store, and abort with the
// preemption sentinel — a hard cancel would skip the snapshot and turn
// the preemption into a recompute. Returns whether this call posted
// the request (false if the job is not running, is being killed, or a
// preemption is already pending).
func (j *job) requestPreempt() bool {
	j.mu.Lock()
	if j.state != JobRunning || j.killErr != nil || j.preempt {
		j.mu.Unlock()
		return false
	}
	j.preempt = true
	j.preemptions++
	soft := j.softCancel
	j.mu.Unlock()
	if soft != nil {
		soft()
	}
	return true
}

// preemptRequested reports whether a preemption request is pending.
func (j *job) preemptRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.preempt
}

// killed returns the kill reason, nil if the job was never killed.
func (j *job) killed() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.killErr
}

// pastDeadline reports whether the job has a deadline and it has
// elapsed.
func (j *job) pastDeadline() bool {
	return !j.deadline.IsZero() && !time.Now().Before(j.deadline)
}

// progress returns the job's watchdog signature — a value that changes
// whenever the engine-throughput gauge advances (events executed by
// completed cells, plus the cell completion count) — and whether the
// job is currently running. A signature frozen across the watchdog's
// stall bound is the definition of a stalled job.
func (j *job) progress() (sig uint64, running bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobRunning {
		return 0, false
	}
	return j.engineEvents.Load()*1_000_003 + uint64(j.cellsDone), true
}

// addDeduped counts one more request coalesced onto this job.
func (j *job) addDeduped() {
	j.mu.Lock()
	j.deduped++
	j.mu.Unlock()
}

// finish moves the job to a terminal state, publishes the final event,
// closes the hub, and wakes all waiters.
func (j *job) finish(state JobState, body []byte, failures []*runner.CellError, err error, cacheHit bool) {
	j.mu.Lock()
	j.state = state
	j.finished = time.Now()
	j.body = body
	j.failures = failures
	j.err = err
	j.cacheHit = cacheHit
	j.mu.Unlock()

	ev := map[string]any{"event": "done", "job": j.id, "state": state}
	if err != nil {
		ev["error"] = err.Error()
	}
	if len(failures) > 0 {
		ev["quarantined"] = len(failures)
	}
	if cacheHit {
		ev["cache"] = "hit"
	}
	j.hub.publish(ev)
	j.hub.close()
	close(j.done)
}

// snapshot renders the status payload.
func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.id,
		State:      j.state,
		Priority:   j.priority,
		Tenant:     j.tenant,
		CreatedAt:  j.created,
		CacheHit:   j.cacheHit,
		Deduped:    j.deduped,
		CellsDone:  j.cellsDone,
		CellsTotal: j.cellsTotal,
	}
	st.Preemptions = j.preemptions
	if j.req.Cell != nil {
		st.Cell = j.req.Cell
	} else {
		st.Figure = j.figure
	}
	if !j.deadline.IsZero() {
		t := j.deadline
		st.DeadlineAt = &t
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	st.ResultBytes = len(j.body)
	if j.err != nil {
		st.Error = j.err.Error()
	}
	for _, ce := range j.failures {
		st.Quarantined = append(st.Quarantined, cellFailure(ce))
	}
	return st
}

// result returns the terminal state and body (valid after done closes).
func (j *job) result() (JobState, []byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.body, j.err
}
