package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"refsched/internal/chaos"
	"refsched/internal/harness"
	"refsched/internal/stats"
)

func cellReq(seed uint64) Request {
	return Request{
		Cell:   &CellSpec{Mix: "WL-6", Density: "8Gb", Bundle: "allbank"},
		Params: &ParamOverrides{Seed: &seed},
	}
}

// postJobHdr is postJob with extra request headers (tenant tests).
func postJobHdr(t *testing.T, ts *httptest.Server, req Request, hdr map[string]string) (*http.Response, map[string]any) {
	t.Helper()
	raw, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

// TestRetryAfterEstimator pins the backoff estimate at its edges: no
// latency history yet, a small backlog, and a fully saturated backlog
// that must clamp rather than tell clients to come back in days.
func TestRetryAfterEstimator(t *testing.T) {
	s := &Server{queue: newJobQueue(128), cfg: Config{Workers: 2}, figs: map[string]*figureMetrics{}}
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("empty history, empty queue: retry = %d, want 1", got)
	}
	for i := 0; i < 4; i++ {
		if err := s.queue.push(&job{done: make(chan struct{})}); err != nil {
			t.Fatal(err)
		}
	}
	// No history: assume 1s per job, 4 queued across 2 workers → 2s + 1.
	if got := s.retryAfterSeconds(); got != 3 {
		t.Fatalf("empty history, 4 queued: retry = %d, want 3", got)
	}
	// Full saturation: absurdly slow jobs and a deep backlog must clamp
	// at the 600s ceiling.
	fm := &figureMetrics{lat: stats.NewHistogram(1, 64), skips: stats.NewHistogram(1, 64)}
	fm.lat.Add(8_000_000) // one 8000s observation, in ms
	s.figs["fig10"] = fm
	s.cfg.Workers = 1
	for i := 0; i < 96; i++ {
		if err := s.queue.push(&job{done: make(chan struct{})}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.retryAfterSeconds(); got != 600 {
		t.Fatalf("saturated: retry = %d, want clamp 600", got)
	}
}

// TestApproxCoversAllFigures locks the invariant brownout relies on:
// every individually addressable figure target can be served from the
// analytical approx tier. If a new figure breaks this, degraded mode
// would 500 exactly when the daemon is overloaded.
func TestApproxCoversAllFigures(t *testing.T) {
	for _, name := range harness.FigureNames() {
		p := tinyParams()
		p.Mode = harness.ModeApprox
		res, err := harness.RunFigure(name, p)
		if err != nil {
			t.Errorf("%s: approx run failed: %v", name, err)
			continue
		}
		if len(res) == 0 || res[0] == nil {
			t.Errorf("%s: approx run returned no results", name)
		}
	}
}

// TestDeadlineShedsQueuedJob: a job whose deadline passes while it
// waits in the queue is shed as JobExpired before burning a worker.
func TestDeadlineShedsQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Params.Chaos = chaos.New(chaos.Config{Seed: 1, Frac: 1, Mode: chaos.ModeStall, Stall: 400 * time.Millisecond})
	})

	respA, outA := postJob(t, ts, cellReq(1)) // occupies the only worker
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("job A status = %d", respA.StatusCode)
	}
	reqB := cellReq(2)
	reqB.DeadlineMS = 50
	respB, outB := postJob(t, ts, reqB)
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("job B status = %d", respB.StatusCode)
	}

	stB := waitJobState(t, ts, outB["id"].(string), JobExpired)
	if stB.DeadlineAt == nil {
		t.Fatal("expired job status should carry its deadline")
	}
	if !strings.Contains(stB.Error, "queue") {
		t.Fatalf("expired-in-queue error = %q, want mention of queue wait", stB.Error)
	}
	waitJobState(t, ts, outA["id"].(string), JobDone)

	_, body := get(t, ts, "/statsz")
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Jobs.Expired < 1 {
		t.Fatalf("jobs.expired = %d, want >= 1", st.Jobs.Expired)
	}
}

// TestDeadlineExpiresMidRun: a deadline that fires mid-run must
// hard-cancel the engine promptly (through the cooperative checkpoint
// and the interruptible chaos stall), not wait out the work.
func TestDeadlineExpiresMidRun(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Params.Chaos = chaos.New(chaos.Config{Seed: 1, Frac: 1, Mode: chaos.ModeStall, Stall: 10 * time.Second})
	})

	req := cellReq(1)
	req.DeadlineMS = 300
	_, out := postJob(t, ts, req)
	t0 := time.Now()
	st := waitJobState(t, ts, out["id"].(string), JobExpired)
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("mid-run expiry took %s; the 10s stall was not interrupted", elapsed)
	}
	if !strings.Contains(st.Error, "deadline expired") {
		t.Fatalf("error = %q, want deadline expiry", st.Error)
	}
}

// TestDeadlineValidation: negative deadlines are a client error.
func TestDeadlineValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	req := cellReq(1)
	req.DeadlineMS = -5
	resp, _ := postJob(t, ts, req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative deadline status = %d, want 400", resp.StatusCode)
	}
}

// TestTenantRateLimit: per-tenant token buckets reject the over-budget
// tenant with a structured 429 while other tenants keep flowing.
func TestTenantRateLimit(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.Tenant = TenantConfig{Rate: 0.5, Burst: 2}
	})

	// The second request may dedup or hit cache (200 rather than 202);
	// either way it spends a rate token.
	for i := 0; i < 2; i++ {
		if resp, out := postJob(t, ts, cellReq(1)); resp.StatusCode >= http.StatusBadRequest {
			t.Fatalf("request %d status = %d (%v)", i, resp.StatusCode, out)
		}
	}
	resp, out := postJob(t, ts, cellReq(1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request status = %d, want 429", resp.StatusCode)
	}
	if out["reason"] != "rate" || out["tenant"] != "default" {
		t.Fatalf("429 body = %v, want reason=rate tenant=default", out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	// A different tenant has its own bucket.
	if resp, out := postJobHdr(t, ts, cellReq(1), map[string]string{tenantHeader: "other"}); resp.StatusCode >= http.StatusBadRequest {
		t.Fatalf("other-tenant status = %d (%v)", resp.StatusCode, out)
	}
}

// TestTenantInFlightLimit: the in-flight cap bounds how much queue a
// single tenant can hold, releases on completion, and is per-tenant.
func TestTenantInFlightLimit(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Tenant = TenantConfig{MaxInFlight: 1}
		c.Params.Chaos = chaos.New(chaos.Config{Seed: 1, Frac: 1, Mode: chaos.ModeStall, Stall: 300 * time.Millisecond})
	})

	respA, outA := postJob(t, ts, cellReq(1))
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("job A status = %d", respA.StatusCode)
	}
	respB, outB := postJob(t, ts, cellReq(2))
	if respB.StatusCode != http.StatusTooManyRequests || outB["reason"] != "in_flight" {
		t.Fatalf("job B = %d %v, want 429 reason=in_flight", respB.StatusCode, outB)
	}
	// Coalescing onto A's in-flight job costs no slot.
	if resp, _ := postJob(t, ts, cellReq(1)); resp.StatusCode >= http.StatusBadRequest {
		t.Fatalf("dedup onto job A status = %d", resp.StatusCode)
	}
	// Another tenant is unaffected.
	if resp, out := postJobHdr(t, ts, cellReq(3), map[string]string{tenantHeader: "other"}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other-tenant status = %d (%v)", resp.StatusCode, out)
	}

	waitJobState(t, ts, outA["id"].(string), JobDone)
	// The slot frees when A finishes (release is just after the status
	// flips, so poll briefly).
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, out := postJob(t, ts, cellReq(4))
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never released: %d %v", resp.StatusCode, out)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBrownoutHysteresis drives the controller with an injected clock:
// engage at HighFrac, hold through MinHold even once depth drops, stay
// put inside the band, disengage only below LowFrac after the hold.
func TestBrownoutHysteresis(t *testing.T) {
	b := newBrownout(BrownoutConfig{HighFrac: 0.75, LowFrac: 0.25, MinHold: time.Second})
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }

	if b.evaluate(2, 4) {
		t.Fatal("engaged below HighFrac")
	}
	if !b.evaluate(3, 4) {
		t.Fatal("did not engage at HighFrac")
	}
	if !b.evaluate(1, 4) {
		t.Fatal("disengaged before MinHold elapsed")
	}
	now = now.Add(2 * time.Second)
	if !b.evaluate(2, 4) {
		t.Fatal("disengaged inside the hysteresis band")
	}
	if b.evaluate(1, 4) {
		t.Fatal("did not disengage below LowFrac after MinHold")
	}
	if b.evaluate(2, 4) {
		t.Fatal("re-engaged below HighFrac")
	}
	if got := b.engagements.Load(); got != 1 {
		t.Fatalf("engagements = %d, want 1", got)
	}
}

// TestBrownoutDegradesAndRecovers is the end-to-end brownout story:
// queue pressure engages the mode, low-priority exact work is shed
// with reason "brownout", a default-fidelity figure GET is served
// degraded from the approx tier, and once the queue drains the
// resilience loop disengages the mode on its own.
func TestBrownoutDegradesAndRecovers(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 8
		c.Brownout = BrownoutConfig{HighFrac: 0.5, LowFrac: 0.25, MinHold: 10 * time.Millisecond}
		c.Watchdog = WatchdogConfig{Interval: 20 * time.Millisecond}
		c.Params.Chaos = chaos.New(chaos.Config{Seed: 1, Frac: 1, Mode: chaos.ModeStall, Stall: 200 * time.Millisecond})
	})

	// Fillers sit at priority 0 — above the shed line — so the POST
	// whose own evaluate() crosses HighFrac is still admitted.
	var ids []string
	for i := uint64(1); i <= 6; i++ {
		resp, out := postJob(t, ts, cellReq(i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("filler %d status = %d (%v)", i, resp.StatusCode, out)
		}
		ids = append(ids, out["id"].(string))
	}
	if !s.brown.isEngaged() {
		t.Fatal("brownout not engaged at 4/8 queued")
	}

	// Fresh low-priority exact work is shed while engaged.
	shedReq := cellReq(7)
	shedReq.Priority = -1
	resp, out := postJob(t, ts, shedReq)
	if resp.StatusCode != http.StatusTooManyRequests || out["reason"] != "brownout" {
		t.Fatalf("shed candidate = %d %v, want 429 reason=brownout", resp.StatusCode, out)
	}

	// A default-fidelity figure GET is answered degraded from the
	// approx tier instead of joining the queue for an exact sweep.
	figResp, figBody := get(t, ts, "/v1/figures/fig10")
	if figResp.StatusCode != http.StatusOK {
		t.Fatalf("degraded figure GET = %d: %s", figResp.StatusCode, figBody)
	}
	if got := figResp.Header.Get("X-Fidelity"); got != harness.ModeApprox {
		t.Fatalf("X-Fidelity = %q, want approx", got)
	}
	if figResp.Header.Get("Degraded") != "true" {
		t.Fatal("degraded response missing Degraded: true")
	}
	if figResp.Header.Get("X-Refsched-Exact-Job") != "" {
		t.Fatal("degraded GET must not enqueue background exact work")
	}
	if len(figBody) == 0 {
		t.Fatal("degraded figure GET returned empty body")
	}

	// Drain, then the resilience loop disengages without any enqueue.
	for _, id := range ids {
		waitJobState(t, ts, id, JobDone)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.brown.isEngaged() {
		if time.Now().After(deadline) {
			t.Fatal("brownout never disengaged after drain")
		}
		time.Sleep(20 * time.Millisecond)
	}

	_, body := get(t, ts, "/statsz")
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Resilience.BrownoutEngagements < 1 || st.Resilience.ShedBrownout < 1 || st.Resilience.BrownoutDegraded < 1 {
		t.Fatalf("resilience counters = %+v, want engagements/shed/degraded all >= 1", st.Resilience)
	}
	if st.Resilience.BrownoutEngaged {
		t.Fatal("statsz still reports brownout engaged")
	}
}

// TestWatchdogKillsStalledJob: a job whose engine stops making
// progress (deterministic 30s chaos stall) is killed within the stall
// bound plus a few scan intervals, not after the stall ends.
func TestWatchdogKillsStalledJob(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Watchdog = WatchdogConfig{Interval: 25 * time.Millisecond, Stall: 150 * time.Millisecond}
		c.Params.Chaos = chaos.New(chaos.Config{Seed: 1, Frac: 1, Mode: chaos.ModeStall, Stall: 30 * time.Second})
	})

	_, out := postJob(t, ts, cellReq(1))
	t0 := time.Now()
	st := waitJobState(t, ts, out["id"].(string), JobFailed)
	if elapsed := time.Since(t0); elapsed > 10*time.Second {
		t.Fatalf("watchdog kill took %s; the 30s stall was not interrupted", elapsed)
	}
	if !strings.Contains(st.Error, "watchdog") {
		t.Fatalf("error = %q, want watchdog kill", st.Error)
	}

	_, body := get(t, ts, "/statsz")
	var sz Stats
	if err := json.Unmarshal(body, &sz); err != nil {
		t.Fatal(err)
	}
	if sz.Resilience.WatchdogKills < 1 {
		t.Fatalf("watchdog_kills = %d, want >= 1", sz.Resilience.WatchdogKills)
	}
}
