package service

import (
	"container/list"
	"sync"
)

// Cache is the daemon's sharded, byte-budget-bounded LRU over rendered
// results. Keys are request fingerprints (see requestKey); values are
// the exact response bodies served to clients, so a hit costs a map
// lookup and zero rendering. Sharding keeps the lock a render-sized
// value is inserted under from serializing unrelated lookups; each
// shard owns budget/shards bytes and runs strict LRU within it.
//
// Values are shared, not copied: callers must treat a returned slice
// as immutable.
type Cache struct {
	shards []*cacheShard
}

// CacheStats is the aggregate the /statsz endpoint reports.
type CacheStats struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	Entries   int     `json:"entries"`
	Bytes     int64   `json:"bytes"`
	Budget    int64   `json:"budget_bytes"`
	HitRatio  float64 `json:"hit_ratio"`
}

type cacheShard struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	order   *list.List               // front = most recent
	entries map[string]*list.Element // key -> element whose Value is *cacheEntry

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewCache builds a cache bounded to budget bytes spread over nshards
// LRU shards (values <= 0 select the defaults: 64 MiB, 8 shards).
// Tests that need strict global LRU ordering use nshards = 1.
func NewCache(budget int64, nshards int) *Cache {
	if budget <= 0 {
		budget = 64 << 20
	}
	if nshards <= 0 {
		nshards = 8
	}
	c := &Cache{shards: make([]*cacheShard, nshards)}
	per := budget / int64(nshards)
	if per <= 0 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			budget:  per,
			order:   list.New(),
			entries: map[string]*list.Element{},
		}
	}
	return c
}

// shard picks the shard for key (FNV-1a).
func (c *Cache) shard(key string) *cacheShard {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return c.shards[h%uint64(len(c.shards))]
}

func entrySize(key string, body []byte) int64 {
	return int64(len(key) + len(body))
}

// Get returns the cached body for key and whether it was present,
// promoting a hit to most-recently-used.
func (c *Cache) Get(key string) ([]byte, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Contains reports presence without perturbing LRU order or counters.
func (c *Cache) Contains(key string) bool {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Put stores body under key, evicting least-recently-used entries in
// the key's shard until the shard is back under budget. A body larger
// than the whole shard budget is not cached at all — evicting the
// entire shard to hold one giant entry would trade many future hits
// for one.
func (c *Cache) Put(key string, body []byte) {
	s := c.shard(key)
	size := entrySize(key, body)
	s.mu.Lock()
	defer s.mu.Unlock()
	if size > s.budget {
		return
	}
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		s.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		s.order.MoveToFront(el)
	} else {
		s.entries[key] = s.order.PushFront(&cacheEntry{key: key, body: body})
		s.bytes += size
	}
	for s.bytes > s.budget {
		back := s.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		s.order.Remove(back)
		delete(s.entries, e.key)
		s.bytes -= entrySize(e.key, e.body)
		s.evictions++
	}
}

// Snapshot returns every live entry, the input to the shutdown path's
// journal persistence. Bodies are shared (immutable by contract).
func (c *Cache) Snapshot() map[string][]byte {
	out := map[string][]byte{}
	for _, s := range c.shards {
		s.mu.Lock()
		for k, el := range s.entries {
			out[k] = el.Value.(*cacheEntry).body
		}
		s.mu.Unlock()
	}
	return out
}

// Stats aggregates counters across shards.
func (c *Cache) Stats() CacheStats {
	var st CacheStats
	for _, s := range c.shards {
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Entries += len(s.entries)
		st.Bytes += s.bytes
		st.Budget += s.budget
		s.mu.Unlock()
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRatio = float64(st.Hits) / float64(total)
	}
	return st
}
