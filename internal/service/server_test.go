package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"refsched/internal/chaos"
	"refsched/internal/core"
	"refsched/internal/harness"
	"refsched/internal/metrics"
)

// tinyParams mirrors the harness tests' fast preset: one small mix at
// aggressive scale, so a full fig10 grid is 9 cells and runs in
// fractions of a second.
func tinyParams() harness.Params {
	return harness.Params{
		Scale:          4096,
		FootprintScale: 0.01,
		WarmupWindows:  1,
		MeasureWindows: 1,
		Mixes:          []string{"WL-6"},
		Seed:           1,
	}
}

func newTestServer(t *testing.T, mod func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{Params: tinyParams(), DrainTimeout: 30 * time.Second}
	if mod != nil {
		mod(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

var (
	fig10Once     sync.Once
	fig10Expected []byte
)

// expectedFig10 renders fig10 exactly as cmd/experiments would: the
// serial reference output the daemon must match byte for byte.
func expectedFig10(t *testing.T) []byte {
	t.Helper()
	fig10Once.Do(func() {
		p := tinyParams()
		p.Parallelism = 1
		rs, err := harness.RunFigure("fig10", p)
		if err != nil {
			t.Fatal(err)
		}
		fig10Expected = renderResults(rs)
	})
	return fig10Expected
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func postJob(t *testing.T, ts *httptest.Server, req Request) (*http.Response, map[string]any) {
	t.Helper()
	raw, _ := json.Marshal(req)
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func waitJobState(t *testing.T, ts *httptest.Server, id string, want ...JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, body := get(t, ts, "/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job status %d: %s", resp.StatusCode, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		if st.State == JobFailed {
			t.Fatalf("job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %v", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFigureByteIdenticalOnMissAndHit is the headline acceptance: the
// served fig10 body equals the batch CLI's serial render on a cache
// miss, and again (without recomputation) on the hit.
func TestFigureByteIdenticalOnMissAndHit(t *testing.T) {
	want := expectedFig10(t)
	s, ts := newTestServer(t, nil)

	resp, body := get(t, ts, "/v1/figures/fig10")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("miss status = %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first request X-Cache = %q", resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("cache-miss body differs from serial CLI render:\ngot:\n%s\nwant:\n%s", body, want)
	}

	resp2, body2 := get(t, ts, "/v1/figures/fig10")
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second request X-Cache = %q", resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body2, want) {
		t.Fatal("cache-hit body differs from serial CLI render")
	}
	if got := s.simulations.Load(); got != 1 {
		t.Fatalf("simulations = %d, want 1 (hit must not recompute)", got)
	}

	// fig11 is an alias of the fig10 pair and must share its cache entry.
	resp3, body3 := get(t, ts, "/v1/figures/fig11")
	if resp3.Header.Get("X-Cache") != "hit" || !bytes.Equal(body3, want) {
		t.Fatal("fig11 alias should hit fig10's cache entry")
	}
}

// TestSingleFlightDedup is the satellite acceptance: 50 goroutines
// requesting the same uncached figure must observe exactly one
// underlying RunBatch execution and byte-identical bodies.
func TestSingleFlightDedup(t *testing.T) {
	want := expectedFig10(t)
	s, ts := newTestServer(t, func(c *Config) { c.Workers = 4 })

	const n = 50
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := ts.Client().Get(ts.URL + "/v1/figures/fig10")
			if err != nil {
				t.Error(err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()

	for i, b := range bodies {
		if !bytes.Equal(b, want) {
			t.Fatalf("goroutine %d saw a different body", i)
		}
	}
	if got := s.simulations.Load(); got != 1 {
		t.Fatalf("simulations = %d, want exactly 1 for 50 identical requests", got)
	}

	// The dedup shows up in /statsz.
	st := s.StatsSnapshot()
	if st.Jobs.Deduped+st.Jobs.CacheHits < n-1 {
		t.Fatalf("deduped=%d cache_hits=%d, expected %d requests collapsed",
			st.Jobs.Deduped, st.Jobs.CacheHits, n-1)
	}
}

// TestJobLifecycleAndEvents: enqueue, poll to completion, then replay
// the NDJSON event stream and check the full progress history.
func TestJobLifecycleAndEvents(t *testing.T) {
	_, ts := newTestServer(t, nil)

	resp, out := postJob(t, ts, Request{Figure: "fig10", Priority: 3})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("enqueue status = %d (%v)", resp.StatusCode, out)
	}
	id, _ := out["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", out)
	}

	st := waitJobState(t, ts, id, JobDone)
	if st.CellsTotal != 9 || st.CellsDone != 9 {
		t.Fatalf("cells = %d/%d, want 9/9", st.CellsDone, st.CellsTotal)
	}
	if st.Priority != 3 || st.Figure != "fig10" {
		t.Fatalf("status = %+v", st)
	}
	if st.StartedAt == nil || st.FinishedAt == nil {
		t.Fatal("timestamps missing on finished job")
	}

	eresp, ebody := get(t, ts, "/v1/jobs/"+id+"/events")
	if ct := eresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(ebody)), "\n")
	var cells, dones int
	var final map[string]any
	for _, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch ev["event"] {
		case "cell":
			cells++
			if ev["total"].(float64) != 9 {
				t.Fatalf("cell event total = %v", ev["total"])
			}
		case "done":
			dones++
			final = ev
		}
	}
	if cells != 9 || dones != 1 {
		t.Fatalf("event stream had %d cell and %d done events:\n%s", cells, dones, ebody)
	}
	if final["state"] != string(JobDone) {
		t.Fatalf("final event = %v", final)
	}

	// Unknown job id → 404.
	r404, _ := get(t, ts, "/v1/jobs/job-999999")
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d", r404.StatusCode)
	}
}

// TestCellJob: a single-cell request runs through the same pipeline
// and returns the report as JSON.
func TestCellJob(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, out := postJob(t, ts, Request{
		Cell: &CellSpec{Mix: "WL-6", Density: "32Gb", Bundle: "codesign"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("enqueue status = %d (%v)", resp.StatusCode, out)
	}
	id := out["id"].(string)
	st := waitJobState(t, ts, id, JobDone)
	if st.Cell == nil || st.Cell.Bundle != "codesign" {
		t.Fatalf("status cell = %+v", st.Cell)
	}

	// The same cell again is a cache hit answered without queueing.
	resp2, out2 := postJob(t, ts, Request{
		Cell: &CellSpec{Mix: "WL-6", Density: "32Gb", Bundle: "codesign"},
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat enqueue status = %d", resp2.StatusCode)
	}
	st2 := waitJobState(t, ts, out2["id"].(string), JobDone)
	if !st2.CacheHit {
		t.Fatal("repeat cell job should be a cache hit")
	}
	if st2.ResultBytes == 0 {
		t.Fatal("cell job has no result bytes")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []Request{
		{},                                   // neither figure nor cell
		{Figure: "fig10", Cell: &CellSpec{}}, // both
		{Figure: "fig99"},                    // unknown figure
		{Cell: &CellSpec{Mix: "WL-99", Density: "32Gb", Bundle: "codesign"}}, // unknown mix
		{Cell: &CellSpec{Mix: "WL-6", Density: "48Gb", Bundle: "codesign"}},  // unknown density
		{Cell: &CellSpec{Mix: "WL-6", Density: "32Gb", Bundle: "nope"}},      // unknown bundle
	}
	for i, req := range cases {
		resp, out := postJob(t, ts, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status = %d (%v), want 400", i, resp.StatusCode, out)
		}
	}
	resp, body := get(t, ts, "/v1/figures/fig99")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown figure GET = %d: %s", resp.StatusCode, body)
	}
}

// TestAdmissionControl: with the worker wedged on the cell gate, jobs
// beyond the queue depth are rejected with 429 + Retry-After.
func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 1
		c.CellSlots = 1
	})

	// Wedge: hold the only cell slot so the running job can't advance.
	release, err := s.gate.acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	unwedged := false
	defer func() {
		if !unwedged {
			release()
		}
	}()

	respA, outA := postJob(t, ts, Request{Figure: "fig10", Params: &ParamOverrides{Seed: u64(11)}})
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("job A status = %d", respA.StatusCode)
	}
	idA := outA["id"].(string)
	waitJobState(t, ts, idA, JobRunning)

	respB, _ := postJob(t, ts, Request{Figure: "fig10", Params: &ParamOverrides{Seed: u64(12)}})
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("job B status = %d, want queued 202", respB.StatusCode)
	}

	respC, outC := postJob(t, ts, Request{Figure: "fig10", Params: &ParamOverrides{Seed: u64(13)}})
	if respC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job C status = %d (%v), want 429", respC.StatusCode, outC)
	}
	if ra := respC.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}

	// A deduplicate of the running job is still accepted: it costs no
	// queue slot.
	respDup, outDup := postJob(t, ts, Request{Figure: "fig10", Params: &ParamOverrides{Seed: u64(11)}})
	if respDup.StatusCode != http.StatusOK || outDup["deduped"] != true {
		t.Fatalf("dup of running job = %d (%v)", respDup.StatusCode, outDup)
	}
	if outDup["id"] != idA {
		t.Fatalf("dup id = %v, want %s", outDup["id"], idA)
	}

	release()
	unwedged = true
	waitJobState(t, ts, idA, JobDone)
}

// TestQuarantinedJob: injected permanent faults quarantine every cell;
// the job reports typed failures, the body carries the failure table,
// and the partial result is never cached.
func TestQuarantinedJob(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		p := tinyParams()
		p.Retries = -1
		p.Chaos = chaos.New(chaos.Config{Seed: 1, Frac: 1, Mode: chaos.ModeError})
		c.Params = p
	})

	resp, body := get(t, ts, "/v1/figures/fig10")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quarantined figure status = %d", resp.StatusCode)
	}
	if q := resp.Header.Get("X-Refsched-Quarantined"); q != "9" {
		t.Fatalf("X-Refsched-Quarantined = %q, want 9", q)
	}
	if !strings.Contains(string(body), "failed and were quarantined") {
		t.Fatalf("body missing failure summary:\n%s", body)
	}

	resp2, out := postJob(t, ts, Request{Figure: "fig10"})
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("re-enqueue = %d (%v): quarantined results must not be cached", resp2.StatusCode, out)
	}
	st := waitJobState(t, ts, out["id"].(string), JobQuarantined)
	if len(st.Quarantined) != 9 {
		t.Fatalf("typed failures = %d, want 9", len(st.Quarantined))
	}
	f := st.Quarantined[0]
	if f.Kind != "error" || f.Seed != 1 || f.Attempts < 1 || !strings.Contains(f.Detail, "chaos") {
		t.Fatalf("typed failure detail = %+v", f)
	}
	if got := s.simulations.Load(); got != 2 {
		t.Fatalf("simulations = %d, want 2 (no caching of partial results)", got)
	}
}

// TestDrainPersistsCacheAndWarmRestart is the restart acceptance: a
// shutdown begun while a job is in flight drains it, persists the
// cache, and a fresh daemon warms from the journal and serves the
// result without recomputing.
func TestDrainPersistsCacheAndWarmRestart(t *testing.T) {
	want := expectedFig10(t)
	path := filepath.Join(t.TempDir(), "cache.journal.json")

	cfg := Config{Params: tinyParams(), JournalPath: path, DrainTimeout: 60 * time.Second}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)

	// Enqueue and begin shutdown while the job is (likely) in flight:
	// drain must complete it, not drop it.
	_, out := postJob(t, ts1, Request{Figure: "fig10"})
	id := out["id"].(string)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	st := s1.getJob(id).snapshot()
	if st.State != JobDone {
		t.Fatalf("in-flight job after drain = %s (err %q)", st.State, st.Error)
	}
	ts1.Close()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cache journal not persisted: %v", err)
	}

	// Fresh daemon, same journal: instant hit, zero simulations.
	s2, ts2 := newTestServer(t, func(c *Config) { c.JournalPath = path })
	resp, body := get(t, ts2, "/v1/figures/fig10")
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("warm restart X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body, want) {
		t.Fatal("journal-warmed body differs from serial CLI render")
	}
	if got := s2.simulations.Load(); got != 0 {
		t.Fatalf("warm restart ran %d simulations, want 0", got)
	}
}

// TestLoadMixedConcurrent is the loopback load acceptance: >= 64
// concurrent mixed requests complete without races (run under -race
// in CI) and every response is well-formed.
func TestLoadMixedConcurrent(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.Workers = 4
		c.QueueDepth = 128
	})

	const n = 72
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 6 {
			case 0:
				resp, _ := get(t, ts, "/healthz")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("healthz = %d", resp.StatusCode)
				}
			case 1:
				resp, body := get(t, ts, "/statsz")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("statsz = %d", resp.StatusCode)
				}
				var st Stats
				if err := json.Unmarshal(body, &st); err != nil {
					t.Errorf("statsz decode: %v", err)
				}
			case 2:
				resp, _ := get(t, ts, "/v1/figures/table1")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("table1 = %d", resp.StatusCode)
				}
			case 3:
				resp, _ := get(t, ts, "/v1/figures/table2")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("table2 = %d", resp.StatusCode)
				}
			case 4:
				resp, _ := get(t, ts, "/v1/figures/fig10")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("fig10 = %d", resp.StatusCode)
				}
			case 5:
				seed := uint64(2 + i%3)
				resp, out := postJob(t, ts, Request{Figure: "fig10", Params: &ParamOverrides{Seed: &seed}})
				switch resp.StatusCode {
				case http.StatusAccepted, http.StatusOK:
					waitJobState(t, ts, out["id"].(string), JobDone)
				case http.StatusTooManyRequests:
					// Admission control doing its job under load.
				default:
					t.Errorf("enqueue = %d (%v)", resp.StatusCode, out)
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestHealthzAndStatsz: payload shape, version stamping, and the
// per-figure latency quantiles.
func TestHealthzAndStatsz(t *testing.T) {
	_, ts := newTestServer(t, nil)
	get(t, ts, "/v1/figures/fig10")
	get(t, ts, "/v1/figures/fig10")

	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version.GoVersion == "" || h.Version.Module == "" {
		t.Fatalf("healthz payload = %+v", h)
	}

	_, sbody := get(t, ts, "/statsz")
	var st Stats
	if err := json.Unmarshal(sbody, &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits < 1 || st.Cache.HitRatio <= 0 {
		t.Fatalf("cache stats = %+v", st.Cache)
	}
	// The histogram records compute latency: the first GET executed,
	// the second was answered from cache at enqueue without a queue
	// trip, so exactly one sample.
	lat, ok := st.Figures["fig10"]
	if !ok || lat.Count != 1 {
		t.Fatalf("figure latency stats = %+v", st.Figures)
	}
	if lat.P50MS > lat.P90MS || lat.P90MS > lat.P99MS {
		t.Fatalf("quantiles not monotonic: %+v", lat)
	}
}

// TestCellBodyIsReportJSON: the cell result decodes into core.Report.
func TestCellBodyIsReportJSON(t *testing.T) {
	s, ts := newTestServer(t, nil)
	_, out := postJob(t, ts, Request{Cell: &CellSpec{Mix: "WL-6", Density: "16Gb", Bundle: "allbank"}})
	id := out["id"].(string)
	waitJobState(t, ts, id, JobDone)

	j := s.getJob(id)
	_, body, _ := j.result()
	var rep core.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("cell body is not a core.Report: %v\n%s", err, body)
	}
	if rep.HarmonicIPC <= 0 {
		t.Fatalf("decoded report looks empty: %+v", rep)
	}
}

func u64(v uint64) *uint64 { return &v }

// TestRenderMatchesCLIFormat guards the exact Println framing the
// byte-identical guarantee depends on.
func TestRenderMatchesCLIFormat(t *testing.T) {
	r := &harness.Result{ID: "x", Title: "t"}
	r.Table.Header = []string{"a"}
	r.Table.AddRow("1")
	got := renderResults([]*harness.Result{r, r})
	want := fmt.Sprintf("%v\n%v\n", r, r)
	if string(got) != want {
		t.Fatalf("renderResults framing drifted:\n%q\nvs\n%q", got, want)
	}
}

// TestMetricszEndpoint drives a figure through the daemon twice (one
// computed, one cache hit) and validates /metricsz end to end: the body
// must be well-formed Prometheus text exposition, and it must carry the
// daemon's queue/job/cache state plus the per-figure simulator counters
// accumulated from the cells the sweep ran.
func TestMetricszEndpoint(t *testing.T) {
	s, ts := newTestServer(t, nil)

	resp, _ := get(t, ts, "/v1/figures/fig10")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("figure status %d", resp.StatusCode)
	}
	resp, _ = get(t, ts, "/v1/figures/fig10")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second fetch: status %d cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}

	resp, body := get(t, ts, "/metricsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metricsz status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	samples, err := metrics.ParsePrometheusText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/metricsz is not valid exposition text: %v\n%s", err, body)
	}

	sample := func(name string, labels map[string]string) (float64, bool) {
	next:
		for _, sm := range samples {
			if sm.Name != name {
				continue
			}
			for k, v := range labels {
				if sm.Labels[k] != v {
					continue next
				}
			}
			return sm.Value, true
		}
		return 0, false
	}
	mustSample := func(name string, labels map[string]string) float64 {
		v, ok := sample(name, labels)
		if !ok {
			t.Fatalf("missing sample %s%v", name, labels)
		}
		return v
	}

	// Daemon queue and job state.
	if v := mustSample("refschedd_jobs_enqueued", nil); v != 2 {
		t.Errorf("jobs_enqueued = %v, want 2", v)
	}
	if v := mustSample("refschedd_jobs_completed", nil); v != 2 {
		t.Errorf("jobs_completed = %v, want 2", v)
	}
	if v := mustSample("refschedd_jobs_cache_hits", nil); v != 1 {
		t.Errorf("jobs_cache_hits = %v, want 1", v)
	}
	if v := mustSample("refschedd_simulations", nil); v != 1 {
		t.Errorf("simulations = %v, want 1", v)
	}
	if v := mustSample("refschedd_queue_capacity", nil); v != float64(s.cfg.QueueDepth) {
		t.Errorf("queue_capacity = %v, want %d", v, s.cfg.QueueDepth)
	}
	if _, ok := sample("refschedd_queue_depth", nil); !ok {
		t.Error("missing queue_depth gauge")
	}

	// Cache state: one stored entry, one hit, one miss.
	if v := mustSample("refschedd_cache_entries", nil); v != 1 {
		t.Errorf("cache_entries = %v, want 1", v)
	}
	if v := mustSample("refschedd_cache_hits", nil); v < 1 {
		t.Errorf("cache_hits = %v, want >= 1", v)
	}

	// Per-figure simulator counters: the fig10 grid is 3 densities x 3
	// bundles = 9 cells, and a simulated interval always executes events
	// and reads.
	figLabel := map[string]string{"figure": "fig10"}
	if v := mustSample("refschedd_figure_cells", figLabel); v != 9 {
		t.Errorf("figure_cells = %v, want 9", v)
	}
	for _, name := range []string{
		"refschedd_figure_sim_events",
		"refschedd_figure_reads",
		"refschedd_figure_refresh_commands",
	} {
		if v := mustSample(name, figLabel); v <= 0 {
			t.Errorf("%s = %v, want > 0", name, v)
		}
	}

	// Latency histogram: only the computed job observes latency (the
	// second request is answered at enqueue time and never executes).
	if v := mustSample("refschedd_figure_job_latency_ms_count", figLabel); v != 1 {
		t.Errorf("job_latency count = %v, want 1", v)
	}

	// /statsz is a projection of the same registry: spot-check agreement.
	st := s.StatsSnapshot()
	if float64(st.Jobs.Enqueued) != mustSample("refschedd_jobs_enqueued", nil) {
		t.Errorf("statsz enqueued %d disagrees with /metricsz", st.Jobs.Enqueued)
	}
	if st.Figures["fig10"].Count != 1 {
		t.Errorf("statsz figure count = %d, want 1", st.Figures["fig10"].Count)
	}
}
