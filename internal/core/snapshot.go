package core

import (
	"fmt"

	"refsched/internal/config"
	"refsched/internal/cpu"
	"refsched/internal/dram"
	"refsched/internal/kernel"
	"refsched/internal/mc"
	"refsched/internal/metrics"
	"refsched/internal/sim"
	"refsched/internal/workload"
)

// SystemState is the complete serializable state of a running System at
// an event-quiescent point (between engine run legs): the identity
// needed to rebuild an identical machine (config, mix, footprint
// scale), the run's interval parameters, and every layer's mutable
// state. A system restored from it and run to completion produces
// byte-identical output to the original run — the engine's pending
// events carry their original (when, seq) order, every counter and
// random stream resumes exactly, and the warmup metrics snapshot is
// carried along so the final report diffs against the same baseline.
type SystemState struct {
	// Identity: Restore rebuilds the machine from these.
	Cfg            config.System
	Mix            workload.Mix
	FootprintScale float64

	// Interval parameters of the interrupted run.
	Warmup  uint64
	Measure uint64
	// PastWarmup marks a checkpoint taken after the warmup boundary;
	// WarmupSnap then holds the registry snapshot from that boundary.
	PastWarmup bool
	WarmupSnap metrics.Snapshot

	// Per-layer state.
	Engine sim.EngineState
	Chans  []dram.ChannelState
	MCs    []mc.ControllerState
	Cores  []cpu.CoreState
	Kernel kernel.State
}

// Cycle returns the simulated time the snapshot was taken at.
func (st *SystemState) Cycle() uint64 { return uint64(st.Engine.Now) }

// CheckpointFn receives each periodic snapshot during a checkpointed
// run. Returning an error aborts the run with that error.
type CheckpointFn func(st *SystemState) error

// BoundaryFn is the lazy variant of CheckpointFn: it is invoked at
// every checkpoint boundary but the (expensive) state capture only
// happens if the callback asks for it by calling capture. This is what
// preemption wants — polling "should I stop?" at each boundary costs
// nothing until the answer is yes, at which point capture() flattens
// the machine and the callback can return an error to abort the run
// with the snapshot in hand. Returning a non-nil error aborts the run.
type BoundaryFn func(capture func() (*SystemState, error)) error

// eager adapts an eager CheckpointFn to the lazy boundary protocol:
// capture at every boundary, then hand the state over.
func eager(fn CheckpointFn) BoundaryFn {
	if fn == nil {
		return nil
	}
	return func(capture func() (*SystemState, error)) error {
		st, err := capture()
		if err != nil {
			return err
		}
		return fn(st)
	}
}

// captureState flattens the whole machine into a SystemState. It fails
// when any pending engine event is a closure (a layer that forgot to
// reify an event type), when parallel execution is enabled, or when a
// task's workload generator is not checkpointable.
func (s *System) captureState(warmup, measure uint64, pastWarmup bool, warmSnap metrics.Snapshot) (*SystemState, error) {
	if s.observed {
		return nil, fmt.Errorf("core: cannot checkpoint with a trace or timeline attached")
	}
	eng, err := s.Eng.SnapshotState()
	if err != nil {
		return nil, err
	}
	kst, err := s.Kernel.State()
	if err != nil {
		return nil, err
	}
	st := &SystemState{
		Cfg:            s.Cfg,
		Mix:            s.Mix,
		FootprintScale: s.footprintScale,
		Warmup:         warmup,
		Measure:        measure,
		PastWarmup:     pastWarmup,
		Engine:         *eng,
		Kernel:         kst,
	}
	if pastWarmup {
		st.WarmupSnap = warmSnap
	}
	for _, ch := range s.Chans {
		st.Chans = append(st.Chans, ch.State())
	}
	for _, c := range s.MCs {
		st.MCs = append(st.MCs, c.State())
	}
	for _, c := range s.Cores {
		st.Cores = append(st.Cores, c.State())
	}
	return st, nil
}

// Restore rebuilds a System from a checkpoint. The machine is
// reconstructed from the snapshot's own config and mix (opt may supply
// a cancellation context; its FootprintScale and Seed are overridden by
// the snapshot's, and ChannelParallel is rejected — a restored event
// population is serial). Call Resume on the result to continue the run.
func Restore(st *SystemState, opt Options) (*System, error) {
	if opt.ChannelParallel {
		return nil, sim.ErrParallelSnapshot
	}
	opt.FootprintScale = st.FootprintScale
	opt.Seed = 0 // st.Cfg already carries the effective seed
	s, err := Build(st.Cfg, st.Mix, opt)
	if err != nil {
		return nil, err
	}
	if len(st.Chans) != len(s.Chans) || len(st.MCs) != len(s.MCs) || len(st.Cores) != len(s.Cores) {
		return nil, fmt.Errorf("core: snapshot geometry (%d chans, %d cores) does not match rebuilt system",
			len(st.Chans), len(st.Cores))
	}
	for i, chst := range st.Chans {
		s.Chans[i].SetState(chst)
	}
	for i, cst := range st.MCs {
		s.MCs[i].SetState(cst)
	}
	if err := s.Kernel.SetState(st.Kernel); err != nil {
		return nil, err
	}
	tasks := s.Kernel.Tasks()
	onEnd := s.Kernel.QuantumEndHandler()
	for i, cst := range st.Cores {
		var task cpu.Task
		if cst.TaskID >= 0 {
			if cst.TaskID >= len(tasks) {
				return nil, fmt.Errorf("core: snapshot core %d bound to unknown task %d", i, cst.TaskID)
			}
			task = tasks[cst.TaskID]
		}
		s.Cores[i].RestoreState(cst, task, onEnd)
	}
	// Engine state goes last: it discards the construction-time events
	// (first refresh ticks) and installs the snapshot's population.
	s.Eng.RestoreState(&st.Engine)
	s.restored = true
	s.resWarmup = st.Warmup
	s.resMeasure = st.Measure
	s.pastWarmup = st.PastWarmup
	s.warmSnap = st.WarmupSnap
	return s, nil
}

// RunCheckpointed is Run with periodic checkpoints: every `every`
// cycles of simulated time the machine is flattened into a SystemState
// and handed to fn. every == 0 or fn == nil degrades to plain Run.
// Checkpoint boundaries split the engine's run into legs, which does
// not perturb execution: the report is byte-identical to an
// uncheckpointed run of the same cell.
func (s *System) RunCheckpointed(warmup, measure, every uint64, fn CheckpointFn) (rep *Report, err error) {
	if s.started {
		return nil, fmt.Errorf("core: system already run")
	}
	if s.restored {
		return nil, fmt.Errorf("core: restored system must Resume, not RunCheckpointed")
	}
	if every > 0 && fn != nil && s.observed {
		return nil, fmt.Errorf("core: cannot checkpoint with a trace or timeline attached")
	}
	s.started = true
	defer s.Eng.Close()
	defer s.recoverFault(&rep, &err)
	s.Kernel.Start()
	return s.drive(warmup, measure, every, eager(fn))
}

// RunPreemptible is RunCheckpointed with the lazy boundary protocol:
// fn is called at every checkpoint boundary but state capture is
// deferred until the callback asks for it. Use this when boundaries
// are frequent and snapshots rare (preemption polling).
func (s *System) RunPreemptible(warmup, measure, every uint64, fn BoundaryFn) (rep *Report, err error) {
	if s.started {
		return nil, fmt.Errorf("core: system already run")
	}
	if s.restored {
		return nil, fmt.Errorf("core: restored system must Resume, not RunPreemptible")
	}
	if every > 0 && fn != nil && s.observed {
		return nil, fmt.Errorf("core: cannot checkpoint with a trace or timeline attached")
	}
	s.started = true
	defer s.Eng.Close()
	defer s.recoverFault(&rep, &err)
	s.Kernel.Start()
	return s.drive(warmup, measure, every, fn)
}

// Resume continues a restored system to the end of its original run,
// optionally emitting further checkpoints (every/fn as in
// RunCheckpointed). The returned report is byte-identical to the one
// the uninterrupted original run would have produced.
func (s *System) Resume(every uint64, fn CheckpointFn) (rep *Report, err error) {
	return s.ResumePreemptible(every, eager(fn))
}

// ResumePreemptible is Resume with the lazy boundary protocol of
// RunPreemptible.
func (s *System) ResumePreemptible(every uint64, fn BoundaryFn) (rep *Report, err error) {
	if !s.restored {
		return nil, fmt.Errorf("core: Resume requires a system built by Restore")
	}
	if s.started {
		return nil, fmt.Errorf("core: system already run")
	}
	s.started = true
	defer s.Eng.Close()
	defer s.recoverFault(&rep, &err)
	// No Kernel.Start: the restored event population already contains
	// the in-flight dispatch chain.
	return s.drive(s.resWarmup, s.resMeasure, every, fn)
}

// recoverFault converts typed sim.Fault panics into returned errors,
// mirroring Run's error boundary.
func (s *System) recoverFault(rep **Report, err *error) {
	if p := recover(); p != nil {
		f, ok := p.(sim.Fault)
		if !ok {
			panic(p)
		}
		*rep = nil
		*err = fmt.Errorf("core: %s/%s/%s at cycle %d: %w",
			s.Mix.Name, s.Cfg.Mem.Density, s.Cfg.Refresh.Policy, s.Eng.Now(), f)
	}
}

// drive advances the engine from its current time to warmup+measure in
// legs, pausing at the warmup boundary (registry snapshot) and at every
// checkpoint boundary (captureState + fn). The leg structure is
// invisible to the simulation: RunUntil(a); RunUntil(b) executes the
// identical event sequence as RunUntil(b).
func (s *System) drive(warmup, measure, every uint64, fn BoundaryFn) (*Report, error) {
	total := warmup + measure
	snap := s.warmSnap
	havePast := s.pastWarmup
	if !havePast && uint64(s.Eng.Now()) >= warmup {
		// Already at (or past) the warmup boundary with no snapshot —
		// the warmup == 0 case. Drain due events exactly as Run's
		// RunUntil(warmup) would, then snapshot.
		s.Eng.RunUntil(sim.Time(warmup))
		snap = s.snapshot()
		havePast = true
	}
	for {
		now := uint64(s.Eng.Now())
		if now >= total {
			break
		}
		next := total
		if !havePast && warmup > now && warmup < next {
			next = warmup
		}
		if every > 0 && fn != nil {
			if nc := (now/every + 1) * every; nc < next {
				next = nc
			}
		}
		s.Eng.RunUntil(sim.Time(next))
		if !havePast && next >= warmup {
			snap = s.snapshot()
			havePast = true
		}
		if every > 0 && fn != nil && next%every == 0 && next < total {
			capture := func() (*SystemState, error) {
				return s.captureState(warmup, measure, havePast, snap)
			}
			if err := fn(capture); err != nil {
				return nil, err
			}
		}
	}
	return s.report(snap, measure), nil
}
