package core

import (
	"testing"

	"refsched/internal/config"
	"refsched/internal/workload"
)

// runPolicy builds and runs a mix under one policy bundle, returning the
// report.
func runPolicy(t *testing.T, d config.Density, scale uint64, pol config.RefreshPolicy, codesign bool, mix workload.Mix, fpScale float64) *Report {
	t.Helper()
	cfg := config.Default(d, scale)
	cfg.Refresh.Policy = pol
	if codesign {
		cfg.OS.Alloc = config.AllocSoftPartition
		cfg.OS.Scheduler = config.SchedCFS
		cfg.OS.RefreshAware = true
	}
	sys, err := Build(cfg, mix, Options{FootprintScale: fpScale})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunWindows(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRefreshDegradationShape verifies the paper's core ordering at
// 32 Gb: no-refresh >= co-design > per-bank > all-bank for a
// memory-intensive workload, and that the co-design eliminates
// refresh-stalled reads.
func TestRefreshDegradationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape runs are slow")
	}
	mix := workload.Mix{Name: "shape", Classes: "H",
		Entries: []workload.MixEntry{{Bench: "mcf", Count: 4}, {Bench: "bwaves", Count: 4}}}
	const scale, fp = 64, 0.05

	none := runPolicy(t, config.Density32Gb, scale, config.RefreshNone, false, mix, fp)
	ab := runPolicy(t, config.Density32Gb, scale, config.RefreshAllBank, false, mix, fp)
	pb := runPolicy(t, config.Density32Gb, scale, config.RefreshPerBankRR, false, mix, fp)
	cd := runPolicy(t, config.Density32Gb, scale, config.RefreshPerBankSeq, true, mix, fp)

	t.Logf("none: hIPC=%.4f lat=%.1f", none.HarmonicIPC, none.AvgMemLatency)
	t.Logf("allbank: hIPC=%.4f lat=%.1f stalled=%.4f", ab.HarmonicIPC, ab.AvgMemLatency, ab.RefreshStalledFrac)
	t.Logf("perbank: hIPC=%.4f lat=%.1f stalled=%.4f", pb.HarmonicIPC, pb.AvgMemLatency, pb.RefreshStalledFrac)
	t.Logf("codesign: hIPC=%.4f lat=%.1f stalled=%.4f sched=%+v", cd.HarmonicIPC, cd.AvgMemLatency, cd.RefreshStalledFrac, cd.SchedStats)

	if !(ab.HarmonicIPC < pb.HarmonicIPC) {
		t.Errorf("all-bank (%.4f) should underperform per-bank (%.4f)", ab.HarmonicIPC, pb.HarmonicIPC)
	}
	if !(pb.HarmonicIPC < cd.HarmonicIPC) {
		t.Errorf("per-bank (%.4f) should underperform co-design (%.4f)", pb.HarmonicIPC, cd.HarmonicIPC)
	}
	if cd.RefreshStalledFrac > 0.001 {
		t.Errorf("co-design refresh-stalled fraction %.4f, want ~0", cd.RefreshStalledFrac)
	}
	degAB := 1 - ab.HarmonicIPC/none.HarmonicIPC
	degPB := 1 - pb.HarmonicIPC/none.HarmonicIPC
	t.Logf("degradation: all-bank %.1f%%, per-bank %.1f%%", degAB*100, degPB*100)
	if degAB < 0.05 {
		t.Errorf("all-bank degradation %.3f too small for 32Gb H workload", degAB)
	}
}
