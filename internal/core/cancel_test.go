package core

import (
	"context"
	"errors"
	"testing"

	"refsched/internal/config"
	"refsched/internal/sim"
)

// TestRunAbortsOnCancelledContext: Options.Ctx hard-cancels a running
// simulation — the engine checkpoint converts the context error into a
// cell-tagged returned error (via *sim.CancelFault), never a crash,
// and errors.Is still sees the context error through the chain.
func TestRunAbortsOnCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // aborts at the first checkpoint

	cfg := testConfig(config.Density8Gb, config.RefreshAllBank)
	sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	// Enough windows that the run crosses at least one checkpoint
	// interval (window ≈ 100k cycles at scale 2048).
	rep, err := sys.RunWindows(1, 4)
	if err == nil {
		t.Fatal("run completed despite a cancelled hard context")
	}
	if rep != nil {
		t.Error("cancelled run must not return a report")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled in chain", err)
	}
	var cf *sim.CancelFault
	if !errors.As(err, &cf) {
		t.Errorf("err = %v, want *sim.CancelFault in chain", err)
	}
}

// TestRunCompletesWithLiveContext: a live Options.Ctx adds checkpoints
// but changes nothing about a healthy run's result.
func TestRunCompletesWithLiveContext(t *testing.T) {
	cfg := testConfig(config.Density8Gb, config.RefreshAllBank)

	plain, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.RunWindows(1, 2)
	if err != nil {
		t.Fatal(err)
	}

	guarded, err := Build(cfg, testMix(), Options{FootprintScale: 0.01, Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	got, err := guarded.RunWindows(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Error("installing a live cancellation context changed the simulated result")
	}
}
