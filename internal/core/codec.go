package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Snapshot file format: a fixed header followed by a gob body and
// guarded by a checksum, so a truncated, bit-flipped, or version-skewed
// file is refused with a typed error instead of restoring a subtly
// wrong machine.
//
//	offset size  field
//	0      4     magic "RSNP"
//	4      4     format version (little-endian uint32)
//	8      8     body length in bytes (little-endian uint64)
//	16     4     CRC-32C of the body (little-endian uint32)
//	20     n     gob-encoded SystemState

// SnapshotVersion is the current snapshot format version. Any change
// to the serialized layer states (new fields, reordered payload kinds,
// changed event semantics) must bump it: a snapshot is only meaningful
// against the exact simulator revision that wrote it, and the version
// gate turns silent divergence into a typed refusal.
const SnapshotVersion = 1

var snapshotMagic = [4]byte{'R', 'S', 'N', 'P'}

// crcTable is the Castagnoli polynomial table (hardware-accelerated on
// modern CPUs).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CorruptSnapshotError reports a snapshot file that failed structural
// validation: bad magic, truncated body, checksum mismatch, or
// undecodable contents.
type CorruptSnapshotError struct {
	Path   string
	Reason string
}

// Error implements error.
func (e *CorruptSnapshotError) Error() string {
	return fmt.Sprintf("core: corrupt snapshot %s (delete it to start over): %s", e.Path, e.Reason)
}

// SnapshotVersionError reports a snapshot written by a different
// simulator revision. It is distinct from corruption: the file is
// intact but not resumable by this binary.
type SnapshotVersionError struct {
	Path string
	Got  uint32
	Want uint32
}

// Error implements error.
func (e *SnapshotVersionError) Error() string {
	return fmt.Sprintf("core: snapshot %s has format version %d, this binary reads %d (re-run from scratch)",
		e.Path, e.Got, e.Want)
}

// EncodeSnapshot writes st to w in the snapshot file format.
func EncodeSnapshot(w io.Writer, st *SystemState) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(st); err != nil {
		return fmt.Errorf("core: encoding snapshot: %w", err)
	}
	var hdr [20]byte
	copy(hdr[0:4], snapshotMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], SnapshotVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(body.Len()))
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.Checksum(body.Bytes(), crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body.Bytes())
	return err
}

// DecodeSnapshot reads a snapshot from r. path is used only for error
// messages.
func DecodeSnapshot(r io.Reader, path string) (*SystemState, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, &CorruptSnapshotError{Path: path, Reason: "truncated header"}
	}
	if [4]byte(hdr[0:4]) != snapshotMagic {
		return nil, &CorruptSnapshotError{Path: path, Reason: "bad magic (not a snapshot file)"}
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != SnapshotVersion {
		return nil, &SnapshotVersionError{Path: path, Got: v, Want: SnapshotVersion}
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	const maxSnapshotBytes = 1 << 32
	if n > maxSnapshotBytes {
		return nil, &CorruptSnapshotError{Path: path, Reason: fmt.Sprintf("implausible body length %d", n)}
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, &CorruptSnapshotError{Path: path, Reason: "truncated body"}
	}
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(hdr[16:20]); got != want {
		return nil, &CorruptSnapshotError{Path: path,
			Reason: fmt.Sprintf("checksum mismatch (got %08x, want %08x)", got, want)}
	}
	st := new(SystemState)
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(st); err != nil {
		return nil, &CorruptSnapshotError{Path: path, Reason: fmt.Sprintf("undecodable body: %v", err)}
	}
	return st, nil
}

// WriteSnapshotFile writes st to path atomically (tmp + fsync +
// rename), so a crash mid-write leaves either the previous snapshot or
// none — never a torn file.
func WriteSnapshotFile(path string, st *SystemState) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if err := EncodeSnapshot(tmp, st); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadSnapshotFile reads a snapshot written by WriteSnapshotFile.
func ReadSnapshotFile(path string) (*SystemState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeSnapshot(f, path)
}
