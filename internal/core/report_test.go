package core

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"refsched/internal/config"
)

func TestReportContents(t *testing.T) {
	cfg := testConfig(config.Density8Gb, config.RefreshAllBank)
	sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunWindows(1, 1)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Mix != "smoke" || rep.Density != "8Gb" || rep.Policy != "allbank" {
		t.Fatalf("identity fields: %q %q %q", rep.Mix, rep.Density, rep.Policy)
	}
	if rep.Energy.Total() <= 0 {
		t.Fatal("no energy accounted")
	}
	if rep.RefreshEnergyFrac <= 0 || rep.RefreshEnergyFrac >= 1 {
		t.Fatalf("refresh energy fraction = %v", rep.RefreshEnergyFrac)
	}
	if rep.AvgMemLatencyMemCycles <= 0 ||
		rep.AvgMemLatencyMemCycles*4 != rep.AvgMemLatency {
		t.Fatalf("latency unit conversion: %v vs %v", rep.AvgMemLatencyMemCycles, rep.AvgMemLatency)
	}
	if rep.MeasuredCycles != sys.Window() {
		t.Fatalf("measured cycles = %d, want one window %d", rep.MeasuredCycles, sys.Window())
	}

	s := rep.String()
	for _, want := range []string{"smoke", "hIPC=", "mcf", "povray", "MPKI"} {
		if !strings.Contains(s, want) {
			t.Errorf("report string missing %q:\n%s", want, s)
		}
	}
}

func TestReportTaskOrdering(t *testing.T) {
	cfg := testConfig(config.Density8Gb, config.RefreshNone)
	sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunWindows(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range rep.Tasks {
		if tr.TaskID != i {
			t.Fatalf("task order: %d at position %d", tr.TaskID, i)
		}
	}
	// Mix expansion order: first four mcf, then four povray.
	for i := 0; i < 4; i++ {
		if rep.Tasks[i].Bench != "mcf" || rep.Tasks[i+4].Bench != "povray" {
			t.Fatalf("bench order wrong at %d: %s/%s", i, rep.Tasks[i].Bench, rep.Tasks[i+4].Bench)
		}
	}
}

// TestReportJSONRoundTrip pins the Report wire format: stable
// snake_case keys, lossless round-trip, and agreement between the
// report and the registry snapshot it was projected from.
func TestReportJSONRoundTrip(t *testing.T) {
	cfg := testConfig(config.Density8Gb, config.RefreshAllBank)
	sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunWindows(1, 1)
	if err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"harmonic_ipc"`, `"avg_mem_latency"`, `"refresh_stalled_frac"`,
		`"sched_stats"`, `"eligible_picks"`, `"refresh_mj"`, `"cache_hits"`,
		`"task_id"`, `"llc_misses"`,
	} {
		if !strings.Contains(string(data), key) {
			t.Errorf("report JSON missing %s", key)
		}
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*rep, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, *rep)
	}

	// The cumulative snapshot agrees with the report's cumulative
	// fields: the report is a projection, not a second bookkeeping
	// path.
	snap := sys.MetricsSnapshot()
	if got := snap.Counter("sched.picks"); got != rep.SchedStats.Picks {
		t.Errorf("sched.picks snapshot=%d report=%d", got, rep.SchedStats.Picks)
	}
	if got := snap.Counter("kernel.quanta"); got != rep.TotalQuanta {
		t.Errorf("kernel.quanta snapshot=%d report=%d", got, rep.TotalQuanta)
	}
	var reads uint64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "mc[") && strings.HasSuffix(name, "].reads") &&
			!strings.Contains(name, ".bank[") {
			reads += v
		}
	}
	// Controller reads are cumulative (warmup + measure) so they bound
	// the measured-interval count from above.
	if reads < rep.Reads {
		t.Errorf("cumulative mc reads %d < measured reads %d", reads, rep.Reads)
	}
}
