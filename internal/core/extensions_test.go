package core

import (
	"testing"

	"refsched/internal/config"
	"refsched/internal/workload"
)

// TestSubarrayRefreshReducesStalls: SALP-style subarray refresh should
// cut the refresh-stalled read fraction well below plain per-bank
// refresh on a memory-intensive mix.
func TestSubarrayRefreshReducesStalls(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation comparison is slow")
	}
	mix := workload.Mix{Name: "sa", Entries: []workload.MixEntry{{Bench: "mcf", Count: 4}, {Bench: "bwaves", Count: 4}}}

	pbCfg := config.Default(config.Density32Gb, 256)
	pbCfg.Refresh.Policy = config.RefreshPerBankRR
	pb, err := Build(pbCfg, mix, Options{FootprintScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	pbRep, err := pb.RunWindows(1, 2)
	if err != nil {
		t.Fatal(err)
	}

	saCfg := config.Default(config.Density32Gb, 256)
	saCfg.Refresh.Policy = config.RefreshPerBankSA
	saCfg.Mem.SubarraysPerBank = 8
	sa, err := Build(saCfg, mix, Options{FootprintScale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	saRep, err := sa.RunWindows(1, 2)
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("perbank stalled=%.4f hIPC=%.4f; salp stalled=%.4f hIPC=%.4f",
		pbRep.RefreshStalledFrac, pbRep.HarmonicIPC, saRep.RefreshStalledFrac, saRep.HarmonicIPC)
	if saRep.RefreshStalledFrac >= pbRep.RefreshStalledFrac {
		t.Errorf("subarray refresh did not reduce stalls: %v vs %v",
			saRep.RefreshStalledFrac, pbRep.RefreshStalledFrac)
	}
	if saRep.HarmonicIPC <= pbRep.HarmonicIPC {
		t.Errorf("subarray refresh did not improve IPC: %v vs %v",
			saRep.HarmonicIPC, pbRep.HarmonicIPC)
	}
}

// TestRAIDRCutsRefreshEnergy: the retention-aware policy should slash
// refresh's energy share relative to per-bank refresh.
func TestRAIDRCutsRefreshEnergy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation comparison is slow")
	}
	mix := workload.Mix{Name: "re", Entries: []workload.MixEntry{{Bench: "stream", Count: 4}, {Bench: "povray", Count: 4}}}
	run := func(pol config.RefreshPolicy) *Report {
		cfg := config.Default(config.Density32Gb, 256)
		cfg.Refresh.Policy = pol
		sys, err := Build(cfg, mix, Options{FootprintScale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.RunWindows(1, 2)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	pb := run(config.RefreshPerBankRR)
	rd := run(config.RefreshRAIDR)
	t.Logf("perbank refreshEnergy=%.3f raidr=%.3f", pb.RefreshEnergyFrac, rd.RefreshEnergyFrac)
	if rd.RefreshEnergyFrac >= pb.RefreshEnergyFrac*0.6 {
		t.Errorf("RAIDR refresh energy %.3f not well below per-bank %.3f",
			rd.RefreshEnergyFrac, pb.RefreshEnergyFrac)
	}
	if rd.RefreshCommands >= pb.RefreshCommands/2 {
		t.Errorf("RAIDR issued %d commands vs per-bank %d", rd.RefreshCommands, pb.RefreshCommands)
	}
}

// TestPausingBeatsAllBank: refresh pausing should outperform blocking
// all-bank refresh on a memory-intensive mix.
func TestPausingBeatsAllBank(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation comparison is slow")
	}
	mix := workload.Mix{Name: "pa", Entries: []workload.MixEntry{{Bench: "mcf", Count: 8}}}
	run := func(pol config.RefreshPolicy) *Report {
		cfg := config.Default(config.Density32Gb, 256)
		cfg.Refresh.Policy = pol
		sys, err := Build(cfg, mix, Options{FootprintScale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.RunWindows(1, 2)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	ab := run(config.RefreshAllBank)
	pa := run(config.RefreshPausing)
	t.Logf("allbank hIPC=%.4f pausing hIPC=%.4f", ab.HarmonicIPC, pa.HarmonicIPC)
	if pa.HarmonicIPC <= ab.HarmonicIPC {
		t.Errorf("pausing (%.4f) did not beat all-bank (%.4f)", pa.HarmonicIPC, ab.HarmonicIPC)
	}
}
