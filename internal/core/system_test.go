package core

import (
	"testing"

	"refsched/internal/config"
	"refsched/internal/workload"
)

// testConfig returns a fast, scaled-down Table 1 machine.
func testConfig(d config.Density, pol config.RefreshPolicy) config.System {
	cfg := config.Default(d, 2048) // tREFW = 31.25 µs, timeslice ~2 µs
	cfg.Refresh.Policy = pol
	return cfg
}

func testMix() workload.Mix {
	return workload.Mix{
		Name:    "smoke",
		Classes: "H+L",
		Entries: []workload.MixEntry{{Bench: "mcf", Count: 4}, {Bench: "povray", Count: 4}},
	}
}

func TestSmokeBaseline(t *testing.T) {
	cfg := testConfig(config.Density8Gb, config.RefreshAllBank)
	sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunWindows(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HarmonicIPC <= 0 {
		t.Fatalf("harmonic IPC = %v, want > 0\n%s", rep.HarmonicIPC, rep)
	}
	if rep.Reads == 0 {
		t.Fatal("no DRAM reads observed")
	}
	if rep.RefreshCommands == 0 {
		t.Fatal("no refresh commands under all-bank policy")
	}
	for _, tr := range rep.Tasks {
		if tr.Instructions == 0 {
			t.Errorf("task %d (%s) committed no instructions", tr.TaskID, tr.Bench)
		}
		if tr.Quanta == 0 {
			t.Errorf("task %d (%s) never scheduled", tr.TaskID, tr.Bench)
		}
	}
	t.Logf("\n%s", rep)
}

func TestSmokeCoDesign(t *testing.T) {
	cfg := testConfig(config.Density8Gb, config.RefreshPerBankSeq)
	cfg.OS.Alloc = config.AllocSoftPartition
	cfg.OS.Scheduler = config.SchedCFS
	cfg.OS.RefreshAware = true
	sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunWindows(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HarmonicIPC <= 0 {
		t.Fatalf("harmonic IPC = %v, want > 0\n%s", rep.HarmonicIPC, rep)
	}
	t.Logf("\n%s", rep)
	t.Logf("sched: %+v", rep.SchedStats)
	t.Logf("alloc: %+v", rep.AllocStats)
	if rep.SchedStats.EligiblePicks == 0 {
		t.Error("refresh-aware scheduler never found an eligible task")
	}
}
