package core

import (
	"testing"

	"refsched/internal/config"
	"refsched/internal/workload"
)

// TestCalibrationClasses verifies each benchmark model lands in its
// paper-assigned MPKI class when run at a realistic scale on an
// uncontended system (one task, one core, no refresh).
func TestCalibrationClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs are slow")
	}
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := workload.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := config.Default(config.Density16Gb, 64) // 1 ms window, 62.5 µs quanta
			cfg.Cores = 1
			cfg.Refresh.Policy = config.RefreshNone
			mix := workload.Mix{Name: "cal-" + name, Entries: []workload.MixEntry{{Bench: name, Count: 1}}}
			// Keep footprints small enough for quick runs but far above
			// the 1 MB LLC so miss behaviour is preserved.
			fpScale := 1.0
			if b.Footprint > 64*workload.MB {
				fpScale = float64(64*workload.MB) / float64(b.Footprint)
			}
			sys, err := Build(cfg, mix, Options{FootprintScale: fpScale})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := sys.RunWindows(4, 8)
			if err != nil {
				t.Fatal(err)
			}
			mpki := rep.Tasks[0].MPKI
			t.Logf("%s: MPKI=%.2f IPC=%.3f class=%s", name, mpki, rep.Tasks[0].IPC, b.Class)
			switch b.Class {
			case workload.High:
				if mpki <= 10 {
					t.Errorf("%s: MPKI %.2f, want > 10 (class H)", name, mpki)
				}
			case workload.Medium:
				if mpki < 1 || mpki > 10 {
					t.Errorf("%s: MPKI %.2f, want in [1,10] (class M)", name, mpki)
				}
			case workload.Low:
				if mpki >= 1 {
					t.Errorf("%s: MPKI %.2f, want < 1 (class L)", name, mpki)
				}
			}
		})
	}
}
