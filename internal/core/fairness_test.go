package core

import (
	"testing"

	"refsched/internal/config"
)

// TestCoDesignPreservesFairness: the refresh-aware schedule constrains
// which tasks run in each slot, but the group rotation must still hand
// every task its fair CPU share (the paper's Section 5.4 concern).
func TestCoDesignPreservesFairness(t *testing.T) {
	cfg := testConfig(config.Density8Gb, config.RefreshPerBankSeq)
	cfg.OS.Alloc = config.AllocSoftPartition
	cfg.OS.Scheduler = config.SchedCFS
	cfg.OS.RefreshAware = true
	sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunWindows(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FairnessSpread == 0 {
		t.Fatal("fairness spread not computed")
	}
	// Over whole windows the rotation is exact; allow quantum-boundary
	// slop.
	if rep.FairnessSpread > 1.35 {
		t.Errorf("co-design fairness spread = %v, want near 1", rep.FairnessSpread)
	}
	// Every task got the same number of quanta (+-1).
	var minQ, maxQ uint64 = 1 << 62, 0
	for _, tr := range rep.Tasks {
		if tr.Quanta < minQ {
			minQ = tr.Quanta
		}
		if tr.Quanta > maxQ {
			maxQ = tr.Quanta
		}
	}
	if maxQ-minQ > 1 {
		t.Errorf("quantum distribution %d..%d under co-design", minQ, maxQ)
	}
}

// TestBaselineFairness: the round-robin baseline is fair by
// construction.
func TestBaselineFairness(t *testing.T) {
	cfg := testConfig(config.Density8Gb, config.RefreshAllBank)
	sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunWindows(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Quantum-overshoot noise is amplified at the tiny test scale where
	// a quantum is only ~6 K cycles; allow generous slop.
	if rep.FairnessSpread > 1.5 {
		t.Errorf("baseline fairness spread = %v", rep.FairnessSpread)
	}
}
