package core

import (
	"testing"

	"refsched/internal/config"
	"refsched/internal/kernel/buddy"
	"refsched/internal/workload"
)

// TestDeterminism: identical configs and seeds produce bit-identical
// reports.
func TestDeterminism(t *testing.T) {
	run := func() *Report {
		cfg := testConfig(config.Density8Gb, config.RefreshPerBankRR)
		sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.RunWindows(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.HarmonicIPC != b.HarmonicIPC || a.Reads != b.Reads || a.AvgMemLatency != b.AvgMemLatency {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", a.HarmonicIPC, a.Reads, b.HarmonicIPC, b.Reads)
	}
	for i := range a.Tasks {
		if a.Tasks[i].Instructions != b.Tasks[i].Instructions {
			t.Fatalf("task %d instruction counts differ", i)
		}
	}
}

// TestSeedSensitivity: different seeds actually change the run.
func TestSeedSensitivity(t *testing.T) {
	run := func(seed uint64) *Report {
		cfg := testConfig(config.Density8Gb, config.RefreshPerBankRR)
		sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.RunWindows(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if run(1).Reads == run(999).Reads {
		t.Log("warning: different seeds produced identical read counts (possible but unlikely)")
	}
}

// TestRefreshCompleteness: under every refreshing policy, each bank
// receives at least its full row budget per elapsed retention window.
func TestRefreshCompleteness(t *testing.T) {
	for _, pol := range []config.RefreshPolicy{
		config.RefreshAllBank, config.RefreshPerBankRR,
		config.RefreshPerBankSeq, config.RefreshOOOPerBank,
		config.RefreshFGR2x, config.RefreshFGR4x,
	} {
		pol := pol
		t.Run(string(pol), func(t *testing.T) {
			cfg := testConfig(config.Density8Gb, pol)
			sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
			if err != nil {
				t.Fatal(err)
			}
			const windows = 3
			if _, err := sys.RunWindows(0, windows); err != nil {
				t.Fatal(err)
			}
			rowsPerBank := cfg.Mem.RowsPerBank()
			// Aggregate per-channel; banks are symmetric under these
			// policies, so the per-bank budget is the mean.
			for _, ch := range sys.Chans {
				st := ch.Stats()
				// Allow the in-flight final window to be incomplete.
				minRows := rowsPerBank * (windows - 1) * uint64(ch.TotalBanks())
				if st.RowsRefreshed < minRows {
					t.Errorf("%s: refreshed %d rows over %d windows, want >= %d",
						pol, st.RowsRefreshed, windows, minRows)
				}
			}
		})
	}
}

// TestNoRefreshHasNoRefreshes confirms the ideal baseline is clean.
func TestNoRefreshHasNoRefreshes(t *testing.T) {
	cfg := testConfig(config.Density8Gb, config.RefreshNone)
	sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunWindows(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RefreshCommands != 0 || rep.RefreshStalledReads != 0 {
		t.Fatalf("no-refresh run refreshed: %+v", rep.RefreshCommands)
	}
}

// TestSoftPartitionConfinesPages: with the co-design allocator, no task
// has a page outside its possible-banks vector (absent fall-backs).
func TestSoftPartitionConfinesPages(t *testing.T) {
	cfg := testConfig(config.Density8Gb, config.RefreshPerBankSeq)
	cfg.OS.Alloc = config.AllocSoftPartition
	cfg.OS.Scheduler = config.SchedCFS
	cfg.OS.RefreshAware = true
	sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunWindows(1, 1); err != nil {
		t.Fatal(err)
	}
	total := cfg.Mem.BanksPerChannel()
	for _, task := range sys.Kernel.Tasks() {
		if task.FallbackPages > 0 {
			continue // fall-back pages legitimately escape the mask
		}
		for g := 0; g < total; g++ {
			if !task.Ent.Mask.Has(g) && task.AS.PagesOnBank(g) > 0 {
				t.Errorf("task %d has %d pages on excluded bank %d",
					task.ID(), task.AS.PagesOnBank(g), g)
			}
		}
	}
}

// TestQuadCoreBuilds exercises the Figure 15 quad-core configuration.
func TestQuadCoreBuilds(t *testing.T) {
	cfg := testConfig(config.Density8Gb, config.RefreshPerBankSeq)
	cfg.Cores = 4
	cfg.OS.Alloc = config.AllocSoftPartition
	cfg.OS.Scheduler = config.SchedCFS
	cfg.OS.RefreshAware = true
	mix := workload.MixFor(testMix(), 4, 4)
	sys, err := Build(cfg, mix, Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunWindows(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tasks) != 16 {
		t.Fatalf("%d tasks, want 16", len(rep.Tasks))
	}
	if rep.HarmonicIPC <= 0 {
		t.Fatal("no progress on quad-core")
	}
}

// TestTwoDIMMBuilds exercises the 2-DIMM (4-rank, 32-bank) scaling
// scenario, where a quantum spans two refresh slots.
func TestTwoDIMMBuilds(t *testing.T) {
	cfg := testConfig(config.Density8Gb, config.RefreshPerBankSeq)
	cfg.Mem.DIMMsPerChannel = 2
	cfg.OS.Alloc = config.AllocSoftPartition
	cfg.OS.Scheduler = config.SchedCFS
	cfg.OS.RefreshAware = true
	sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunWindows(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HarmonicIPC <= 0 {
		t.Fatal("no progress with 2 DIMMs")
	}
	// Refresh interference should still be near zero.
	if rep.RefreshStalledFrac > 0.02 {
		t.Errorf("2-DIMM co-design stalled frac = %v", rep.RefreshStalledFrac)
	}
}

func TestSetTaskMasksValidation(t *testing.T) {
	cfg := testConfig(config.Density8Gb, config.RefreshNone)
	sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetTaskMasks([]buddy.BankMask{1}); err == nil {
		t.Fatal("wrong-length mask slice accepted")
	}
	masks := make([]buddy.BankMask, 8)
	for i := range masks {
		masks[i] = buddy.AllBanks(16)
	}
	if err := sys.SetTaskMasks(masks); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunWindows(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetTaskMasks(masks); err == nil {
		t.Fatal("SetTaskMasks after Run accepted")
	}
}

func TestRunTwiceFails(t *testing.T) {
	cfg := testConfig(config.Density8Gb, config.RefreshNone)
	sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunWindows(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunWindows(0, 1); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestBuildRejectsInvalidConfig(t *testing.T) {
	cfg := testConfig(config.Density8Gb, config.RefreshNone)
	cfg.Cores = 0
	if _, err := Build(cfg, testMix(), Options{}); err == nil {
		t.Fatal("invalid config accepted")
	}
	cfg2 := testConfig(config.Density8Gb, "bogus")
	if _, err := Build(cfg2, testMix(), Options{}); err == nil {
		t.Fatal("unknown refresh policy accepted")
	}
	cfg3 := testConfig(config.Density8Gb, config.RefreshNone)
	badMix := workload.Mix{Name: "bad", Entries: []workload.MixEntry{{Bench: "nope", Count: 1}}}
	if _, err := Build(cfg3, badMix, Options{}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
