// Package core assembles the full simulated machine — cores, caches,
// memory controllers, DRAM, refresh policy, and the simulated OS — and
// runs measured experiments over multi-programmed workloads. It is the
// implementation behind the public refsched API.
package core

import (
	"context"
	"fmt"
	"io"

	"refsched/internal/cache"
	"refsched/internal/config"
	"refsched/internal/cpu"
	"refsched/internal/dram"
	"refsched/internal/kernel"
	"refsched/internal/kernel/buddy"
	"refsched/internal/mc"
	"refsched/internal/metrics"
	"refsched/internal/refresh"
	"refsched/internal/sim"
	"refsched/internal/timeline"
	"refsched/internal/trace"
	"refsched/internal/workload"
)

// Options tunes experiment construction beyond the machine config.
type Options struct {
	// FootprintScale multiplies every task's memory footprint
	// (default 1.0). Tests use small scales to keep runs fast; the
	// access pattern and MPKI class are footprint-scale invariant as
	// long as footprints stay well above the LLC size.
	FootprintScale float64
	// Seed overrides cfg.Seed when non-zero.
	Seed uint64
	// ChannelParallel opts into executing same-cycle memory-controller
	// events of different channels on worker goroutines. Output is
	// byte-identical to serial execution (see internal/sim's parallel
	// determinism notes); only wall-clock changes. A no-op for
	// single-channel configs, and disabled automatically when a trace
	// or timeline recorder is attached (those observers are shared
	// mutable state on the controller's accept path).
	ChannelParallel bool
	// Ctx, when non-nil, hard-cancels a running simulation: the engine
	// checks it at cooperative checkpoints (every cancelCheckCycles of
	// simulated time) and a cancelled or expired context aborts the run
	// with an error wrapping the context error. This is distinct from
	// the sweep-level context in the runner, whose cancellation lets
	// in-flight cells finish: Ctx is for deadlines and watchdogs that
	// must abort even a wedged or oversized cell mid-run.
	Ctx context.Context
}

// cancelCheckCycles is how often (in simulated cycles) a running
// engine consults Options.Ctx — small enough that even heavily scaled
// quick-preset cells (whose whole run is a few hundred thousand
// cycles) hit checkpoints, while the check itself (one atomic load in
// ctx.Err) stays far off the per-event hot path.
const cancelCheckCycles = 1 << 16

// System is one fully wired simulated machine executing a workload mix.
type System struct {
	Cfg    config.System
	Eng    *sim.Engine
	Mapper *dram.Mapper
	Chans  []*dram.Channel
	MCs    []*mc.Controller
	Cores  []*cpu.Core
	Kernel *kernel.Kernel
	Mix    workload.Mix
	// Reg is the system's metrics registry: every layer's counters are
	// registered on it at Build time, and Report is a projection of its
	// snapshots. The hot path never touches it — layers increment their
	// own registered uint64 fields.
	Reg *metrics.Registry

	timing  dram.Timing
	started bool

	// footprintScale is the effective Options.FootprintScale, recorded
	// so a checkpoint can rebuild an identical system.
	footprintScale float64
	// observed marks a trace or timeline recorder attached: those
	// observers' state is not serialized, so checkpointing is refused.
	observed bool

	// Restore-side state: a restored system resumes from mid-run
	// instead of starting at cycle zero.
	restored   bool
	resWarmup  uint64
	resMeasure uint64
	pastWarmup bool
	warmSnap   metrics.Snapshot
}

// Build constructs a system for cfg running mix.
func Build(cfg config.System, mix workload.Mix, opt Options) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.FootprintScale == 0 {
		opt.FootprintScale = 1
	}
	if opt.Seed != 0 {
		cfg.Seed = opt.Seed
	}

	s := &System{Cfg: cfg, Eng: sim.NewEngine(), Mix: mix, footprintScale: opt.FootprintScale}
	if opt.ChannelParallel {
		s.Eng.EnableParallel(cfg.Mem.Channels) // no-op unless Channels >= 2
	}
	if ctx := opt.Ctx; ctx != nil {
		s.Eng.SetCheckpoint(cancelCheckCycles, ctx.Err)
	}
	// Pre-size the event queues for the steady-state population: each
	// core keeps up to MLP misses in flight, each controller schedules
	// per-queue-entry work, plus refresh/scheduler housekeeping.
	s.Eng.Reserve(cfg.Cores*cfg.MLP + cfg.Mem.Channels*(cfg.Mem.ReadQueue+cfg.Mem.WriteQueue) + 64)
	s.timing = dram.TimingFrom(&s.Cfg)

	var err error
	s.Mapper, err = dram.NewMapper(cfg.Mem)
	if err != nil {
		return nil, err
	}

	// DRAM channels, refresh policies and controllers.
	geo := refresh.Geometry{
		Ranks:        cfg.Mem.Ranks(),
		BanksPerRank: cfg.Mem.BanksPerRank,
		Subarrays:    cfg.Mem.SubarraysPerBank,
		Timing:       &s.timing,
	}
	var planner refresh.SlotPlanner
	for ch := 0; ch < cfg.Mem.Channels; ch++ {
		channel := dram.NewChannel(ch, cfg.Mem, &s.timing)
		pol, err := newPolicy(&cfg, geo)
		if err != nil {
			return nil, err
		}
		if p, ok := pol.(refresh.SlotPlanner); ok && planner == nil {
			planner = p
		}
		s.Chans = append(s.Chans, channel)
		// Domain ch+1 tags the controller's internal events with its
		// channel affinity (inert unless ChannelParallel is set).
		s.MCs = append(s.MCs, mc.New(s.Eng.Domain(ch+1), channel, cfg.Mem, pol))
	}

	// Cores with private cache stacks.
	for i := 0; i < cfg.Cores; i++ {
		hier, err := cache.NewHierarchy(cfg.L1, cfg.L2)
		if err != nil {
			return nil, err
		}
		s.Cores = append(s.Cores, cpu.NewCore(i, s.Eng, (*memoryPath)(s), hier, cfg.BaseCPI, cfg.MLP, cfg.ROB))
	}

	// OS: buddy + partition allocator, VM, scheduler.
	bud, err := buddy.New(s.Mapper.TotalPages())
	if err != nil {
		return nil, err
	}
	alloc := buddy.NewPartitionAllocator(bud, s.Mapper)
	s.Kernel = kernel.New(s.Eng, &s.Cfg, alloc, s.Mapper, s.Cores, planner)

	// Tasks from the mix, each with a private random stream.
	rnd := sim.NewRand(cfg.Seed)
	benches, err := mix.Tasks()
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		fp := uint64(float64(b.Footprint) * opt.FootprintScale)
		if fp < 1<<16 {
			fp = 1 << 16
		}
		gen := b.New(rnd.Fork(), fp)
		s.Kernel.AddTask(b, gen)
	}
	s.Kernel.AssignMasks()
	s.registerMetrics()
	s.Eng.SetExec(s.execPayload)
	return s, nil
}

// execPayload is the machine's single payload-event dispatcher: every
// layer schedules closure-free typed events (see sim.Payload) and this
// routes them back to the owning component. Keeping the event
// population closure-free is what makes the engine's pending-event set
// serializable for checkpoint/restore.
func (s *System) execPayload(p sim.Payload) {
	switch p.Kind {
	case sim.KindMCRefreshTick, sim.KindMCTryIssue:
		s.MCs[p.A].Exec(p)
	case sim.KindMCComplete:
		// B = core+1; 0 means an unowned (posted-write) completion that
		// exists only so event counts match the closure implementation.
		if p.B != 0 {
			s.Cores[p.B-1].MissComplete(p.C, p.D)
		}
	case sim.KindCPUSubmitRead, sim.KindCPUSubmitWrite, sim.KindCPUQuantumEnd:
		s.Cores[p.A].Exec(p)
	case sim.KindKernelDispatch, sim.KindKernelRunTask, sim.KindKernelWake:
		s.Kernel.Exec(p)
	default:
		panic(fmt.Sprintf("core: unexpected payload kind %d", p.Kind))
	}
}

// registerMetrics binds every layer's counters onto the system's
// registry under hierarchical scopes. The stat structs stay the
// hot-path write targets; the registry only reads them at snapshot
// time. New per-layer measurements are one registration line here (or
// zero: a new uint64 field on a registered struct is picked up
// automatically).
func (s *System) registerMetrics() {
	s.Reg = metrics.NewRegistry()
	root := s.Reg.Root()

	root.Sub("engine").CounterPtr("events", &s.Eng.Executed)

	for i, c := range s.MCs {
		c := c
		scope := root.Subf("mc[%d]", i)
		scope.Struct(&c.Stats)
		scope.Sub("refresh").Struct(&c.PolicyStats)
		scope.GaugeFunc("read_queue_depth", func() float64 { return float64(c.ReadQueueLen()) })
		scope.GaugeFunc("write_queue_depth", func() float64 { return float64(c.WriteQueueLen()) })
		ch := s.Chans[i]
		for g := 0; g < ch.TotalBanks(); g++ {
			scope.Subf("bank[%d]", g).Struct(&ch.Bank(g).Stats)
		}
	}

	for i, t := range s.Kernel.Tasks() {
		scope := root.Subf("task[%d]", i)
		scope.Struct(t.Stats())
		scope.CounterPtr("fallback_pages", &t.FallbackPages)
	}

	schedScope := root.Sub("sched")
	schedScope.Struct(s.Kernel.Picker().Stats())
	schedScope.Histogram("skips_per_pick", s.Kernel.Picker().SkipHistogram())
	root.Sub("alloc").Struct(&s.Kernel.Allocator().Stats)
	root.Sub("kernel").Struct(&s.Kernel.Stats)
}

// MetricsSnapshot reads the full registry (cumulative since
// construction) — the machine-readable counterpart of Report.
func (s *System) MetricsSnapshot() metrics.Snapshot { return s.Reg.Snapshot() }

// newPolicy builds the per-channel refresh scheduler, threading
// policy-specific parameters from the config.
func newPolicy(cfg *config.System, geo refresh.Geometry) (refresh.Scheduler, error) {
	switch cfg.Refresh.Policy {
	case config.RefreshAdaptive:
		epoch := cfg.Cycles(cfg.Refresh.AdaptiveEpochUS * 1000)
		return refresh.NewAdaptive(geo, epoch, cfg.Refresh.AdaptiveHighUtil), nil
	case config.RefreshRAIDR:
		b := cfg.Refresh.RAIDRBins
		return refresh.NewRAIDR(geo, refresh.RetentionBins{
			OneWindow: b[0], TwoWindow: b[1], FourWindow: b[2],
		})
	default:
		return refresh.New(cfg.Refresh.Policy, geo)
	}
}

// Window returns the scaled retention window in cycles — the natural
// unit for warmup/measure durations.
func (s *System) Window() uint64 { return s.Cfg.TREFW() }

// AttachTrace records every demand memory request of the run to w in
// the trace package's binary format. Call before Run; call the returned
// recorder's Flush after Run. See internal/trace.
func (s *System) AttachTrace(w io.Writer) (*trace.Recorder, error) {
	if s.started {
		return nil, fmt.Errorf("core: cannot attach a trace after Run")
	}
	// The tracer is shared mutable state on every controller's accept
	// path; fall back to serial execution.
	s.Eng.Close()
	s.observed = true
	rec := trace.NewRecorder(w)
	for _, c := range s.MCs {
		c.SetTracer(func(cycle, addr uint64, write bool, task int) {
			rec.Record(trace.Record{Cycle: cycle, Addr: addr, Write: write, TaskID: int32(task)})
		})
	}
	return rec, nil
}

// AttachTimeline records simulator spans — per-bank refresh busy
// slots, refresh-stalled reads, per-core task quanta, and scheduler
// skip decisions — into a Perfetto-loadable timeline flushed to w as
// Chrome trace-event JSON. Call before Run; call the returned
// recorder's Flush after Run. Simulated cycles are emitted as integer
// trace microseconds (1 cycle = 1 µs of trace time). See
// internal/timeline for the track layout.
func (s *System) AttachTimeline(w io.Writer) (*timeline.Recorder, error) {
	if s.started {
		return nil, fmt.Errorf("core: cannot attach a timeline after Run")
	}
	// The recorder is shared mutable state on the controllers' refresh
	// and stall paths; fall back to serial execution.
	s.Eng.Close()
	s.observed = true
	rec := timeline.NewRecorder(w, 0)
	rec.SetProcessName(timeline.PidCPU, "cpu")
	for _, c := range s.Cores {
		rec.SetThreadName(timeline.PidCPU, int32(c.ID), fmt.Sprintf("core%d", c.ID))
	}
	s.Kernel.SetTimeline(rec)
	for i, c := range s.MCs {
		pid := int32(timeline.PidDRAMBase + i)
		rec.SetProcessName(pid, fmt.Sprintf("dram ch%d (%s)", i, s.Cfg.Refresh.Policy))
		ch := s.Chans[i]
		for g := 0; g < ch.TotalBanks(); g++ {
			rec.SetThreadName(pid, int32(g), fmt.Sprintf("bank%d", g))
		}
		c.SetTimeline(rec, pid)
	}
	return rec, nil
}

// SetTaskMasks overrides every task's possible-banks vector (replacing
// whatever AssignMasks chose). It must be called before Run. masks must
// have one entry per task.
func (s *System) SetTaskMasks(masks []buddy.BankMask) error {
	if s.started {
		return fmt.Errorf("core: cannot set masks after Run")
	}
	tasks := s.Kernel.Tasks()
	if len(masks) != len(tasks) {
		return fmt.Errorf("core: %d masks for %d tasks", len(masks), len(tasks))
	}
	for i, t := range tasks {
		t.Ent.Mask = masks[i]
	}
	return nil
}

// Run executes the workload with warmup cycles of cache/queue warmup
// followed by measure cycles of measured execution, and returns the
// report. It may be called once per System.
//
// Run is the error boundary of the simulation: typed sim.Fault values
// unwinding out of the event loop (out-of-memory demand paging, invalid
// buddy frees, past-scheduled events) are converted into returned
// errors tagged with the cell's identity, so a faulting cell degrades
// into a failed run the sweep pipeline can quarantine. Panics with
// non-Fault values are genuine programmer invariants and propagate.
func (s *System) Run(warmup, measure uint64) (rep *Report, err error) {
	if s.started {
		return nil, fmt.Errorf("core: system already run")
	}
	if s.restored {
		return nil, fmt.Errorf("core: restored system must Resume, not Run")
	}
	s.started = true
	defer s.Eng.Close() // release parallel workers, if any
	defer func() {
		if p := recover(); p != nil {
			f, ok := p.(sim.Fault)
			if !ok {
				panic(p)
			}
			rep = nil
			err = fmt.Errorf("core: %s/%s/%s at cycle %d: %w",
				s.Mix.Name, s.Cfg.Mem.Density, s.Cfg.Refresh.Policy, s.Eng.Now(), f)
		}
	}()
	s.Kernel.Start()
	s.Eng.RunUntil(sim.Time(warmup))
	snap := s.snapshot()
	s.Eng.RunUntil(sim.Time(warmup + measure))
	return s.report(snap, measure), nil
}

// RunWindows runs warmupW retention windows of warmup and measureW
// windows of measurement.
func (s *System) RunWindows(warmupW, measureW int) (*Report, error) {
	w := s.Window()
	return s.Run(uint64(warmupW)*w, uint64(measureW)*w)
}

// memoryPath adapts System to cpu.Memory, routing by channel.
type memoryPath System

// SubmitRead implements cpu.Memory.
func (m *memoryPath) SubmitRead(r *mc.Request) bool {
	return m.MCs[r.Coord.Channel].SubmitRead(r)
}

// WhenReadSpace implements cpu.Memory.
func (m *memoryPath) WhenReadSpace(ch int, r *mc.Request) { m.MCs[ch].WhenReadSpace(r) }

// SubmitWrite implements cpu.Memory.
func (m *memoryPath) SubmitWrite(r *mc.Request) bool {
	return m.MCs[r.Coord.Channel].SubmitWrite(r)
}

// WhenWriteSpace implements cpu.Memory.
func (m *memoryPath) WhenWriteSpace(ch int, r *mc.Request) { m.MCs[ch].WhenWriteSpace(r) }

// Decode implements cpu.Memory.
func (m *memoryPath) Decode(addr uint64) dram.Coord { return m.Mapper.Decode(addr) }
