package core

import (
	"encoding/json"
	"testing"

	"refsched/internal/config"
	"refsched/internal/workload"
)

// runChannels builds a multi-channel system and runs a short measured
// window, returning the report serialized to JSON (the byte format the
// golden figure tests ultimately consume).
func runChannels(t *testing.T, channels int, parallel bool) []byte {
	t.Helper()
	cfg := config.Default(config.Density32Gb, 256)
	cfg.Mem.Channels = channels
	cfg.Seed = 7
	mix := workload.Table2()[0]
	sys, err := Build(cfg, mix, Options{FootprintScale: 0.02, ChannelParallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	// Long enough to cross many refresh intervals and several quanta.
	rep, err := sys.Run(50_000, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestChannelParallelByteIdentical is the end-to-end determinism gate
// for opt-in channel parallelism: the full report of a multi-channel
// run must be byte-identical with and without ChannelParallel. Run
// under -race (both make race and the make ci gate run it) this also
// validates the synchronization of the parallel batches.
func TestChannelParallelByteIdentical(t *testing.T) {
	for _, channels := range []int{2, 4} {
		serial := runChannels(t, channels, false)
		par := runChannels(t, channels, true)
		if string(serial) != string(par) {
			t.Fatalf("channels=%d: parallel report diverged from serial\nserial: %s\nparallel: %s",
				channels, serial, par)
		}
	}
}

// TestChannelParallelSingleChannelNoop pins that enabling parallelism
// on the default single-channel config changes nothing.
func TestChannelParallelSingleChannelNoop(t *testing.T) {
	serial := runChannels(t, 1, false)
	par := runChannels(t, 1, true)
	if string(serial) != string(par) {
		t.Fatal("single-channel run changed under ChannelParallel")
	}
}
