package core

import (
	"errors"
	"strings"
	"testing"

	"refsched/internal/config"
	"refsched/internal/sim"
)

// TestRunConvertsSimFaultToError exercises the run boundary's error
// taxonomy: a typed sim.Fault unwinding out of the event loop must come
// back as a returned error tagged with the cell identity — never as a
// process-killing panic — so the sweep pipeline can quarantine the cell.
func TestRunConvertsSimFaultToError(t *testing.T) {
	cfg := testConfig(config.Density8Gb, config.RefreshAllBank)
	sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// Plant a component bookkeeping bug: an event that schedules into
	// the past once the clock reaches cycle 10.
	sys.Eng.Schedule(10, func() {
		sys.Eng.ScheduleAt(5, func() {})
	})
	rep, err := sys.RunWindows(1, 1)
	if err == nil {
		t.Fatal("Run swallowed a simulation fault")
	}
	if rep != nil {
		t.Error("faulted run must not return a report")
	}
	var f *sim.PastEventError
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *sim.PastEventError in chain", err)
	}
	if f.T != 5 || f.Now != 10 {
		t.Errorf("fault = %+v, want T=5 Now=10", f)
	}
	// The error names the cell so a quarantine line is self-describing.
	for _, want := range []string{"smoke", "8Gb", "allbank", "cycle 10"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestRunRepanicsNonFaultValues: a panic that is not a typed sim.Fault
// is a genuine programmer invariant and must propagate, not be
// laundered into an error.
func TestRunRepanicsNonFaultValues(t *testing.T) {
	cfg := testConfig(config.Density8Gb, config.RefreshAllBank)
	sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	sys.Eng.Schedule(10, func() { panic("invariant violated") })
	defer func() {
		p := recover()
		if p != "invariant violated" {
			t.Fatalf("recover() = %v, want the original panic value", p)
		}
	}()
	sys.RunWindows(1, 1)
	t.Fatal("non-fault panic was swallowed")
}

// TestRunOnlyOnce: the boundary still enforces the one-shot contract.
func TestRunOnlyOnce(t *testing.T) {
	cfg := testConfig(config.Density8Gb, config.RefreshAllBank)
	sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunWindows(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunWindows(1, 1); err == nil {
		t.Fatal("second Run must error")
	}
}
