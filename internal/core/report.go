package core

import (
	"fmt"
	"strings"

	"refsched/internal/cpu"
	"refsched/internal/dram"
	"refsched/internal/kernel/buddy"
	"refsched/internal/kernel/sched"
	"refsched/internal/metrics"
	"refsched/internal/stats"
)

// TaskReport summarizes one task over the measurement interval.
type TaskReport struct {
	TaskID        int     `json:"task_id"`
	Bench         string  `json:"bench"`
	IPC           float64 `json:"ipc"`
	MPKI          float64 `json:"mpki"`
	Instructions  uint64  `json:"instructions"`
	CPUCycles     uint64  `json:"cpu_cycles"`
	MemStall      uint64  `json:"mem_stall"`
	LLCMisses     uint64  `json:"llc_misses"`
	PageFaults    uint64  `json:"page_faults"`
	Quanta        uint64  `json:"quanta"`
	FallbackPages uint64  `json:"fallback_pages"`
}

// Report summarizes one measured run. It is a pure projection of two
// metrics-registry snapshots — one at the end of warmup, one at the end
// of measurement — plus the run's static identity (mix, policy,
// density, bench names): every numeric field below is computed from
// snapshot counters, never read from a layer directly. The JSON
// encoding is stable (snake_case field names) and round-trips exactly,
// which is what lets journaled and served reports reproduce rendered
// output byte-identically.
type Report struct {
	Mix     string `json:"mix"`
	Policy  string `json:"policy"`
	Density string `json:"density"`

	// HarmonicIPC is the paper's headline metric: the harmonic mean of
	// per-task IPC over the measurement interval.
	HarmonicIPC float64 `json:"harmonic_ipc"`
	// AvgMemLatency is the mean demand-read latency (queue entry to
	// data) in CPU cycles.
	AvgMemLatency float64 `json:"avg_mem_latency"`
	// AvgMemLatencyMemCycles converts to DDR3-1600 memory-bus cycles,
	// the unit Figure 11 uses (4 CPU cycles per memory cycle at
	// 3.2 GHz / DDR3-1600).
	AvgMemLatencyMemCycles float64 `json:"avg_mem_latency_mem_cycles"`

	Tasks []TaskReport `json:"tasks"`

	// Memory-system aggregates.
	Reads               uint64  `json:"reads"`
	Writes              uint64  `json:"writes"`
	RowHitRate          float64 `json:"row_hit_rate"`
	RefreshCommands     uint64  `json:"refresh_commands"`
	RefreshStalledReads uint64  `json:"refresh_stalled_reads"`
	RefreshStallCycles  uint64  `json:"refresh_stall_cycles"`
	// RefreshStalledFrac is the fraction of demand reads that waited on
	// a refreshing bank — the mechanism the co-design eliminates.
	RefreshStalledFrac float64 `json:"refresh_stalled_frac"`

	// Energy is the channel energy breakdown over the measurement
	// interval (default DDR3-1600 model); RefreshEnergyFrac is
	// refresh's share of it.
	Energy            dram.EnergyBreakdown `json:"energy"`
	RefreshEnergyFrac float64              `json:"refresh_energy_frac"`

	// FairnessSpread is max/min CPU time across tasks over the
	// measurement interval (1.0 = perfectly fair). The refresh-aware
	// scheduler constrains which tasks may run in each slot, so this
	// quantifies the Section 5.4 fairness concern η exists to bound.
	FairnessSpread float64 `json:"fairness_spread"`

	// OS aggregates (cumulative over the whole run, including warmup,
	// as the paper's OS-side counters are).
	SchedStats sched.Stats `json:"sched_stats"`
	// SchedSkips is the distribution of consecutive candidates skipped
	// per pick_next_task call (unit-width buckets); mass at or beyond
	// η is the fallback regime. Cumulative over the whole run, like
	// SchedStats.
	SchedSkips     metrics.HistValue    `json:"sched_skips_per_pick"`
	AllocStats     buddy.PartitionStats `json:"alloc_stats"`
	IdleQuanta     uint64               `json:"idle_quanta"`
	TotalQuanta    uint64               `json:"total_quanta"`
	MeasuredCycles uint64               `json:"measured_cycles"`

	// Events is the number of discrete-event-engine events executed
	// during the measurement interval. Two runs of the same cell are
	// bit-identical iff this matches along with the metric fields, so
	// the parallel-runner determinism tests assert on it.
	Events uint64 `json:"events"`
}

// snapshot captures the registry for later differencing; called at the
// warmup/measurement boundary.
func (s *System) snapshot() metrics.Snapshot { return s.Reg.Snapshot() }

// taskDelta reconstructs one task's interval stats from the snapshot
// diff.
func taskDelta(d metrics.Snapshot, i int) cpu.TaskStats {
	pfx := fmt.Sprintf("task[%d].", i)
	return cpu.TaskStats{
		Instructions: d.Counter(pfx + "instructions"),
		CPUCycles:    d.Counter(pfx + "cpu_cycles"),
		MemStall:     d.Counter(pfx + "mem_stall"),
		LLCMisses:    d.Counter(pfx + "llc_misses"),
		PageFaults:   d.Counter(pfx + "page_faults"),
		Quanta:       d.Counter(pfx + "quanta"),
	}
}

// bankDelta sums a channel's per-bank interval counters (bank-major, so
// uint64 sums match the pre-registry per-channel aggregation exactly).
func bankDelta(d metrics.Snapshot, mcIdx, banks int) dram.BankStats {
	var b dram.BankStats
	for g := 0; g < banks; g++ {
		pfx := fmt.Sprintf("mc[%d].bank[%d].", mcIdx, g)
		b.Reads += d.Counter(pfx + "reads")
		b.Writes += d.Counter(pfx + "writes")
		b.RowHits += d.Counter(pfx + "row_hits")
		b.RowMisses += d.Counter(pfx + "row_misses")
		b.RowConflicts += d.Counter(pfx + "row_conflicts")
		b.Refreshes += d.Counter(pfx + "refreshes")
		b.RowsRefreshed += d.Counter(pfx + "rows_refreshed")
		b.RefreshBusyCycles += d.Counter(pfx + "refresh_busy_cycles")
	}
	return b
}

// report projects the measurement interval end.Diff(snap) — plus the
// cumulative end snapshot for the OS-side totals — into a Report.
func (s *System) report(snap metrics.Snapshot, measured uint64) *Report {
	end := s.Reg.Snapshot()
	d := end.Diff(snap)

	r := &Report{
		Mix:            s.Mix.Name,
		Policy:         string(s.Cfg.Refresh.Policy),
		Density:        s.Cfg.Mem.Density.String(),
		MeasuredCycles: measured,
		Events:         d.Counter("engine.events"),
	}

	var ipcs []float64
	for i, t := range s.Kernel.Tasks() {
		td := taskDelta(d, i)
		tr := TaskReport{
			TaskID:        t.ID(),
			Bench:         t.Bench.Name,
			IPC:           td.IPC(),
			MPKI:          td.MPKI(),
			Instructions:  td.Instructions,
			CPUCycles:     td.CPUCycles,
			MemStall:      td.MemStall,
			LLCMisses:     td.LLCMisses,
			PageFaults:    td.PageFaults,
			Quanta:        td.Quanta,
			FallbackPages: end.Counter(fmt.Sprintf("task[%d].fallback_pages", i)),
		}
		r.Tasks = append(r.Tasks, tr)
		if tr.IPC > 0 {
			ipcs = append(ipcs, tr.IPC)
		}
	}
	r.HarmonicIPC = stats.HarmonicMean(ipcs)

	var minCPU, maxCPU uint64
	for i, tr := range r.Tasks {
		if i == 0 || tr.CPUCycles < minCPU {
			minCPU = tr.CPUCycles
		}
		if tr.CPUCycles > maxCPU {
			maxCPU = tr.CPUCycles
		}
	}
	if minCPU > 0 {
		r.FairnessSpread = float64(maxCPU) / float64(minCPU)
	}

	var reads, writes, latSum, refCmds, refStalled, refStallCyc uint64
	for i := range s.MCs {
		pfx := fmt.Sprintf("mc[%d].", i)
		reads += d.Counter(pfx + "reads")
		writes += d.Counter(pfx + "writes")
		latSum += d.Counter(pfx + "read_latency_sum")
		refCmds += d.Counter(pfx + "refresh_commands")
		refStalled += d.Counter(pfx + "refresh_stalled_reads")
		refStallCyc += d.Counter(pfx + "refresh_stall_cycles")
	}
	r.Reads, r.Writes = reads, writes
	r.RefreshCommands = refCmds
	r.RefreshStalledReads = refStalled
	r.RefreshStallCycles = refStallCyc
	if reads > 0 {
		r.AvgMemLatency = float64(latSum) / float64(reads)
		r.AvgMemLatencyMemCycles = r.AvgMemLatency / 4
		r.RefreshStalledFrac = float64(refStalled) / float64(reads)
	}

	var hits, misses, conflicts uint64
	em := dram.DefaultEnergyModel()
	for i, ch := range s.Chans {
		delta := bankDelta(d, i, ch.TotalBanks())
		hits += delta.RowHits
		misses += delta.RowMisses
		conflicts += delta.RowConflicts
		e := em.Energy(delta, measured, s.Cfg.CPUFreqGHz)
		r.Energy.ActivateMJ += e.ActivateMJ
		r.Energy.ReadMJ += e.ReadMJ
		r.Energy.WriteMJ += e.WriteMJ
		r.Energy.RefreshMJ += e.RefreshMJ
		r.Energy.BackgroundMJ += e.BackgroundMJ
	}
	r.RefreshEnergyFrac = r.Energy.RefreshFrac()
	if tot := hits + misses + conflicts; tot > 0 {
		r.RowHitRate = float64(hits) / float64(tot)
	}

	r.SchedStats = sched.Stats{
		Picks:             end.Counter("sched.picks"),
		EligiblePicks:     end.Counter("sched.eligible_picks"),
		FallbackPicks:     end.Counter("sched.fallback_picks"),
		BestEffortPicks:   end.Counter("sched.best_effort_picks"),
		SkippedCandidates: end.Counter("sched.skipped_candidates"),
		Migrations:        end.Counter("sched.migrations"),
	}
	r.SchedSkips = end.Histogram("sched.skips_per_pick")
	r.AllocStats = buddy.PartitionStats{
		CacheHits: end.Counter("alloc.cache_hits"),
		BuddyHits: end.Counter("alloc.buddy_hits"),
		Stashed:   end.Counter("alloc.stashed"),
		Fallbacks: end.Counter("alloc.fallbacks"),
		Failures:  end.Counter("alloc.failures"),
	}
	r.IdleQuanta = end.Counter("kernel.idle_quanta")
	r.TotalQuanta = end.Counter("kernel.quanta")
	return r
}

// String renders a compact human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s: hIPC=%.4f memLat=%.1fcyc rowHit=%.2f refreshStalled=%.4f\n",
		r.Mix, r.Density, r.Policy, r.HarmonicIPC, r.AvgMemLatency, r.RowHitRate, r.RefreshStalledFrac)
	for _, t := range r.Tasks {
		fmt.Fprintf(&b, "  task %2d %-9s IPC=%.4f MPKI=%6.2f quanta=%d\n",
			t.TaskID, t.Bench, t.IPC, t.MPKI, t.Quanta)
	}
	return b.String()
}
