package core

import (
	"fmt"
	"strings"

	"refsched/internal/cpu"
	"refsched/internal/dram"
	"refsched/internal/kernel/buddy"
	"refsched/internal/kernel/sched"
	"refsched/internal/mc"
	"refsched/internal/stats"
)

// TaskReport summarizes one task over the measurement interval.
type TaskReport struct {
	TaskID        int
	Bench         string
	IPC           float64
	MPKI          float64
	Instructions  uint64
	CPUCycles     uint64
	MemStall      uint64
	LLCMisses     uint64
	PageFaults    uint64
	Quanta        uint64
	FallbackPages uint64
}

// Report summarizes one measured run.
type Report struct {
	Mix     string
	Policy  string
	Density string

	// HarmonicIPC is the paper's headline metric: the harmonic mean of
	// per-task IPC over the measurement interval.
	HarmonicIPC float64
	// AvgMemLatency is the mean demand-read latency (queue entry to
	// data) in CPU cycles.
	AvgMemLatency float64
	// AvgMemLatencyMemCycles converts to DDR3-1600 memory-bus cycles,
	// the unit Figure 11 uses (4 CPU cycles per memory cycle at
	// 3.2 GHz / DDR3-1600).
	AvgMemLatencyMemCycles float64

	Tasks []TaskReport

	// Memory-system aggregates.
	Reads               uint64
	Writes              uint64
	RowHitRate          float64
	RefreshCommands     uint64
	RefreshStalledReads uint64
	RefreshStallCycles  uint64
	// RefreshStalledFrac is the fraction of demand reads that waited on
	// a refreshing bank — the mechanism the co-design eliminates.
	RefreshStalledFrac float64

	// Energy is the channel energy breakdown over the measurement
	// interval (default DDR3-1600 model); RefreshEnergyFrac is
	// refresh's share of it.
	Energy            dram.EnergyBreakdown
	RefreshEnergyFrac float64

	// FairnessSpread is max/min CPU time across tasks over the
	// measurement interval (1.0 = perfectly fair). The refresh-aware
	// scheduler constrains which tasks may run in each slot, so this
	// quantifies the Section 5.4 fairness concern η exists to bound.
	FairnessSpread float64

	// OS aggregates.
	SchedStats     sched.Stats
	AllocStats     buddy.PartitionStats
	IdleQuanta     uint64
	TotalQuanta    uint64
	MeasuredCycles uint64

	// Events is the number of discrete-event-engine events executed
	// during the measurement interval. Two runs of the same cell are
	// bit-identical iff this matches along with the metric fields, so
	// the parallel-runner determinism tests assert on it.
	Events uint64
}

// snapshot captures counters for later differencing.
type snapshot struct {
	tasks  []cpu.TaskStats
	mcs    []mc.Stats
	banks  []dram.BankStats
	events uint64
}

func (s *System) snapshot() snapshot {
	snap := snapshot{events: s.Eng.Executed}
	for _, t := range s.Kernel.Tasks() {
		snap.tasks = append(snap.tasks, *t.Stats())
	}
	for _, c := range s.MCs {
		snap.mcs = append(snap.mcs, c.Stats)
	}
	for _, ch := range s.Chans {
		snap.banks = append(snap.banks, ch.Stats())
	}
	return snap
}

func (s *System) report(snap snapshot, measured uint64) *Report {
	r := &Report{
		Mix:            s.Mix.Name,
		Policy:         string(s.Cfg.Refresh.Policy),
		Density:        s.Cfg.Mem.Density.String(),
		MeasuredCycles: measured,
		Events:         s.Eng.Executed - snap.events,
	}

	var ipcs []float64
	for i, t := range s.Kernel.Tasks() {
		cur := *t.Stats()
		d := cpu.TaskStats{
			Instructions: cur.Instructions - snap.tasks[i].Instructions,
			CPUCycles:    cur.CPUCycles - snap.tasks[i].CPUCycles,
			MemStall:     cur.MemStall - snap.tasks[i].MemStall,
			LLCMisses:    cur.LLCMisses - snap.tasks[i].LLCMisses,
			PageFaults:   cur.PageFaults - snap.tasks[i].PageFaults,
			Quanta:       cur.Quanta - snap.tasks[i].Quanta,
		}
		tr := TaskReport{
			TaskID:        t.ID(),
			Bench:         t.Bench.Name,
			IPC:           d.IPC(),
			MPKI:          d.MPKI(),
			Instructions:  d.Instructions,
			CPUCycles:     d.CPUCycles,
			MemStall:      d.MemStall,
			LLCMisses:     d.LLCMisses,
			PageFaults:    d.PageFaults,
			Quanta:        d.Quanta,
			FallbackPages: t.FallbackPages,
		}
		r.Tasks = append(r.Tasks, tr)
		if tr.IPC > 0 {
			ipcs = append(ipcs, tr.IPC)
		}
	}
	r.HarmonicIPC = stats.HarmonicMean(ipcs)

	var minCPU, maxCPU uint64
	for i, tr := range r.Tasks {
		if i == 0 || tr.CPUCycles < minCPU {
			minCPU = tr.CPUCycles
		}
		if tr.CPUCycles > maxCPU {
			maxCPU = tr.CPUCycles
		}
	}
	if minCPU > 0 {
		r.FairnessSpread = float64(maxCPU) / float64(minCPU)
	}

	var reads, writes, latSum, refCmds, refStalled, refStallCyc uint64
	for i, c := range s.MCs {
		d := c.Stats
		p := snap.mcs[i]
		reads += d.Reads - p.Reads
		writes += d.Writes - p.Writes
		latSum += d.ReadLatencySum - p.ReadLatencySum
		refCmds += d.RefreshCommands - p.RefreshCommands
		refStalled += d.RefreshStalledReads - p.RefreshStalledReads
		refStallCyc += d.RefreshStallCycles - p.RefreshStallCycles
	}
	r.Reads, r.Writes = reads, writes
	r.RefreshCommands = refCmds
	r.RefreshStalledReads = refStalled
	r.RefreshStallCycles = refStallCyc
	if reads > 0 {
		r.AvgMemLatency = float64(latSum) / float64(reads)
		r.AvgMemLatencyMemCycles = r.AvgMemLatency / 4
		r.RefreshStalledFrac = float64(refStalled) / float64(reads)
	}

	var hits, misses, conflicts uint64
	em := dram.DefaultEnergyModel()
	for i, ch := range s.Chans {
		d := ch.Stats()
		p := snap.banks[i]
		hits += d.RowHits - p.RowHits
		misses += d.RowMisses - p.RowMisses
		conflicts += d.RowConflicts - p.RowConflicts
		delta := dram.BankStats{
			Reads:             d.Reads - p.Reads,
			Writes:            d.Writes - p.Writes,
			RowMisses:         d.RowMisses - p.RowMisses,
			RowConflicts:      d.RowConflicts - p.RowConflicts,
			RowsRefreshed:     d.RowsRefreshed - p.RowsRefreshed,
			RefreshBusyCycles: d.RefreshBusyCycles - p.RefreshBusyCycles,
		}
		e := em.Energy(delta, measured, s.Cfg.CPUFreqGHz)
		r.Energy.ActivateMJ += e.ActivateMJ
		r.Energy.ReadMJ += e.ReadMJ
		r.Energy.WriteMJ += e.WriteMJ
		r.Energy.RefreshMJ += e.RefreshMJ
		r.Energy.BackgroundMJ += e.BackgroundMJ
	}
	r.RefreshEnergyFrac = r.Energy.RefreshFrac()
	if tot := hits + misses + conflicts; tot > 0 {
		r.RowHitRate = float64(hits) / float64(tot)
	}

	r.SchedStats = *s.Kernel.Picker().Stats()
	r.AllocStats = s.Kernel.Allocator().Stats
	r.IdleQuanta = s.Kernel.Stats.IdleQuanta
	r.TotalQuanta = s.Kernel.Stats.Quanta
	return r
}

// String renders a compact human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s: hIPC=%.4f memLat=%.1fcyc rowHit=%.2f refreshStalled=%.4f\n",
		r.Mix, r.Density, r.Policy, r.HarmonicIPC, r.AvgMemLatency, r.RowHitRate, r.RefreshStalledFrac)
	for _, t := range r.Tasks {
		fmt.Fprintf(&b, "  task %2d %-9s IPC=%.4f MPKI=%6.2f quanta=%d\n",
			t.TaskID, t.Bench, t.IPC, t.MPKI, t.Quanta)
	}
	return b.String()
}
