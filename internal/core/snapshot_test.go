package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"refsched/internal/config"
	"refsched/internal/sim"
)

func reportBytes(t *testing.T, rep *Report) []byte {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// referenceRun executes the cell without any checkpointing.
func referenceRun(t *testing.T, cfg config.System, warmup, measure uint64) []byte {
	t.Helper()
	sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(warmup, measure)
	if err != nil {
		t.Fatal(err)
	}
	return reportBytes(t, rep)
}

// codecRoundTrip pushes st through the file format and back.
func codecRoundTrip(t *testing.T, st *SystemState) *SystemState {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, st); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()), "mem")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCheckpointResumeByteIdentical is the contract test for the whole
// snapshot stack: a run that checkpoints periodically produces the
// byte-identical report of an uncheckpointed run, and resuming from any
// checkpoint — including ones taken mid-quantum and mid-refresh — again
// produces the byte-identical report. Both the refresh-oblivious
// baseline and the full co-design machine (CFS + refresh-aware
// scheduling + per-bank-sequenced refresh) are covered.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		cfg  config.System
	}{
		{"baseline-allbank-32gb", testConfig(config.Density32Gb, config.RefreshAllBank)},
		{"codesign-perbankseq", func() config.System {
			cfg := testConfig(config.Density8Gb, config.RefreshPerBankSeq)
			cfg.OS.Alloc = config.AllocSoftPartition
			cfg.OS.Scheduler = config.SchedCFS
			cfg.OS.RefreshAware = true
			return cfg
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			w := cfg.TREFW()
			warmup, measure := w, 2*w
			ref := referenceRun(t, cfg, warmup, measure)

			sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
			if err != nil {
				t.Fatal(err)
			}
			// Misaligned with both the quantum grid and the refresh
			// cadence, so checkpoints land mid-quantum (and, with
			// enough samples, mid-refresh).
			every := cfg.Timeslice() + cfg.Timeslice()/3 + 7
			var snaps []*SystemState
			rep, err := sys.RunCheckpointed(warmup, measure, every, func(st *SystemState) error {
				snaps = append(snaps, st)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := reportBytes(t, rep); !bytes.Equal(got, ref) {
				t.Fatalf("checkpointed run diverged from reference:\n%s\nvs\n%s", got, ref)
			}
			if len(snaps) < 3 {
				t.Fatalf("only %d checkpoints taken", len(snaps))
			}

			// Classify snapshots: mid-quantum (a core is executing a
			// task) and mid-refresh (a bank's refresh end lies in the
			// future).
			midQuantum, midRefresh := -1, -1
			for i, st := range snaps {
				cyc := sim.Time(st.Cycle())
				for _, c := range st.Cores {
					if c.TaskID >= 0 && !c.Idle && midQuantum < 0 {
						midQuantum = i
					}
				}
				for _, ch := range st.Chans {
					for _, b := range ch.Banks {
						if b.RefUntil > cyc && midRefresh < 0 {
							midRefresh = i
						}
					}
				}
			}
			if midQuantum < 0 {
				t.Fatal("no checkpoint caught a core mid-quantum")
			}
			if midRefresh < 0 {
				t.Fatal("no checkpoint caught a bank mid-refresh")
			}

			resume := func(i int) {
				st := codecRoundTrip(t, snaps[i])
				rsys, err := Restore(st, Options{})
				if err != nil {
					t.Fatal(err)
				}
				rrep, err := rsys.Resume(0, nil)
				if err != nil {
					t.Fatal(err)
				}
				if got := reportBytes(t, rrep); !bytes.Equal(got, ref) {
					t.Fatalf("resume from checkpoint %d (cycle %d) diverged:\n%s\nvs\n%s",
						i, snaps[i].Cycle(), got, ref)
				}
			}
			resume(midQuantum)
			resume(midRefresh)
			resume(len(snaps) - 1)
		})
	}
}

// TestResumeWithFurtherCheckpoints resumes from an early snapshot while
// emitting new checkpoints, then resumes from one of those — the
// preemption pattern refschedd uses (a job may be preempted repeatedly).
func TestResumeWithFurtherCheckpoints(t *testing.T) {
	cfg := testConfig(config.Density8Gb, config.RefreshAllBank)
	w := cfg.TREFW()
	warmup, measure := w, 2*w
	ref := referenceRun(t, cfg, warmup, measure)

	sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	every := cfg.Timeslice()*2 + 13
	var first *SystemState
	_, err = sys.RunCheckpointed(warmup, measure, every, func(st *SystemState) error {
		if first == nil {
			first = st
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	rsys, err := Restore(first, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var later *SystemState
	_, err = rsys.Resume(every, func(st *SystemState) error {
		later = st
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if later == nil {
		t.Fatal("resumed run emitted no checkpoints")
	}
	r2, err := Restore(later, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r2.Resume(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := reportBytes(t, rep); !bytes.Equal(got, ref) {
		t.Fatalf("twice-resumed run diverged:\n%s\nvs\n%s", got, ref)
	}
}

// TestSnapshotRefusals covers the typed refusal paths: parallel
// execution and attached observers cannot checkpoint.
func TestSnapshotRefusals(t *testing.T) {
	cfg := testConfig(config.Density8Gb, config.RefreshAllBank)
	cfg.Mem.Channels = 2

	st := &SystemState{Cfg: cfg, Mix: testMix(), FootprintScale: 0.01}
	if _, err := Restore(st, Options{ChannelParallel: true}); !errors.Is(err, sim.ErrParallelSnapshot) {
		t.Fatalf("parallel restore err = %v", err)
	}

	sys, err := Build(testConfig(config.Density8Gb, config.RefreshAllBank), testMix(), Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AttachTimeline(io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunCheckpointed(0, 1000, 100, func(*SystemState) error { return nil }); err == nil {
		t.Fatal("checkpointing with a timeline attached must fail")
	}
}

func writeTestSnapshot(t *testing.T) (string, []byte) {
	t.Helper()
	cfg := testConfig(config.Density8Gb, config.RefreshAllBank)
	sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	var snap *SystemState
	every := cfg.Timeslice()
	_, err = sys.RunCheckpointed(0, 4*every, every, func(st *SystemState) error {
		if snap == nil {
			snap = st
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cell.snap")
	if err := WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

// TestSnapshotCorruptionRefused proves the codec refuses damaged files
// with typed errors rather than restoring a subtly wrong machine:
// truncation, bit flips, version skew, and wrong magic each produce the
// right error type.
func TestSnapshotCorruptionRefused(t *testing.T) {
	path, data := writeTestSnapshot(t)

	if _, err := ReadSnapshotFile(path); err != nil {
		t.Fatalf("pristine snapshot refused: %v", err)
	}

	rewrite := func(b []byte) {
		t.Helper()
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var corrupt *CorruptSnapshotError
	var skew *SnapshotVersionError

	// Truncated mid-body.
	rewrite(data[:len(data)/2])
	if _, err := ReadSnapshotFile(path); !errors.As(err, &corrupt) {
		t.Fatalf("truncated: err = %v, want CorruptSnapshotError", err)
	}
	// Truncated mid-header.
	rewrite(data[:10])
	if _, err := ReadSnapshotFile(path); !errors.As(err, &corrupt) {
		t.Fatalf("short header: err = %v, want CorruptSnapshotError", err)
	}
	// Single bit flip in the body.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	rewrite(flipped)
	if _, err := ReadSnapshotFile(path); !errors.As(err, &corrupt) {
		t.Fatalf("bit flip: err = %v, want CorruptSnapshotError", err)
	}
	// Version skew.
	skewed := append([]byte(nil), data...)
	skewed[4]++
	rewrite(skewed)
	if _, err := ReadSnapshotFile(path); !errors.As(err, &skew) {
		t.Fatalf("version skew: err = %v, want SnapshotVersionError", err)
	}
	// Wrong magic.
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	rewrite(bad)
	if _, err := ReadSnapshotFile(path); !errors.As(err, &corrupt) {
		t.Fatalf("bad magic: err = %v, want CorruptSnapshotError", err)
	}
}

// FuzzDecodeSnapshot feeds arbitrary bytes to the decoder: it must
// return an error or a state, never panic. The corpus seeds a valid
// snapshot so mutations explore the gob body, not just the header.
func FuzzDecodeSnapshot(f *testing.F) {
	cfg := testConfig(config.Density8Gb, config.RefreshAllBank)
	sys, err := Build(cfg, testMix(), Options{FootprintScale: 0.01})
	if err != nil {
		f.Fatal(err)
	}
	var snap *SystemState
	every := cfg.Timeslice()
	if _, err := sys.RunCheckpointed(0, 2*every, every, func(st *SystemState) error {
		if snap == nil {
			snap = st
		}
		return nil
	}); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, snap); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("RSNP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeSnapshot(bytes.NewReader(data), "fuzz")
		if err == nil && st == nil {
			t.Fatal("nil state with nil error")
		}
	})
}
