// Package rbtree implements a generic red-black tree, the time-ordered
// structure the Linux CFS scheduler keeps its runnable tasks in. It
// supports ordered insertion, deletion, leftmost lookup, and in-order
// iteration — everything pick_next_task (Algorithm 3) needs to walk
// candidates leftmost-first.
package rbtree

type color bool

const (
	red   color = false
	black color = true
)

// Node is a tree node holding a value.
type Node[V any] struct {
	Value               V
	left, right, parent *Node[V]
	color               color
}

// Tree is a red-black tree ordered by a user-provided less function.
// Duplicate-ordering values are allowed; ties break toward the right
// (FIFO among equals for insertion order).
type Tree[V any] struct {
	root *Node[V]
	size int
	less func(a, b V) bool
}

// New builds an empty tree with the given strict-weak ordering.
func New[V any](less func(a, b V) bool) *Tree[V] {
	return &Tree[V]{less: less}
}

// Len returns the number of nodes.
func (t *Tree[V]) Len() int { return t.size }

// Insert adds v and returns its node (for later deletion).
func (t *Tree[V]) Insert(v V) *Node[V] {
	n := &Node[V]{Value: v, color: red}
	var parent *Node[V]
	link := &t.root
	for *link != nil {
		parent = *link
		if t.less(v, parent.Value) {
			link = &parent.left
		} else {
			link = &parent.right
		}
	}
	n.parent = parent
	*link = n
	t.size++
	t.insertFixup(n)
	return n
}

// Min returns the leftmost node, or nil when empty.
func (t *Tree[V]) Min() *Node[V] {
	n := t.root
	if n == nil {
		return nil
	}
	for n.left != nil {
		n = n.left
	}
	return n
}

// Max returns the rightmost node, or nil when empty.
func (t *Tree[V]) Max() *Node[V] {
	n := t.root
	if n == nil {
		return nil
	}
	for n.right != nil {
		n = n.right
	}
	return n
}

// Next returns the in-order successor of n, or nil.
func (t *Tree[V]) Next(n *Node[V]) *Node[V] {
	if n.right != nil {
		n = n.right
		for n.left != nil {
			n = n.left
		}
		return n
	}
	p := n.parent
	for p != nil && n == p.right {
		n, p = p, p.parent
	}
	return p
}

// Ascend calls fn on every value leftmost-first until fn returns false.
func (t *Tree[V]) Ascend(fn func(v V) bool) {
	for n := t.Min(); n != nil; n = t.Next(n) {
		if !fn(n.Value) {
			return
		}
	}
}

// Delete removes node n from the tree. n must be a live node of this
// tree (obtained from Insert and not yet deleted).
func (t *Tree[V]) Delete(n *Node[V]) {
	t.size--
	var fixNode, fixParent *Node[V]
	removedColor := n.color

	switch {
	case n.left == nil:
		fixNode = n.right
		fixParent = n.parent
		t.transplant(n, n.right)
	case n.right == nil:
		fixNode = n.left
		fixParent = n.parent
		t.transplant(n, n.left)
	default:
		// Successor y (leftmost of right subtree) replaces n.
		y := n.right
		for y.left != nil {
			y = y.left
		}
		removedColor = y.color
		fixNode = y.right
		if y.parent == n {
			fixParent = y
		} else {
			fixParent = y.parent
			t.transplant(y, y.right)
			y.right = n.right
			y.right.parent = y
		}
		t.transplant(n, y)
		y.left = n.left
		y.left.parent = y
		y.color = n.color
	}
	if removedColor == black {
		t.deleteFixup(fixNode, fixParent)
	}
	n.left, n.right, n.parent = nil, nil, nil
}

func (t *Tree[V]) transplant(u, v *Node[V]) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

func (t *Tree[V]) rotateLeft(x *Node[V]) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree[V]) rotateRight(x *Node[V]) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *Tree[V]) insertFixup(z *Node[V]) {
	for z.parent != nil && z.parent.color == red {
		gp := z.parent.parent
		if z.parent == gp.left {
			uncle := gp.right
			if uncle != nil && uncle.color == red {
				z.parent.color = black
				uncle.color = black
				gp.color = red
				z = gp
				continue
			}
			if z == z.parent.right {
				z = z.parent
				t.rotateLeft(z)
			}
			z.parent.color = black
			gp.color = red
			t.rotateRight(gp)
		} else {
			uncle := gp.left
			if uncle != nil && uncle.color == red {
				z.parent.color = black
				uncle.color = black
				gp.color = red
				z = gp
				continue
			}
			if z == z.parent.left {
				z = z.parent
				t.rotateRight(z)
			}
			z.parent.color = black
			gp.color = red
			t.rotateLeft(gp)
		}
	}
	t.root.color = black
}

func isBlack[V any](n *Node[V]) bool { return n == nil || n.color == black }

func (t *Tree[V]) deleteFixup(x, parent *Node[V]) {
	for x != t.root && isBlack(x) {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if w != nil && w.color == red {
				w.color = black
				parent.color = red
				t.rotateLeft(parent)
				w = parent.right
			}
			if w == nil {
				x, parent = parent, parent.parent
				continue
			}
			if isBlack(w.left) && isBlack(w.right) {
				w.color = red
				x, parent = parent, parent.parent
				continue
			}
			if isBlack(w.right) {
				if w.left != nil {
					w.left.color = black
				}
				w.color = red
				t.rotateRight(w)
				w = parent.right
			}
			w.color = parent.color
			parent.color = black
			if w.right != nil {
				w.right.color = black
			}
			t.rotateLeft(parent)
			x = t.root
			break
		}
		// Mirror case.
		w := parent.left
		if w != nil && w.color == red {
			w.color = black
			parent.color = red
			t.rotateRight(parent)
			w = parent.left
		}
		if w == nil {
			x, parent = parent, parent.parent
			continue
		}
		if isBlack(w.left) && isBlack(w.right) {
			w.color = red
			x, parent = parent, parent.parent
			continue
		}
		if isBlack(w.left) {
			if w.right != nil {
				w.right.color = black
			}
			w.color = red
			t.rotateLeft(w)
			w = parent.left
		}
		w.color = parent.color
		parent.color = black
		if w.left != nil {
			w.left.color = black
		}
		t.rotateRight(parent)
		x = t.root
		break
	}
	if x != nil {
		x.color = black
	}
}

// CheckInvariants verifies red-black properties, returning the black
// height, whether ordering holds, and whether color rules hold. It is
// exported for property-based tests.
func (t *Tree[V]) CheckInvariants() (blackHeight int, ordered, colorsOK bool) {
	ordered = true
	colorsOK = t.root == nil || t.root.color == black
	var prev *V
	t.Ascend(func(v V) bool {
		if prev != nil && t.less(v, *prev) {
			ordered = false
		}
		p := v
		prev = &p
		return true
	})
	var walk func(n *Node[V]) (int, bool)
	walk = func(n *Node[V]) (int, bool) {
		if n == nil {
			return 1, true
		}
		if n.color == red {
			if !isBlack(n.left) || !isBlack(n.right) {
				return 0, false
			}
		}
		lh, lok := walk(n.left)
		rh, rok := walk(n.right)
		if !lok || !rok || lh != rh {
			return 0, false
		}
		h := lh
		if n.color == black {
			h++
		}
		return h, true
	}
	h, ok := walk(t.root)
	if !ok {
		colorsOK = false
	}
	return h, ordered, colorsOK
}
