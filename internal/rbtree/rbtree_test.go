package rbtree

import (
	"sort"
	"testing"
	"testing/quick"
)

func intTree() *Tree[int] { return New(func(a, b int) bool { return a < b }) }

func collect(t *Tree[int]) []int {
	var out []int
	t.Ascend(func(v int) bool { out = append(out, v); return true })
	return out
}

func TestInsertAscendSorted(t *testing.T) {
	tr := intTree()
	in := []int{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	for _, v := range in {
		tr.Insert(v)
	}
	got := collect(tr)
	if !sort.IntsAreSorted(got) || len(got) != len(in) {
		t.Fatalf("Ascend = %v", got)
	}
	if tr.Min().Value != 0 || tr.Max().Value != 9 {
		t.Fatalf("Min/Max = %d/%d", tr.Min().Value, tr.Max().Value)
	}
	if tr.Len() != 10 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestDeleteEveryNode(t *testing.T) {
	tr := intTree()
	var nodes []*Node[int]
	for _, v := range []int{5, 3, 8, 1, 9, 2, 7, 4, 6, 0} {
		nodes = append(nodes, tr.Insert(v))
	}
	// Delete in insertion order, checking invariants each step.
	for i, n := range nodes {
		tr.Delete(n)
		if _, ordered, colorsOK := tr.CheckInvariants(); !ordered || !colorsOK {
			t.Fatalf("invariants broken after delete %d", i)
		}
	}
	if tr.Len() != 0 || tr.Min() != nil {
		t.Fatal("tree not empty after deleting everything")
	}
}

func TestDuplicateValues(t *testing.T) {
	tr := intTree()
	n1 := tr.Insert(5)
	n2 := tr.Insert(5)
	n3 := tr.Insert(5)
	if got := collect(tr); len(got) != 3 {
		t.Fatalf("3 duplicates stored as %v", got)
	}
	tr.Delete(n2)
	tr.Delete(n1)
	tr.Delete(n3)
	if tr.Len() != 0 {
		t.Fatal("duplicates not fully deleted")
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := intTree()
	for i := 0; i < 10; i++ {
		tr.Insert(i)
	}
	var seen []int
	tr.Ascend(func(v int) bool { seen = append(seen, v); return len(seen) < 3 })
	if len(seen) != 3 || seen[2] != 2 {
		t.Fatalf("early stop saw %v", seen)
	}
}

func TestNextTraversal(t *testing.T) {
	tr := intTree()
	for _, v := range []int{4, 2, 6, 1, 3, 5, 7} {
		tr.Insert(v)
	}
	var got []int
	for n := tr.Min(); n != nil; n = tr.Next(n) {
		got = append(got, n.Value)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("Next traversal = %v", got)
		}
	}
}

// TestRandomOpsMatchReference drives random insert/delete sequences and
// checks ordering, size, and red-black invariants against a sorted-slice
// oracle.
func TestRandomOpsMatchReference(t *testing.T) {
	type op struct {
		Insert bool
		Val    uint8
	}
	f := func(ops []op) bool {
		tr := intTree()
		var ref []int
		nodes := map[int][]*Node[int]{}
		for _, o := range ops {
			v := int(o.Val)
			if o.Insert || len(nodes[v]) == 0 {
				nodes[v] = append(nodes[v], tr.Insert(v))
				ref = append(ref, v)
			} else {
				ns := nodes[v]
				tr.Delete(ns[len(ns)-1])
				nodes[v] = ns[:len(ns)-1]
				for i, rv := range ref {
					if rv == v {
						ref = append(ref[:i], ref[i+1:]...)
						break
					}
				}
			}
			if tr.Len() != len(ref) {
				return false
			}
		}
		sort.Ints(ref)
		got := collect(tr)
		if len(got) != len(ref) {
			return false
		}
		for i := range got {
			if got[i] != ref[i] {
				return false
			}
		}
		_, ordered, colorsOK := tr.CheckInvariants()
		return ordered && colorsOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestBlackHeightLogarithmic sanity-checks balance: black height of a
// 1<<12 node tree stays near log2(n).
func TestBlackHeightLogarithmic(t *testing.T) {
	tr := intTree()
	const n = 4096
	for i := 0; i < n; i++ {
		tr.Insert(i) // adversarial sorted insertion
	}
	bh, ordered, colorsOK := tr.CheckInvariants()
	if !ordered || !colorsOK {
		t.Fatal("invariants broken")
	}
	// Black height <= log2(n+1) + 1 for a red-black tree.
	if bh > 14 {
		t.Fatalf("black height %d too large for %d nodes", bh, n)
	}
}

func TestStructKeyedTree(t *testing.T) {
	type ent struct {
		vr uint64
		id int
	}
	tr := New(func(a, b ent) bool {
		if a.vr != b.vr {
			return a.vr < b.vr
		}
		return a.id < b.id
	})
	tr.Insert(ent{10, 2})
	tr.Insert(ent{10, 1})
	tr.Insert(ent{5, 9})
	if m := tr.Min().Value; m.vr != 5 || m.id != 9 {
		t.Fatalf("Min = %+v", m)
	}
	var ids []int
	tr.Ascend(func(e ent) bool { ids = append(ids, e.id); return true })
	if ids[1] != 1 || ids[2] != 2 {
		t.Fatalf("tie-break order = %v", ids)
	}
}
