// Package dram models the DRAM device hierarchy — channels, ranks, banks,
// rows — and its command timing. It provides the bank state machines
// (open row, command occupancy, refresh occupancy) and the physical
// address mapping that the memory controller and the OS share.
//
// The model is request-granular rather than command-granular: for each
// read or write the controller asks a bank to "plan" an access given the
// current bank and data-bus state, and the plan accounts for precharge,
// activate, CAS, burst, tRAS and write-recovery constraints. This is the
// standard simplification used by trace-driven memory studies; the
// queueing behaviour — which is what refresh interference perturbs — is
// modelled faithfully.
package dram

import "refsched/internal/config"

// Timing holds DRAM timing parameters converted to CPU cycles.
type Timing struct {
	// Core command timings (DDR3-1600 defaults at 3.2 GHz CPU clock).
	TCL  uint64 // CAS latency
	TRCD uint64 // activate to CAS
	TRP  uint64 // precharge
	TRAS uint64 // activate to precharge minimum
	TBL  uint64 // burst (data bus occupancy per 64B transfer)
	TWR  uint64 // write recovery before precharge
	TRTP uint64 // read to precharge
	TCCD uint64 // CAS to CAS, same bank group (== TBL here)
	TWTR uint64 // write-to-read turnaround

	// Refresh timings.
	TREFIab uint64 // all-bank refresh command interval (per rank)
	TRFCab  uint64 // all-bank refresh cycle time
	TRFCpb  uint64 // per-bank refresh cycle time (tRFCab / 2.3)
	TREFW   uint64 // retention window (scaled)

	// Geometry needed for refresh bookkeeping.
	RowsPerBank uint64
	RowBytes    uint64
}

// TimingFrom derives the cycle-domain timing set from a system config.
func TimingFrom(cfg *config.System) Timing {
	c := cfg.Cycles
	return Timing{
		TCL:  c(13.75),
		TRCD: c(13.75),
		TRP:  c(13.75),
		TRAS: c(35),
		TBL:  c(5),
		TWR:  c(15),
		TRTP: c(7.5),
		TCCD: c(5),
		TWTR: c(7.5),

		TREFIab: cfg.TREFIab(),
		TRFCab:  cfg.TRFCab(),
		TRFCpb:  cfg.TRFCpb(),
		TREFW:   cfg.TREFW(),

		RowsPerBank: cfg.Mem.RowsPerBank(),
		RowBytes:    cfg.Mem.RowBytes,
	}
}

// RefreshCmdsPerWindow returns how many all-bank refresh commands fit in
// one retention window.
func (t *Timing) RefreshCmdsPerWindow() uint64 {
	n := t.TREFW / t.TREFIab
	if n == 0 {
		n = 1
	}
	return n
}

// RowsPerRefresh returns how many rows one refresh command must cover so
// that a bank's rows are fully refreshed once per retention window,
// given cmds commands will target that bank during the window.
func (t *Timing) RowsPerRefresh(cmds uint64) uint64 {
	if cmds == 0 {
		return t.RowsPerBank
	}
	return (t.RowsPerBank + cmds - 1) / cmds
}
