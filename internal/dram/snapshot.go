package dram

import "refsched/internal/sim"

// BankState is the serializable mutable state of one Bank.
type BankState struct {
	OpenRow         int64
	ReadyAt         sim.Time
	LastActAt       sim.Time
	WriteRecoveryAt sim.Time
	RefUntil        sim.Time
	SubRefUntil     []sim.Time // nil for monolithic banks
	Stats           BankStats
}

// ChannelState is the serializable mutable state of one Channel: the
// per-bank state machines plus the shared data-bus reservation. The
// geometry (ranks, banks, timing) is rebuilt from config, not stored.
type ChannelState struct {
	Banks   []BankState
	BusFree sim.Time
}

// State captures the channel's mutable state.
func (c *Channel) State() ChannelState {
	st := ChannelState{Banks: make([]BankState, len(c.banks)), BusFree: c.busFree}
	for i, b := range c.banks {
		bs := BankState{
			OpenRow:         b.openRow,
			ReadyAt:         b.readyAt,
			LastActAt:       b.lastActAt,
			WriteRecoveryAt: b.writeRecoveryAt,
			RefUntil:        b.refUntil,
			Stats:           b.Stats,
		}
		if b.subRefUntil != nil {
			bs.SubRefUntil = append([]sim.Time(nil), b.subRefUntil...)
		}
		st.Banks[i] = bs
	}
	return st
}

// SetState restores state captured by State onto a freshly built channel
// of the same geometry.
func (c *Channel) SetState(st ChannelState) {
	c.busFree = st.BusFree
	for i, bs := range st.Banks {
		b := c.banks[i]
		b.openRow = bs.OpenRow
		b.readyAt = bs.ReadyAt
		b.lastActAt = bs.LastActAt
		b.writeRecoveryAt = bs.WriteRecoveryAt
		b.refUntil = bs.RefUntil
		if bs.SubRefUntil != nil {
			copy(b.subRefUntil, bs.SubRefUntil)
		}
		b.Stats = bs.Stats
	}
}
