package dram

import "refsched/internal/sim"

// BankStats accumulates per-bank activity counters.
type BankStats struct {
	Reads             uint64
	Writes            uint64
	RowHits           uint64
	RowMisses         uint64 // closed-row activates
	RowConflicts      uint64 // precharge-then-activate
	Refreshes         uint64 // refresh commands received
	RowsRefreshed     uint64
	RefreshBusyCycles uint64
}

// Bank models one DRAM bank: its open row, command occupancy, and refresh
// occupancy.
type Bank struct {
	// OpenRow is the row latched in the sense amplifiers, or -1 if the
	// bank is precharged.
	openRow int64
	// readyAt is when the bank can accept its next command.
	readyAt sim.Time
	// lastActAt is when the open row was activated (for tRAS).
	lastActAt sim.Time
	// writeRecoveryAt is the earliest precharge time after a write (tWR).
	writeRecoveryAt sim.Time
	// refUntil is the end of the in-progress bank/rank-level refresh.
	refUntil sim.Time

	// subarrays (SALP-style, Kim et al. ISCA 2012) allow refresh to be
	// confined to one subarray while the others keep serving requests
	// (Chang et al. HPCA 2014; Zhang et al. HPCA 2014). subRefUntil is
	// the per-subarray refresh occupancy; nil when the bank is
	// monolithic.
	subRefUntil []sim.Time

	Stats BankStats
}

// NewBank returns a precharged, idle, monolithic bank.
func NewBank() *Bank { return &Bank{openRow: -1} }

// NewBankWithSubarrays returns a bank divided into n subarrays that can
// be refreshed independently. n <= 1 yields a monolithic bank.
func NewBankWithSubarrays(n int) *Bank {
	b := NewBank()
	if n > 1 {
		b.subRefUntil = make([]sim.Time, n)
	}
	return b
}

// Subarrays returns the subarray count (1 for monolithic banks).
func (b *Bank) Subarrays() int {
	if b.subRefUntil == nil {
		return 1
	}
	return len(b.subRefUntil)
}

// SubarrayOf maps a row to its subarray (rows interleave across
// subarrays).
func (b *Bank) SubarrayOf(row uint64) int {
	if b.subRefUntil == nil {
		return 0
	}
	return int(row % uint64(len(b.subRefUntil)))
}

// RefreshingRow reports whether an access to row is blocked by refresh
// at time t — either a bank/rank-level refresh or a refresh of the
// row's subarray.
func (b *Bank) RefreshingRow(row uint64, t sim.Time) bool {
	if t < b.refUntil {
		return true
	}
	if b.subRefUntil == nil {
		return false
	}
	return t < b.subRefUntil[b.SubarrayOf(row)]
}

// RowRefreshUntil returns when an access to row stops being
// refresh-blocked.
func (b *Bank) RowRefreshUntil(row uint64) sim.Time {
	u := b.refUntil
	if b.subRefUntil != nil {
		if s := b.subRefUntil[b.SubarrayOf(row)]; s > u {
			u = s
		}
	}
	return u
}

// StartSubarrayRefresh refreshes rows rows of one subarray for dur
// cycles. Other subarrays of the bank remain accessible (SALP). If the
// bank's open row lives in the target subarray it is closed first.
func (b *Bank) StartSubarrayRefresh(due sim.Time, sub int, dur, rows uint64, tm *Timing) sim.Time {
	if b.subRefUntil == nil {
		return b.StartRefresh(due, dur, rows, tm)
	}
	start := due
	if b.openRow >= 0 && b.SubarrayOf(uint64(b.openRow)) == sub {
		if b.readyAt > start {
			start = b.readyAt
		}
		if b.writeRecoveryAt > start {
			start = b.writeRecoveryAt
		}
		if m := b.lastActAt + tm.TRAS; m > start {
			start = m
		}
		b.openRow = -1
	}
	end := start + sim.Time(dur)
	b.subRefUntil[sub] = end
	b.Stats.Refreshes++
	b.Stats.RowsRefreshed += rows
	b.Stats.RefreshBusyCycles += dur
	return end
}

// OpenRow returns the currently open row, or -1 if precharged.
func (b *Bank) OpenRow() int64 { return b.openRow }

// ReadyAt returns when the bank can accept its next regular command,
// considering both command occupancy and any in-progress refresh.
func (b *Bank) ReadyAt() sim.Time {
	if b.refUntil > b.readyAt {
		return b.refUntil
	}
	return b.readyAt
}

// Refreshing reports whether the bank is refresh-busy at time t.
func (b *Bank) Refreshing(t sim.Time) bool { return t < b.refUntil }

// RefreshUntil returns the end time of the current refresh (zero if none
// has ever run).
func (b *Bank) RefreshUntil() sim.Time { return b.refUntil }

// AccessPlan describes the timing of one planned read or write.
type AccessPlan struct {
	Start     sim.Time // command issue time
	DataStart sim.Time // first beat on the data bus
	DataEnd   sim.Time // bus released
	BankReady sim.Time // bank can take its next command
	RowHit    bool
	Conflict  bool // needed a precharge first
	Write     bool
	Row       uint64
}

// PlanAccess computes the timing of a read/write to row at or after
// earliest (already the max of "now", controller decision time, and any
// queue constraints), with the data bus free at busFree. It does not
// mutate the bank; call Commit to apply the plan.
func (b *Bank) PlanAccess(earliest, busFree sim.Time, row uint64, write bool, tm *Timing) AccessPlan {
	start := earliest
	if r := b.ReadyAt(); r > start {
		start = r
	}
	if b.subRefUntil != nil {
		if s := b.subRefUntil[b.SubarrayOf(row)]; s > start {
			start = s
		}
	}

	var casAt sim.Time
	p := AccessPlan{Write: write, Row: row}
	switch {
	case b.openRow == int64(row):
		// Row hit: CAS immediately.
		p.RowHit = true
		casAt = start
	case b.openRow < 0:
		// Closed: ACT then CAS.
		casAt = start + tm.TRCD
	default:
		// Conflict: PRE (respecting tRAS and tWR), ACT, CAS.
		p.Conflict = true
		preAt := start
		if m := b.lastActAt + tm.TRAS; m > preAt {
			preAt = m
		}
		if b.writeRecoveryAt > preAt {
			preAt = b.writeRecoveryAt
		}
		start = preAt
		casAt = preAt + tm.TRP + tm.TRCD
	}

	// Data must not overlap another burst on the shared channel bus.
	dataStart := casAt + tm.TCL
	if dataStart < busFree {
		shift := busFree - dataStart
		start += shift
		casAt += shift
		dataStart = busFree
	}

	p.Start = start
	p.DataStart = dataStart
	p.DataEnd = dataStart + tm.TBL
	// The bank can stream the next CAS one burst later.
	p.BankReady = casAt + tm.TCCD
	if p.BankReady < casAt+tm.TBL {
		p.BankReady = casAt + tm.TBL
	}
	return p
}

// Commit applies a previously planned access to the bank state.
func (b *Bank) Commit(p AccessPlan, tm *Timing) {
	if !p.RowHit {
		b.lastActAt = p.Start
		if p.Conflict {
			b.lastActAt = p.Start + tm.TRP
			b.Stats.RowConflicts++
		} else {
			b.Stats.RowMisses++
		}
	} else {
		b.Stats.RowHits++
	}
	b.openRow = int64(p.Row)
	b.readyAt = p.BankReady
	if p.Write {
		b.Stats.Writes++
		b.writeRecoveryAt = p.DataEnd + tm.TWR
	} else {
		b.Stats.Reads++
	}
}

// AutoPrecharge closes the open row immediately after the last
// committed access (closed-page policy): the bank is busy through the
// precharge and the next access will activate from scratch.
func (b *Bank) AutoPrecharge(tm *Timing) {
	if b.openRow < 0 {
		return
	}
	pre := b.readyAt
	if m := b.lastActAt + tm.TRAS; m > pre {
		pre = m
	}
	if b.writeRecoveryAt > pre {
		pre = b.writeRecoveryAt
	}
	b.openRow = -1
	b.readyAt = pre + tm.TRP
}

// AbortRefresh pauses an in-progress refresh (refresh pausing, Nair et
// al. HPCA 2013): the bank frees after penalty cycles and the remaining
// refresh duration is returned so the controller can reschedule it. It
// returns 0 if no refresh is in progress.
func (b *Bank) AbortRefresh(now sim.Time, penalty uint64) uint64 {
	if now >= b.refUntil {
		return 0
	}
	remaining := uint64(b.refUntil - now)
	newEnd := now + sim.Time(penalty)
	// Give back the cycles this refresh will no longer occupy.
	b.Stats.RefreshBusyCycles -= remaining
	b.Stats.RefreshBusyCycles += penalty
	if b.readyAt == b.refUntil {
		b.readyAt = newEnd
	}
	b.refUntil = newEnd
	return remaining
}

// StartRefresh begins a refresh occupying the bank for dur cycles,
// starting no earlier than the bank's current occupancy allows. A refresh
// implicitly precharges the bank. It returns the completion time.
func (b *Bank) StartRefresh(due sim.Time, dur uint64, rows uint64, tm *Timing) sim.Time {
	start := due
	if b.readyAt > start {
		start = b.readyAt
	}
	if b.writeRecoveryAt > start {
		start = b.writeRecoveryAt
	}
	if m := b.lastActAt + tm.TRAS; b.openRow >= 0 && m > start {
		start = m
	}
	end := start + sim.Time(dur)
	b.openRow = -1
	b.refUntil = end
	if end > b.readyAt {
		b.readyAt = end
	}
	b.Stats.Refreshes++
	b.Stats.RowsRefreshed += rows
	b.Stats.RefreshBusyCycles += uint64(end - start)
	return end
}
