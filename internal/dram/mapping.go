package dram

import (
	"fmt"
	"math/bits"

	"refsched/internal/config"
)

// Coord identifies a physical DRAM location.
type Coord struct {
	Channel int
	Rank    int
	Bank    int
	Row     uint64
	Col     uint64 // byte offset within the row
}

// GlobalBank returns the flat bank index within the coordinate's channel:
// rank*banksPerRank + bank. This is the index Algorithm 1 and the OS
// possible-banks vectors use.
func (c Coord) GlobalBank(banksPerRank int) int {
	return c.Rank*banksPerRank + c.Bank
}

// Mapper translates physical byte addresses to DRAM coordinates.
//
// Bit layout (LSB first): row-offset | channel | bank | rank | row.
// Because the row size equals the OS page size (4 KB), each physical page
// occupies exactly one DRAM row, and consecutive page frames interleave
// channels first, then banks, then ranks — the bank-level-parallelism-
// friendly mapping the paper assumes. The OS sees this mapping through
// PageBank/PageCoord, which is precisely the "hardware address-mapping
// exposed to the OS" part of the co-design.
type Mapper struct {
	rowBytes     uint64
	offsetBits   uint
	channelBits  uint
	bankBits     uint
	rankBits     uint
	channels     int
	banksPerRank int
	ranks        int
	rowsPerBank  uint64
}

// NewMapper builds a mapper for the configured geometry. All geometry
// values must be powers of two except rows per bank.
func NewMapper(mem config.MemConfig) (*Mapper, error) {
	for _, v := range []struct {
		name string
		n    int
	}{
		{"Channels", mem.Channels},
		{"BanksPerRank", mem.BanksPerRank},
		{"Ranks", mem.Ranks()},
	} {
		if v.n <= 0 || v.n&(v.n-1) != 0 {
			return nil, fmt.Errorf("dram: %s must be a power of two, got %d", v.name, v.n)
		}
	}
	return &Mapper{
		rowBytes:     mem.RowBytes,
		offsetBits:   uint(bits.TrailingZeros64(mem.RowBytes)),
		channelBits:  uint(bits.Len(uint(mem.Channels) - 1)),
		bankBits:     uint(bits.Len(uint(mem.BanksPerRank) - 1)),
		rankBits:     uint(bits.Len(uint(mem.Ranks()) - 1)),
		channels:     mem.Channels,
		banksPerRank: mem.BanksPerRank,
		ranks:        mem.Ranks(),
		rowsPerBank:  mem.RowsPerBank(),
	}, nil
}

// Decode splits a physical address into its DRAM coordinate.
func (m *Mapper) Decode(addr uint64) Coord {
	col := addr & (m.rowBytes - 1)
	pfn := addr >> m.offsetBits
	ch := int(pfn) & (m.channels - 1)
	pfn >>= m.channelBits
	bank := int(pfn) & (m.banksPerRank - 1)
	pfn >>= m.bankBits
	rank := int(pfn) & (m.ranks - 1)
	row := pfn >> m.rankBits
	return Coord{Channel: ch, Rank: rank, Bank: bank, Row: row, Col: col}
}

// Encode produces the physical address of a coordinate (inverse of Decode
// for col < rowBytes).
func (m *Mapper) Encode(c Coord) uint64 {
	pfn := c.Row
	pfn = pfn<<m.rankBits | uint64(c.Rank)
	pfn = pfn<<m.bankBits | uint64(c.Bank)
	pfn = pfn<<m.channelBits | uint64(c.Channel)
	return pfn<<m.offsetBits | c.Col
}

// PageCoord returns the coordinate of a page frame number (its row has
// Col 0). One page == one row under this mapping.
func (m *Mapper) PageCoord(pfn uint64) Coord {
	return m.Decode(pfn << m.offsetBits)
}

// PageGlobalBank returns the flat (rank, bank) index of a page frame
// within its channel — the value the OS allocator files pages under.
func (m *Mapper) PageGlobalBank(pfn uint64) int {
	c := m.PageCoord(pfn)
	return c.GlobalBank(m.banksPerRank)
}

// PageChannel returns the channel of a page frame.
func (m *Mapper) PageChannel(pfn uint64) int {
	return m.PageCoord(pfn).Channel
}

// TotalPages returns the number of page frames in the system.
func (m *Mapper) TotalPages() uint64 {
	return uint64(m.channels) * uint64(m.ranks) * uint64(m.banksPerRank) * m.rowsPerBank
}

// BanksPerRank exposes the per-rank bank count for GlobalBank math.
func (m *Mapper) BanksPerRank() int { return m.banksPerRank }

// Ranks exposes the per-channel rank count.
func (m *Mapper) Ranks() int { return m.ranks }

// Channels exposes the channel count.
func (m *Mapper) Channels() int { return m.channels }
