package dram

import (
	"testing"

	"refsched/internal/config"
)

func TestSubarrayRefreshBlocksOnlyItsRows(t *testing.T) {
	tm, _ := testTiming(t)
	b := NewBankWithSubarrays(4)
	if b.Subarrays() != 4 {
		t.Fatalf("Subarrays = %d", b.Subarrays())
	}
	// Refresh subarray 1 (rows ≡ 1 mod 4).
	end := b.StartSubarrayRefresh(1000, 1, tm.TRFCpb, 64, tm)
	if end != 1000+tm.TRFCpb {
		t.Fatalf("refresh end = %d", end)
	}
	if !b.RefreshingRow(5, 1500) {
		t.Fatal("row 5 (subarray 1) should be blocked")
	}
	if b.RefreshingRow(6, 1500) {
		t.Fatal("row 6 (subarray 2) should be accessible")
	}
	// An access to another subarray proceeds immediately.
	p := b.PlanAccess(1500, 0, 6, false, tm)
	if p.Start != 1500 {
		t.Fatalf("cross-subarray access delayed to %d", p.Start)
	}
	// An access to the refreshing subarray waits.
	p2 := b.PlanAccess(1500, 0, 5, false, tm)
	if p2.Start < end {
		t.Fatalf("same-subarray access at %d before refresh end %d", p2.Start, end)
	}
}

func TestSubarrayRefreshClosesConflictingOpenRow(t *testing.T) {
	tm, _ := testTiming(t)
	b := NewBankWithSubarrays(4)
	// Open row 9 (subarray 1).
	p := b.PlanAccess(0, 0, 9, false, tm)
	b.Commit(p, tm)
	if b.OpenRow() != 9 {
		t.Fatal("row not open")
	}
	// Refreshing subarray 1 must close it (and wait for tRAS).
	b.StartSubarrayRefresh(p.BankReady, 1, tm.TRFCpb, 64, tm)
	if b.OpenRow() != -1 {
		t.Fatal("conflicting open row survived subarray refresh")
	}
	// Refreshing a different subarray leaves an open row alone.
	b2 := NewBankWithSubarrays(4)
	p2 := b2.PlanAccess(0, 0, 8, false, tm) // subarray 0
	b2.Commit(p2, tm)
	b2.StartSubarrayRefresh(p2.BankReady, 3, tm.TRFCpb, 64, tm)
	if b2.OpenRow() != 8 {
		t.Fatal("unrelated subarray refresh closed the open row")
	}
}

func TestMonolithicBankFallsBackToBankRefresh(t *testing.T) {
	tm, _ := testTiming(t)
	b := NewBank()
	end := b.StartSubarrayRefresh(0, 2, tm.TRFCpb, 64, tm)
	if !b.Refreshing(end - 1) {
		t.Fatal("monolithic fallback did not refresh the bank")
	}
	if b.SubarrayOf(12345) != 0 {
		t.Fatal("monolithic subarray mapping should be 0")
	}
}

func TestChannelWithSubarrays(t *testing.T) {
	_, cfg := testTiming(t)
	cfg.Mem.SubarraysPerBank = 8
	tm := TimingFrom(&cfg)
	ch := NewChannel(0, cfg.Mem, &tm)
	if ch.Bank(0).Subarrays() != 8 {
		t.Fatalf("channel banks have %d subarrays", ch.Bank(0).Subarrays())
	}
	end := ch.RefreshSubarray(100, 3, 2, tm.TRFCpb, 32)
	if !ch.Bank(3).RefreshingRow(2, end-1) {
		t.Fatal("subarray refresh not applied")
	}
	if ch.Bank(3).RefreshingRow(3, end-1) {
		t.Fatal("wrong subarray blocked")
	}
}

func TestConfigSubarrayDefaultMonolithic(t *testing.T) {
	cfg := config.Default(config.Density32Gb, 64)
	if cfg.Mem.SubarraysPerBank > 1 {
		t.Fatal("default config should be monolithic (Table 1 has no subarray support)")
	}
}
