package dram

import (
	"math"
	"testing"
)

func TestEnergyBreakdownComponents(t *testing.T) {
	m := DefaultEnergyModel()
	st := BankStats{
		Reads:             1000,
		Writes:            500,
		RowMisses:         300,
		RowConflicts:      200,
		RefreshBusyCycles: 3_200_000, // 1 ms at 3.2 GHz
	}
	e := m.Energy(st, 32_000_000, 3.2) // 10 ms run

	wantAct := 500 * m.ActPJ * 1e-9
	if math.Abs(e.ActivateMJ-wantAct) > 1e-12 {
		t.Fatalf("activate energy = %v, want %v", e.ActivateMJ, wantAct)
	}
	wantRef := m.RefreshMW * 1e-3 // 1 ms of refresh power
	if math.Abs(e.RefreshMJ-wantRef) > 1e-9 {
		t.Fatalf("refresh energy = %v, want %v", e.RefreshMJ, wantRef)
	}
	wantBg := m.BackgroundMW * 10e-3
	if math.Abs(e.BackgroundMJ-wantBg) > 1e-9 {
		t.Fatalf("background energy = %v, want %v", e.BackgroundMJ, wantBg)
	}
	if e.Total() <= 0 || e.RefreshFrac() <= 0 || e.RefreshFrac() >= 1 {
		t.Fatalf("total %v frac %v", e.Total(), e.RefreshFrac())
	}
}

func TestEnergyZeroActivity(t *testing.T) {
	m := DefaultEnergyModel()
	e := m.Energy(BankStats{}, 0, 3.2)
	if e.Total() != 0 || e.RefreshFrac() != 0 {
		t.Fatal("zero activity should have zero energy")
	}
}

// TestEnergyScaleInvariance: refresh's *share* of energy is invariant
// under the time-scale knob because both refresh busy time and run
// length scale together (duty cycle preserved).
func TestEnergyScaleInvariance(t *testing.T) {
	m := DefaultEnergyModel()
	frac := func(scale uint64) float64 {
		// A run of 10M/scale cycles with an 11.4% refresh duty and
		// activity proportional to length.
		cycles := 10_000_000 / scale
		st := BankStats{
			Reads:             cycles / 100,
			Writes:            cycles / 300,
			RowMisses:         cycles / 200,
			RefreshBusyCycles: cycles * 114 / 1000,
		}
		return m.Energy(st, cycles, 3.2).RefreshFrac()
	}
	f1, f16 := frac(1), frac(16)
	if math.Abs(f1-f16) > 0.001 {
		t.Fatalf("refresh fraction drifts under scaling: %v vs %v", f1, f16)
	}
}
