package dram

// EnergyModel converts DRAM activity counters into energy, using
// per-operation energies in picojoules plus a static background power.
// Defaults are representative DDR3-1600 values (Micron power-model
// magnitude); the point of the model is comparative — how much of the
// energy budget refresh consumes under each policy — not absolute
// wattage.
type EnergyModel struct {
	ActPJ   float64 // one activate+precharge pair
	ReadPJ  float64 // one 64B read burst
	WritePJ float64 // one 64B write burst
	// RefreshMW is the power drawn per refresh-busy bank. Charging
	// refresh by busy time (not rows) keeps energy comparisons valid
	// under the time-scale knob, whose invariant is precisely the
	// refresh duty cycle.
	RefreshMW    float64
	BackgroundMW float64 // static power for the whole channel
}

// DefaultEnergyModel returns representative DDR3-1600 constants.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		ActPJ:        3000,
		ReadPJ:       4000,
		WritePJ:      4400,
		RefreshMW:    200,
		BackgroundMW: 150,
	}
}

// EnergyBreakdown is channel energy by component, in millijoules.
type EnergyBreakdown struct {
	ActivateMJ   float64 `json:"activate_mj"`
	ReadMJ       float64 `json:"read_mj"`
	WriteMJ      float64 `json:"write_mj"`
	RefreshMJ    float64 `json:"refresh_mj"`
	BackgroundMJ float64 `json:"background_mj"`
}

// Total returns the sum of all components.
func (e EnergyBreakdown) Total() float64 {
	return e.ActivateMJ + e.ReadMJ + e.WriteMJ + e.RefreshMJ + e.BackgroundMJ
}

// RefreshFrac returns refresh's share of total energy.
func (e EnergyBreakdown) RefreshFrac() float64 {
	t := e.Total()
	if t == 0 {
		return 0
	}
	return e.RefreshMJ / t
}

// Energy computes the breakdown from aggregated bank stats over a run
// of the given length in cycles at the given core frequency.
func (m EnergyModel) Energy(st BankStats, cycles uint64, freqGHz float64) EnergyBreakdown {
	const pjToMJ = 1e-9
	activates := st.RowMisses + st.RowConflicts
	secondsPerCycle := 1 / (freqGHz * 1e9)
	seconds := float64(cycles) * secondsPerCycle
	refreshSeconds := float64(st.RefreshBusyCycles) * secondsPerCycle
	return EnergyBreakdown{
		ActivateMJ:   float64(activates) * m.ActPJ * pjToMJ,
		ReadMJ:       float64(st.Reads) * m.ReadPJ * pjToMJ,
		WriteMJ:      float64(st.Writes) * m.WritePJ * pjToMJ,
		RefreshMJ:    m.RefreshMW * refreshSeconds,
		BackgroundMJ: m.BackgroundMW * seconds,
	}
}
