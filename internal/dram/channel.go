package dram

import (
	"refsched/internal/config"
	"refsched/internal/sim"
)

// Channel models one DRAM channel: a grid of banks indexed by
// (rank, bank) plus the shared data bus.
type Channel struct {
	ID           int
	Ranks        int
	BanksPerRank int
	Timing       *Timing
	// ClosedPage auto-precharges after every access (row-policy
	// ablation; the default is open-row).
	ClosedPage bool

	banks   []*Bank // rank-major: index = rank*BanksPerRank + bank
	busFree sim.Time
}

// NewChannel builds an idle channel with the configured geometry.
func NewChannel(id int, mem config.MemConfig, tm *Timing) *Channel {
	n := mem.Ranks() * mem.BanksPerRank
	banks := make([]*Bank, n)
	for i := range banks {
		banks[i] = NewBankWithSubarrays(mem.SubarraysPerBank)
	}
	return &Channel{
		ID:           id,
		Ranks:        mem.Ranks(),
		BanksPerRank: mem.BanksPerRank,
		Timing:       tm,
		ClosedPage:   mem.ClosedPage,
		banks:        banks,
	}
}

// TotalBanks returns the number of banks in this channel.
func (c *Channel) TotalBanks() int { return len(c.banks) }

// Bank returns the bank at flat index g (rank*BanksPerRank + bank).
func (c *Channel) Bank(g int) *Bank { return c.banks[g] }

// BankAt returns the bank at (rank, bank).
func (c *Channel) BankAt(rank, bank int) *Bank {
	return c.banks[rank*c.BanksPerRank+bank]
}

// BusFree returns when the data bus is next available.
func (c *Channel) BusFree() sim.Time { return c.busFree }

// Plan computes an access plan for the request coordinate at or after
// earliest, honouring the shared bus.
func (c *Channel) Plan(earliest sim.Time, co Coord, write bool) AccessPlan {
	b := c.BankAt(co.Rank, co.Bank)
	return b.PlanAccess(earliest, c.busFree, co.Row, write, c.Timing)
}

// Commit applies a plan to its bank and reserves the bus.
func (c *Channel) Commit(co Coord, p AccessPlan) {
	b := c.BankAt(co.Rank, co.Bank)
	b.Commit(p, c.Timing)
	if c.ClosedPage {
		b.AutoPrecharge(c.Timing)
	}
	if p.DataEnd > c.busFree {
		c.busFree = p.DataEnd
	}
}

// RefreshBank refreshes a single bank for dur cycles (per-bank refresh
// policies pass tRFCpb), covering rows rows. Returns the completion time.
func (c *Channel) RefreshBank(due sim.Time, g int, dur uint64, rows uint64) sim.Time {
	return c.banks[g].StartRefresh(due, dur, rows, c.Timing)
}

// RefreshSubarray refreshes one subarray of a bank, leaving the rest of
// the bank available. Returns the completion time.
func (c *Channel) RefreshSubarray(due sim.Time, g, sub int, dur uint64, rows uint64) sim.Time {
	return c.banks[g].StartSubarrayRefresh(due, sub, dur, rows, c.Timing)
}

// RefreshRank refreshes all banks of a rank simultaneously (all-bank
// refresh, tRFC duration dur — callers pass tRFCab or an FGR-scaled
// value), covering rows rows in each bank. The refresh starts once every
// bank in the rank is idle, and all banks complete together. Returns the
// completion time.
func (c *Channel) RefreshRank(due sim.Time, rank int, dur uint64, rows uint64) sim.Time {
	start := due
	for b := 0; b < c.BanksPerRank; b++ {
		bk := c.BankAt(rank, b)
		if bk.readyAt > start {
			start = bk.readyAt
		}
		if bk.writeRecoveryAt > start {
			start = bk.writeRecoveryAt
		}
		if m := bk.lastActAt + c.Timing.TRAS; bk.openRow >= 0 && m > start {
			start = m
		}
	}
	var end sim.Time
	for b := 0; b < c.BanksPerRank; b++ {
		e := c.BankAt(rank, b).StartRefresh(start, dur, rows, c.Timing)
		if e > end {
			end = e
		}
	}
	return end
}

// AbortRefresh pauses the in-progress refresh on a single bank (g >= 0)
// or on every bank of rank (g < 0), returning the largest remaining
// duration. Each affected bank frees after penalty cycles.
func (c *Channel) AbortRefresh(rank, g int, now sim.Time, penalty uint64) uint64 {
	if g >= 0 {
		return c.banks[g].AbortRefresh(now, penalty)
	}
	var remaining uint64
	for b := 0; b < c.BanksPerRank; b++ {
		if r := c.BankAt(rank, b).AbortRefresh(now, penalty); r > remaining {
			remaining = r
		}
	}
	return remaining
}

// Stats sums the per-bank counters across the channel.
func (c *Channel) Stats() BankStats {
	var s BankStats
	for _, b := range c.banks {
		s.Reads += b.Stats.Reads
		s.Writes += b.Stats.Writes
		s.RowHits += b.Stats.RowHits
		s.RowMisses += b.Stats.RowMisses
		s.RowConflicts += b.Stats.RowConflicts
		s.Refreshes += b.Stats.Refreshes
		s.RowsRefreshed += b.Stats.RowsRefreshed
		s.RefreshBusyCycles += b.Stats.RefreshBusyCycles
	}
	return s
}
