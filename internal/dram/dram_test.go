package dram

import (
	"testing"
	"testing/quick"

	"refsched/internal/config"
)

func testTiming(t *testing.T) (*Timing, config.System) {
	t.Helper()
	cfg := config.Default(config.Density32Gb, 64)
	tm := TimingFrom(&cfg)
	return &tm, cfg
}

func TestMapperRoundTrip(t *testing.T) {
	cfg := config.Default(config.Density32Gb, 1)
	m, err := NewMapper(cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint64) bool {
		addr := raw % (cfg.Mem.TotalCapacity())
		c := m.Decode(addr)
		return m.Encode(c) == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMapperPageInterleaving(t *testing.T) {
	cfg := config.Default(config.Density32Gb, 1)
	m, err := NewMapper(cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive page frames cycle through all 16 banks before
	// repeating — the BLP-friendly mapping.
	seen := map[int]bool{}
	for pfn := uint64(0); pfn < 16; pfn++ {
		g := m.PageGlobalBank(pfn)
		if seen[g] {
			t.Fatalf("bank %d repeated within the first 16 pages", g)
		}
		seen[g] = true
	}
	// Same page offset, different rows, same bank.
	if m.PageGlobalBank(0) != m.PageGlobalBank(16) {
		t.Fatal("pages 0 and 16 should map to the same bank")
	}
}

func TestMapperCoordinateFields(t *testing.T) {
	cfg := config.Default(config.Density32Gb, 1)
	m, _ := NewMapper(cfg.Mem)
	c := m.Decode(0x1234)
	if c.Row != 0 || c.Col != 0x234 || c.Bank != 1 {
		t.Fatalf("Decode(0x1234) = %+v", c)
	}
	if got := c.GlobalBank(8); got != c.Rank*8+c.Bank {
		t.Fatalf("GlobalBank = %d", got)
	}
	if m.TotalPages() != 16*512*1024 {
		t.Fatalf("TotalPages = %d", m.TotalPages())
	}
}

func TestMapperRejectsNonPowerOfTwo(t *testing.T) {
	cfg := config.Default(config.Density32Gb, 1)
	cfg.Mem.BanksPerRank = 6
	if _, err := NewMapper(cfg.Mem); err == nil {
		t.Fatal("expected error for 6 banks per rank")
	}
}

func TestBankRowHitTiming(t *testing.T) {
	tm, _ := testTiming(t)
	b := NewBank()

	// First access: closed row -> ACT + CAS.
	p1 := b.PlanAccess(100, 0, 7, false, tm)
	if p1.RowHit || p1.Conflict {
		t.Fatalf("first access classified %+v", p1)
	}
	if p1.DataStart != 100+tm.TRCD+tm.TCL {
		t.Fatalf("closed-row data at %d, want %d", p1.DataStart, 100+tm.TRCD+tm.TCL)
	}
	b.Commit(p1, tm)
	if b.OpenRow() != 7 {
		t.Fatalf("open row = %d", b.OpenRow())
	}

	// Same row again: hit, CAS only.
	start := p1.BankReady
	p2 := b.PlanAccess(start, 0, 7, false, tm)
	if !p2.RowHit {
		t.Fatal("second access to same row should hit")
	}
	if p2.DataStart != start+tm.TCL {
		t.Fatalf("row-hit data at %d, want %d", p2.DataStart, start+tm.TCL)
	}
	b.Commit(p2, tm)

	if b.Stats.RowHits != 1 || b.Stats.RowMisses != 1 {
		t.Fatalf("stats = %+v", b.Stats)
	}
}

func TestBankConflictRespectsTRASAndTWR(t *testing.T) {
	tm, _ := testTiming(t)

	// Conflict must wait for tRAS since activate.
	b := NewBank()
	p1 := b.PlanAccess(0, 0, 1, false, tm)
	b.Commit(p1, tm)
	p2 := b.PlanAccess(p1.BankReady, 0, 2, false, tm)
	if !p2.Conflict {
		t.Fatal("row change should conflict")
	}
	wantPRE := p1.Start + tm.TRAS // activate at p1.Start
	if p2.Start < wantPRE {
		t.Fatalf("precharge at %d before tRAS bound %d", p2.Start, wantPRE)
	}

	// After a write, precharge additionally waits for write recovery.
	bw := NewBank()
	w := bw.PlanAccess(0, 0, 1, true, tm)
	bw.Commit(w, tm)
	c := bw.PlanAccess(w.BankReady, 0, 2, false, tm)
	if c.Start < w.DataEnd+tm.TWR {
		t.Fatalf("precharge at %d ignores tWR bound %d", c.Start, w.DataEnd+tm.TWR)
	}
}

func TestBankRefreshBlocksAccess(t *testing.T) {
	tm, _ := testTiming(t)
	b := NewBank()
	end := b.StartRefresh(1000, tm.TRFCpb, 64, tm)
	if end != 1000+tm.TRFCpb {
		t.Fatalf("refresh end = %d", end)
	}
	if !b.Refreshing(1000) || !b.Refreshing(end-1) || b.Refreshing(end) {
		t.Fatal("Refreshing() window wrong")
	}
	p := b.PlanAccess(1000, 0, 3, false, tm)
	if p.Start < end {
		t.Fatalf("access planned at %d during refresh (ends %d)", p.Start, end)
	}
	if b.OpenRow() != -1 {
		t.Fatal("refresh should precharge the bank")
	}
}

func TestBankRefreshWaitsForInFlightCommand(t *testing.T) {
	tm, _ := testTiming(t)
	b := NewBank()
	p := b.PlanAccess(0, 0, 1, false, tm)
	b.Commit(p, tm)
	end := b.StartRefresh(1, tm.TRFCpb, 64, tm)
	if end < p.BankReady+tm.TRFCpb {
		t.Fatalf("refresh finished %d, before in-flight command bound %d", end, p.BankReady+tm.TRFCpb)
	}
}

func TestChannelBusSerializesBursts(t *testing.T) {
	tm, cfg := testTiming(t)
	ch := NewChannel(0, cfg.Mem, tm)
	// Two concurrent accesses to different banks: second's data must
	// start after the first's burst ends.
	c1 := Coord{Rank: 0, Bank: 0, Row: 1}
	c2 := Coord{Rank: 0, Bank: 1, Row: 1}
	p1 := ch.Plan(0, c1, false)
	ch.Commit(c1, p1)
	p2 := ch.Plan(0, c2, false)
	ch.Commit(c2, p2)
	if p2.DataStart < p1.DataEnd {
		t.Fatalf("bursts overlap: %d < %d", p2.DataStart, p1.DataEnd)
	}
	if ch.BusFree() != p2.DataEnd {
		t.Fatalf("BusFree = %d, want %d", ch.BusFree(), p2.DataEnd)
	}
}

func TestChannelRefreshRankBlocksAllBanks(t *testing.T) {
	tm, cfg := testTiming(t)
	ch := NewChannel(0, cfg.Mem, tm)
	end := ch.RefreshRank(500, 0, tm.TRFCab, 64)
	for bk := 0; bk < cfg.Mem.BanksPerRank; bk++ {
		if !ch.BankAt(0, bk).Refreshing(end - 1) {
			t.Fatalf("rank-0 bank %d not refreshing", bk)
		}
		if ch.BankAt(1, bk).Refreshing(end - 1) {
			t.Fatalf("rank-1 bank %d wrongly refreshing", bk)
		}
	}
	st := ch.Stats()
	if st.Refreshes != uint64(cfg.Mem.BanksPerRank) {
		t.Fatalf("refresh count = %d", st.Refreshes)
	}
	if st.RowsRefreshed != 64*uint64(cfg.Mem.BanksPerRank) {
		t.Fatalf("rows refreshed = %d", st.RowsRefreshed)
	}
}

func TestTimingRefreshMath(t *testing.T) {
	tm, _ := testTiming(t)
	cmds := tm.RefreshCmdsPerWindow()
	rows := tm.RowsPerRefresh(cmds)
	// Full coverage: cmds * rows >= rows per bank.
	if cmds*rows < tm.RowsPerBank {
		t.Fatalf("coverage %d*%d < %d", cmds, rows, tm.RowsPerBank)
	}
	if tm.RowsPerRefresh(0) != tm.RowsPerBank {
		t.Fatal("zero cmds should demand all rows in one shot")
	}
}

func TestTimingScaleKeepsNSParams(t *testing.T) {
	cfg1 := config.Default(config.Density32Gb, 1)
	cfg64 := config.Default(config.Density32Gb, 64)
	t1, t64 := TimingFrom(&cfg1), TimingFrom(&cfg64)
	if t1.TCL != t64.TCL || t1.TRFCab != t64.TRFCab || t1.TREFIab != t64.TREFIab {
		t.Fatal("scaling changed ns-magnitude timings")
	}
	if t64.TREFW*64 != t1.TREFW {
		t.Fatalf("TREFW scaling: %d*64 != %d", t64.TREFW, t1.TREFW)
	}
}
