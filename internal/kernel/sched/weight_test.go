package sched

import "testing"

func TestNiceToWeight(t *testing.T) {
	if NiceToWeight(0) != 1024 {
		t.Fatalf("nice 0 weight = %d", NiceToWeight(0))
	}
	if NiceToWeight(-20) != 88761 || NiceToWeight(19) != 15 {
		t.Fatal("table endpoints wrong")
	}
	// Clamping.
	if NiceToWeight(-100) != 88761 || NiceToWeight(100) != 15 {
		t.Fatal("clamping broken")
	}
	// Monotonically decreasing.
	for n := -19; n <= 19; n++ {
		if NiceToWeight(n) >= NiceToWeight(n-1) {
			t.Fatalf("weight not decreasing at nice %d", n)
		}
	}
}

func TestChargeVruntime(t *testing.T) {
	e := &Entity{}
	if chargeVruntime(e, 1000) != 1000 {
		t.Fatal("nice-0 charge should be identity")
	}
	e.Weight = 2048
	if chargeVruntime(e, 1000) != 500 {
		t.Fatal("double weight should halve the charge")
	}
}

// TestPriorityGetsProportionalShare: a nice -5 task should run roughly
// 3x as often as a nice 0 task under CFS.
func TestPriorityGetsProportionalShare(t *testing.T) {
	s := NewCFS(1, 4, false)
	hi := &Entity{TaskID: 0, Weight: NiceToWeight(-5)} // 3121
	lo := &Entity{TaskID: 1}                           // 1024
	s.Enqueue(0, hi)
	s.Enqueue(0, lo)
	runs := map[int]int{}
	for i := 0; i < 400; i++ {
		e := s.PickNext(0, 0)
		runs[e.TaskID]++
		s.Put(e, 1000)
	}
	ratio := float64(runs[0]) / float64(runs[1])
	if ratio < 2.5 || ratio > 3.6 {
		t.Fatalf("share ratio = %v (runs %v), want ~3.05", ratio, runs)
	}
}

// TestWakePlacementViaMinVruntime: MinVruntime tracks the leftmost task.
func TestMinVruntime(t *testing.T) {
	s := NewCFS(1, 4, false)
	if s.MinVruntime(0) != 0 {
		t.Fatal("empty queue min should be 0")
	}
	a := &Entity{TaskID: 0, Vruntime: 500}
	b := &Entity{TaskID: 1, Vruntime: 300}
	s.Enqueue(0, a)
	s.Enqueue(0, b)
	if s.MinVruntime(0) != 300 {
		t.Fatalf("min = %d", s.MinVruntime(0))
	}
	var rr RR
	if rr.MinVruntime(0) != 0 {
		t.Fatal("RR min should be 0")
	}
}
