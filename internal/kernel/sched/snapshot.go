package sched

import (
	"refsched/internal/rbtree"
	"refsched/internal/stats"
)

// State is the serializable state of a scheduler: per-CPU queue
// membership in queue order (FIFO order for round-robin; ascending
// (vruntime, task) order for CFS, where re-insertion reproduces the
// same tree ordering), plus decision counters. Entity fields
// themselves (vruntime, weight, mask) are owned and serialized by the
// kernel's task state.
type State struct {
	PerCPU [][]int
	Stats  Stats
	Skips  stats.HistogramState
}

// Place records the runqueue an off-queue entity last belonged to.
// Checkpoint restore uses it for running or sleeping tasks, which are
// dequeued and therefore not re-placed by State restore.
func (e *Entity) Place(cpu int) { e.cpu = cpu }

// State implements Picker.
func (s *CFS) State() State {
	per := make([][]int, len(s.queues))
	for i, q := range s.queues {
		q.Ascend(func(e *Entity) bool {
			per[i] = append(per[i], e.TaskID)
			return true
		})
	}
	return State{PerCPU: per, Stats: s.stats, Skips: s.skips.State()}
}

// SetState implements Picker: rebuild each runqueue by re-inserting the
// resolved entities in serialized order.
func (s *CFS) SetState(st State, resolve func(taskID int) *Entity) {
	for i := range s.queues {
		s.queues[i] = rbtree.New(less)
	}
	for cpu, ids := range st.PerCPU {
		for _, id := range ids {
			s.Enqueue(cpu, resolve(id))
		}
	}
	s.stats = st.Stats
	s.skips.SetState(st.Skips)
}

// State implements Picker.
func (s *RR) State() State {
	per := make([][]int, len(s.queues))
	for i, q := range s.queues {
		for _, e := range q {
			per[i] = append(per[i], e.TaskID)
		}
	}
	return State{PerCPU: per, Stats: s.stats, Skips: s.skips.State()}
}

// SetState implements Picker.
func (s *RR) SetState(st State, resolve func(taskID int) *Entity) {
	for i := range s.queues {
		s.queues[i] = nil
	}
	for cpu, ids := range st.PerCPU {
		for _, id := range ids {
			s.Enqueue(cpu, resolve(id))
		}
	}
	s.stats = st.Stats
	s.skips.SetState(st.Skips)
}
