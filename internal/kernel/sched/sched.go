// Package sched implements the simulated OS task schedulers: the paper's
// round-robin baseline and a Completely Fair Scheduler model with
// per-CPU red-black runqueues ordered by vruntime. The CFS picker
// implements the paper's refresh-aware pick_next_task (Algorithm 3),
// including the η fairness threshold and the Section 5.4.1 best-effort
// mode for tasks with data on every bank.
package sched

import (
	"refsched/internal/kernel/buddy"
	"refsched/internal/rbtree"
	"refsched/internal/stats"
)

// Entity is a schedulable task as the scheduler sees it.
type Entity struct {
	TaskID   int
	Vruntime uint64
	// Weight is the CFS load weight (0 means nice-0, i.e. 1024);
	// vruntime advances inversely to it, so heavier tasks get more CPU.
	Weight uint64
	// Mask is the task's possible_banks_vector.
	Mask buddy.BankMask
	// Occupancy returns the fraction of the task's resident pages on a
	// global bank (best-effort scheduling input); may be nil.
	Occupancy func(globalBank int) float64

	node *rbtree.Node[*Entity]
	cpu  int
	onRQ bool
}

// OnRunqueue reports whether the entity is currently enqueued.
func (e *Entity) OnRunqueue() bool { return e.onRQ }

// CPU returns the runqueue the entity last belonged to.
func (e *Entity) CPU() int { return e.cpu }

// Stats counts scheduling decisions.
type Stats struct {
	Picks uint64 `json:"picks"`
	// EligiblePicks picked a task whose mask excludes every avoided
	// bank (the refresh-aware success path).
	EligiblePicks uint64 `json:"eligible_picks"`
	// FallbackPicks hit the η threshold and took the leftmost task.
	FallbackPicks uint64 `json:"fallback_picks"`
	// BestEffortPicks chose the minimum-occupancy candidate.
	BestEffortPicks uint64 `json:"best_effort_picks"`
	// SkippedCandidates counts tasks passed over by Algorithm 3.
	SkippedCandidates uint64 `json:"skipped_candidates"`
	// Migrations counts load-balancer task moves.
	Migrations uint64 `json:"migrations"`
}

// Picker is the scheduling policy interface the kernel drives.
type Picker interface {
	// Enqueue makes e runnable on cpu's queue.
	Enqueue(cpu int, e *Entity)
	// Dequeue removes e (it must be enqueued).
	Dequeue(e *Entity)
	// PickNext selects and dequeues the next task for cpu. avoid is
	// the set of banks that will be refreshed during the upcoming
	// quantum (zero when refresh awareness is off or unsupported).
	PickNext(cpu int, avoid buddy.BankMask) *Entity
	// Put re-enqueues e on its cpu after it ran for ran cycles.
	Put(e *Entity, ran uint64)
	// NrRunning returns cpu's runnable count.
	NrRunning(cpu int) int
	// MinVruntime returns the smallest vruntime on cpu's queue (0 when
	// empty); wakers use it to place sleeping tasks fairly.
	MinVruntime(cpu int) uint64
	// LoadBalance equalizes queue lengths, returning migrations made.
	LoadBalance() int
	// Stats exposes decision counters.
	Stats() *Stats
	// SkipHistogram exposes the distribution of consecutive
	// candidates skipped per pick (bucket width 1): bucket 0 is a
	// clean leftmost pick, higher buckets show Algorithm 3 passing
	// over tasks, and mass at or beyond η is the fallback regime the
	// raw SkippedCandidates counter cannot distinguish.
	SkipHistogram() *stats.Histogram
	// State captures queue membership and counters for checkpointing.
	State() State
	// SetState restores a captured state, resolving serialized task
	// IDs to live entities.
	SetState(st State, resolve func(taskID int) *Entity)
}

// skipHistBuckets sizes the per-pick skip histograms: unit-width
// buckets comfortably covering the η values the paper sweeps (≤ 10)
// with headroom for experiments.
const skipHistBuckets = 16

// less orders entities by (vruntime, TaskID): the classic CFS key with a
// deterministic tie-break.
func less(a, b *Entity) bool {
	if a.Vruntime != b.Vruntime {
		return a.Vruntime < b.Vruntime
	}
	return a.TaskID < b.TaskID
}

// CFS is the Completely Fair Scheduler model.
type CFS struct {
	queues []*rbtree.Tree[*Entity]
	// Eta is the fairness threshold η from Algorithm 3: the maximum
	// number of candidates examined before falling back to the
	// leftmost task. 1 disables refresh awareness.
	Eta int
	// BestEffort switches the η fallback from "leftmost task" to
	// "minimum occupancy on the avoided banks" (Section 5.4.1).
	BestEffort bool

	stats Stats
	skips *stats.Histogram
}

// NewCFS builds a CFS with ncpu runqueues.
func NewCFS(ncpu, eta int, bestEffort bool) *CFS {
	qs := make([]*rbtree.Tree[*Entity], ncpu)
	for i := range qs {
		qs[i] = rbtree.New(less)
	}
	return &CFS{queues: qs, Eta: eta, BestEffort: bestEffort,
		skips: stats.NewHistogram(1, skipHistBuckets)}
}

// Enqueue implements Picker.
func (s *CFS) Enqueue(cpu int, e *Entity) {
	e.cpu = cpu
	e.node = s.queues[cpu].Insert(e)
	e.onRQ = true
}

// Dequeue implements Picker.
func (s *CFS) Dequeue(e *Entity) {
	if !e.onRQ {
		return
	}
	s.queues[e.cpu].Delete(e.node)
	e.node = nil
	e.onRQ = false
}

// excludes reports whether e's possible-banks vector avoids every bank
// in avoid — i.e. e has no data on any bank being refreshed.
func excludes(e *Entity, avoid buddy.BankMask) bool {
	return e.Mask&avoid == 0
}

// PickNext implements Picker with Algorithm 3: walk the red-black tree
// leftmost-first; pick the first task with no data on the banks being
// refreshed next quantum; after η candidates give up and take the
// leftmost (or the best-effort minimum-occupancy candidate).
func (s *CFS) PickNext(cpu int, avoid buddy.BankMask) *Entity {
	q := s.queues[cpu]
	if q.Len() == 0 {
		return nil
	}
	s.stats.Picks++

	first := q.Min().Value
	if avoid == 0 {
		s.skips.Add(0)
		s.dequeue(first)
		return first
	}

	var pick *Entity
	var bestOcc float64 = 2 // occupancy fractions are <= 1
	var best *Entity
	count := 0
	q.Ascend(func(e *Entity) bool {
		count++
		if excludes(e, avoid) {
			pick = e
			return false
		}
		if s.BestEffort && e.Occupancy != nil {
			occ := 0.0
			for g := 0; g < 64; g++ {
				if avoid.Has(g) {
					occ += e.Occupancy(g)
				}
			}
			if occ < bestOcc {
				bestOcc, best = occ, e
			}
		}
		return count < s.Eta
	})

	switch {
	case pick != nil:
		s.stats.EligiblePicks++
		s.stats.SkippedCandidates += uint64(count - 1)
		s.skips.Add(uint64(count - 1))
	case s.BestEffort && best != nil:
		pick = best
		s.stats.BestEffortPicks++
		s.stats.SkippedCandidates += uint64(count - 1)
		s.skips.Add(uint64(count - 1))
	default:
		pick = first
		s.stats.FallbackPicks++
		// η exhausted: every examined candidate was passed over
		// before the forced leftmost pick. The raw counter leaves
		// these out (the pick is not refresh-aware), but the
		// histogram records them — this is exactly the η-exhaustion
		// mass the distribution exists to expose.
		s.skips.Add(uint64(count))
	}
	s.dequeue(pick)
	return pick
}

func (s *CFS) dequeue(e *Entity) {
	s.queues[e.cpu].Delete(e.node)
	e.node = nil
	e.onRQ = false
}

// Put implements Picker: charge weighted vruntime and re-enqueue.
func (s *CFS) Put(e *Entity, ran uint64) {
	e.Vruntime += chargeVruntime(e, ran)
	s.Enqueue(e.cpu, e)
}

// NrRunning implements Picker.
func (s *CFS) NrRunning(cpu int) int { return s.queues[cpu].Len() }

// MinVruntime implements Picker.
func (s *CFS) MinVruntime(cpu int) uint64 {
	if n := s.queues[cpu].Min(); n != nil {
		return n.Value.Vruntime
	}
	return 0
}

// LoadBalance implements Picker: repeatedly move the rightmost (least
// entitled) entity from the longest to the shortest queue while they
// differ by more than one.
func (s *CFS) LoadBalance() int {
	moved := 0
	for {
		lo, hi := 0, 0
		for i, q := range s.queues {
			if q.Len() < s.queues[lo].Len() {
				lo = i
			}
			if q.Len() > s.queues[hi].Len() {
				hi = i
			}
		}
		if s.queues[hi].Len()-s.queues[lo].Len() <= 1 {
			return moved
		}
		e := s.queues[hi].Max().Value
		s.dequeue(e)
		s.Enqueue(lo, e)
		s.stats.Migrations++
		moved++
	}
}

// Stats implements Picker.
func (s *CFS) Stats() *Stats { return &s.stats }

// SkipHistogram implements Picker.
func (s *CFS) SkipHistogram() *stats.Histogram { return s.skips }

// RR is the paper's baseline scheduler: per-CPU FIFO round-robin with a
// fixed time slice, refresh-oblivious.
type RR struct {
	queues [][]*Entity
	stats  Stats
	skips  *stats.Histogram
}

// NewRR builds a round-robin scheduler with ncpu queues.
func NewRR(ncpu int) *RR {
	return &RR{queues: make([][]*Entity, ncpu),
		skips: stats.NewHistogram(1, skipHistBuckets)}
}

// Enqueue implements Picker.
func (s *RR) Enqueue(cpu int, e *Entity) {
	e.cpu = cpu
	e.onRQ = true
	s.queues[cpu] = append(s.queues[cpu], e)
}

// Dequeue implements Picker.
func (s *RR) Dequeue(e *Entity) {
	if !e.onRQ {
		return
	}
	q := s.queues[e.cpu]
	for i, x := range q {
		if x == e {
			s.queues[e.cpu] = append(q[:i], q[i+1:]...)
			break
		}
	}
	e.onRQ = false
}

// PickNext implements Picker, ignoring avoid (the baseline is
// refresh-oblivious).
func (s *RR) PickNext(cpu int, _ buddy.BankMask) *Entity {
	q := s.queues[cpu]
	if len(q) == 0 {
		return nil
	}
	s.stats.Picks++
	s.skips.Add(0) // the baseline never passes a task over
	e := q[0]
	s.queues[cpu] = q[1:]
	e.onRQ = false
	return e
}

// Put implements Picker.
func (s *RR) Put(e *Entity, ran uint64) {
	e.Vruntime += ran
	s.Enqueue(e.cpu, e)
}

// NrRunning implements Picker.
func (s *RR) NrRunning(cpu int) int { return len(s.queues[cpu]) }

// MinVruntime implements Picker (round-robin ignores vruntime).
func (s *RR) MinVruntime(int) uint64 { return 0 }

// LoadBalance implements Picker.
func (s *RR) LoadBalance() int {
	moved := 0
	for {
		lo, hi := 0, 0
		for i, q := range s.queues {
			if len(q) < len(s.queues[lo]) {
				lo = i
			}
			if len(q) > len(s.queues[hi]) {
				hi = i
			}
		}
		if len(s.queues[hi])-len(s.queues[lo]) <= 1 {
			return moved
		}
		q := s.queues[hi]
		e := q[len(q)-1]
		s.queues[hi] = q[:len(q)-1]
		e.cpu = lo
		s.queues[lo] = append(s.queues[lo], e)
		s.stats.Migrations++
		moved++
	}
}

// Stats implements Picker.
func (s *RR) Stats() *Stats { return &s.stats }

// SkipHistogram implements Picker.
func (s *RR) SkipHistogram() *stats.Histogram { return s.skips }
