package sched

import (
	"testing"

	"refsched/internal/kernel/buddy"
)

func entities(n int) []*Entity {
	out := make([]*Entity, n)
	for i := range out {
		out[i] = &Entity{TaskID: i}
	}
	return out
}

func TestCFSPicksLowestVruntime(t *testing.T) {
	s := NewCFS(1, 4, false)
	es := entities(3)
	es[0].Vruntime = 300
	es[1].Vruntime = 100
	es[2].Vruntime = 200
	for _, e := range es {
		s.Enqueue(0, e)
	}
	if got := s.PickNext(0, 0); got != es[1] {
		t.Fatalf("picked task %d, want 1", got.TaskID)
	}
	if es[1].OnRunqueue() {
		t.Fatal("picked entity still on runqueue")
	}
	if s.NrRunning(0) != 2 {
		t.Fatalf("NrRunning = %d", s.NrRunning(0))
	}
}

func TestCFSPutChargesVruntime(t *testing.T) {
	s := NewCFS(1, 4, false)
	es := entities(2)
	s.Enqueue(0, es[0])
	s.Enqueue(0, es[1])
	// Task 0 runs 1000 cycles; next pick must be task 1.
	e := s.PickNext(0, 0)
	s.Put(e, 1000)
	if got := s.PickNext(0, 0); got != es[1] {
		t.Fatalf("picked %d after charging task 0", got.TaskID)
	}
	// And fairness alternates.
	s.Put(es[1], 1000)
	if got := s.PickNext(0, 0); got.TaskID != 0 {
		t.Fatalf("alternation broken: picked %d", got.TaskID)
	}
}

func TestCFSAlgorithm3PicksEligible(t *testing.T) {
	s := NewCFS(1, 4, false)
	banksAll := buddy.AllBanks(16)
	es := entities(3)
	// Task 0 is leftmost but has data on bank 5; task 1 excludes it.
	es[0].Vruntime = 1
	es[0].Mask = banksAll
	es[1].Vruntime = 2
	es[1].Mask = banksAll &^ (1 << 5)
	es[2].Vruntime = 3
	es[2].Mask = banksAll
	for _, e := range es {
		s.Enqueue(0, e)
	}
	avoid := buddy.BankMask(0).Set(5)
	if got := s.PickNext(0, avoid); got != es[1] {
		t.Fatalf("picked %d, want refresh-safe task 1", got.TaskID)
	}
	st := s.Stats()
	if st.EligiblePicks != 1 || st.SkippedCandidates != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCFSEtaFallbackToLeftmost(t *testing.T) {
	s := NewCFS(1, 2, false) // eta = 2
	banksAll := buddy.AllBanks(16)
	es := entities(4)
	for i, e := range es {
		e.Vruntime = uint64(i)
		e.Mask = banksAll // nobody excludes anything
		s.Enqueue(0, e)
	}
	avoid := buddy.BankMask(0).Set(3)
	got := s.PickNext(0, avoid)
	if got != es[0] {
		t.Fatalf("fallback picked %d, want leftmost 0", got.TaskID)
	}
	if s.Stats().FallbackPicks != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestCFSEtaOneDisablesRefreshAwareness(t *testing.T) {
	s := NewCFS(1, 1, false)
	banksAll := buddy.AllBanks(16)
	es := entities(2)
	es[0].Vruntime = 1
	es[0].Mask = banksAll // conflicts with avoid
	es[1].Vruntime = 2
	es[1].Mask = banksAll &^ (1 << 0)
	s.Enqueue(0, es[0])
	s.Enqueue(0, es[1])
	// Even though task 1 is safe, eta=1 examines only the leftmost.
	if got := s.PickNext(0, buddy.BankMask(0).Set(0)); got != es[0] {
		t.Fatalf("eta=1 picked %d, want leftmost", got.TaskID)
	}
}

func TestCFSBestEffortMinOccupancy(t *testing.T) {
	s := NewCFS(1, 4, true)
	banksAll := buddy.AllBanks(16)
	es := entities(3)
	occ := []float64{0.5, 0.1, 0.3}
	for i, e := range es {
		i := i
		e.Vruntime = uint64(i)
		e.Mask = banksAll // everyone has data everywhere
		e.Occupancy = func(g int) float64 {
			if g == 2 {
				return occ[i]
			}
			return 0
		}
		s.Enqueue(0, e)
	}
	got := s.PickNext(0, buddy.BankMask(0).Set(2))
	if got != es[1] {
		t.Fatalf("best-effort picked %d, want minimal-occupancy task 1", got.TaskID)
	}
	if s.Stats().BestEffortPicks != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestCFSEmptyQueue(t *testing.T) {
	s := NewCFS(2, 4, false)
	if s.PickNext(0, 0) != nil {
		t.Fatal("empty queue returned an entity")
	}
}

func TestCFSLoadBalance(t *testing.T) {
	s := NewCFS(2, 4, false)
	es := entities(6)
	for _, e := range es {
		s.Enqueue(0, e) // all on CPU 0
	}
	moved := s.LoadBalance()
	if moved == 0 {
		t.Fatal("no migrations")
	}
	if d := s.NrRunning(0) - s.NrRunning(1); d < -1 || d > 1 {
		t.Fatalf("imbalance %d after balance", d)
	}
	if s.Stats().Migrations != uint64(moved) {
		t.Fatal("migration stat mismatch")
	}
}

func TestCFSDequeue(t *testing.T) {
	s := NewCFS(1, 4, false)
	e := &Entity{TaskID: 0}
	s.Enqueue(0, e)
	s.Dequeue(e)
	if e.OnRunqueue() || s.NrRunning(0) != 0 {
		t.Fatal("dequeue failed")
	}
	s.Dequeue(e) // idempotent
}

func TestRRRotation(t *testing.T) {
	s := NewRR(1)
	es := entities(3)
	for _, e := range es {
		s.Enqueue(0, e)
	}
	var order []int
	for i := 0; i < 6; i++ {
		e := s.PickNext(0, 0)
		order = append(order, e.TaskID)
		s.Put(e, 100)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("RR order = %v", order)
		}
	}
}

func TestRRIgnoresAvoid(t *testing.T) {
	s := NewRR(1)
	e := &Entity{TaskID: 0, Mask: buddy.AllBanks(16)}
	s.Enqueue(0, e)
	if got := s.PickNext(0, buddy.BankMask(0).Set(0)); got != e {
		t.Fatal("RR should ignore refresh state")
	}
}

func TestRRLoadBalance(t *testing.T) {
	s := NewRR(3)
	for _, e := range entities(7) {
		s.Enqueue(0, e)
	}
	s.LoadBalance()
	max, min := 0, 99
	for c := 0; c < 3; c++ {
		n := s.NrRunning(c)
		if n > max {
			max = n
		}
		if n < min {
			min = n
		}
	}
	if max-min > 1 {
		t.Fatalf("RR balance spread %d..%d", min, max)
	}
}

func TestRRDequeueMiddle(t *testing.T) {
	s := NewRR(1)
	es := entities(3)
	for _, e := range es {
		s.Enqueue(0, e)
	}
	s.Dequeue(es[1])
	if s.NrRunning(0) != 2 {
		t.Fatal("dequeue failed")
	}
	if got := s.PickNext(0, 0); got != es[0] {
		t.Fatal("order disturbed")
	}
	if got := s.PickNext(0, 0); got != es[2] {
		t.Fatal("middle removal broken")
	}
}

// TestCFSFairnessUnderRefreshAwareness: with group-staggered masks (the
// co-design assignment), long-run CPU time stays balanced across tasks.
func TestCFSFairnessUnderRefreshAwareness(t *testing.T) {
	s := NewCFS(1, 8, false)
	all := buddy.AllBanks(16)
	// 4 tasks, 4 groups: task i excludes banks {2i, 2i+1} in both ranks.
	es := entities(4)
	for i, e := range es {
		m := all
		for _, b := range []int{2 * i, 2*i + 1} {
			m &^= 1 << uint(b)
			m &^= 1 << uint(8+b)
		}
		e.Mask = m
		s.Enqueue(0, e)
	}
	runs := make([]int, 4)
	// Walk 64 slots (4 windows of 16 banks).
	for slot := 0; slot < 64; slot++ {
		bank := slot % 16
		e := s.PickNext(0, buddy.BankMask(0).Set(bank))
		runs[e.TaskID]++
		s.Put(e, 1000)
	}
	for i, r := range runs {
		if r != 16 {
			t.Fatalf("task %d ran %d slots, want 16 (runs=%v)", i, r, runs)
		}
	}
	if s.Stats().FallbackPicks != 0 {
		t.Fatalf("fallbacks = %d, want 0", s.Stats().FallbackPicks)
	}
}

// TestCFSSkipHistogram pins the skips-per-pick distribution: a pick
// with no refresh in flight records 0, an eligible pick records the
// candidates walked past, and an η-exhausted fallback records every
// examined candidate (the mass the raw SkippedCandidates counter
// deliberately excludes).
func TestCFSSkipHistogram(t *testing.T) {
	s := NewCFS(1, 2, false) // eta = 2
	all := buddy.AllBanks(16)
	es := entities(3)
	for i, e := range es {
		e.Vruntime = uint64(i)
		e.Mask = all
		s.Enqueue(0, e)
	}

	// Pick 1: no refresh in flight → bucket 0.
	s.Put(s.PickNext(0, 0), 10)
	// Pick 2: all candidates conflict, η=2 exhausted → fallback
	// records 2 examined skips; the raw counter stays at 0.
	s.Put(s.PickNext(0, buddy.BankMask(0).Set(3)), 10)

	v := s.SkipHistogram().View()
	if v.Count != 2 || v.Sum != 2 || v.Max != 2 {
		t.Fatalf("histogram = %+v, want count=2 sum=2 max=2", v)
	}
	if v.Counts[0] != 1 || v.Counts[2] != 1 {
		t.Fatalf("buckets = %v, want one sample at 0 and one at 2", v.Counts)
	}
	if got := s.Stats().SkippedCandidates; got != 0 {
		t.Fatalf("SkippedCandidates = %d, want 0 (fallback picks excluded)", got)
	}
}

// TestCFSSkipHistogramEligible: an eligible pick that walked past one
// conflicting candidate lands in bucket 1 and bumps the raw counter.
func TestCFSSkipHistogramEligible(t *testing.T) {
	s := NewCFS(1, 4, false)
	all := buddy.AllBanks(16)
	es := entities(2)
	es[0].Vruntime = 1
	es[0].Mask = all // conflicts with any avoid
	es[1].Vruntime = 2
	es[1].Mask = all &^ (1 << 5)
	s.Enqueue(0, es[0])
	s.Enqueue(0, es[1])

	if got := s.PickNext(0, buddy.BankMask(0).Set(5)); got != es[1] {
		t.Fatalf("picked %d, want 1", got.TaskID)
	}
	v := s.SkipHistogram().View()
	if v.Count != 1 || v.Counts[1] != 1 {
		t.Fatalf("histogram = %+v, want one sample in bucket 1", v)
	}
	if got := s.Stats().SkippedCandidates; got != 1 {
		t.Fatalf("SkippedCandidates = %d, want 1", got)
	}
}

// TestRRSkipHistogram: the refresh-oblivious baseline records every
// pick as zero skips, so the exported distribution stays comparable
// across policy bundles.
func TestRRSkipHistogram(t *testing.T) {
	s := NewRR(1)
	es := entities(2)
	s.Enqueue(0, es[0])
	s.Enqueue(0, es[1])
	s.Put(s.PickNext(0, buddy.BankMask(0).Set(3)), 10)
	s.Put(s.PickNext(0, 0), 10)
	v := s.SkipHistogram().View()
	if v.Count != 2 || v.Counts[0] != 2 || v.Sum != 0 {
		t.Fatalf("histogram = %+v, want two zero samples", v)
	}
}
