package sched

// NiceZeroWeight is the scheduling weight of a nice-0 task (Linux's
// NICE_0_LOAD). Entity.Weight of zero is treated as this value.
const NiceZeroWeight = 1024

// niceToWeight is Linux's sched_prio_to_weight table: each nice step
// changes CPU share by ~10%.
var niceToWeight = [40]uint64{
	/* -20 */ 88761, 71755, 56483, 46273, 36291,
	/* -15 */ 29154, 23254, 18705, 14949, 11916,
	/* -10 */ 9548, 7620, 6100, 4904, 3906,
	/*  -5 */ 3121, 2501, 1991, 1586, 1277,
	/*   0 */ 1024, 820, 655, 526, 423,
	/*   5 */ 335, 272, 215, 172, 137,
	/*  10 */ 110, 87, 70, 56, 45,
	/*  15 */ 36, 29, 23, 18, 15,
}

// NiceToWeight converts a nice level (clamped to [-20, 19]) to a
// scheduling weight.
func NiceToWeight(nice int) uint64 {
	if nice < -20 {
		nice = -20
	}
	if nice > 19 {
		nice = 19
	}
	return niceToWeight[nice+20]
}

// weightOf returns an entity's effective weight.
func weightOf(e *Entity) uint64 {
	if e.Weight == 0 {
		return NiceZeroWeight
	}
	return e.Weight
}

// chargeVruntime converts ran cycles into weighted vruntime, exactly as
// CFS does: delta × NICE_0_LOAD / weight.
func chargeVruntime(e *Entity, ran uint64) uint64 {
	return ran * NiceZeroWeight / weightOf(e)
}
