package vm

import (
	"testing"

	"refsched/internal/config"
	"refsched/internal/dram"
	"refsched/internal/kernel/buddy"
)

func rig(t *testing.T) (*AddressSpace, *buddy.PartitionAllocator, *dram.Mapper) {
	t.Helper()
	cfg := config.Default(config.Density8Gb, 1)
	mapper, err := dram.NewMapper(cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	bud, err := buddy.New(4096)
	if err != nil {
		t.Fatal(err)
	}
	return NewAddressSpace(4096, mapper), buddy.NewPartitionAllocator(bud, mapper), mapper
}

func TestLookupMapRoundTrip(t *testing.T) {
	as, _, _ := rig(t)
	if _, ok := as.Lookup(0x12345); ok {
		t.Fatal("unmapped lookup succeeded")
	}
	paddr := as.Map(0x12345, 77)
	if want := uint64(77)<<12 | 0x345; paddr != want {
		t.Fatalf("Map returned %#x, want %#x", paddr, want)
	}
	got, ok := as.Lookup(0x12345)
	if !ok || got != paddr {
		t.Fatalf("Lookup = %#x ok=%v", got, ok)
	}
	// Same page, different offset.
	got2, ok := as.Lookup(0x12000)
	if !ok || got2 != 77<<12 {
		t.Fatalf("offset lookup = %#x", got2)
	}
	if as.Resident() != 1 || as.Faults() != 1 {
		t.Fatalf("resident=%d faults=%d", as.Resident(), as.Faults())
	}
}

func TestBankAccounting(t *testing.T) {
	as, _, mapper := rig(t)
	// Map three pages on known banks.
	as.Map(0x1000, 0) // pfn 0 -> bank 0
	as.Map(0x2000, 1) // pfn 1 -> bank 1
	as.Map(0x3000, 17)
	b0 := mapper.PageGlobalBank(0)
	if as.PagesOnBank(b0) == 0 {
		t.Fatal("bank 0 occupancy not recorded")
	}
	sum := 0.0
	for g := 0; g < 16; g++ {
		sum += as.BankOccupancy(g)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("occupancies sum to %v, want 1", sum)
	}
}

func TestReleaseAll(t *testing.T) {
	as, alloc, _ := rig(t)
	last := -1
	for i := uint64(0); i < 50; i++ {
		pfn, _, ok := alloc.AllocPageFor(0, &last)
		if !ok {
			t.Fatal("alloc failed")
		}
		as.Map(i*4096, pfn)
	}
	free := alloc.Buddy().NrFree()
	as.ReleaseAll(alloc)
	if as.Resident() != 0 {
		t.Fatal("pages left resident")
	}
	if alloc.Buddy().NrFree() != free+50 {
		t.Fatalf("frames not returned: %d -> %d", free, alloc.Buddy().NrFree())
	}
	for g := 0; g < 16; g++ {
		if as.PagesOnBank(g) != 0 {
			t.Fatalf("bank %d occupancy leaked", g)
		}
	}
}

func TestEmptyOccupancy(t *testing.T) {
	as, _, _ := rig(t)
	if as.BankOccupancy(0) != 0 {
		t.Fatal("empty address space has nonzero occupancy")
	}
}
