package vm

// State is the serializable state of an address space. The page table
// is a plain vpn->pfn map: lookup behaviour depends only on membership,
// never on iteration order, so a map round-trip is exact.
type State struct {
	Pages        map[uint64]uint64
	PerBankPages []uint64
	Faults       uint64
}

// State captures the address space for checkpointing.
func (as *AddressSpace) State() State {
	pages := make(map[uint64]uint64, len(as.pages))
	for k, v := range as.pages {
		pages[k] = v
	}
	per := make([]uint64, len(as.perBankPages))
	copy(per, as.perBankPages)
	return State{Pages: pages, PerBankPages: per, Faults: as.faults}
}

// SetState restores a captured state. The address space must have been
// built with the same page size and mapper geometry.
func (as *AddressSpace) SetState(st State) {
	as.pages = make(map[uint64]uint64, len(st.Pages))
	for k, v := range st.Pages {
		as.pages[k] = v
	}
	copy(as.perBankPages, st.PerBankPages)
	as.faults = st.Faults
}
