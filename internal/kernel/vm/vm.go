// Package vm models per-task virtual memory: demand-paged page tables
// mapping virtual pages to physical frames, with per-bank occupancy
// accounting. Page size equals the DRAM row size (4 KB), so one virtual
// page maps to exactly one DRAM row — the granularity the co-design's
// bank partitioning operates at.
package vm

import (
	"math/bits"

	"refsched/internal/dram"
	"refsched/internal/kernel/buddy"
)

// AddressSpace is one task's page table.
type AddressSpace struct {
	pageShift uint
	pages     map[uint64]uint64 // vpn -> pfn
	mapper    *dram.Mapper

	// perBankPages counts resident pages per global bank — what the
	// best-effort refresh-aware scheduler consults for high-footprint
	// tasks (Section 5.4.1).
	perBankPages []uint64
	faults       uint64
}

// NewAddressSpace builds an empty address space.
func NewAddressSpace(pageBytes uint64, mapper *dram.Mapper) *AddressSpace {
	return &AddressSpace{
		pageShift:    uint(bits.TrailingZeros64(pageBytes)),
		pages:        make(map[uint64]uint64),
		mapper:       mapper,
		perBankPages: make([]uint64, mapper.Ranks()*mapper.BanksPerRank()),
	}
}

// Lookup translates vaddr; ok=false means the page is not resident
// (a fault is needed).
func (as *AddressSpace) Lookup(vaddr uint64) (paddr uint64, ok bool) {
	vpn := vaddr >> as.pageShift
	pfn, ok := as.pages[vpn]
	if !ok {
		return 0, false
	}
	return pfn<<as.pageShift | vaddr&(1<<as.pageShift-1), true
}

// Map installs vpn -> pfn and accounts the page's bank.
func (as *AddressSpace) Map(vaddr, pfn uint64) uint64 {
	vpn := vaddr >> as.pageShift
	as.pages[vpn] = pfn
	as.perBankPages[as.mapper.PageGlobalBank(pfn)]++
	as.faults++
	return pfn<<as.pageShift | vaddr&(1<<as.pageShift-1)
}

// Resident returns the number of resident pages.
func (as *AddressSpace) Resident() uint64 { return uint64(len(as.pages)) }

// Faults returns the demand-fault count.
func (as *AddressSpace) Faults() uint64 { return as.faults }

// PagesOnBank returns resident pages on global bank g.
func (as *AddressSpace) PagesOnBank(g int) uint64 { return as.perBankPages[g] }

// BankOccupancy returns the fraction of this task's pages on bank g.
func (as *AddressSpace) BankOccupancy(g int) float64 {
	if len(as.pages) == 0 {
		return 0
	}
	return float64(as.perBankPages[g]) / float64(len(as.pages))
}

// ReleaseAll frees every resident page back to the allocator.
func (as *AddressSpace) ReleaseAll(alloc *buddy.PartitionAllocator) {
	for vpn, pfn := range as.pages {
		alloc.FreePage(pfn)
		delete(as.pages, vpn)
	}
	for i := range as.perBankPages {
		as.perBankPages[i] = 0
	}
}
