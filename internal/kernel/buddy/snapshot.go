package buddy

// State is the serializable state of the buddy allocator: the per-frame
// metadata arrays and free-list links verbatim, so the restored
// allocator serves the exact same frames in the exact same order.
type State struct {
	TotalPages uint64
	NrFree     uint64
	Order      []uint8
	PageState  []uint8
	Next       []int32
	Prev       []int32
	Heads      [MaxOrder + 1]int32
	Allocs     uint64
	Frees      uint64
}

// State captures the allocator for checkpointing.
func (a *Allocator) State() State {
	st := State{
		TotalPages: a.totalPages,
		NrFree:     a.nrFree,
		Order:      append([]uint8(nil), a.order...),
		PageState:  append([]uint8(nil), a.state...),
		Next:       append([]int32(nil), a.next...),
		Prev:       append([]int32(nil), a.prev...),
		Heads:      a.heads,
		Allocs:     a.Allocs,
		Frees:      a.Frees,
	}
	return st
}

// SetState restores a captured state. The allocator must have been built
// with the same page count.
func (a *Allocator) SetState(st State) {
	if st.TotalPages != a.totalPages {
		panic("buddy: restoring state of a different memory size")
	}
	copy(a.order, st.Order)
	copy(a.state, st.PageState)
	copy(a.next, st.Next)
	copy(a.prev, st.Prev)
	a.heads = st.Heads
	a.nrFree = st.NrFree
	a.Allocs = st.Allocs
	a.Frees = st.Frees
}

// PartitionState is the serializable state of the partition allocator:
// the per-bank stash lists in LIFO order plus counters. The underlying
// buddy allocator snapshots separately via Allocator.State.
type PartitionState struct {
	PerBank [][]uint64
	Stats   PartitionStats
}

// State captures the partition layer for checkpointing.
func (p *PartitionAllocator) State() PartitionState {
	per := make([][]uint64, len(p.perBank))
	for i, l := range p.perBank {
		per[i] = append([]uint64(nil), l...)
	}
	return PartitionState{PerBank: per, Stats: p.Stats}
}

// SetState restores a captured partition-layer state. The allocator must
// track the same bank count.
func (p *PartitionAllocator) SetState(st PartitionState) {
	if len(st.PerBank) != len(p.perBank) {
		panic("buddy: restoring partition state of a different geometry")
	}
	for i, l := range st.PerBank {
		p.perBank[i] = append([]uint64(nil), l...)
	}
	p.Stats = st.Stats
}
