// Package buddy implements a Linux-style binary buddy page-frame
// allocator: per-order free lists with block splitting on allocation and
// buddy coalescing on free. It is the substrate Algorithm 2 (the paper's
// bank-aware partitioning allocator) is built on.
package buddy

import "fmt"

// MaxOrder is the largest block order (2^MaxOrder pages), matching
// Linux's MAX_ORDER-1 = 10 → 4 MB blocks with 4 KB pages.
const MaxOrder = 10

// Page states.
const (
	stateFree  uint8 = iota // head of a free block on a free list
	stateAlloc              // head of an allocated block
	stateTail               // interior page of some block
)

const nilIdx = int32(-1)

// Allocator is a buddy allocator over page frames [0, totalPages).
// Frames beyond the largest power-of-two prefix are seeded as smaller
// blocks, so arbitrary totals are supported.
type Allocator struct {
	totalPages uint64
	nrFree     uint64

	order []uint8
	state []uint8
	// Intrusive doubly-linked free lists, one per order; next/prev are
	// indexed by pfn and only meaningful for free block heads.
	next  []int32
	prev  []int32
	heads [MaxOrder + 1]int32

	// Allocs and Frees count operations (for invariant tests).
	Allocs uint64
	Frees  uint64
}

// New builds an allocator with every frame free.
func New(totalPages uint64) (*Allocator, error) {
	if totalPages == 0 {
		return nil, fmt.Errorf("buddy: totalPages must be positive")
	}
	if totalPages > 1<<31-1 {
		return nil, fmt.Errorf("buddy: totalPages %d exceeds index space", totalPages)
	}
	a := &Allocator{
		totalPages: totalPages,
		order:      make([]uint8, totalPages),
		state:      make([]uint8, totalPages),
		next:       make([]int32, totalPages),
		prev:       make([]int32, totalPages),
	}
	for i := range a.heads {
		a.heads[i] = nilIdx
	}
	for i := range a.state {
		a.state[i] = stateTail
	}
	// Seed free lists greedily with the largest aligned blocks.
	var pfn uint64
	for pfn < totalPages {
		o := MaxOrder
		for o > 0 && (pfn&(1<<uint(o)-1) != 0 || pfn+1<<uint(o) > totalPages) {
			o--
		}
		a.seedFree(pfn, o)
		pfn += 1 << uint(o)
	}
	return a, nil
}

// TotalPages returns the managed frame count.
func (a *Allocator) TotalPages() uint64 { return a.totalPages }

// NrFree returns the number of free page frames.
func (a *Allocator) NrFree() uint64 { return a.nrFree }

func (a *Allocator) seedFree(pfn uint64, order int) {
	a.state[pfn] = stateFree
	a.order[pfn] = uint8(order)
	a.pushFree(pfn, order)
	a.nrFree += 1 << uint(order)
}

func (a *Allocator) pushFree(pfn uint64, order int) {
	h := a.heads[order]
	a.next[pfn] = h
	a.prev[pfn] = nilIdx
	if h != nilIdx {
		a.prev[h] = int32(pfn)
	}
	a.heads[order] = int32(pfn)
}

func (a *Allocator) unlinkFree(pfn uint64, order int) {
	n, p := a.next[pfn], a.prev[pfn]
	if p != nilIdx {
		a.next[p] = n
	} else {
		a.heads[order] = n
	}
	if n != nilIdx {
		a.prev[n] = p
	}
}

// AllocBlock allocates a 2^order-page block, splitting larger blocks as
// needed. It returns the head pfn, or ok=false when no block is
// available.
func (a *Allocator) AllocBlock(order int) (uint64, bool) {
	if order < 0 || order > MaxOrder {
		return 0, false
	}
	o := order
	for o <= MaxOrder && a.heads[o] == nilIdx {
		o++
	}
	if o > MaxOrder {
		return 0, false
	}
	pfn := uint64(a.heads[o])
	a.unlinkFree(pfn, o)
	// Split down, returning upper halves to the free lists.
	for o > order {
		o--
		buddy := pfn + 1<<uint(o)
		a.state[buddy] = stateFree
		a.order[buddy] = uint8(o)
		a.pushFree(buddy, o)
	}
	a.state[pfn] = stateAlloc
	a.order[pfn] = uint8(order)
	a.nrFree -= 1 << uint(order)
	a.Allocs++
	return pfn, true
}

// AllocPage allocates a single frame.
func (a *Allocator) AllocPage() (uint64, bool) { return a.AllocBlock(0) }

// InvalidFreeError is the sim.Fault raised by a free of a frame that is
// not the head of an allocated block of the given order — a double
// free, an unaligned free, or a free of never-allocated memory. It
// unwinds out of the event loop and is converted into a returned error
// at the core run boundary.
type InvalidFreeError struct {
	PFN        uint64
	Order      int
	TotalPages uint64
}

// Error implements error.
func (e *InvalidFreeError) Error() string {
	return fmt.Sprintf("buddy: invalid free of pfn %d order %d (%d pages managed)",
		e.PFN, e.Order, e.TotalPages)
}

// SimulationFault implements sim.Fault.
func (*InvalidFreeError) SimulationFault() {}

// FreeBlock frees a block previously returned by AllocBlock with the
// same order, coalescing with free buddies.
func (a *Allocator) FreeBlock(pfn uint64, order int) {
	if pfn >= a.totalPages || a.state[pfn] != stateAlloc || int(a.order[pfn]) != order {
		panic(&InvalidFreeError{PFN: pfn, Order: order, TotalPages: a.totalPages})
	}
	a.Frees++
	a.nrFree += 1 << uint(order)
	for order < MaxOrder {
		buddy := pfn ^ 1<<uint(order)
		if buddy >= a.totalPages || a.state[buddy] != stateFree || int(a.order[buddy]) != order {
			break
		}
		a.unlinkFree(buddy, order)
		a.state[buddy] = stateTail
		if buddy < pfn {
			a.state[pfn] = stateTail
			pfn = buddy
		}
		order++
	}
	a.state[pfn] = stateFree
	a.order[pfn] = uint8(order)
	a.pushFree(pfn, order)
}

// FreePage frees a single frame.
func (a *Allocator) FreePage(pfn uint64) { a.FreeBlock(pfn, 0) }

// CheckInvariants validates allocator metadata: free-list membership
// matches page state, block accounting matches nrFree, and no blocks
// overlap. Exported for property tests; O(totalPages).
func (a *Allocator) CheckInvariants() error {
	var freeFromLists uint64
	seen := make(map[uint64]bool)
	for o := 0; o <= MaxOrder; o++ {
		for i := a.heads[o]; i != nilIdx; i = a.next[i] {
			pfn := uint64(i)
			if a.state[pfn] != stateFree || int(a.order[pfn]) != o {
				return fmt.Errorf("buddy: list %d contains pfn %d with state %d order %d", o, pfn, a.state[pfn], a.order[pfn])
			}
			if seen[pfn] {
				return fmt.Errorf("buddy: pfn %d on two lists", pfn)
			}
			seen[pfn] = true
			freeFromLists += 1 << uint(o)
		}
	}
	if freeFromLists != a.nrFree {
		return fmt.Errorf("buddy: nrFree %d but lists hold %d", a.nrFree, freeFromLists)
	}
	// Walk coverage: every frame belongs to exactly one block.
	var pfn uint64
	for pfn < a.totalPages {
		st := a.state[pfn]
		if st == stateTail {
			return fmt.Errorf("buddy: pfn %d is a tail with no head", pfn)
		}
		size := uint64(1) << uint(a.order[pfn])
		if st == stateFree && !seen[pfn] {
			return fmt.Errorf("buddy: free head pfn %d missing from lists", pfn)
		}
		for t := pfn + 1; t < pfn+size && t < a.totalPages; t++ {
			if a.state[t] != stateTail {
				return fmt.Errorf("buddy: pfn %d inside block at %d has state %d", t, pfn, a.state[t])
			}
		}
		pfn += size
	}
	return nil
}
