package buddy

import (
	"math/bits"

	"refsched/internal/dram"
)

// BankMask is a bitmask over the global bank indices of a channel
// (rank*banksPerRank + bank) — the paper's possible_banks_vector.
type BankMask uint64

// Has reports whether global bank g is in the mask.
func (m BankMask) Has(g int) bool { return m&(1<<uint(g)) != 0 }

// Set returns the mask with global bank g added.
func (m BankMask) Set(g int) BankMask { return m | 1<<uint(g) }

// Count returns the number of allowed banks.
func (m BankMask) Count() int { return bits.OnesCount64(uint64(m)) }

// AllBanks returns a mask allowing every bank of a channel.
func AllBanks(banksPerChannel int) BankMask {
	return BankMask(1)<<uint(banksPerChannel) - 1
}

// PartitionStats counts partition-allocator behaviour.
type PartitionStats struct {
	// CacheHits served straight from a per-bank free list (line 15 of
	// Algorithm 2).
	CacheHits uint64 `json:"cache_hits"`
	// BuddyHits popped from the buddy free list and matching the
	// round-robin target bank (line 27).
	BuddyHits uint64 `json:"buddy_hits"`
	// Stashed pages diverted into per-bank free lists (line 33).
	Stashed uint64 `json:"stashed"`
	// Fallbacks allocated outside the task's possible-banks vector
	// because its banks were exhausted (Section 5.4.1 fall-back).
	Fallbacks uint64 `json:"fallbacks"`
	// Failures with no memory anywhere.
	Failures uint64 `json:"failures"`
}

// PartitionAllocator implements the paper's Algorithm 2: a bank-aware
// page allocator layered on the buddy allocator. It keeps a cache of
// per-bank free lists so a page on a wanted bank is found without
// repeatedly traversing the buddy lists, and it rotates consecutive
// allocations for a task across the task's allowed banks (round-robin on
// lastAllocedBank) to preserve bank-level parallelism.
//
// With a full mask it behaves like the baseline bank-oblivious
// allocator; with per-task masks it realizes soft or hard partitioning
// depending on whether masks overlap.
type PartitionAllocator struct {
	buddy  *Allocator
	mapper *dram.Mapper
	// perBank free-list cache, indexed by global bank within a
	// channel; pages from all channels share the bank index, matching
	// the paper's single-channel formulation while staying correct for
	// multi-channel systems (bank slots align across channels).
	perBank [][]uint64

	// stashBudget bounds how many mismatched pages one allocation may
	// divert into the cache before giving up on a target bank.
	stashBudget int

	Stats PartitionStats
}

// NewPartitionAllocator wraps a buddy allocator with Algorithm 2.
func NewPartitionAllocator(b *Allocator, mapper *dram.Mapper) *PartitionAllocator {
	n := mapper.Ranks() * mapper.BanksPerRank()
	return &PartitionAllocator{
		buddy:       b,
		mapper:      mapper,
		perBank:     make([][]uint64, n),
		stashBudget: 256,
	}
}

// Banks returns the number of global banks tracked.
func (p *PartitionAllocator) Banks() int { return len(p.perBank) }

// TotalPages returns the frame count of the underlying buddy allocator.
func (p *PartitionAllocator) TotalPages() uint64 { return p.buddy.TotalPages() }

// Buddy exposes the underlying buddy allocator.
func (p *PartitionAllocator) Buddy() *Allocator { return p.buddy }

// CachedPages returns how many pages sit in per-bank caches.
func (p *PartitionAllocator) CachedPages() uint64 {
	var n uint64
	for _, l := range p.perBank {
		n += uint64(len(l))
	}
	return n
}

// popBank serves a page from the per-bank cache.
func (p *PartitionAllocator) popBank(g int) (uint64, bool) {
	l := p.perBank[g]
	if len(l) == 0 {
		return 0, false
	}
	pfn := l[len(l)-1]
	p.perBank[g] = l[:len(l)-1]
	return pfn, true
}

// fillBank pops pages from the buddy allocator, stashing mismatches into
// their banks' caches, until a page on target bank g emerges or the
// stash budget / memory is exhausted.
func (p *PartitionAllocator) fillBank(g int) (uint64, bool) {
	for i := 0; i < p.stashBudget; i++ {
		pfn, ok := p.buddy.AllocPage()
		if !ok {
			return 0, false
		}
		bank := p.mapper.PageGlobalBank(pfn)
		if bank == g {
			p.Stats.BuddyHits++
			return pfn, true
		}
		p.Stats.Stashed++
		p.perBank[bank] = append(p.perBank[bank], pfn)
	}
	return 0, false
}

// AllocPageFor allocates one page for a task whose possible-banks vector
// is mask, rotating from *last (the task's lastAllocedBank, updated on
// success). fellBack reports a page outside the mask (allowed-bank
// exhaustion fall-back).
func (p *PartitionAllocator) AllocPageFor(mask BankMask, last *int) (pfn uint64, fellBack, ok bool) {
	n := len(p.perBank)
	if mask == 0 {
		mask = AllBanks(n)
	}
	allocBank := *last
	for i := 0; i < n; i++ {
		allocBank = (allocBank + 1) % n
		if !mask.Has(allocBank) {
			continue
		}
		if pfn, ok := p.popBank(allocBank); ok {
			p.Stats.CacheHits++
			*last = allocBank
			return pfn, false, true
		}
		if pfn, ok := p.fillBank(allocBank); ok {
			*last = allocBank
			return pfn, false, true
		}
	}
	// Fall back: any cached page, then any buddy page (Section 5.4.1).
	for g := 0; g < n; g++ {
		if pfn, ok := p.popBank(g); ok {
			p.Stats.Fallbacks++
			return pfn, true, true
		}
	}
	if pfn, ok := p.buddy.AllocPage(); ok {
		p.Stats.Fallbacks++
		return pfn, true, true
	}
	p.Stats.Failures++
	return 0, false, false
}

// FreePage returns a page to the buddy allocator (per-bank caches hold
// only never-handed-out pages, so frees always go straight down).
func (p *PartitionAllocator) FreePage(pfn uint64) { p.buddy.FreePage(pfn) }

// FreeCached drains every per-bank cache back into the buddy allocator
// (used at teardown and by tests to verify conservation).
func (p *PartitionAllocator) FreeCached() {
	for g, l := range p.perBank {
		for _, pfn := range l {
			p.buddy.FreePage(pfn)
		}
		p.perBank[g] = nil
	}
}
