package buddy

import (
	"testing"
	"testing/quick"

	"refsched/internal/config"
	"refsched/internal/dram"
)

func TestNewSeedsAllFree(t *testing.T) {
	for _, n := range []uint64{1, 7, 64, 1000, 4096} {
		a, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		if a.NrFree() != n {
			t.Fatalf("New(%d): NrFree = %d", n, a.NrFree())
		}
		if err := a.CheckInvariants(); err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
	}
	if _, err := New(0); err == nil {
		t.Fatal("New(0) accepted")
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	a, _ := New(1024)
	pfn, ok := a.AllocBlock(3) // 8 pages
	if !ok {
		t.Fatal("alloc failed")
	}
	if a.NrFree() != 1024-8 {
		t.Fatalf("NrFree = %d", a.NrFree())
	}
	a.FreeBlock(pfn, 3)
	if a.NrFree() != 1024 {
		t.Fatalf("after free NrFree = %d", a.NrFree())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescingRestoresMaxBlocks(t *testing.T) {
	a, _ := New(1 << MaxOrder) // exactly one max block
	// Fragment fully into order-0 pages.
	var pages []uint64
	for {
		p, ok := a.AllocPage()
		if !ok {
			break
		}
		pages = append(pages, p)
	}
	if len(pages) != 1<<MaxOrder {
		t.Fatalf("allocated %d pages", len(pages))
	}
	// Free all: buddies must merge back to a single max-order block.
	for _, p := range pages {
		a.FreePage(p)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if pfn, ok := a.AllocBlock(MaxOrder); !ok || pfn != 0 {
		t.Fatalf("max block not restored: pfn=%d ok=%v", pfn, ok)
	}
}

func TestExhaustionAndRecovery(t *testing.T) {
	a, _ := New(256)
	var pages []uint64
	for {
		p, ok := a.AllocPage()
		if !ok {
			break
		}
		pages = append(pages, p)
	}
	if uint64(len(pages)) != 256 || a.NrFree() != 0 {
		t.Fatalf("exhaustion: %d pages, %d free", len(pages), a.NrFree())
	}
	if _, ok := a.AllocPage(); ok {
		t.Fatal("alloc succeeded with zero free")
	}
	// Uniqueness.
	seen := map[uint64]bool{}
	for _, p := range pages {
		if seen[p] {
			t.Fatalf("pfn %d allocated twice", p)
		}
		seen[p] = true
	}
	for _, p := range pages {
		a.FreePage(p)
	}
	if a.NrFree() != 256 {
		t.Fatal("free pages not restored")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a, _ := New(64)
	p, _ := a.AllocPage()
	a.FreePage(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.FreePage(p)
}

// TestRandomOpsKeepInvariants drives random alloc/free sequences and
// checks full metadata consistency after each batch.
func TestRandomOpsKeepInvariants(t *testing.T) {
	type step struct {
		Alloc bool
		Order uint8
	}
	f := func(steps []step) bool {
		a, err := New(2048)
		if err != nil {
			return false
		}
		type block struct {
			pfn   uint64
			order int
		}
		var live []block
		for _, s := range steps {
			if s.Alloc || len(live) == 0 {
				o := int(s.Order) % 5
				if pfn, ok := a.AllocBlock(o); ok {
					live = append(live, block{pfn, o})
				}
			} else {
				b := live[len(live)-1]
				live = live[:len(live)-1]
				a.FreeBlock(b.pfn, b.order)
			}
		}
		if a.CheckInvariants() != nil {
			return false
		}
		// Conservation.
		var livePages uint64
		for _, b := range live {
			livePages += 1 << uint(b.order)
		}
		return a.NrFree()+livePages == 2048
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBankMaskOps(t *testing.T) {
	m := BankMask(0).Set(3).Set(7)
	if !m.Has(3) || !m.Has(7) || m.Has(0) {
		t.Fatalf("mask = %b", m)
	}
	if m.Count() != 2 {
		t.Fatalf("Count = %d", m.Count())
	}
	if AllBanks(16).Count() != 16 {
		t.Fatal("AllBanks(16) wrong")
	}
}

func partitionRig(t *testing.T) (*PartitionAllocator, *dram.Mapper) {
	t.Helper()
	cfg := config.Default(config.Density8Gb, 1)
	mapper, err := dram.NewMapper(cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink to a manageable frame count while keeping the bank
	// mapping: use only the first 4096 frames.
	bud, err := New(4096)
	if err != nil {
		t.Fatal(err)
	}
	return NewPartitionAllocator(bud, mapper), mapper
}

func TestPartitionHonorsMask(t *testing.T) {
	alloc, mapper := partitionRig(t)
	mask := BankMask(0).Set(2).Set(5).Set(11)
	last := -1
	for i := 0; i < 500; i++ {
		pfn, fellBack, ok := alloc.AllocPageFor(mask, &last)
		if !ok {
			t.Fatal("allocation failed with free memory")
		}
		if fellBack {
			t.Fatal("unexpected fallback")
		}
		if g := mapper.PageGlobalBank(pfn); !mask.Has(g) {
			t.Fatalf("page on bank %d outside mask", g)
		}
	}
}

func TestPartitionRoundRobinAcrossAllowedBanks(t *testing.T) {
	alloc, mapper := partitionRig(t)
	mask := BankMask(0).Set(1).Set(4).Set(9)
	last := -1
	var got []int
	for i := 0; i < 9; i++ {
		pfn, _, ok := alloc.AllocPageFor(mask, &last)
		if !ok {
			t.Fatal("alloc failed")
		}
		got = append(got, mapper.PageGlobalBank(pfn))
	}
	// Consecutive allocations must rotate 1 -> 4 -> 9 -> 1 ...
	want := []int{1, 4, 9, 1, 4, 9, 1, 4, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation = %v, want %v", got, want)
		}
	}
}

func TestPartitionFallbackWhenBanksExhausted(t *testing.T) {
	alloc, mapper := partitionRig(t)
	mask := BankMask(0).Set(0)
	last := -1
	// 4096 frames / 16 banks = 256 frames on bank 0.
	fallbacks := 0
	for i := 0; i < 400; i++ {
		pfn, fellBack, ok := alloc.AllocPageFor(mask, &last)
		if !ok {
			t.Fatal("alloc failed before memory exhausted")
		}
		if fellBack {
			fallbacks++
		} else if g := mapper.PageGlobalBank(pfn); g != 0 {
			t.Fatalf("non-fallback page on bank %d", g)
		}
	}
	if fallbacks != 400-256 {
		t.Fatalf("fallbacks = %d, want %d", fallbacks, 400-256)
	}
	if alloc.Stats.Fallbacks == 0 {
		t.Fatal("fallback stat not counted")
	}
}

func TestPartitionConservation(t *testing.T) {
	alloc, _ := partitionRig(t)
	mask := BankMask(0).Set(3)
	last := -1
	var pfns []uint64
	for i := 0; i < 100; i++ {
		pfn, _, ok := alloc.AllocPageFor(mask, &last)
		if !ok {
			t.Fatal("alloc failed")
		}
		pfns = append(pfns, pfn)
	}
	total := alloc.Buddy().NrFree() + alloc.CachedPages() + uint64(len(pfns))
	if total != 4096 {
		t.Fatalf("conservation: free+cached+live = %d, want 4096", total)
	}
	for _, p := range pfns {
		alloc.FreePage(p)
	}
	alloc.FreeCached()
	if alloc.Buddy().NrFree() != 4096 {
		t.Fatalf("after teardown NrFree = %d", alloc.Buddy().NrFree())
	}
	if err := alloc.Buddy().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionEmptyMaskMeansAllBanks(t *testing.T) {
	alloc, mapper := partitionRig(t)
	last := -1
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		pfn, fellBack, ok := alloc.AllocPageFor(0, &last)
		if !ok || fellBack {
			t.Fatal("baseline alloc failed")
		}
		seen[mapper.PageGlobalBank(pfn)] = true
	}
	if len(seen) != 16 {
		t.Fatalf("baseline spread over %d banks, want 16", len(seen))
	}
}

func TestPartitionCacheHitPath(t *testing.T) {
	alloc, _ := partitionRig(t)
	// Allocating on bank 3 stashes pages for other banks; a later
	// request for bank 0 must be served from the cache.
	last := -1
	alloc.AllocPageFor(BankMask(0).Set(3), &last)
	if alloc.CachedPages() == 0 {
		t.Fatal("no pages stashed")
	}
	before := alloc.Stats.CacheHits
	last2 := -1
	alloc.AllocPageFor(BankMask(0).Set(0), &last2)
	if alloc.Stats.CacheHits != before+1 {
		t.Fatal("cache hit path not taken")
	}
}
