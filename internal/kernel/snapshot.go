package kernel

import (
	"fmt"

	"refsched/internal/cpu"
	"refsched/internal/kernel/buddy"
	"refsched/internal/kernel/sched"
	"refsched/internal/kernel/vm"
	"refsched/internal/sim"
	"refsched/internal/workload"
)

// TaskState is the serializable state of one task: scheduling entity,
// sleep pattern progress, pushed-back segment, stats, workload cursor,
// and page table.
type TaskState struct {
	Vruntime uint64
	Weight   uint64
	Mask     buddy.BankMask
	// CPU is the runqueue the task last belonged to (meaningful for
	// running and sleeping tasks, which are off-queue at checkpoint).
	CPU int

	LastAllocedBank  int
	FallbackPages    uint64
	SleepEveryQuanta uint64
	SleepForCycles   uint64
	QuantaSinceSleep uint64
	Sleeps           uint64

	Pushed  bool
	PInstrs uint64
	PAcc    workload.Access

	Stats cpu.TaskStats
	Gen   workload.State
	VM    vm.State
}

// State is the serializable state of the kernel: every task, the
// scheduler queues, dispatch bookkeeping, and the two allocator layers.
type State struct {
	Tasks    []TaskState
	RunStart []sim.Time
	// LastTask holds task id + 1 per core; 0 marks an idle core.
	LastTask []int

	Sched     sched.State
	Stats     Stats
	Buddy     buddy.State
	Partition buddy.PartitionState
}

// State captures the kernel for checkpointing. It fails when a task's
// workload generator does not implement workload.Stateful (user-defined
// generators must opt in before a system containing them can snapshot).
func (k *Kernel) State() (State, error) {
	st := State{
		RunStart:  append([]sim.Time(nil), k.runStart...),
		LastTask:  make([]int, len(k.lastTask)),
		Sched:     k.picker.State(),
		Stats:     k.Stats,
		Buddy:     k.alloc.Buddy().State(),
		Partition: k.alloc.State(),
	}
	for i, t := range k.lastTask {
		if t != nil {
			st.LastTask[i] = t.id + 1
		}
	}
	for _, t := range k.tasks {
		gen, ok := t.gen.(workload.Stateful)
		if !ok {
			return State{}, fmt.Errorf("kernel: generator for task %d (%s) is not checkpointable", t.id, t.Bench.Name)
		}
		st.Tasks = append(st.Tasks, TaskState{
			Vruntime:         t.Ent.Vruntime,
			Weight:           t.Ent.Weight,
			Mask:             t.Ent.Mask,
			CPU:              t.Ent.CPU(),
			LastAllocedBank:  t.lastAllocedBank,
			FallbackPages:    t.FallbackPages,
			SleepEveryQuanta: t.SleepEveryQuanta,
			SleepForCycles:   t.SleepForCycles,
			QuantaSinceSleep: t.quantaSinceSleep,
			Sleeps:           t.Sleeps,
			Pushed:           t.pushed,
			PInstrs:          t.pInstrs,
			PAcc:             t.pAcc,
			Stats:            t.stats,
			Gen:              gen.State(),
			VM:               t.AS.State(),
		})
	}
	return st, nil
}

// SetState restores a captured kernel state. The kernel must have been
// rebuilt with the same configuration, task list, and generators; this
// overlays the mutable state on top.
func (k *Kernel) SetState(st State) error {
	if len(st.Tasks) != len(k.tasks) {
		return fmt.Errorf("kernel: restoring %d tasks into a kernel with %d", len(st.Tasks), len(k.tasks))
	}
	for i, ts := range st.Tasks {
		t := k.tasks[i]
		t.Ent.Vruntime = ts.Vruntime
		t.Ent.Weight = ts.Weight
		t.Ent.Mask = ts.Mask
		t.Ent.Place(ts.CPU)
		t.lastAllocedBank = ts.LastAllocedBank
		t.FallbackPages = ts.FallbackPages
		t.SleepEveryQuanta = ts.SleepEveryQuanta
		t.SleepForCycles = ts.SleepForCycles
		t.quantaSinceSleep = ts.QuantaSinceSleep
		t.Sleeps = ts.Sleeps
		t.pushed = ts.Pushed
		t.pInstrs = ts.PInstrs
		t.pAcc = ts.PAcc
		t.stats = ts.Stats
		gen, ok := t.gen.(workload.Stateful)
		if !ok {
			return fmt.Errorf("kernel: generator for task %d (%s) is not checkpointable", t.id, t.Bench.Name)
		}
		gen.SetState(ts.Gen)
		t.AS.SetState(ts.VM)
	}
	// Queue re-insertion re-Places every enqueued entity; the loop above
	// already placed the off-queue (running or sleeping) ones.
	k.picker.SetState(st.Sched, func(id int) *sched.Entity { return k.tasks[id].Ent })
	copy(k.runStart, st.RunStart)
	for i, id := range st.LastTask {
		if id == 0 {
			k.lastTask[i] = nil
		} else {
			k.lastTask[i] = k.tasks[id-1]
		}
	}
	k.Stats = st.Stats
	k.alloc.Buddy().SetState(st.Buddy)
	k.alloc.SetState(st.Partition)
	return nil
}

// RunTask re-dispatches a restored in-flight quantum on core c: the
// KindKernelRunTask event already fired before the checkpoint, so the
// restore path calls the core directly with the same arguments.
func (k *Kernel) RunTask(c *cpu.Core, taskID int, end sim.Time) {
	c.Run(k.tasks[taskID], end, k.onQuantumEnd)
}

// QuantumEndHandler exposes the kernel's quantum-expiry callback so the
// restore path can re-install it on cores whose quantum was in flight
// at checkpoint time.
func (k *Kernel) QuantumEndHandler() func(*cpu.Core, sim.Time) {
	return k.onQuantumEnd
}
