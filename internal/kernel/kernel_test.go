package kernel

import (
	"testing"

	"refsched/internal/cache"
	"refsched/internal/config"
	"refsched/internal/cpu"
	"refsched/internal/dram"
	"refsched/internal/kernel/buddy"
	"refsched/internal/mc"
	"refsched/internal/refresh"
	"refsched/internal/sim"
	"refsched/internal/workload"
)

// fixedPlanner is a stub SlotPlanner.
type fixedPlanner struct{ slot uint64 }

func (p fixedPlanner) BankAtTime(t sim.Time) int { return int(uint64(t) / p.slot % 16) }
func (p fixedPlanner) SlotCycles() uint64        { return p.slot }

// nullMem satisfies cpu.Memory for cores that never miss.
type nullMem struct{}

func (nullMem) SubmitRead(r *mc.Request) bool   { return true }
func (nullMem) WhenReadSpace(int, *mc.Request)  {}
func (nullMem) SubmitWrite(r *mc.Request) bool  { return true }
func (nullMem) WhenWriteSpace(int, *mc.Request) {}
func (nullMem) Decode(addr uint64) dram.Coord   { return dram.Coord{} }

func rig(t *testing.T, cfg config.System, ncores int, planner refresh.SlotPlanner) (*Kernel, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	mapper, err := dram.NewMapper(cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	bud, err := buddy.New(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	alloc := buddy.NewPartitionAllocator(bud, mapper)
	var cores []*cpu.Core
	for i := 0; i < ncores; i++ {
		hier, err := cache.NewHierarchy(cfg.L1, cfg.L2)
		if err != nil {
			t.Fatal(err)
		}
		cores = append(cores, cpu.NewCore(i, eng, nullMem{}, hier, cfg.BaseCPI, cfg.MLP, cfg.ROB))
	}
	k := New(eng, &cfg, alloc, mapper, cores, planner)
	// Stand-in for the system dispatcher (core.System.execPayload).
	eng.SetExec(func(p sim.Payload) {
		switch p.Kind {
		case sim.KindCPUSubmitRead, sim.KindCPUSubmitWrite, sim.KindCPUQuantumEnd:
			cores[p.A].Exec(p)
		default:
			k.Exec(p)
		}
	})
	return k, eng
}

// hotGen is a trivial always-hitting generator.
type hotGen struct{}

func (hotGen) Next() (uint64, workload.Access) {
	return 100, workload.Access{VAddr: 0x1000}
}

func addTasks(k *Kernel, n int) {
	for i := 0; i < n; i++ {
		k.AddTask(workload.Benchmark{Name: "t"}, hotGen{})
	}
}

func TestAssignMasksSoftGroups(t *testing.T) {
	cfg := config.Default(config.Density8Gb, 2048)
	cfg.OS.Alloc = config.AllocSoftPartition
	cfg.OS.BanksPerTask = 6
	k, _ := rig(t, cfg, 2, nil)
	addTasks(k, 8)
	k.AssignMasks()

	nb := cfg.Mem.BanksPerRank
	total := nb * cfg.Mem.Ranks()
	for _, task := range k.Tasks() {
		m := task.Ent.Mask
		// 6 of 8 bank indices allowed, in both ranks -> 12 banks.
		if m.Count() != 12 {
			t.Fatalf("task %d mask has %d banks, want 12", task.ID(), m.Count())
		}
		// Exclusions are rank-symmetric.
		for b := 0; b < nb; b++ {
			if m.Has(b) != m.Has(nb+b) {
				t.Fatalf("task %d mask not rank-symmetric at bank %d", task.ID(), b)
			}
		}
	}
	// The co-design property: for every global bank, each CPU's initial
	// task set (i%cores) contains at least one task excluding it.
	for g := 0; g < total; g++ {
		for cpuID := 0; cpuID < 2; cpuID++ {
			ok := false
			for i, task := range k.Tasks() {
				if i%2 == cpuID && !task.Ent.Mask.Has(g) {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("bank %d has no excluding task on cpu %d", g, cpuID)
			}
		}
	}
}

func TestAssignMasksHardExclusive(t *testing.T) {
	cfg := config.Default(config.Density8Gb, 2048)
	cfg.OS.Alloc = config.AllocHardPartition
	k, _ := rig(t, cfg, 2, nil)
	addTasks(k, 8)
	k.AssignMasks()
	// 16 banks / 8 tasks = 2 exclusive banks each, no overlap.
	var union buddy.BankMask
	for _, task := range k.Tasks() {
		m := task.Ent.Mask
		if m.Count() != 2 {
			t.Fatalf("hard mask count = %d", m.Count())
		}
		if union&m != 0 {
			t.Fatal("hard partitions overlap")
		}
		union |= m
	}
}

func TestAssignMasksBaselineAllBanks(t *testing.T) {
	cfg := config.Default(config.Density8Gb, 2048)
	k, _ := rig(t, cfg, 2, nil)
	addTasks(k, 4)
	k.AssignMasks()
	for _, task := range k.Tasks() {
		if task.Ent.Mask.Count() != 16 {
			t.Fatal("baseline mask not full")
		}
	}
}

func TestAvoidMaskSingleAndMultiSlot(t *testing.T) {
	cfg := config.Default(config.Density8Gb, 2048)
	cfg.OS.RefreshAware = true
	k, _ := rig(t, cfg, 2, fixedPlanner{slot: 1000})
	// Window within one slot.
	m := k.avoidMask(0, 1000)
	if m.Count() != 1 || !m.Has(0) {
		t.Fatalf("single-slot avoid = %b", m)
	}
	// Window spanning two slots.
	m = k.avoidMask(500, 2500)
	if m.Count() != 3 || !m.Has(0) || !m.Has(1) || !m.Has(2) {
		t.Fatalf("multi-slot avoid = %b", m)
	}
}

func TestAvoidMaskDisabled(t *testing.T) {
	cfg := config.Default(config.Density8Gb, 2048)
	cfg.OS.RefreshAware = false
	k, _ := rig(t, cfg, 2, fixedPlanner{slot: 1000})
	if k.avoidMask(0, 1000) != 0 {
		t.Fatal("avoid mask nonzero with awareness off")
	}
	k2, _ := rig(t, cfg, 2, nil)
	k2.cfg.OS.RefreshAware = true
	if k2.avoidMask(0, 1000) != 0 {
		t.Fatal("avoid mask nonzero without a planner")
	}
}

func TestDispatchRunsQuantaOnGrid(t *testing.T) {
	cfg := config.Default(config.Density8Gb, 2048)
	cfg.OS.CtxSwitchCycles = 0
	k, eng := rig(t, cfg, 2, nil)
	addTasks(k, 4)
	k.AssignMasks()
	k.Start()
	q := cfg.Timeslice()
	eng.RunUntil(sim.Time(q*8 + q/2))
	// 8 full quanta per core have elapsed (the in-flight 9th is pending).
	if k.Stats.Quanta < 16 {
		t.Fatalf("quanta = %d, want >= 16", k.Stats.Quanta)
	}
	// Every task made progress and shared time roughly equally.
	var minQ, maxQ uint64 = 1 << 62, 0
	for _, task := range k.Tasks() {
		qn := task.Stats().Quanta
		if qn < minQ {
			minQ = qn
		}
		if qn > maxQ {
			maxQ = qn
		}
	}
	if minQ == 0 || maxQ-minQ > 1 {
		t.Fatalf("quantum distribution %d..%d unfair", minQ, maxQ)
	}
}

func TestDispatchIdlesWithoutTasks(t *testing.T) {
	cfg := config.Default(config.Density8Gb, 2048)
	k, eng := rig(t, cfg, 1, nil)
	k.Start()
	eng.RunUntil(sim.Time(cfg.Timeslice() * 3))
	if k.Stats.IdleQuanta < 2 {
		t.Fatalf("idle quanta = %d", k.Stats.IdleQuanta)
	}
}

func TestTranslateFaultsAndMaps(t *testing.T) {
	cfg := config.Default(config.Density8Gb, 2048)
	cfg.OS.PageFaultCycles = 123
	k, _ := rig(t, cfg, 1, nil)
	addTasks(k, 1)
	k.AssignMasks()
	task := k.Tasks()[0]
	paddr, penalty := task.Translate(0x5000)
	if penalty != 123 {
		t.Fatalf("fault penalty = %d", penalty)
	}
	paddr2, penalty2 := task.Translate(0x5008)
	if penalty2 != 0 {
		t.Fatal("second touch faulted")
	}
	if paddr2 != paddr+8 {
		t.Fatalf("offsets inconsistent: %#x vs %#x", paddr, paddr2)
	}
	if task.AS.Resident() != 1 {
		t.Fatalf("resident = %d", task.AS.Resident())
	}
}

func TestBoundary(t *testing.T) {
	cfg := config.Default(config.Density8Gb, 2048)
	k, _ := rig(t, cfg, 1, nil)
	q := sim.Time(cfg.Timeslice())
	if k.boundary(0) != q || k.boundary(q-1) != q || k.boundary(q) != 2*q {
		t.Fatalf("boundary math wrong: %d %d %d", k.boundary(0), k.boundary(q-1), k.boundary(q))
	}
}
