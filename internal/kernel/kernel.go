// Package kernel composes the simulated operating system: demand-paged
// virtual memory over the bank-aware buddy allocator (Algorithm 2),
// task scheduling (round-robin baseline or CFS with the refresh-aware
// Algorithm 3), per-task possible-banks vectors, and the quantum grid
// that the co-design aligns with the hardware refresh slots.
package kernel

import (
	"fmt"

	"refsched/internal/config"
	"refsched/internal/cpu"
	"refsched/internal/dram"
	"refsched/internal/kernel/buddy"
	"refsched/internal/kernel/sched"
	"refsched/internal/kernel/vm"
	"refsched/internal/refresh"
	"refsched/internal/sim"
	"refsched/internal/timeline"
	"refsched/internal/workload"
)

// Task is a simulated process: workload stream + address space +
// scheduling entity. It implements cpu.Task.
type Task struct {
	id    int
	Bench workload.Benchmark
	gen   workload.Generator
	AS    *vm.AddressSpace
	Ent   *sched.Entity
	stats cpu.TaskStats
	k     *Kernel

	lastAllocedBank int
	// FallbackPages counts pages allocated outside the task's mask.
	FallbackPages uint64

	// Sleep pattern (Section 5.4 caveat: desired tasks may not be
	// runnable): after every SleepEveryQuanta quanta the task blocks
	// for SleepForCycles. Zero disables sleeping.
	SleepEveryQuanta uint64
	SleepForCycles   uint64
	quantaSinceSleep uint64
	// Sleeps counts completed sleep episodes.
	Sleeps uint64

	// Pushed-back partial segment (preemption mid-segment).
	pushed  bool
	pInstrs uint64
	pAcc    workload.Access
}

// SetNice sets the task's scheduling priority (Linux nice semantics,
// -20 highest to +19 lowest). Takes effect from the next enqueue.
func (t *Task) SetNice(nice int) {
	t.Ent.Weight = sched.NiceToWeight(nice)
}

// ID implements cpu.Task.
func (t *Task) ID() int { return t.id }

// Stats implements cpu.Task.
func (t *Task) Stats() *cpu.TaskStats { return &t.stats }

// Next implements cpu.Task.
func (t *Task) Next() (uint64, workload.Access) {
	if t.pushed {
		t.pushed = false
		return t.pInstrs, t.pAcc
	}
	return t.gen.Next()
}

// PushBack implements cpu.Task.
func (t *Task) PushBack(instrs uint64, acc workload.Access) {
	t.pushed = true
	t.pInstrs = instrs
	t.pAcc = acc
}

// OutOfMemoryError is the sim.Fault raised when a demand page fault
// finds no free physical frame — a runtime condition of the configured
// machine (footprints exceeding DRAM capacity), not a programmer bug.
// It unwinds out of the event loop and is converted into a returned
// error at the core run boundary.
type OutOfMemoryError struct {
	TaskID     int
	VAddr      uint64
	TotalPages uint64
}

// Error implements error.
func (e *OutOfMemoryError) Error() string {
	return fmt.Sprintf("kernel: out of physical memory (%d pages) faulting vaddr %#x for task %d",
		e.TotalPages, e.VAddr, e.TaskID)
}

// SimulationFault implements sim.Fault.
func (*OutOfMemoryError) SimulationFault() {}

// Translate implements cpu.Task: page-table walk with demand paging
// through the partition allocator.
func (t *Task) Translate(vaddr uint64) (uint64, uint64) {
	if paddr, ok := t.AS.Lookup(vaddr); ok {
		return paddr, 0
	}
	pfn, fellBack, ok := t.k.alloc.AllocPageFor(t.Ent.Mask, &t.lastAllocedBank)
	if !ok {
		panic(&OutOfMemoryError{TaskID: t.id, VAddr: vaddr, TotalPages: t.k.alloc.TotalPages()})
	}
	if fellBack {
		t.FallbackPages++
	}
	paddr := t.AS.Map(vaddr, pfn)
	return paddr, t.k.cfg.OS.PageFaultCycles
}

// Stats aggregates kernel-level counters.
type Stats struct {
	Quanta        uint64
	IdleQuanta    uint64
	CtxSwitches   uint64
	LoadBalances  uint64
	SleepEpisodes uint64
}

// Kernel is the simulated OS instance.
type Kernel struct {
	eng     *sim.Engine
	cfg     *config.System
	alloc   *buddy.PartitionAllocator
	picker  sched.Picker
	planner refresh.SlotPlanner // non-nil only for the co-design schedule
	mapper  *dram.Mapper

	tasks   []*Task
	cores   []*cpu.Core
	quantum uint64

	// runStart tracks when each core's current quantum began (for
	// vruntime charging); lastTask is the task dispatched there.
	runStart []sim.Time
	lastTask []*Task

	// tl, when set, records per-core quantum spans and pick-skip
	// instants on the CPU tracks (pid timeline.PidCPU, tid = core id);
	// lastSkips holds the η skip count of each core's current pick so
	// the quantum span can carry it as an arg.
	tl        *timeline.Recorder
	lastSkips []uint64

	Stats Stats
}

// New builds a kernel over the given allocator and cores. planner may be
// nil; refresh awareness then degrades to plain scheduling (avoid = 0),
// mirroring hardware without an exposed refresh schedule.
func New(eng *sim.Engine, cfg *config.System, alloc *buddy.PartitionAllocator, mapper *dram.Mapper, cores []*cpu.Core, planner refresh.SlotPlanner) *Kernel {
	var picker sched.Picker
	switch cfg.OS.Scheduler {
	case config.SchedCFS:
		picker = sched.NewCFS(len(cores), cfg.OS.EtaThresh, true)
	default:
		picker = sched.NewRR(len(cores))
	}
	return &Kernel{
		eng:      eng,
		cfg:      cfg,
		alloc:    alloc,
		picker:   picker,
		planner:  planner,
		mapper:   mapper,
		cores:    cores,
		quantum:  cfg.Timeslice(),
		runStart: make([]sim.Time, len(cores)),
		lastTask: make([]*Task, len(cores)),
	}
}

// SetTimeline installs a timeline recorder for the per-core CPU
// tracks (nil disables recording).
func (k *Kernel) SetTimeline(rec *timeline.Recorder) {
	k.tl = rec
	if k.lastSkips == nil {
		k.lastSkips = make([]uint64, len(k.cores))
	}
}

// Picker exposes the scheduler (for stats and tests).
func (k *Kernel) Picker() sched.Picker { return k.picker }

// Allocator exposes the partition allocator.
func (k *Kernel) Allocator() *buddy.PartitionAllocator { return k.alloc }

// Tasks returns the task list.
func (k *Kernel) Tasks() []*Task { return k.tasks }

// AddTask registers a new process with the given workload stream.
func (k *Kernel) AddTask(b workload.Benchmark, gen workload.Generator) *Task {
	t := &Task{
		id:              len(k.tasks),
		Bench:           b,
		gen:             gen,
		AS:              vm.NewAddressSpace(k.cfg.Mem.RowBytes, k.mapper),
		k:               k,
		lastAllocedBank: -1,
	}
	t.Ent = &sched.Entity{TaskID: t.id, Occupancy: t.AS.BankOccupancy}
	k.tasks = append(k.tasks, t)
	return t
}

// AssignMasks computes every task's possible_banks_vector according to
// the configured allocation policy:
//
//   - buddy: full mask (bank-oblivious baseline);
//   - soft:  tasks form groups; each group is excluded from a distinct
//     stripe of banksPerRank-BanksPerTask bank indices (in every rank),
//     so groups share banks but every bank index has, on each CPU's
//     queue, at least one task with no data on it — the property the
//     refresh-aware scheduler needs;
//   - hard:  each task receives an exclusive contiguous bank range.
func (k *Kernel) AssignMasks() {
	nb := k.cfg.Mem.BanksPerRank
	nr := k.cfg.Mem.Ranks()
	total := nb * nr
	all := buddy.AllBanks(total)
	n := len(k.tasks)

	switch k.cfg.OS.Alloc {
	case config.AllocSoftPartition:
		kBanks := k.cfg.OS.BanksPerTask
		if kBanks <= 0 || kBanks >= nb {
			for _, t := range k.tasks {
				t.Ent.Mask = all
			}
			return
		}
		e := nb - kBanks
		nGroups := nb / e
		if nGroups < 1 {
			nGroups = 1
		}
		cores := len(k.cores)
		for i, t := range k.tasks {
			g := (i / cores) % nGroups
			mask := all
			for j := 0; j < e; j++ {
				b := (g*e + j) % nb
				for r := 0; r < nr; r++ {
					mask &^= 1 << uint(r*nb+b)
				}
			}
			t.Ent.Mask = mask
		}
	case config.AllocHardPartition:
		if n == 0 {
			return
		}
		per := total / n
		if per < 1 {
			per = 1
		}
		for i, t := range k.tasks {
			var mask buddy.BankMask
			for j := 0; j < per; j++ {
				mask = mask.Set((i*per + j) % total)
			}
			t.Ent.Mask = mask
		}
	default:
		for _, t := range k.tasks {
			t.Ent.Mask = all
		}
	}
}

// Start assigns tasks to CPUs round-robin and launches the first quantum
// on every core. Call once, at time zero, after AddTask/AssignMasks.
func (k *Kernel) Start() {
	for i, t := range k.tasks {
		k.picker.Enqueue(i%len(k.cores), t.Ent)
	}
	for _, c := range k.cores {
		k.dispatch(c, k.eng.Now())
	}
}

// boundary returns the first quantum-grid boundary strictly after t.
func (k *Kernel) boundary(t sim.Time) sim.Time {
	return (t/sim.Time(k.quantum) + 1) * sim.Time(k.quantum)
}

// avoidMask returns the banks whose refresh slots intersect [from, to).
func (k *Kernel) avoidMask(from, to sim.Time) buddy.BankMask {
	if k.planner == nil || !k.cfg.OS.RefreshAware {
		return 0
	}
	var m buddy.BankMask
	slot := sim.Time(k.planner.SlotCycles())
	if slot == 0 {
		return 0
	}
	for t := from; t < to; {
		m = m.Set(k.planner.BankAtTime(t))
		next := (t/slot + 1) * slot
		if next <= t {
			break
		}
		t = next
	}
	return m
}

// dispatch picks the next task for core c at time now and runs it until
// the next grid boundary.
func (k *Kernel) dispatch(c *cpu.Core, now sim.Time) {
	end := k.boundary(now)
	avoid := k.avoidMask(now, end)
	var skippedBefore uint64
	if k.tl != nil {
		skippedBefore = k.picker.Stats().SkippedCandidates
	}
	ent := k.picker.PickNext(c.ID, avoid)
	if ent == nil {
		// Idle until the next boundary.
		k.Stats.IdleQuanta++
		k.lastTask[c.ID] = nil
		k.eng.SchedulePAt(end, sim.Payload{Kind: sim.KindKernelDispatch,
			A: uint64(c.ID), B: end})
		return
	}
	k.Stats.Quanta++
	task := k.tasks[ent.TaskID]
	k.runStart[c.ID] = now
	k.lastTask[c.ID] = task
	if k.tl != nil {
		skipped := k.picker.Stats().SkippedCandidates - skippedBefore
		k.lastSkips[c.ID] = skipped
		if skipped > 0 {
			k.tl.Emit(timeline.Event{Ph: timeline.PhaseInstant, Ts: uint64(now),
				Pid: timeline.PidCPU, Tid: int32(c.ID), Name: "skip",
				Arg1Name: "skipped", Arg1: int64(skipped)})
		}
	}
	start := now
	if cost := k.cfg.OS.CtxSwitchCycles; cost > 0 {
		// Cap the charge at ~1.5% of a quantum so aggressive time
		// scaling (which shrinks quanta but not µs-scale costs) cannot
		// let switching overhead distort scheduling fairness.
		if lim := k.quantum >> 6; cost > lim && lim > 0 {
			cost = lim
		}
		start = now + sim.Time(cost)
		k.Stats.CtxSwitches++
		if start >= end {
			start = end - 1
		}
	}
	k.eng.SchedulePAt(start, sim.Payload{Kind: sim.KindKernelRunTask,
		A: uint64(c.ID), B: uint64(task.id), C: end})
}

// Exec dispatches the kernel's payload events.
func (k *Kernel) Exec(p sim.Payload) {
	switch p.Kind {
	case sim.KindKernelDispatch:
		k.dispatch(k.cores[p.A], p.B)
	case sim.KindKernelRunTask:
		k.cores[p.A].Run(k.tasks[p.B], p.C, k.onQuantumEnd)
	case sim.KindKernelWake:
		t := k.tasks[p.A]
		t.Sleeps++
		if min := k.picker.MinVruntime(int(p.B)); t.Ent.Vruntime < min {
			t.Ent.Vruntime = min
		}
		k.picker.Enqueue(int(p.B), t.Ent)
	default:
		panic("kernel: unexpected payload kind")
	}
}

// onQuantumEnd is the core's callback at quantum expiry: charge
// vruntime, re-enqueue (or put to sleep), balance, dispatch the next
// task.
func (k *Kernel) onQuantumEnd(c *cpu.Core, at sim.Time) {
	ran := uint64(at - k.runStart[c.ID])
	if t := k.lastTask[c.ID]; t != nil {
		if k.tl != nil {
			// The span starts at runStart, in the past; the only
			// other CPU-track event since dispatch is the skip
			// instant at the same timestamp, so per-track order in
			// the serialised file stays monotone.
			k.tl.Emit(timeline.Event{Ph: timeline.PhaseSpan,
				Ts: uint64(k.runStart[c.ID]), Dur: ran,
				Pid: timeline.PidCPU, Tid: int32(c.ID), Name: t.Bench.Name,
				Arg1Name: "task", Arg1: int64(t.id),
				Arg2Name: "skipped", Arg2: int64(k.lastSkips[c.ID])})
		}
		k.picker.Put(t.Ent, ran)
		k.maybeSleep(t, at)
	}
	k.Stats.LoadBalances++
	k.picker.LoadBalance()
	k.dispatch(c, at)
}

// maybeSleep applies the task's sleep pattern: dequeue now, wake later
// with its vruntime clamped to the queue minimum so it neither
// monopolizes nor starves after waking (CFS wake placement).
func (k *Kernel) maybeSleep(t *Task, at sim.Time) {
	if t.SleepEveryQuanta == 0 {
		return
	}
	t.quantaSinceSleep++
	if t.quantaSinceSleep < t.SleepEveryQuanta {
		return
	}
	t.quantaSinceSleep = 0
	cpuID := t.Ent.CPU()
	k.picker.Dequeue(t.Ent)
	k.Stats.SleepEpisodes++
	wake := at + sim.Time(t.SleepForCycles)
	k.eng.SchedulePAt(wake, sim.Payload{Kind: sim.KindKernelWake,
		A: uint64(t.id), B: uint64(cpuID)})
}
