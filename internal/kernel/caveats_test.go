package kernel

import (
	"testing"

	"refsched/internal/config"
	"refsched/internal/sim"
)

// TestSleepingTasksWakeAndRun: a task with a sleep pattern loses CPU
// while asleep but keeps running afterwards, and sleep episodes are
// accounted.
func TestSleepingTasksWakeAndRun(t *testing.T) {
	cfg := config.Default(config.Density8Gb, 2048)
	cfg.OS.Scheduler = config.SchedCFS
	cfg.OS.CtxSwitchCycles = 0
	k, eng := rig(t, cfg, 1, nil)
	addTasks(k, 2)
	k.AssignMasks()
	sleeper := k.Tasks()[0]
	sleeper.SleepEveryQuanta = 2
	sleeper.SleepForCycles = cfg.Timeslice() * 3
	k.Start()
	eng.RunUntil(sim.Time(cfg.Timeslice() * 40))

	if k.Stats.SleepEpisodes == 0 {
		t.Fatal("no sleep episodes recorded")
	}
	if sleeper.Sleeps == 0 {
		t.Fatal("sleeper never woke")
	}
	q0 := k.Tasks()[0].Stats().Quanta
	q1 := k.Tasks()[1].Stats().Quanta
	if q0 == 0 {
		t.Fatal("sleeper starved entirely")
	}
	if q0 >= q1 {
		t.Fatalf("sleeper ran %d quanta vs awake task's %d; sleeping should cost CPU", q0, q1)
	}
}

// TestHighPriorityTaskDominates: a nice -10 task receives most of the
// CPU under CFS (the Section 5.4 priority caveat).
func TestHighPriorityTaskDominates(t *testing.T) {
	cfg := config.Default(config.Density8Gb, 2048)
	cfg.OS.Scheduler = config.SchedCFS
	cfg.OS.CtxSwitchCycles = 0
	k, eng := rig(t, cfg, 1, nil)
	addTasks(k, 2)
	k.AssignMasks()
	k.Tasks()[0].SetNice(-10)
	k.Start()
	eng.RunUntil(sim.Time(cfg.Timeslice() * 60))

	q0 := float64(k.Tasks()[0].Stats().Quanta)
	q1 := float64(k.Tasks()[1].Stats().Quanta)
	if q1 == 0 {
		t.Fatal("low-priority task starved completely (CFS must not starve)")
	}
	// nice -10 vs 0 is a ~9.3x weight ratio.
	if q0/q1 < 5 {
		t.Fatalf("priority ratio = %v (q0=%v q1=%v), want >> 1", q0/q1, q0, q1)
	}
}

// TestEtaFallbackWhenEligibleTasksSleep: with refresh awareness on and
// the only eligible tasks asleep, the scheduler falls back past η
// rather than idling (the fairness-threshold mechanism).
func TestEtaFallbackWhenEligibleTasksSleep(t *testing.T) {
	cfg := config.Default(config.Density8Gb, 2048)
	cfg.OS.Scheduler = config.SchedCFS
	cfg.OS.RefreshAware = true
	cfg.OS.Alloc = config.AllocSoftPartition
	cfg.OS.CtxSwitchCycles = 0
	k, eng := rig(t, cfg, 2, fixedPlanner{slot: cfg.Timeslice()})
	addTasks(k, 8)
	k.AssignMasks()
	// Make half the tasks sleep aggressively so eligible candidates are
	// often absent.
	for i, task := range k.Tasks() {
		if i%2 == 0 {
			task.SleepEveryQuanta = 1
			task.SleepForCycles = cfg.Timeslice() * 4
		}
	}
	k.Start()
	eng.RunUntil(sim.Time(cfg.Timeslice() * 64))

	st := k.Picker().Stats()
	if st.Picks == 0 {
		t.Fatal("nothing scheduled")
	}
	if st.FallbackPicks+st.BestEffortPicks == 0 {
		t.Fatal("η fallback never triggered despite sleeping eligible tasks")
	}
	// The system still made forward progress on every task.
	for _, task := range k.Tasks() {
		if task.Stats().Quanta == 0 {
			t.Fatalf("task %d never ran", task.ID())
		}
	}
}
