// Package timeline is a low-overhead span/instant event tracer that
// emits Chrome trace-event JSON, loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
// The recorder is a fixed-capacity ring of value-type events guarded
// by a mutex: emitting never allocates, and when the ring fills the
// oldest events are overwritten (the drop count is reported). The
// intended disabled path is a nil *Recorder check at every
// instrumentation site, so an un-attached simulation pays a single
// predictable branch per would-be event and zero allocations.
//
// Timestamps are written to the trace's "ts" field verbatim, which
// Chrome/Perfetto interpret as microseconds. Simulator traces emit
// simulated DRAM cycles as integer microseconds (1 cycle = 1 us of
// trace time); service traces emit wall-clock microseconds since job
// creation. Tracks are addressed by (pid, tid) pairs; the repo-wide
// numbering convention lives with the constants below and in
// DESIGN.md.
package timeline

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Track numbering conventions. Simulator traces group simulated cores
// under one process and each DRAM channel under its own; service
// traces group HTTP/job bookkeeping under one process and simulation
// cell lanes under another. The two conventions never share a file.
const (
	// PidCPU is the process id of the simulated-core track group: one
	// thread per core, carrying task quantum spans and skip instants.
	PidCPU = 1
	// PidDRAMBase plus the channel index is the process id of that
	// channel's track group: one thread per global bank, carrying
	// refresh busy slots and refresh-stalled read spans.
	PidDRAMBase = 100
)

// Event phases, per the Chrome trace-event format.
const (
	PhaseSpan    = 'X' // complete span: needs Ts and Dur
	PhaseInstant = 'i' // instant: needs Ts
	PhaseMeta    = 'M' // metadata: process_name / thread_name
)

// Event is one trace event. It is a fixed-size value type so the ring
// buffer never allocates on emit: up to two integer args and one
// string arg ride in dedicated slots (an empty arg name means the
// slot is unused). Name strings are expected to be static or
// pre-existing (interned) so that emitting does not allocate either.
type Event struct {
	Ph   byte   // PhaseSpan or PhaseInstant
	Ts   uint64 // microseconds
	Dur  uint64 // span length; spans only
	Pid  int32
	Tid  int32
	Name string

	Arg1Name string
	Arg1     int64
	Arg2Name string
	Arg2     int64
	StrName  string
	Str      string
}

// metaEvent is a process_name or thread_name metadata record. These
// are kept outside the ring so track names survive any wrap.
type metaEvent struct {
	pid, tid int32
	thread   bool // thread_name if set, process_name otherwise
	name     string
}

// DefaultCap is the ring capacity used when NewRecorder is given a
// non-positive capacity. At ~128Ki events it comfortably holds a
// quick-preset measurement window.
const DefaultCap = 1 << 17

// Recorder accumulates events into a fixed ring. It is safe for
// concurrent use; the simulator drives it from one goroutine, the
// service from many.
type Recorder struct {
	mu      sync.Mutex
	w       io.Writer // Flush target; may be nil (WriteTo-only use)
	ring    []Event
	next    int
	wrapped bool
	dropped uint64
	meta    []metaEvent
}

// NewRecorder returns a recorder with the given ring capacity
// (DefaultCap if capacity <= 0). w is the Flush target and may be nil
// when the caller serves the trace itself via WriteTo.
func NewRecorder(w io.Writer, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Recorder{w: w, ring: make([]Event, capacity)}
}

// SetProcessName names the (pid) track group in trace viewers.
func (r *Recorder) SetProcessName(pid int32, name string) {
	r.mu.Lock()
	r.meta = append(r.meta, metaEvent{pid: pid, name: name})
	r.mu.Unlock()
}

// SetThreadName names the (pid, tid) track in trace viewers.
func (r *Recorder) SetThreadName(pid, tid int32, name string) {
	r.mu.Lock()
	r.meta = append(r.meta, metaEvent{pid: pid, tid: tid, thread: true, name: name})
	r.mu.Unlock()
}

// Emit records one event, overwriting the oldest if the ring is full.
// It never allocates.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	if r.wrapped {
		r.dropped++
	}
	r.ring[r.next] = e
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// Span records a complete span on track (pid, tid).
func (r *Recorder) Span(pid, tid int32, name string, ts, dur uint64) {
	r.Emit(Event{Ph: PhaseSpan, Ts: ts, Dur: dur, Pid: pid, Tid: tid, Name: name})
}

// Instant records a zero-duration marker on track (pid, tid).
func (r *Recorder) Instant(pid, tid int32, name string, ts uint64) {
	r.Emit(Event{Ph: PhaseInstant, Ts: ts, Pid: pid, Tid: tid, Name: name})
}

// Len reports the number of events currently held in the ring.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wrapped {
		return len(r.ring)
	}
	return r.next
}

// Dropped reports how many events were overwritten after the ring
// filled.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Flush writes the trace to the writer given to NewRecorder. It is a
// no-op when the recorder has no writer.
func (r *Recorder) Flush() error {
	if r.w == nil {
		return nil
	}
	_, err := r.WriteTo(r.w)
	return err
}

// WriteTo serialises the trace as a Chrome trace-event JSON object:
// metadata records first, then the ring's events stably sorted by
// timestamp. The sort guarantees timestamps are monotone per track in
// file order regardless of emission order (the service emits request
// spans at completion time), and stability keeps same-timestamp
// events in emission order. Output is deterministic for a
// deterministic event sequence.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	events := make([]Event, 0, len(r.ring))
	if r.wrapped {
		events = append(events, r.ring[r.next:]...)
		events = append(events, r.ring[:r.next]...)
	} else {
		events = append(events, r.ring[:r.next]...)
	}
	meta := append([]metaEvent(nil), r.meta...)
	r.mu.Unlock()

	sort.SliceStable(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })

	cw := &countWriter{w: w}
	bw := bufio.NewWriter(cw)
	bw.WriteString(`{"traceEvents":[`)
	first := true
	var scratch []byte
	for _, m := range meta {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		kind, tid := "process_name", ""
		if m.thread {
			kind = "thread_name"
			tid = `,"tid":` + strconv.Itoa(int(m.tid))
		}
		fmt.Fprintf(bw, `{"name":%q,"ph":"M","pid":%d%s,"args":{"name":%s}}`,
			kind, m.pid, tid, strconv.Quote(m.name))
	}
	for i := range events {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		scratch = appendEvent(scratch[:0], &events[i])
		bw.Write(scratch)
	}
	bw.WriteString("]}\n")
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// appendEvent serialises one ring event into buf.
func appendEvent(buf []byte, e *Event) []byte {
	buf = append(buf, `{"name":`...)
	buf = strconv.AppendQuote(buf, e.Name)
	buf = append(buf, `,"ph":"`...)
	buf = append(buf, e.Ph)
	buf = append(buf, `","ts":`...)
	buf = strconv.AppendUint(buf, e.Ts, 10)
	if e.Ph == PhaseSpan {
		buf = append(buf, `,"dur":`...)
		buf = strconv.AppendUint(buf, e.Dur, 10)
	}
	buf = append(buf, `,"pid":`...)
	buf = strconv.AppendInt(buf, int64(e.Pid), 10)
	buf = append(buf, `,"tid":`...)
	buf = strconv.AppendInt(buf, int64(e.Tid), 10)
	if e.Ph == PhaseInstant {
		// Thread-scoped instants render as small arrows on their track.
		buf = append(buf, `,"s":"t"`...)
	}
	if e.Arg1Name != "" || e.StrName != "" {
		buf = append(buf, `,"args":{`...)
		comma := false
		if e.Arg1Name != "" {
			buf = strconv.AppendQuote(buf, e.Arg1Name)
			buf = append(buf, ':')
			buf = strconv.AppendInt(buf, e.Arg1, 10)
			comma = true
		}
		if e.Arg2Name != "" {
			if comma {
				buf = append(buf, ',')
			}
			buf = strconv.AppendQuote(buf, e.Arg2Name)
			buf = append(buf, ':')
			buf = strconv.AppendInt(buf, e.Arg2, 10)
			comma = true
		}
		if e.StrName != "" {
			if comma {
				buf = append(buf, ',')
			}
			buf = strconv.AppendQuote(buf, e.StrName)
			buf = append(buf, ':')
			buf = strconv.AppendQuote(buf, e.Str)
		}
		buf = append(buf, '}')
	}
	buf = append(buf, '}')
	return buf
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// DecodedEvent is one event as read back by Decode. Args carries the
// decoded args object (numbers come back as float64, per
// encoding/json).
type DecodedEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    *uint64        `json:"ts,omitempty"`
	Dur   *uint64        `json:"dur,omitempty"`
	Pid   int32          `json:"pid"`
	Tid   int32          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Decode reads a Chrome trace-event JSON object and validates every
// event: the phase must be X, i, or M; names must be non-empty; spans
// and instants must carry a timestamp and spans a duration. It is the
// timeline analogue of the Prometheus-exposition round-trip parser:
// strict enough that a passing decode certifies the file loads in
// Perfetto.
func Decode(r io.Reader) ([]DecodedEvent, error) {
	var top struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&top); err != nil {
		return nil, fmt.Errorf("timeline: not a trace-event JSON object: %w", err)
	}
	if top.TraceEvents == nil {
		return nil, errors.New(`timeline: missing "traceEvents" array`)
	}
	out := make([]DecodedEvent, 0, len(top.TraceEvents))
	for i, raw := range top.TraceEvents {
		var e DecodedEvent
		d := json.NewDecoder(bytes.NewReader(raw))
		d.DisallowUnknownFields()
		if err := d.Decode(&e); err != nil {
			return nil, fmt.Errorf("timeline: event %d: %w", i, err)
		}
		if e.Name == "" {
			return nil, fmt.Errorf("timeline: event %d: empty name", i)
		}
		switch e.Ph {
		case "X":
			if e.Ts == nil || e.Dur == nil {
				return nil, fmt.Errorf("timeline: event %d (%s): span without ts/dur", i, e.Name)
			}
		case "i":
			if e.Ts == nil {
				return nil, fmt.Errorf("timeline: event %d (%s): instant without ts", i, e.Name)
			}
		case "M":
			// Metadata: no timestamp required.
		default:
			return nil, fmt.Errorf("timeline: event %d (%s): unknown phase %q", i, e.Name, e.Ph)
		}
		out = append(out, e)
	}
	return out, nil
}

// CheckMonotone verifies that non-metadata event timestamps are
// nondecreasing per (pid, tid) track in file order, the invariant
// WriteTo's stable sort establishes.
func CheckMonotone(events []DecodedEvent) error {
	last := make(map[[2]int32]uint64)
	for i, e := range events {
		if e.Ph == "M" || e.Ts == nil {
			continue
		}
		key := [2]int32{e.Pid, e.Tid}
		if prev, ok := last[key]; ok && *e.Ts < prev {
			return fmt.Errorf("timeline: event %d (%s): ts %d before %d on track pid=%d tid=%d",
				i, e.Name, *e.Ts, prev, e.Pid, e.Tid)
		}
		last[key] = *e.Ts
	}
	return nil
}
