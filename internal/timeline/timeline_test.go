package timeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRoundTrip emits a representative mix of events and checks the
// serialised file decodes back field-for-field through the validating
// decoder (and through encoding/json on its own, proving the
// hand-rolled writer produces legal JSON).
func TestRoundTrip(t *testing.T) {
	r := NewRecorder(nil, 16)
	r.SetProcessName(PidCPU, "cpu")
	r.SetThreadName(PidCPU, 0, "core0")
	r.Emit(Event{Ph: PhaseSpan, Ts: 10, Dur: 5, Pid: PidCPU, Tid: 0, Name: "quantum",
		Arg1Name: "task", Arg1: -1, Arg2Name: "skipped", Arg2: 3})
	r.Instant(PidCPU, 0, "skip", 15)
	r.Emit(Event{Ph: PhaseSpan, Ts: 20, Dur: 2, Pid: 2, Tid: 7, Name: `odd "name"`,
		StrName: "req", Str: "req-000001"})

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var anyJSON map[string]any
	if err := json.Unmarshal(buf.Bytes(), &anyJSON); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.Bytes())
	}

	events, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v\n%s", err, buf.Bytes())
	}
	if len(events) != 5 { // 2 meta + 3 ring
		t.Fatalf("decoded %d events, want 5", len(events))
	}
	if events[0].Ph != "M" || events[0].Name != "process_name" || events[0].Args["name"] != "cpu" {
		t.Errorf("meta[0] = %+v, want process_name cpu", events[0])
	}
	span := events[2]
	if span.Name != "quantum" || span.Ph != "X" || *span.Ts != 10 || *span.Dur != 5 {
		t.Errorf("span = %+v", span)
	}
	if span.Args["task"] != float64(-1) || span.Args["skipped"] != float64(3) {
		t.Errorf("span args = %v", span.Args)
	}
	inst := events[3]
	if inst.Ph != "i" || inst.Scope != "t" || *inst.Ts != 15 {
		t.Errorf("instant = %+v", inst)
	}
	str := events[4]
	if str.Name != `odd "name"` || str.Args["req"] != "req-000001" {
		t.Errorf("string-arg span = %+v", str)
	}
	if err := CheckMonotone(events); err != nil {
		t.Error(err)
	}
}

// TestRingOverwrite fills a tiny ring past capacity and checks the
// oldest events are dropped, the drop count is reported, and the
// survivors come out in order.
func TestRingOverwrite(t *testing.T) {
	r := NewRecorder(nil, 4)
	for i := 0; i < 10; i++ {
		r.Span(1, 0, "e", uint64(i), 1)
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range events {
		if want := uint64(6 + i); *e.Ts != want {
			t.Errorf("event %d ts = %d, want %d", i, *e.Ts, want)
		}
	}
}

// TestWriteSortsPerTrack emits events out of timestamp order (the
// service emits request spans at completion, not start) and checks
// the file comes out monotone per track, with same-timestamp events
// kept in emission order.
func TestWriteSortsPerTrack(t *testing.T) {
	r := NewRecorder(nil, 8)
	r.Span(1, 0, "late-start", 50, 10) // emitted first, starts later
	r.Span(1, 0, "early-start", 0, 100)
	r.Instant(1, 1, "first-at-5", 5)
	r.Instant(1, 1, "second-at-5", 5)
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckMonotone(events); err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(events))
	for i, e := range events {
		names[i] = e.Name
	}
	want := []string{"early-start", "first-at-5", "second-at-5", "late-start"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("file order %v, want %v", names, want)
		}
	}
}

// TestDecodeRejectsMalformed checks the validating decoder refuses
// the failure modes a hand-edited or truncated file would exhibit.
func TestDecodeRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        `{"traceEvents":[`,
		"no traceEvents":  `{"events":[]}`,
		"empty name":      `{"traceEvents":[{"name":"","ph":"X","ts":1,"dur":1,"pid":1,"tid":1}]}`,
		"unknown phase":   `{"traceEvents":[{"name":"e","ph":"Q","ts":1,"pid":1,"tid":1}]}`,
		"span sans dur":   `{"traceEvents":[{"name":"e","ph":"X","ts":1,"pid":1,"tid":1}]}`,
		"instant sans ts": `{"traceEvents":[{"name":"e","ph":"i","pid":1,"tid":1}]}`,
		"unknown field":   `{"traceEvents":[{"name":"e","ph":"i","ts":1,"pid":1,"tid":1,"bogus":2}]}`,
	}
	for label, in := range cases {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Decode accepted %s", label, in)
		}
	}
}

// TestCheckMonotone checks the per-track invariant checker flags
// regressions on one track but tolerates interleaved tracks.
func TestCheckMonotone(t *testing.T) {
	ts := func(v uint64) *uint64 { return &v }
	ok := []DecodedEvent{
		{Name: "a", Ph: "X", Ts: ts(10), Dur: ts(1), Pid: 1, Tid: 0},
		{Name: "b", Ph: "X", Ts: ts(5), Dur: ts(1), Pid: 1, Tid: 1}, // other track: fine
		{Name: "c", Ph: "i", Ts: ts(10), Pid: 1, Tid: 0},            // equal ts: fine
	}
	if err := CheckMonotone(ok); err != nil {
		t.Errorf("CheckMonotone(ok) = %v", err)
	}
	bad := append(append([]DecodedEvent(nil), ok...),
		DecodedEvent{Name: "d", Ph: "i", Ts: ts(9), Pid: 1, Tid: 0})
	if err := CheckMonotone(bad); err == nil {
		t.Error("CheckMonotone missed a regression")
	}
}

// TestEmitDoesNotAllocate pins the enabled-path emit at zero
// allocations: the ring holds value-type events and the strings are
// interned by the caller, so tracing costs a mutex and a copy.
func TestEmitDoesNotAllocate(t *testing.T) {
	r := NewRecorder(nil, 1024)
	e := Event{Ph: PhaseSpan, Ts: 1, Dur: 2, Pid: 1, Tid: 3, Name: "refresh",
		Arg1Name: "rows", Arg1: 8}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(e)
		r.Instant(1, 3, "skip", 9)
	})
	if allocs != 0 {
		t.Fatalf("emit allocates %v allocs/op, want 0", allocs)
	}
}

// TestDeterministicBytes replays the same event sequence twice and
// requires byte-identical output, the property the fixed-seed
// simulator determinism test leans on.
func TestDeterministicBytes(t *testing.T) {
	build := func() []byte {
		r := NewRecorder(nil, 64)
		r.SetProcessName(1, "p")
		for i := 0; i < 40; i++ {
			r.Emit(Event{Ph: PhaseSpan, Ts: uint64(i % 7), Dur: 1, Pid: 1, Tid: int32(i % 3),
				Name: "e", Arg1Name: "i", Arg1: int64(i)})
		}
		var buf bytes.Buffer
		if _, err := r.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := build(), build(); !bytes.Equal(a, b) {
		t.Fatal("same event sequence serialised to different bytes")
	}
}
