// Package metrics is the simulator's unified instrumentation seam: a
// typed registry of scalar counters, gauges, and fixed-bucket
// histograms addressed by hierarchical names such as
// mc[0].bank[3].refresh_busy_cycles.
//
// The design splits cost asymmetrically. Registration (Build time, or
// lazy first-use in the daemon) takes locks and may reflect over
// structs; the measurement hot path never touches the registry at all —
// a registered counter is a plain uint64 the owning layer increments
// directly (c.Stats.Reads++, or Counter.Inc on a handle), so
// instrumenting an event costs exactly one integer add and zero
// allocations. Reading happens through Registry.Snapshot, which
// evaluates every registered source once; the measurement interval is
// expressed as snapshot(end).Diff(snapshot(warmup)) instead of
// scattered per-layer reset logic.
//
// Adding a new measurement is one registration line: either bind an
// existing uint64 field (CounterPtr / Struct) or mint a fresh handle
// (Counter) and increment it from the hot path.
package metrics

import (
	"fmt"
	"sync"

	"refsched/internal/stats"
)

// Kind classifies a registered metric.
type Kind uint8

const (
	// KindCounter is a monotonically nondecreasing uint64; interval
	// values are snapshot differences.
	KindCounter Kind = iota
	// KindGauge is an instantaneous float64 (queue depth, utilization);
	// diffing keeps the end value.
	KindGauge
	// KindHistogram is a fixed-width-bucket distribution; diffing
	// subtracts bucket-wise.
	KindHistogram
)

// String names the kind as the Prometheus exposition format spells it.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// entry is one registered metric source.
type entry struct {
	name    string
	kind    Kind
	counter func() uint64
	gauge   func() float64
	hist    func() HistValue
}

// Registry holds the registered metric sources of one system (a
// simulated machine, or the serving daemon). Registration and Snapshot
// are safe for concurrent use; reading a registered source must be safe
// at Snapshot time (single-threaded simulator state qualifies because
// snapshots happen between engine steps; concurrent daemon state uses
// atomic or lock-guarded loader funcs).
type Registry struct {
	mu      sync.RWMutex
	entries []entry
	index   map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]int{}}
}

// register adds e, panicking on duplicate names: two layers silently
// sharing a name would corrupt every snapshot, so it is a programmer
// invariant, not a runtime condition.
func (r *Registry) register(e entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.index[e.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", e.name))
	}
	r.index[e.name] = len(r.entries)
	r.entries = append(r.entries, e)
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Counter is a monotonically increasing scalar handle for call sites
// that do not already keep their own uint64 field. Inc and Add are the
// hot-path operations: a single integer add, no locks, no allocations.
// A Counter must only be written from one goroutine (like the rest of
// the simulator's counters); concurrent writers should register a
// CounterFunc over an atomic instead.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Scope is a name prefix within a registry; scopes nest with '.'
// separators and cost nothing to create.
type Scope struct {
	reg    *Registry
	prefix string
}

// Root returns the registry's top-level scope.
func (r *Registry) Root() Scope { return Scope{reg: r} }

// Sub returns the child scope s.name.
func (s Scope) Sub(name string) Scope {
	return Scope{reg: s.reg, prefix: s.full(name)}
}

// Subf is Sub with fmt formatting, the idiom for indexed scopes:
// root.Subf("mc[%d]", i).
func (s Scope) Subf(format string, args ...any) Scope {
	return s.Sub(fmt.Sprintf(format, args...))
}

// full joins the scope prefix and a leaf name.
func (s Scope) full(name string) string {
	if s.prefix == "" {
		return name
	}
	return s.prefix + "." + name
}

// Counter registers and returns a fresh counter handle.
func (s Scope) Counter(name string) *Counter {
	c := &Counter{}
	s.CounterPtr(name, &c.v)
	return c
}

// CounterPtr registers an existing uint64 as a counter; the owner keeps
// incrementing the field directly, the registry only reads it at
// snapshot time. This is how the per-layer stat structs are migrated
// without touching their hot paths.
func (s Scope) CounterPtr(name string, p *uint64) {
	s.reg.register(entry{name: s.full(name), kind: KindCounter, counter: func() uint64 { return *p }})
}

// CounterFunc registers a counter read through fn (atomics, or values
// needing a lock).
func (s Scope) CounterFunc(name string, fn func() uint64) {
	s.reg.register(entry{name: s.full(name), kind: KindCounter, counter: fn})
}

// GaugeFunc registers an instantaneous value read through fn.
func (s Scope) GaugeFunc(name string, fn func() float64) {
	s.reg.register(entry{name: s.full(name), kind: KindGauge, gauge: fn})
}

// Histogram registers a stats.Histogram owned by single-threaded code.
func (s Scope) Histogram(name string, h *stats.Histogram) {
	s.HistogramFunc(name, h.View)
}

// HistogramFunc registers a histogram read through fn; use it when the
// histogram needs a lock held around View.
func (s Scope) HistogramFunc(name string, fn func() stats.HistogramView) {
	s.reg.register(entry{name: s.full(name), kind: KindHistogram, hist: func() HistValue {
		return histValue(fn())
	}})
}
