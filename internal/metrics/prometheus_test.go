package metrics

import (
	"bytes"
	"strings"
	"testing"

	"refsched/internal/stats"
)

func TestSplitName(t *testing.T) {
	cases := []struct {
		in     string
		family string
		labels map[string]string
	}{
		{"mc[0].bank[3].refresh_busy_cycles", "ns_mc_bank_refresh_busy_cycles",
			map[string]string{"mc": "0", "bank": "3"}},
		{"simulations", "ns_simulations", nil},
		{"figure[fig10].sim_events", "ns_figure_sim_events", map[string]string{"figure": "fig10"}},
		{"queue.depth", "ns_queue_depth", nil},
	}
	for _, c := range cases {
		pn := splitName("ns", c.in)
		if pn.family != c.family {
			t.Errorf("splitName(%q).family = %q, want %q", c.in, pn.family, c.family)
		}
		got := map[string]string{}
		for _, l := range pn.labels {
			got[l.key] = l.value
		}
		if len(got) != len(c.labels) {
			t.Errorf("splitName(%q).labels = %v, want %v", c.in, got, c.labels)
			continue
		}
		for k, v := range c.labels {
			if got[k] != v {
				t.Errorf("splitName(%q) label %s = %q, want %q", c.in, k, got[k], v)
			}
		}
	}
}

// TestWriteParsesBack renders a mixed snapshot and feeds it through the
// package's own validating parser: every line must be well-formed and
// every sample typed.
func TestWriteParsesBack(t *testing.T) {
	reg := NewRegistry()
	var reads, writes uint64 = 5, 7
	h := stats.NewHistogram(10, 3)
	h.Add(5)
	h.Add(25)
	h.Add(999)
	reg.Root().Sub("mc[0]").CounterPtr("reads", &reads)
	reg.Root().Sub("mc[1]").CounterPtr("reads", &writes)
	reg.Root().GaugeFunc("queue_depth", func() float64 { return 2 })
	reg.Root().Sub("figure[fig10]").Histogram("job_latency_ms", h)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot(), "test"); err != nil {
		t.Fatal(err)
	}
	samples, err := ParsePrometheusText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("output failed own parser: %v\n%s", err, buf.String())
	}

	byName := func(name string, labels map[string]string) (float64, bool) {
	next:
		for _, s := range samples {
			if s.Name != name {
				continue
			}
			for k, v := range labels {
				if s.Labels[k] != v {
					continue next
				}
			}
			return s.Value, true
		}
		return 0, false
	}

	if v, ok := byName("test_mc_reads", map[string]string{"mc": "0"}); !ok || v != 5 {
		t.Errorf("test_mc_reads{mc=0} = %v,%v want 5,true", v, ok)
	}
	if v, ok := byName("test_mc_reads", map[string]string{"mc": "1"}); !ok || v != 7 {
		t.Errorf("test_mc_reads{mc=1} = %v,%v want 7,true", v, ok)
	}
	if v, ok := byName("test_queue_depth", nil); !ok || v != 2 {
		t.Errorf("test_queue_depth = %v,%v want 2,true", v, ok)
	}
	// Histogram: cumulative buckets, +Inf equals count, sum/count lines.
	if v, ok := byName("test_figure_job_latency_ms_bucket",
		map[string]string{"figure": "fig10", "le": "10"}); !ok || v != 1 {
		t.Errorf("bucket le=10 = %v,%v want 1,true", v, ok)
	}
	if v, ok := byName("test_figure_job_latency_ms_bucket",
		map[string]string{"figure": "fig10", "le": "30"}); !ok || v != 2 {
		t.Errorf("bucket le=30 = %v,%v want cumulative 2,true", v, ok)
	}
	if v, ok := byName("test_figure_job_latency_ms_bucket",
		map[string]string{"figure": "fig10", "le": "+Inf"}); !ok || v != 3 {
		t.Errorf("bucket le=+Inf = %v,%v want 3,true", v, ok)
	}
	if v, ok := byName("test_figure_job_latency_ms_count",
		map[string]string{"figure": "fig10"}); !ok || v != 3 {
		t.Errorf("count = %v,%v want 3,true", v, ok)
	}
	if v, ok := byName("test_figure_job_latency_ms_sum",
		map[string]string{"figure": "fig10"}); !ok || v != 1029 {
		t.Errorf("sum = %v,%v want 1029,true", v, ok)
	}
}

func TestWriteIsDeterministic(t *testing.T) {
	reg := NewRegistry()
	var a, b, c uint64 = 1, 2, 3
	reg.Root().Sub("z").CounterPtr("late", &a)
	reg.Root().Sub("a").CounterPtr("early", &b)
	reg.Root().Sub("m[0]").CounterPtr("mid", &c)
	snap := reg.Snapshot()
	var first bytes.Buffer
	if err := WritePrometheus(&first, snap, "d"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		var again bytes.Buffer
		if err := WritePrometheus(&again, snap, "d"); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, first.String(), again.String())
		}
	}
}

func TestParserRejectsMalformedInput(t *testing.T) {
	bad := []string{
		"no_type_line 5\n",
		"# TYPE x counter\nx{unterminated=\"v 5\n",
		"# TYPE x counter\nx notanumber\n",
		"# TYPE 0bad counter\n0bad 5\n",
	}
	for _, in := range bad {
		if _, err := ParsePrometheusText(strings.NewReader(in)); err == nil {
			t.Errorf("parser accepted malformed input %q", in)
		}
	}
}
