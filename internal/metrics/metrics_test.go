package metrics

import (
	"encoding/json"
	"reflect"
	"testing"

	"refsched/internal/stats"
)

func TestCounterPtrReadsLiveField(t *testing.T) {
	reg := NewRegistry()
	var v uint64
	reg.Root().Sub("mc[0]").CounterPtr("reads", &v)
	v = 7
	if got := reg.Snapshot().Counter("mc[0].reads"); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	v += 5
	if got := reg.Snapshot().Counter("mc[0].reads"); got != 12 {
		t.Fatalf("counter after increment = %d, want 12", got)
	}
}

func TestCounterHandle(t *testing.T) {
	reg := NewRegistry()
	c := reg.Root().Counter("events")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("Value = %d, want 10", c.Value())
	}
	if got := reg.Snapshot().Counter("events"); got != 10 {
		t.Fatalf("snapshot = %d, want 10", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	var v uint64
	reg.Root().CounterPtr("x", &v)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	reg.Root().CounterPtr("x", &v)
}

func TestSnapshotDiff(t *testing.T) {
	reg := NewRegistry()
	var v uint64 = 100
	g := 3.0
	h := stats.NewHistogram(10, 4)
	reg.Root().CounterPtr("c", &v)
	reg.Root().GaugeFunc("g", func() float64 { return g })
	reg.Root().Histogram("h", h)

	h.Add(5)
	base := reg.Snapshot()
	v += 42
	g = 9.5
	h.Add(15)
	h.Add(1000) // overflow bucket
	d := reg.Snapshot().Diff(base)

	if got := d.Counter("c"); got != 42 {
		t.Errorf("diffed counter = %d, want 42", got)
	}
	if got := d.Gauge("g"); got != 9.5 {
		t.Errorf("diffed gauge = %g, want end value 9.5", got)
	}
	hd := d.Histogram("h")
	if hd.Count != 2 || hd.Sum != 1015 || hd.Over != 1 {
		t.Errorf("diffed histogram = %+v, want count=2 sum=1015 over=1", hd)
	}
	if hd.Counts[0] != 0 || hd.Counts[1] != 1 {
		t.Errorf("diffed buckets = %v, want [0 1 0 0]", hd.Counts)
	}
	if hd.Max != 1000 {
		t.Errorf("diffed max = %d, want end value 1000", hd.Max)
	}
}

func TestSnapshotDropsNonFiniteGauges(t *testing.T) {
	reg := NewRegistry()
	bad := 0.0
	reg.Root().GaugeFunc("ratio", func() float64 { return bad / bad }) // NaN
	snap := reg.Snapshot()
	if _, ok := snap.Gauges["ratio"]; ok {
		t.Fatal("NaN gauge should be dropped from the snapshot")
	}
}

func TestStructRegistration(t *testing.T) {
	type bankStats struct {
		Reads             uint64
		CPUCycles         uint64
		LLCMisses         uint64
		RefreshBusyCycles uint64
		skipMe            uint64 // exercises the unexported-skip path
		Ratio             float64
	}
	reg := NewRegistry()
	var st bankStats
	_ = st.skipMe
	reg.Root().Sub("bank[2]").Struct(&st)
	st.Reads = 1
	st.CPUCycles = 2
	st.LLCMisses = 3
	st.RefreshBusyCycles = 4
	snap := reg.Snapshot()
	want := map[string]uint64{
		"bank[2].reads":               1,
		"bank[2].cpu_cycles":          2,
		"bank[2].llc_misses":          3,
		"bank[2].refresh_busy_cycles": 4,
	}
	if !reflect.DeepEqual(snap.Counters, want) {
		t.Fatalf("counters = %v, want %v", snap.Counters, want)
	}
}

func TestStructRejectsNonStructAndEmpty(t *testing.T) {
	reg := NewRegistry()
	for name, p := range map[string]any{
		"non-pointer":      struct{ X uint64 }{},
		"no-uint64-fields": &struct{ X float64 }{},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			reg.Root().Struct(p)
		}()
	}
}

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"Reads":             "reads",
		"RowHits":           "row_hits",
		"CPUCycles":         "cpu_cycles",
		"LLCMisses":         "llc_misses",
		"RefreshBusyCycles": "refresh_busy_cycles",
		"IdleQuanta":        "idle_quanta",
		"X":                 "x",
	}
	for in, want := range cases {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	var v uint64 = 11
	h := stats.NewHistogram(2, 3)
	h.Add(3)
	reg.Root().Sub("mc[0]").CounterPtr("reads", &v)
	reg.Root().GaugeFunc("depth", func() float64 { return 2.5 })
	reg.Root().Histogram("lat", h)

	snap := reg.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, snap)
	}
}

// TestCounterOpsAreAllocationFree pins the hot-path contract: once a
// counter is registered, incrementing it (by handle or by owned field)
// allocates nothing.
func TestCounterOpsAreAllocationFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Root().Counter("events")
	var field uint64
	reg.Root().CounterPtr("reads", &field)

	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		field++
	}); n != 0 {
		t.Fatalf("counter ops allocated %.1f times per op, want 0", n)
	}
}
