package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition. A hierarchical registry name maps onto a
// flat metric name plus labels: every indexed scope segment becomes a
// label keyed by the segment's base name, and the remaining segments
// join the metric name with underscores. So with namespace "refsched",
//
//	mc[0].bank[3].refresh_busy_cycles
//
// renders as
//
//	refsched_mc_bank_refresh_busy_cycles{mc="0",bank="3"}
//
// which is exactly the shape a Prometheus aggregation wants (sum by
// (mc) of the per-bank series). Histograms render as the conventional
// cumulative _bucket/_sum/_count family.

// promName is a parsed hierarchical name: flat family name + labels.
type promName struct {
	family string
	labels []promLabel
}

type promLabel struct{ key, value string }

// splitName maps a registry name to its Prometheus family and labels.
func splitName(namespace, name string) promName {
	var pn promName
	parts := make([]string, 0, 4)
	if namespace != "" {
		parts = append(parts, sanitize(namespace))
	}
	for _, seg := range strings.Split(name, ".") {
		base := seg
		if i := strings.IndexByte(seg, '['); i >= 0 && strings.HasSuffix(seg, "]") {
			base = seg[:i]
			pn.labels = append(pn.labels, promLabel{sanitize(base), seg[i+1 : len(seg)-1]})
		}
		parts = append(parts, sanitize(base))
	}
	pn.family = strings.Join(parts, "_")
	return pn
}

// sanitize maps a name segment onto the Prometheus metric/label-name
// charset [a-zA-Z0-9_] (invalid runes become '_').
func sanitize(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// labelString renders {k="v",...} ("" for no labels), escaping label
// values per the exposition format.
func labelString(labels []promLabel, extra ...promLabel) string {
	all := append(append([]promLabel{}, labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(l.value)
		fmt.Fprintf(&b, `%s="%s"`, l.key, v)
	}
	b.WriteByte('}')
	return b.String()
}

// promFamily groups the samples of one metric family for rendering.
type promFamily struct {
	name    string
	kind    Kind
	samples []string // fully rendered sample lines
}

// WritePrometheus renders snap in the Prometheus text exposition format
// (version 0.0.4), families sorted by name and samples sorted within
// each family, so output is deterministic for a given snapshot.
func WritePrometheus(w io.Writer, snap Snapshot, namespace string) error {
	fams := map[string]*promFamily{}
	family := func(pn promName, kind Kind) *promFamily {
		f, ok := fams[pn.family]
		if !ok {
			f = &promFamily{name: pn.family, kind: kind}
			fams[pn.family] = f
		}
		return f
	}

	for name, v := range snap.Counters {
		pn := splitName(namespace, name)
		f := family(pn, KindCounter)
		f.samples = append(f.samples, fmt.Sprintf("%s%s %d", pn.family, labelString(pn.labels), v))
	}
	for name, v := range snap.Gauges {
		pn := splitName(namespace, name)
		f := family(pn, KindGauge)
		f.samples = append(f.samples,
			fmt.Sprintf("%s%s %s", pn.family, labelString(pn.labels), strconv.FormatFloat(v, 'g', -1, 64)))
	}
	for name, h := range snap.Histograms {
		pn := splitName(namespace, name)
		f := family(pn, KindHistogram)
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := strconv.FormatUint(uint64(i+1)*h.Width, 10)
			f.samples = append(f.samples, fmt.Sprintf("%s_bucket%s %d",
				pn.family, labelString(pn.labels, promLabel{"le", le}), cum))
		}
		f.samples = append(f.samples, fmt.Sprintf("%s_bucket%s %d",
			pn.family, labelString(pn.labels, promLabel{"le", "+Inf"}), h.Count))
		f.samples = append(f.samples, fmt.Sprintf("%s_sum%s %d", pn.family, labelString(pn.labels), h.Sum))
		f.samples = append(f.samples, fmt.Sprintf("%s_count%s %d", pn.family, labelString(pn.labels), h.Count))
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		// Histogram sample order is structural (cumulative buckets);
		// only scalar families sort their samples.
		if f.kind != KindHistogram {
			sort.Strings(f.samples)
		}
		for _, s := range f.samples {
			if _, err := fmt.Fprintln(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// PromSample is one parsed exposition sample, for tests and tools that
// consume /metricsz without a Prometheus client library.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsePrometheusText parses (and thereby validates) text exposition
// output: every line must be a well-formed comment or sample, metric
// and label names must match the Prometheus charset, and every sample
// must belong to a family announced by a preceding # TYPE line.
func ParsePrometheusText(r io.Reader) ([]PromSample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	types := map[string]string{}
	var samples []PromSample
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "HELP" {
				continue
			}
			if len(fields) != 4 || fields[1] != "TYPE" {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
			}
			if !validPromName(fields[2]) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, fields[2])
			}
			types[fields[2]] = fields[3]
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if familyOf(s.Name, types) == "" {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, s.Name)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

// familyOf resolves a sample name to its announced family, accepting
// the histogram suffixes.
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return ""
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// parseSample parses `name{k="v",...} value`.
func parseSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	end := strings.IndexAny(rest, "{ ")
	if end < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:end]
	if !validPromName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		close := strings.IndexByte(rest, '}')
		if close < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		for _, pair := range splitLabels(rest[1:close]) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return s, fmt.Errorf("malformed label %q", pair)
			}
			key := pair[:eq]
			val := pair[eq+1:]
			if !validPromName(key) {
				return s, fmt.Errorf("invalid label name %q", key)
			}
			if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
				return s, fmt.Errorf("unquoted label value in %q", pair)
			}
			s.Labels[key] = strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n").Replace(val[1 : len(val)-1])
		}
		rest = rest[close+1:]
	}
	rest = strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(body string) []string {
	if body == "" {
		return nil
	}
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, body[start:])
	return out
}
