package metrics

import (
	"fmt"
	"reflect"
	"unicode"
)

// Struct registers every exported uint64 field of the struct pointed to
// by p as a counter named after the field in snake_case (CPUCycles →
// cpu_cycles). This is the one-line migration path for the per-layer
// stat structs: the struct stays the hot-path write target, the
// registry reads the fields at snapshot time, and adding a field to the
// struct is automatically a new registered counter.
//
// Non-uint64 and unexported fields are skipped; a struct contributing
// no counters panics (it is always a wiring mistake).
func (s Scope) Struct(p any) {
	v := reflect.ValueOf(p)
	if v.Kind() != reflect.Pointer || v.Elem().Kind() != reflect.Struct {
		panic(fmt.Sprintf("metrics: Struct wants a pointer to struct, got %T", p))
	}
	v = v.Elem()
	t := v.Type()
	registered := 0
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() || f.Type.Kind() != reflect.Uint64 {
			continue
		}
		s.CounterPtr(snakeCase(f.Name), v.Field(i).Addr().Interface().(*uint64))
		registered++
	}
	if registered == 0 {
		panic(fmt.Sprintf("metrics: %s has no exported uint64 fields", t))
	}
}

// snakeCase converts an exported Go field name to snake_case, keeping
// acronym runs intact: CPUCycles → cpu_cycles, LLCMisses → llc_misses,
// RefreshBusyCycles → refresh_busy_cycles.
func snakeCase(name string) string {
	rs := []rune(name)
	out := make([]rune, 0, len(rs)+4)
	for i, r := range rs {
		if unicode.IsUpper(r) {
			prevLower := i > 0 && !unicode.IsUpper(rs[i-1])
			acronymEnd := i > 0 && i+1 < len(rs) && unicode.IsUpper(rs[i-1]) && unicode.IsLower(rs[i+1])
			if prevLower || acronymEnd {
				out = append(out, '_')
			}
			r = unicode.ToLower(r)
		}
		out = append(out, r)
	}
	return string(out)
}
