package metrics

import (
	"math"
	"sort"

	"refsched/internal/stats"
)

// HistValue is the snapshot of one histogram: bucket i covers
// [i*Width, (i+1)*Width), Over counts observations beyond the last
// bucket.
type HistValue struct {
	Width  uint64   `json:"width"`
	Counts []uint64 `json:"counts"`
	Over   uint64   `json:"over"`
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
	Max    uint64   `json:"max"`
}

// histValue converts a stats view into the snapshot form.
// View converts back to the stats-package form, so snapshot values can
// be folded into a live histogram via stats.Histogram.Merge (the
// service aggregates per-cell report histograms this way).
func (h HistValue) View() stats.HistogramView {
	return stats.HistogramView{Width: h.Width, Counts: h.Counts, Over: h.Over,
		Count: h.Count, Sum: h.Sum, Max: h.Max}
}

func histValue(v stats.HistogramView) HistValue {
	return HistValue{Width: v.Width, Counts: v.Counts, Over: v.Over,
		Count: v.Count, Sum: v.Sum, Max: v.Max}
}

// Mean returns the mean observation (0 when empty).
func (h HistValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Percentile returns an upper bound for the p-th percentile at bucket
// resolution, mirroring stats.Histogram.Percentile.
func (h HistValue) Percentile(p float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			return uint64(i+1) * h.Width
		}
	}
	return h.Max
}

// Snapshot is a point-in-time read of every registered metric, grouped
// by kind. It marshals to stable JSON (Go sorts map keys), so a dumped
// snapshot is diffable across runs and round-trips losslessly.
type Snapshot struct {
	Counters   map[string]uint64    `json:"counters"`
	Gauges     map[string]float64   `json:"gauges,omitempty"`
	Histograms map[string]HistValue `json:"histograms,omitempty"`
}

// Snapshot reads every registered source once. Non-finite gauge values
// are dropped rather than poisoning the snapshot (they would also fail
// JSON marshaling).
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{Counters: make(map[string]uint64, len(r.entries))}
	for _, e := range r.entries {
		switch e.kind {
		case KindCounter:
			s.Counters[e.name] = e.counter()
		case KindGauge:
			v := e.gauge()
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if s.Gauges == nil {
				s.Gauges = map[string]float64{}
			}
			s.Gauges[e.name] = v
		case KindHistogram:
			if s.Histograms == nil {
				s.Histograms = map[string]HistValue{}
			}
			s.Histograms[e.name] = e.hist()
		}
	}
	return s
}

// Counter returns the named counter's value (0 when absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns the named gauge's value (0 when absent).
func (s Snapshot) Gauge(name string) float64 { return s.Gauges[name] }

// Histogram returns the named histogram's value (zero value when
// absent).
func (s Snapshot) Histogram(name string) HistValue { return s.Histograms[name] }

// Diff returns the measurement interval s − base: counters and
// histogram buckets subtract (a name missing from base counts from
// zero), gauges keep their end-of-interval value, and histogram Max
// keeps the end value (a running maximum cannot be un-observed).
func (s Snapshot) Diff(base Snapshot) Snapshot {
	d := Snapshot{Counters: make(map[string]uint64, len(s.Counters))}
	for name, v := range s.Counters {
		d.Counters[name] = v - base.Counters[name]
	}
	if s.Gauges != nil {
		d.Gauges = make(map[string]float64, len(s.Gauges))
		for name, v := range s.Gauges {
			d.Gauges[name] = v
		}
	}
	if s.Histograms != nil {
		d.Histograms = make(map[string]HistValue, len(s.Histograms))
		for name, h := range s.Histograms {
			b := base.Histograms[name]
			dh := HistValue{Width: h.Width, Over: h.Over - b.Over,
				Count: h.Count - b.Count, Sum: h.Sum - b.Sum, Max: h.Max}
			dh.Counts = make([]uint64, len(h.Counts))
			copy(dh.Counts, h.Counts)
			for i := range b.Counts {
				if i < len(dh.Counts) {
					dh.Counts[i] -= b.Counts[i]
				}
			}
			d.Histograms[name] = dh
		}
	}
	return d
}

// Names returns every metric name in the snapshot, sorted.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
