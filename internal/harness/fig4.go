package harness

import (
	"fmt"

	"refsched/internal/config"
	"refsched/internal/core"
	"refsched/internal/kernel/buddy"
	"refsched/internal/runner"
)

// Fig4 regenerates Figure 4: the BLP-vs-tRFC trade-off. Each task is
// confined to k of the 8 banks per rank with refresh entirely
// eliminated, and IPC is normalized to the task-uses-all-8-banks
// configuration *with* all-bank refresh at each density. Values above
// 1.0 mean that giving up bank-level parallelism is worth it if doing
// so removes all refresh overhead.
func Fig4(p Params) (*Result, error) {
	r := &Result{
		ID:    "fig4",
		Title: "IPC of k-bank confinement without refresh, normalized to 8 banks with all-bank refresh",
	}
	r.Table.Header = []string{"density", "1-bank", "2-banks", "4-banks", "8-banks(noref)"}

	ks := []int{1, 2, 4, 8}

	// Enumerate the all-bank baselines plus every k-bank confinement
	// cell up front and fan out across the worker pool.
	var jobs []cellJob
	for _, d := range config.Densities {
		for _, mix := range p.sweepMixes() {
			jobs = append(jobs,
				p.bundleJob(cellKey("base", d.String(), mix.Name), d, bundleAllBank, false, mix))
			for _, k := range ks {
				d, mix, k := d, mix, k
				jobs = append(jobs, cellJob{
					key: cellKey("conf", d.String(), mix.Name, fmt.Sprint(k)),
					cell: runner.Cell{Mix: mix.Name, Density: d.String(),
						Bundle: fmt.Sprintf("confine%d", k), Seed: p.Seed},
					run: func() (*core.Report, error) {
						cfg := p.configFor(d, bundleNone, false)
						sys, err := core.Build(cfg, mix, core.Options{FootprintScale: p.FootprintScale})
						if err != nil {
							return nil, err
						}
						if err := sys.SetTaskMasks(confineMasks(cfg, len(sys.Kernel.Tasks()), k)); err != nil {
							return nil, err
						}
						return sys.RunWindows(p.WarmupWindows, p.MeasureWindows)
					},
				})
			}
		}
	}
	reps, failed, err := p.runCells("fig4", jobs)
	if err != nil {
		return nil, err
	}
	r.Failed = failed

	for _, d := range config.Densities {
		row := []string{d.String()}
		for _, k := range ks {
			var ratios []float64
			for _, mix := range p.sweepMixes() {
				baseRep := reps[cellKey("base", d.String(), mix.Name)]
				rep := reps[cellKey("conf", d.String(), mix.Name, fmt.Sprint(k))]
				if baseRep == nil || rep == nil {
					// Quarantined cell: this mix drops out of the mean.
					continue
				}
				if base := baseRep.HarmonicIPC; base > 0 {
					ratios = append(ratios, rep.HarmonicIPC/base)
				}
			}
			row = append(row, pct(mean(ratios)))
		}
		r.Table.Rows = append(r.Table.Rows, row)
	}
	r.Notes = append(r.Notes,
		"paper: >=4 banks per task beats the 8-bank all-bank-refresh baseline for 16/24/32Gb;",
		"paper: at 8Gb (low tRFC) confinement is not worth it")
	return r, nil
}

// confineMasks gives task i the k bank indices {i, i+1, ... i+k-1} mod
// banksPerRank (in every rank): confinement with stagger, so tasks
// spread over the banks rather than piling onto one.
func confineMasks(cfg config.System, ntasks, k int) []buddy.BankMask {
	nb := cfg.Mem.BanksPerRank
	nr := cfg.Mem.Ranks()
	masks := make([]buddy.BankMask, ntasks)
	for i := range masks {
		var m buddy.BankMask
		for j := 0; j < k && j < nb; j++ {
			b := (i + j) % nb
			for rk := 0; rk < nr; rk++ {
				m = m.Set(rk*nb + b)
			}
		}
		masks[i] = m
	}
	return masks
}
