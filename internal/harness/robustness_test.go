package harness

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"refsched/internal/chaos"
	"refsched/internal/journal"
)

// fig10ChaosKeys reproduces the chaos keys runCells derives for the
// tiny fig10 sweep, so tests can pick injector seeds that definitely
// fault (or spare) specific cells.
func fig10ChaosKeys(p Params) []string {
	var keys []string
	for _, mix := range p.mixes() {
		for _, d := range mainDensities {
			for _, b := range []bundle{bundleAllBank, bundlePerBank, bundleCoDesign} {
				keys = append(keys, "fig10|"+key(mix.Name, d, b.name))
			}
		}
	}
	return keys
}

// chaosSeedFaulting returns an injector seed whose fault placement hits
// at least min of the sweep's cells at the given fraction.
func chaosSeedFaulting(t *testing.T, keys []string, frac float64, mode chaos.Mode, min int) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 200; seed++ {
		in := chaos.New(chaos.Config{Seed: seed, Frac: frac, Mode: mode})
		n := 0
		for _, k := range keys {
			if _, ok := in.Faulted(k); ok {
				n++
			}
		}
		if n >= min && n < len(keys) {
			return seed
		}
	}
	t.Fatal("no chaos seed found — injector hash broken?")
	return 0
}

// TestFig10ChaosQuarantine is the headline robustness acceptance: a
// fig10 sweep with ~20% permanently-failing cells must still complete,
// list the quarantined cells in its failure-summary table, and keep
// every healthy row correct.
func TestFig10ChaosQuarantine(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps are slow")
	}
	p := tinyParams()
	keys := fig10ChaosKeys(p)
	seed := chaosSeedFaulting(t, keys, 0.2, chaos.ModeError, 1)

	p.Chaos = chaos.New(chaos.Config{Seed: seed, Frac: 0.2, Mode: chaos.ModeError})
	r10, _, err := Fig10(p, false)
	if err != nil {
		t.Fatalf("chaos must quarantine, not abort: %v", err)
	}
	if len(r10.Failed) == 0 {
		t.Fatal("no cells quarantined despite injected permanent faults")
	}
	out := r10.String()
	if !strings.Contains(out, "quarantined") {
		t.Errorf("rendered output missing the failure-summary table:\n%s", out)
	}
	for _, ce := range r10.Failed {
		if !strings.Contains(out, ce.Cell.Mix) || !strings.Contains(out, ce.Cell.Bundle) {
			t.Errorf("failure summary does not identify cell %s:\n%s", ce.Cell, out)
		}
		var ie *chaos.InjectedError
		if !errors.As(ce.Err, &ie) {
			t.Errorf("quarantined error lost its typed cause: %v", ce.Err)
		}
	}

	// Fail-fast restores abort semantics on the same faults.
	p.FailFast = true
	_, _, err = Fig10(p, false)
	if err == nil {
		t.Fatal("FailFast run did not abort on injected faults")
	}
}

// TestFig10TransientChaosHealsByteIdentical proves the identical-seed
// retry: with every injected fault transient and within the retry
// budget, the sweep self-heals and renders tables byte-identical to an
// undisturbed run.
func TestFig10TransientChaosHealsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps are slow")
	}
	p := tinyParams()
	clean10, clean11, err := Fig10(p, false)
	if err != nil {
		t.Fatal(err)
	}

	keys := fig10ChaosKeys(p)
	seed := chaosSeedFaulting(t, keys, 0.3, chaos.ModeTransient, 2)
	p.Chaos = chaos.New(chaos.Config{Seed: seed, Frac: 0.3, Mode: chaos.ModeTransient, FailuresPerCell: 2})
	p.Parallelism = 4
	r10, r11, err := Fig10(p, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(r10.Failed) != 0 {
		t.Fatalf("transient faults within retry budget still quarantined: %v", r10.Failed)
	}
	if r10.String() != clean10.String() {
		t.Errorf("healed fig10 not byte-identical:\nclean:\n%s\nhealed:\n%s", clean10, r10)
	}
	if r11.String() != clean11.String() {
		t.Errorf("healed fig11 not byte-identical:\nclean:\n%s\nhealed:\n%s", clean11, r11)
	}
}

// TestFig10JournalResumeByteIdentical is the resume acceptance: an
// interrupted journaled sweep (here: cells knocked out by permanent
// chaos stand in for a mid-run kill — either way they are simply absent
// from the journal) is finished by a -resume rerun whose rendered
// tables are byte-identical to an uninterrupted serial run.
func TestFig10JournalResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps are slow")
	}
	p := tinyParams()
	p.Parallelism = 1
	clean10, clean11, err := Fig10(p, false)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	keys := fig10ChaosKeys(p)
	seed := chaosSeedFaulting(t, keys, 0.3, chaos.ModeError, 2)

	// Pass 1: journaled run with some cells failing permanently; their
	// results never reach the journal.
	p1 := p
	p1.JournalDir = dir
	p1.Parallelism = 4
	p1.Chaos = chaos.New(chaos.Config{Seed: seed, Frac: 0.3, Mode: chaos.ModeError})
	r10, _, err := Fig10(p1, false)
	if err != nil {
		t.Fatal(err)
	}
	missing := len(r10.Failed)
	if missing == 0 {
		t.Fatal("pass 1 quarantined nothing — test vacuous")
	}

	// The journal holds exactly the healthy cells.
	jnl, err := journal.Open(filepath.Join(dir, "fig10.journal.json"), p.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if jnl.Len() != len(keys)-missing {
		t.Fatalf("journal has %d cells, want %d", jnl.Len(), len(keys)-missing)
	}

	// Pass 2: resume without chaos. Only the missing cells re-run; the
	// rendered tables must be byte-identical to the clean serial run.
	p2 := p
	p2.JournalDir = dir
	p2.Resume = true
	p2.Parallelism = 4
	res10, res11, err := Fig10(p2, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res10.Failed) != 0 {
		t.Fatalf("resume still quarantined cells: %v", res10.Failed)
	}
	if res10.String() != clean10.String() {
		t.Errorf("resumed fig10 not byte-identical:\nclean:\n%s\nresumed:\n%s", clean10, res10)
	}
	if res11.String() != clean11.String() {
		t.Errorf("resumed fig11 not byte-identical:\nclean:\n%s\nresumed:\n%s", clean11, res11)
	}
}

// TestFig10CancelledContext: a cancelled sweep reports the cancellation
// instead of returning partial tables, so callers can surface the
// resume hint.
func TestFig10CancelledContext(t *testing.T) {
	p := tinyParams()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.Ctx = ctx
	_, _, err := Fig10(p, false)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFingerprintCoversResultKnobs: any parameter that changes a cell's
// simulated result must change the journal fingerprint, or a resume
// could decode stale results.
func TestFingerprintCoversResultKnobs(t *testing.T) {
	base := tinyParams()
	mutations := map[string]func(*Params){
		"Scale":          func(p *Params) { p.Scale *= 2 },
		"FootprintScale": func(p *Params) { p.FootprintScale *= 2 },
		"WarmupWindows":  func(p *Params) { p.WarmupWindows++ },
		"MeasureWindows": func(p *Params) { p.MeasureWindows++ },
		"Seed":           func(p *Params) { p.Seed++ },
	}
	for name, mutate := range mutations {
		q := base
		mutate(&q)
		if q.Fingerprint() == base.Fingerprint() {
			t.Errorf("changing %s does not change the journal fingerprint", name)
		}
	}
}
