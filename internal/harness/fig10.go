package harness

import (
	"fmt"

	"refsched/internal/config"
	"refsched/internal/core"
	"refsched/internal/runner"
)

// mainDensities are the densities the headline figures sweep (8 Gb is
// excluded as in the paper, since per-bank refresh already suffices
// there).
var mainDensities = []config.Density{config.Density16Gb, config.Density24Gb, config.Density32Gb}

// mainResults runs the Figure 10/11/13 experiment grid — every selected
// mix × {16,24,32 Gb} × {all-bank, per-bank, co-design} — at the given
// retention temperature, and returns the reports keyed by
// (mix, density, bundle) plus any quarantined cell failures. All cells
// run through the fault-tolerant parallel sweep runner.
func (p Params) mainResults(highTemp bool) (map[string]*core.Report, []*runner.CellError, error) {
	figID := "fig10"
	if highTemp {
		figID = "fig13"
	}
	var jobs []cellJob
	for _, mix := range p.mixes() {
		for _, d := range mainDensities {
			for _, b := range []bundle{bundleAllBank, bundlePerBank, bundleCoDesign} {
				jobs = append(jobs, p.bundleJob(key(mix.Name, d, b.name), d, b, highTemp, mix))
			}
		}
	}
	return p.runCells(figID, jobs)
}

func key(mix string, d config.Density, bundle string) string {
	return fmt.Sprintf("%s|%s|%s", mix, d, bundle)
}

// Fig10 regenerates Figure 10 (IPC improvement of per-bank refresh and
// the co-design, normalized to all-bank refresh, per workload and
// density) and Figure 11 (average memory access latency). Set highTemp
// for Figure 13's 32 ms retention variant.
func Fig10(p Params, highTemp bool) (*Result, *Result, error) {
	reps, failed, err := p.mainResults(highTemp)
	if err != nil {
		return nil, nil, err
	}

	id10, id11 := "fig10", "fig11"
	title := "IPC improvement normalized to all-bank refresh"
	if highTemp {
		id10, id11 = "fig13", "fig13-lat"
		title += " (32ms retention)"
	}
	r10 := &Result{ID: id10, Title: title}
	r10.Table.Header = []string{"mix"}
	r11 := &Result{ID: id11, Title: "Average memory access latency (memory cycles)"}
	r11.Table.Header = []string{"mix"}
	for _, d := range mainDensities {
		r10.Table.Header = append(r10.Table.Header, d.String()+"-perbank", d.String()+"-codesign")
		r11.Table.Header = append(r11.Table.Header,
			d.String()+"-allbank", d.String()+"-perbank", d.String()+"-codesign")
	}

	gainsPB := make(map[config.Density][]float64)
	gainsCD := make(map[config.Density][]float64)
	for _, mix := range p.mixes() {
		row10 := []string{mix.Name}
		row11 := []string{mix.Name}
		rowPB := make(map[config.Density]float64)
		rowCD := make(map[config.Density]float64)
		complete := true
		for _, d := range mainDensities {
			ab := reps[key(mix.Name, d, "allbank")]
			pb := reps[key(mix.Name, d, "perbank")]
			cd := reps[key(mix.Name, d, "codesign")]
			if ab == nil || pb == nil || cd == nil {
				// A quarantined cell voids this mix's whole row (and its
				// contribution to the averages); it is accounted for in
				// the failure summary instead.
				complete = false
				break
			}
			gpb, gcd := 0.0, 0.0
			if ab.HarmonicIPC > 0 {
				gpb = pb.HarmonicIPC/ab.HarmonicIPC - 1
				gcd = cd.HarmonicIPC/ab.HarmonicIPC - 1
			}
			rowPB[d], rowCD[d] = gpb, gcd
			row10 = append(row10, pct(gpb), pct(gcd))
			row11 = append(row11,
				fmt.Sprintf("%.0f", ab.AvgMemLatencyMemCycles),
				fmt.Sprintf("%.0f", pb.AvgMemLatencyMemCycles),
				fmt.Sprintf("%.0f", cd.AvgMemLatencyMemCycles))
		}
		if !complete {
			continue
		}
		for _, d := range mainDensities {
			gainsPB[d] = append(gainsPB[d], rowPB[d])
			gainsCD[d] = append(gainsCD[d], rowCD[d])
		}
		r10.Table.Rows = append(r10.Table.Rows, row10)
		r11.Table.Rows = append(r11.Table.Rows, row11)
	}
	avg := []string{"average"}
	for _, d := range mainDensities {
		avg = append(avg, pct(mean(gainsPB[d])), pct(mean(gainsCD[d])))
	}
	r10.Table.Rows = append(r10.Table.Rows, avg)

	if highTemp {
		r10.Notes = append(r10.Notes,
			"paper: co-design +34.1%/23.4%/16.4% over all-bank and +6.7%/6.3%/3.9% over per-bank for 32/24/16Gb")
	} else {
		r10.Notes = append(r10.Notes,
			"paper: co-design +16.2%/12.1%/9.03% over all-bank and +6.3%/5.4%/2.5% over per-bank for 32/24/16Gb",
			"paper: low-MPKI mixes (WL-2/3/4) see no improvement")
	}
	r10.Failed = failed
	return r10, r11, nil
}
