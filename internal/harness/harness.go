// Package harness drives the paper's experiments: for every table and
// figure in the evaluation it builds the right systems, runs them, and
// prints the same rows/series the paper reports. Each figure has a
// FigN function returning a Result; cmd/experiments is a thin CLI over
// them and bench_test.go wraps them as testing.B benchmarks.
package harness

import (
	"context"
	"fmt"
	"strings"
	"time"

	"refsched/internal/approx"
	"refsched/internal/chaos"
	"refsched/internal/config"
	"refsched/internal/core"
	"refsched/internal/runner"
	"refsched/internal/stats"
	"refsched/internal/workload"
)

// Params controls experiment fidelity versus runtime.
type Params struct {
	// Scale is the time-scale factor (see config): 1 is the paper's
	// wall clock; 64 keeps duty cycles and alignment exact at ~1/64 of
	// the events.
	Scale uint64
	// FootprintScale multiplies task footprints (1.0 = paper sizes;
	// resident memory is demand-paged so full sizes are cheap).
	FootprintScale float64
	// WarmupWindows / MeasureWindows are run durations in retention
	// windows.
	WarmupWindows  int
	MeasureWindows int
	// Mixes restricts which Table 2 mixes run (nil = all ten).
	Mixes []string
	// SweepMixes restricts the heavily swept, averaged-only figures
	// (3, 4, 15); nil means a representative 5-mix subset covering the
	// H/M/L spectrum. Per-mix figures (10-14) always use Mixes.
	SweepMixes []string
	// Seed drives all random streams.
	Seed uint64
	// Mode selects the simulation tier every cell runs on. "" and
	// ModeExact run the full event-driven engine; ModeApprox answers
	// from the internal/approx analytical model (microseconds per cell,
	// no event loop) — covered bundles only, and exact only at the
	// model's calibration anchors; see that package for error bounds.
	// Figures whose cells bypass the bundle pipeline (fig4's custom
	// bank-mask cells) always run exact.
	Mode string
	// Verbose prints each run's one-line summary as it completes.
	Verbose bool
	// Parallelism bounds the worker pool that runs a sweep's
	// independent simulation cells (0 = runtime.GOMAXPROCS). Every cell
	// is deterministically seeded and results are collected in
	// submission order, so rendered tables are identical at any
	// setting; only wall-clock time changes.
	Parallelism int

	// Ctx cancels a sweep (nil = context.Background). Cancellation is
	// graceful: in-flight cells finish (and are journaled), unstarted
	// cells are skipped, and the sweep returns the context error.
	Ctx context.Context
	// HardCtx, when non-nil, aborts in-flight cells mid-run: the exact
	// engine checks it at cooperative checkpoints (and chaos stalls
	// select on it), so cancellation or deadline expiry fails the cell
	// with a typed error wrapping the context error instead of letting
	// it run to completion. Contrast Ctx, whose cancellation is
	// graceful. The serving daemon sets it per job to enforce request
	// deadlines and watchdog kills.
	HardCtx context.Context
	// FailFast aborts a sweep on its first failed cell (old pipeline
	// semantics). The default quarantines failed cells into the
	// Result's failure summary and completes the rest of the grid.
	FailFast bool
	// Retries bounds identical-seed re-runs of a cell whose error is
	// marked transient; < 0 disables retry, 0 selects DefaultRetries.
	Retries int
	// RetryBackoff is the base backoff before a retry, doubling per
	// attempt (0 = no sleep).
	RetryBackoff time.Duration
	// JournalDir, when non-empty, persists each completed cell to
	// <JournalDir>/<figure>.journal.json atomically as it finishes.
	JournalDir string
	// Resume skips cells already recorded in the figure's journal,
	// producing output byte-identical to an uninterrupted run.
	Resume bool
	// Chaos, when non-nil, deterministically injects faults into a
	// fraction of cells (tests and failure drills only).
	Chaos *chaos.Injector
	// CheckpointEvery is the checkpoint-boundary cadence in simulated
	// cycles for exact-engine cells (0 = four timeslices). Boundaries
	// alone are free — they only split the engine's run into legs,
	// which is invisible to the simulation — so this is also the
	// preemption polling cadence. Only meaningful when checkpointing is
	// enabled by one of the three knobs below; none of the four
	// participate in Fingerprint, because checkpointing never changes a
	// cell's result.
	CheckpointEvery uint64
	// CheckpointDir, when non-empty, persists each exact bundle cell's
	// snapshot to <CheckpointDir>/<cell-key>.snap at every boundary and
	// resumes from it when present (validated against the cell's
	// parameters; corrupt or version-skewed files are refused with
	// typed errors). A cell's snapshot is removed when it completes, so
	// after a clean sweep the directory is empty.
	CheckpointDir string
	// Snapshots, when non-nil, receives mid-run snapshots (on
	// preemption) and finished reports for exact bundle cells, and is
	// consulted before running one. The serving daemon's preempt-and-
	// resume path lives here.
	Snapshots SnapshotStore
	// Preempt, when non-nil, is polled at every checkpoint boundary of
	// every exact bundle cell. A non-nil return captures a snapshot
	// into Snapshots (and CheckpointDir, when set) and aborts the cell
	// with that error — the cooperative preemption point.
	Preempt func() error

	// CellRunner, when non-nil, replaces the direct runner.RunBatch
	// call that executes a sweep's enumerated cells. It is the hook the
	// serving daemon uses to wrap every figure driver without forking
	// them: counting executions, imposing a global priority gate across
	// concurrent jobs, and streaming per-cell progress by decorating
	// opts.OnDone. Implementations must preserve RunBatch's contract
	// (index-addressed results; OnDone called from one goroutine) —
	// delegating to runner.RunBatch after adjusting opts is the
	// intended shape.
	CellRunner CellRunner
}

// CellRunner executes the enumerated cells of one figure sweep; figID
// names the sweep for keying and display. See Params.CellRunner.
type CellRunner func(ctx context.Context, figID string, jobs []runner.Job[*core.Report], opts runner.Options[*core.Report]) (*runner.Batch[*core.Report], error)

// DefaultRetries is the transient-error retry budget used when
// Params.Retries is zero.
const DefaultRetries = 2

// Simulation tiers for Params.Mode.
const (
	// ModeExact runs the full event-driven engine (the default).
	ModeExact = "exact"
	// ModeApprox answers each cell from the analytical model.
	ModeApprox = "approx"
)

// mode normalizes the Mode knob ("" means exact).
func (p Params) mode() string {
	if p.Mode == "" {
		return ModeExact
	}
	return p.Mode
}

// retries resolves the Retries knob (0 = default, negative = off).
func (p Params) retries() int {
	if p.Retries == 0 {
		return DefaultRetries
	}
	if p.Retries < 0 {
		return 0
	}
	return p.Retries
}

// DefaultParams is the full-fidelity configuration used for
// EXPERIMENTS.md numbers.
func DefaultParams() Params {
	return Params{Scale: 64, FootprintScale: 1, WarmupWindows: 1, MeasureWindows: 2, Seed: 1}
}

// QuickParams trades fidelity for speed (CI and benchmarks).
func QuickParams() Params {
	return Params{
		Scale: 256, FootprintScale: 0.05, WarmupWindows: 1, MeasureWindows: 1,
		Mixes: []string{"WL-1", "WL-5", "WL-6", "WL-8"}, Seed: 1,
	}
}

// Result is one regenerated table or figure.
type Result struct {
	ID    string
	Title string
	Table stats.Table
	Notes []string
	// Failed lists the sweep's quarantined cells (empty on a clean
	// run, so clean output is unchanged). Rows needing a failed cell
	// are omitted from Table and accounted for here instead.
	Failed []*runner.CellError
}

// String renders the result, followed by the failure-summary table when
// any cells were quarantined.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	b.WriteString(r.Table.String())
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if len(r.Failed) > 0 {
		fmt.Fprintf(&b, "-- %d cell(s) failed and were quarantined --\n", len(r.Failed))
		var ft stats.Table
		ft.Header = []string{"cell", "seed", "attempts", "kind", "error"}
		for _, f := range r.Failed {
			kind := "error"
			detail := ""
			if f.Panicked() {
				kind = "panic"
				detail = fmt.Sprint(f.PanicValue)
			} else if f.Err != nil {
				detail = f.Err.Error()
			}
			ft.AddRow(f.Cell.String(), fmt.Sprint(f.Cell.Seed), fmt.Sprint(f.Attempts), kind, detail)
		}
		b.WriteString(ft.String())
	}
	return b.String()
}

// mixes resolves the mix selection.
func (p Params) mixes() []workload.Mix { return selectMixes(p.Mixes) }

// sweepMixes resolves the subset used by the averaged sweep figures.
func (p Params) sweepMixes() []workload.Mix {
	if len(p.SweepMixes) > 0 {
		return selectMixes(p.SweepMixes)
	}
	if len(p.Mixes) > 0 {
		return selectMixes(p.Mixes)
	}
	// One representative per intensity class plus the two headline
	// H+L mixes — enough to reproduce the averages the paper plots.
	return selectMixes([]string{"WL-1", "WL-3", "WL-5", "WL-6", "WL-8"})
}

func selectMixes(names []string) []workload.Mix {
	all := workload.Table2()
	if len(names) == 0 {
		return all
	}
	want := map[string]bool{}
	for _, m := range names {
		want[m] = true
	}
	var out []workload.Mix
	for _, m := range all {
		if want[m.Name] {
			out = append(out, m)
		}
	}
	return out
}

// bundle names a (refresh policy, OS policy) combination.
type bundle struct {
	name    string
	refresh config.RefreshPolicy
	code    bool // enable the full co-design OS side
}

var (
	bundleNone     = bundle{"norefresh", config.RefreshNone, false}
	bundleAllBank  = bundle{"allbank", config.RefreshAllBank, false}
	bundlePerBank  = bundle{"perbank", config.RefreshPerBankRR, false}
	bundleOOO      = bundle{"oooperbank", config.RefreshOOOPerBank, false}
	bundleFGR2x    = bundle{"fgr2x", config.RefreshFGR2x, false}
	bundleFGR4x    = bundle{"fgr4x", config.RefreshFGR4x, false}
	bundleAdaptive = bundle{"adaptive", config.RefreshAdaptive, false}
	bundleCoDesign = bundle{"codesign", config.RefreshPerBankSeq, true}
)

// configFor builds the machine config for a bundle.
func (p Params) configFor(d config.Density, b bundle, highTemp bool) config.System {
	cfg := config.Default(d, p.Scale)
	if highTemp {
		cfg = config.HighTemp(cfg)
	}
	cfg.Refresh.Policy = b.refresh
	if b.code {
		cfg.OS.Alloc = config.AllocSoftPartition
		cfg.OS.Scheduler = config.SchedCFS
		cfg.OS.RefreshAware = true
	}
	cfg.Seed = p.Seed
	return cfg
}

// run executes one configuration over one mix. Verbose progress lines
// are emitted by the sweep collector (see sweep.go), not here, so that
// parallel workers never interleave output.
func (p Params) run(cfg config.System, mix workload.Mix) (*core.Report, error) {
	switch p.Mode {
	case "", ModeExact:
	case ModeApprox:
		rep, err := approx.Predict(cfg, mix)
		if err != nil {
			return nil, fmt.Errorf("%s/%s/%s: %w", mix.Name, cfg.Mem.Density, cfg.Refresh.Policy, err)
		}
		return rep, nil
	default:
		return nil, fmt.Errorf("harness: unknown mode %q (want %q or %q)", p.Mode, ModeExact, ModeApprox)
	}
	sys, err := core.Build(cfg, mix, core.Options{FootprintScale: p.FootprintScale, Ctx: p.HardCtx})
	if err != nil {
		return nil, fmt.Errorf("%s/%s/%s: %w", mix.Name, cfg.Mem.Density, cfg.Refresh.Policy, err)
	}
	rep, err := sys.RunWindows(p.WarmupWindows, p.MeasureWindows)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// runBundle is run with a bundle shorthand. Bundle cells are the
// checkpointable population: when a snapshot store, checkpoint
// directory, or preemption hook is configured, they route through the
// checkpoint driver (byte-identical results either way). Custom-closure
// cells (fig4's bank masks, ext1's subarray overrides) call run
// directly and never checkpoint, mirroring their non-remotability.
func (p Params) runBundle(d config.Density, b bundle, highTemp bool, mix workload.Mix) (*core.Report, error) {
	cfg := p.configFor(d, b, highTemp)
	if p.checkpointed() {
		return p.runWithCheckpoints(cfg, mix, p.checkpointKey(d, b, highTemp, mix))
	}
	return p.run(cfg, mix)
}

// pct formats a ratio as a percentage string.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// mean returns the arithmetic mean of vs (0 when empty).
func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}
