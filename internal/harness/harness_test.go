package harness

import (
	"strings"
	"testing"

	"refsched/internal/config"
)

// tinyParams keeps harness tests fast: one small mix, aggressive scale.
func tinyParams() Params {
	return Params{
		Scale:          4096,
		FootprintScale: 0.01,
		WarmupWindows:  1,
		MeasureWindows: 1,
		Mixes:          []string{"WL-6"},
		Seed:           1,
	}
}

func TestParamsMixSelection(t *testing.T) {
	p := tinyParams()
	ms := p.mixes()
	if len(ms) != 1 || ms[0].Name != "WL-6" {
		t.Fatalf("mixes = %v", ms)
	}
	p.Mixes = nil
	if len(p.mixes()) != 10 {
		t.Fatal("default should be all ten mixes")
	}
}

func TestConfigForBundles(t *testing.T) {
	p := tinyParams()
	cfg := p.configFor(config.Density32Gb, bundleCoDesign, false)
	if cfg.Refresh.Policy != config.RefreshPerBankSeq || !cfg.OS.RefreshAware {
		t.Fatalf("codesign bundle config = %+v", cfg.Refresh.Policy)
	}
	hot := p.configFor(config.Density32Gb, bundleAllBank, true)
	if hot.Refresh.TREFWms != 32 {
		t.Fatal("highTemp not applied")
	}
}

func TestTable1Renders(t *testing.T) {
	r := Table1(tinyParams())
	s := r.String()
	for _, want := range []string{"FR-FCFS", "32Gb", "tREFIab", "timeslice"} {
		if !strings.Contains(s, want) {
			t.Errorf("table1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	r := Table2Result()
	s := r.String()
	for _, want := range []string{"WL-1", "WL-10", "mcf(8)", "H+L"} {
		if !strings.Contains(s, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
}

func TestFig5Small(t *testing.T) {
	if testing.Short() {
		t.Skip("allocator sweeps are slow")
	}
	r, err := Fig5(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Rows) < 30 {
		t.Fatalf("fig5 rows = %d", len(r.Table.Rows))
	}
	// The average row must be monotonically nondecreasing with density.
	avg := r.Table.Rows[len(r.Table.Rows)-1]
	if avg[0] != "average" {
		t.Fatalf("last row = %v", avg)
	}
}

func TestFig3Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps are slow")
	}
	r, err := Fig3(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	// 4 densities x 2 temps.
	if len(r.Table.Rows) != 8 {
		t.Fatalf("fig3 rows = %d", len(r.Table.Rows))
	}
}

func TestFig10Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps are slow")
	}
	r10, r11, err := Fig10(tinyParams(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(r10.Table.Rows) != 2 { // WL-6 + average
		t.Fatalf("fig10 rows = %d", len(r10.Table.Rows))
	}
	if len(r11.Table.Rows) != 1 {
		t.Fatalf("fig11 rows = %d", len(r11.Table.Rows))
	}
}

func TestFig14Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps are slow")
	}
	r, err := Fig14(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Header) != 5 {
		t.Fatalf("fig14 header = %v", r.Table.Header)
	}
}

func TestExtensionsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps are slow")
	}
	r, err := Extensions(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Rows) != 7 {
		t.Fatalf("ext1 rows = %d, want 7 policies", len(r.Table.Rows))
	}
	if r.Table.Rows[0][1] != "baseline" {
		t.Fatalf("first row should be the all-bank baseline: %v", r.Table.Rows[0])
	}
}

func TestSweepMixesDefaults(t *testing.T) {
	var p Params
	ms := p.sweepMixes()
	if len(ms) != 5 {
		t.Fatalf("default sweep subset = %d mixes", len(ms))
	}
	p.SweepMixes = []string{"WL-2"}
	if got := p.sweepMixes(); len(got) != 1 || got[0].Name != "WL-2" {
		t.Fatalf("explicit sweep selection = %v", got)
	}
	p2 := Params{Mixes: []string{"WL-9"}}
	if got := p2.sweepMixes(); len(got) != 1 || got[0].Name != "WL-9" {
		t.Fatal("sweep should fall back to Mixes")
	}
}

func TestConfineMasks(t *testing.T) {
	cfg := config.Default(config.Density8Gb, 64)
	masks := confineMasks(cfg, 8, 2)
	for i, m := range masks {
		if m.Count() != 4 { // 2 bank indices x 2 ranks
			t.Fatalf("task %d mask count = %d", i, m.Count())
		}
	}
	// Staggered: masks differ across tasks.
	if masks[0] == masks[1] {
		t.Fatal("confinement not staggered")
	}
	// k = banksPerRank keeps everything allowed.
	full := confineMasks(cfg, 2, 8)
	if full[0].Count() != 16 {
		t.Fatalf("full confinement count = %d", full[0].Count())
	}
}

func TestPctAndMean(t *testing.T) {
	if pct(0.123) != "12.3%" {
		t.Fatalf("pct = %q", pct(0.123))
	}
	if mean(nil) != 0 || mean([]float64{1, 3}) != 2 {
		t.Fatal("mean broken")
	}
}
