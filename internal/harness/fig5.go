package harness

import (
	"fmt"

	"refsched/internal/config"
	"refsched/internal/dram"
	"refsched/internal/kernel/buddy"
	"refsched/internal/runner"
	"refsched/internal/workload"
)

// Fig5 regenerates Figure 5: the fraction of each application's
// reference-input footprint that fits on a single DRAM bank, per device
// density. As the paper does, it exercises the modified buddy allocator
// directly: pages are requested with a possible-banks vector of
// {bank 0}; once bank 0 is exhausted the allocator falls back to other
// banks, and the on-bank-0 fraction is reported.
func Fig5(p Params) (*Result, error) {
	r := &Result{
		ID:    "fig5",
		Title: "Fraction of footprint that fits on one bank (via allocator fall-back)",
	}
	r.Table.Header = []string{"benchmark", "footprint"}
	for _, d := range config.Densities {
		r.Table.Header = append(r.Table.Header, d.String())
	}

	// One cell per benchmark footprint, fanned out across the worker
	// pool; each cell sweeps the densities for its footprint.
	fracs, err := runner.Map(p.Parallelism, len(workload.SPECFootprints),
		func(i int) ([]float64, error) {
			fe := workload.SPECFootprints[i]
			out := make([]float64, len(config.Densities))
			for di, d := range config.Densities {
				frac, err := singleBankFraction(d, fe.Footprint)
				if err != nil {
					return nil, err
				}
				out[di] = frac
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}

	sums := make([]float64, len(config.Densities))
	for i, fe := range workload.SPECFootprints {
		cells := []string{byteSize(fe.Footprint)}
		for di := range config.Densities {
			cells = append(cells, pct(fracs[i][di]))
			sums[di] += fracs[i][di]
		}
		r.Table.AddRow(append([]string{fe.Name}, cells...)...)
	}
	avg := []string{"average", ""}
	for di := range config.Densities {
		avg = append(avg, pct(sums[di]/float64(len(workload.SPECFootprints))))
	}
	r.Table.AddRow(avg...)
	r.Notes = append(r.Notes,
		"paper: on average 68% of footprints fit a single bank at 8Gb, rising with density")
	return r, nil
}

// singleBankFraction allocates a footprint preferring bank 0 and
// reports the fraction that landed there.
func singleBankFraction(d config.Density, footprint uint64) (float64, error) {
	cfg := config.Default(d, 1)
	mapper, err := dram.NewMapper(cfg.Mem)
	if err != nil {
		return 0, err
	}
	bud, err := buddy.New(mapper.TotalPages())
	if err != nil {
		return 0, err
	}
	alloc := buddy.NewPartitionAllocator(bud, mapper)

	pages := (footprint + cfg.Mem.RowBytes - 1) / cfg.Mem.RowBytes
	mask := buddy.BankMask(0).Set(0)
	last := -1
	var onBank0 uint64
	for i := uint64(0); i < pages; i++ {
		pfn, fellBack, ok := alloc.AllocPageFor(mask, &last)
		if !ok || fellBack {
			// Bank 0 is exhausted: every further page falls back too.
			break
		}
		if mapper.PageGlobalBank(pfn) == 0 {
			onBank0++
		}
	}
	return float64(onBank0) / float64(pages), nil
}

// byteSize renders a byte count compactly.
func byteSize(b uint64) string {
	if b >= 1<<30 {
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	}
	return fmt.Sprintf("%.0fMB", float64(b)/(1<<20))
}
