package harness

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"refsched/internal/config"
	"refsched/internal/core"
)

// FigureNames lists the CLI targets RunFigure accepts, in the order
// cmd/experiments documents them. "all" (every target in sequence) is
// accepted by RunFigure but deliberately absent here: the list is what
// services enumerate as individually addressable figures.
func FigureNames() []string {
	return []string{
		"table1", "table2",
		"fig3", "fig4", "fig5", "fig10", "fig12", "fig13", "fig14", "fig15",
		"ext1",
	}
}

// RunFigure runs one named CLI target and returns its rendered
// results — one Result for most targets, two for the paired figures
// (fig10 also yields fig11; fig13 its latency table). It is the single
// dispatch point shared by cmd/experiments and the serving daemon, so
// a figure served over HTTP is produced by exactly the code path the
// batch CLI prints.
func RunFigure(name string, p Params) ([]*Result, error) {
	switch name {
	case "all":
		return All(p)
	case "table1":
		return []*Result{Table1(p)}, nil
	case "table2":
		return []*Result{Table2Result()}, nil
	case "fig3":
		return one(Fig3(p))
	case "fig4":
		return one(Fig4(p))
	case "fig5":
		return one(Fig5(p))
	case "fig10", "fig11":
		r10, r11, err := Fig10(p, false)
		if err != nil {
			return nil, err
		}
		return []*Result{r10, r11}, nil
	case "fig12":
		return one(Fig12(p))
	case "fig13":
		r13, r13lat, err := Fig10(p, true)
		if err != nil {
			return nil, err
		}
		return []*Result{r13, r13lat}, nil
	case "fig14":
		return one(Fig14(p))
	case "fig15":
		return one(Fig15(p))
	case "ext1", "extensions":
		return one(Extensions(p))
	}
	return nil, fmt.Errorf("unknown target %q", name)
}

func one(r *Result, err error) ([]*Result, error) {
	if err != nil {
		return nil, err
	}
	return []*Result{r}, nil
}

// bundles maps the bundle names the figures print to their policy
// combinations, for single-cell requests addressed by name.
var bundles = map[string]bundle{
	bundleNone.name:     bundleNone,
	bundleAllBank.name:  bundleAllBank,
	bundlePerBank.name:  bundlePerBank,
	bundleOOO.name:      bundleOOO,
	bundleFGR2x.name:    bundleFGR2x,
	bundleFGR4x.name:    bundleFGR4x,
	bundleAdaptive.name: bundleAdaptive,
	bundleCoDesign.name: bundleCoDesign,
}

// BundleNames lists the policy-bundle names RunCell accepts, sorted
// for deterministic display.
func BundleNames() []string {
	names := make([]string, 0, len(bundles))
	for n := range bundles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseDensity parses a density name as the figures print it ("32Gb",
// case-insensitive, bare "32" accepted) into a validated config
// density.
func ParseDensity(s string) (config.Density, error) {
	t := strings.TrimSuffix(strings.ToLower(strings.TrimSpace(s)), "gb")
	n, err := strconv.Atoi(t)
	if err != nil {
		return 0, fmt.Errorf("invalid density %q (want e.g. 32Gb)", s)
	}
	for _, d := range config.Densities {
		if int(d) == n {
			return d, nil
		}
	}
	return 0, fmt.Errorf("unsupported density %q (want one of %v)", s, config.Densities)
}

// RunCell simulates one fully addressed cell — mix × density × policy
// bundle, optionally at >85C retention — through the same fault
// boundary as the figure sweeps (quarantine, retry, chaos, and the
// injected CellRunner all apply), so a daemon serving single-cell jobs
// gets identical semantics to whole-figure jobs. The sweep is the
// one-cell figure "cell".
func RunCell(p Params, mixName, density, bundleName string, highTemp bool) (*core.Report, error) {
	ms := selectMixes([]string{mixName})
	if len(ms) != 1 {
		return nil, fmt.Errorf("unknown mix %q (want WL-1..WL-10)", mixName)
	}
	d, err := ParseDensity(density)
	if err != nil {
		return nil, err
	}
	b, ok := bundles[bundleName]
	if !ok {
		return nil, fmt.Errorf("unknown bundle %q (want one of %v)", bundleName, BundleNames())
	}
	job := p.bundleJob(cellKey(ms[0].Name, d.String(), b.name), d, b, highTemp, ms[0])
	out, failed, err := p.runCells("cell", []cellJob{job})
	if err != nil {
		return nil, err
	}
	if len(failed) > 0 {
		return nil, failed[0]
	}
	rep, ok := out[job.key]
	if !ok {
		return nil, fmt.Errorf("cell %s produced no report", job.key)
	}
	return rep, nil
}
