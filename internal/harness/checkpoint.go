package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"refsched/internal/config"
	"refsched/internal/core"
	"refsched/internal/workload"
)

// SnapshotStore receives cell snapshots and finished cell reports
// during a checkpointed sweep, and offers them back when the same cell
// runs again. The serving daemon implements it per job so a preempted
// sweep resumes from its last checkpoint boundary (and keeps cells that
// already finished) instead of recomputing. Implementations are called
// from worker goroutines and must be safe for concurrent use when
// Parallelism > 1.
type SnapshotStore interface {
	// LoadSnapshot returns the stored mid-run snapshot for key, or nil.
	LoadSnapshot(key string) *core.SystemState
	// SaveSnapshot stores a mid-run snapshot for key.
	SaveSnapshot(key string, st *core.SystemState)
	// DropSnapshot discards the snapshot for key (the cell finished; a
	// stale snapshot must not satisfy a later run).
	DropSnapshot(key string)
	// LoadReport returns the stored finished report for key, or nil.
	LoadReport(key string) *core.Report
	// SaveReport stores the finished report for key.
	SaveReport(key string, rep *core.Report)
}

// checkpointed reports whether the exact-engine cells of this sweep run
// under the checkpoint driver. Approx cells never checkpoint (there is
// no event loop to snapshot — and nothing worth resuming).
func (p Params) checkpointed() bool {
	if p.mode() != ModeExact {
		return false
	}
	return p.Snapshots != nil || p.CheckpointDir != "" || p.Preempt != nil
}

// checkpointEvery resolves the boundary cadence for cfg: the knob when
// set, else four timeslices — frequent enough that a preemption request
// lands quickly, cheap because boundaries without a snapshot cost only
// a leg split.
func (p Params) checkpointEvery(cfg config.System) uint64 {
	if p.CheckpointEvery > 0 {
		return p.CheckpointEvery
	}
	return 4 * cfg.Timeslice()
}

// checkpointKey names a bundle cell for snapshot addressing. It carries
// every coordinate that changes the cell's simulated result (the
// remaining knobs — scale, footprint, windows — are validated against
// the snapshot body on restore), and is filesystem-safe so it doubles
// as the CheckpointDir file stem.
func (p Params) checkpointKey(d config.Density, b bundle, highTemp bool, mix workload.Mix) string {
	temp := "base"
	if highTemp {
		temp = "hot"
	}
	return fmt.Sprintf("%s_%s_%s_%s_seed%d", d, b.name, mix.Name, temp, p.Seed)
}

// snapshotMatches validates that a snapshot read from disk was written
// by this exact cell: same machine config, same run interval, same
// footprint scale. The in-memory store needs no such check (its keys
// live and die with one job), but a CheckpointDir survives across
// invocations with different flags, and resuming a near-miss snapshot
// would silently produce wrong results.
func (p Params) snapshotMatches(st *core.SystemState, cfg config.System, warmup, measure uint64, path string) error {
	want, err := json.Marshal(cfg)
	if err != nil {
		return err
	}
	got, err := json.Marshal(st.Cfg)
	if err != nil {
		return err
	}
	if string(got) != string(want) ||
		st.Warmup != warmup || st.Measure != measure ||
		st.FootprintScale != p.FootprintScale {
		return fmt.Errorf("harness: snapshot %s was written for different parameters (delete it to start over)", path)
	}
	return nil
}

// runWithCheckpoints executes one exact-engine cell under the
// checkpoint driver: restore from a prior snapshot when one exists (the
// in-memory store first, then the CheckpointDir file), otherwise build
// fresh; run with a lazy boundary callback that polls Preempt and
// persists snapshots; and on clean completion retire the cell's
// snapshots so a stale one never satisfies a later run. The leg
// structure and every snapshot/restore cycle are invisible to the
// simulation — the report is byte-identical to Params.run's.
func (p Params) runWithCheckpoints(cfg config.System, mix workload.Mix, ckey string) (*core.Report, error) {
	if p.Snapshots != nil {
		if rep := p.Snapshots.LoadReport(ckey); rep != nil {
			return rep, nil
		}
	}

	var path string
	if p.CheckpointDir != "" {
		path = filepath.Join(p.CheckpointDir, ckey+".snap")
	}
	w := cfg.TREFW()
	warmup, measure := uint64(p.WarmupWindows)*w, uint64(p.MeasureWindows)*w

	// Locate a resumable snapshot.
	var sys *core.System
	if p.Snapshots != nil {
		if st := p.Snapshots.LoadSnapshot(ckey); st != nil {
			s, err := core.Restore(st, core.Options{Ctx: p.HardCtx})
			if err != nil {
				return nil, err
			}
			sys = s
		}
	}
	if sys == nil && path != "" {
		st, err := core.ReadSnapshotFile(path)
		switch {
		case err == nil:
			if err := p.snapshotMatches(st, cfg, warmup, measure, path); err != nil {
				return nil, err
			}
			s, err := core.Restore(st, core.Options{Ctx: p.HardCtx})
			if err != nil {
				return nil, err
			}
			sys = s
		case errors.Is(err, fs.ErrNotExist):
			// Fresh run.
		default:
			// Corrupt or version-skewed files propagate their typed
			// refusal rather than being silently recomputed over.
			return nil, err
		}
	}

	resumed := sys != nil
	if sys == nil {
		s, err := core.Build(cfg, mix, core.Options{FootprintScale: p.FootprintScale, Ctx: p.HardCtx})
		if err != nil {
			return nil, fmt.Errorf("%s/%s/%s: %w", mix.Name, cfg.Mem.Density, cfg.Refresh.Policy, err)
		}
		sys = s
	}

	// The lazy boundary: polling Preempt costs nothing; state capture
	// happens only when a preemption was requested (snapshot handed to
	// the store, cell aborted with the preemption error) or when a
	// CheckpointDir wants crash durability at every boundary.
	boundary := func(capture func() (*core.SystemState, error)) error {
		var perr error
		if p.Preempt != nil {
			perr = p.Preempt()
		}
		if perr == nil && path == "" {
			return nil
		}
		st, err := capture()
		if err != nil {
			return err
		}
		if perr != nil && p.Snapshots != nil {
			p.Snapshots.SaveSnapshot(ckey, st)
		}
		if path != "" {
			if err := core.WriteSnapshotFile(path, st); err != nil {
				return err
			}
		}
		return perr
	}

	var rep *core.Report
	var err error
	if resumed {
		rep, err = sys.ResumePreemptible(p.checkpointEvery(cfg), boundary)
	} else {
		rep, err = sys.RunPreemptible(warmup, measure, p.checkpointEvery(cfg), boundary)
	}
	if err != nil {
		return nil, err
	}
	if p.Snapshots != nil {
		p.Snapshots.SaveReport(ckey, rep)
		p.Snapshots.DropSnapshot(ckey)
	}
	if path != "" {
		if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
	}
	return rep, nil
}
