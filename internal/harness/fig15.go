package harness

import (
	"fmt"

	"refsched/internal/config"
	"refsched/internal/core"
	"refsched/internal/runner"
	"refsched/internal/workload"
)

// scenario is one sensitivity configuration of Figure 15.
type scenario struct {
	name         string
	cores        int
	ratio        int // tasks per core (consolidation ratio 1:ratio)
	dimms        int
	banksPerTask int
}

// Fig15 regenerates Figure 15: sensitivity of the co-design's gains to
// core count, consolidation ratio, and DIMMs per channel. Each cell is
// the mean IPC improvement over all-bank refresh across the selected
// mixes (tiled to the scenario's task count).
func Fig15(p Params) (*Result, error) {
	r := &Result{
		ID:    "fig15",
		Title: "Sensitivity: mean IPC improvement over all-bank refresh",
	}
	r.Table.Header = []string{"scenario", "policy"}
	for _, d := range mainDensities {
		r.Table.Header = append(r.Table.Header, d.String())
	}

	scenarios := []scenario{
		{"2cores-1:2", 2, 2, 1, 4},
		{"2cores-1:4", 2, 4, 1, 6},
		{"4cores-1:4", 4, 4, 1, 6},
		{"2cores-1:4-2dimm", 2, 4, 2, 6},
	}

	bundles := []bundle{bundleAllBank, bundlePerBank, bundleCoDesign}
	var jobs []cellJob
	for _, sc := range scenarios {
		for _, d := range mainDensities {
			for _, baseMix := range p.sweepMixes() {
				mix := workload.MixFor(baseMix, sc.cores, sc.ratio)
				for _, b := range bundles {
					sc, d, b, mix := sc, d, b, mix
					jobs = append(jobs, cellJob{
						key: cellKey(sc.name, d.String(), baseMix.Name, b.name),
						cell: runner.Cell{Mix: mix.Name, Density: d.String(),
							Bundle: b.name, Seed: p.Seed},
						run: func() (*core.Report, error) { return p.runScenario(d, b, sc, mix) },
					})
				}
			}
		}
	}
	reps, failed, err := p.runCells("fig15", jobs)
	if err != nil {
		return nil, err
	}
	r.Failed = failed

	for _, sc := range scenarios {
		pbRow := []string{sc.name, "perbank"}
		cdRow := []string{sc.name, "codesign"}
		for _, d := range mainDensities {
			var gpb, gcd []float64
			for _, baseMix := range p.sweepMixes() {
				ab := reps[cellKey(sc.name, d.String(), baseMix.Name, bundleAllBank.name)]
				pb := reps[cellKey(sc.name, d.String(), baseMix.Name, bundlePerBank.name)]
				cd := reps[cellKey(sc.name, d.String(), baseMix.Name, bundleCoDesign.name)]
				if ab == nil || pb == nil || cd == nil {
					// Quarantined cell: this mix drops out of the mean.
					continue
				}
				if ab.HarmonicIPC > 0 {
					gpb = append(gpb, pb.HarmonicIPC/ab.HarmonicIPC-1)
					gcd = append(gcd, cd.HarmonicIPC/ab.HarmonicIPC-1)
				}
			}
			pbRow = append(pbRow, pct(mean(gpb)))
			cdRow = append(cdRow, pct(mean(gcd)))
		}
		r.Table.Rows = append(r.Table.Rows, pbRow, cdRow)
	}
	r.Notes = append(r.Notes,
		"paper: co-design +14.2%/11.2%/8.9% over all-bank at 1:2 (32/24/16Gb); gains persist for quad-core and improve with 2 DIMMs")
	return r, nil
}

// runScenario runs one sensitivity cell.
func (p Params) runScenario(d config.Density, b bundle, sc scenario, mix workload.Mix) (*core.Report, error) {
	cfg := p.configFor(d, b, false)
	cfg.Cores = sc.cores
	cfg.Mem.DIMMsPerChannel = sc.dimms
	cfg.OS.BanksPerTask = sc.banksPerTask
	cfg.Name = fmt.Sprintf("fig15-%s", sc.name)
	return p.run(cfg, mix)
}
