package harness

import "refsched/internal/config"

// Fig3 regenerates Figure 3: performance degradation due to refresh
// (relative to an ideal refresh-free system) for all-bank and per-bank
// refresh across device densities, at both 64 ms and 32 ms retention.
// Each cell is the mean degradation of harmonic-mean IPC over the
// selected workload mixes.
func Fig3(p Params) (*Result, error) {
	r := &Result{
		ID:    "fig3",
		Title: "Performance degradation due to refresh (vs no-refresh ideal)",
	}
	r.Table.Header = []string{"density", "tREFW", "allbank-deg", "perbank-deg"}

	temps := []struct {
		name string
		high bool
	}{{"64ms", false}, {"32ms", true}}

	// Enumerate every (temp, density, mix, bundle) cell up front and fan
	// out across the worker pool.
	var jobs []cellJob
	for _, temp := range temps {
		for _, d := range config.Densities {
			for _, mix := range p.sweepMixes() {
				for _, b := range []bundle{bundleNone, bundleAllBank, bundlePerBank} {
					jobs = append(jobs, p.bundleJob(
						cellKey(temp.name, d.String(), mix.Name, b.name), d, b, temp.high, mix))
				}
			}
		}
	}
	reps, failed, err := p.runCells("fig3", jobs)
	if err != nil {
		return nil, err
	}
	r.Failed = failed

	for _, temp := range temps {
		for _, d := range config.Densities {
			var degAB, degPB []float64
			for _, mix := range p.sweepMixes() {
				none := reps[cellKey(temp.name, d.String(), mix.Name, bundleNone.name)]
				ab := reps[cellKey(temp.name, d.String(), mix.Name, bundleAllBank.name)]
				pb := reps[cellKey(temp.name, d.String(), mix.Name, bundlePerBank.name)]
				if none == nil || ab == nil || pb == nil {
					// Quarantined cell: this mix drops out of the mean.
					continue
				}
				if none.HarmonicIPC > 0 {
					degAB = append(degAB, 1-ab.HarmonicIPC/none.HarmonicIPC)
					degPB = append(degPB, 1-pb.HarmonicIPC/none.HarmonicIPC)
				}
			}
			r.Table.AddRow(d.String(), temp.name, pct(mean(degAB)), pct(mean(degPB)))
		}
	}
	r.Notes = append(r.Notes,
		"paper: 64ms all-bank degradation grows 5.4%->17.2% and per-bank 0.24%->9.8% from 8Gb to 32Gb;",
		"paper: 32ms all-bank reaches 34.8% and per-bank 20.3% at 32Gb")
	return r, nil
}
