package harness

import (
	"fmt"
	"math"
	"testing"

	"refsched/internal/config"
	"refsched/internal/workload"
)

// Approx model acceptance bound, checked cell-by-cell over the fig3 and
// fig10 grids at the calibration preset: the relative error on the
// refresh-stalled read fraction, with an absolute floor of
// approxErrFloor on the denominator so near-zero cells (norefresh,
// codesign) compare on an absolute scale. The anchor densities (8 Gb,
// 32 Gb) are exact by construction; the bound is carried by the
// interpolated 16/24 Gb cells. DESIGN.md documents both numbers.
const (
	approxErrBound = 0.15
	approxErrFloor = 0.02
)

// approxValidationParams is the preset the committed traits were
// calibrated at (see approx.CalibrationParams); the error bound is only
// claimed at this preset.
func approxValidationParams() Params {
	return Params{Scale: 256, FootprintScale: 0.05, WarmupWindows: 1, MeasureWindows: 1, Seed: 1, Parallelism: 1}
}

// TestApproxValidationGrids sweeps every cell of the fig3 grid
// (retention × density × mix × {norefresh, allbank, perbank}) and the
// fig10/13 grid (mix × density × {allbank, perbank, codesign}, both
// temperatures) with the exact engine and the analytical model, and
// fails if any cell's stall-fraction error exceeds the documented
// bound. Harmonic-IPC error is reported informationally.
func TestApproxValidationGrids(t *testing.T) {
	if testing.Short() {
		t.Skip("exact-engine sweep; skipped in -short")
	}
	p := approxValidationParams()
	ap := p
	ap.Mode = ModeApprox

	type cell struct {
		mix      workload.Mix
		d        config.Density
		b        bundle
		highTemp bool
	}
	var cells []cell
	seen := map[string]bool{}
	add := func(c cell) {
		k := fmt.Sprintf("%s|%s|%s|%v", c.mix.Name, c.d, c.b.name, c.highTemp)
		if !seen[k] {
			seen[k] = true
			cells = append(cells, c)
		}
	}
	mixes := workload.Table2()[:5] // H/M/L spectrum; full set runs in gen
	for _, highTemp := range []bool{false, true} {
		for _, d := range config.Densities {
			for _, mix := range mixes {
				// fig3 bundles.
				for _, b := range []bundle{bundleNone, bundleAllBank, bundlePerBank} {
					add(cell{mix, d, b, highTemp})
				}
			}
		}
	}
	for _, d := range []config.Density{config.Density16Gb, config.Density24Gb, config.Density32Gb} {
		for _, mix := range mixes {
			// fig10 (and fig13's high-temp variant) bundles.
			for _, highTemp := range []bool{false, true} {
				for _, b := range []bundle{bundleAllBank, bundlePerBank, bundleCoDesign} {
					add(cell{mix, d, b, highTemp})
				}
			}
		}
	}

	var maxErr, sumErr float64
	var maxCell string
	var hipcMax, hipcSum float64
	for _, c := range cells {
		exact, err := p.runBundle(c.d, c.b, c.highTemp, c.mix)
		if err != nil {
			t.Fatalf("exact %s/%s/%s: %v", c.mix.Name, c.d, c.b.name, err)
		}
		pred, err := ap.runBundle(c.d, c.b, c.highTemp, c.mix)
		if err != nil {
			t.Fatalf("approx %s/%s/%s: %v", c.mix.Name, c.d, c.b.name, err)
		}
		relErr := math.Abs(pred.RefreshStalledFrac-exact.RefreshStalledFrac) /
			math.Max(exact.RefreshStalledFrac, approxErrFloor)
		sumErr += relErr
		if relErr > maxErr {
			maxErr = relErr
			maxCell = fmt.Sprintf("%s/%s/%s highTemp=%v (exact %.4f, approx %.4f)",
				c.mix.Name, c.d, c.b.name, c.highTemp, exact.RefreshStalledFrac, pred.RefreshStalledFrac)
		}
		hipcErr := math.Abs(pred.HarmonicIPC-exact.HarmonicIPC) / exact.HarmonicIPC
		hipcSum += hipcErr
		if hipcErr > hipcMax {
			hipcMax = hipcErr
		}
	}
	n := float64(len(cells))
	t.Logf("stall-frac relative error over %d cells: max %.3f (at %s), mean %.4f",
		len(cells), maxErr, maxCell, sumErr/n)
	t.Logf("harmonic-IPC relative error: max %.3f, mean %.4f", hipcMax, hipcSum/n)
	if maxErr > approxErrBound {
		t.Fatalf("approx stall-frac error %.3f exceeds documented bound %.2f at %s",
			maxErr, approxErrBound, maxCell)
	}
}

// TestApproxModeJournalsSeparate pins that approx and exact sweeps can
// never share a resume journal.
func TestApproxModeJournalsSeparate(t *testing.T) {
	p := approxValidationParams()
	ap := p
	ap.Mode = ModeApprox
	if p.Fingerprint() == ap.Fingerprint() {
		t.Fatal("exact and approx params share a journal fingerprint")
	}
}

// TestApproxModeUnknownRejected: a typoed mode fails loudly, not as a
// silent exact run.
func TestApproxModeUnknownRejected(t *testing.T) {
	p := approxValidationParams()
	p.Mode = "aprox"
	if _, err := p.runBundle(config.Density32Gb, bundleAllBank, false, workload.Table2()[0]); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
