package harness

import (
	"fmt"

	"refsched/internal/config"
	"refsched/internal/core"
	"refsched/internal/runner"
)

// Extensions runs the beyond-the-paper comparison (experiment "ext1"):
// the three related-work mechanisms the paper discusses but does not
// simulate — Elastic Refresh, Refresh Pausing, and retention-aware
// RAIDR — plus the Section 7 hardware direction of subarray-level
// per-bank refresh (SALP), all against per-bank refresh and the
// co-design at 32 Gb. It reports both the IPC gain over all-bank
// refresh and refresh's share of DRAM energy (RAIDR's selling point).
func Extensions(p Params) (*Result, error) {
	r := &Result{
		ID:    "ext1",
		Title: "Extensions: related-work mechanisms and subarray refresh at 32Gb (vs all-bank)",
	}
	r.Table.Header = []string{"policy", "ipc-gain", "refresh-stalled", "refresh-energy"}
	d := config.Density32Gb

	type entry struct {
		name      string
		bundle    bundle
		subarrays int
	}
	entries := []entry{
		{"allbank", bundleAllBank, 0},
		{"elastic", bundle{"elastic", config.RefreshElastic, false}, 0},
		{"pausing", bundle{"pausing", config.RefreshPausing, false}, 0},
		{"raidr", bundle{"raidr", config.RefreshRAIDR, false}, 0},
		{"perbank", bundlePerBank, 0},
		{"perbank-salp8", bundle{"perbanksa", config.RefreshPerBankSA, false}, 8},
		{"codesign", bundleCoDesign, 0},
	}

	// Enumerate every (entry, mix) cell — the all-bank entry doubles as
	// the per-mix baseline — and fan out across the worker pool.
	var jobs []cellJob
	for _, e := range entries {
		for _, mix := range p.sweepMixes() {
			e, mix := e, mix
			jobs = append(jobs, cellJob{
				key: cellKey(e.name, mix.Name),
				cell: runner.Cell{Mix: mix.Name, Density: d.String(),
					Bundle: e.name, Seed: p.Seed},
				run: func() (*core.Report, error) {
					cfg := p.configFor(d, e.bundle, false)
					cfg.Mem.SubarraysPerBank = e.subarrays
					return p.run(cfg, mix)
				},
			})
		}
	}
	reps, failed, err := p.runCells("ext1", jobs)
	if err != nil {
		return nil, err
	}
	r.Failed = failed

	type cell struct {
		gain, stalled, energy float64
	}
	results := map[string]cell{}
	for _, e := range entries {
		var gains, stalls, energies []float64
		for _, mix := range p.sweepMixes() {
			rep := reps[cellKey(e.name, mix.Name)]
			base := reps[cellKey("allbank", mix.Name)]
			if rep == nil || base == nil {
				// Quarantined cell: this mix drops out of the means.
				continue
			}
			g := 0.0
			if b := base.HarmonicIPC; b > 0 {
				g = rep.HarmonicIPC/b - 1
			}
			gains = append(gains, g)
			stalls = append(stalls, rep.RefreshStalledFrac)
			energies = append(energies, rep.RefreshEnergyFrac)
		}
		results[e.name] = cell{mean(gains), mean(stalls), mean(energies)}
	}
	for _, e := range entries {
		c := results[e.name]
		gain := pct(c.gain)
		if e.name == "allbank" {
			gain = "baseline"
		}
		r.Table.AddRow(e.name, gain, fmt.Sprintf("%.2f%%", c.stalled*100), pct(c.energy))
	}
	r.Notes = append(r.Notes,
		"elastic/pausing/raidr are the paper's Section 7 related work, rebuilt as comparators;",
		"perbank-salp8 is the Section 7 future-work direction: per-bank refresh at subarray granularity;",
		"raidr assumes an (optimistic) synthetic retention profile — its energy column is its selling point")
	return r, nil
}
