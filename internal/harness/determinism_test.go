package harness

import (
	"reflect"
	"testing"
)

// TestFig10ParallelDeterminism is the parallel runner's core regression
// guarantee: the Figure 10 sweep must produce deep-equal Results — and
// identical per-cell engine event counts — at -j 1 and -j 8. Every cell
// is deterministically seeded and shares no state, so parallelism may
// only change wall-clock time, never output.
func TestFig10ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps are slow")
	}
	p := QuickParams()

	// Raw reports first: compare every metric and the executed event
	// count per (mix, density, bundle) cell.
	p.Parallelism = 1
	serialReps, sFailed, err := p.mainResults(false)
	if err != nil {
		t.Fatal(err)
	}
	p.Parallelism = 8
	parallelReps, pFailed, err := p.mainResults(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(sFailed) != 0 || len(pFailed) != 0 {
		t.Fatalf("unexpected quarantined cells: %v / %v", sFailed, pFailed)
	}
	if len(serialReps) != len(parallelReps) {
		t.Fatalf("cell counts differ: %d serial vs %d parallel", len(serialReps), len(parallelReps))
	}
	for k, sr := range serialReps {
		pr, ok := parallelReps[k]
		if !ok {
			t.Fatalf("cell %s missing from parallel run", k)
		}
		if sr.Events != pr.Events {
			t.Errorf("cell %s: executed events %d serial vs %d parallel", k, sr.Events, pr.Events)
		}
		if !reflect.DeepEqual(sr, pr) {
			t.Errorf("cell %s: reports differ between -j 1 and -j 8", k)
		}
	}

	// Rendered figures second: the tables the user sees must be
	// byte-identical.
	p.Parallelism = 1
	s10, s11, err := Fig10(p, false)
	if err != nil {
		t.Fatal(err)
	}
	p.Parallelism = 8
	p10, p11, err := Fig10(p, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s10, p10) {
		t.Errorf("fig10 differs:\nserial:\n%s\nparallel:\n%s", s10, p10)
	}
	if !reflect.DeepEqual(s11, p11) {
		t.Errorf("fig11 differs:\nserial:\n%s\nparallel:\n%s", s11, p11)
	}
	if s10.String() != p10.String() {
		t.Error("fig10 rendered output is not byte-identical")
	}
}

// TestFig5ParallelDeterminism covers the runner.Map path (allocator
// sweep, no sim engine): parallel and serial output must match exactly.
func TestFig5ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("allocator sweeps are slow")
	}
	p := tinyParams()
	p.Parallelism = 1
	serial, err := Fig5(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Parallelism = 8
	parallel, err := Fig5(p)
	if err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("fig5 output differs:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}
