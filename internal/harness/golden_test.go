package harness

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The golden files lock the rendered output of every figure driver at a
// fixed fast parameter set. They were captured before the metrics
// registry migration, so this test is the refactor's equivalence proof:
// any change to counter plumbing, snapshot/diff arithmetic, or report
// projection that perturbs a single rendered byte fails here. Regenerate
// deliberately with:
//
//	go test ./internal/harness/ -run TestGoldenFigures -update
var updateGolden = flag.Bool("update", false, "rewrite the golden figure files")

// goldenParams pins every knob that affects rendered output.
func goldenParams() Params {
	return Params{
		Scale:          4096,
		FootprintScale: 0.01,
		WarmupWindows:  1,
		MeasureWindows: 1,
		Mixes:          []string{"WL-6"},
		Seed:           1,
	}
}

// goldenFigures are the drivers under equivalence lock; "slow" ones are
// skipped under -short (mirroring the existing per-figure test gates)
// but always run in the full tier-1 suite.
var goldenFigures = []struct {
	name string
	slow bool
}{
	{"fig3", true},
	{"fig4", true},
	{"fig5", true},
	{"fig10", false},
	{"fig12", false},
	{"fig14", true},
	{"fig15", true},
	{"ext1", true},
}

func TestGoldenFigures(t *testing.T) {
	for _, f := range goldenFigures {
		f := f
		t.Run(f.name, func(t *testing.T) {
			if f.slow && testing.Short() && !*updateGolden {
				t.Skip("slow figure sweep")
			}
			t.Parallel()
			rs, err := RunFigure(f.name, goldenParams())
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			for _, r := range rs {
				b.WriteString(r.String())
				b.WriteByte('\n')
			}
			got := b.String()

			path := filepath.Join("testdata", "golden", f.name+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to capture): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s rendered output diverged from golden:\n--- got ---\n%s\n--- want ---\n%s",
					f.name, got, want)
			}
		})
	}
}
