package harness

import (
	"fmt"

	"refsched/internal/config"
	"refsched/internal/workload"
)

// Table1 renders the evaluated configuration (the paper's Table 1) as
// derived from an actual config instance, so the printed values are the
// ones the simulator really uses.
func Table1(p Params) *Result {
	cfg := config.Default(config.Density32Gb, p.Scale)
	r := &Result{ID: "table1", Title: "Evaluated configuration"}
	r.Table.Header = []string{"parameter", "value"}
	add := func(k, v string) { r.Table.AddRow(k, v) }

	add("cores", fmt.Sprintf("%d @ %.1fGHz, OoO, %d-wide, ROB %d, MLP %d",
		cfg.Cores, cfg.CPUFreqGHz, cfg.IssueWidth, cfg.ROB, cfg.MLP))
	add("L1D", fmt.Sprintf("%dKB %d-way, %d-cycle hit", cfg.L1.SizeBytes/1024, cfg.L1.Ways, cfg.L1.HitLatency))
	add("L2", fmt.Sprintf("%dMB per core %d-way, %d-cycle hit, %dB lines",
		cfg.L2.SizeBytes/(1024*1024), cfg.L2.Ways, cfg.L2.HitLatency, cfg.L2.LineBytes))
	add("memory", fmt.Sprintf("DDR3-1600, %d channel, %d DIMM/ch, %d ranks/DIMM, %d banks/rank, FR-FCFS, open row",
		cfg.Mem.Channels, cfg.Mem.DIMMsPerChannel, cfg.Mem.RanksPerDIMM, cfg.Mem.BanksPerRank))
	add("queues", fmt.Sprintf("read/write %d/%d, write watermarks %d/%d",
		cfg.Mem.ReadQueue, cfg.Mem.WriteQueue, cfg.Mem.WriteLowWater, cfg.Mem.WriteHighWater))
	add("row", fmt.Sprintf("%dKB DRAM row", cfg.Mem.RowBytes/1024))
	for _, d := range config.Densities {
		c := config.Default(d, p.Scale)
		add(fmt.Sprintf("refresh %s", d),
			fmt.Sprintf("tRFCab=%dcyc tRFCpb=%dcyc rows/bank=%dK", c.TRFCab(), c.TRFCpb(), c.Mem.RowsPerBank()/1024))
	}
	add("tREFIab", fmt.Sprintf("%d cycles (7.8us)", cfg.TREFIab()))
	add("tREFW", fmt.Sprintf("%d cycles (%.0fms / scale %d)", cfg.TREFW(), cfg.Refresh.TREFWms, cfg.Scale))
	add("timeslice", fmt.Sprintf("%d cycles (%.0fms / scale %d)", cfg.Timeslice(), cfg.OS.TimesliceMS, cfg.Scale))
	add("OS scheduler", "RR baseline / CFS co-design")
	add("allocator", "buddy baseline / soft-partitioning co-design")
	return r
}

// Table2Result renders the workload mixes (the paper's Table 2),
// annotated with the modeled per-benchmark footprints.
func Table2Result() *Result {
	r := &Result{ID: "table2", Title: "Workload mixes (dual-core, 1:4 consolidation)"}
	r.Table.Header = []string{"mix", "benchmarks", "MPKI class"}
	for _, m := range workload.Table2() {
		var parts string
		for i, e := range m.Entries {
			if i > 0 {
				parts += ", "
			}
			parts += fmt.Sprintf("%s(%d)", e.Bench, e.Count)
		}
		r.Table.AddRow(m.Name, parts, m.Classes)
	}
	for _, name := range workload.Names() {
		b, _ := workload.Get(name)
		r.Notes = append(r.Notes, fmt.Sprintf("%s: class %s, footprint %s", b.Name, b.Class, byteSize(b.Footprint)))
	}
	return r
}

// All runs every experiment and returns the results in paper order.
func All(p Params) ([]*Result, error) {
	var out []*Result
	out = append(out, Table1(p), Table2Result())

	f3, err := Fig3(p)
	if err != nil {
		return out, err
	}
	out = append(out, f3)

	f4, err := Fig4(p)
	if err != nil {
		return out, err
	}
	out = append(out, f4)

	f5, err := Fig5(p)
	if err != nil {
		return out, err
	}
	out = append(out, f5)

	f10, f11, err := Fig10(p, false)
	if err != nil {
		return out, err
	}
	out = append(out, f10, f11)

	f12, err := Fig12(p)
	if err != nil {
		return out, err
	}
	out = append(out, f12)

	f13, f13lat, err := Fig10(p, true)
	if err != nil {
		return out, err
	}
	out = append(out, f13, f13lat)

	f14, err := Fig14(p)
	if err != nil {
		return out, err
	}
	out = append(out, f14)

	f15, err := Fig15(p)
	if err != nil {
		return out, err
	}
	out = append(out, f15)

	ext, err := Extensions(p)
	if err != nil {
		return out, err
	}
	out = append(out, ext)
	return out, nil
}
