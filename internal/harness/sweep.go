package harness

import (
	"fmt"
	"strings"

	"refsched/internal/config"
	"refsched/internal/core"
	"refsched/internal/runner"
	"refsched/internal/workload"
)

// cellJob is one simulation cell of a figure sweep: an addressing key
// the driver uses to look the report back up, the cell identity for
// progress lines, and the self-contained closure that runs it.
type cellJob struct {
	key  string
	cell runner.Cell
	run  func() (*core.Report, error)
}

// cellKey joins a sweep cell's coordinates into a lookup key.
func cellKey(parts ...string) string {
	return strings.Join(parts, "|")
}

// bundleJob builds the common density × bundle × mix cell.
func (p Params) bundleJob(key string, d config.Density, b bundle, highTemp bool, mix workload.Mix) cellJob {
	return cellJob{
		key:  key,
		cell: runner.Cell{Mix: mix.Name, Density: d.String(), Bundle: b.name, Seed: p.Seed},
		run:  func() (*core.Report, error) { return p.runBundle(d, b, highTemp, mix) },
	}
}

// runCells executes a sweep's cells across Params.Parallelism workers
// and returns the reports keyed by each job's key. Cells share no
// mutable state and results are collected by submission index, so the
// returned map is identical to a serial in-order run; Verbose lines go
// through the runner's single collector goroutine and never interleave.
func (p Params) runCells(jobs []cellJob) (map[string]*core.Report, error) {
	rjobs := make([]runner.Job[*core.Report], len(jobs))
	for i, j := range jobs {
		rjobs[i] = runner.Job[*core.Report]{Cell: j.cell, Run: j.run}
	}
	var onDone func(runner.Cell, *core.Report)
	if p.Verbose {
		onDone = func(c runner.Cell, rep *core.Report) {
			fmt.Printf("  ran %-6s %-5s %-10s hIPC=%.4f lat=%.0f stalled=%.4f\n",
				c.Mix, c.Density, c.Bundle, rep.HarmonicIPC, rep.AvgMemLatency, rep.RefreshStalledFrac)
		}
	}
	reps, err := runner.Run(rjobs, p.Parallelism, onDone)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*core.Report, len(jobs))
	for i, j := range jobs {
		out[j.key] = reps[i]
	}
	return out, nil
}
