package harness

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"

	"refsched/internal/chaos"
	"refsched/internal/config"
	"refsched/internal/core"
	"refsched/internal/journal"
	"refsched/internal/runner"
	"refsched/internal/workload"
)

// cellJob is one simulation cell of a figure sweep: an addressing key
// the driver uses to look the report back up, the cell identity for
// progress lines, and the self-contained closure that runs it.
type cellJob struct {
	key  string
	cell runner.Cell
	run  func() (*core.Report, error)
}

// cellKey joins a sweep cell's coordinates into a lookup key.
func cellKey(parts ...string) string {
	return strings.Join(parts, "|")
}

// bundleJob builds the common density × bundle × mix cell.
func (p Params) bundleJob(key string, d config.Density, b bundle, highTemp bool, mix workload.Mix) cellJob {
	return cellJob{
		key:  key,
		cell: runner.Cell{Mix: mix.Name, Density: d.String(), Bundle: b.name, Seed: p.Seed, Hot: highTemp, Remotable: true},
		run:  func() (*core.Report, error) { return p.runBundle(d, b, highTemp, mix) },
	}
}

// Fingerprint identifies the parameter set a journal's entries are
// valid for: every knob that changes a cell's simulated result. Mix
// selection is deliberately absent — it changes which cells exist, not
// what any cell computes, and cells are already keyed individually.
// The checkpoint knobs (CheckpointEvery/CheckpointDir/Snapshots/
// Preempt) are likewise absent: checkpoint boundaries only split the
// engine's run into legs and a resumed cell is byte-identical to an
// uninterrupted one, so a checkpointed run may resume a plain journal
// and vice versa.
// (Callers keying whole rendered figures — the serving daemon's result
// cache — must additionally key on the mix selection, since it changes
// which rows a figure renders.)
func (p Params) Fingerprint() string {
	// v2: Report JSON moved to stable snake_case field names, so v1
	// journals (PascalCase keys) must not be resumed.
	// v3: Report gained sched_skips_per_pick; v2 journal entries would
	// resume with the histogram silently empty.
	// v4: the Mode knob landed; an approx cell must never satisfy a
	// resumed exact sweep (or vice versa), so the tier is part of the
	// fingerprint.
	return fmt.Sprintf("v4 mode=%s scale=%d fp=%g warm=%d meas=%d seed=%d",
		p.mode(), p.Scale, p.FootprintScale, p.WarmupWindows, p.MeasureWindows, p.Seed)
}

// ctx returns the sweep's cancellation context.
func (p Params) ctx() context.Context {
	if p.Ctx != nil {
		return p.Ctx
	}
	return context.Background()
}

// openJournal opens the figure's completed-cell journal when journaling
// is enabled (JournalDir non-empty), else returns nil.
func (p Params) openJournal(figID string) (*journal.Journal, error) {
	if p.JournalDir == "" {
		return nil, nil
	}
	return journal.Open(filepath.Join(p.JournalDir, figID+".journal.json"), p.Fingerprint())
}

// runCells executes a sweep's cells across Params.Parallelism workers
// and returns the reports keyed by each job's key, plus the quarantined
// failures.
//
// This is the pipeline's fault boundary. A cell that fails or panics is
// captured as a typed *runner.CellError and quarantined (unless
// Params.FailFast restores abort-on-first-error semantics); errors
// marked transient are retried with the identical seed up to
// Params.Retries times. With journaling enabled every completed cell is
// persisted atomically as it finishes, and with Resume set, cells
// already on record are decoded instead of re-run — JSON round-trips
// float64 exactly, so a resumed sweep renders byte-identical tables.
// Cells share no mutable state and results are collected by submission
// index, so the returned map is identical to a serial in-order run;
// Verbose lines go through the runner's single collector goroutine and
// never interleave.
//
// The error is non-nil only when the sweep did not run to completion:
// cancellation, a fail-fast failure, or a journal write failure (which
// would silently void the resume guarantee if ignored).
func (p Params) runCells(figID string, jobs []cellJob) (map[string]*core.Report, []*runner.CellError, error) {
	out := make(map[string]*core.Report, len(jobs))

	jnl, err := p.openJournal(figID)
	if err != nil {
		return nil, nil, err
	}

	// Resume: satisfy cells from the journal and run only the rest.
	toRun := jobs
	if jnl != nil && p.Resume {
		toRun = toRun[:0:0]
		for _, j := range jobs {
			var rep core.Report
			if jnl.Lookup(j.key, &rep) {
				out[j.key] = &rep
				continue
			}
			toRun = append(toRun, j)
		}
	}

	rjobs := make([]runner.Job[*core.Report], len(toRun))
	for i, j := range toRun {
		run := j.run
		if p.Chaos != nil {
			// HardCtx (deadline/watchdog cancellation) interrupts chaos
			// stalls, so a killed job terminates within its bound
			// instead of waiting out every injected sleep.
			run = chaos.WrapContext(p.Chaos, figID+"|"+j.key, p.HardCtx, run)
		}
		rjobs[i] = runner.Job[*core.Report]{Cell: j.cell, Run: run}
	}

	// The collector goroutine serializes journaling and progress output.
	var journalErr error
	onDone := func(i int, c runner.Cell, rep *core.Report) {
		if jnl != nil && journalErr == nil {
			journalErr = jnl.Record(toRun[i].key, rep)
		}
		if p.Verbose {
			fmt.Printf("  ran %-6s %-5s %-10s hIPC=%.4f lat=%.0f stalled=%.4f\n",
				c.Mix, c.Density, c.Bundle, rep.HarmonicIPC, rep.AvgMemLatency, rep.RefreshStalledFrac)
		}
	}

	ropts := runner.Options[*core.Report]{
		Parallelism: p.Parallelism,
		FailFast:    p.FailFast,
		Retries:     p.retries(),
		Backoff:     p.RetryBackoff,
		OnDone:      onDone,
	}
	execute := p.CellRunner
	if execute == nil {
		execute = func(ctx context.Context, _ string, jobs []runner.Job[*core.Report], opts runner.Options[*core.Report]) (*runner.Batch[*core.Report], error) {
			return runner.RunBatch(ctx, jobs, opts)
		}
	}
	batch, err := execute(p.ctx(), figID, rjobs, ropts)
	for i, j := range toRun {
		if batch.OK[i] {
			out[j.key] = batch.Results[i]
		}
	}
	if err != nil {
		return out, batch.Failed, err
	}
	if journalErr != nil {
		return out, batch.Failed, fmt.Errorf("harness: journaling %s: %w", figID, journalErr)
	}
	return out, batch.Failed, nil
}
