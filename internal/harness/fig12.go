package harness

import "refsched/internal/config"

// Fig12 regenerates Figure 12: DDR4 fine-granularity refresh modes
// (1x = all-bank baseline, 2x, 4x) versus the co-design at 32 Gb, with
// IPC normalized to the 1x all-bank baseline. Finer FGR modes lose
// ground because tRFC shrinks sub-linearly (1.35x / 1.63x) while the
// command rate doubles/quadruples.
func Fig12(p Params) (*Result, error) {
	r := &Result{
		ID:    "fig12",
		Title: "DDR4 FGR modes vs co-design at 32Gb (normalized to 1x)",
	}
	r.Table.Header = []string{"mix", "fgr2x", "fgr4x", "codesign"}
	d := config.Density32Gb

	bundles := []bundle{bundleAllBank, bundleFGR2x, bundleFGR4x, bundleCoDesign}
	var jobs []cellJob
	for _, mix := range p.mixes() {
		for _, b := range bundles {
			jobs = append(jobs, p.bundleJob(cellKey(mix.Name, b.name), d, b, false, mix))
		}
	}
	reps, failed, err := p.runCells("fig12", jobs)
	if err != nil {
		return nil, err
	}
	r.Failed = failed

	var g2, g4, gc []float64
	for _, mix := range p.mixes() {
		base := reps[cellKey(mix.Name, bundleAllBank.name)]
		f2 := reps[cellKey(mix.Name, bundleFGR2x.name)]
		f4 := reps[cellKey(mix.Name, bundleFGR4x.name)]
		cd := reps[cellKey(mix.Name, bundleCoDesign.name)]
		if base == nil || f2 == nil || f4 == nil || cd == nil {
			// Quarantined cell: the mix's row is omitted (see Failed).
			continue
		}
		v2, v4, vc := 0.0, 0.0, 0.0
		if base.HarmonicIPC > 0 {
			v2 = f2.HarmonicIPC/base.HarmonicIPC - 1
			v4 = f4.HarmonicIPC/base.HarmonicIPC - 1
			vc = cd.HarmonicIPC/base.HarmonicIPC - 1
		}
		g2, g4, gc = append(g2, v2), append(g4, v4), append(gc, vc)
		r.Table.AddRow(mix.Name, pct(v2), pct(v4), pct(vc))
	}
	r.Table.AddRow("average", pct(mean(g2)), pct(mean(g4)), pct(mean(gc)))
	r.Notes = append(r.Notes,
		"paper: 2x and 4x modes fare worse than 1x; the co-design beats all FGR modes")
	return r, nil
}

// Fig14 regenerates Figure 14: the co-design versus previously proposed
// hardware-only mechanisms at 32 Gb — out-of-order per-bank refresh
// (Chang et al.) and Adaptive Refresh (Mukundan et al.) — all
// normalized to all-bank refresh.
func Fig14(p Params) (*Result, error) {
	r := &Result{
		ID:    "fig14",
		Title: "Comparison with prior hardware-only proposals at 32Gb (normalized to all-bank)",
	}
	r.Table.Header = []string{"mix", "adaptive", "oooperbank", "perbank", "codesign"}
	d := config.Density32Gb

	compared := []bundle{bundleAdaptive, bundleOOO, bundlePerBank, bundleCoDesign}
	var jobs []cellJob
	for _, mix := range p.mixes() {
		for _, b := range append([]bundle{bundleAllBank}, compared...) {
			jobs = append(jobs, p.bundleJob(cellKey(mix.Name, b.name), d, b, false, mix))
		}
	}
	reps, failed, err := p.runCells("fig14", jobs)
	if err != nil {
		return nil, err
	}
	r.Failed = failed

	gains := map[string][]float64{}
	for _, mix := range p.mixes() {
		base := reps[cellKey(mix.Name, bundleAllBank.name)]
		complete := base != nil
		for _, b := range compared {
			complete = complete && reps[cellKey(mix.Name, b.name)] != nil
		}
		if !complete {
			// Quarantined cell: the mix's row is omitted (see Failed).
			continue
		}
		row := []string{mix.Name}
		for _, b := range compared {
			rep := reps[cellKey(mix.Name, b.name)]
			g := 0.0
			if base.HarmonicIPC > 0 {
				g = rep.HarmonicIPC/base.HarmonicIPC - 1
			}
			gains[b.name] = append(gains[b.name], g)
			row = append(row, pct(g))
		}
		r.Table.Rows = append(r.Table.Rows, row)
	}
	r.Table.AddRow("average",
		pct(mean(gains["adaptive"])), pct(mean(gains["oooperbank"])),
		pct(mean(gains["perbank"])), pct(mean(gains["codesign"])))
	r.Notes = append(r.Notes,
		"paper: AR +1.9% over all-bank (below per-bank); OOO per-bank +9.5%; co-design +6.1% over OOO and +14.6% over AR")
	return r, nil
}
