package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func withBuildInfo(t *testing.T, bi *debug.BuildInfo, ok bool) {
	t.Helper()
	orig := read
	read = func() (*debug.BuildInfo, bool) { return bi, ok }
	t.Cleanup(func() { read = orig })
}

func TestGetWithoutBuildInfo(t *testing.T) {
	withBuildInfo(t, nil, false)
	i := Get()
	if i.Module != "refsched" || i.Version != "unknown" {
		t.Fatalf("fallback identity = %+v", i)
	}
	if i.GoVersion == "" {
		t.Fatal("GoVersion must always be set")
	}
}

func TestGetReadsVCSStamps(t *testing.T) {
	bi := &debug.BuildInfo{}
	bi.Main.Path = "refsched"
	bi.Main.Version = "(devel)"
	bi.Settings = []debug.BuildSetting{
		{Key: "vcs.revision", Value: "0123456789abcdef0123"},
		{Key: "vcs.time", Value: "2026-08-06T00:00:00Z"},
		{Key: "vcs.modified", Value: "true"},
	}
	withBuildInfo(t, bi, true)

	i := Get()
	if i.Revision != "0123456789abcdef0123" || !i.Dirty {
		t.Fatalf("vcs stamps not read: %+v", i)
	}
	s := i.String()
	for _, want := range []string{"refsched", "(devel)", "rev 0123456789ab", "(dirty)", "2026-08-06"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestRealBuildInfoDoesNotPanic(t *testing.T) {
	if v := Version(); v == "" {
		t.Fatal("empty version string")
	}
}
