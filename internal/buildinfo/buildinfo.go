// Package buildinfo derives a single version string for every binary
// in the module from the information the Go toolchain already embeds
// (debug.ReadBuildInfo): the module version when built from a tagged
// module, otherwise the VCS revision and commit time stamped by
// `go build`, otherwise "devel". All four CLIs expose it behind a
// -version flag and the serving daemon reports it in /healthz, so a
// deployed binary can always be traced back to the source that built
// it without a hand-maintained version constant.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info is the build identity shared by the -version flags and the
// daemon's /healthz payload.
type Info struct {
	// Module is the module path ("refsched").
	Module string `json:"module"`
	// Version is the module version ("(devel)" for source builds).
	Version string `json:"version"`
	// Revision and RevisionTime identify the VCS commit when the
	// binary was built inside a checkout ("" otherwise).
	Revision     string `json:"revision,omitempty"`
	RevisionTime string `json:"revision_time,omitempty"`
	// Dirty reports uncommitted changes in the build checkout.
	Dirty bool `json:"dirty,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// read is swapped out by tests.
var read = debug.ReadBuildInfo

// Get collects the build identity of the running binary. It never
// fails: a binary built without module support (e.g. a bare
// `go run file.go`) reports "unknown".
func Get() Info {
	info := Info{Module: "refsched", Version: "unknown", GoVersion: runtime.Version()}
	bi, ok := read()
	if !ok {
		return info
	}
	if bi.Main.Path != "" {
		info.Module = bi.Main.Path
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.RevisionTime = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// String renders the identity on one line, the format the -version
// flags print: "refsched (devel) go1.24.0 rev abc1234 (dirty)".
func (i Info) String() string {
	s := fmt.Sprintf("%s %s %s", i.Module, i.Version, i.GoVersion)
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if i.RevisionTime != "" {
			s += " " + i.RevisionTime
		}
	}
	if i.Dirty {
		s += " (dirty)"
	}
	return s
}

// Version is shorthand for Get().String().
func Version() string { return Get().String() }
