package chaos

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"refsched/internal/runner"
)

func TestParseMode(t *testing.T) {
	for _, ok := range []string{"transient", "error", "panic", "stall", "mixed"} {
		if _, err := ParseMode(ok); err != nil {
			t.Errorf("ParseMode(%q) = %v", ok, err)
		}
	}
	for _, bad := range []string{"", "Transient", "crash", "none"} {
		if _, err := ParseMode(bad); err == nil {
			t.Errorf("ParseMode(%q) accepted", bad)
		}
	}
}

func TestNewOffWhenFracZero(t *testing.T) {
	if New(Config{Seed: 1, Frac: 0}) != nil {
		t.Error("Frac=0 must disable chaos")
	}
	var in *Injector
	if _, ok := in.Faulted("k"); ok {
		t.Error("nil injector faulted a cell")
	}
	run := Wrap(in, "k", func() (int, error) { return 7, nil })
	if v, err := run(); v != 7 || err != nil {
		t.Error("nil injector must pass the closure through unchanged")
	}
}

func TestFaultPlacementDeterministic(t *testing.T) {
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("fig10|WL-%d|32Gb|codesign", i)
	}
	a := New(Config{Seed: 42, Frac: 0.2})
	b := New(Config{Seed: 42, Frac: 0.2})
	faulted := 0
	for _, k := range keys {
		ma, oka := a.Faulted(k)
		mb, okb := b.Faulted(k)
		if oka != okb || ma != mb {
			t.Fatalf("same seed diverged on %q", k)
		}
		if oka {
			faulted++
		}
	}
	// 500 draws at p=0.2: expect ~100; a wide tolerance still catches a
	// broken hash.
	if faulted < 60 || faulted > 150 {
		t.Errorf("faulted %d/500 cells at Frac=0.2", faulted)
	}
	// A different seed must move the faults.
	c := New(Config{Seed: 43, Frac: 0.2})
	moved := 0
	for _, k := range keys {
		_, oka := a.Faulted(k)
		_, okc := c.Faulted(k)
		if oka != okc {
			moved++
		}
	}
	if moved == 0 {
		t.Error("changing the seed changed no fault placements")
	}
}

func TestWrapTransientThenClean(t *testing.T) {
	in := New(Config{Seed: 1, Frac: 1, Mode: ModeTransient, FailuresPerCell: 2})
	calls := 0
	run := Wrap(in, "cell", func() (int, error) { calls++; return 99, nil })
	for attempt := 1; attempt <= 2; attempt++ {
		_, err := run()
		if err == nil {
			t.Fatalf("attempt %d should have failed", attempt)
		}
		if !runner.IsTransient(err) {
			t.Fatalf("attempt %d error not marked transient: %v", attempt, err)
		}
		var ie *InjectedError
		if !errors.As(err, &ie) || ie.Attempt != attempt {
			t.Fatalf("attempt %d error = %v", attempt, err)
		}
	}
	v, err := run()
	if err != nil || v != 99 {
		t.Fatalf("post-budget attempt = (%d, %v), want (99, nil)", v, err)
	}
	if calls != 1 {
		t.Fatalf("original closure ran %d times, want 1", calls)
	}
}

func TestWrapErrorModePermanent(t *testing.T) {
	in := New(Config{Seed: 1, Frac: 1, Mode: ModeError})
	run := Wrap(in, "cell", func() (int, error) { return 1, nil })
	for i := 0; i < 3; i++ {
		if _, err := run(); err == nil || runner.IsTransient(err) {
			t.Fatalf("ModeError attempt %d = %v, want permanent error", i+1, err)
		}
	}
}

func TestWrapPanicMode(t *testing.T) {
	in := New(Config{Seed: 1, Frac: 1, Mode: ModePanic})
	run := Wrap(in, "cell", func() (int, error) { return 1, nil })
	defer func() {
		p := recover()
		ip, ok := p.(*InjectedPanic)
		if !ok || ip.Key != "cell" {
			t.Fatalf("panic value = %#v, want *InjectedPanic{Key: cell}", p)
		}
	}()
	run()
	t.Fatal("ModePanic did not panic")
}

func TestChaosWithRunnerRetryHeals(t *testing.T) {
	// End-to-end with the worker pool: transient chaos within the retry
	// budget must heal completely and reproduce the clean results.
	in := New(Config{Seed: 7, Frac: 0.5, Mode: ModeTransient, FailuresPerCell: 1})
	const n = 40
	jobs := make([]runner.Job[int], n)
	injected := 0
	for i := range jobs {
		i := i
		key := fmt.Sprintf("cell-%d", i)
		if _, ok := in.Faulted(key); ok {
			injected++
		}
		jobs[i] = runner.Job[int]{
			Cell: runner.Cell{Mix: key},
			Run:  Wrap(in, key, func() (int, error) { return i * i, nil }),
		}
	}
	if injected == 0 {
		t.Fatal("test vacuous: no cells faulted")
	}
	b, err := runner.RunBatch(context.Background(), jobs, runner.Options[int]{Parallelism: 4, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Failed) != 0 {
		t.Fatalf("transient chaos within retry budget still quarantined: %v", b.Failed)
	}
	if b.Retried != injected {
		t.Errorf("Retried = %d, want %d (one per faulted cell)", b.Retried, injected)
	}
	for i := range jobs {
		if b.Results[i] != i*i {
			t.Errorf("Results[%d] = %d, want %d", i, b.Results[i], i*i)
		}
	}
}

func TestChaosWithRunnerQuarantinesPermanent(t *testing.T) {
	// Permanent chaos (error + panic via mixed mode) must be quarantined
	// with the rest of the batch intact.
	in := New(Config{Seed: 3, Frac: 0.3, Mode: ModeMixed, FailuresPerCell: 100})
	const n = 50
	jobs := make([]runner.Job[int], n)
	wantFail := 0
	for i := range jobs {
		i := i
		key := fmt.Sprintf("cell-%d", i)
		if _, ok := in.Faulted(key); ok {
			wantFail++ // mixed transient cells also fail: budget > retries
		}
		jobs[i] = runner.Job[int]{
			Cell: runner.Cell{Mix: key},
			Run:  Wrap(in, key, func() (int, error) { return i, nil }),
		}
	}
	if wantFail == 0 {
		t.Fatal("test vacuous: no cells faulted")
	}
	b, err := runner.RunBatch(context.Background(), jobs, runner.Options[int]{Parallelism: 4, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Failed) != wantFail {
		t.Fatalf("Failed = %d cells, want %d", len(b.Failed), wantFail)
	}
	for _, ce := range b.Failed {
		if ce.Panicked() {
			if _, ok := ce.PanicValue.(*InjectedPanic); !ok {
				t.Errorf("cell %d panic value = %#v, want *InjectedPanic", ce.Index, ce.PanicValue)
			}
			continue
		}
		var ie *InjectedError
		if !errors.As(ce.Err, &ie) {
			t.Errorf("cell %d error = %v, want *InjectedError in chain", ce.Index, ce.Err)
		}
	}
	healthy := 0
	for i := range jobs {
		if b.OK[i] {
			healthy++
			if b.Results[i] != i {
				t.Errorf("Results[%d] corrupted", i)
			}
		}
	}
	if healthy != n-wantFail {
		t.Errorf("healthy = %d, want %d", healthy, n-wantFail)
	}
}
