package chaos

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestStallInterruptedByContext: WrapContext lets a deadline or
// watchdog cancel a chaos stall — the cell returns the context error
// promptly instead of sleeping out the full stall.
func TestStallInterruptedByContext(t *testing.T) {
	in := New(Config{Seed: 1, Frac: 1, Mode: ModeStall, Stall: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan error, 1)
	run := WrapContext(in, "cell", ctx, func() (int, error) { return 42, nil })
	go func() {
		_, err := run()
		done <- err
	}()

	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("stalled cell returned %v, want context.Canceled in chain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled stall did not return promptly")
	}
}

// TestStallCompletesWithLiveContext: an un-cancelled context leaves
// stall semantics intact — sleep, then run the cell normally.
func TestStallCompletesWithLiveContext(t *testing.T) {
	in := New(Config{Seed: 1, Frac: 1, Mode: ModeStall, Stall: time.Millisecond})
	run := WrapContext(in, "cell", context.Background(), func() (int, error) { return 42, nil })
	v, err := run()
	if err != nil || v != 42 {
		t.Fatalf("stalled cell = (%d, %v), want (42, nil)", v, err)
	}
}
