// Package chaos is a deterministic, seeded fault injector for the
// experiment pipeline. It wraps a sweep cell's closure and makes a
// configurable fraction of cells fail — by returned error, by panic, or
// by stalling before succeeding — so tests can prove that quarantine,
// bounded retry, and journaled resume actually deliver the failure
// semantics they promise.
//
// Every decision is a pure function of (injector seed, cell key), so a
// chaos run is as reproducible as the simulation itself: the same seed
// faults the same cells in the same way regardless of worker count or
// completion order. Transient faults fail only the first FailuresPerCell
// attempts of a cell and then let it run normally, which is exactly the
// shape the runner's identical-seed retry is built to absorb.
package chaos

import (
	"context"
	"fmt"
	"sync"
	"time"

	"refsched/internal/runner"
)

// Mode selects how a faulted cell fails.
type Mode string

const (
	// ModeTransient returns an error marked transient (retryable); the
	// cell succeeds once its first FailuresPerCell attempts are spent.
	ModeTransient Mode = "transient"
	// ModeError returns a permanent (non-retryable) error every attempt.
	ModeError Mode = "error"
	// ModePanic panics with a *chaos.InjectedPanic value every attempt.
	ModePanic Mode = "panic"
	// ModeStall sleeps for Stall before running the cell normally. It
	// models a slow, not broken, cell — used to hold a batch open while
	// a test cancels it.
	ModeStall Mode = "stall"
	// ModeMixed cycles deterministically through transient/error/panic
	// per faulted cell.
	ModeMixed Mode = "mixed"
)

// ParseMode validates a -chaos-mode flag value.
func ParseMode(s string) (Mode, error) {
	switch m := Mode(s); m {
	case ModeTransient, ModeError, ModePanic, ModeStall, ModeMixed:
		return m, nil
	default:
		return "", fmt.Errorf("chaos: unknown mode %q (want transient|error|panic|stall|mixed)", s)
	}
}

// Config shapes an Injector.
type Config struct {
	// Seed drives every injection decision.
	Seed uint64
	// Frac is the fraction of cells faulted, in [0, 1].
	Frac float64
	// Mode selects the failure shape (default ModeTransient).
	Mode Mode
	// FailuresPerCell is how many leading attempts of a transient-
	// faulted cell fail before it succeeds (default 1).
	FailuresPerCell int
	// Stall is the ModeStall sleep (default 10ms).
	Stall time.Duration
}

// InjectedError is the typed error returned by faulted cells.
type InjectedError struct {
	Key     string
	Attempt int
}

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("chaos: injected fault in %q (attempt %d)", e.Key, e.Attempt)
}

// InjectedPanic is the typed panic value thrown by ModePanic cells, so
// quarantine reports can tell injected chaos from real bugs.
type InjectedPanic struct {
	Key string
}

// Error lets the recovered value read naturally in failure summaries.
func (p *InjectedPanic) Error() string {
	return fmt.Sprintf("chaos: injected panic in %q", p.Key)
}

// Injector decides, per cell key, whether and how to inject a fault.
// Decision state is immutable after construction; the per-cell attempt
// counters are mutex-guarded, so an Injector is safe for concurrent use
// by the worker pool.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	attempts map[string]int
}

// New builds an injector; a nil return (Frac <= 0) means chaos is off
// and callers can skip wrapping.
func New(cfg Config) *Injector {
	if cfg.Frac <= 0 {
		return nil
	}
	if cfg.Mode == "" {
		cfg.Mode = ModeTransient
	}
	if cfg.FailuresPerCell <= 0 {
		cfg.FailuresPerCell = 1
	}
	if cfg.Stall <= 0 {
		cfg.Stall = 10 * time.Millisecond
	}
	return &Injector{cfg: cfg, attempts: map[string]int{}}
}

// hash is SplitMix64 over the seed and key — a stateless, platform-
// stable stream so fault placement is reproducible.
func hash(seed uint64, key string) uint64 {
	x := seed ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(key); i++ {
		x = (x ^ uint64(key[i])) * 0xbf58476d1ce4e5b9
	}
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}

// Faulted reports whether the injector will fault the cell with this
// key, and with which mode.
func (in *Injector) Faulted(key string) (Mode, bool) {
	if in == nil {
		return "", false
	}
	h := hash(in.cfg.Seed, key)
	// Top 53 bits → uniform [0,1).
	if float64(h>>11)/(1<<53) >= in.cfg.Frac {
		return "", false
	}
	mode := in.cfg.Mode
	if mode == ModeMixed {
		mode = []Mode{ModeTransient, ModeError, ModePanic}[(h>>1)%3]
	}
	return mode, true
}

// attempt bumps and returns the 1-based attempt counter for key.
func (in *Injector) attempt(key string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.attempts[key]++
	return in.attempts[key]
}

// Wrap returns run with the injector's fault (if any) for key applied
// in front of it. The wrapped closure stays deterministic: on a
// non-faulting attempt it simply runs the original closure with its
// original seed.
func Wrap[T any](in *Injector, key string, run func() (T, error)) func() (T, error) {
	return WrapContext(in, key, nil, run)
}

// WrapContext is Wrap with a cancellation context for the stall mode:
// a stalled cell sleeps on a timer but aborts early — returning the
// context error instead of the cell's result — when ctx ends. That is
// what lets a watchdog or deadline terminate a chaos-stalled job
// within its bound instead of waiting out the full stall. A nil ctx
// stalls uninterruptibly, like Wrap. Fault placement is unchanged:
// ctx affects only how a stall ends, never which cells fault.
func WrapContext[T any](in *Injector, key string, ctx context.Context, run func() (T, error)) func() (T, error) {
	if in == nil {
		return run
	}
	mode, ok := in.Faulted(key)
	if !ok {
		return run
	}
	return func() (T, error) {
		var zero T
		attempt := in.attempt(key)
		switch mode {
		case ModePanic:
			panic(&InjectedPanic{Key: key})
		case ModeError:
			return zero, &InjectedError{Key: key, Attempt: attempt}
		case ModeStall:
			if ctx == nil {
				time.Sleep(in.cfg.Stall)
				return run()
			}
			t := time.NewTimer(in.cfg.Stall)
			defer t.Stop()
			select {
			case <-t.C:
				return run()
			case <-ctx.Done():
				return zero, fmt.Errorf("chaos: stall in %q interrupted: %w", key, ctx.Err())
			}
		default: // ModeTransient
			if attempt <= in.cfg.FailuresPerCell {
				return zero, runner.MarkTransient(&InjectedError{Key: key, Attempt: attempt})
			}
			return run()
		}
	}
}
