package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatal("empty mean should be 0")
	}
	m.Add(2)
	m.Add(4)
	m.Add(6)
	if m.Value() != 4 || m.Count() != 3 || m.Sum() != 12 {
		t.Fatalf("mean=%v count=%d sum=%v", m.Value(), m.Count(), m.Sum())
	}
	m.AddN(3, 12)
	if m.Value() != 4 {
		t.Fatalf("after AddN mean=%v, want 4", m.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10, 10)
	for _, v := range []uint64{0, 5, 9, 10, 55, 99, 1000} {
		h.Add(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d", h.Max())
	}
	wantMean := float64(0+5+9+10+55+99+1000) / 7
	if math.Abs(h.Mean()-wantMean) > 1e-9 {
		t.Fatalf("mean = %v, want %v", h.Mean(), wantMean)
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(1, 1000)
	for v := uint64(1); v <= 100; v++ {
		h.Add(v)
	}
	if p := h.Percentile(50); p < 50 || p > 51 {
		t.Fatalf("p50 = %d", p)
	}
	if p := h.Percentile(99); p < 99 || p > 100 {
		t.Fatalf("p99 = %d", p)
	}
	if h.Percentile(100) < 100 {
		t.Fatalf("p100 = %d", h.Percentile(100))
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram(10, 2) // covers [0,20)
	h.Add(5)
	h.Add(500)
	if h.Percentile(100) != 500 {
		t.Fatalf("overflow percentile = %d, want max 500", h.Percentile(100))
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero width")
		}
	}()
	NewHistogram(0, 10)
}

func TestHarmonicMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{2, 2, 2}, 2},
		{[]float64{1, 2}, 4.0 / 3},
		{[]float64{1, 0}, 0}, // zero input defined as 0
	}
	for _, c := range cases {
		if got := HarmonicMean(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("HarmonicMean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestHarmonicLeGeoLeArith(t *testing.T) {
	// HM <= GM <= AM for positive values.
	f := func(raw []uint16) bool {
		var vs []float64
		for _, r := range raw {
			vs = append(vs, float64(r)+1)
		}
		if len(vs) == 0 {
			return true
		}
		hm, gm := HarmonicMean(vs), GeoMean(vs)
		var am float64
		for _, v := range vs {
			am += v
		}
		am /= float64(len(vs))
		const eps = 1e-9
		return hm <= gm+eps && gm <= am+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean(1,4) = %v", got)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{0}) != 0 {
		t.Fatal("degenerate geomeans should be 0")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := Table{Header: []string{"name", "value"}}
	tb.AddRow("x", "1")
	tb.AddRowf("longer-name", 3.14159)
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[3], "3.142") {
		t.Fatalf("float row not formatted: %q", lines[3])
	}
	// All rows align to the same width.
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("header and separator widths differ:\n%s", s)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]float64{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("SortedKeys = %v", got)
	}
}

func TestMeanDropsNonFinite(t *testing.T) {
	var m Mean
	m.Add(2)
	m.Add(math.NaN())
	m.Add(math.Inf(1))
	m.Add(math.Inf(-1))
	m.Add(4)
	if m.Count() != 2 || m.Value() != 3 {
		t.Fatalf("count=%d value=%v, want 2 and 3", m.Count(), m.Value())
	}
	if m.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", m.Dropped())
	}
}

func TestMeanAddNDropsNonFiniteBatch(t *testing.T) {
	var m Mean
	m.AddN(5, 50)
	m.AddN(7, math.NaN())
	m.AddN(2, math.Inf(1))
	if m.Count() != 5 || m.Sum() != 50 {
		t.Fatalf("count=%d sum=%v, want 5 and 50", m.Count(), m.Sum())
	}
	if m.Dropped() != 9 {
		t.Fatalf("dropped = %d, want all 9 batch samples", m.Dropped())
	}
}

func TestHistogramAddFloatDropsBadSamples(t *testing.T) {
	h := NewHistogram(10, 4)
	h.AddFloat(15)
	h.AddFloat(math.NaN())
	h.AddFloat(math.Inf(1))
	h.AddFloat(-1)
	if h.Count() != 1 || h.Dropped() != 3 {
		t.Fatalf("count=%d dropped=%d, want 1 and 3", h.Count(), h.Dropped())
	}
	if h.Mean() != 15 {
		t.Fatalf("mean = %v, want 15 (uncorrupted)", h.Mean())
	}
}

func TestHistogramView(t *testing.T) {
	h := NewHistogram(10, 3)
	h.Add(5)
	h.Add(25)
	h.Add(500)
	v := h.View()
	if v.Width != 10 || v.Count != 3 || v.Sum != 530 || v.Max != 500 || v.Over != 1 {
		t.Fatalf("view = %+v", v)
	}
	if len(v.Counts) != 3 || v.Counts[0] != 1 || v.Counts[2] != 1 {
		t.Fatalf("view buckets = %v", v.Counts)
	}
	// The view is a copy: mutating the histogram must not change it.
	h.Add(5)
	if v.Counts[0] != 1 {
		t.Fatal("view aliases live histogram buckets")
	}
}

func TestAggregatesRejectNonFinite(t *testing.T) {
	if v := HarmonicMean([]float64{1, math.NaN()}); v != 0 {
		t.Fatalf("HarmonicMean with NaN = %v, want 0", v)
	}
	if v := HarmonicMean([]float64{1, math.Inf(1)}); v != 0 {
		t.Fatalf("HarmonicMean with +Inf = %v, want 0", v)
	}
	if v := GeoMean([]float64{2, math.NaN()}); v != 0 {
		t.Fatalf("GeoMean with NaN = %v, want 0", v)
	}
	if v := GeoMean([]float64{2, math.Inf(1)}); v != 0 {
		t.Fatalf("GeoMean with +Inf = %v, want 0", v)
	}
}
