// Package stats provides the counters and summary statistics used across
// the simulator: scalar counters, running means, histograms, and the
// workload-level aggregates the paper reports (harmonic-mean IPC, average
// memory access latency).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean accumulates a running mean without storing samples. Non-finite
// samples (NaN, ±Inf) are dropped rather than recorded — one poisoned
// sample would otherwise turn every later Value into NaN — and counted
// in Dropped.
type Mean struct {
	n       uint64
	sum     float64
	dropped uint64
}

// Add records one sample; NaN/Inf samples are dropped and counted.
func (m *Mean) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		m.dropped++
		return
	}
	m.n++
	m.sum += v
}

// AddN records a pre-aggregated batch of n samples summing to sum; a
// non-finite sum drops the whole batch (counted as n drops).
func (m *Mean) AddN(n uint64, sum float64) {
	if math.IsNaN(sum) || math.IsInf(sum, 0) {
		m.dropped += n
		return
	}
	m.n += n
	m.sum += sum
}

// Dropped returns how many samples were rejected as non-finite.
func (m *Mean) Dropped() uint64 { return m.dropped }

// Count returns the number of samples recorded.
func (m *Mean) Count() uint64 { return m.n }

// Sum returns the total of all samples.
func (m *Mean) Sum() float64 { return m.sum }

// Value returns the mean, or 0 for an empty accumulator.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Histogram is a fixed-width-bucket latency histogram with an overflow
// bucket; bucket i covers [i*Width, (i+1)*Width).
type Histogram struct {
	Width   uint64
	buckets []uint64
	over    uint64
	n       uint64
	sum     uint64
	max     uint64
	dropped uint64
}

// NewHistogram returns a histogram with nbuckets buckets of the given width.
func NewHistogram(width uint64, nbuckets int) *Histogram {
	if width == 0 || nbuckets <= 0 {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Width: width, buckets: make([]uint64, nbuckets)}
}

// Add records one observation.
func (h *Histogram) Add(v uint64) {
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	i := v / h.Width
	if i >= uint64(len(h.buckets)) {
		h.over++
		return
	}
	h.buckets[i]++
}

// AddFloat records a float observation, dropping NaN, ±Inf, and
// negative values (counted in Dropped) so a poisoned sample cannot
// corrupt the aggregate.
func (h *Histogram) AddFloat(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		h.dropped++
		return
	}
	h.Add(uint64(v))
}

// Dropped returns how many observations were rejected as non-finite or
// negative.
func (h *Histogram) Dropped() uint64 { return h.dropped }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// HistogramView is a copied, export-friendly snapshot of a histogram's
// state (the registry reads histograms through it).
type HistogramView struct {
	Width  uint64
	Counts []uint64
	Over   uint64
	Count  uint64
	Sum    uint64
	Max    uint64
}

// View copies the histogram's current state.
func (h *Histogram) View() HistogramView {
	counts := make([]uint64, len(h.buckets))
	copy(counts, h.buckets)
	return HistogramView{Width: h.Width, Counts: counts, Over: h.over,
		Count: h.n, Sum: h.sum, Max: h.max}
}

// Merge folds a snapshot view into h bucket-wise: counts past h's
// bucket range accumulate into the overflow bucket. Empty views merge
// as a no-op (a zero-valued view carries no width to check); otherwise
// the widths must match — merging differently-shaped histograms is a
// programming error, like an invalid shape in NewHistogram.
func (h *Histogram) Merge(v HistogramView) {
	if v.Count == 0 {
		return
	}
	if v.Width != h.Width {
		panic("stats: merging histograms of different bucket widths")
	}
	for i, c := range v.Counts {
		if i < len(h.buckets) {
			h.buckets[i] += c
		} else {
			h.over += c
		}
	}
	h.over += v.Over
	h.n += v.Count
	h.sum += v.Sum
	if v.Max > h.max {
		h.max = v.Max
	}
}

// HistogramState is the complete serializable state of a histogram,
// including the dropped-sample counter the export View omits.
type HistogramState struct {
	View    HistogramView
	Dropped uint64
}

// State captures the histogram for checkpointing.
func (h *Histogram) State() HistogramState {
	return HistogramState{View: h.View(), Dropped: h.dropped}
}

// SetState overwrites the histogram's contents with a captured state.
// The shape (width, bucket count) must match the receiver's.
func (h *Histogram) SetState(st HistogramState) {
	if st.View.Width != h.Width || len(st.View.Counts) != len(h.buckets) {
		panic("stats: restoring histogram state of a different shape")
	}
	copy(h.buckets, st.View.Counts)
	h.over = st.View.Over
	h.n = st.View.Count
	h.sum = st.View.Sum
	h.max = st.View.Max
	h.dropped = st.Dropped
}

// Mean returns the mean observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the largest observation seen.
func (h *Histogram) Max() uint64 { return h.max }

// Percentile returns an upper bound for the p-th percentile (0 < p <= 100)
// at bucket resolution.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.n == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.n)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return uint64(i+1) * h.Width
		}
	}
	return h.max
}

// HarmonicMean returns the harmonic mean of vs; zero or empty inputs
// yield 0. The paper reports workload performance as the harmonic mean of
// per-task IPC.
func HarmonicMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var inv float64
	for _, v := range vs {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		inv += 1 / v
	}
	return float64(len(vs)) / inv
}

// GeoMean returns the geometric mean of vs (all must be positive).
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var lg float64
	for _, v := range vs {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		lg += math.Log(v)
	}
	return math.Exp(lg / float64(len(vs)))
}

// Table is a tiny fixed-column text-table formatter used by the
// experiment harness to print paper-style rows.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row formatting each value with %v, floats as %.3f.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// SortedKeys returns the keys of m in sorted order; convenience for
// deterministic report printing.
func SortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
