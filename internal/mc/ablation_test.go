package mc

import (
	"testing"

	"refsched/internal/config"
	"refsched/internal/dram"
	"refsched/internal/refresh"
	"refsched/internal/sim"
)

func newRigWith(t *testing.T, mutate func(*config.MemConfig)) *rig {
	t.Helper()
	cfg := config.Default(config.Density32Gb, 64)
	mutate(&cfg.Mem)
	tm := dram.TimingFrom(&cfg)
	eng := sim.NewEngine()
	ch := dram.NewChannel(0, cfg.Mem, &tm)
	geo := refresh.Geometry{Ranks: cfg.Mem.Ranks(), BanksPerRank: cfg.Mem.BanksPerRank, Timing: &tm}
	p, err := refresh.New(config.RefreshNone, geo)
	if err != nil {
		t.Fatal(err)
	}
	return wireRig(&rig{eng: eng, ch: ch, mc: New(eng.Domain(1), ch, cfg.Mem, p), tm: tm, cfg: cfg})
}

// TestClosedPageLosesRowHits: under the closed-page ablation, two
// accesses to the same row both pay activation; under open-page the
// second is a fast row hit.
func TestClosedPageLosesRowHits(t *testing.T) {
	timeFor := func(closed bool) sim.Time {
		r := newRigWith(t, func(m *config.MemConfig) { m.ClosedPage = closed })
		d1 := r.read(t, 0, 0, 5)
		r.eng.Run()
		_ = d1
		d2 := r.read(t, 0, 0, 5)
		r.eng.Run()
		return *d2
	}
	open := timeFor(false)
	closed := timeFor(true)
	if closed <= open {
		t.Fatalf("closed-page same-row re-access (%d) should be slower than open-page (%d)", closed, open)
	}
}

// TestClosedPageBankStateAlwaysPrecharged: after any access the bank is
// closed.
func TestClosedPageBankStateAlwaysPrecharged(t *testing.T) {
	r := newRigWith(t, func(m *config.MemConfig) { m.ClosedPage = true })
	r.read(t, 0, 3, 9)
	r.eng.Run()
	if r.ch.BankAt(0, 3).OpenRow() != -1 {
		t.Fatal("closed-page bank left a row open")
	}
}

// TestFCFSDoesNotReorder: with FCFS an older row-conflict request is
// served before a younger row hit.
func TestFCFSDoesNotReorder(t *testing.T) {
	r := newRigWith(t, func(m *config.MemConfig) { m.FCFS = true })
	// Open row 1.
	first := r.read(t, 0, 0, 1)
	r.eng.Run()
	_ = first
	conflict := r.read(t, 0, 0, 2) // older, conflicting
	hit := r.read(t, 0, 0, 1)      // younger, would hit under FR-FCFS
	r.eng.Run()
	if !(*conflict < *hit) {
		t.Fatalf("FCFS reordered: conflict at %d, hit at %d", *conflict, *hit)
	}
}
