package mc

import (
	"testing"

	"refsched/internal/config"
	"refsched/internal/dram"
	"refsched/internal/sim"
)

// TestPausingAbortsRefreshForDemand: with the pausing policy, a demand
// read arriving mid-refresh completes far sooner than tRFC, and the
// controller records the pause.
func TestPausingAbortsRefreshForDemand(t *testing.T) {
	r := newRig(t, config.RefreshPausing)
	interval := r.mc.Policy().Interval()
	r.eng.RunUntil(sim.Time(interval) + 1) // first refresh in flight on rank 0

	done := r.read(t, 0, 0, 1)
	r.eng.RunUntil(sim.Time(interval + r.tm.TRFCab + 100000))

	if r.mc.Stats.RefreshPauses == 0 {
		t.Fatal("refresh never paused")
	}
	// Without pausing the read waits out tRFCab (~2848 cycles); with
	// pausing it pays only ~tRP + the normal access.
	fullWait := sim.Time(interval + r.tm.TRFCab)
	if *done >= fullWait {
		t.Fatalf("paused read done at %d, no better than unpaused %d", *done, fullWait)
	}
	if r.mc.Stats.RefreshStalledReads != 0 {
		t.Fatal("paused read still counted as refresh-stalled")
	}
}

// TestPausingRemainderEventuallyRuns: the aborted remainder is
// rescheduled, so total refresh busy time is preserved (minus overlap).
func TestPausingRemainderEventuallyRuns(t *testing.T) {
	r := newRig(t, config.RefreshPausing)
	interval := r.mc.Policy().Interval()
	r.eng.RunUntil(sim.Time(interval) + 1)
	_ = r.read(t, 0, 0, 1)
	// Run several intervals with no further traffic: the remainder must
	// have been issued as a refresh command.
	r.eng.RunUntil(sim.Time(interval * 6))
	// Commands: initial + remainder resume (+ later scheduled ones).
	if r.mc.Stats.RefreshCommands < 3 {
		t.Fatalf("refresh commands = %d, expected initial+resume+next", r.mc.Stats.RefreshCommands)
	}
}

// TestElasticSkipsWhileLoaded: with a saturated read queue the elastic
// policy defers refreshes (skips), unlike plain all-bank.
func TestElasticSkipsWhileLoaded(t *testing.T) {
	r := newRig(t, config.RefreshElastic)
	// Saturate bank 0 with reads so rank 0 never looks idle: each
	// completion re-submits an identical read to keep the queue occupied.
	for i := 0; i < 32; i++ {
		coord := dram.Coord{Rank: 0, Bank: 0, Row: uint64(i)}
		var id uint64
		id = r.miss(func(sim.Time) {
			r.mc.SubmitRead(&Request{Coord: coord, Owner: Owner{Valid: true, Miss: id}})
		})
		r.mc.SubmitRead(&Request{Coord: coord, Owner: Owner{Valid: true, Miss: id}})
	}
	r.eng.RunUntil(sim.Time(r.tm.TREFIab * 4))
	if r.mc.Stats.RefreshSkipped == 0 {
		t.Fatal("elastic never deferred under load")
	}
}
