package mc

import (
	"testing"

	"refsched/internal/config"
	"refsched/internal/dram"
	"refsched/internal/refresh"
	"refsched/internal/sim"
)

// rig bundles a controller test fixture. It stands in for the system
// dispatcher: controller payload events route back to the controller,
// and completion events invoke per-miss callbacks registered by the
// test (the role cpu.Core.MissComplete plays in the real machine).
type rig struct {
	eng *sim.Engine
	ch  *dram.Channel
	mc  *Controller
	tm  dram.Timing
	cfg config.System

	onDone   map[uint64]func(finish sim.Time)
	nextMiss uint64
}

func newRig(t *testing.T, pol config.RefreshPolicy) *rig {
	t.Helper()
	cfg := config.Default(config.Density32Gb, 64)
	tm := dram.TimingFrom(&cfg)
	eng := sim.NewEngine()
	ch := dram.NewChannel(0, cfg.Mem, &tm)
	geo := refresh.Geometry{Ranks: cfg.Mem.Ranks(), BanksPerRank: cfg.Mem.BanksPerRank, Timing: &tm}
	p, err := refresh.New(pol, geo)
	if err != nil {
		t.Fatal(err)
	}
	return wireRig(&rig{eng: eng, ch: ch, mc: New(eng.Domain(1), ch, cfg.Mem, p),
		tm: tm, cfg: cfg})
}

// wireRig installs the rig's payload dispatcher on its engine.
func wireRig(r *rig) *rig {
	r.onDone = make(map[uint64]func(sim.Time))
	r.eng.SetExec(func(pl sim.Payload) {
		if pl.Kind == sim.KindMCComplete {
			if pl.B != 0 {
				if fn := r.onDone[pl.C]; fn != nil {
					fn(r.eng.Now())
				}
			}
			return
		}
		r.mc.Exec(pl)
	})
	return r
}

// miss registers a completion callback and returns its miss id.
func (r *rig) miss(fn func(finish sim.Time)) uint64 {
	r.nextMiss++
	r.onDone[r.nextMiss] = fn
	return r.nextMiss
}

// read submits a read to (rank,bank,row) and returns a *sim.Time that
// will hold the completion time.
func (r *rig) read(t *testing.T, rank, bank int, row uint64) *sim.Time {
	t.Helper()
	done := new(sim.Time)
	req := &Request{
		Coord: dram.Coord{Rank: rank, Bank: bank, Row: row},
		Owner: Owner{Valid: true, Miss: r.miss(func(at sim.Time) { *done = at })},
	}
	if !r.mc.SubmitRead(req) {
		t.Fatal("read queue unexpectedly full")
	}
	return done
}

func TestReadCompletes(t *testing.T) {
	r := newRig(t, config.RefreshNone)
	done := r.read(t, 0, 0, 5)
	r.eng.Run()
	want := r.tm.TRCD + r.tm.TCL + r.tm.TBL
	if *done != sim.Time(want) {
		t.Fatalf("completion at %d, want %d", *done, want)
	}
	if r.mc.Stats.Reads != 1 {
		t.Fatalf("reads = %d", r.mc.Stats.Reads)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	r := newRig(t, config.RefreshNone)
	// Open row 1 in bank 0.
	first := r.read(t, 0, 0, 1)
	r.eng.Run()
	_ = first
	// Now enqueue a conflicting request (older) and a row hit (younger)
	// to the same bank: the row hit should be served first.
	conflict := r.read(t, 0, 0, 2)
	hit := r.read(t, 0, 0, 1)
	r.eng.Run()
	if !(*hit < *conflict) {
		t.Fatalf("row hit done at %d, conflict at %d; hit should win", *hit, *conflict)
	}
}

func TestFRFCFSAntiStarvation(t *testing.T) {
	r := newRig(t, config.RefreshNone)
	r.read(t, 0, 0, 1)
	r.eng.Run()
	// One conflicting request, then a long run of row hits. The
	// conflict's bypass budget must eventually force it through.
	conflict := r.read(t, 0, 0, 2)
	var lastHit *sim.Time
	for i := 0; i < 2*maxBypasses; i++ {
		lastHit = r.read(t, 0, 0, 1)
	}
	r.eng.Run()
	if *conflict > *lastHit {
		t.Fatalf("conflict starved: done %d after all %d hits (last %d)", *conflict, 2*maxBypasses, *lastHit)
	}
}

func TestBankParallelismOverlaps(t *testing.T) {
	r := newRig(t, config.RefreshNone)
	// Two reads to different banks: both complete with only burst-level
	// serialization, far sooner than two serialized accesses.
	d1 := r.read(t, 0, 0, 1)
	d2 := r.read(t, 0, 1, 1)
	r.eng.Run()
	lat1 := r.tm.TRCD + r.tm.TCL + r.tm.TBL
	if *d2 > sim.Time(lat1+r.tm.TBL) {
		t.Fatalf("second bank's read at %d, want bus-limited %d", *d2, lat1+r.tm.TBL)
	}
	if *d1 == *d2 {
		t.Fatal("bursts may not complete simultaneously")
	}
}

func TestReadQueueBackpressure(t *testing.T) {
	r := newRig(t, config.RefreshNone)
	// Stuff the queue beyond capacity without letting the engine run.
	n := 0
	for i := 0; ; i++ {
		req := &Request{Coord: dram.Coord{Rank: 0, Bank: i % 8, Row: uint64(i)}}
		if !r.mc.SubmitRead(req) {
			break
		}
		n++
	}
	if n != r.cfg.Mem.ReadQueue {
		t.Fatalf("accepted %d reads, queue size %d", n, r.cfg.Mem.ReadQueue)
	}
	if r.mc.Stats.QueueFullReadStalls != 1 {
		t.Fatalf("stall count = %d", r.mc.Stats.QueueFullReadStalls)
	}
	// A parked request is resubmitted and completes once space frees.
	done := new(sim.Time)
	waiter := &Request{
		Coord: dram.Coord{Rank: 0, Bank: 0, Row: 999},
		Owner: Owner{Valid: true, Miss: r.miss(func(at sim.Time) { *done = at })},
	}
	r.mc.WhenReadSpace(waiter)
	r.eng.Run()
	if *done == 0 {
		t.Fatal("read-space waiter never completed")
	}
}

func TestWriteDrainWatermarks(t *testing.T) {
	r := newRig(t, config.RefreshNone)
	// Fill writes to the high watermark; a drain episode must start and
	// pull the queue down to the low watermark or below.
	for i := 0; i < r.cfg.Mem.WriteHighWater; i++ {
		ok := r.mc.SubmitWrite(&Request{Coord: dram.Coord{Rank: 0, Bank: i % 8, Row: uint64(i / 8)}})
		if !ok {
			t.Fatal("write queue full too early")
		}
	}
	if r.mc.Stats.WriteDrains != 1 {
		t.Fatalf("drain episodes = %d, want 1", r.mc.Stats.WriteDrains)
	}
	r.eng.Run()
	if r.mc.QueuedWrites() != 0 {
		// With no read traffic the opportunistic path empties it fully.
		t.Fatalf("writes left = %d", r.mc.QueuedWrites())
	}
	if r.mc.Stats.Writes != uint64(r.cfg.Mem.WriteHighWater) {
		t.Fatalf("writes issued = %d", r.mc.Stats.Writes)
	}
}

func TestWritesYieldToReadsOutsideDrain(t *testing.T) {
	r := newRig(t, config.RefreshNone)
	// A few writes below the watermark plus a read: read goes first.
	for i := 0; i < 4; i++ {
		r.mc.SubmitWrite(&Request{Coord: dram.Coord{Rank: 0, Bank: 1, Row: 9}})
	}
	done := r.read(t, 0, 0, 1)
	r.eng.Run()
	if *done > sim.Time(r.tm.TRCD+r.tm.TCL+r.tm.TBL) {
		t.Fatalf("read delayed to %d by sub-watermark writes", *done)
	}
}

func TestRefreshStallAccounting(t *testing.T) {
	r := newRig(t, config.RefreshAllBank)
	// Let the first refresh land, then submit a read mid-refresh.
	interval := r.mc.Policy().Interval()
	r.eng.RunUntil(sim.Time(interval) + 1)
	done := r.read(t, 0, 0, 1) // rank 0 refreshing now
	// Run is unsuitable here: the refresh ticker reschedules forever.
	r.eng.RunUntil(sim.Time(interval + r.tm.TRFCab + 100000))
	if r.mc.Stats.RefreshStalledReads != 1 {
		t.Fatalf("refresh-stalled reads = %d", r.mc.Stats.RefreshStalledReads)
	}
	if r.mc.Stats.RefreshStallCycles == 0 {
		t.Fatal("no stall cycles recorded")
	}
	refEnd := interval + r.tm.TRFCab
	if *done < sim.Time(refEnd) {
		t.Fatalf("read finished %d before refresh end %d", *done, refEnd)
	}
}

func TestRefreshTicksKeepComing(t *testing.T) {
	r := newRig(t, config.RefreshPerBankRR)
	r.eng.RunUntil(sim.Time(r.tm.TREFIab * 2))
	// Two tREFIab at interval tREFIab/16 -> 32 commands.
	if r.mc.Stats.RefreshCommands < 30 {
		t.Fatalf("refresh commands = %d, want ~32", r.mc.Stats.RefreshCommands)
	}
}

func TestOutstandingToBankTracking(t *testing.T) {
	r := newRig(t, config.RefreshNone)
	r.read(t, 0, 3, 1)
	r.read(t, 0, 3, 2)
	r.read(t, 1, 3, 1)
	if got := r.mc.OutstandingToBank(3); got != 2 {
		t.Fatalf("bank 3 outstanding = %d, want 2", got)
	}
	if got := r.mc.OutstandingToBank(8 + 3); got != 1 {
		t.Fatalf("bank 11 outstanding = %d, want 1", got)
	}
	r.eng.Run()
	if got := r.mc.OutstandingToBank(3); got != 0 {
		t.Fatalf("post-drain outstanding = %d", got)
	}
}

func TestUtilizationSampling(t *testing.T) {
	r := newRig(t, config.RefreshNone)
	// An empty controller over an idle epoch: utilization 0.
	r.eng.RunUntil(1000)
	if u := r.mc.Utilization(); u != 0 {
		t.Fatalf("idle utilization = %v", u)
	}
	// Saturate the queue, advance, and sample again.
	for i := 0; i < r.cfg.Mem.ReadQueue; i++ {
		r.mc.SubmitRead(&Request{Coord: dram.Coord{Rank: 0, Bank: 0, Row: uint64(i + 10)}})
	}
	r.eng.RunUntil(2000)
	if u := r.mc.Utilization(); u <= 0 {
		t.Fatalf("loaded utilization = %v, want > 0", u)
	}
}

func TestLatencyStats(t *testing.T) {
	r := newRig(t, config.RefreshNone)
	r.read(t, 0, 0, 1)
	r.eng.Run()
	want := float64(r.tm.TRCD + r.tm.TCL + r.tm.TBL)
	if got := r.mc.Stats.AvgReadLatency(); got != want {
		t.Fatalf("avg latency = %v, want %v", got, want)
	}
}

func TestRequestLatencyHelper(t *testing.T) {
	req := &Request{Arrive: 100, FinishAt: 350}
	if req.Latency() != 250 {
		t.Fatalf("Latency = %d", req.Latency())
	}
}
