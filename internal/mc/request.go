// Package mc implements the memory controller: FR-FCFS transaction
// scheduling over read/write queues, watermark-batched write draining,
// and refresh execution driven by a pluggable refresh policy.
//
// One Controller manages one DRAM channel. Demand reads complete by
// callback; writes are posted (they occupy a write-queue slot until their
// data burst finishes but nobody waits on them), which models a
// write-back last-level cache draining evictions.
package mc

import (
	"refsched/internal/dram"
	"refsched/internal/sim"
)

// Request is one memory transaction (a 64-byte line read or write).
type Request struct {
	Addr  uint64
	Coord dram.Coord
	Write bool
	// TaskID identifies the owning task for per-task accounting
	// (-1 when unattributed).
	TaskID int

	// Arrive is when the request entered the controller queue.
	Arrive sim.Time
	// IssueAt / FinishAt are filled in by the controller.
	IssueAt  sim.Time
	FinishAt sim.Time
	// RefreshStalled is set if the request ever waited on a
	// refresh-busy bank.
	RefreshStalled bool

	// Owner identifies the core-side miss to notify at completion time
	// (reads only; posted writes leave it zero). It replaces a completion
	// closure so in-flight requests are serializable: the completion
	// event carries these words and the dispatcher routes them back to
	// cpu.Core.MissComplete.
	Owner Owner

	bypasses int // times a younger row-hit overtook this request
}

// Owner names the issuing core's outstanding miss for a demand read.
type Owner struct {
	Valid bool
	Core  int
	// Miss is the core-local miss id; Epoch guards against stale
	// completions after a context switch (see cpu.Core.MissComplete).
	Miss  uint64
	Epoch uint64
}

// Latency returns the queue-to-data latency in cycles.
func (r *Request) Latency() uint64 { return uint64(r.FinishAt - r.Arrive) }

// Stats aggregates controller-level counters.
type Stats struct {
	Reads  uint64
	Writes uint64

	ReadLatencySum    uint64 // cycles, arrive -> data end
	ReadQueueDelaySum uint64 // cycles, arrive -> issue

	// RefreshStalledReads counts demand reads that waited on a
	// refresh-busy bank; RefreshStallCycles accumulates the waiting.
	RefreshStalledReads uint64
	RefreshStallCycles  uint64

	RefreshCommands uint64
	RefreshSkipped  uint64
	// RefreshPauses counts in-progress refreshes aborted in favour of
	// demand requests (refresh-pausing policies only).
	RefreshPauses uint64

	WriteDrains uint64 // drain episodes entered

	// QueueFullReadStalls counts submissions rejected for a full read
	// queue (back-pressure events).
	QueueFullReadStalls  uint64
	QueueFullWriteStalls uint64
}

// AvgReadLatency returns mean read latency in cycles.
func (s *Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadLatencySum) / float64(s.Reads)
}
