package mc

import (
	"refsched/internal/config"
	"refsched/internal/dram"
	"refsched/internal/refresh"
	"refsched/internal/sim"
	"refsched/internal/timeline"
)

// promptWindowFactor bounds how far into the future the controller will
// pre-commit a command sequence: a pick is only committed if its data
// burst begins within this many cycles of the decision point. Larger
// values pipeline more aggressively but make FR-FCFS decisions stale.
const promptWindow = 600

// starvationAge is the queue age (cycles) past which FR-FCFS stops
// letting row hits bypass an older request.
const starvationAge = 4000

// maxBypasses bounds how many younger row-hit requests may overtake any
// single queued request before it gets absolute priority.
const maxBypasses = 8

// Controller is the per-channel memory controller.
//
// All controller-internal events (issue re-evaluation, refresh ticks)
// schedule through a sim.Domain handle, tagging them with the channel's
// affinity domain: they touch only channel-local state (this struct,
// its dram.Channel, its stats), so a multi-channel system can opt into
// executing same-cycle events of different channels in parallel (see
// sim.Engine.EnableParallel) with byte-identical results. Completion
// callbacks re-enter the cores and are scheduled through the handle's
// shared (serial) path.
type Controller struct {
	eng     *sim.Domain
	ch      *dram.Channel
	cfg     config.MemConfig
	policy  refresh.Scheduler
	pauser  refresh.Pauser // non-nil when the policy supports pausing
	enabled bool           // refresh enabled

	readQ  []*Request
	writeQ []*Request
	// perBankQueued counts queued demand reads per global bank
	// (refresh.QueueView for the OOO policy).
	perBankQueued []int

	draining bool

	// Issue-event bookkeeping: at most one pending try-issue event, at
	// issueAt.
	issuePending bool
	issueAt      sim.Time
	// minRejectedStart is the earliest command start among plans
	// rejected for promptness during the current evaluation; it tells
	// earliestRetry exactly when re-evaluating becomes useful (without
	// it, a saturated bus degenerates into per-cycle queue rescans).
	minRejectedStart sim.Time

	// Read-queue back-pressure waiters, FIFO: rejected requests
	// resubmitted (in arrival order) as slots free. Holding the requests
	// themselves — not callbacks — keeps back-pressure state serializable.
	readWaiters  []*Request
	writeWaiters []*Request

	// tracer, when set, observes every accepted demand request
	// (cycle, line address, write, task).
	tracer func(cycle, addr uint64, write bool, task int)

	// tl, when set, records refresh busy slots and refresh-stalled
	// reads onto this channel's bank tracks (pid tlPid, tid = global
	// bank index).
	tl    *timeline.Recorder
	tlPid int32

	// Utilization sampling for Adaptive Refresh.
	utilLastReset sim.Time
	utilIntegral  float64
	utilLastTime  sim.Time
	utilLastOcc   int

	Stats Stats
	// PolicyStats classifies the refresh policy's decisions (observed
	// centrally in refreshTick so every policy is covered uniformly).
	PolicyStats refresh.Stats
}

// New builds a controller for channel ch using the given refresh
// policy, scheduling through the given affinity-domain handle
// (typically eng.Domain(channel+1); see Controller).
func New(eng *sim.Domain, ch *dram.Channel, cfg config.MemConfig, policy refresh.Scheduler) *Controller {
	c := &Controller{
		eng:           eng,
		ch:            ch,
		cfg:           cfg,
		policy:        policy,
		enabled:       policy.Name() != "none",
		perBankQueued: make([]int, ch.TotalBanks()),
	}
	if p, ok := policy.(refresh.Pauser); ok {
		c.pauser = p
	}
	if c.enabled {
		c.eng.SchedulePAt(c.eng.Now()+policy.Interval(),
			sim.Payload{Kind: sim.KindMCRefreshTick, A: uint64(ch.ID)})
	}
	return c
}

// Policy returns the refresh policy (the OS inspects it for SlotPlanner
// support).
func (c *Controller) Policy() refresh.Scheduler { return c.policy }

// SetTracer installs a request observer invoked for every accepted
// demand request (nil disables tracing).
func (c *Controller) SetTracer(fn func(cycle, addr uint64, write bool, task int)) {
	c.tracer = fn
}

// SetTimeline installs a timeline recorder for this channel's bank
// tracks under process id pid (nil disables recording).
func (c *Controller) SetTimeline(rec *timeline.Recorder, pid int32) {
	c.tl = rec
	c.tlPid = pid
}

// Channel returns the managed DRAM channel.
func (c *Controller) Channel() *dram.Channel { return c.ch }

// CanAcceptRead reports whether the read queue has space.
func (c *Controller) CanAcceptRead() bool { return len(c.readQ) < c.cfg.ReadQueue }

// CanAcceptWrite reports whether the write queue has space.
func (c *Controller) CanAcceptWrite() bool { return len(c.writeQ) < c.cfg.WriteQueue }

// SubmitRead enqueues a demand read. It returns false (and counts a
// back-pressure stall) when the queue is full; the caller should register
// a waiter via WhenReadSpace and retry.
func (c *Controller) SubmitRead(r *Request) bool {
	if !c.CanAcceptRead() {
		c.Stats.QueueFullReadStalls++
		return false
	}
	r.Arrive = c.eng.Now()
	r.Write = false
	if c.tracer != nil {
		c.tracer(uint64(r.Arrive), r.Addr, false, r.TaskID)
	}
	c.trackOcc()
	c.readQ = append(c.readQ, r)
	c.perBankQueued[r.Coord.GlobalBank(c.ch.BanksPerRank)]++
	c.kick()
	return true
}

// SubmitWrite enqueues a posted write (an LLC write-back). It returns
// false when the write queue is full.
func (c *Controller) SubmitWrite(r *Request) bool {
	if !c.CanAcceptWrite() {
		c.Stats.QueueFullWriteStalls++
		return false
	}
	r.Arrive = c.eng.Now()
	r.Write = true
	if c.tracer != nil {
		c.tracer(uint64(r.Arrive), r.Addr, true, r.TaskID)
	}
	c.writeQ = append(c.writeQ, r)
	if len(c.writeQ) >= c.cfg.WriteHighWater && !c.draining {
		c.draining = true
		c.Stats.WriteDrains++
	}
	c.kick()
	return true
}

// WhenReadSpace registers r for resubmission once a read-queue slot
// frees (FIFO among waiters).
func (c *Controller) WhenReadSpace(r *Request) { c.readWaiters = append(c.readWaiters, r) }

// WhenWriteSpace registers r for resubmission once a write-queue slot
// frees.
func (c *Controller) WhenWriteSpace(r *Request) { c.writeWaiters = append(c.writeWaiters, r) }

// QueuedReads returns the current read-queue depth.
func (c *Controller) QueuedReads() int { return len(c.readQ) }

// QueuedWrites returns the current write-queue depth.
func (c *Controller) QueuedWrites() int { return len(c.writeQ) }

// --- refresh.QueueView ---

// OutstandingToBank implements refresh.QueueView.
func (c *Controller) OutstandingToBank(g int) int { return c.perBankQueued[g] }

// ReadQueueLen returns the current read-queue occupancy (metrics
// gauge).
func (c *Controller) ReadQueueLen() int { return len(c.readQ) }

// WriteQueueLen returns the current write-queue occupancy (metrics
// gauge).
func (c *Controller) WriteQueueLen() int { return len(c.writeQ) }

// Utilization implements refresh.QueueView: mean read-queue occupancy
// fraction since the previous call.
func (c *Controller) Utilization() float64 {
	now := c.eng.Now()
	c.trackOcc()
	dt := float64(now - c.utilLastReset)
	u := 0.0
	if dt > 0 {
		u = c.utilIntegral / (dt * float64(c.cfg.ReadQueue))
	}
	c.utilLastReset = now
	c.utilIntegral = 0
	return u
}

// trackOcc integrates read-queue occupancy over time.
func (c *Controller) trackOcc() {
	now := c.eng.Now()
	c.utilIntegral += float64(now-c.utilLastTime) * float64(c.utilLastOcc)
	c.utilLastTime = now
	c.utilLastOcc = len(c.readQ)
}

// --- refresh execution ---

func (c *Controller) refreshTick() {
	now := c.eng.Now()
	t := c.policy.Next(now, c)
	c.PolicyStats.Observe(t)
	if t.Skip {
		c.Stats.RefreshSkipped++
	} else {
		c.Stats.RefreshCommands++
		var end sim.Time
		switch {
		case t.AllBank:
			end = c.ch.RefreshRank(now, t.Rank, t.Dur, t.Rows)
		case t.SubarrayLevel:
			end = c.ch.RefreshSubarray(now, t.GlobalBank, t.Subarray, t.Dur, t.Rows)
		default:
			end = c.ch.RefreshBank(now, t.GlobalBank, t.Dur, t.Rows)
		}
		// Blocked requests become issuable when the refresh window ends.
		c.scheduleIssue(end)
		if c.tl != nil {
			c.emitRefreshSpans(now, end, t)
		}
	}
	c.eng.SchedulePAt(now+c.policy.Interval(),
		sim.Payload{Kind: sim.KindMCRefreshTick, A: uint64(c.ch.ID)})
}

// emitRefreshSpans records the refresh command window [now, end) on
// the affected bank tracks. Rank-level commands paint every bank of
// the rank so sequential vs rotated per-bank schedules are visually
// distinct from all-bank lockstep in Perfetto.
func (c *Controller) emitRefreshSpans(now, end sim.Time, t refresh.Target) {
	ts, dur := uint64(now), uint64(end-now)
	switch {
	case t.AllBank:
		base := t.Rank * c.ch.BanksPerRank
		for b := 0; b < c.ch.BanksPerRank; b++ {
			c.tl.Emit(timeline.Event{Ph: timeline.PhaseSpan, Ts: ts, Dur: dur,
				Pid: c.tlPid, Tid: int32(base + b), Name: "refresh(all)",
				Arg1Name: "rows", Arg1: int64(t.Rows)})
		}
	case t.SubarrayLevel:
		c.tl.Emit(timeline.Event{Ph: timeline.PhaseSpan, Ts: ts, Dur: dur,
			Pid: c.tlPid, Tid: int32(t.GlobalBank), Name: "refresh(subarray)",
			Arg1Name: "rows", Arg1: int64(t.Rows),
			Arg2Name: "subarray", Arg2: int64(t.Subarray)})
	default:
		c.tl.Emit(timeline.Event{Ph: timeline.PhaseSpan, Ts: ts, Dur: dur,
			Pid: c.tlPid, Tid: int32(t.GlobalBank), Name: "refresh",
			Arg1Name: "rows", Arg1: int64(t.Rows)})
	}
}

// --- FR-FCFS issue engine ---

// kick requests an immediate issue evaluation.
func (c *Controller) kick() { c.scheduleIssue(c.eng.Now()) }

// scheduleIssue ensures a try-issue event exists no later than t.
func (c *Controller) scheduleIssue(t sim.Time) {
	if t < c.eng.Now() {
		t = c.eng.Now()
	}
	if c.issuePending && c.issueAt <= t {
		return
	}
	c.issuePending = true
	c.issueAt = t
	c.eng.SchedulePAt(t, sim.Payload{Kind: sim.KindMCTryIssue, A: uint64(c.ch.ID)})
}

func (c *Controller) tryIssue() {
	// This event may be stale (a newer one was requested); only the
	// earliest matters, so clear the flag and re-evaluate from scratch.
	c.issuePending = false
	c.minRejectedStart = 0
	now := c.eng.Now()

	for {
		q := c.pickQueue()
		if q == nil {
			return
		}
		idx, plan := c.pick(*q, now)
		if idx < 0 {
			// Nothing can start promptly; retry when resources free.
			c.scheduleIssue(c.earliestRetry(now))
			return
		}
		req := (*q)[idx]
		c.issue(req, plan, q, idx, now)
	}
}

// pickQueue selects which queue FR-FCFS draws from: writes while
// draining (or when there is nothing else to do), reads otherwise.
func (c *Controller) pickQueue() *[]*Request {
	if c.draining && len(c.writeQ) <= c.cfg.WriteLowWater {
		c.draining = false
	}
	switch {
	case c.draining && len(c.writeQ) > 0:
		return &c.writeQ
	case len(c.readQ) > 0:
		return &c.readQ
	case len(c.writeQ) > 0:
		return &c.writeQ // opportunistic drain on an idle channel
	default:
		return nil
	}
}

// pick runs FR-FCFS over q at time now: prefer the oldest row-hit
// request, else the oldest request, subject to anti-starvation; a pick is
// accepted only if it can start promptly. Under the FCFS ablation only
// the oldest request is considered.
func (c *Controller) pick(q []*Request, now sim.Time) (int, dram.AccessPlan) {
	if c.cfg.FCFS {
		if plan, ok := c.promptPlan(q[0], now); ok {
			return 0, plan
		}
		return -1, dram.AccessPlan{}
	}
	best := -1
	bestHit := false
	// Anti-starvation: an over-bypassed or over-aged oldest request wins
	// outright.
	old := q[0]
	if old.bypasses >= maxBypasses || uint64(now-old.Arrive) > starvationAge {
		if plan, ok := c.promptPlan(old, now); ok {
			return 0, plan
		}
	}
	var bestPlan dram.AccessPlan
	for i, r := range q {
		bank := c.ch.BankAt(r.Coord.Rank, r.Coord.Bank)
		hit := bank.OpenRow() == int64(r.Coord.Row) && !bank.RefreshingRow(r.Coord.Row, now)
		if best >= 0 && (!hit || bestHit) {
			continue // only a row hit can beat an older pick
		}
		plan, ok := c.promptPlan(r, now)
		if !ok {
			continue
		}
		best, bestPlan, bestHit = i, plan, hit
		if bestHit && i == 0 {
			break
		}
	}
	if best > 0 {
		q[0].bypasses++
	}
	return best, bestPlan
}

// promptPlan plans r and accepts it only if the command sequence starts
// within the prompt window; it also accounts refresh-induced stalling.
func (c *Controller) promptPlan(r *Request, now sim.Time) (dram.AccessPlan, bool) {
	bank := c.ch.BankAt(r.Coord.Rank, r.Coord.Bank)
	if bank.RefreshingRow(r.Coord.Row, now) {
		// Refresh pausing: abort the in-progress refresh in favour of
		// this demand request when the policy allows it.
		if c.pauser != nil && c.pauser.RequestPause(now, r.Coord.Rank) {
			remaining := c.ch.AbortRefresh(r.Coord.Rank, -1, now, c.pauser.PausePenalty())
			if remaining > 0 {
				c.pauser.Paused(r.Coord.Rank, remaining)
				c.Stats.RefreshPauses++
			}
			// Fall through: the bank frees after the pause penalty.
		} else {
			if !r.Write && !r.RefreshStalled {
				r.RefreshStalled = true
				c.Stats.RefreshStalledReads++
				until := bank.RowRefreshUntil(r.Coord.Row)
				c.Stats.RefreshStallCycles += uint64(until - now)
				if c.tl != nil {
					c.tl.Emit(timeline.Event{Ph: timeline.PhaseSpan,
						Ts: uint64(now), Dur: uint64(until - now),
						Pid:      c.tlPid,
						Tid:      int32(r.Coord.GlobalBank(c.ch.BanksPerRank)),
						Name:     "stalled-read",
						Arg1Name: "task", Arg1: int64(r.TaskID),
						Arg2Name: "row", Arg2: int64(r.Coord.Row)})
				}
			}
			return dram.AccessPlan{}, false
		}
	}
	plan := c.ch.Plan(now, r.Coord, r.Write)
	if plan.Start > now+promptWindow {
		if c.minRejectedStart == 0 || plan.Start < c.minRejectedStart {
			c.minRejectedStart = plan.Start
		}
		return dram.AccessPlan{}, false
	}
	return plan, true
}

// earliestRetry computes when issuing could next succeed: the moment
// the best promptness-rejected plan becomes prompt, or the earliest
// future bank-ready / refresh-end among queued requests' banks.
// Requests whose banks are free *now* were already evaluated this pass
// (and are covered by the rejected-plan bound), so they impose no
// next-cycle retry.
func (c *Controller) earliestRetry(now sim.Time) sim.Time {
	earliest := now + promptWindow
	if c.minRejectedStart > 0 {
		t := c.minRejectedStart - promptWindow
		if t <= now {
			t = now + 1
		}
		if t < earliest {
			earliest = t
		}
	}
	consider := func(reqs []*Request) {
		for _, r := range reqs {
			b := c.ch.BankAt(r.Coord.Rank, r.Coord.Bank)
			t := b.ReadyAt()
			if s := b.RowRefreshUntil(r.Coord.Row); s > t {
				t = s
			}
			if t > now && t < earliest {
				earliest = t
			}
		}
	}
	consider(c.readQ)
	if c.draining || len(c.readQ) == 0 {
		consider(c.writeQ)
	}
	if earliest <= now {
		earliest = now + 1
	}
	return earliest
}

// issue commits the plan and schedules completion.
func (c *Controller) issue(r *Request, plan dram.AccessPlan, q *[]*Request, idx int, now sim.Time) {
	c.ch.Commit(r.Coord, plan)
	r.IssueAt = plan.Start
	r.FinishAt = plan.DataEnd
	if !r.Write {
		c.trackOcc()
		c.perBankQueued[r.Coord.GlobalBank(c.ch.BanksPerRank)]--
		c.Stats.Reads++
		c.Stats.ReadLatencySum += uint64(plan.DataEnd - r.Arrive)
		c.Stats.ReadQueueDelaySum += uint64(plan.Start - r.Arrive)
	} else {
		c.Stats.Writes++
	}
	*q = append((*q)[:idx], (*q)[idx+1:]...)

	// Completion re-enters the issuing core (shared state), so it must
	// run serially even when channel events execute in parallel. Unowned
	// completions (posted writes) still execute — as no-ops — so the
	// event population matches the closure implementation exactly.
	var owner uint64
	if r.Owner.Valid {
		owner = uint64(r.Owner.Core) + 1
	}
	c.eng.SchedulePSharedAt(plan.DataEnd, sim.Payload{
		Kind: sim.KindMCComplete, A: uint64(c.ch.ID),
		B: owner, C: r.Owner.Miss, D: r.Owner.Epoch,
	})
	c.notifyWaiters()
}

// notifyWaiters resubmits queued waiters now that a slot freed. The
// submission cannot fail: waiters are only popped while the queue has
// space (exactly the retry the old callback-based waiters performed).
func (c *Controller) notifyWaiters() {
	for len(c.readWaiters) > 0 && c.CanAcceptRead() {
		r := c.readWaiters[0]
		c.readWaiters = c.readWaiters[1:]
		c.SubmitRead(r)
	}
	for len(c.writeWaiters) > 0 && c.CanAcceptWrite() {
		r := c.writeWaiters[0]
		c.writeWaiters = c.writeWaiters[1:]
		c.SubmitWrite(r)
	}
}

// Exec dispatches this controller's own payload events. Completion
// events (KindMCComplete) re-enter the issuing core and are routed by
// the system-level dispatcher instead.
func (c *Controller) Exec(p sim.Payload) {
	switch p.Kind {
	case sim.KindMCRefreshTick:
		c.refreshTick()
	case sim.KindMCTryIssue:
		c.tryIssue()
	default:
		panic("mc: unexpected payload kind")
	}
}
