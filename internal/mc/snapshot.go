package mc

import (
	"refsched/internal/dram"
	"refsched/internal/refresh"
	"refsched/internal/sim"
)

// RequestState is the serializable form of one queued or waiting
// Request. Completion routing lives in Owner (plain words), so a
// restored request is indistinguishable from the original.
type RequestState struct {
	Addr           uint64
	Coord          dram.Coord
	Write          bool
	TaskID         int
	Arrive         sim.Time
	IssueAt        sim.Time
	FinishAt       sim.Time
	RefreshStalled bool
	Owner          Owner
	Bypasses       int
}

// ControllerState is one controller's full mutable state at an
// event-quiescent point (no event mid-flight; pending events are
// captured separately by the engine snapshot).
type ControllerState struct {
	ReadQ   []RequestState
	WriteQ  []RequestState
	Waiters struct {
		Read  []RequestState
		Write []RequestState
	}

	Draining         bool
	IssuePending     bool
	IssueAt          sim.Time
	MinRejectedStart sim.Time

	UtilLastReset sim.Time
	UtilIntegral  float64
	UtilLastTime  sim.Time
	UtilLastOcc   int

	Stats       Stats
	PolicyStats refresh.Stats
	// Policy carries the refresh policy's decision state when the policy
	// is stateful (every policy except "none").
	Policy    refresh.State
	HasPolicy bool
}

func packRequests(reqs []*Request) []RequestState {
	out := make([]RequestState, len(reqs))
	for i, r := range reqs {
		out[i] = RequestState{
			Addr: r.Addr, Coord: r.Coord, Write: r.Write, TaskID: r.TaskID,
			Arrive: r.Arrive, IssueAt: r.IssueAt, FinishAt: r.FinishAt,
			RefreshStalled: r.RefreshStalled, Owner: r.Owner,
			Bypasses: r.bypasses,
		}
	}
	return out
}

func unpackRequests(sts []RequestState) []*Request {
	out := make([]*Request, len(sts))
	for i, st := range sts {
		out[i] = &Request{
			Addr: st.Addr, Coord: st.Coord, Write: st.Write, TaskID: st.TaskID,
			Arrive: st.Arrive, IssueAt: st.IssueAt, FinishAt: st.FinishAt,
			RefreshStalled: st.RefreshStalled, Owner: st.Owner,
			bypasses: st.Bypasses,
		}
	}
	return out
}

// State captures the controller for a checkpoint.
func (c *Controller) State() ControllerState {
	st := ControllerState{
		ReadQ:            packRequests(c.readQ),
		WriteQ:           packRequests(c.writeQ),
		Draining:         c.draining,
		IssuePending:     c.issuePending,
		IssueAt:          c.issueAt,
		MinRejectedStart: c.minRejectedStart,
		UtilLastReset:    c.utilLastReset,
		UtilIntegral:     c.utilIntegral,
		UtilLastTime:     c.utilLastTime,
		UtilLastOcc:      c.utilLastOcc,
		Stats:            c.Stats,
		PolicyStats:      c.PolicyStats,
	}
	st.Waiters.Read = packRequests(c.readWaiters)
	st.Waiters.Write = packRequests(c.writeWaiters)
	if s, ok := c.policy.(refresh.Stateful); ok {
		st.Policy = s.State()
		st.HasPolicy = true
	}
	return st
}

// SetState restores the controller from a checkpoint taken on an
// identically configured controller. perBankQueued is derived state and
// is recomputed from the restored read queue.
func (c *Controller) SetState(st ControllerState) {
	c.readQ = unpackRequests(st.ReadQ)
	c.writeQ = unpackRequests(st.WriteQ)
	c.readWaiters = unpackRequests(st.Waiters.Read)
	c.writeWaiters = unpackRequests(st.Waiters.Write)
	for i := range c.perBankQueued {
		c.perBankQueued[i] = 0
	}
	for _, r := range c.readQ {
		c.perBankQueued[r.Coord.GlobalBank(c.ch.BanksPerRank)]++
	}
	c.draining = st.Draining
	c.issuePending = st.IssuePending
	c.issueAt = st.IssueAt
	c.minRejectedStart = st.MinRejectedStart
	c.utilLastReset = st.UtilLastReset
	c.utilIntegral = st.UtilIntegral
	c.utilLastTime = st.UtilLastTime
	c.utilLastOcc = st.UtilLastOcc
	c.Stats = st.Stats
	c.PolicyStats = st.PolicyStats
	if s, ok := c.policy.(refresh.Stateful); ok && st.HasPolicy {
		s.SetState(st.Policy)
	}
}
