package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type report struct {
	IPC    float64
	Events uint64
	Name   string
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig10.journal.json")
	j, err := Open(path, "v1 scale=64")
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 || j.Dropped() != 0 {
		t.Fatalf("fresh journal: Len=%d Dropped=%d", j.Len(), j.Dropped())
	}

	// Awkward float64s must round-trip exactly — that is the basis of the
	// byte-identical-resume guarantee.
	in := report{IPC: 0.1 + 0.2, Events: 1<<53 - 1, Name: "WL-1|32Gb|codesign"}
	if err := j.Record("WL-1|32Gb|codesign", in); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("WL-2|32Gb|allbank", report{IPC: 1.0 / 3.0}); err != nil {
		t.Fatal(err)
	}

	// Reopen (fresh process) and decode.
	j2, err := Open(path, "v1 scale=64")
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", j2.Len())
	}
	var out report
	if !j2.Lookup("WL-1|32Gb|codesign", &out) {
		t.Fatal("recorded cell not found after reopen")
	}
	if out != in {
		t.Fatalf("round-trip mismatch: got %+v, want %+v", out, in)
	}
	if j2.Has("WL-3|32Gb|codesign") {
		t.Error("Has reported an unrecorded cell")
	}
	if j2.Lookup("nope", &out) {
		t.Error("Lookup reported an unrecorded cell")
	}
}

func TestJournalOverwriteKey(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.json")
	j, _ := Open(path, "fp")
	j.Record("k", report{IPC: 1})
	j.Record("k", report{IPC: 2})
	var out report
	j2, _ := Open(path, "fp")
	if !j2.Lookup("k", &out) || out.IPC != 2 {
		t.Fatalf("latest record must win: %+v", out)
	}
	if j2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", j2.Len())
	}
}

func TestJournalFingerprintMismatchDropsEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.json")
	j, _ := Open(path, "scale=64")
	j.Record("a", report{})
	j.Record("b", report{})

	// Same file, different sweep parameters: stale entries must not be
	// resumed into wrong results.
	j2, err := Open(path, "scale=8")
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 0 {
		t.Fatalf("stale journal resumed %d entries", j2.Len())
	}
	if j2.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", j2.Dropped())
	}
	// Recording under the new fingerprint rewrites the file; the old
	// fingerprint is gone for good.
	j2.Record("c", report{})
	j3, _ := Open(path, "scale=8")
	if j3.Len() != 1 || j3.Has("a") {
		t.Fatal("old-fingerprint entries leaked into the rewritten journal")
	}
}

func TestJournalCorruptFileIsAnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path, "fp")
	if err == nil {
		t.Fatal("corrupt journal must be an explicit error, not a silent restart")
	}
	if !strings.Contains(err.Error(), "delete it") {
		t.Errorf("error %q should tell the operator the recovery action", err)
	}
}

func TestJournalAtomicFlushLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.json")
	j, _ := Open(path, "fp")
	for i := 0; i < 5; i++ {
		if err := j.Record(strings.Repeat("k", i+1), report{Events: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "j.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory = %v, want only j.json (no stray temp files)", names)
	}
}

func TestJournalMissingDirErrors(t *testing.T) {
	j, err := Open(filepath.Join(t.TempDir(), "no", "such", "dir", "j.json"), "fp")
	if err != nil {
		t.Fatal(err) // opening is fine: the file just doesn't exist yet
	}
	if err := j.Record("k", report{}); err == nil {
		t.Fatal("recording into a missing directory must surface an error")
	}
}

func TestJournalEachSortedAndRecordBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.journal.json")
	j, err := Open(path, "refschedd-cache-v1")
	if err != nil {
		t.Fatal(err)
	}
	batch := map[string]any{
		"zeta":  "last",
		"alpha": "first",
		"mid":   "middle",
	}
	if err := j.RecordBatch(batch); err != nil {
		t.Fatal(err)
	}

	// Reopen as a fresh process and iterate: sorted keys, raw JSON intact.
	j2, err := Open(path, "refschedd-cache-v1")
	if err != nil {
		t.Fatal(err)
	}
	var keys, vals []string
	j2.Each(func(k string, raw json.RawMessage) {
		keys = append(keys, k)
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			t.Fatalf("decoding %q: %v", k, err)
		}
		vals = append(vals, s)
	})
	if strings.Join(keys, ",") != "alpha,mid,zeta" {
		t.Fatalf("Each order = %v, want sorted", keys)
	}
	if strings.Join(vals, ",") != "first,middle,last" {
		t.Fatalf("Each values = %v", vals)
	}
}

func TestRecordBatchEncodingFailureLeavesJournalUntouched(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.journal.json")
	j, err := Open(path, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("keep", "me"); err != nil {
		t.Fatal(err)
	}
	err = j.RecordBatch(map[string]any{"ok": 1, "bad": func() {}})
	if err == nil {
		t.Fatal("expected an encoding error")
	}
	if j.Len() != 1 || !j.Has("keep") || j.Has("ok") {
		t.Fatalf("failed batch mutated the journal: len=%d", j.Len())
	}
}

func TestRecordBatchEmptyIsNoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.journal.json")
	j, err := Open(path, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.RecordBatch(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("empty batch should not create the file")
	}
}

// TestJournalPartialWriteRefused models a torn write — the crash shapes
// the tmp+fsync+rename protocol exists to prevent, but which a buggy
// filesystem, a direct edit, or a pre-fsync power cut can still
// produce. Every truncation point of a real journal must hit the
// refusal path (an explicit corrupt-file error naming the recovery
// action), never a silent resume into partial state.
func TestJournalPartialWriteRefused(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.journal.json")
	j, err := Open(ref, "fp")
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range []string{"a", "b", "c"} {
		if err := j.Record(k, report{Events: uint64(i), Name: strings.Repeat(k, 30)}); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Truncations at a few representative depths: inside the
	// fingerprint header, mid-entry, and inside the closing brace
	// (len-1 only strips the trailing newline, which still parses).
	for _, n := range []int{1, len(data) / 4, len(data) / 2, len(data) - 2} {
		path := filepath.Join(dir, "torn.journal.json")
		if err := os.WriteFile(path, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(path, "fp")
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes resumed silently", n, len(data))
		}
		if !strings.Contains(err.Error(), "delete it") {
			t.Errorf("truncation at %d: error %q should name the recovery action", n, err)
		}
	}

	// A corrupt tail appended after a valid snapshot (a torn second
	// write over a shorter first one) must also refuse.
	path := filepath.Join(dir, "tail.journal.json")
	if err := os.WriteFile(path, append(append([]byte{}, data...), []byte(`{"fingerprint":`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, "fp"); err == nil {
		t.Fatal("journal with trailing garbage resumed silently")
	}
}
