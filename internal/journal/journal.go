// Package journal persists the completed cells of an experiment sweep
// so an interrupted run can resume without repeating finished work.
//
// A sweep opens one journal per figure (<figure>.journal.json). As each
// cell completes, its result is recorded under the cell's key and the
// whole file is rewritten atomically (write to a temp file in the same
// directory, fsync, rename), so a kill at any instant leaves either the
// previous or the next consistent snapshot — never a torn file. On
// -resume, cells found in the journal are decoded instead of re-run;
// because results round-trip through encoding/json (whose float64
// encoding is exact), a resumed sweep renders byte-identical tables to
// an uninterrupted run.
//
// A journal is bound to the parameter fingerprint of the sweep that
// created it. Opening with a different fingerprint discards the stale
// entries rather than resuming into wrong results.
package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"syscall"
)

// file is the on-disk layout.
type file struct {
	// Fingerprint identifies the sweep parameters the entries belong to.
	Fingerprint string `json:"fingerprint"`
	// Entries maps cell key -> the cell's JSON-encoded result.
	Entries map[string]json.RawMessage `json:"entries"`
}

// Journal is one sweep's completed-cell store. Not safe for concurrent
// use; the runner's single collector goroutine is the intended writer.
type Journal struct {
	path    string
	f       file
	dropped int // stale entries discarded on open
}

// Open loads the journal at path, creating an empty one (in memory; the
// file appears on first Record) if none exists. A journal whose
// fingerprint differs from fingerprint is treated as stale: its entries
// are dropped and Dropped reports how many. A corrupt file is an error
// — deleting it is an explicit operator action, not something a resume
// should do silently.
func Open(path, fingerprint string) (*Journal, error) {
	j := &Journal{path: path, f: file{Fingerprint: fingerprint, Entries: map[string]json.RawMessage{}}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return j, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var old file
	if err := json.Unmarshal(data, &old); err != nil {
		return nil, fmt.Errorf("journal: corrupt %s (delete it to start over): %w", path, err)
	}
	if old.Fingerprint != fingerprint {
		j.dropped = len(old.Entries)
		return j, nil
	}
	if old.Entries != nil {
		j.f.Entries = old.Entries
	}
	return j, nil
}

// Path returns the backing file path.
func (j *Journal) Path() string { return j.path }

// Len returns the number of completed cells on record.
func (j *Journal) Len() int { return len(j.f.Entries) }

// Dropped returns how many entries were discarded at Open because the
// journal belonged to a different parameter fingerprint.
func (j *Journal) Dropped() int { return j.dropped }

// Lookup decodes the recorded result for key into out and reports
// whether the cell was on record. A recorded entry that no longer
// decodes is reported as absent so the cell is simply re-run.
func (j *Journal) Lookup(key string, out any) bool {
	raw, ok := j.f.Entries[key]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// Has reports whether key is on record without decoding it.
func (j *Journal) Has(key string) bool {
	_, ok := j.f.Entries[key]
	return ok
}

// Each calls fn for every recorded entry in sorted key order, handing
// over the raw JSON so the caller decodes into its own type. It is how
// a restarted daemon warms its result cache from the journal without
// knowing up front which keys survived the previous run.
func (j *Journal) Each(fn func(key string, raw json.RawMessage)) {
	keys := make([]string, 0, len(j.f.Entries))
	for k := range j.f.Entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fn(k, j.f.Entries[k])
	}
}

// RecordBatch stores every entry of batch and rewrites the journal
// file once — the shutdown path for persisting a whole result cache,
// where per-key flushes would turn an N-entry snapshot into N full
// rewrites. An encoding failure leaves the in-memory and on-disk state
// untouched.
func (j *Journal) RecordBatch(batch map[string]any) error {
	if len(batch) == 0 {
		return nil
	}
	encoded := make(map[string]json.RawMessage, len(batch))
	for k, v := range batch {
		raw, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("journal: encoding %q: %w", k, err)
		}
		encoded[k] = raw
	}
	for k, raw := range encoded {
		j.f.Entries[k] = raw
	}
	return j.flush()
}

// Record stores v as the completed result for key and atomically
// rewrites the journal file.
func (j *Journal) Record(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: encoding %q: %w", key, err)
	}
	j.f.Entries[key] = raw
	return j.flush()
}

// flush writes the whole journal via tmp+fsync+rename so the on-disk
// file is always a consistent snapshot.
func (j *Journal) flush() error {
	// encoding/json sorts map keys, so the file is diffable across runs.
	data, err := json.MarshalIndent(j.f, "", " ")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(j.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	// The rename is durable only once the directory entry itself is on
	// disk: fsync the parent directory, or a crash right after the
	// rename can resurface the old file (or none) on restart even
	// though the data blocks were synced.
	return syncDir(dir)
}

// syncDir fsyncs a directory so a preceding rename within it survives
// a crash. Filesystems that refuse to fsync directories (some network
// or overlay mounts return EINVAL) degrade to the rename-only
// guarantee rather than failing the write.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("journal: syncing %s: %w", dir, err)
	}
	return nil
}
