package approx

import (
	"math"
	"testing"

	"refsched/internal/config"
	"refsched/internal/stats"
	"refsched/internal/workload"
)

// cfgFor builds a config for one (density, bundle, highTemp) cell the
// way the harness bundles do, touching only the knobs Predict reads.
func cfgFor(d config.Density, bundle string, highTemp bool) config.System {
	cfg := config.Default(d, 256)
	switch bundle {
	case "norefresh":
		cfg.Refresh.Policy = config.RefreshNone
	case "allbank":
		cfg.Refresh.Policy = config.RefreshAllBank
	case "perbank":
		cfg.Refresh.Policy = config.RefreshPerBankRR
	case "codesign":
		cfg.Refresh.Policy = config.RefreshPerBankSeq
		cfg.OS.RefreshAware = true
	}
	if highTemp {
		cfg = config.HighTemp(cfg)
	}
	return cfg
}

func mixByName(t *testing.T, name string) workload.Mix {
	t.Helper()
	for _, m := range workload.Table2() {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("no mix %q", name)
	return workload.Mix{}
}

// TestPredictExactAtAnchors pins the model's defining property: at the
// calibration anchor densities, Predict reproduces the stored exact
// observations identically.
func TestPredictExactAtAnchors(t *testing.T) {
	mix := mixByName(t, "WL-1")
	anchors := map[config.Density]func(CellAnchors) CellTraits{
		builtinCalibration.Params.LoDensity:  func(a CellAnchors) CellTraits { return a.Lo },
		builtinCalibration.Params.MidDensity: func(a CellAnchors) CellTraits { return a.Mid },
		builtinCalibration.Params.RefDensity: func(a CellAnchors) CellTraits { return a.Ref },
	}
	for d, pick := range anchors {
		for _, bundle := range Bundles {
			rep, err := Predict(cfgFor(d, bundle, false), mix)
			if err != nil {
				t.Fatalf("%s@%s: %v", bundle, d, err)
			}
			want := pick(builtinCalibration.Cells[Key("WL-1", 64, bundle)])
			if rep.RefreshStalledFrac != want.StallFrac {
				t.Errorf("%s@%s: stall frac %v, want anchor %v", bundle, d, rep.RefreshStalledFrac, want.StallFrac)
			}
			if rep.AvgMemLatency != want.AvgLat {
				t.Errorf("%s@%s: avg lat %v, want anchor %v", bundle, d, rep.AvgMemLatency, want.AvgLat)
			}
			if got, want := rep.HarmonicIPC, stats.HarmonicMean(want.TaskIPC); math.Abs(got-want) > 1e-12 {
				t.Errorf("%s@%s: harmonic IPC %v, want %v", bundle, d, got, want)
			}
			if rep.Events != 0 {
				t.Errorf("%s@%s: analytical report claims %d events", bundle, d, rep.Events)
			}
		}
	}
}

// TestPredictBetweenNearestAnchors: each segment's power law is
// monotone in s, so an interpolated density (24 Gb) must land between
// its two bracketing anchors (16 Gb and 32 Gb).
func TestPredictBetweenNearestAnchors(t *testing.T) {
	mix := mixByName(t, "WL-5")
	a := builtinCalibration.Cells[Key("WL-5", 64, "allbank")]
	lo, hi := a.Mid.StallFrac, a.Ref.StallFrac
	if lo > hi {
		lo, hi = hi, lo
	}
	rep, err := Predict(cfgFor(config.Density24Gb, "allbank", false), mix)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RefreshStalledFrac < lo || rep.RefreshStalledFrac > hi {
		t.Errorf("24Gb stall frac %v outside bracketing anchors [%v, %v]", rep.RefreshStalledFrac, lo, hi)
	}
}

// TestPredictRejectsUnsupportedPolicy: policies outside the calibrated
// bundles must error, not silently extrapolate.
func TestPredictRejectsUnsupportedPolicy(t *testing.T) {
	mix := mixByName(t, "WL-1")
	cfg := cfgFor(config.Density32Gb, "allbank", false)
	cfg.Refresh.Policy = config.RefreshFGR2x
	if _, err := Predict(cfg, mix); err == nil {
		t.Fatal("FGR2x accepted by the analytical model")
	}
	cfg = cfgFor(config.Density32Gb, "codesign", false)
	cfg.OS.RefreshAware = false
	if _, err := Predict(cfg, mix); err == nil {
		t.Fatal("perbankseq without refresh-aware OS accepted")
	}
}

// TestDutyGroundsCalibration: the closed-form duty cycle and the
// calibrated all-bank stall fractions agree to within an order of
// magnitude — the sanity link between the first-principles model and
// the measured traits.
func TestDutyGroundsCalibration(t *testing.T) {
	for _, mixName := range []string{"WL-1", "WL-5", "WL-8"} {
		cfg := cfgFor(config.Density32Gb, "allbank", false)
		duty := Duty(&cfg, "allbank")
		if duty <= 0 || duty >= 1 {
			t.Fatalf("allbank duty = %v", duty)
		}
		sf := builtinCalibration.Cells[Key(mixName, 64, "allbank")].Ref.StallFrac
		if ratio := sf / duty; ratio < 0.05 || ratio > 20 {
			t.Errorf("%s: stall frac %v vs duty %v (ratio %v) — calibration no longer tracks duty cycle",
				mixName, sf, duty, ratio)
		}
	}
}

// TestInterp exercises the two interpolation regimes directly.
func TestInterp(t *testing.T) {
	sLo := 350.0 / 890.0
	// Exact power law m = 2·s² is recovered at any s.
	mRef, mLo := 2.0, 2.0*sLo*sLo
	for _, s := range []float64{sLo, 530.0 / 890.0, 710.0 / 890.0, 1} {
		if got, want := interp(mLo, mRef, s, sLo), 2.0*s*s; math.Abs(got-want) > 1e-12 {
			t.Errorf("power law at s=%v: %v, want %v", s, got, want)
		}
	}
	// A zero anchor forces the linear fallback and clamps at zero.
	if got := interp(0, 1, sLo, sLo); got != 0 {
		t.Errorf("lo anchor not reproduced: %v", got)
	}
	mid := interp(0, 1, 0.7, sLo)
	if mid <= 0 || mid >= 1 {
		t.Errorf("linear fallback out of range: %v", mid)
	}
}
