package cache

import (
	"testing"
	"testing/quick"

	"refsched/internal/config"
)

func smallCfg(size uint64, ways int) config.CacheConfig {
	return config.CacheConfig{SizeBytes: size, Ways: ways, LineBytes: 64, HitLatency: 2}
}

func TestCacheHitMiss(t *testing.T) {
	c, err := New(smallCfg(4096, 4)) // 16 sets
	if err != nil {
		t.Fatal(err)
	}
	if c.Lookup(0x1000, false) {
		t.Fatal("cold lookup hit")
	}
	c.Fill(0x1000, false)
	if !c.Lookup(0x1000, false) {
		t.Fatal("post-fill lookup missed")
	}
	if !c.Lookup(0x1020, false) {
		t.Fatal("same-line offset missed")
	}
	if c.Stats.Accesses != 3 || c.Stats.Hits != 2 || c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, _ := New(smallCfg(1024, 2)) // 8 sets, 2 ways; set stride 512B
	// Three lines mapping to set 0: 0x0, 0x200, 0x400.
	c.Lookup(0x0, false)
	c.Fill(0x0, false)
	c.Lookup(0x200, false)
	c.Fill(0x200, false)
	// Touch 0x0 so 0x200 is LRU.
	c.Lookup(0x0, false)
	c.Lookup(0x400, false)
	v, had := c.Fill(0x400, false)
	if !had || v.Addr != 0x200 {
		t.Fatalf("evicted %+v, want 0x200", v)
	}
	if !c.Contains(0x0) || c.Contains(0x200) || !c.Contains(0x400) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	c, _ := New(smallCfg(1024, 2))
	c.Lookup(0x0, true)
	c.Fill(0x0, true) // dirty fill
	c.Fill(0x200, false)
	v, had := c.Fill(0x400, false) // evicts 0x0 (LRU)
	if !had || !v.Dirty || v.Addr != 0x0 {
		t.Fatalf("dirty eviction = %+v had=%v", v, had)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats.Writebacks)
	}
}

func TestCacheWriteHitSetsDirty(t *testing.T) {
	c, _ := New(smallCfg(1024, 2))
	c.Fill(0x0, false)
	c.Lookup(0x0, true) // write hit dirties the line
	c.Fill(0x200, false)
	v, _ := c.Fill(0x400, false)
	if !v.Dirty {
		t.Fatal("write-hit line evicted clean")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c, _ := New(smallCfg(1024, 2))
	c.Fill(0x0, true)
	dirty, present := c.Invalidate(0x0)
	if !present || !dirty {
		t.Fatalf("Invalidate = dirty=%v present=%v", dirty, present)
	}
	if _, present := c.Invalidate(0x0); present {
		t.Fatal("double invalidate found the line")
	}
}

func TestCacheMarkDirty(t *testing.T) {
	c, _ := New(smallCfg(1024, 2))
	c.Fill(0x0, false)
	if !c.MarkDirty(0x0) {
		t.Fatal("MarkDirty missed present line")
	}
	if c.MarkDirty(0x999000) {
		t.Fatal("MarkDirty hit absent line")
	}
}

func TestCacheRejectsBadShapes(t *testing.T) {
	bad := []config.CacheConfig{
		{SizeBytes: 1000, Ways: 2, LineBytes: 64}, // non-pow2 sets
		{SizeBytes: 1024, Ways: 0, LineBytes: 64}, // no ways
		{SizeBytes: 1024, Ways: 2, LineBytes: 60}, // non-pow2 line
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// refModel is a brute-force LRU cache used as the oracle for the
// property test.
type refModel struct {
	sets  uint64
	ways  int
	lines map[uint64][]uint64 // set -> MRU-first line addrs
	dirty map[uint64]bool
}

func newRefModel(sets uint64, ways int) *refModel {
	return &refModel{sets: sets, ways: ways, lines: map[uint64][]uint64{}, dirty: map[uint64]bool{}}
}

func (m *refModel) set(addr uint64) uint64 { return (addr >> 6) % m.sets }

func (m *refModel) access(addr uint64, write bool) (hit bool, victim uint64, evicted, victimDirty bool) {
	addr = addr >> 6 << 6
	s := m.set(addr)
	for i, a := range m.lines[s] {
		if a == addr {
			m.lines[s] = append(append([]uint64{addr}, m.lines[s][:i]...), m.lines[s][i+1:]...)
			if write {
				m.dirty[addr] = true
			}
			return true, 0, false, false
		}
	}
	// Miss: fill MRU, evict LRU if full.
	if len(m.lines[s]) == m.ways {
		last := m.lines[s][len(m.lines[s])-1]
		victim, evicted, victimDirty = last, true, m.dirty[last]
		delete(m.dirty, last)
		m.lines[s] = m.lines[s][:len(m.lines[s])-1]
	}
	m.lines[s] = append([]uint64{addr}, m.lines[s]...)
	m.dirty[addr] = write
	return false, victim, evicted, victimDirty
}

// TestCacheMatchesReferenceModel drives random access sequences through
// the cache and the brute-force oracle and demands identical hits,
// victims and dirtiness.
func TestCacheMatchesReferenceModel(t *testing.T) {
	f := func(ops []uint16) bool {
		c, err := New(smallCfg(2048, 4)) // 8 sets
		if err != nil {
			return false
		}
		ref := newRefModel(8, 4)
		for _, op := range ops {
			addr := uint64(op&0x3FF) << 6 // 1024 distinct lines
			write := op&0x8000 != 0
			wantHit, wantVictim, wantEvicted, wantDirty := ref.access(addr, write)
			gotHit := c.Lookup(addr, write)
			if gotHit != wantHit {
				return false
			}
			if !gotHit {
				v, had := c.Fill(addr, write)
				if had != wantEvicted {
					return false
				}
				if had && (v.Addr != wantVictim || v.Dirty != wantDirty) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h, err := NewHierarchy(smallCfg(1024, 2), smallCfg(8192, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Cold: memory.
	o := h.Access(0x5000, false)
	if o.Level != LevelMemory || o.MissLineAddr != 0x5000 {
		t.Fatalf("cold access = %+v", o)
	}
	// Now in both levels: L1 hit.
	if o := h.Access(0x5000, false); o.Level != LevelL1 {
		t.Fatalf("second access level = %v", o.Level)
	}
	// Evict from L1 (thrash its set) but not L2, then re-access: L2 hit.
	h.Access(0x5000+1*512, false)
	h.Access(0x5000+2*512, false)
	h.Access(0x5000+3*512, false)
	if o := h.Access(0x5000, false); o.Level != LevelL2 {
		t.Fatalf("post-L1-eviction level = %v, want L2", o.Level)
	}
}

func TestHierarchyWritebackPath(t *testing.T) {
	h, _ := NewHierarchy(smallCfg(1024, 2), smallCfg(2048, 2)) // tiny L2: 16 sets... 2048/2/64=16 sets
	// Dirty a line, then thrash the L2 set until it drains to DRAM.
	h.Access(0x0, true)
	var wbs []uint64
	for i := uint64(1); i < 8; i++ {
		o := h.Access(i*2048, false) // same L2 set as 0x0 (16 sets * 64B = 1024 stride? use 2048 to be safe)
		wbs = append(wbs, o.Writebacks...)
	}
	found := false
	for _, wb := range wbs {
		if wb == 0x0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("dirty line 0x0 never written back; wbs=%v", wbs)
	}
}

func TestHierarchyInclusionBackInvalidate(t *testing.T) {
	h, _ := NewHierarchy(smallCfg(1024, 2), smallCfg(2048, 2))
	h.Access(0x0, false)
	// Thrash L2 set 0 so 0x0 is evicted from L2.
	for i := uint64(1); i < 8; i++ {
		h.Access(i*1024, false)
	}
	// 0x0 must not be an L1 hit anymore (back-invalidated).
	if h.L1.Contains(0x0) {
		t.Fatal("L1 retains line evicted from L2 (inclusion violated)")
	}
}

func TestHierarchyLLCMissesCount(t *testing.T) {
	h, _ := NewHierarchy(smallCfg(1024, 2), smallCfg(8192, 4))
	for i := uint64(0); i < 10; i++ {
		h.Access(i*64, false)
	}
	if h.LLCMisses() != 10 {
		t.Fatalf("LLCMisses = %d, want 10", h.LLCMisses())
	}
}
