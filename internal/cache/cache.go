// Package cache implements the on-chip cache hierarchy: set-associative,
// write-back, write-allocate caches with LRU replacement, composed into a
// per-core two-level hierarchy (32 KB L1D + 1 MB private L2 in the
// paper's configuration, Table 1).
//
// The model is state-accurate and trace-driven: an access updates tag
// state immediately and reports the level that hit plus any dirty line
// evicted to the next level. Timing (hit latencies, miss handling,
// outstanding-miss limits) is the caller's concern — the CPU core model
// charges latencies and the memory controller handles DRAM-bound misses.
package cache

import (
	"fmt"
	"math/bits"

	"refsched/internal/config"
)

// Stats counts cache activity.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions handed to the next level
}

// MissRate returns misses/accesses.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one set-associative, write-back, write-allocate cache level.
type Cache struct {
	sets     uint64
	ways     int
	lineBits uint
	setMask  uint64

	// Line state, set-major: index = set*ways + way.
	tags  []uint64
	valid []bool
	dirty []bool
	// stamp implements LRU: the per-set access counter value at last
	// touch; smallest stamp in a set is the LRU way.
	stamp   []uint64
	counter []uint64 // per-set monotonic counter

	Stats Stats
}

// New builds an empty cache from a level config.
func New(cfg config.CacheConfig) (*Cache, error) {
	if cfg.LineBytes == 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: line size must be a power of two, got %d", cfg.LineBytes)
	}
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache: ways must be positive")
	}
	sets := cfg.Sets()
	if sets == 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count must be a positive power of two, got %d", sets)
	}
	n := sets * uint64(cfg.Ways)
	return &Cache{
		sets:     sets,
		ways:     cfg.Ways,
		lineBits: uint(bits.TrailingZeros64(cfg.LineBytes)),
		setMask:  sets - 1,
		tags:     make([]uint64, n),
		valid:    make([]bool, n),
		dirty:    make([]bool, n),
		stamp:    make([]uint64, n),
		counter:  make([]uint64, sets),
	}, nil
}

// LineAddr converts a byte address to its line-aligned address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineBits << c.lineBits }

// Victim describes a line displaced by a fill.
type Victim struct {
	Addr  uint64 // line-aligned byte address
	Dirty bool
}

// Lookup probes the cache without filling. On hit it updates LRU state
// and, for writes, marks the line dirty.
func (c *Cache) Lookup(addr uint64, write bool) bool {
	c.Stats.Accesses++
	set := (addr >> c.lineBits) & c.setMask
	tag := addr >> c.lineBits >> uint(bits.TrailingZeros64(c.sets))
	base := set * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.valid[i] && c.tags[i] == tag {
			c.Stats.Hits++
			c.counter[set]++
			c.stamp[i] = c.counter[set]
			if write {
				c.dirty[i] = true
			}
			return true
		}
	}
	c.Stats.Misses++
	return false
}

// Fill allocates a line for addr (which must have just missed), evicting
// the LRU way if the set is full. The returned victim is valid when a
// line was displaced. The new line is dirty when the triggering access
// was a write.
func (c *Cache) Fill(addr uint64, write bool) (Victim, bool) {
	set := (addr >> c.lineBits) & c.setMask
	setBits := uint(bits.TrailingZeros64(c.sets))
	tag := addr >> c.lineBits >> setBits
	base := set * uint64(c.ways)

	victimWay := -1
	var lruStamp uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if !c.valid[i] {
			victimWay = w
			lruStamp = 0
			break
		}
		if c.stamp[i] < lruStamp {
			lruStamp = c.stamp[i]
			victimWay = w
		}
	}
	i := base + uint64(victimWay)

	var v Victim
	had := false
	if c.valid[i] {
		c.Stats.Evictions++
		vaddr := (c.tags[i]<<setBits | set) << c.lineBits
		v = Victim{Addr: vaddr, Dirty: c.dirty[i]}
		had = true
		if c.dirty[i] {
			c.Stats.Writebacks++
		}
	}
	c.valid[i] = true
	c.tags[i] = tag
	c.dirty[i] = write
	c.counter[set]++
	c.stamp[i] = c.counter[set]
	return v, had
}

// Invalidate drops addr's line if present, returning whether it was
// present and dirty (the caller must write it back).
func (c *Cache) Invalidate(addr uint64) (wasDirty, present bool) {
	set := (addr >> c.lineBits) & c.setMask
	tag := addr >> c.lineBits >> uint(bits.TrailingZeros64(c.sets))
	base := set * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.valid[i] && c.tags[i] == tag {
			c.valid[i] = false
			d := c.dirty[i]
			c.dirty[i] = false
			return d, true
		}
	}
	return false, false
}

// MarkDirty sets the dirty bit on addr's line if present (used when an L1
// dirty eviction lands in L2).
func (c *Cache) MarkDirty(addr uint64) bool {
	set := (addr >> c.lineBits) & c.setMask
	tag := addr >> c.lineBits >> uint(bits.TrailingZeros64(c.sets))
	base := set * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.valid[i] && c.tags[i] == tag {
			c.dirty[i] = true
			return true
		}
	}
	return false
}

// Contains probes without touching LRU or stats (for tests/invariants).
func (c *Cache) Contains(addr uint64) bool {
	set := (addr >> c.lineBits) & c.setMask
	tag := addr >> c.lineBits >> uint(bits.TrailingZeros64(c.sets))
	base := set * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.valid[i] && c.tags[i] == tag {
			return true
		}
	}
	return false
}
