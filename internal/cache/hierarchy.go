package cache

import "refsched/internal/config"

// Level identifies where an access was satisfied.
type Level int

// Access outcome levels.
const (
	LevelL1 Level = iota + 1
	LevelL2
	LevelMemory
)

// Outcome describes one hierarchy access.
type Outcome struct {
	Level Level
	// HitCycles is the on-chip latency charged for this access (L1 or
	// L2 hit latency; for memory-bound accesses it is the L1+L2 probe
	// cost incurred before the miss leaves the chip).
	HitCycles uint64
	// MissLineAddr is the line-aligned address to fetch from DRAM when
	// Level == LevelMemory.
	MissLineAddr uint64
	// Writebacks lists dirty line addresses displaced all the way to
	// DRAM by this access (0 or 1 entries in this two-level hierarchy).
	Writebacks []uint64
}

// Hierarchy is a per-core L1D + private L2 stack, write-back and
// write-allocate at both levels, mostly-inclusive (L2 evictions
// back-invalidate L1).
type Hierarchy struct {
	L1 *Cache
	L2 *Cache

	l1Lat uint64
	l2Lat uint64

	// wbScratch avoids a per-access allocation for the common case.
	wbScratch [1]uint64
}

// NewHierarchy builds the two-level stack from the system config.
func NewHierarchy(l1, l2 config.CacheConfig) (*Hierarchy, error) {
	c1, err := New(l1)
	if err != nil {
		return nil, err
	}
	c2, err := New(l2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{L1: c1, L2: c2, l1Lat: l1.HitLatency, l2Lat: l2.HitLatency}, nil
}

// Access performs one load (write=false) or store (write=true) at a byte
// address and returns where it was satisfied plus any DRAM write-backs.
//
// State is updated immediately (allocate-on-miss), which is the standard
// trace-driven simplification; the caller charges miss latency when the
// DRAM round trip completes.
func (h *Hierarchy) Access(addr uint64, write bool) Outcome {
	line := h.L1.LineAddr(addr)
	if h.L1.Lookup(line, write) {
		return Outcome{Level: LevelL1, HitCycles: h.l1Lat}
	}

	out := Outcome{HitCycles: h.l1Lat}
	l2hit := h.L2.Lookup(line, false)

	// Allocate in L1; a dirty L1 victim lands in L2 (it must be there —
	// inclusive — but MarkDirty tolerates its absence after races with
	// L2 evictions by treating it as a DRAM write-back).
	if v, ok := h.L1.Fill(line, write); ok && v.Dirty {
		if !h.L2.MarkDirty(v.Addr) {
			out.Writebacks = append(h.wbScratch[:0], v.Addr)
		}
	}

	if l2hit {
		out.Level = LevelL2
		out.HitCycles += h.l2Lat
		return out
	}

	// L2 miss: allocate; dirty L2 victims drain to DRAM, and the victim
	// is back-invalidated from L1 to preserve inclusion.
	if v, ok := h.L2.Fill(line, false); ok {
		dirtyInL1, _ := h.L1.Invalidate(v.Addr)
		if v.Dirty || dirtyInL1 {
			out.Writebacks = append(out.Writebacks, v.Addr)
		}
	}
	out.Level = LevelMemory
	out.HitCycles += h.l2Lat
	out.MissLineAddr = line
	return out
}

// LLCMisses returns the L2 miss count (the MPKI numerator).
func (h *Hierarchy) LLCMisses() uint64 { return h.L2.Stats.Misses }
