package cache

// State is the serializable content of one cache level: every line's
// tag/valid/dirty/LRU word plus the per-set counters and stats. Geometry
// (sets, ways, line size) is not part of the state — a restore target
// must be built from the same config, and SetState enforces the sizes.
type State struct {
	Tags    []uint64
	Valid   []bool
	Dirty   []bool
	Stamp   []uint64
	Counter []uint64
	Stats   Stats
}

// State captures a deep copy of the cache content.
func (c *Cache) State() State {
	return State{
		Tags:    append([]uint64(nil), c.tags...),
		Valid:   append([]bool(nil), c.valid...),
		Dirty:   append([]bool(nil), c.dirty...),
		Stamp:   append([]uint64(nil), c.stamp...),
		Counter: append([]uint64(nil), c.counter...),
		Stats:   c.Stats,
	}
}

// SetState restores cache content captured from an identically
// configured cache.
func (c *Cache) SetState(st State) {
	if len(st.Tags) != len(c.tags) || len(st.Counter) != len(c.counter) {
		panic("cache: snapshot geometry mismatch")
	}
	copy(c.tags, st.Tags)
	copy(c.valid, st.Valid)
	copy(c.dirty, st.Dirty)
	copy(c.stamp, st.Stamp)
	copy(c.counter, st.Counter)
	c.Stats = st.Stats
}

// HierarchyState bundles both levels of a per-core cache stack.
type HierarchyState struct {
	L1 State
	L2 State
}

// State captures both cache levels.
func (h *Hierarchy) State() HierarchyState {
	return HierarchyState{L1: h.L1.State(), L2: h.L2.State()}
}

// SetState restores both cache levels.
func (h *Hierarchy) SetState(st HierarchyState) {
	h.L1.SetState(st.L1)
	h.L2.SetState(st.L2)
}
