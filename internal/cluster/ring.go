package cluster

import (
	"sort"
	"strconv"
)

// ringReplicas is how many hash points each node contributes to the
// ring. 128 keeps the ownership split within a few percent of even for
// small clusters while staying cheap to rebuild.
const ringReplicas = 128

// ring is a consistent-hash ring over node IDs. Membership is fixed at
// construction (the cluster is statically configured), so every node
// that was given the same member list computes identical placement —
// which is what lets any node forward a request and know the owner
// agrees it is the owner.
type ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // member ids, construction order
}

type ringPoint struct {
	hash uint64
	node string
}

// newRing builds the ring for the given member ids.
func newRing(nodes []string) *ring {
	r := &ring{nodes: append([]string(nil), nodes...)}
	for _, n := range nodes {
		for i := 0; i < ringReplicas; i++ {
			r.points = append(r.points, ringPoint{
				hash: fnv64(n + "#" + strconv.Itoa(i)),
				node: n,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical hash points (vanishingly rare) tie-break by id so
		// placement stays deterministic across nodes.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// owner returns the node owning key: the first ring point clockwise
// from the key's hash.
func (r *ring) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := fnv64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// preference returns every member in ownership order for key: the
// owner first, then each distinct successor. It is the fallback walk —
// when the owner is down, the next node in this order covers for it,
// and a recovered owner knows exactly whose cache to consult.
func (r *ring) preference(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := fnv64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.nodes))
	out := make([]string, 0, len(r.nodes))
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// fnv64 hashes ring labels and keys: FNV-1a followed by an avalanche
// finalizer. Raw FNV-1a on the short "id#replica" labels clusters badly
// in the high bits (a 3-node ring can leave one node under 10% of the
// keyspace); the finalizer spreads every input bit across the word.
// Placement must be identical on every node, so the function is fixed
// here rather than pluggable.
func fnv64(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
