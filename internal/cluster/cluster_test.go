package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestRingDeterministicAndComplete: every node given the same member
// list computes identical placement, and the preference walk names each
// member exactly once, owner first.
func TestRingDeterministicAndComplete(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "e"}
	r1 := newRing(nodes)
	r2 := newRing(append([]string(nil), nodes...))
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("fig|fig10|key-%d", i)
		if r1.owner(key) != r2.owner(key) {
			t.Fatalf("rings disagree on owner of %q", key)
		}
		pref := r1.preference(key)
		if len(pref) != len(nodes) {
			t.Fatalf("preference(%q) = %v, want all %d members", key, pref, len(nodes))
		}
		if pref[0] != r1.owner(key) {
			t.Fatalf("preference(%q) starts with %s, owner is %s", key, pref[0], r1.owner(key))
		}
		seen := map[string]bool{}
		for _, n := range pref {
			if seen[n] {
				t.Fatalf("preference(%q) repeats %s", key, n)
			}
			seen[n] = true
		}
	}
}

// TestRingDistribution: 128 virtual nodes keep the key split across a
// 3-node ring within loose bounds — no node starves or hoards.
func TestRingDistribution(t *testing.T) {
	r := newRing([]string{"a", "b", "c"})
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("cell|WL-%d|%dGb|seed=%d", i%8, 8*(i%4+1), i))]++
	}
	for n, got := range counts {
		frac := float64(got) / keys
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("node %s owns %.1f%% of keys; split %v", n, 100*frac, counts)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d nodes own keys: %v", len(counts), counts)
	}
}

// TestParsePeers covers the accepted grammar and each rejection.
func TestParsePeers(t *testing.T) {
	ms, err := ParsePeers("a=127.0.0.1:1, b=127.0.0.1:2 ,c=host:3,")
	if err != nil {
		t.Fatalf("ParsePeers: %v", err)
	}
	if len(ms) != 3 || ms[0].ID != "a" || ms[1].Addr != "127.0.0.1:2" || ms[2].Addr != "host:3" {
		t.Fatalf("members = %+v", ms)
	}
	for _, bad := range []string{"", "a", "=1:2", "a=", "a=1:2,a=1:3", "a b=1:2"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) accepted", bad)
		}
	}
}

// TestNewValidation: the local node must appear in the member list.
func TestNewValidation(t *testing.T) {
	peers := []Member{{ID: "a", Addr: "1:1"}, {ID: "b", Addr: "1:2"}}
	if _, err := New(Config{NodeID: "z", Peers: peers}); err == nil {
		t.Fatal("New accepted a node id outside the member list")
	}
	if _, err := New(Config{Peers: peers}); err == nil {
		t.Fatal("New accepted an empty node id")
	}
	c, err := New(Config{NodeID: "a", Peers: peers})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if !c.Enabled() || c.FanoutEnabled() {
		t.Fatalf("Enabled=%t FanoutEnabled=%t, want true/false without a fan-out cap", c.Enabled(), c.FanoutEnabled())
	}
	var nilC *Cluster
	if nilC.Enabled() || nilC.FanoutEnabled() {
		t.Fatal("nil cluster claims to be enabled")
	}
}

// TestHealthHysteresis: a peer flips down only after DownAfter
// consecutive failures and back up only after UpAfter successes, via
// the real prober against a flappable /healthz.
func TestHealthHysteresis(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			t.Errorf("probe hit %s", r.URL.Path)
		}
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	addr := strings.TrimPrefix(srv.URL, "http://")
	c, err := New(Config{
		NodeID:        "self",
		Peers:         []Member{{ID: "self", Addr: "127.0.0.1:1"}, {ID: "p", Addr: addr}},
		ProbeInterval: 10 * time.Millisecond,
		DownAfter:     2,
		UpAfter:       2,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.Start()
	defer c.Stop()

	waitAlive := func(want bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if c.Alive("p") == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("peer never became alive=%t", want)
	}

	waitAlive(true)
	healthy.Store(false)
	waitAlive(false)

	// One success must not resurrect it (UpAfter=2): feed exactly one
	// passive success while probes keep failing is racy, so instead
	// check the state machine directly.
	p := c.peers["p"]
	p.mu.Lock()
	up, fails := p.up, p.consecFail
	p.mu.Unlock()
	if up || fails < 2 {
		t.Fatalf("after flapping down: up=%t consecFail=%d", up, fails)
	}

	healthy.Store(true)
	waitAlive(true)
	if c.Snapshot().Peers[0].Transitions < 2 {
		t.Fatalf("transitions = %d, want >= 2", c.Snapshot().Peers[0].Transitions)
	}
}

// TestRouteOwnerSkipsDownNodes: placement consults liveness — a down
// owner's keys route to its successor, and everything routes locally
// when every remote is down.
func TestRouteOwnerSkipsDownNodes(t *testing.T) {
	peers := []Member{{ID: "a", Addr: "1:1"}, {ID: "b", Addr: "1:2"}, {ID: "c", Addr: "1:3"}}
	c, err := New(Config{NodeID: "a", Peers: peers, DownAfter: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// Find a key owned by a remote node.
	key, remote := "", ""
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if o := c.Owner(k); o != "a" {
			key, remote = k, o
			break
		}
	}
	if key == "" {
		t.Fatal("no remotely-owned key in 200 probes")
	}
	if m, self := c.RouteOwner(key); self || m.ID != remote {
		t.Fatalf("RouteOwner(%q) = %v self=%t, want %s", key, m, self, remote)
	}

	// Kill the owner: the route moves to the key's next alive preference.
	c.ObservePeer(remote, false)
	m, self := c.RouteOwner(key)
	if m.ID == remote {
		t.Fatalf("RouteOwner still targets down node %s", remote)
	}
	want := ""
	for _, id := range c.Preference(key) {
		if id != remote {
			want = id
			break
		}
	}
	if want == "a" != self || (!self && m.ID != want) {
		t.Fatalf("RouteOwner(%q) = %v self=%t, want %s", key, m, self, want)
	}

	// Kill everything: always handle locally rather than refuse.
	c.ObservePeer("b", false)
	c.ObservePeer("c", false)
	if _, self := c.RouteOwner(key); !self {
		t.Fatal("RouteOwner refused to fall back to self with all peers down")
	}
	if _, ok := c.FallbackOwner(key); ok {
		t.Fatal("FallbackOwner found an alive peer with all peers down")
	}
}

// TestSlotAccounting: fan-out slots are a bounded token pool per peer;
// exhausting them makes acquireSlot decline rather than block.
func TestSlotAccounting(t *testing.T) {
	peers := []Member{{ID: "a", Addr: "1:1"}, {ID: "b", Addr: "1:2"}}
	c, err := New(Config{NodeID: "a", Peers: peers, FanoutPerPeer: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if !c.FanoutEnabled() {
		t.Fatal("fan-out not enabled")
	}
	p1, l1 := c.acquireSlot()
	p2, l2 := c.acquireSlot()
	if p1 == nil || p2 == nil || l1 == l2 {
		t.Fatalf("acquire: %v/%d %v/%d", p1, l1, p2, l2)
	}
	if p3, _ := c.acquireSlot(); p3 != nil {
		t.Fatal("acquired a third slot from a 2-slot peer")
	}
	c.releaseSlot(p1, l1)
	if p4, l4 := c.acquireSlot(); p4 == nil || l4 != l1 {
		t.Fatalf("released slot not reacquired: %v/%d", p4, l4)
	}
	c.ObservePeer("b", false)
	c.ObservePeer("b", false)
	if p5, _ := c.acquireSlot(); p5 != nil {
		t.Fatal("acquired a slot on a down peer")
	}
}
