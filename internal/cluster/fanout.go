package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"refsched/internal/core"
	"refsched/internal/harness"
	"refsched/internal/runner"
)

// CellRequest is the wire form of one fan-out cell: the cell's sweep
// coordinates plus every Params knob that changes its simulated result
// (exactly the fields harness.Fingerprint covers). The executing node
// rebuilds the cell from coordinates alone, which is why only cells
// marked runner.Cell.Remotable — built by the standard bundle
// pipeline — may be dispatched.
type CellRequest struct {
	Mix     string `json:"mix"`
	Density string `json:"density"`
	Bundle  string `json:"bundle"`
	Hot     bool   `json:"hot"`

	Scale          uint64  `json:"scale"`
	FootprintScale float64 `json:"footprint_scale"`
	WarmupWindows  int     `json:"warmup_windows"`
	MeasureWindows int     `json:"measure_windows"`
	Seed           uint64  `json:"seed"`
	Mode           string  `json:"mode,omitempty"`

	Fig      string `json:"fig"`              // coordinating sweep, for logs/timeline
	Origin   string `json:"origin"`           // coordinating node id
	ReqID    string `json:"req_id,omitempty"` // coordinating request id, for trace joins
	Priority int    `json:"priority"`         // coordinating job priority, honoured by the remote gate
}

// Params rebuilds the harness parameters the cell must run under. The
// executor owns scheduling-side knobs (contexts, gate, parallelism);
// only result-determining fields travel.
func (cr CellRequest) Params() harness.Params {
	return harness.Params{
		Scale:          cr.Scale,
		FootprintScale: cr.FootprintScale,
		WarmupWindows:  cr.WarmupWindows,
		MeasureWindows: cr.MeasureWindows,
		Seed:           cr.Seed,
		Mode:           cr.Mode,
		Parallelism:    1,
	}
}

// CellSnapshotHeader marks a /v1/cells failure response whose body is
// an encoded core snapshot of the cell's partial progress (the
// executing node was draining or lost its caller mid-run and
// checkpointed instead of discarding the work). The coordinator
// resumes the cell locally from the snapshot rather than recomputing
// it from cycle zero.
const CellSnapshotHeader = "X-Refsched-Cell-Snapshot"

// cellSnapshotError is runRemoteCell's failure carrying the partial
// work back: the dispatch did not complete remotely, but the peer
// shipped a checkpoint to continue from.
type cellSnapshotError struct {
	peer string
	cell runner.Cell
	st   *core.SystemState
}

func (e *cellSnapshotError) Error() string {
	return fmt.Sprintf("cluster: peer %s returned cell %s with a resume snapshot", e.peer, e.cell)
}

// CellEvent describes one completed remote cell dispatch for the
// coordinator's timeline: which cell ran where, on which fan-out lane,
// over what wall-clock interval, and whether the remote execution
// succeeded (ok=false means the cell was reclaimed and re-run locally).
type CellEvent struct {
	Cell       runner.Cell
	Peer       string
	Lane       int // global fan-out lane: peer index × per-peer cap + slot
	Start, End time.Time
	OK         bool
	Err        error
}

// CellObserver receives one CellEvent per remote dispatch attempt. It
// may be called concurrently from multiple workers.
type CellObserver func(CellEvent)

// RunCells is the cluster-aware harness.CellRunner core: it executes a
// sweep's cells with remotable cells opportunistically dispatched to
// alive peers (bounded by the per-peer fan-out cap) and everything
// else — non-remotable cells, dispatch failures, and overflow beyond
// remote capacity — run locally under the original gate.
//
// The merge is byte-identical to a local run: a remote cell returns its
// core.Report as JSON, which round-trips float64 exactly (the same
// invariant the journal resume path relies on), and results land at
// their submission index like any RunBatch. Determinism is preserved
// because a dispatched cell is re-created from its coordinates with the
// identical seed, and a failed dispatch falls back to the identical
// local closure.
//
// Scheduling: the pool is widened by the total remote slot count so
// local workers stay busy while remote cells are in flight. The
// caller's Gate is lifted out of opts and applied only around local
// execution — remote cells consume the remote node's budget (that is
// the point of fan-out), so they bypass the local gate entirely.
func (c *Cluster) RunCells(ctx context.Context, figID string, p harness.Params, reqID string, priority int, jobs []runner.Job[*core.Report], opts runner.Options[*core.Report], obs CellObserver) (*runner.Batch[*core.Report], error) {
	if !c.FanoutEnabled() || p.Mode == harness.ModeApprox {
		// Approx cells cost microseconds; a network round-trip per cell
		// would be pure overhead.
		return runner.RunBatch(ctx, jobs, opts)
	}

	gate := opts.Gate
	opts.Gate = nil
	runLocal := func(run func() (*core.Report, error)) (*core.Report, error) {
		if gate != nil {
			release, err := gate(ctx)
			if err != nil {
				return nil, err
			}
			defer release()
		}
		return run()
	}

	wrapped := make([]runner.Job[*core.Report], len(jobs))
	for i, j := range jobs {
		local := j.Run
		wj := j
		if j.Cell.Remotable {
			cell := j.Cell
			cr := CellRequest{
				Mix: cell.Mix, Density: cell.Density, Bundle: cell.Bundle, Hot: cell.Hot,
				Scale: p.Scale, FootprintScale: p.FootprintScale,
				WarmupWindows: p.WarmupWindows, MeasureWindows: p.MeasureWindows,
				Seed: p.Seed, Mode: p.Mode,
				Fig: figID, Origin: c.self.ID, ReqID: reqID, Priority: priority,
			}
			wj.Run = func() (*core.Report, error) {
				if pr, lane := c.acquireSlot(); pr != nil {
					rep, err := c.runRemoteCell(ctx, pr, cr, cell, lane, obs)
					c.releaseSlot(pr, lane)
					if err == nil {
						return rep, nil
					}
					c.CellsReclaimed.Add(1)
					// A peer that checkpointed before failing ships its
					// partial progress; continue the simulation locally
					// from the snapshot instead of from cycle zero. The
					// resumed result is byte-identical either way, so a
					// restore failure just falls through to the full
					// local re-run.
					var se *cellSnapshotError
					if errors.As(err, &se) {
						if rep, rerr := runLocal(func() (*core.Report, error) {
							return resumeCell(ctx, se.st)
						}); rerr == nil {
							c.CellsResumed.Add(1)
							return rep, nil
						}
					}
				}
				return runLocal(local)
			}
		} else {
			wj.Run = func() (*core.Report, error) { return runLocal(local) }
		}
		wrapped[i] = wj
	}

	opts.Parallelism = runner.Parallelism(opts.Parallelism) + len(c.order)*c.cfg.FanoutPerPeer
	return runner.RunBatch(ctx, wrapped, opts)
}

// resumeCell continues a peer-shipped cell snapshot to completion on
// this node. The snapshot carries the full run interval and leg state,
// so a plain Resume with no further checkpointing finishes the cell
// and yields the byte-identical report.
func resumeCell(ctx context.Context, st *core.SystemState) (*core.Report, error) {
	sys, err := core.Restore(st, core.Options{Ctx: ctx})
	if err != nil {
		return nil, err
	}
	return sys.Resume(0, nil)
}

// acquireSlot picks the alive peer with the most free fan-out capacity
// and takes one of its slot tokens, without blocking: when every peer
// is saturated (or down) the cell simply runs locally. It returns the
// chosen peer and the global lane index, or (nil, 0).
func (c *Cluster) acquireSlot() (*peer, int) {
	var best *peer
	for _, id := range c.order {
		p := c.peers[id]
		if !p.alive() || len(p.slots) == 0 {
			continue
		}
		if best == nil || len(p.slots) > len(best.slots) {
			best = p
		}
	}
	if best == nil {
		return nil, 0
	}
	select {
	case s := <-best.slots:
		return best, best.laneBase + s
	default:
		return nil, 0 // lost the race for the last slot
	}
}

// releaseSlot returns lane's token to p.
func (c *Cluster) releaseSlot(p *peer, lane int) {
	p.slots <- lane - p.laneBase
}

// runRemoteCell executes one remotable cell on p via POST /v1/cells and
// decodes the report. Any failure — transport, non-200, decode — is
// returned for local reclamation; transport failures additionally count
// against the peer's health so a dead node is deserted quickly, without
// waiting for the prober.
func (c *Cluster) runRemoteCell(ctx context.Context, p *peer, cr CellRequest, cell runner.Cell, lane int, obs CellObserver) (rep *core.Report, err error) {
	start := time.Now()
	defer func() {
		if obs != nil {
			obs(CellEvent{Cell: cell, Peer: p.id, Lane: lane, Start: start, End: time.Now(), OK: err == nil, Err: err})
		}
	}()

	body, err := json.Marshal(cr)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+p.addr+"/v1/cells", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	c.CellsDispatched.Add(1)
	p.cellsTo.Add(1)
	resp, err := c.client.Do(req)
	if err != nil {
		c.ObservePeer(p.id, false)
		return nil, fmt.Errorf("cluster: dispatch %s to %s: %w", cell, p.id, err)
	}
	defer resp.Body.Close()
	c.ObservePeer(p.id, true)
	if resp.StatusCode != http.StatusOK {
		if resp.Header.Get(CellSnapshotHeader) != "" {
			// The peer could not finish but checkpointed: the body is the
			// cell's partial progress, decoded here and resumed by the
			// caller. A snapshot that does not decode degrades to the
			// plain rejection below.
			st, derr := core.DecodeSnapshot(io.LimitReader(resp.Body, 64<<20), "peer "+p.id)
			if derr == nil {
				return nil, &cellSnapshotError{peer: p.id, cell: cell, st: st}
			}
			return nil, fmt.Errorf("cluster: peer %s shipped an unreadable cell snapshot for %s: %w",
				p.id, cell, derr)
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("cluster: peer %s rejected cell %s: %s (%s)",
			p.id, cell, resp.Status, bytes.TrimSpace(msg))
	}
	var out core.Report
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&out); err != nil {
		return nil, fmt.Errorf("cluster: decoding cell %s from %s: %w", cell, p.id, err)
	}
	return &out, nil
}
