// Package cluster turns a set of independently-started refschedd
// processes into one serving surface. Membership is static: every node
// is launched with the same -peers list and computes the same
// consistent-hash ring, so any node can answer "who owns this key"
// without a coordination service. Three mechanisms build on that
// agreement:
//
//   - request routing: a job or figure GET arriving at a non-owner is
//     forwarded to the first *alive* node in the key's ownership order,
//     concentrating cache hits and single-flight dedup on one node;
//   - cross-shard cache fallback: a node about to simulate first asks
//     the key's owner (one GET, never a broadcast) whether it already
//     holds the rendered result;
//   - cell fan-out: the owner of a sweep dispatches its independent
//     simulation cells to peers with spare capacity and merges the
//     reports byte-identically, re-running any failed or unreachable
//     peer's cells locally so a degraded cluster still completes.
//
// Health is probed actively (/healthz with consecutive-failure
// hysteresis) and passively (forwarding errors count against the peer),
// and every placement decision consults liveness, so a down node is
// simply skipped in its keys' preference order until it recovers.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Member is one statically-configured cluster node.
type Member struct {
	ID   string // unique node name, as given to -node-id
	Addr string // host:port of its HTTP listener
}

// ParsePeers parses a -peers flag value: comma-separated id=host:port
// entries naming the entire cluster, including the local node.
func ParsePeers(spec string) ([]Member, error) {
	var out []Member
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		id, addr = strings.TrimSpace(id), strings.TrimSpace(addr)
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=host:port)", part)
		}
		if strings.ContainsAny(id, "=,/ ") {
			return nil, fmt.Errorf("cluster: bad peer id %q", id)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		seen[id] = true
		out = append(out, Member{ID: id, Addr: addr})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: -peers %q names no members", spec)
	}
	return out, nil
}

// Config configures one node's view of the cluster.
type Config struct {
	// NodeID names the local node; it must appear in Peers.
	NodeID string
	// Peers is the full static membership, including the local node.
	Peers []Member
	// FanoutPerPeer caps concurrently dispatched remote cells per peer
	// (<= 0 disables cell fan-out; routing and cache fallback still
	// work).
	FanoutPerPeer int
	// ProbeInterval is the /healthz probing period (0 = 500ms).
	ProbeInterval time.Duration
	// DownAfter / UpAfter are the hysteresis thresholds: consecutive
	// probe failures before a peer is marked down, and consecutive
	// successes before a down peer is trusted again (0 = 2 each).
	DownAfter, UpAfter int
}

// peer is the tracked state of one remote member.
type peer struct {
	id   string
	addr string

	mu          sync.Mutex
	up          bool
	consecFail  int
	consecOK    int
	probes      uint64
	failures    uint64
	transitions uint64

	forwarded atomic.Uint64 // jobs/requests forwarded to this peer
	cellsTo   atomic.Uint64 // fan-out cells dispatched to this peer
	slots     chan int      // fan-out slot tokens (lane indices)
	laneBase  int           // global lane offset for timeline tids
}

// alive reports the hysteresis state.
func (p *peer) alive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.up
}

// observe feeds one probe or passive forwarding outcome into the
// hysteresis state machine.
func (p *peer) observe(ok bool, downAfter, upAfter int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.probes++
	if ok {
		p.consecOK++
		p.consecFail = 0
		if !p.up && p.consecOK >= upAfter {
			p.up = true
			p.transitions++
		}
		return
	}
	p.failures++
	p.consecFail++
	p.consecOK = 0
	if p.up && p.consecFail >= downAfter {
		p.up = false
		p.transitions++
	}
}

// Cluster is one node's membership, ring, health, and fan-out state.
// A nil *Cluster is valid and means "clustering disabled": Enabled
// returns false and the service skips every cluster code path, keeping
// single-node behavior byte-identical.
type Cluster struct {
	cfg    Config
	self   Member
	ring   *ring
	peers  map[string]*peer // remote members only
	order  []string         // remote member ids, membership order
	client *http.Client     // forwards and cell dispatch (no global timeout; callers bound via ctx)
	probe  *http.Client     // health probes (short timeout)

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// Counters the service surfaces in /statsz and /metricsz. The
	// forwarding/cache ones are incremented by the service (it owns
	// those code paths); the fan-out ones by this package.
	JobsForwarded     atomic.Uint64 // requests this node forwarded to an owner
	JobsReceived      atomic.Uint64 // forwarded requests this node handled
	ForwardFallbacks  atomic.Uint64 // forwards that failed over to local handling
	RemoteCacheHits   atomic.Uint64 // local misses answered by a peer's cache
	RemoteCacheMisses atomic.Uint64 // cross-shard lookups that found nothing
	CacheServed       atomic.Uint64 // /v1/cache lookups this node answered with a hit
	CellsDispatched   atomic.Uint64 // fan-out cells sent to peers
	CellsReclaimed    atomic.Uint64 // dispatched cells re-run locally after peer failure
	CellsResumed      atomic.Uint64 // reclaimed cells resumed from a peer-shipped snapshot
	CellsExecuted     atomic.Uint64 // /v1/cells requests this node simulated
}

// New validates cfg and builds the node's cluster state. Probing does
// not start until Start.
func New(cfg Config) (*Cluster, error) {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 2
	}
	if cfg.UpAfter <= 0 {
		cfg.UpAfter = 2
	}
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("cluster: -node-id is required with -peers")
	}
	c := &Cluster{
		cfg:   cfg,
		peers: map[string]*peer{},
		stop:  make(chan struct{}),
		client: &http.Client{
			Transport: &http.Transport{MaxIdleConnsPerHost: 16},
		},
		probe: &http.Client{Timeout: 2 * time.Second},
	}
	ids := make([]string, 0, len(cfg.Peers))
	for _, m := range cfg.Peers {
		ids = append(ids, m.ID)
		if m.ID == cfg.NodeID {
			c.self = m
			continue
		}
		p := &peer{id: m.ID, addr: m.Addr, up: true, laneBase: len(c.order) * max(cfg.FanoutPerPeer, 0)}
		if cfg.FanoutPerPeer > 0 {
			p.slots = make(chan int, cfg.FanoutPerPeer)
			for s := 0; s < cfg.FanoutPerPeer; s++ {
				p.slots <- s
			}
		}
		c.peers[m.ID] = p
		c.order = append(c.order, m.ID)
	}
	if c.self.ID == "" {
		return nil, fmt.Errorf("cluster: -node-id %q is not in -peers (members: %v)", cfg.NodeID, ids)
	}
	c.ring = newRing(ids)
	return c, nil
}

// Enabled reports whether clustering is configured; safe on nil.
func (c *Cluster) Enabled() bool { return c != nil }

// FanoutEnabled reports whether cell fan-out is configured: a positive
// per-peer cap and at least one remote member. Safe on nil.
func (c *Cluster) FanoutEnabled() bool {
	return c != nil && c.cfg.FanoutPerPeer > 0 && len(c.order) > 0
}

// Self returns the local member.
func (c *Cluster) Self() Member { return c.self }

// Members returns the full membership in configuration order.
func (c *Cluster) Members() []Member { return append([]Member(nil), c.cfg.Peers...) }

// Owner returns the ring owner of key, ignoring liveness.
func (c *Cluster) Owner(key string) string { return c.ring.owner(key) }

// Preference returns key's full ownership order, ignoring liveness.
func (c *Cluster) Preference(key string) []string { return c.ring.preference(key) }

// RouteOwner resolves where a request for key should be handled: the
// first alive node in the key's ownership order. It returns the local
// member (and self=true) when that node is this one — or when every
// remote candidate ahead of it is down, because handling locally is
// always better than refusing.
func (c *Cluster) RouteOwner(key string) (m Member, self bool) {
	for _, id := range c.ring.preference(key) {
		if id == c.self.ID {
			return c.self, true
		}
		if p := c.peers[id]; p != nil && p.alive() {
			return Member{ID: p.id, Addr: p.addr}, false
		}
	}
	return c.self, true
}

// FallbackOwner resolves the peer a local cache miss for key should
// consult: the first alive node in the ownership order that is not this
// node. This covers both directions of degradation — when this node is
// covering for a down owner it asks the owner's successor chain, and
// when this node is the owner freshly restarted with a cold cache it
// asks whichever successor covered while it was away. ok is false when
// no remote candidate is alive.
func (c *Cluster) FallbackOwner(key string) (Member, bool) {
	for _, id := range c.ring.preference(key) {
		if id == c.self.ID {
			continue
		}
		if p := c.peers[id]; p != nil && p.alive() {
			return Member{ID: p.id, Addr: p.addr}, true
		}
	}
	return Member{}, false
}

// Alive reports whether id is this node or a remote peer currently
// considered up.
func (c *Cluster) Alive(id string) bool {
	if id == c.self.ID {
		return true
	}
	p := c.peers[id]
	return p != nil && p.alive()
}

// ObservePeer feeds a passive health observation (a forwarding success
// or transport failure) into id's hysteresis state.
func (c *Cluster) ObservePeer(id string, ok bool) {
	if p := c.peers[id]; p != nil {
		p.observe(ok, c.cfg.DownAfter, c.cfg.UpAfter)
	}
}

// MarkForwarded counts a request forwarded to peer id.
func (c *Cluster) MarkForwarded(id string) {
	c.JobsForwarded.Add(1)
	if p := c.peers[id]; p != nil {
		p.forwarded.Add(1)
	}
}

// Client returns the HTTP client used for forwarding and cell
// dispatch. It has no global timeout; callers bound requests with a
// context.
func (c *Cluster) Client() *http.Client { return c.client }

// Start launches the health prober. Stop terminates it.
func (c *Cluster) Start() {
	if c == nil || len(c.peers) == 0 {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.probeAll()
			}
		}
	}()
}

// Stop terminates probing and waits for the prober to exit. Safe on
// nil and safe to call more than once.
func (c *Cluster) Stop() {
	if c == nil {
		return
	}
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// probeAll probes every remote peer's /healthz concurrently and feeds
// the results into the hysteresis state.
func (c *Cluster) probeAll() {
	var wg sync.WaitGroup
	for _, p := range c.peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			p.observe(c.probeOne(p), c.cfg.DownAfter, c.cfg.UpAfter)
		}(p)
	}
	wg.Wait()
}

// probeOne performs a single /healthz round-trip. A draining node
// answers 503 and is counted down, which is exactly right: it must stop
// receiving forwards before it exits.
func (c *Cluster) probeOne(p *peer) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.probe.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+p.addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.probe.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// PeerStatus is one remote member's health and traffic snapshot.
type PeerStatus struct {
	ID          string `json:"id"`
	Addr        string `json:"addr"`
	Up          bool   `json:"up"`
	Probes      uint64 `json:"probes"`
	Failures    uint64 `json:"failures"`
	Transitions uint64 `json:"transitions"`
	Forwarded   uint64 `json:"forwarded_to"`
	CellsTo     uint64 `json:"cells_dispatched_to"`
	FreeSlots   int    `json:"free_fanout_slots"`
}

// Stats is the cluster block surfaced in /statsz.
type Stats struct {
	NodeID            string       `json:"node_id"`
	Peers             []PeerStatus `json:"peers"`
	JobsForwarded     uint64       `json:"jobs_forwarded"`
	JobsReceived      uint64       `json:"jobs_received"`
	ForwardFallbacks  uint64       `json:"forward_fallbacks"`
	RemoteCacheHits   uint64       `json:"remote_cache_hits"`
	RemoteCacheMisses uint64       `json:"remote_cache_misses"`
	CacheServed       uint64       `json:"cache_lookups_served"`
	CellsDispatched   uint64       `json:"fanout_cells_dispatched"`
	CellsReclaimed    uint64       `json:"fanout_cells_reclaimed"`
	CellsResumed      uint64       `json:"fanout_cells_resumed"`
	CellsExecuted     uint64       `json:"remote_cells_executed"`
}

// Snapshot returns the node's current cluster stats.
func (c *Cluster) Snapshot() Stats {
	s := Stats{
		NodeID:            c.self.ID,
		JobsForwarded:     c.JobsForwarded.Load(),
		JobsReceived:      c.JobsReceived.Load(),
		ForwardFallbacks:  c.ForwardFallbacks.Load(),
		RemoteCacheHits:   c.RemoteCacheHits.Load(),
		RemoteCacheMisses: c.RemoteCacheMisses.Load(),
		CacheServed:       c.CacheServed.Load(),
		CellsDispatched:   c.CellsDispatched.Load(),
		CellsReclaimed:    c.CellsReclaimed.Load(),
		CellsResumed:      c.CellsResumed.Load(),
		CellsExecuted:     c.CellsExecuted.Load(),
	}
	ids := append([]string(nil), c.order...)
	sort.Strings(ids)
	for _, id := range ids {
		p := c.peers[id]
		p.mu.Lock()
		ps := PeerStatus{
			ID: p.id, Addr: p.addr, Up: p.up,
			Probes: p.probes, Failures: p.failures, Transitions: p.transitions,
		}
		p.mu.Unlock()
		ps.Forwarded = p.forwarded.Load()
		ps.CellsTo = p.cellsTo.Load()
		ps.FreeSlots = len(p.slots)
		s.Peers = append(s.Peers, ps)
	}
	return s
}
