package cpu

import (
	"testing"

	"refsched/internal/cache"
	"refsched/internal/config"
	"refsched/internal/dram"
	"refsched/internal/mc"
	"refsched/internal/sim"
	"refsched/internal/workload"
)

// scriptTask replays a fixed list of segments (cycling at the end) and
// identity-translates addresses.
type scriptTask struct {
	id   int
	segs []struct {
		instrs uint64
		acc    workload.Access
	}
	pos    int
	pushed []struct {
		instrs uint64
		acc    workload.Access
	}
	stats TaskStats
}

func (s *scriptTask) ID() int { return s.id }
func (s *scriptTask) Next() (uint64, workload.Access) {
	if n := len(s.pushed); n > 0 {
		seg := s.pushed[n-1]
		s.pushed = s.pushed[:n-1]
		return seg.instrs, seg.acc
	}
	seg := s.segs[s.pos%len(s.segs)]
	s.pos++
	return seg.instrs, seg.acc
}
func (s *scriptTask) PushBack(instrs uint64, acc workload.Access) {
	s.pushed = append(s.pushed, struct {
		instrs uint64
		acc    workload.Access
	}{instrs, acc})
}
func (s *scriptTask) Translate(v uint64) (uint64, uint64) { return v, 0 }
func (s *scriptTask) Stats() *TaskStats                   { return &s.stats }

func seg(instrs uint64, addr uint64, write, dep bool) struct {
	instrs uint64
	acc    workload.Access
} {
	return struct {
		instrs uint64
		acc    workload.Access
	}{instrs, workload.Access{VAddr: addr, Write: write, Dependent: dep}}
}

// fakeMem satisfies Memory with a fixed service latency, recording
// requests and routing completions back via the owner words (the role
// the system dispatcher plays in the real machine).
type fakeMem struct {
	eng     *sim.Engine
	core    *Core
	latency uint64
	reads   []*mc.Request
	writes  []*mc.Request
	// rejectReads forces SubmitRead to fail until waiters are resubmitted.
	rejectReads bool
	readWaiters []*mc.Request
}

func (m *fakeMem) SubmitRead(r *mc.Request) bool {
	if m.rejectReads {
		return false
	}
	m.reads = append(m.reads, r)
	m.eng.Schedule(m.latency, func() { m.core.MissComplete(r.Owner.Miss, r.Owner.Epoch) })
	return true
}
func (m *fakeMem) WhenReadSpace(_ int, r *mc.Request) { m.readWaiters = append(m.readWaiters, r) }
func (m *fakeMem) SubmitWrite(r *mc.Request) bool {
	m.writes = append(m.writes, r)
	return true
}
func (m *fakeMem) WhenWriteSpace(int, *mc.Request) {}
func (m *fakeMem) Decode(addr uint64) dram.Coord {
	return dram.Coord{Bank: int(addr>>12) & 7, Row: addr >> 15}
}

func newTestCore(t *testing.T, mem Memory, mlp int) *Core {
	t.Helper()
	fm := mem.(*fakeMem)
	hier, err := cache.NewHierarchy(
		config.CacheConfig{SizeBytes: 1024, Ways: 2, LineBytes: 64, HitLatency: 2},
		config.CacheConfig{SizeBytes: 8192, Ways: 4, LineBytes: 64, HitLatency: 20},
	)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCore(0, fm.eng, mem, hier, 1.0, mlp, 128)
	fm.core = c
	fm.eng.SetExec(c.Exec)
	return c
}

func TestCoreComputeOnlyIPC(t *testing.T) {
	eng := sim.NewEngine()
	mem := &fakeMem{eng: eng, latency: 100}
	c := newTestCore(t, mem, 8)
	// A task that computes 1000 instructions then touches one hot line.
	task := &scriptTask{segs: []struct {
		instrs uint64
		acc    workload.Access
	}{seg(1000, 0x100, false, false)}}

	endAt := sim.Time(0)
	c.Run(task, 100000, func(_ *Core, at sim.Time) { endAt = at })
	eng.Run()
	if endAt < 100000 {
		t.Fatalf("quantum ended at %d, want >= 100000", endAt)
	}
	ipc := task.stats.IPC()
	// CPI 1.0 with rare misses: IPC just under 1.
	if ipc < 0.9 || ipc > 1.01 {
		t.Fatalf("IPC = %v, want ~1.0", ipc)
	}
	if task.stats.Quanta != 1 {
		t.Fatalf("quanta = %d", task.stats.Quanta)
	}
}

func TestCoreQuantumClipsRunahead(t *testing.T) {
	eng := sim.NewEngine()
	mem := &fakeMem{eng: eng, latency: 100}
	c := newTestCore(t, mem, 8)
	// Huge compute segment: must be clipped exactly at the boundary.
	task := &scriptTask{segs: []struct {
		instrs uint64
		acc    workload.Access
	}{seg(1<<30, 0x100, false, false)}}

	endAt := sim.Time(0)
	c.Run(task, 5000, func(_ *Core, at sim.Time) { endAt = at })
	eng.Run()
	if endAt != 5000 {
		t.Fatalf("clipped quantum ended at %d, want exactly 5000", endAt)
	}
	if task.stats.Instructions != 5000 { // CPI 1.0
		t.Fatalf("instructions = %d, want 5000", task.stats.Instructions)
	}
	if len(task.pushed) != 1 {
		t.Fatal("partial segment not pushed back")
	}
}

func TestCoreMissBlocksAtMLP(t *testing.T) {
	eng := sim.NewEngine()
	mem := &fakeMem{eng: eng, latency: 10000}
	c := newTestCore(t, mem, 2) // MLP 2
	// Each segment touches a distinct cold line -> every access misses.
	var segs []struct {
		instrs uint64
		acc    workload.Access
	}
	for i := 0; i < 64; i++ {
		segs = append(segs, seg(10, uint64(0x100000+i*4096), false, false))
	}
	task := &scriptTask{segs: segs}
	c.Run(task, 1<<30, nil)
	eng.RunUntil(5000)
	// Before any completions, exactly MLP misses are outstanding.
	if len(mem.reads) != 2 {
		t.Fatalf("outstanding reads = %d, want MLP=2", len(mem.reads))
	}
	eng.RunUntil(15000) // first completion at 10000 frees one slot
	if len(mem.reads) < 3 {
		t.Fatalf("after first completion, reads = %d, want more issued", len(mem.reads))
	}
	if task.stats.MemStall == 0 {
		t.Fatal("no memory stall recorded despite MLP blocking")
	}
}

func TestCoreDependentSerializes(t *testing.T) {
	eng := sim.NewEngine()
	mem := &fakeMem{eng: eng, latency: 1000}
	c := newTestCore(t, mem, 8)
	var segs []struct {
		instrs uint64
		acc    workload.Access
	}
	for i := 0; i < 8; i++ {
		segs = append(segs, seg(1, uint64(0x200000+i*4096), false, true))
	}
	task := &scriptTask{segs: segs}
	c.Run(task, 20000, nil)
	eng.RunUntil(500)
	if len(mem.reads) != 1 {
		t.Fatalf("dependent chain issued %d reads at once, want 1", len(mem.reads))
	}
	eng.RunUntil(1500)
	if len(mem.reads) != 2 {
		t.Fatalf("after first load returned, reads = %d, want 2", len(mem.reads))
	}
	// Each link costs ~latency: after 8 full latencies all 8 links have
	// issued (the tiny L2 may re-miss early links, so >= 8).
	eng.RunUntil(8 * 1100)
	if len(mem.reads) < 8 {
		t.Fatalf("chain incomplete: %d reads", len(mem.reads))
	}
}

func TestCoreStoreMissDoesNotBlockRetirement(t *testing.T) {
	eng := sim.NewEngine()
	mem := &fakeMem{eng: eng, latency: 100000}
	c := newTestCore(t, mem, 8)
	segs := []struct {
		instrs uint64
		acc    workload.Access
	}{
		seg(10, 0x300000, true, false), // store miss
		seg(1000, 0x100, false, false), // compute + hot line
	}
	task := &scriptTask{segs: segs}
	endAt := sim.Time(0)
	c.Run(task, 3000, func(_ *Core, at sim.Time) { endAt = at })
	eng.Run()
	// The store's 100k-cycle fill must not stall the 3000-cycle quantum.
	if endAt != 3000 {
		t.Fatalf("store miss stalled retirement: quantum ended %d", endAt)
	}
}

func TestCoreWritebacksGoToMemory(t *testing.T) {
	eng := sim.NewEngine()
	mem := &fakeMem{eng: eng, latency: 10}
	c := newTestCore(t, mem, 8)
	// Dirty many distinct lines mapping to the same tiny L2: evictions
	// must surface as posted writes.
	var segs []struct {
		instrs uint64
		acc    workload.Access
	}
	for i := 0; i < 64; i++ {
		segs = append(segs, seg(5, uint64(0x400000+i*8192), true, false))
	}
	task := &scriptTask{segs: segs}
	c.Run(task, 1<<20, nil)
	eng.RunUntil(1 << 20)
	if len(mem.writes) == 0 {
		t.Fatal("no writebacks reached memory")
	}
}

func TestCoreBackpressureRetries(t *testing.T) {
	eng := sim.NewEngine()
	mem := &fakeMem{eng: eng, latency: 50, rejectReads: true}
	c := newTestCore(t, mem, 8)
	task := &scriptTask{segs: []struct {
		instrs uint64
		acc    workload.Access
	}{seg(1, 0x500000, false, true)}}
	c.Run(task, 5000, nil)
	eng.RunUntil(100)
	if len(mem.reads) != 0 || len(mem.readWaiters) == 0 {
		t.Fatalf("reject path: reads=%d waiters=%d", len(mem.reads), len(mem.readWaiters))
	}
	// Open the queue and resubmit waiters: the read must land.
	mem.rejectReads = false
	for _, r := range mem.readWaiters {
		mem.SubmitRead(r)
	}
	eng.RunUntil(1000)
	if len(mem.reads) != 1 {
		t.Fatalf("retry failed: reads=%d", len(mem.reads))
	}
}

func TestCoreEpochIgnoresStaleCompletions(t *testing.T) {
	eng := sim.NewEngine()
	mem := &fakeMem{eng: eng, latency: 10000}
	c := newTestCore(t, mem, 1)
	task1 := &scriptTask{id: 1, segs: []struct {
		instrs uint64
		acc    workload.Access
	}{seg(1, 0x600000, false, true)}}
	c.Run(task1, 1<<20, nil)
	eng.RunUntil(5) // task1 blocked on its dependent miss

	// Preempt by running a fresh task; task1's completion at t=10000
	// must not resume the new task incorrectly.
	task2 := &scriptTask{id: 2, segs: []struct {
		instrs uint64
		acc    workload.Access
	}{seg(100, 0x100, false, false)}}
	endAt := sim.Time(0)
	c.Run(task2, 20000, func(_ *Core, at sim.Time) { endAt = at })
	eng.Run()
	if endAt != 20000 {
		t.Fatalf("task2 quantum ended at %d", endAt)
	}
	if task2.stats.Instructions == 0 {
		t.Fatal("task2 made no progress")
	}
}

func TestTaskStatsDerived(t *testing.T) {
	s := TaskStats{Instructions: 2000, CPUCycles: 1000, LLCMisses: 10}
	if s.IPC() != 2 {
		t.Fatalf("IPC = %v", s.IPC())
	}
	if s.MPKI() != 5 {
		t.Fatalf("MPKI = %v", s.MPKI())
	}
	var zero TaskStats
	if zero.IPC() != 0 || zero.MPKI() != 0 {
		t.Fatal("zero stats should divide safely")
	}
}
