package cpu

import (
	"refsched/internal/cache"
	"refsched/internal/sim"
)

// MissState is the serializable form of one outstanding LLC miss.
type MissState struct {
	ID           uint64
	Completed    bool
	Store        bool
	CompleteAt   sim.Time
	InstrAtIssue uint64
}

// CoreState is one core's full execution state at an event-quiescent
// point. The task binding is recorded by id; the restorer resolves it
// against the kernel's task table and passes the object back in.
type CoreState struct {
	TaskID     int // -1 when idle
	Epoch      uint64
	LocalTime  sim.Time
	QuantumEnd sim.Time
	StartTime  sim.Time
	Instrs     uint64
	CPIAccum   uint64

	Outstanding []MissState
	MissSeq     uint64
	Waiting     bool
	Barrier     bool
	Idle        bool

	Caches cache.HierarchyState
}

// State captures the core for a checkpoint.
func (c *Core) State() CoreState {
	st := CoreState{
		TaskID:     -1,
		Epoch:      c.epoch,
		LocalTime:  c.localTime,
		QuantumEnd: c.quantumEnd,
		StartTime:  c.startTime,
		Instrs:     c.instrs,
		CPIAccum:   c.cpiAccum,
		MissSeq:    c.missSeq,
		Waiting:    c.waiting,
		Barrier:    c.barrier,
		Idle:       c.Idle,
		Caches:     c.Hier.State(),
	}
	if c.task != nil {
		st.TaskID = c.task.ID()
	}
	st.Outstanding = make([]MissState, len(c.outstanding))
	for i, m := range c.outstanding {
		st.Outstanding[i] = MissState{ID: m.id, Completed: m.completed,
			Store: m.store, CompleteAt: m.completeAt, InstrAtIssue: m.instrAtIssue}
	}
	return st
}

// RestoreState overlays a checkpoint onto a freshly built core. task
// must be the task st.TaskID names (nil when the core was idle), and
// onEnd is the scheduler's quantum-end callback, re-installed
// unconditionally: it is only ever consulted while a quantum is live or
// a deferred quantum-end event is pending, and the next Run overwrites
// it, so installing it on a quiescent core is inert.
func (c *Core) RestoreState(st CoreState, task Task, onEnd func(c *Core, at sim.Time)) {
	c.task = task
	c.epoch = st.Epoch
	c.localTime = st.LocalTime
	c.quantumEnd = st.QuantumEnd
	c.startTime = st.StartTime
	c.instrs = st.Instrs
	c.cpiAccum = st.CPIAccum
	c.missSeq = st.MissSeq
	c.waiting = st.Waiting
	c.barrier = st.Barrier
	c.Idle = st.Idle
	c.onQuantumEnd = onEnd
	c.outstanding = c.outstanding[:0]
	for _, m := range st.Outstanding {
		c.outstanding = append(c.outstanding, &miss{id: m.ID,
			completed: m.Completed, store: m.Store,
			completeAt: m.CompleteAt, instrAtIssue: m.InstrAtIssue})
	}
	c.Hier.SetState(st.Caches)
}
