// Package cpu models the processor cores. Each core is an
// "out-of-order-lite" model: instructions retire at a base CPI, on-chip
// cache hits are charged their hit latency, and LLC misses go to the
// memory controller. The core may overlap up to MLP outstanding misses
// and run ahead up to ROB instructions past the oldest incomplete miss;
// dependent accesses (pointer chases) serialize behind all outstanding
// misses. Time a core spends blocked behind misses is exactly where DRAM
// refresh interference turns into lost IPC.
//
// For efficiency the core executes cache hits synchronously, ahead of the
// global clock (its caches are private, so nothing global can perturb
// them); it synchronizes with the discrete-event engine only to submit
// LLC misses at their correct issue times and to block on completions.
// Run-ahead is always clipped at the quantum boundary, so scheduling
// decisions are never bypassed.
package cpu

import (
	"refsched/internal/cache"
	"refsched/internal/dram"
	"refsched/internal/mc"
	"refsched/internal/sim"
	"refsched/internal/workload"
)

// TaskStats accumulates per-task performance counters.
type TaskStats struct {
	Instructions uint64
	CPUCycles    uint64 // cycles the task held a core
	MemStall     uint64 // cycles blocked waiting for DRAM
	LLCMisses    uint64
	PageFaults   uint64
	Quanta       uint64
}

// IPC returns committed instructions per cycle-on-CPU.
func (s *TaskStats) IPC() float64 {
	if s.CPUCycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.CPUCycles)
}

// MPKI returns LLC misses per kilo-instruction.
func (s *TaskStats) MPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.LLCMisses) / float64(s.Instructions) * 1000
}

// Task is the execution context a core runs: an instruction/access
// stream, address translation, and a resume buffer so preemption can
// happen mid-segment.
type Task interface {
	// ID returns the unique task id.
	ID() int
	// Next yields the next stream segment: instrs instructions of pure
	// compute followed by one memory access. Streams are endless.
	Next() (instrs uint64, acc workload.Access)
	// PushBack returns a partially executed segment so the next
	// quantum resumes exactly where this one stopped.
	PushBack(instrs uint64, acc workload.Access)
	// Translate maps a virtual address to physical, returning any
	// page-fault penalty in cycles.
	Translate(vaddr uint64) (paddr uint64, penalty uint64)
	// Stats exposes the mutable counter block for this task.
	Stats() *TaskStats
}

// Memory abstracts the request path to the memory controller(s).
type Memory interface {
	SubmitRead(r *mc.Request) bool
	WhenReadSpace(channel int, fn func())
	SubmitWrite(r *mc.Request) bool
	WhenWriteSpace(channel int, fn func())
	Decode(addr uint64) dram.Coord
}

// miss tracks one outstanding LLC miss.
type miss struct {
	completed    bool
	store        bool // read-for-ownership: occupies an MSHR but not the ROB window
	completeAt   sim.Time
	instrAtIssue uint64
}

// Core is one processor core.
type Core struct {
	ID   int
	eng  *sim.Engine
	mem  Memory
	Hier *cache.Hierarchy

	baseCPIx1024 uint64 // fixed-point base CPI (cycles<<10 per instruction)
	mlp          int
	rob          uint64

	task       Task
	epoch      uint64 // invalidates stale callbacks across context switches
	localTime  sim.Time
	quantumEnd sim.Time
	startTime  sim.Time
	instrs     uint64 // retired since task start (ROB run-ahead bookkeeping)
	cpiAccum   uint64 // fixed-point fractional-cycle accumulator

	outstanding []*miss
	waiting     bool
	barrier     bool // waiting for ALL outstanding misses (dependent access)

	onQuantumEnd func(c *Core, at sim.Time)

	// Idle reports whether the core currently has no task.
	Idle bool
}

// NewCore builds a core bound to an engine, memory path and cache stack.
func NewCore(id int, eng *sim.Engine, mem Memory, hier *cache.Hierarchy, baseCPI float64, mlp, rob int) *Core {
	if mlp < 1 {
		mlp = 1
	}
	return &Core{
		ID:           id,
		eng:          eng,
		mem:          mem,
		Hier:         hier,
		baseCPIx1024: uint64(baseCPI * 1024),
		mlp:          mlp,
		rob:          uint64(rob),
		Idle:         true,
	}
}

// Run starts task on the core until quantumEnd; onEnd is invoked at the
// actual end time (which may overshoot the boundary if the core was
// blocked on a miss when the quantum expired) so the scheduler can pick
// the next task. Run must be called at the intended start time.
func (c *Core) Run(task Task, quantumEnd sim.Time, onEnd func(c *Core, at sim.Time)) {
	c.epoch++
	c.task = task
	c.quantumEnd = quantumEnd
	c.onQuantumEnd = onEnd
	c.localTime = c.eng.Now()
	c.startTime = c.localTime
	c.instrs = 0
	c.cpiAccum = 0
	c.outstanding = c.outstanding[:0]
	c.waiting = false
	c.barrier = false
	c.Idle = false
	task.Stats().Quanta++
	c.loop()
}

// CurrentTask returns the running task (nil when idle).
func (c *Core) CurrentTask() Task { return c.task }

// loop executes stream segments until the quantum expires or the core
// blocks. It runs within a single engine event.
func (c *Core) loop() {
	for !c.waiting {
		if c.localTime >= c.quantumEnd {
			c.finishQuantum()
			return
		}
		instrs, acc := c.task.Next()
		if !c.executeSegment(instrs, acc) {
			return
		}
	}
}

// advanceInstrs charges instruction execution time in fixed point.
func (c *Core) advanceInstrs(n uint64) {
	c.cpiAccum += n * c.baseCPIx1024
	c.localTime += sim.Time(c.cpiAccum >> 10)
	c.cpiAccum &= 1023
	c.instrs += n
	c.task.Stats().Instructions += n
}

// executeSegment runs one (compute, access) segment; it returns false
// when the core blocked or the quantum ended partway.
func (c *Core) executeSegment(instrs uint64, acc workload.Access) bool {
	// Clip the compute stretch at the quantum boundary so run-ahead
	// never crosses a scheduling decision.
	if c.baseCPIx1024 > 0 {
		budget := (uint64(c.quantumEnd-c.localTime)<<10 - c.cpiAccum + c.baseCPIx1024 - 1) / c.baseCPIx1024
		if instrs > budget {
			c.advanceInstrs(budget)
			c.task.PushBack(instrs-budget, acc)
			c.finishQuantum()
			return false
		}
	}
	c.advanceInstrs(instrs)

	// A dependent access consumes the value of an in-flight load: it
	// cannot issue until every outstanding miss has drained.
	if acc.Dependent {
		c.drainCompleted()
		if len(c.outstanding) > 0 {
			c.task.PushBack(0, acc)
			c.waiting = true
			c.barrier = true
			return false
		}
	}

	c.performAccess(acc)
	return !c.waiting
}

// performAccess issues one memory access against the cache hierarchy.
func (c *Core) performAccess(acc workload.Access) {
	paddr, penalty := c.task.Translate(acc.VAddr)
	if penalty > 0 {
		c.localTime += sim.Time(penalty)
		c.task.Stats().PageFaults++
	}
	out := c.Hier.Access(paddr, acc.Write)
	for _, wb := range out.Writebacks {
		c.submitWriteback(wb)
	}
	if out.Level != cache.LevelMemory {
		if out.Level == cache.LevelL2 {
			c.localTime += sim.Time(out.HitCycles)
		}
		return
	}

	// LLC miss: goes off-chip. Stores allocate via a read-for-ownership
	// and never block retirement directly; loads block via the
	// dependence, MLP and ROB limits.
	c.task.Stats().LLCMisses++
	c.localTime += sim.Time(out.HitCycles)
	m := &miss{instrAtIssue: c.instrs, store: acc.Write}
	c.outstanding = append(c.outstanding, m)
	c.submitRead(out.MissLineAddr, m)

	if acc.Dependent {
		c.waiting = true
		c.barrier = true
		return
	}
	c.drainCompleted()
	if !c.limitsOK() {
		c.waiting = true
	}
}

// drainCompleted retires completed misses from the front in program
// order, charging stall time when their completion is in the future.
func (c *Core) drainCompleted() {
	n := 0
	for n < len(c.outstanding) && c.outstanding[n].completed {
		m := c.outstanding[n]
		if m.completeAt > c.localTime {
			c.task.Stats().MemStall += uint64(m.completeAt - c.localTime)
			c.localTime = m.completeAt
		}
		n++
	}
	if n > 0 {
		c.outstanding = append(c.outstanding[:0], c.outstanding[n:]...)
	}
}

// limitsOK reports whether MLP and ROB run-ahead limits permit issuing
// more work. The ROB window is charged against the oldest incomplete
// *load*: store misses drain through the store buffer and do not block
// retirement.
func (c *Core) limitsOK() bool {
	if len(c.outstanding) >= c.mlp {
		return false
	}
	for _, m := range c.outstanding {
		if !m.store && !m.completed {
			return c.instrs-m.instrAtIssue < c.rob
		}
	}
	return true
}

// onMissComplete is the MC completion callback.
func (c *Core) onMissComplete(m *miss, epoch uint64) {
	m.completed = true
	m.completeAt = c.eng.Now()
	if epoch != c.epoch || !c.waiting {
		return
	}
	c.drainCompleted()
	if c.barrier {
		if len(c.outstanding) > 0 {
			return
		}
		c.barrier = false
	} else if !c.limitsOK() {
		return
	}
	c.waiting = false
	c.loop()
}

// submitRead schedules the miss's DRAM read at the core's local time.
func (c *Core) submitRead(lineAddr uint64, m *miss) {
	epoch := c.epoch
	req := &mc.Request{
		Addr:   lineAddr,
		Coord:  c.mem.Decode(lineAddr),
		TaskID: c.task.ID(),
	}
	req.Done = func(*mc.Request) { c.onMissComplete(m, epoch) }
	at := c.localTime
	if now := c.eng.Now(); at < now {
		at = now
	}
	c.eng.ScheduleAt(at, func() { c.trySubmitRead(req) })
}

func (c *Core) trySubmitRead(req *mc.Request) {
	if !c.mem.SubmitRead(req) {
		c.mem.WhenReadSpace(req.Coord.Channel, func() { c.trySubmitRead(req) })
	}
}

// submitWriteback schedules a posted write at the core's local time.
func (c *Core) submitWriteback(lineAddr uint64) {
	req := &mc.Request{
		Addr:   lineAddr,
		Coord:  c.mem.Decode(lineAddr),
		TaskID: c.task.ID(),
	}
	at := c.localTime
	if now := c.eng.Now(); at < now {
		at = now
	}
	c.eng.ScheduleAt(at, func() { c.trySubmitWrite(req) })
}

func (c *Core) trySubmitWrite(req *mc.Request) {
	if !c.mem.SubmitWrite(req) {
		c.mem.WhenWriteSpace(req.Coord.Channel, func() { c.trySubmitWrite(req) })
	}
}

// finishQuantum accounts the quantum and hands control to the scheduler.
func (c *Core) finishQuantum() {
	end := c.localTime
	c.task.Stats().CPUCycles += uint64(end - c.startTime)
	c.task = nil
	c.Idle = true
	c.waiting = false
	c.barrier = false
	onEnd := c.onQuantumEnd
	c.onQuantumEnd = nil
	c.epoch++
	if onEnd == nil {
		return
	}
	if end <= c.eng.Now() {
		onEnd(c, c.eng.Now())
		return
	}
	c.eng.ScheduleAt(end, func() { onEnd(c, end) })
}
