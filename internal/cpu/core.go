// Package cpu models the processor cores. Each core is an
// "out-of-order-lite" model: instructions retire at a base CPI, on-chip
// cache hits are charged their hit latency, and LLC misses go to the
// memory controller. The core may overlap up to MLP outstanding misses
// and run ahead up to ROB instructions past the oldest incomplete miss;
// dependent accesses (pointer chases) serialize behind all outstanding
// misses. Time a core spends blocked behind misses is exactly where DRAM
// refresh interference turns into lost IPC.
//
// For efficiency the core executes cache hits synchronously, ahead of the
// global clock (its caches are private, so nothing global can perturb
// them); it synchronizes with the discrete-event engine only to submit
// LLC misses at their correct issue times and to block on completions.
// Run-ahead is always clipped at the quantum boundary, so scheduling
// decisions are never bypassed.
package cpu

import (
	"refsched/internal/cache"
	"refsched/internal/dram"
	"refsched/internal/mc"
	"refsched/internal/sim"
	"refsched/internal/workload"
)

// TaskStats accumulates per-task performance counters.
type TaskStats struct {
	Instructions uint64
	CPUCycles    uint64 // cycles the task held a core
	MemStall     uint64 // cycles blocked waiting for DRAM
	LLCMisses    uint64
	PageFaults   uint64
	Quanta       uint64
}

// IPC returns committed instructions per cycle-on-CPU.
func (s *TaskStats) IPC() float64 {
	if s.CPUCycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.CPUCycles)
}

// MPKI returns LLC misses per kilo-instruction.
func (s *TaskStats) MPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.LLCMisses) / float64(s.Instructions) * 1000
}

// Task is the execution context a core runs: an instruction/access
// stream, address translation, and a resume buffer so preemption can
// happen mid-segment.
type Task interface {
	// ID returns the unique task id.
	ID() int
	// Next yields the next stream segment: instrs instructions of pure
	// compute followed by one memory access. Streams are endless.
	Next() (instrs uint64, acc workload.Access)
	// PushBack returns a partially executed segment so the next
	// quantum resumes exactly where this one stopped.
	PushBack(instrs uint64, acc workload.Access)
	// Translate maps a virtual address to physical, returning any
	// page-fault penalty in cycles.
	Translate(vaddr uint64) (paddr uint64, penalty uint64)
	// Stats exposes the mutable counter block for this task.
	Stats() *TaskStats
}

// Memory abstracts the request path to the memory controller(s). The
// WhenSpace registrations hand over the rejected request itself (not a
// retry callback) so controller back-pressure state is serializable.
type Memory interface {
	SubmitRead(r *mc.Request) bool
	WhenReadSpace(channel int, r *mc.Request)
	SubmitWrite(r *mc.Request) bool
	WhenWriteSpace(channel int, r *mc.Request)
	Decode(addr uint64) dram.Coord
}

// miss tracks one outstanding LLC miss.
type miss struct {
	// id is the core-local handle completion events carry back (see
	// MissComplete); ids are monotone per core and never reused.
	id           uint64
	completed    bool
	store        bool // read-for-ownership: occupies an MSHR but not the ROB window
	completeAt   sim.Time
	instrAtIssue uint64
}

// Core is one processor core.
type Core struct {
	ID   int
	eng  *sim.Engine
	mem  Memory
	Hier *cache.Hierarchy

	baseCPIx1024 uint64 // fixed-point base CPI (cycles<<10 per instruction)
	mlp          int
	rob          uint64

	task       Task
	epoch      uint64 // invalidates stale callbacks across context switches
	localTime  sim.Time
	quantumEnd sim.Time
	startTime  sim.Time
	instrs     uint64 // retired since task start (ROB run-ahead bookkeeping)
	cpiAccum   uint64 // fixed-point fractional-cycle accumulator

	outstanding []*miss
	missSeq     uint64 // last issued miss id
	waiting     bool
	barrier     bool // waiting for ALL outstanding misses (dependent access)

	onQuantumEnd func(c *Core, at sim.Time)

	// Idle reports whether the core currently has no task.
	Idle bool
}

// NewCore builds a core bound to an engine, memory path and cache stack.
func NewCore(id int, eng *sim.Engine, mem Memory, hier *cache.Hierarchy, baseCPI float64, mlp, rob int) *Core {
	if mlp < 1 {
		mlp = 1
	}
	return &Core{
		ID:           id,
		eng:          eng,
		mem:          mem,
		Hier:         hier,
		baseCPIx1024: uint64(baseCPI * 1024),
		mlp:          mlp,
		rob:          uint64(rob),
		Idle:         true,
	}
}

// Run starts task on the core until quantumEnd; onEnd is invoked at the
// actual end time (which may overshoot the boundary if the core was
// blocked on a miss when the quantum expired) so the scheduler can pick
// the next task. Run must be called at the intended start time.
func (c *Core) Run(task Task, quantumEnd sim.Time, onEnd func(c *Core, at sim.Time)) {
	c.epoch++
	c.task = task
	c.quantumEnd = quantumEnd
	c.onQuantumEnd = onEnd
	c.localTime = c.eng.Now()
	c.startTime = c.localTime
	c.instrs = 0
	c.cpiAccum = 0
	c.outstanding = c.outstanding[:0]
	c.waiting = false
	c.barrier = false
	c.Idle = false
	task.Stats().Quanta++
	c.loop()
}

// CurrentTask returns the running task (nil when idle).
func (c *Core) CurrentTask() Task { return c.task }

// loop executes stream segments until the quantum expires or the core
// blocks. It runs within a single engine event.
func (c *Core) loop() {
	for !c.waiting {
		if c.localTime >= c.quantumEnd {
			c.finishQuantum()
			return
		}
		instrs, acc := c.task.Next()
		if !c.executeSegment(instrs, acc) {
			return
		}
	}
}

// advanceInstrs charges instruction execution time in fixed point.
func (c *Core) advanceInstrs(n uint64) {
	c.cpiAccum += n * c.baseCPIx1024
	c.localTime += sim.Time(c.cpiAccum >> 10)
	c.cpiAccum &= 1023
	c.instrs += n
	c.task.Stats().Instructions += n
}

// executeSegment runs one (compute, access) segment; it returns false
// when the core blocked or the quantum ended partway.
func (c *Core) executeSegment(instrs uint64, acc workload.Access) bool {
	// Clip the compute stretch at the quantum boundary so run-ahead
	// never crosses a scheduling decision.
	if c.baseCPIx1024 > 0 {
		budget := (uint64(c.quantumEnd-c.localTime)<<10 - c.cpiAccum + c.baseCPIx1024 - 1) / c.baseCPIx1024
		if instrs > budget {
			c.advanceInstrs(budget)
			c.task.PushBack(instrs-budget, acc)
			c.finishQuantum()
			return false
		}
	}
	c.advanceInstrs(instrs)

	// A dependent access consumes the value of an in-flight load: it
	// cannot issue until every outstanding miss has drained.
	if acc.Dependent {
		c.drainCompleted()
		if len(c.outstanding) > 0 {
			c.task.PushBack(0, acc)
			c.waiting = true
			c.barrier = true
			return false
		}
	}

	c.performAccess(acc)
	return !c.waiting
}

// performAccess issues one memory access against the cache hierarchy.
func (c *Core) performAccess(acc workload.Access) {
	paddr, penalty := c.task.Translate(acc.VAddr)
	if penalty > 0 {
		c.localTime += sim.Time(penalty)
		c.task.Stats().PageFaults++
	}
	out := c.Hier.Access(paddr, acc.Write)
	for _, wb := range out.Writebacks {
		c.submitWriteback(wb)
	}
	if out.Level != cache.LevelMemory {
		if out.Level == cache.LevelL2 {
			c.localTime += sim.Time(out.HitCycles)
		}
		return
	}

	// LLC miss: goes off-chip. Stores allocate via a read-for-ownership
	// and never block retirement directly; loads block via the
	// dependence, MLP and ROB limits.
	c.task.Stats().LLCMisses++
	c.localTime += sim.Time(out.HitCycles)
	m := &miss{instrAtIssue: c.instrs, store: acc.Write}
	c.outstanding = append(c.outstanding, m)
	c.submitRead(out.MissLineAddr, m)

	if acc.Dependent {
		c.waiting = true
		c.barrier = true
		return
	}
	c.drainCompleted()
	if !c.limitsOK() {
		c.waiting = true
	}
}

// drainCompleted retires completed misses from the front in program
// order, charging stall time when their completion is in the future.
func (c *Core) drainCompleted() {
	n := 0
	for n < len(c.outstanding) && c.outstanding[n].completed {
		m := c.outstanding[n]
		if m.completeAt > c.localTime {
			c.task.Stats().MemStall += uint64(m.completeAt - c.localTime)
			c.localTime = m.completeAt
		}
		n++
	}
	if n > 0 {
		c.outstanding = append(c.outstanding[:0], c.outstanding[n:]...)
	}
}

// limitsOK reports whether MLP and ROB run-ahead limits permit issuing
// more work. The ROB window is charged against the oldest incomplete
// *load*: store misses drain through the store buffer and do not block
// retirement.
func (c *Core) limitsOK() bool {
	if len(c.outstanding) >= c.mlp {
		return false
	}
	for _, m := range c.outstanding {
		if !m.store && !m.completed {
			return c.instrs-m.instrAtIssue < c.rob
		}
	}
	return true
}

// MissComplete is the memory-system completion notification: the miss
// with the given id finished its DRAM read. epoch is the core epoch
// captured at issue; a mismatch means the issuing quantum already ended
// and the core must not be resumed on the stale completion (the miss is
// still marked complete — the old closure-based callback mutated the
// struct unconditionally too). An unknown id means the issuing quantum's
// miss slots were already recycled by a later Run; the notification is
// then a no-op, exactly as the old callback was against an unreachable
// miss struct.
func (c *Core) MissComplete(id, epoch uint64) {
	var m *miss
	for _, x := range c.outstanding {
		if x.id == id {
			m = x
			break
		}
	}
	if m == nil {
		return
	}
	m.completed = true
	m.completeAt = c.eng.Now()
	if epoch != c.epoch || !c.waiting {
		return
	}
	c.drainCompleted()
	if c.barrier {
		if len(c.outstanding) > 0 {
			return
		}
		c.barrier = false
	} else if !c.limitsOK() {
		return
	}
	c.waiting = false
	c.loop()
}

// submitRead schedules the miss's DRAM read at the core's local time.
// The payload captures everything the submission needs (address, task,
// miss id, epoch) at schedule time: the core runs ahead, so by the time
// the event fires the task binding may already have changed.
func (c *Core) submitRead(lineAddr uint64, m *miss) {
	c.missSeq++
	m.id = c.missSeq
	at := c.localTime
	if now := c.eng.Now(); at < now {
		at = now
	}
	c.eng.SchedulePAt(at, sim.Payload{Kind: sim.KindCPUSubmitRead,
		A: uint64(c.ID), B: lineAddr, C: m.id, D: c.epoch,
		E: uint64(int64(c.task.ID()) + 1)})
}

// FireSubmitRead materializes a deferred read submission. The request
// is rebuilt from the payload words (Decode is pure, so re-decoding the
// address is exact); a full queue parks the request on the controller's
// waiter list for automatic resubmission.
func (c *Core) FireSubmitRead(p sim.Payload) {
	req := &mc.Request{
		Addr:   p.B,
		Coord:  c.mem.Decode(p.B),
		TaskID: int(int64(p.E) - 1),
		Owner:  mc.Owner{Valid: true, Core: c.ID, Miss: p.C, Epoch: p.D},
	}
	if !c.mem.SubmitRead(req) {
		c.mem.WhenReadSpace(req.Coord.Channel, req)
	}
}

// submitWriteback schedules a posted write at the core's local time.
func (c *Core) submitWriteback(lineAddr uint64) {
	at := c.localTime
	if now := c.eng.Now(); at < now {
		at = now
	}
	c.eng.SchedulePAt(at, sim.Payload{Kind: sim.KindCPUSubmitWrite,
		A: uint64(c.ID), B: lineAddr, E: uint64(int64(c.task.ID()) + 1)})
}

// FireSubmitWrite materializes a deferred posted-write submission.
func (c *Core) FireSubmitWrite(p sim.Payload) {
	req := &mc.Request{
		Addr:   p.B,
		Coord:  c.mem.Decode(p.B),
		TaskID: int(int64(p.E) - 1),
	}
	if !c.mem.SubmitWrite(req) {
		c.mem.WhenWriteSpace(req.Coord.Channel, req)
	}
}

// Exec dispatches this core's payload events.
func (c *Core) Exec(p sim.Payload) {
	switch p.Kind {
	case sim.KindCPUSubmitRead:
		c.FireSubmitRead(p)
	case sim.KindCPUSubmitWrite:
		c.FireSubmitWrite(p)
	case sim.KindCPUQuantumEnd:
		c.FireQuantumEnd(p.B)
	default:
		panic("cpu: unexpected payload kind")
	}
}

// finishQuantum accounts the quantum and hands control to the scheduler.
func (c *Core) finishQuantum() {
	end := c.localTime
	c.task.Stats().CPUCycles += uint64(end - c.startTime)
	c.task = nil
	c.Idle = true
	c.waiting = false
	c.barrier = false
	c.epoch++
	onEnd := c.onQuantumEnd
	if onEnd == nil {
		return
	}
	if end <= c.eng.Now() {
		c.onQuantumEnd = nil
		onEnd(c, c.eng.Now())
		return
	}
	// Deferred quantum end: the handler stays installed until the event
	// fires (the scheduler cannot re-Run this core before its own
	// quantum-end notification, so the field cannot be clobbered).
	c.eng.SchedulePAt(end, sim.Payload{Kind: sim.KindCPUQuantumEnd,
		A: uint64(c.ID), B: end})
}

// FireQuantumEnd delivers a deferred quantum-end notification scheduled
// by finishQuantum.
func (c *Core) FireQuantumEnd(at sim.Time) {
	onEnd := c.onQuantumEnd
	c.onQuantumEnd = nil
	if onEnd != nil {
		onEnd(c, at)
	}
}

// SetQuantumEndHandler re-installs the scheduler's quantum-end callback
// after a snapshot restore (callbacks cannot be serialized; the kernel's
// handler is identical for every core and every quantum).
func (c *Core) SetQuantumEndHandler(fn func(c *Core, at sim.Time)) {
	c.onQuantumEnd = fn
}
