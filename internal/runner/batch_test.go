package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunBatchQuarantinesFailures(t *testing.T) {
	boom := errors.New("boom")
	jobs := make([]Job[int], 20)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Cell: Cell{Mix: "WL-1", Bundle: "b", Seed: uint64(i)},
			Run: func() (int, error) {
				if i%5 == 3 {
					return 0, boom
				}
				return i * i, nil
			},
		}
	}
	b, err := RunBatch(context.Background(), jobs, Options[int]{Parallelism: 4})
	if err != nil {
		t.Fatalf("quarantine mode must not fail the batch: %v", err)
	}
	if len(b.Failed) != 4 {
		t.Fatalf("Failed = %d cells, want 4", len(b.Failed))
	}
	// Failures are listed in batch-index order with identity preserved.
	wantIdx := []int{3, 8, 13, 18}
	for k, ce := range b.Failed {
		if ce.Index != wantIdx[k] {
			t.Errorf("Failed[%d].Index = %d, want %d", k, ce.Index, wantIdx[k])
		}
		if !errors.Is(ce, boom) {
			t.Errorf("Failed[%d] does not unwrap to the job error", k)
		}
		if ce.Cell.Seed != uint64(ce.Index) {
			t.Errorf("Failed[%d] lost its cell identity: %+v", k, ce.Cell)
		}
		if ce.Attempts != 1 {
			t.Errorf("Failed[%d].Attempts = %d, want 1 (error was not transient)", k, ce.Attempts)
		}
	}
	// Every healthy cell still completed with its own result.
	for i := range jobs {
		failed := i%5 == 3
		if b.OK[i] == failed {
			t.Errorf("OK[%d] = %v, want %v", i, b.OK[i], !failed)
		}
		if !failed && b.Results[i] != i*i {
			t.Errorf("Results[%d] = %d, want %d", i, b.Results[i], i*i)
		}
	}
	if b.Skipped != 0 {
		t.Errorf("Skipped = %d, want 0", b.Skipped)
	}
	if !errors.Is(b.Err(), boom) {
		t.Errorf("Batch.Err() = %v, want to wrap %v", b.Err(), boom)
	}
}

func TestRunBatchTransientRetrySameResult(t *testing.T) {
	// A transient failure is retried with the identical closure, so the
	// eventual result is exactly what a clean run would have produced.
	var firstTry atomic.Int64
	jobs := make([]Job[int], 8)
	attempts := make([]atomic.Int64, 8)
	for i := range jobs {
		i := i
		jobs[i].Run = func() (int, error) {
			if attempts[i].Add(1) == 1 && i%2 == 0 {
				firstTry.Add(1)
				return 0, MarkTransient(errors.New("spurious"))
			}
			return 100 + i, nil
		}
	}
	b, err := RunBatch(context.Background(), jobs, Options[int]{Parallelism: 3, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Failed) != 0 {
		t.Fatalf("transient failures within budget must not quarantine: %v", b.Failed)
	}
	if b.Retried != int(firstTry.Load()) {
		t.Errorf("Retried = %d, want %d", b.Retried, firstTry.Load())
	}
	for i := range jobs {
		if b.Results[i] != 100+i {
			t.Errorf("Results[%d] = %d, want %d", i, b.Results[i], 100+i)
		}
	}
}

func TestRunBatchRetriesExhausted(t *testing.T) {
	var attempts atomic.Int64
	jobs := []Job[int]{{
		Cell: Cell{Mix: "WL-2"},
		Run: func() (int, error) {
			attempts.Add(1)
			return 0, MarkTransient(errors.New("always"))
		},
	}}
	b, err := RunBatch(context.Background(), jobs, Options[int]{Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("executions = %d, want 3 (1 + 2 retries)", got)
	}
	if len(b.Failed) != 1 || b.Failed[0].Attempts != 3 {
		t.Fatalf("Failed = %v, want one cell with Attempts=3", b.Failed)
	}
	if !IsTransient(b.Failed[0].Err) {
		t.Error("quarantine record lost the transient marker")
	}
}

func TestRunBatchNonTransientNotRetried(t *testing.T) {
	var attempts atomic.Int64
	jobs := []Job[int]{{Run: func() (int, error) {
		attempts.Add(1)
		return 0, errors.New("deterministic model error")
	}}}
	b, _ := RunBatch(context.Background(), jobs, Options[int]{Retries: 5})
	if attempts.Load() != 1 {
		t.Errorf("executions = %d, want 1: plain errors must not retry", attempts.Load())
	}
	if b.Retried != 0 {
		t.Errorf("Retried = %d, want 0", b.Retried)
	}
}

func TestRunBatchPanicPreservesValueAndStack(t *testing.T) {
	type custom struct{ code int }
	jobs := []Job[int]{
		{Run: func() (int, error) { return 1, nil }},
		{Cell: Cell{Mix: "WL-9", Density: "32Gb", Bundle: "codesign", Seed: 7},
			Run: func() (int, error) { panicHelperForStack(custom{code: 42}); return 0, nil }},
	}
	b, err := RunBatch(context.Background(), jobs, Options[int]{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Failed) != 1 {
		t.Fatalf("Failed = %v, want exactly the panicking cell", b.Failed)
	}
	ce := b.Failed[0]
	if !ce.Panicked() {
		t.Fatal("Panicked() = false for a panicking cell")
	}
	// The original value survives with its concrete type — not a
	// fmt.Sprintf flattening.
	if got, ok := ce.PanicValue.(custom); !ok || got.code != 42 {
		t.Fatalf("PanicValue = %#v, want custom{code: 42}", ce.PanicValue)
	}
	// The captured stack is the panicking goroutine's, naming the frame
	// that blew up.
	if !strings.Contains(string(ce.Stack), "panicHelperForStack") {
		t.Errorf("Stack does not contain the panicking frame:\n%s", ce.Stack)
	}
	for _, want := range []string{"WL-9", "32Gb", "seed 7"} {
		if !strings.Contains(ce.Error(), want) {
			t.Errorf("Error() = %q missing %q", ce.Error(), want)
		}
	}
}

// panicHelperForStack exists to give the captured stack a recognizable
// frame name.
//
//go:noinline
func panicHelperForStack(v any) { panic(v) }

func TestRunBatchCancellation(t *testing.T) {
	// Cancel while the batch is in flight: started cells finish and keep
	// their results; unstarted cells are skipped; the context error is
	// reported.
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var started atomic.Int64
	const n = 64
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i].Run = func() (int, error) {
			started.Add(1)
			<-release
			return i, nil
		}
	}
	go func() {
		for started.Load() < 2 {
			time.Sleep(time.Millisecond)
		}
		cancel()
		// Give workers a moment to observe cancellation, then let the
		// in-flight cells complete.
		time.Sleep(5 * time.Millisecond)
		close(release)
	}()
	b, err := RunBatch(ctx, jobs, Options[int]{Parallelism: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if b == nil {
		t.Fatal("cancelled batch must still be returned")
	}
	done := 0
	for i := range jobs {
		if b.OK[i] {
			done++
			if b.Results[i] != i {
				t.Errorf("Results[%d] = %d, want %d", i, b.Results[i], i)
			}
		}
	}
	if done == 0 {
		t.Error("in-flight cells were not allowed to finish")
	}
	if b.Skipped == 0 {
		t.Error("cancellation skipped no cells")
	}
	if done+b.Skipped+len(b.Failed) != n {
		t.Errorf("accounting broken: done=%d skipped=%d failed=%d of %d",
			done, b.Skipped, len(b.Failed), n)
	}
}

func TestRunBatchCancelDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	jobs := []Job[int]{{Run: func() (int, error) {
		return 0, MarkTransient(errors.New("flaky"))
	}}}
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	b, _ := RunBatch(ctx, jobs, Options[int]{Retries: 10, Backoff: time.Hour})
	if time.Since(start) > 10*time.Second {
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
	if len(b.Failed) != 1 {
		t.Fatalf("Failed = %v, want the flaky cell quarantined on cancellation", b.Failed)
	}
}

func TestRunBatchFailFast(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	jobs := make([]Job[int], 1000)
	for i := range jobs {
		i := i
		jobs[i].Run = func() (int, error) {
			started.Add(1)
			if i == 1 {
				return 0, boom
			}
			return i, nil
		}
	}
	b, err := RunBatch(context.Background(), jobs, Options[int]{Parallelism: 2, FailFast: true})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	var ce *CellError
	if !errors.As(err, &ce) || ce.Index != 1 {
		t.Fatalf("err = %v, want *CellError for index 1", err)
	}
	if started.Load() == 1000 {
		t.Error("fail-fast did not short-circuit the batch")
	}
	if b == nil || b.Skipped == 0 {
		t.Error("fail-fast batch must report skipped cells")
	}
}

func TestRunBatchOnDoneIndexed(t *testing.T) {
	// OnDone receives the batch index, so callers journaling by an
	// index-derived key never collide even when Cell metadata repeats
	// (e.g. the same mix at two retention temperatures).
	jobs := make([]Job[int], 32)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Cell: Cell{Mix: "same"}, Run: func() (int, error) { return i * 3, nil }}
	}
	got := map[int]int{}
	_, err := RunBatch(context.Background(), jobs, Options[int]{
		Parallelism: 8,
		OnDone:      func(i int, _ Cell, v int) { got[i] = v },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 32 {
		t.Fatalf("OnDone fired for %d cells, want 32", len(got))
	}
	for i, v := range got {
		if v != i*3 {
			t.Errorf("OnDone(%d) = %d, want %d", i, v, i*3)
		}
	}
}

func TestMarkTransient(t *testing.T) {
	base := errors.New("base")
	if MarkTransient(nil) != nil {
		t.Error("MarkTransient(nil) != nil")
	}
	m := MarkTransient(base)
	if !IsTransient(m) {
		t.Error("IsTransient(MarkTransient(err)) = false")
	}
	if !errors.Is(m, base) {
		t.Error("transient wrapper must unwrap to the original error")
	}
	if IsTransient(base) {
		t.Error("unmarked error reported transient")
	}
	if IsTransient(nil) {
		t.Error("IsTransient(nil) = true")
	}
	// The marker survives further wrapping.
	if !IsTransient(fmt.Errorf("wrapped: %w", m)) {
		t.Error("transient marker lost through wrapping")
	}
}
