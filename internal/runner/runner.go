// Package runner executes the independent cells of an experiment sweep
// across a bounded worker pool while preserving the exact results and
// rendered output of a serial run.
//
// Every figure in the paper's evaluation is a grid of fully independent,
// deterministically-seeded simulation cells (mix × density × policy
// bundle). The harness enumerates a sweep's cells up front, hands them
// to Run, and receives results in an index-addressed slice — so tables
// built from the results are byte-identical to serial output regardless
// of worker completion order. Progress callbacks are routed through a
// single collector goroutine so verbose output never interleaves.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Cell identifies one independent simulation cell of a sweep grid: the
// workload mix, device density, and policy bundle it simulates, plus
// the seed that makes it reproducible in isolation. It is metadata for
// progress lines and failure reports; fields that do not apply to a
// given sweep may be left empty.
type Cell struct {
	Mix     string
	Density string
	Bundle  string
	Seed    uint64
}

// String renders the cell compactly for progress and error text.
func (c Cell) String() string {
	return fmt.Sprintf("%s/%s/%s", c.Mix, c.Density, c.Bundle)
}

// Job couples a cell's identity with the closure that simulates it.
// Run must be self-contained: it may not share mutable state with any
// other job in the same batch.
type Job[T any] struct {
	Cell Cell
	Run  func() (T, error)
}

// Parallelism normalizes a -j style setting: values <= 0 select
// runtime.GOMAXPROCS(0).
func Parallelism(j int) int {
	if j <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return j
}

// Run executes jobs across at most parallelism workers (<= 0 meaning
// GOMAXPROCS) and returns their results indexed identically to jobs.
// onDone, if non-nil, is invoked once per successful job from a single
// collector goroutine — in completion order, never concurrently — for
// progress reporting.
//
// Determinism: each job runs exactly once with no shared state, so
// results are independent of parallelism and completion order. On
// failure the error of the lowest-indexed failed job is returned
// (matching what a serial in-order run would report first) and
// remaining unstarted jobs are skipped. A panicking job fails the
// whole batch with the panic value wrapped in the cell's identity.
func Run[T any](jobs []Job[T], parallelism int, onDone func(Cell, T)) ([]T, error) {
	n := len(jobs)
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	workers := Parallelism(parallelism)
	if workers > n {
		workers = n
	}

	if workers == 1 {
		// Serial fast path: no goroutines, in-order execution.
		for i, j := range jobs {
			v, err := j.Run()
			if err != nil {
				return nil, err
			}
			results[i] = v
			if onDone != nil {
				onDone(j.Cell, v)
			}
		}
		return results, nil
	}

	errs := make([]error, n)
	panics := make([]any, n)
	var next atomic.Int64
	next.Store(-1)
	var bail atomic.Bool

	// Collector goroutine: serializes progress callbacks. The buffer
	// holds every possible completion so workers never block on it.
	var doneCh chan int
	var collectorDone chan struct{}
	if onDone != nil {
		doneCh = make(chan int, n)
		collectorDone = make(chan struct{})
		go func() {
			defer close(collectorDone)
			for i := range doneCh {
				onDone(jobs[i].Cell, results[i])
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || bail.Load() {
					return
				}
				runOne(jobs, results, errs, panics, i, &bail)
				if errs[i] == nil && panics[i] == nil && doneCh != nil {
					doneCh <- i
				}
			}
		}()
	}
	wg.Wait()
	if doneCh != nil {
		close(doneCh)
		<-collectorDone
	}

	for i := range jobs {
		if panics[i] != nil {
			panic(fmt.Sprintf("runner: job %d (%s) panicked: %v", i, jobs[i].Cell, panics[i]))
		}
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	return results, nil
}

// runOne executes jobs[i], capturing errors and panics so one bad cell
// fails the batch instead of crashing a worker goroutine.
func runOne[T any](jobs []Job[T], results []T, errs []error, panics []any, i int, bail *atomic.Bool) {
	defer func() {
		if p := recover(); p != nil {
			panics[i] = p
			bail.Store(true)
		}
	}()
	v, err := jobs[i].Run()
	if err != nil {
		errs[i] = err
		bail.Store(true)
		return
	}
	results[i] = v
}

// Map runs fn(i) for every i in [0, n) across at most parallelism
// workers and returns the results in index order — the plain-function
// form of Run for sweeps without per-cell metadata.
func Map[T any](parallelism, n int, fn func(i int) (T, error)) ([]T, error) {
	jobs := make([]Job[T], n)
	for i := range jobs {
		i := i
		jobs[i].Run = func() (T, error) { return fn(i) }
	}
	return Run(jobs, parallelism, nil)
}
