// Package runner executes the independent cells of an experiment sweep
// across a bounded worker pool while preserving the exact results and
// rendered output of a serial run.
//
// Every figure in the paper's evaluation is a grid of fully independent,
// deterministically-seeded simulation cells (mix × density × policy
// bundle). The harness enumerates a sweep's cells up front, hands them
// to Run, and receives results in an index-addressed slice — so tables
// built from the results are byte-identical to serial output regardless
// of worker completion order. Progress callbacks are routed through a
// single collector goroutine so verbose output never interleaves.
//
// The pool has the failure semantics of a real job scheduler. A failing
// or panicking cell is captured as a typed *CellError (cell identity,
// seed, original panic value, goroutine stack) and — unless FailFast is
// set — quarantined so the rest of the batch still completes. Errors
// marked transient (see MarkTransient) are retried a bounded number of
// times with exponential backoff, re-running the identical closure with
// the identical seed so determinism holds. Cancelling the batch context
// lets in-flight cells finish and skips the rest, so completed work is
// preserved for journaled resumption.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Cell identifies one independent simulation cell of a sweep grid: the
// workload mix, device density, and policy bundle it simulates, plus
// the seed that makes it reproducible in isolation. It is metadata for
// progress lines and failure reports; fields that do not apply to a
// given sweep may be left empty.
type Cell struct {
	Mix     string
	Density string
	Bundle  string
	Seed    uint64

	// Hot records the high-temperature (2x refresh rate) variant of the
	// bundle. It exists so a cell's full simulation input is addressable
	// from the Cell alone (String deliberately omits it to keep progress
	// lines unchanged).
	Hot bool
	// Remotable marks a cell whose simulation is fully determined by the
	// (Mix, Density, Bundle, Hot) coordinates plus the sweep-wide
	// parameters — i.e. it was built by the standard bundle pipeline and
	// can be re-created and executed verbatim on another process. Cells
	// with custom closures (bank-mask sweeps, subarray overrides, derived
	// mixes) leave it false and always run where they were enumerated.
	Remotable bool
}

// String renders the cell compactly for progress and error text.
func (c Cell) String() string {
	return fmt.Sprintf("%s/%s/%s", c.Mix, c.Density, c.Bundle)
}

// Job couples a cell's identity with the closure that simulates it.
// Run must be self-contained: it may not share mutable state with any
// other job in the same batch, and it must be deterministic so that a
// retry after a transient failure reproduces the identical result.
type Job[T any] struct {
	Cell Cell
	Run  func() (T, error)
}

// CellError is the quarantine record for one failed cell: which cell it
// was, how it failed, and how many attempts were made. A panicking cell
// preserves the original panic value and the goroutine stack captured
// at recovery time, so nothing is flattened into an opaque string.
type CellError struct {
	Index    int  // position of the job in the batch
	Cell     Cell // identity, including the seed for standalone repro
	Attempts int  // total executions, including retries

	// Err is the error the final attempt returned, or nil when the cell
	// panicked instead.
	Err error
	// PanicValue is the recovered panic value (nil unless the cell
	// panicked); Stack is the goroutine stack captured at that point.
	PanicValue any
	Stack      []byte
}

// Error implements error. The full stack is not inlined (it can run to
// kilobytes); it stays available via the Stack field.
func (e *CellError) Error() string {
	if e.PanicValue != nil {
		return fmt.Sprintf("cell %d (%s, seed %d) panicked after %d attempt(s): %v",
			e.Index, e.Cell, e.Cell.Seed, e.Attempts, e.PanicValue)
	}
	return fmt.Sprintf("cell %d (%s, seed %d) failed after %d attempt(s): %v",
		e.Index, e.Cell, e.Cell.Seed, e.Attempts, e.Err)
}

// Unwrap exposes the underlying error for errors.Is/As chains. A panic
// with an error value unwraps to that error.
func (e *CellError) Unwrap() error {
	if e.Err != nil {
		return e.Err
	}
	if err, ok := e.PanicValue.(error); ok {
		return err
	}
	return nil
}

// Panicked reports whether the cell failed by panicking.
func (e *CellError) Panicked() bool { return e.PanicValue != nil }

// transientError marks an error as worth retrying with the same seed.
type transientError struct{ err error }

func (t *transientError) Error() string { return t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// MarkTransient wraps err so the runner's bounded retry applies to it.
// Simulation determinism means a genuine model error always recurs;
// transience is for infrastructure faults (and for chaos injection in
// tests). Marking nil returns nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked transient anywhere in its
// chain.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// Options configures a batch run. The zero value means: GOMAXPROCS
// workers, quarantine failures (no fail-fast), no retries, no progress
// callback.
type Options[T any] struct {
	// Parallelism bounds the worker pool; <= 0 selects GOMAXPROCS.
	Parallelism int
	// FailFast restores serial semantics: the first failure (by batch
	// index, matching what an in-order serial run would hit first)
	// cancels the batch instead of being quarantined.
	FailFast bool
	// Retries is the maximum number of re-executions for a cell whose
	// error is marked transient (0 = never retry).
	Retries int
	// Backoff is the sleep before the first retry, doubling per attempt
	// (capped at 32x). Zero means no sleep, which tests use to keep
	// retry loops fast. Backoff waits are cancellable.
	Backoff time.Duration
	// OnDone, if non-nil, is invoked once per successful cell from a
	// single collector goroutine — in completion order, never
	// concurrently — for progress reporting and journaling. The first
	// argument is the job's batch index.
	OnDone func(int, Cell, T)
	// Gate, if non-nil, is acquired before each cell executes and
	// released when it finishes (covering all of its retries). It is
	// the hook an external job scheduler uses to impose a global
	// concurrency budget and per-job priority across batches that run
	// simultaneously: each concurrent batch passes a Gate closed over
	// its job's priority, and the shared gate admits cells
	// highest-priority-first as slots free up. Gate must block until a
	// slot is available and return a non-nil release function; the only
	// permitted error is ctx ending, which makes the worker stop taking
	// cells (the batch then reports the remaining cells as skipped,
	// exactly like plain cancellation).
	Gate func(ctx context.Context) (release func(), err error)
}

// Batch is the outcome of RunBatch: index-addressed results, the
// quarantined failures, and retry accounting.
type Batch[T any] struct {
	// Results holds each job's value at its submission index; entries
	// for failed or skipped cells are the zero value (check OK).
	Results []T
	// OK[i] reports whether job i produced a result.
	OK []bool
	// Failed lists quarantined cells in batch-index order.
	Failed []*CellError
	// Retried counts transient-failure re-executions that eventually
	// succeeded or exhausted their budget.
	Retried int
	// Skipped counts jobs never started because the batch was cancelled
	// (or a fail-fast failure occurred).
	Skipped int
}

// Err returns nil when every cell succeeded, or an error summarizing
// the quarantined failures (the lowest-indexed CellError, which is what
// a serial in-order run would have reported first).
func (b *Batch[T]) Err() error {
	if len(b.Failed) == 0 {
		return nil
	}
	if len(b.Failed) == 1 {
		return b.Failed[0]
	}
	return fmt.Errorf("%d cells failed, first: %w", len(b.Failed), b.Failed[0])
}

// Parallelism normalizes a -j style setting: values <= 0 select
// runtime.GOMAXPROCS(0).
func Parallelism(j int) int {
	if j <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return j
}

// RunBatch executes jobs across a bounded worker pool with the failure
// semantics selected by opts. It returns a non-nil *Batch even on
// error, so completed results remain usable (e.g. for journaled
// resumption).
//
// The returned error is non-nil only when the batch did not run to
// completion: ctx was cancelled (the context error is returned after
// in-flight cells finish) or FailFast stopped it (the lowest-indexed
// *CellError is returned, and a fail-fast panic is re-raised with the
// *CellError as the panic value). Quarantined failures in a completed
// batch are reported via Batch.Failed / Batch.Err, not the error.
//
// Determinism: each job runs exactly once (plus identical-seed retries)
// with no shared state, so results are independent of parallelism and
// completion order.
func RunBatch[T any](ctx context.Context, jobs []Job[T], opts Options[T]) (*Batch[T], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(jobs)
	b := &Batch[T]{Results: make([]T, n), OK: make([]bool, n)}
	if n == 0 {
		return b, nil
	}
	workers := Parallelism(opts.Parallelism)
	if workers > n {
		workers = n
	}

	cellErrs := make([]*CellError, n)
	var retried atomic.Int64
	var next atomic.Int64
	next.Store(-1)
	var bail atomic.Bool // set by fail-fast failure; skips unstarted jobs

	// Collector goroutine: serializes OnDone callbacks. The buffer holds
	// every possible completion so workers never block on it.
	var doneCh chan int
	var collectorDone chan struct{}
	if opts.OnDone != nil {
		doneCh = make(chan int, n)
		collectorDone = make(chan struct{})
		go func() {
			defer close(collectorDone)
			for i := range doneCh {
				opts.OnDone(i, jobs[i].Cell, b.Results[i])
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || bail.Load() || ctx.Err() != nil {
					return
				}
				var release func()
				if opts.Gate != nil {
					var err error
					release, err = opts.Gate(ctx)
					if err != nil {
						// Only cancellation may surface here; the cell was
						// never started, so it counts as skipped.
						return
					}
				}
				ce := runCell(ctx, jobs, b.Results, i, opts, &retried)
				if release != nil {
					release()
				}
				if ce != nil {
					cellErrs[i] = ce
					if opts.FailFast {
						bail.Store(true)
					}
					continue
				}
				b.OK[i] = true
				if doneCh != nil {
					doneCh <- i
				}
			}
		}()
	}
	wg.Wait()
	if doneCh != nil {
		close(doneCh)
		<-collectorDone
	}

	b.Retried = int(retried.Load())
	for i, ce := range cellErrs {
		if ce != nil {
			ce.Index = i
			b.Failed = append(b.Failed, ce)
		}
	}
	for _, ok := range b.OK {
		if !ok {
			b.Skipped++
		}
	}
	b.Skipped -= len(b.Failed)

	if opts.FailFast {
		if err := b.Err(); err != nil {
			var ce *CellError
			if errors.As(err, &ce) && ce.Panicked() {
				// Preserve pre-quarantine semantics: a panicking cell
				// under fail-fast crashes the batch — but with the typed
				// *CellError carrying the original panic value and stack,
				// not a flattened string.
				panic(ce)
			}
			return b, err
		}
	}
	if err := ctx.Err(); err != nil {
		return b, fmt.Errorf("runner: batch cancelled after %d/%d cells: %w",
			n-b.Skipped-len(b.Failed), n, err)
	}
	return b, nil
}

// runCell executes jobs[i] with panic capture and bounded retry for
// transient errors; it returns the quarantine record, or nil on success.
func runCell[T any](ctx context.Context, jobs []Job[T], results []T, i int, opts Options[T], retried *atomic.Int64) *CellError {
	attempts := 0
	for {
		attempts++
		err, pv, stack := attemptCell(jobs, results, i)
		if err == nil && pv == nil {
			return nil
		}
		if pv == nil && IsTransient(err) && attempts <= opts.Retries && ctx.Err() == nil {
			if backoff(ctx, opts.Backoff, attempts-1) {
				retried.Add(1)
				continue
			}
			// Cancelled mid-backoff: report the underlying failure.
		}
		return &CellError{Cell: jobs[i].Cell, Attempts: attempts, Err: err, PanicValue: pv, Stack: stack}
	}
}

// attemptCell runs one execution of jobs[i], converting a panic into a
// captured (value, stack) pair instead of crashing the worker.
func attemptCell[T any](jobs []Job[T], results []T, i int) (err error, panicValue any, stack []byte) {
	defer func() {
		if p := recover(); p != nil {
			panicValue = p
			buf := make([]byte, 64<<10)
			stack = buf[:runtime.Stack(buf, false)]
		}
	}()
	v, err := jobs[i].Run()
	if err != nil {
		return err, nil, nil
	}
	results[i] = v
	return nil, nil, nil
}

// backoff sleeps for base << attempt (capped at 32x base), honouring
// cancellation; it reports whether the wait completed.
func backoff(ctx context.Context, base time.Duration, attempt int) bool {
	if base <= 0 {
		return true
	}
	shift := attempt
	if shift > 5 {
		shift = 5
	}
	t := time.NewTimer(base << uint(shift))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// Run executes jobs across at most parallelism workers (<= 0 meaning
// GOMAXPROCS) and returns their results indexed identically to jobs.
// onDone, if non-nil, is invoked once per successful job from a single
// collector goroutine — in completion order, never concurrently — for
// progress reporting.
//
// Run is the fail-fast convenience form of RunBatch: on failure the
// error of the lowest-indexed failed job is returned (matching what a
// serial in-order run would report first) and remaining unstarted jobs
// are skipped. A panicking job fails the whole batch by re-panicking
// with a *CellError that preserves the original panic value and stack.
func Run[T any](jobs []Job[T], parallelism int, onDone func(Cell, T)) ([]T, error) {
	opts := Options[T]{Parallelism: parallelism, FailFast: true}
	if onDone != nil {
		opts.OnDone = func(_ int, c Cell, v T) { onDone(c, v) }
	}
	b, err := RunBatch(context.Background(), jobs, opts)
	if err != nil {
		var ce *CellError
		if errors.As(err, &ce) && ce.Err != nil {
			// Historical contract: return the job's own error value.
			return nil, ce.Err
		}
		return nil, err
	}
	return b.Results, nil
}

// Map runs fn(i) for every i in [0, n) across at most parallelism
// workers and returns the results in index order — the plain-function
// form of Run for sweeps without per-cell metadata.
func Map[T any](parallelism, n int, fn func(i int) (T, error)) ([]T, error) {
	jobs := make([]Job[T], n)
	for i := range jobs {
		i := i
		jobs[i].Run = func() (T, error) { return fn(i) }
	}
	return Run(jobs, parallelism, nil)
}
