package runner

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestGateBoundsConcurrency: a 1-slot gate must serialize cell
// execution even when the pool has many workers.
func TestGateBoundsConcurrency(t *testing.T) {
	const n = 32
	slot := make(chan struct{}, 1)
	var inFlight, maxInFlight atomic.Int64

	jobs := make([]Job[int], n)
	for i := range jobs {
		jobs[i] = Job[int]{Run: func() (int, error) {
			cur := inFlight.Add(1)
			for {
				old := maxInFlight.Load()
				if cur <= old || maxInFlight.CompareAndSwap(old, cur) {
					break
				}
			}
			inFlight.Add(-1)
			return 1, nil
		}}
	}
	b, err := RunBatch(context.Background(), jobs, Options[int]{
		Parallelism: 8,
		Gate: func(ctx context.Context) (func(), error) {
			select {
			case slot <- struct{}{}:
				return func() { <-slot }, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range b.OK {
		if !ok {
			t.Fatalf("cell %d did not run", i)
		}
	}
	if got := maxInFlight.Load(); got != 1 {
		t.Fatalf("max in-flight = %d, want 1 under a 1-slot gate", got)
	}
}

// TestGateCancellationSkipsCells: a gate that reports ctx ending makes
// workers stop taking cells; never-started cells count as skipped.
func TestGateCancellationSkipsCells(t *testing.T) {
	const n = 16
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64

	jobs := make([]Job[int], n)
	for i := range jobs {
		jobs[i] = Job[int]{Run: func() (int, error) { ran.Add(1); return 1, nil }}
	}
	first := true
	b, err := RunBatch(ctx, jobs, Options[int]{
		Parallelism: 1,
		Gate: func(ctx context.Context) (func(), error) {
			if first {
				first = false
				return func() {}, nil
			}
			cancel()
			return nil, ctx.Err()
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("ran = %d cells, want exactly the one admitted before cancel", got)
	}
	if b.Skipped != n-1 {
		t.Fatalf("skipped = %d, want %d", b.Skipped, n-1)
	}
}
