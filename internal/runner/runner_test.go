package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func job(i int) Job[int] {
	return Job[int]{
		Cell: Cell{Mix: fmt.Sprintf("WL-%d", i)},
		Run:  func() (int, error) { return i * i, nil },
	}
}

func TestRunIndexAddressedResults(t *testing.T) {
	for _, par := range []int{0, 1, 2, 8, 100} {
		jobs := make([]Job[int], 37)
		for i := range jobs {
			jobs[i] = job(i)
		}
		got, err := Run(jobs, par, nil)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("par=%d: result[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	got, err := Run[int](nil, 4, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty run = %v, %v", got, err)
	}
}

func TestRunReturnsLowestIndexedError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, par := range []int{1, 4} {
		jobs := make([]Job[int], 16)
		for i := range jobs {
			i := i
			jobs[i].Run = func() (int, error) {
				switch i {
				case 3:
					return 0, errLow
				case 11:
					return 0, errHigh
				default:
					return i, nil
				}
			}
		}
		_, err := Run(jobs, par, nil)
		// Job 11 may be skipped after job 3 fails, but whenever both
		// fail the lower index must win — matching serial order.
		if !errors.Is(err, errLow) {
			t.Fatalf("par=%d: err = %v, want %v", par, err, errLow)
		}
	}
}

func TestRunSkipsAfterFailure(t *testing.T) {
	var started atomic.Int64
	jobs := make([]Job[int], 1000)
	for i := range jobs {
		i := i
		jobs[i].Run = func() (int, error) {
			started.Add(1)
			if i == 0 {
				return 0, errors.New("boom")
			}
			return i, nil
		}
	}
	if _, err := Run(jobs, 2, nil); err == nil {
		t.Fatal("expected error")
	}
	if n := started.Load(); n == 1000 {
		t.Error("failure did not short-circuit remaining jobs")
	}
}

func TestRunOnDoneSerializedAndComplete(t *testing.T) {
	// onDone must fire exactly once per job from a single goroutine;
	// the callback deliberately touches shared state without locking —
	// the race detector verifies the serialization.
	jobs := make([]Job[int], 64)
	for i := range jobs {
		jobs[i] = job(i)
	}
	seen := map[string]int{}
	sum := 0
	_, err := Run(jobs, 8, func(c Cell, v int) {
		seen[c.Mix]++
		sum += v
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 64 {
		t.Fatalf("onDone saw %d distinct cells, want 64", len(seen))
	}
	want := 0
	for i := 0; i < 64; i++ {
		want += i * i
	}
	if sum != want {
		t.Fatalf("onDone value sum = %d, want %d", sum, want)
	}
}

func TestRunPanicIdentifiesCell(t *testing.T) {
	jobs := []Job[int]{
		job(0),
		{Cell: Cell{Mix: "WL-9", Density: "32Gb", Bundle: "codesign"},
			Run: func() (int, error) { panic("kaboom") }},
	}
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("job panic was swallowed")
		}
		msg := fmt.Sprint(p)
		for _, want := range []string{"WL-9", "kaboom"} {
			if !strings.Contains(msg, want) {
				t.Errorf("panic %q missing %q", msg, want)
			}
		}
	}()
	Run(jobs, 2, nil)
}

func TestMapOrdering(t *testing.T) {
	got, err := Map(4, 50, func(i int) (string, error) {
		return fmt.Sprintf("#%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != fmt.Sprintf("#%d", i) {
			t.Fatalf("result[%d] = %q", i, v)
		}
	}
}

func TestParallelismNormalization(t *testing.T) {
	if Parallelism(-1) < 1 || Parallelism(0) < 1 {
		t.Fatal("non-positive parallelism must map to at least 1 worker")
	}
	if Parallelism(7) != 7 {
		t.Fatal("explicit parallelism must pass through")
	}
}

func TestCellString(t *testing.T) {
	c := Cell{Mix: "WL-1", Density: "32Gb", Bundle: "perbank", Seed: 1}
	if got := c.String(); got != "WL-1/32Gb/perbank" {
		t.Fatalf("Cell.String() = %q", got)
	}
}
