package refresh

import (
	"testing"

	"refsched/internal/config"
	"refsched/internal/dram"
	"refsched/internal/sim"
)

func geo(t *testing.T, scale uint64) Geometry {
	t.Helper()
	cfg := config.Default(config.Density32Gb, scale)
	tm := dram.TimingFrom(&cfg)
	return Geometry{Ranks: cfg.Mem.Ranks(), BanksPerRank: cfg.Mem.BanksPerRank, Timing: &tm}
}

// fakeQueue is a controllable QueueView.
type fakeQueue struct {
	perBank []int
	util    float64
}

func (q *fakeQueue) OutstandingToBank(g int) int { return q.perBank[g] }
func (q *fakeQueue) Utilization() float64        { return q.util }

func TestNewBuildsEveryPolicy(t *testing.T) {
	g := geo(t, 64)
	for _, p := range []config.RefreshPolicy{
		config.RefreshNone, config.RefreshAllBank, config.RefreshPerBankRR,
		config.RefreshPerBankSeq, config.RefreshOOOPerBank,
		config.RefreshFGR2x, config.RefreshFGR4x, config.RefreshAdaptive,
	} {
		s, err := New(p, g)
		if err != nil {
			t.Fatalf("New(%s): %v", p, err)
		}
		if s.Interval() == 0 {
			t.Errorf("%s: zero interval", p)
		}
	}
	if _, err := New("bogus", g); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestNoRefreshAlwaysSkips(t *testing.T) {
	var n NoRefresh
	if tgt := n.Next(0, nil); !tgt.Skip {
		t.Fatal("NoRefresh issued a command")
	}
}

func TestAllBankRotatesRanksAndCoversRows(t *testing.T) {
	g := geo(t, 64)
	a := NewAllBank(g)
	if a.Interval() != g.Timing.TREFIab/uint64(g.Ranks) {
		t.Fatalf("interval = %d", a.Interval())
	}
	t0 := a.Next(0, nil)
	t1 := a.Next(0, nil)
	t2 := a.Next(0, nil)
	if !t0.AllBank || t0.Rank != 0 || t1.Rank != 1 || t2.Rank != 0 {
		t.Fatalf("rank rotation: %d %d %d", t0.Rank, t1.Rank, t2.Rank)
	}
	if t0.Dur != g.Timing.TRFCab {
		t.Fatalf("dur = %d, want tRFCab %d", t0.Dur, g.Timing.TRFCab)
	}
	// One window of commands per rank must cover the bank.
	cmds := g.Timing.TREFW / g.Timing.TREFIab
	if cmds*t0.Rows < g.Timing.RowsPerBank {
		t.Fatalf("coverage: %d cmds x %d rows < %d", cmds, t0.Rows, g.Timing.RowsPerBank)
	}
}

func TestPerBankRRVisitsAllBanksUniformly(t *testing.T) {
	g := geo(t, 64)
	p := NewPerBankRR(g)
	counts := make([]int, g.TotalBanks())
	for i := 0; i < 3*g.TotalBanks(); i++ {
		tgt := p.Next(0, nil)
		if tgt.AllBank || tgt.Skip {
			t.Fatal("per-bank policy issued non-per-bank command")
		}
		counts[tgt.GlobalBank]++
	}
	for b, c := range counts {
		if c != 3 {
			t.Fatalf("bank %d visited %d times, want 3", b, c)
		}
	}
	if tgt := p.Next(0, nil); tgt.Dur != g.Timing.TRFCpb {
		t.Fatalf("dur = %d, want tRFCpb", tgt.Dur)
	}
}

// TestPerBankSeqSlotConfinement verifies the defining property of the
// proposed schedule: all commands during slot k target bank k.
func TestPerBankSeqSlotConfinement(t *testing.T) {
	g := geo(t, 64)
	p := NewPerBankSeq(g)
	slot := p.SlotCycles()
	interval := p.Interval()
	total := uint64(g.TotalBanks())

	for tick := uint64(0); tick*interval < 2*g.Timing.TREFW; tick++ {
		now := sim.Time(tick * interval)
		tgt := p.Next(now, nil)
		wantBank := int(uint64(now) / slot % total)
		if tgt.GlobalBank != wantBank {
			t.Fatalf("at %d: refreshing bank %d, slot owner %d", now, tgt.GlobalBank, wantBank)
		}
	}
}

// TestPerBankSeqAlg1Order verifies the verbatim Algorithm 1 transcription
// walks banks in rank-major order, finishing each bank before advancing.
func TestPerBankSeqAlg1Order(t *testing.T) {
	g := geo(t, 64)
	p := NewPerBankSeq(g)
	cmdsPerBank := g.Timing.TREFW / (p.Interval() * uint64(g.TotalBanks()))

	for bank := 0; bank < g.TotalBanks(); bank++ {
		for c := uint64(0); c < cmdsPerBank; c++ {
			got := p.AdvanceAlg1()
			if got != bank {
				t.Fatalf("command %d of bank %d targeted bank %d", c, bank, got)
			}
		}
	}
	// Wraps back to bank 0.
	if got := p.AdvanceAlg1(); got != 0 {
		t.Fatalf("after full sweep, next bank = %d, want 0", got)
	}
}

// TestPerBankSeqCoverage: each bank receives its full row budget within
// its slot.
func TestPerBankSeqCoverage(t *testing.T) {
	g := geo(t, 64)
	p := NewPerBankSeq(g)
	interval := p.Interval()
	rows := make([]uint64, g.TotalBanks())
	for tick := uint64(0); tick*interval < g.Timing.TREFW; tick++ {
		tgt := p.Next(sim.Time(tick*interval), nil)
		rows[tgt.GlobalBank] += tgt.Rows
	}
	for b, r := range rows {
		if r < g.Timing.RowsPerBank {
			t.Errorf("bank %d refreshed %d rows in one window, want >= %d", b, r, g.Timing.RowsPerBank)
		}
	}
}

func TestOOOPerBankPrefersIdleBanks(t *testing.T) {
	g := geo(t, 64)
	p := NewOOOPerBank(g)
	q := &fakeQueue{perBank: make([]int, g.TotalBanks())}
	for i := range q.perBank {
		q.perBank[i] = 10
	}
	q.perBank[5] = 0 // bank 5 is idle
	tgt := p.Next(0, q)
	if tgt.GlobalBank != 5 {
		t.Fatalf("OOO picked bank %d, want idle bank 5", tgt.GlobalBank)
	}
}

// TestOOOPerBankCompletesWindow: even with a pathologically idle bank
// always available, every bank still receives its full command budget
// within the window (the forcing rule).
func TestOOOPerBankCompletesWindow(t *testing.T) {
	g := geo(t, 64)
	p := NewOOOPerBank(g)
	q := &fakeQueue{perBank: make([]int, g.TotalBanks())}
	for i := range q.perBank {
		q.perBank[i] = i // bank 0 always least loaded
	}
	counts := make([]uint64, g.TotalBanks())
	interval := p.Interval()
	for tick := uint64(0); tick*interval < g.Timing.TREFW; tick++ {
		tgt := p.Next(sim.Time(tick*interval), q)
		if !tgt.Skip {
			counts[tgt.GlobalBank]++
		}
	}
	for b, c := range counts {
		if c*p.rows < g.Timing.RowsPerBank {
			t.Errorf("bank %d got %d commands (%d rows), below full coverage %d",
				b, c, c*p.rows, g.Timing.RowsPerBank)
		}
	}
}

func TestFGRScaling(t *testing.T) {
	g := geo(t, 64)
	f1 := mustFGR(g, 1)
	f2 := mustFGR(g, 2)
	f4 := mustFGR(g, 4)
	if f2.Interval() != f1.Interval()/2 || f4.Interval() != f1.Interval()/4 {
		t.Fatal("FGR intervals do not halve/quarter")
	}
	d1 := f1.Next(0, nil).Dur
	d2 := f2.Next(0, nil).Dur
	d4 := f4.Next(0, nil).Dur
	if d2 != uint64(float64(d1)/1.35) || d4 != uint64(float64(d1)/1.63) {
		t.Fatalf("FGR durations: 1x=%d 2x=%d 4x=%d", d1, d2, d4)
	}
	// Total refresh-busy time per window grows with mode: that is why
	// 2x/4x fare worse.
	busy := func(f *FGR) uint64 {
		cmds := g.Timing.TREFW / (f.Interval() * uint64(g.Ranks))
		return cmds * f.dur
	}
	if !(busy(f1) < busy(f2) && busy(f2) < busy(f4)) {
		t.Fatalf("busy time not increasing: %d %d %d", busy(f1), busy(f2), busy(f4))
	}
}

// TestFGRInvalidModes: every mode DDR4 does not define must be rejected
// as a configuration error at construction — never a panic, so one
// misconfigured sweep cell cannot crash a batch.
func TestFGRInvalidModes(t *testing.T) {
	g := geo(t, 64)
	for _, mode := range []int{-4, -1, 0, 3, 5, 8, 16} {
		f, err := NewFGR(g, mode)
		if err == nil || f != nil {
			t.Errorf("NewFGR(mode=%d) = %v, %v; want nil, error", mode, f, err)
		}
	}
	for _, mode := range []int{1, 2, 4} {
		f, err := NewFGR(g, mode)
		if err != nil || f == nil {
			t.Errorf("NewFGR(mode=%d) = %v, %v; want policy, nil", mode, f, err)
		}
	}
}

func TestAdaptiveSwitchesOnUtilization(t *testing.T) {
	g := geo(t, 64)
	a := NewAdaptive(g, 1000, 0.5)
	q := &fakeQueue{perBank: make([]int, g.TotalBanks())}

	// Low utilization -> 4x mode.
	q.util = 0.1
	a.Next(0, q)
	if a.Mode() != 4 {
		t.Fatalf("mode = %dx at low utilization, want 4x", a.Mode())
	}
	// High utilization at the next epoch -> 1x mode.
	q.util = 0.9
	a.Next(2000, q)
	if a.Mode() != 1 {
		t.Fatalf("mode = %dx at high utilization, want 1x", a.Mode())
	}
	if a.ModeSwitches == 0 {
		t.Fatal("mode switch not counted")
	}
	// Within the same epoch, no re-evaluation.
	q.util = 0.0
	a.Next(2001, q)
	if a.Mode() != 1 {
		t.Fatal("mode changed mid-epoch")
	}
}

func TestPerBankParamsCoverAllDensities(t *testing.T) {
	for _, d := range config.Densities {
		cfg := config.Default(d, 64)
		tm := dram.TimingFrom(&cfg)
		g := Geometry{Ranks: 2, BanksPerRank: 8, Timing: &tm}
		interval, cmds, rows := perBankParams(g)
		if interval == 0 || cmds == 0 || rows == 0 {
			t.Fatalf("%s: degenerate params %d/%d/%d", d, interval, cmds, rows)
		}
		if cmds*rows < tm.RowsPerBank {
			t.Fatalf("%s: coverage shortfall", d)
		}
		// tRFCpb must fit within the per-bank interval, or refresh
		// would consume the whole bank.
		if tm.TRFCpb >= interval*uint64(g.TotalBanks()) {
			t.Fatalf("%s: tRFCpb %d exceeds per-bank period", d, tm.TRFCpb)
		}
	}
}
