package refresh

import (
	"testing"

	"refsched/internal/config"
	"refsched/internal/sim"
)

func TestPerBankSARotatesBanksThenSubarrays(t *testing.T) {
	g := geo(t, 64)
	g.Subarrays = 4
	p := NewPerBankSA(g, 4)
	total := g.TotalBanks()
	// First sweep: every bank at subarray 0; second sweep: subarray 1.
	for b := 0; b < total; b++ {
		tgt := p.Next(0, nil)
		if tgt.GlobalBank != b || tgt.Subarray != 0 || !tgt.SubarrayLevel {
			t.Fatalf("sweep 0 target %+v, want bank %d sub 0", tgt, b)
		}
	}
	tgt := p.Next(0, nil)
	if tgt.GlobalBank != 0 || tgt.Subarray != 1 {
		t.Fatalf("sweep 1 target %+v", tgt)
	}
}

func TestPerBankSACoverage(t *testing.T) {
	g := geo(t, 64)
	g.Subarrays = 4
	p := NewPerBankSA(g, 4)
	interval := p.Interval()
	rows := make([]uint64, g.TotalBanks())
	for tick := uint64(0); tick*interval < g.Timing.TREFW; tick++ {
		tgt := p.Next(sim.Time(tick*interval), nil)
		rows[tgt.GlobalBank] += tgt.Rows
	}
	for b, r := range rows {
		if r < g.Timing.RowsPerBank {
			t.Errorf("bank %d covered %d rows per window, want >= %d", b, r, g.Timing.RowsPerBank)
		}
	}
}

func TestPerBankSAIntervalScales(t *testing.T) {
	g := geo(t, 64)
	pb := NewPerBankRR(g)
	sa := NewPerBankSA(g, 8)
	if sa.Interval() != pb.Interval()/8 {
		t.Fatalf("SA interval %d, per-bank %d", sa.Interval(), pb.Interval())
	}
}

func TestNewRequiresSubarrays(t *testing.T) {
	g := geo(t, 64)
	if _, err := New(config.RefreshPerBankSA, g); err == nil {
		t.Fatal("perbanksa accepted without subarrays")
	}
	g.Subarrays = 8
	s, err := New(config.RefreshPerBankSA, g)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "perbanksa" {
		t.Fatalf("name = %q", s.Name())
	}
}
